(** Workload specifications for the edge-service experiments.

    The paper's workload model (Section 4.1): closed-loop application
    clients issue requests with a given write ratio; under normal
    conditions a request is routed to the client's closest edge server,
    and with probability [1 - locality] to a random distant one.
    Object selection models the TPC-W customer-profile pattern — each
    client works on its own object — or shared objects with uniform or
    Zipfian popularity. Optional read/write bursts (geometric run
    lengths) model the paper's "reads tend to be followed by reads,
    writes by writes" assumption explicitly. *)

type arrival =
  | Closed
      (** the paper's model: each client sends its next request only
          after the previous response (optionally after a think time) *)
  | Open of { rate_per_s : float }
      (** Poisson arrivals at the given per-client rate, independent of
          completions — clients can have many requests outstanding, so
          the system can saturate (used by load studies) *)

type sharing =
  | Private_object  (** each client its own object (customer profile) *)
  | Shared_uniform of { objects : int }
  | Shared_zipf of { objects : int; exponent : float }

type t = {
  write_ratio : float;      (** fraction of operations that are writes *)
  locality : float;         (** fraction routed to the closest server *)
  sharing : sharing;
  burst_mean : float option;
      (** mean run length of same-kind operation bursts; [None] draws
          each operation kind independently *)
  think_time_ms : float;    (** delay between response and next request *)
  arrival : arrival;
  volume_of : int -> int;   (** volume of an object index *)
}

val default : t
(** 5% writes, full locality, private objects, no bursts, no think
    time, all objects in volume 0. *)

val tpcw_profile : t
(** The paper's target workload: the TPC-W customer-profile object —
    5% writes (shipping-address updates during checkout), private
    per-customer objects, full locality. *)

val validate : t -> unit
