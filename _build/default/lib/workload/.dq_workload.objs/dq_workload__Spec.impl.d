lib/workload/spec.ml:
