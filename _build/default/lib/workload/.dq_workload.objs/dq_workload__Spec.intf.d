lib/workload/spec.mli:
