lib/workload/zipf.mli: Dq_util
