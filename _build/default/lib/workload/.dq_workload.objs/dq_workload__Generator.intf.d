lib/workload/generator.mli: Dq_storage Dq_util Spec
