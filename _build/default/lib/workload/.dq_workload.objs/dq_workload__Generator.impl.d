lib/workload/generator.ml: Dq_storage Dq_util Spec Zipf
