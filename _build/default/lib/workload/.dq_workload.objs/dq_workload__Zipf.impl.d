lib/workload/zipf.ml: Array Dq_util
