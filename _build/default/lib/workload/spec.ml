type arrival = Closed | Open of { rate_per_s : float }

type sharing =
  | Private_object
  | Shared_uniform of { objects : int }
  | Shared_zipf of { objects : int; exponent : float }

type t = {
  write_ratio : float;
  locality : float;
  sharing : sharing;
  burst_mean : float option;
  think_time_ms : float;
  arrival : arrival;
  volume_of : int -> int;
}

let default =
  {
    write_ratio = 0.05;
    locality = 1.0;
    sharing = Private_object;
    burst_mean = None;
    think_time_ms = 0.;
    arrival = Closed;
    volume_of = (fun _ -> 0);
  }

let tpcw_profile = default

let validate t =
  if t.write_ratio < 0. || t.write_ratio > 1. then
    invalid_arg "Spec: write_ratio must be in [0, 1]";
  if t.locality < 0. || t.locality > 1. then invalid_arg "Spec: locality must be in [0, 1]";
  if t.think_time_ms < 0. then invalid_arg "Spec: negative think time";
  (match t.arrival with
  | Open { rate_per_s } when rate_per_s <= 0. ->
    invalid_arg "Spec: open arrival rate must be positive"
  | Open _ | Closed -> ());
  (match t.burst_mean with
  | Some mean when mean < 1. -> invalid_arg "Spec: burst mean must be >= 1"
  | Some _ | None -> ());
  match t.sharing with
  | Private_object -> ()
  | Shared_uniform { objects } | Shared_zipf { objects; _ } ->
    if objects < 1 then invalid_arg "Spec: need at least one object"
