type t = { cdf : float array }

let create ~n ~s =
  if n < 1 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: exponent must be non-negative";
  let weights = Array.init n (fun k -> (float_of_int (k + 1)) ** -.s) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun k w ->
      acc := !acc +. (w /. total);
      cdf.(k) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { cdf }

let sample t rng =
  let u = Dq_util.Rng.float rng 1.0 in
  (* Least index with cdf >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (Array.length t.cdf - 1)

let pmf t k =
  if k < 0 || k >= Array.length t.cdf then 0.
  else if k = 0 then t.cdf.(0)
  else t.cdf.(k) -. t.cdf.(k - 1)
