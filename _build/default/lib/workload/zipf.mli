(** Zipfian sampling over [0 .. n-1] (rank 0 most popular).

    Used to model skewed object popularity. Exponent [s = 0] degenerates
    to the uniform distribution. Sampling is by inverse transform over
    the precomputed CDF (O(log n) per draw). *)

type t

val create : n:int -> s:float -> t
(** Requires [n >= 1] and [s >= 0]. *)

val sample : t -> Dq_util.Rng.t -> int

val pmf : t -> int -> float
(** Probability of rank [k]. *)
