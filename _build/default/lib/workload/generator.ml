module Rng = Dq_util.Rng

type op_kind = Read | Write

type op = { kind : op_kind; key : Dq_storage.Key.t; use_closest : bool }

type t = {
  spec : Spec.t;
  rng : Rng.t;
  client_index : int;
  zipf : Zipf.t option;
  mutable burst_kind : op_kind;
  mutable burst_left : int;
}

let create ~spec ~rng ~client_index =
  Spec.validate spec;
  let zipf =
    match spec.Spec.sharing with
    | Spec.Shared_zipf { objects; exponent } -> Some (Zipf.create ~n:objects ~s:exponent)
    | Spec.Private_object | Spec.Shared_uniform _ -> None
  in
  { spec; rng; client_index; zipf; burst_kind = Read; burst_left = 0 }

let spec t = t.spec

let draw_kind t =
  let w = t.spec.Spec.write_ratio in
  match t.spec.Spec.burst_mean with
  | None -> if Rng.bernoulli t.rng w then Write else Read
  | Some mean ->
    (* Geometric run lengths with the given mean; burst kinds are drawn
       with the write ratio, so the long-run operation mix is preserved. *)
    if t.burst_left <= 0 then begin
      t.burst_kind <- (if Rng.bernoulli t.rng w then Write else Read);
      let p = 1. /. mean in
      let rec run_length acc = if Rng.bernoulli t.rng p then acc else run_length (acc + 1) in
      t.burst_left <- run_length 1
    end;
    t.burst_left <- t.burst_left - 1;
    t.burst_kind

let draw_object t =
  match t.spec.Spec.sharing with
  | Spec.Private_object -> t.client_index
  | Spec.Shared_uniform { objects } -> Rng.int t.rng objects
  | Spec.Shared_zipf _ -> (
    match t.zipf with Some z -> Zipf.sample z t.rng | None -> 0)

let next t =
  let kind = draw_kind t in
  let index = draw_object t in
  let key = Dq_storage.Key.make ~volume:(t.spec.Spec.volume_of index) ~index in
  let use_closest = Rng.bernoulli t.rng t.spec.Spec.locality in
  { kind; key; use_closest }
