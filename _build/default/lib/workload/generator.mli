(** A per-client operation stream drawn from a {!Spec.t}.

    Deterministic given its random stream. [next] yields the operation
    kind, the target object, and whether the request should be routed
    to the client's closest edge server or to a distant one. *)

type op_kind = Read | Write

type op = {
  kind : op_kind;
  key : Dq_storage.Key.t;
  use_closest : bool;  (** routing decision drawn from the locality *)
}

type t

val create : spec:Spec.t -> rng:Dq_util.Rng.t -> client_index:int -> t
(** [client_index] numbers the application clients from 0; it selects
    the private object under {!Spec.Private_object} sharing. *)

val next : t -> op

val spec : t -> Spec.t
