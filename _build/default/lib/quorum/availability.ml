type mode = Read | Write

let predicate qs mode =
  match mode with
  | Read -> fun ~present -> Quorum_system.is_read_quorum qs ~present
  | Write -> fun ~present -> Quorum_system.is_write_quorum qs ~present

(* Exact enumeration over live/dead states of the members. [want_failure]
   selects whether we accumulate the probability of states with no quorum
   (unavailability) or with a quorum (availability). *)
let enumerate qs mode ~p ~want_failure =
  let member_array = Array.of_list (Quorum_system.members qs) in
  let n = Array.length member_array in
  if n > 24 then invalid_arg "Availability: quorum system too large for enumeration";
  let holds = predicate qs mode in
  let q = 1. -. p in
  let acc = ref 0. in
  for mask = 0 to (1 lsl n) - 1 do
    let present id =
      (* Find id's index; members are distinct. *)
      let rec index i = if member_array.(i) = id then i else index (i + 1) in
      mask land (1 lsl index 0) <> 0
    in
    let has_quorum = holds ~present in
    if has_quorum <> want_failure then begin
      let prob = ref 1. in
      for i = 0 to n - 1 do
        prob := !prob *. (if mask land (1 lsl i) <> 0 then q else p)
      done;
      acc := !acc +. !prob
    end
  done;
  !acc

let is_uniform_threshold qs mode =
  match Quorum_system.counting_thresholds qs with
  | None -> None
  | Some (read, write) ->
    let n = Quorum_system.size qs in
    let k = match mode with Read -> read | Write -> write in
    Some (n, k)

let unavailability qs ~mode ~p =
  if p <= 0. then 0.
  else if p >= 1. then 1.
  else
    match is_uniform_threshold qs mode with
    | Some (n, k) ->
      (* Up-count X ~ Binomial(n, 1-p); unavailable iff X < k. *)
      Dq_util.Combin.binomial_tail_le ~n ~p:(1. -. p) (k - 1)
    | None -> enumerate qs mode ~p ~want_failure:true

let availability qs ~mode ~p =
  if p <= 0. then 1.
  else if p >= 1. then 0.
  else
    match is_uniform_threshold qs mode with
    | Some (n, k) -> Dq_util.Combin.binomial_tail_ge ~n ~p:(1. -. p) k
    | None -> enumerate qs mode ~p ~want_failure:false

let min_availability qs ~p =
  Float.min (availability qs ~mode:Read ~p) (availability qs ~mode:Write ~p)

let max_unavailability qs ~p =
  Float.max (unavailability qs ~mode:Read ~p) (unavailability qs ~mode:Write ~p)

let unavailability_mc qs ~mode ~p ~rng ~samples =
  if samples <= 0 then invalid_arg "Availability: samples must be positive";
  let members = Array.of_list (Quorum_system.members qs) in
  let n = Array.length members in
  let holds = predicate qs mode in
  let up = Array.make n false in
  let failures = ref 0 in
  for _ = 1 to samples do
    for i = 0 to n - 1 do
      up.(i) <- not (Dq_util.Rng.bernoulli rng p)
    done;
    let present id =
      let rec index i = if members.(i) = id then i else index (i + 1) in
      up.(index 0)
    in
    if not (holds ~present) then incr failures
  done;
  float_of_int !failures /. float_of_int samples
