(** Quorum systems: which sets of replicas may serve a read or a write.

    A quorum system is defined over a list of member node ids. The
    fundamental operations are the two predicates — does a set of
    responders contain a read (write) quorum? — plus randomized selection
    of a minimal quorum, which QRPC uses to pick message targets.

    Constructions provided (all from the paper and its references):
    threshold (Gifford-style voting with read/write thresholds),
    majority, ROWA (read-one/write-all), and the grid protocol of
    Cheung, Ahamad and Ammar. The dual-quorum protocol composes two of
    these: an input quorum system (IQS, typically majority) and an
    output quorum system (OQS, typically read-one/write-all over the
    edge servers). *)

type t

val name : t -> string

val members : t -> int list

val size : t -> int

val mem : t -> int -> bool

val is_read_quorum : t -> present:(int -> bool) -> bool
(** Does the set characterized by [present] contain a read quorum? *)

val is_write_quorum : t -> present:(int -> bool) -> bool

val is_read_quorum_list : t -> int list -> bool

val is_write_quorum_list : t -> int list -> bool

val min_read_size : t -> int
(** Cardinality of the smallest read quorum. *)

val min_write_size : t -> int

val choose_read : t -> Dq_util.Rng.t -> int list
(** A uniformly random minimal read quorum. *)

val choose_write : t -> Dq_util.Rng.t -> int list

(** {2 Constructions} *)

val threshold : name:string -> members:int list -> read:int -> write:int -> t
(** Any [read] members form a read quorum, any [write] members a write
    quorum. Requires [1 <= read, write <= n], [read + write > n] (every
    read quorum intersects every write quorum) and [2 * write > n]
    (write quorums intersect each other, needed to order writes). *)

val majority : int list -> t
(** Threshold with read = write = floor(n/2) + 1. *)

val rowa : int list -> t
(** Read-one / write-all: threshold with read = 1, write = n. *)

val weighted : name:string -> members:(int * int) list -> read:int -> write:int -> t
(** Gifford-style weighted voting (the paper's reference [12]):
    [members] pairs node ids with vote counts; a read (write) quorum is
    any set holding at least [read] ([write]) votes. Requires
    [read + write > total votes] and [2 * write > total votes]. *)

val grid : rows:int -> cols:int -> int list -> t
(** The grid protocol: members arranged row-major in a [rows] x [cols]
    grid. A read quorum is one node from each column; a write quorum is
    a full column plus one node from each other column. Requires
    [rows * cols = List.length members]. *)

val counting_thresholds : t -> (int * int) option
(** [Some (read, write)] iff the system is counting-based: any [read]
    members form a read quorum and any [write] members a write quorum.
    Grid systems return [None]. Lets {!Availability} use closed forms. *)

val validate : t -> (unit, string) result
(** Exhaustively check (for [size t <= 12]) or spot-check the
    intersection properties: every read quorum intersects every write
    quorum, and write quorums pairwise intersect. Used in tests. *)

val pp : Format.formatter -> t -> unit
