lib/quorum/availability.mli: Dq_util Quorum_system
