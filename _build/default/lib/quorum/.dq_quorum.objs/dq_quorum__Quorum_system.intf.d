lib/quorum/quorum_system.mli: Dq_util Format
