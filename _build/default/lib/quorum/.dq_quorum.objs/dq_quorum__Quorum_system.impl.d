lib/quorum/quorum_system.ml: Array Dq_util Format Fun List Printf
