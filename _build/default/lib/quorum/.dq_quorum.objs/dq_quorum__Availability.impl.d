lib/quorum/availability.ml: Array Dq_util Float Quorum_system
