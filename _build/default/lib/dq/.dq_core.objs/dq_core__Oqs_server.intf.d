lib/dq/oqs_server.mli: Config Dq_net Dq_sim Dq_storage Dq_util Key Message Versioned
