lib/dq/frontend.mli: Config Dq_net Dq_storage Dq_util Key Lc Message
