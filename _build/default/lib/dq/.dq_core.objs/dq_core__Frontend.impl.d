lib/dq/frontend.ml: Config Dq_net Dq_rpc Dq_sim Dq_storage Dq_util Hashtbl Key Lc List Logs Message
