lib/dq/oqs_server.ml: Config Dq_net Dq_quorum Dq_rpc Dq_sim Dq_storage Dq_util Float Hashtbl Key Lc List Logs Message Obj_map Option Stdlib Versioned
