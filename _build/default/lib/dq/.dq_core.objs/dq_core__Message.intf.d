lib/dq/message.mli: Dq_storage Format Key Lc
