lib/dq/cluster.mli: Config Dq_intf Dq_net Dq_sim Frontend Iqs_server Message Oqs_server
