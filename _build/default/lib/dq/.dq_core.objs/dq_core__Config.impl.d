lib/dq/config.ml: Dq_quorum Float
