lib/dq/config.mli: Dq_quorum
