lib/dq/iqs_server.mli: Config Dq_net Dq_sim Dq_storage Key Lc Message Versioned
