lib/dq/cluster.ml: Config Dq_intf Dq_net Dq_quorum Dq_sim Frontend Hashtbl Iqs_server List Message Option Oqs_server Printf
