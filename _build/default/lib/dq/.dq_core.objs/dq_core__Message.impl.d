lib/dq/message.ml: Dq_storage Format Key Lc List String
