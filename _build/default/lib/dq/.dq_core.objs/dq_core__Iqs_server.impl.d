lib/dq/iqs_server.ml: Config Dq_net Dq_quorum Dq_rpc Dq_sim Dq_storage Hashtbl Key Lc List Logs Message Obj_map Option Versioned
