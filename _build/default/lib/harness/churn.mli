(** Continuous crash/recovery churn for availability experiments.

    Each server alternates between up-periods drawn from an exponential
    distribution with mean [mttf_ms] and down-periods with mean
    [mttr_ms], independently of the others — the paper's model of
    independent node failures. The steady-state probability of finding
    a node down is [p = mttr / (mttf + mttr)]; use {!periods_for} to
    derive periods from a target [p]. *)

type t

val install :
  Dq_sim.Engine.t ->
  crash:(int -> unit) ->
  recover:(int -> unit) ->
  servers:int list ->
  mttf_ms:float ->
  mttr_ms:float ->
  t
(** Starts every server up; the first crash of each server fires after
    an exponential up-period. Runs until {!stop}. *)

val stop : t -> unit

val periods_for : p:float -> cycle_ms:float -> float * float
(** [periods_for ~p ~cycle_ms] is [(mttf_ms, mttr_ms)] with
    [mttf + mttr = cycle_ms] and steady-state unavailability [p]. *)

val downtime_fraction : t -> node:int -> float
(** Observed fraction of elapsed time the node has spent down. *)
