(** Randomized fault-scenario fuzzing.

    Each scenario draws a topology size, workload mix, fault model
    (loss/duplication/jitter), an IQS-minority crash schedule and an
    optional transient partition from a seed, runs a protocol under it,
    and checks:

    - regular semantics over the full history (quorum protocols),
    - liveness (some operations complete),
    - for DQVL clusters additionally the cross-node safety invariant,
      sampled every 100 ms of virtual time.

    The whole run is a pure function of the seed: a reported
    counterexample seed replays exactly. Used by [bin/fuzz.exe] and the
    property-based test suites. *)

type scenario = {
  seed : int64;
  n_servers : int;
  write_ratio : float;
  objects : int;
  loss : float;
  duplicate : float;
  jitter_ms : float;
  crashes : bool;
  partition : bool;
}

val scenario_of_seed : int64 -> scenario
(** Deterministically derive a scenario from a seed. *)

val pp_scenario : Format.formatter -> scenario -> unit

type outcome = {
  scenario : scenario;
  completed : int;
  failed : int;
  violations : string list;  (** empty = scenario passed *)
}

val run : ?check_invariant:bool -> Registry.builder -> scenario -> outcome
(** [check_invariant] (default true) applies only to dual-quorum
    builders (it is skipped for protocols without the introspection). *)

val campaign :
  ?on_progress:(int -> outcome -> unit) ->
  Registry.builder ->
  seeds:int64 list ->
  outcome list
(** Run many scenarios; returns the failing outcomes (empty = all
    passed). *)
