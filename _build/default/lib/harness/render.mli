(** Rendering of experiment results as aligned text tables — shared by
    the benchmark harness ([bench/main.exe]) and the CLI ([bin/dqr.exe]). *)

val response_rows : title:string -> Experiment.response_row list -> Dq_util.Table.t

val sweep :
  title:string ->
  x_label:string ->
  x_of:('a -> string) ->
  ('a * Experiment.response_row list) list ->
  Dq_util.Table.t
(** One row per sweep point, one column per protocol (overall mean
    response time in ms). *)

val series :
  title:string ->
  x_label:string ->
  x_of:('a -> string) ->
  ?fmt:(float -> string) ->
  ('a * (string * float) list) list ->
  Dq_util.Table.t
(** Generic (x, per-protocol value) table, e.g. unavailability or
    messages per request. *)

val scientific : float -> string
(** Format like ["1.3e-09"], the paper's log-scale figures. *)
