(** Builders for every protocol under evaluation, so experiments can
    iterate over protocols uniformly. *)

type instance = {
  api : Dq_intf.Replication.api;
  partition : int list list -> unit;
  heal : unit -> unit;
  set_service_time : float -> unit;
      (** per-message processing cost at every node (queueing model) *)
  dq_cluster : Dq_core.Cluster.t option;
      (** the underlying dual-quorum cluster, for introspection
          (invariant checks); [None] for baseline protocols *)
}

type builder = {
  name : string;
  build :
    Dq_sim.Engine.t -> Dq_net.Topology.t -> ?faults:Dq_net.Net.fault_model -> unit -> instance;
}

val dqvl :
  ?volume_lease_ms:float -> ?proactive_renew:bool -> ?object_lease_ms:float -> unit -> builder

val dqvl_custom : name:string -> (int list -> Dq_core.Config.t) -> builder
(** Full control over the dual-quorum configuration; the function
    receives the topology's server ids. *)

val dq_basic : builder
(** The basic dual-quorum protocol (no volume leases, Section 3.1). *)

val primary_backup : builder
(** Primary is server 0. *)

val majority : builder

val atomic_majority : builder
(** Majority quorum with ABD read-impose: atomic semantics. *)

val dqvl_atomic : ?volume_lease_ms:float -> ?proactive_renew:bool -> unit -> builder
(** DQVL with atomic reads (paper future work, Section 6): every read
    pushes the value it returns through an IQS write quorum. *)

val rowa : builder

val rowa_async : ?anti_entropy_ms:float -> unit -> builder

val grid : rows:int -> cols:int -> builder
(** A grid quorum system over the first [rows * cols] servers, driven
    by the standard two-phase quorum protocol (paper future work). *)

val paper_five : builder list
(** The five protocols of the paper's evaluation, in its order:
    DQVL, primary/backup, majority quorum, ROWA, ROWA-Async. *)
