(** A checker for Lamport regular register semantics over a recorded
    history (the consistency guarantee DQVL claims; Section 3.3).

    For every completed read [r] of key [k] the returned value must be
    - the value of the completed write of [k] with the highest logical
      clock among those that responded before [r] was invoked (or the
      initial value if there is none), or
    - the value of some write of [k] concurrent with [r] (its interval
      overlaps [r]'s; a write that never completed is concurrent with
      every later read).

    The checker is used two ways: asserting that the quorum protocols
    never violate regularity (even under crashes, loss, duplication and
    partitions), and {e measuring} how often ROWA-Async does. *)

type violation = {
  read : History.op;
  returned_write : History.op option;  (** the write whose value was read *)
  expected_lc : Dq_storage.Lc.t;  (** clock of the freshest completed write *)
  reason : string;
}

type report = {
  reads : int;
  checked : int;  (** completed reads *)
  violations : violation list;
}

val check : History.op list -> report

val is_regular : History.op list -> bool

val pp_report : Format.formatter -> report -> unit

(** {2 Atomicity (paper future work, Section 6)} *)

type inversion = {
  first_read : History.op;
  second_read : History.op;  (** follows [first_read] in real time *)
  first_lc : Dq_storage.Lc.t;
  second_lc : Dq_storage.Lc.t;  (** older than [first_lc]: a new-old inversion *)
}

val new_old_inversions : History.op list -> inversion list
(** Pairs of non-overlapping completed reads of the same key where the
    later read returned an older write — permitted by regular
    semantics (when concurrent with writes) but forbidden by atomic
    (linearizable) semantics. *)

val is_atomic : History.op list -> bool
(** Regular and free of new-old inversions. For histories whose writes
    carry unique values and totally ordered logical clocks (all
    histories produced by this harness), this is the standard
    atomicity condition for read/write registers. *)

(** {2 Session guarantees (Bayou; the paper's reference [26])} *)

type session_report = {
  ryw_violations : int;
      (** completed reads that missed one of the client's own earlier
          completed writes (read-your-writes) *)
  monotonic_violations : int;
      (** completed reads older than one of the client's own earlier
          completed reads (monotonic reads) *)
}

val check_sessions : History.op list -> session_report
(** Per-client, per-key session-guarantee check. Protocols with regular
    semantics always pass; plain ROWA-Async fails when a client moves
    between replicas; session-guaranteed ROWA-Async passes again. *)
