(** Systematic schedule exploration (stateless model checking in the
    style of dBug/SAMC, applied to the {e real} protocol
    implementation).

    The network is put in manual-delivery mode: every sent message
    parks in a pending pool, and at each step the explorer chooses
    which pending message to deliver next — or lets virtual time
    advance to the next timer. Because a run is a pure function of the
    choice sequence, the explorer enumerates the schedule tree by
    replaying prefixes (depth-first, budget-bounded), or samples random
    schedules from seeds. Each completed run's history is checked for
    regular semantics.

    This exercises message orderings that no delay assignment of the
    timed simulator could produce (e.g. a renewal reply overtaking the
    invalidation that was sent long before it). *)

type op_spec = {
  client : int;  (** application-client node *)
  server : int;  (** front end to contact *)
  kind : [ `Read | `Write of string ];
}

type scenario = {
  n_servers : int;
  n_clients : int;
  ops : op_spec list;  (** all submitted at time 0 (maximal concurrency) *)
  max_decisions : int;  (** per-run bound on scheduling decisions *)
  max_crashes : int;
      (** crash alternatives offered at each decision point (the victim
          recovers later); keep below the IQS minority for liveness *)
}

val default_scenario : scenario
(** Three servers, two clients, two concurrent writes and two reads on
    one object. *)

type violation = { choices : int list; detail : string }
(** A failing schedule: replaying [choices] reproduces it exactly. *)

type outcome = {
  runs : int;
  complete_runs : int;  (** runs in which every operation finished *)
  violations : violation list;
  distinct_outcomes : int;
      (** distinct (reader, value) result vectors across the explored
          schedules — evidence the exploration reaches genuinely
          different interleavings *)
}

val run_choices : config:(int list -> Dq_core.Config.t) -> scenario -> int list -> History.op list
(** Execute one schedule: forced choices first, then always choice 0.
    Returns the recorded history (for debugging a violation). *)

val explore :
  ?config:(int list -> Dq_core.Config.t) ->
  ?budget:int ->
  scenario ->
  outcome
(** Depth-first enumeration of the schedule tree, bounded by [budget]
    runs (default 2000). [config] builds the cluster configuration from
    the server ids (default: {!Dq_core.Config.dqvl}). *)

val explore_random :
  ?config:(int list -> Dq_core.Config.t) ->
  ?runs:int ->
  seed:int64 ->
  scenario ->
  outcome
(** Random schedule sampling: each run draws every choice from a
    per-run random stream. Covers deep interleavings the bounded DFS
    cannot reach. *)
