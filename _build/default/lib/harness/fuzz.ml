module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Spec = Dq_workload.Spec
module Rng = Dq_util.Rng
open Dq_storage

type scenario = {
  seed : int64;
  n_servers : int;
  write_ratio : float;
  objects : int;
  loss : float;
  duplicate : float;
  jitter_ms : float;
  crashes : bool;
  partition : bool;
}

let scenario_of_seed seed =
  let rng = Rng.create seed in
  {
    seed;
    n_servers = 3 + Rng.int rng 5;
    write_ratio = 0.1 +. Rng.float rng 0.5;
    objects = 1 + Rng.int rng 3;
    loss = Rng.float rng 0.15;
    duplicate = Rng.float rng 0.15;
    jitter_ms = Rng.float rng 40.;
    crashes = Rng.bool rng;
    partition = Rng.bool rng;
  }

let pp_scenario ppf s =
  Format.fprintf ppf
    "{seed=%Ld n=%d w=%.2f objs=%d loss=%.2f dup=%.2f jitter=%.0f crash=%b part=%b}" s.seed
    s.n_servers s.write_ratio s.objects s.loss s.duplicate s.jitter_ms s.crashes s.partition

type outcome = {
  scenario : scenario;
  completed : int;
  failed : int;
  violations : string list;
}

let fault_events s =
  let minority = (s.n_servers - 1) / 2 in
  let crash_events =
    if s.crashes && minority >= 1 then
      List.concat
        (List.init minority (fun i ->
             [
               { Driver.at_ms = 2_000. +. (500. *. float_of_int i); action = `Crash i };
               { Driver.at_ms = 20_000. +. (500. *. float_of_int i); action = `Recover i };
             ]))
    else []
  in
  let partition_events =
    if s.partition then
      [
        { Driver.at_ms = 8_000.; action = `Partition [ [ s.n_servers - 1 ] ] };
        { Driver.at_ms = 25_000.; action = `Heal };
      ]
    else []
  in
  crash_events @ partition_events

let run ?(check_invariant = true) (builder : Registry.builder) s =
  let engine = Engine.create ~seed:s.seed () in
  let topology = Topology.make ~n_servers:s.n_servers ~n_clients:3 () in
  let faults = { Net.loss = s.loss; duplicate = s.duplicate; jitter_ms = s.jitter_ms } in
  let instance = builder.Registry.build engine topology ~faults () in
  let keys = List.init s.objects (fun i -> Key.make ~volume:0 ~index:i) in
  let invariant_violations =
    match instance.Registry.dq_cluster with
    | Some cluster when check_invariant ->
      Some (Invariant.install_periodic engine cluster ~keys ~every_ms:100. ~until_ms:2e5)
    | Some _ | None -> None
  in
  let spec =
    {
      Spec.default with
      Spec.write_ratio = s.write_ratio;
      sharing = Spec.Shared_uniform { objects = s.objects };
    }
  in
  let config =
    {
      (Driver.default_config spec) with
      Driver.ops_per_client = 40;
      timeout_ms = 8_000.;
      horizon_ms = 1.2e6;
    }
  in
  let result =
    Driver.run_with_events engine topology instance.Registry.api config
      ~events:(fault_events s)
      ~on_net_event:(function
        | `Partition groups -> instance.Registry.partition groups
        | `Heal -> instance.Registry.heal ())
  in
  let violations = ref [] in
  let note fmt = Printf.ksprintf (fun msg -> violations := msg :: !violations) fmt in
  let report = Regular_checker.check result.Driver.history in
  List.iteri
    (fun i v ->
      if i < 3 then note "regular-semantics violation: %s" v.Regular_checker.reason)
    report.Regular_checker.violations;
  if result.Driver.completed = 0 then note "no operation ever completed";
  (match invariant_violations with
  | Some cell ->
    List.iteri
      (fun i v -> if i < 3 then note "safety invariant: %a" (fun () -> Format.asprintf "%a" Invariant.pp) v)
      !cell
  | None -> ());
  {
    scenario = s;
    completed = result.Driver.completed;
    failed = result.Driver.failed;
    violations = List.rev !violations;
  }

let campaign ?(on_progress = fun _ _ -> ()) builder ~seeds =
  List.concat
    (List.mapi
       (fun i seed ->
         let outcome = run builder (scenario_of_seed seed) in
         on_progress i outcome;
         if outcome.violations = [] then [] else [ outcome ])
       seeds)
