(** Live cross-node checks of the DQVL safety invariant.

    The paper (Sections 3.1/3.2) builds correctness on: {e if OQS node j
    holds from IQS node i a valid volume lease and a valid object lease
    on o, then i knows it} — i still considers j's volume lease
    unexpired and cannot have concluded that j's callback is invalid.
    Violating it would let a write complete while a reader can still
    serve the overwritten version.

    {!check} inspects the actual state of every (IQS node, OQS node,
    object) triple of a running cluster — each side judged by its own
    clock, exactly as the protocol does — and reports violations.
    Tests call it repeatedly while fault-injected workloads run. *)

type violation = {
  iqs : int;
  oqs : int;
  key : Dq_storage.Key.t;
  detail : string;
}

val check : Dq_core.Cluster.t -> keys:Dq_storage.Key.t list -> violation list
(** Check the invariant for the given objects across all node pairs of
    a dual-quorum cluster. Empty list = invariant holds. *)

val install_periodic :
  Dq_sim.Engine.t ->
  Dq_core.Cluster.t ->
  keys:Dq_storage.Key.t list ->
  every_ms:float ->
  until_ms:float ->
  violation list ref
(** Schedule {!check} every [every_ms] of virtual time until
    [until_ms]; violations accumulate in the returned cell. *)

val pp : Format.formatter -> violation -> unit
