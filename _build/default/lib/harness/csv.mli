(** CSV export of experiment data, for external plotting.

    The CLI's [--csv DIR] option routes every regenerated figure
    through {!write_series} / {!write_rows}, one file per figure, so
    the paper's plots can be redrawn with any tool. *)

val escape : string -> string
(** RFC-4180 quoting for cells containing commas, quotes or newlines. *)

val to_string : header:string list -> string list list -> string

val write_rows : dir:string -> name:string -> header:string list -> string list list -> string
(** Write [name].csv under [dir] (created if missing); returns the
    path. *)

val write_series :
  dir:string ->
  name:string ->
  x_label:string ->
  x_of:('a -> string) ->
  ('a * (string * float) list) list ->
  string
(** One column per series label, one row per x value — the same shape
    as {!Render.series}. *)
