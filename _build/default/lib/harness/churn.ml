module Engine = Dq_sim.Engine
module Rng = Dq_util.Rng

type node_churn = {
  id : int;
  mutable down_since : float option;
  mutable total_down : float;
  mutable started : float;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  crash : int -> unit;
  recover : int -> unit;
  mttf_ms : float;
  mttr_ms : float;
  nodes : (int, node_churn) Hashtbl.t;
  mutable stopped : bool;
}

let periods_for ~p ~cycle_ms =
  if p <= 0. || p >= 1. then invalid_arg "Churn.periods_for: p must be in (0, 1)";
  (cycle_ms *. (1. -. p), cycle_ms *. p)

let rec schedule_crash t node =
  let delay = Rng.exponential t.rng ~mean:t.mttf_ms in
  ignore
    (Engine.schedule t.engine ~delay (fun () ->
         if not t.stopped then begin
           t.crash node.id;
           node.down_since <- Some (Engine.now t.engine);
           schedule_recover t node
         end))

and schedule_recover t node =
  let delay = Rng.exponential t.rng ~mean:t.mttr_ms in
  ignore
    (Engine.schedule t.engine ~delay (fun () ->
         if not t.stopped then begin
           t.recover node.id;
           (match node.down_since with
           | Some since -> node.total_down <- node.total_down +. (Engine.now t.engine -. since)
           | None -> ());
           node.down_since <- None;
           schedule_crash t node
         end))

let install engine ~crash ~recover ~servers ~mttf_ms ~mttr_ms =
  if mttf_ms <= 0. || mttr_ms <= 0. then invalid_arg "Churn.install: periods must be positive";
  let t =
    {
      engine;
      rng = Engine.split_rng engine;
      crash;
      recover;
      mttf_ms;
      mttr_ms;
      nodes = Hashtbl.create 16;
      stopped = false;
    }
  in
  List.iter
    (fun id ->
      let node = { id; down_since = None; total_down = 0.; started = Engine.now engine } in
      Hashtbl.replace t.nodes id node;
      schedule_crash t node)
    servers;
  t

let stop t = t.stopped <- true

let downtime_fraction t ~node =
  match Hashtbl.find_opt t.nodes node with
  | None -> 0.
  | Some n ->
    let elapsed = Dq_sim.Engine.now t.engine -. n.started in
    if elapsed <= 0. then 0.
    else
      let down =
        n.total_down
        +. (match n.down_since with
           | Some since -> Dq_sim.Engine.now t.engine -. since
           | None -> 0.)
      in
      down /. elapsed
