(** A record of every operation an experiment issued, with real-time
    invocation/response intervals — the input to the consistency
    checker. *)

open Dq_storage

type kind = Read | Write

type op = {
  id : int;
  client : int;
  key : Key.t;
  kind : kind;
  value : string;
      (** for writes, the (unique) value written; for reads, the value
          returned *)
  lc : Lc.t option;
      (** logical clock: assigned (writes) or observed (reads); [None]
          for operations that never completed *)
  invoked : float;
  responded : float option;  (** [None]: no response (timed out / node down) *)
}

type t

val create : unit -> t

val begin_op : t -> client:int -> key:Key.t -> kind:kind -> value:string -> now:float -> int
(** Returns the operation id. For reads, [value] is [""] until completion. *)

val complete_op : t -> id:int -> value:string -> lc:Lc.t -> now:float -> unit

val ops : t -> op list
(** All operations, in id order. *)

val completed_count : t -> int

val size : t -> int
