lib/harness/history.ml: Dq_storage Hashtbl Int Key Lc List
