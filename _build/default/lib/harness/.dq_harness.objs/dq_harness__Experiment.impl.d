lib/harness/experiment.ml: Churn Dq_analysis Dq_core Dq_intf Dq_net Dq_quorum Dq_sim Dq_storage Dq_util Dq_workload Driver Float Fun List Option Printf Registry Regular_checker Staleness
