lib/harness/invariant.ml: Dq_core Dq_quorum Dq_sim Dq_storage Format Key List
