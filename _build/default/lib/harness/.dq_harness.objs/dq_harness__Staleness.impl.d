lib/harness/staleness.ml: Dq_storage Float Format Hashtbl History Key Lc List Option Stdlib
