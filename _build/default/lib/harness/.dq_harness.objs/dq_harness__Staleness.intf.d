lib/harness/staleness.mli: Format History
