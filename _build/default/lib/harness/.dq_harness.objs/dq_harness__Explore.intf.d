lib/harness/explore.mli: Dq_core History
