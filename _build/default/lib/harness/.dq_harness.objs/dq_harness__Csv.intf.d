lib/harness/csv.mli:
