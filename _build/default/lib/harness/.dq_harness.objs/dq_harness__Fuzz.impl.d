lib/harness/fuzz.ml: Dq_net Dq_sim Dq_storage Dq_util Dq_workload Driver Format Invariant Key List Printf Registry Regular_checker
