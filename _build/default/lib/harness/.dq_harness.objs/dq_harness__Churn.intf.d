lib/harness/churn.mli: Dq_sim
