lib/harness/churn.ml: Dq_sim Dq_util Hashtbl List
