lib/harness/render.ml: Dq_util Experiment List Printf
