lib/harness/registry.mli: Dq_core Dq_intf Dq_net Dq_sim
