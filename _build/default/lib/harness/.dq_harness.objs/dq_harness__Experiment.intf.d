lib/harness/experiment.mli: Dq_net Dq_workload Registry
