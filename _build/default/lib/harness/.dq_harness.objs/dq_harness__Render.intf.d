lib/harness/render.mli: Dq_util Experiment
