lib/harness/csv.ml: Buffer Filename List Printf String Sys
