lib/harness/regular_checker.mli: Dq_storage Format History
