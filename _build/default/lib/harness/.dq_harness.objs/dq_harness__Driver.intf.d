lib/harness/driver.mli: Dq_intf Dq_net Dq_sim Dq_util Dq_workload History
