lib/harness/invariant.mli: Dq_core Dq_sim Dq_storage Format
