lib/harness/history.mli: Dq_storage Key Lc
