lib/harness/explore.ml: Dq_core Dq_intf Dq_net Dq_sim Dq_storage Dq_util Hashtbl History Int64 Key List Queue Regular_checker
