lib/harness/regular_checker.ml: Dq_storage Format Hashtbl History Int Key Lc List Option
