lib/harness/fuzz.mli: Format Registry
