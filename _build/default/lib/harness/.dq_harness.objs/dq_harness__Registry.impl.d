lib/harness/registry.ml: Dq_core Dq_intf Dq_net Dq_proto Dq_quorum Dq_sim List Printf
