lib/harness/driver.ml: Dq_intf Dq_net Dq_sim Dq_util Dq_workload History List Printf Stdlib
