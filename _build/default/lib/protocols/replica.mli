(** A baseline replica: a timestamped key-value store node.

    Serves reads and timestamp queries, applies timestamped writes
    (last-writer-wins by logical clock), merges asynchronous
    propagation, and — in primary mode — assigns timestamps itself and
    pushes updates to its backups. With [anti_entropy_ms] set, the
    replica periodically gossips its whole store to a random peer
    (ROWA-Async epidemic propagation), which converges even under
    message loss. Store contents are durable across crashes. *)

open Dq_storage

type mode =
  | Plain  (** majority quorum / ROWA member *)
  | Primary of { backups : int list }
  | Async_member of { peers : int list; anti_entropy_ms : float }

type t

val create :
  net:Base_msg.t Dq_net.Net.t -> rng:Dq_util.Rng.t -> me:int -> mode:mode -> t

val handle : t -> src:int -> Base_msg.t -> unit

val start : t -> unit
(** Arm periodic anti-entropy (no-op in other modes). Call once after
    all nodes are registered. *)

val quiesce : t -> unit
(** Stop anti-entropy. *)

val on_recover : t -> unit
(** Re-arm periodic work after a crash; the store itself is durable. *)

(** {2 Introspection} *)

val stored : t -> Key.t -> Versioned.t

val logical_clock : t -> Lc.t
