lib/protocols/base_cluster.mli: Base_msg Dq_intf Dq_net Dq_quorum Dq_sim Replica
