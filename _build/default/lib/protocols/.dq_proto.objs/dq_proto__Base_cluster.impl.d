lib/protocols/base_cluster.ml: Base_frontend Base_msg Dq_intf Dq_net Dq_quorum Dq_sim Dq_storage Hashtbl List Option Printf Replica
