lib/protocols/mailbox.ml: Dq_net Dq_sim Hashtbl List
