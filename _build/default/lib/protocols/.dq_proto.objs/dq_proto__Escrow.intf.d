lib/protocols/escrow.mli: Dq_net Dq_sim Dq_storage Key
