lib/protocols/mailbox.mli: Dq_net Dq_sim
