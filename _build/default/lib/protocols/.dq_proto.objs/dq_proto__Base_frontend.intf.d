lib/protocols/base_frontend.mli: Base_msg Dq_net Dq_quorum Dq_storage Dq_util Key Lc
