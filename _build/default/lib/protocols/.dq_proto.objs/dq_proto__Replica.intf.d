lib/protocols/replica.mli: Base_msg Dq_net Dq_storage Dq_util Key Lc Versioned
