lib/protocols/base_msg.ml: Dq_storage Key Lc List String
