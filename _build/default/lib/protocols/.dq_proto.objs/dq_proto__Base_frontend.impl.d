lib/protocols/base_frontend.ml: Base_msg Dq_net Dq_quorum Dq_rpc Dq_storage Dq_util Hashtbl Lc List
