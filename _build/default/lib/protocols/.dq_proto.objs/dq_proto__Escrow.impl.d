lib/protocols/escrow.ml: Dq_net Dq_sim Dq_storage Dq_util Float Hashtbl Key List Obj_map Option Stdlib
