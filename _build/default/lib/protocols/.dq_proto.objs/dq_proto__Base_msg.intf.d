lib/protocols/base_msg.mli: Dq_storage Key Lc
