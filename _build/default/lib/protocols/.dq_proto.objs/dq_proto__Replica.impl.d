lib/protocols/replica.ml: Base_msg Dq_net Dq_storage Dq_util Hashtbl Key Lc List Obj_map Versioned
