(** Escrow-partitioned inventory counters — the paper's third object
    category (Section 1): {e commutative-write, approximate-read}
    objects such as the TPC-W per-product inventory count.

    The initial stock of each item is split into per-edge-server
    escrow shares. A purchase decrements the local share — local
    latency, no coordination, and {b never oversells} because shares
    partition the stock. When a replica's share runs dry it requests a
    transfer from the peer believed to hold the most, discovering
    balances through periodic gossip. Reads are {e approximate}: the
    local share plus the last gossiped view of the others.

    Safety invariant (tested): the sum of successful decrements never
    exceeds the initial stock. Liveness (tested): while global stock
    remains, a retried purchase eventually succeeds. *)

open Dq_storage

type t
(** A cluster of escrow counter replicas. *)

val create :
  Dq_sim.Engine.t ->
  Dq_net.Topology.t ->
  ?gossip_ms:float ->
  ?transfer_timeout_ms:float ->
  stock:(Key.t -> int) ->
  unit ->
  t
(** [stock] gives each item's initial stock, split evenly across the
    servers (the first servers receive the remainder). Gossip defaults
    to every 500 ms; dry-share purchases retry after
    [transfer_timeout_ms] (default 400). *)

val buy :
  t -> client:int -> server:int -> Key.t -> amount:int -> (bool -> unit) -> unit
(** Attempt to consume [amount] units; the callback receives [false]
    when the item is (believed) sold out. *)

val approx_count : t -> server:int -> Key.t -> int
(** The server's current estimate of global remaining stock. *)

val exact_remaining : t -> Key.t -> int
(** Ground truth across all replicas (introspection for tests). *)

val total_sold : t -> Key.t -> int
(** Successful decrements so far (introspection for tests). *)

val quiesce : t -> unit

val crash : t -> int -> unit

val recover : t -> int -> unit
