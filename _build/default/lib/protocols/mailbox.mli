(** Multi-writer, single-reader mailboxes — the paper's second object
    category (Section 1): objects like customer orders that any edge
    server appends to but only one site (the order-processing origin)
    consumes.

    An append is acknowledged as soon as the local edge server has
    durably queued it ({e local latency}); the server then forwards it
    to the home node with at-least-once retransmission, and the home
    deduplicates by (edge, sequence number), so every acknowledged
    append is delivered to the consumer {b exactly once} — under
    message loss, duplication and transient crashes of either side.
    The consumer sees entries in arrival order; no further ordering is
    guaranteed (retransmissions may overtake). *)

type t

val create :
  Dq_sim.Engine.t ->
  Dq_net.Topology.t ->
  home:int ->
  ?retransmit_ms:float ->
  unit ->
  t
(** [home] is the single consuming node (must be a server). *)

val append : t -> client:int -> server:int -> string -> (unit -> unit) -> unit
(** Queue an entry through an edge server; the callback fires when the
    edge has accepted it (not when the home has it). *)

val consume : t -> int -> string list
(** Take up to n entries delivered to the home, in delivery order. *)

val delivered_count : t -> int
(** Entries that reached the home so far (consumed or not). *)

val unforwarded_count : t -> int
(** Entries still queued at edges (introspection for tests). *)

val crash : t -> int -> unit

val recover : t -> int -> unit

val quiesce : t -> unit
