open Dq_storage
module Net = Dq_net.Net

type mode =
  | Plain
  | Primary of { backups : int list }
  | Async_member of { peers : int list; anti_entropy_ms : float }

type t = {
  net : Base_msg.t Net.t;
  rng : Dq_util.Rng.t;
  me : int;
  mode : mode;
  store : (Key.t, Versioned.t) Obj_map.t;
  mutable global_lc : Lc.t;
  fwd_assigned : (int * int, Lc.t) Hashtbl.t;
      (* (front end, op) -> timestamp already assigned by this primary;
         retransmitted forwards must not be executed twice *)
  mutable quiesced : bool;
}

let create ~net ~rng ~me ~mode =
  {
    net;
    rng;
    me;
    mode;
    store = Obj_map.of_key_default ~default:(fun _ -> Versioned.initial);
    global_lc = Lc.zero;
    fwd_assigned = Hashtbl.create 16;
    quiesced = false;
  }

let send t dst msg = Net.send t.net ~src:t.me ~dst msg

let apply t ~key ~value ~lc =
  let current = Obj_map.get t.store key in
  if Lc.(lc > current.lc) then begin
    Obj_map.set t.store key (Versioned.make ~value ~lc);
    t.global_lc <- Lc.max t.global_lc lc
  end

let entries t = Obj_map.fold t.store ~init:[] ~f:(fun key v acc -> (key, v.value, v.lc) :: acc)

let rec arm_anti_entropy t ~peers ~period_ms =
  ignore
    (Net.timer t.net ~node:t.me ~delay_ms:period_ms (fun () ->
         if not t.quiesced then begin
           let others = List.filter (fun p -> p <> t.me) peers in
           (match others with
           | [] -> ()
           | _ ->
             let peer = List.nth others (Dq_util.Rng.int t.rng (List.length others)) in
             send t peer (Base_msg.Gossip { entries = entries t }));
           arm_anti_entropy t ~peers ~period_ms
         end))

let start t =
  match t.mode with
  | Async_member { peers; anti_entropy_ms } ->
    arm_anti_entropy t ~peers ~period_ms:anti_entropy_ms
  | Plain | Primary _ -> ()

let quiesce t = t.quiesced <- true

let on_recover t = start t

let handle t ~src msg =
  match msg with
  | Base_msg.Read_req { op; key } ->
    let v = Obj_map.get t.store key in
    send t src (Base_msg.Read_reply { op; key; value = v.value; lc = v.lc })
  | Base_msg.Lc_req { op } -> send t src (Base_msg.Lc_reply { op; lc = t.global_lc })
  | Base_msg.Write_req { op; key; value; lc } ->
    apply t ~key ~value ~lc;
    send t src (Base_msg.Write_ack { op; key; lc });
    (* In the epidemic protocol, a locally accepted write is pushed
       asynchronously to all peers. *)
    (match t.mode with
    | Async_member { peers; _ } ->
      List.iter
        (fun peer -> if peer <> t.me then send t peer (Base_msg.Propagate { key; value; lc }))
        peers
    | Plain | Primary _ -> ())
  | Base_msg.Fwd_write_req { op; key; value } -> (
    match t.mode with
    | Primary { backups } -> (
      match Hashtbl.find_opt t.fwd_assigned (src, op) with
      | Some lc ->
        (* Retransmission: execute at most once, re-acknowledge. *)
        send t src (Base_msg.Fwd_write_ack { op; key; lc })
      | None ->
        (* The primary orders writes itself and propagates
           asynchronously; the acknowledgment does not wait for the
           backups. *)
        let lc = Lc.succ t.global_lc ~node:t.me in
        t.global_lc <- lc;
        Hashtbl.replace t.fwd_assigned (src, op) lc;
        apply t ~key ~value ~lc;
        List.iter
          (fun backup ->
            if backup <> t.me then send t backup (Base_msg.Propagate { key; value; lc }))
          backups;
        send t src (Base_msg.Fwd_write_ack { op; key; lc }))
    | Plain | Async_member _ -> ())
  | Base_msg.Propagate { key; value; lc } -> apply t ~key ~value ~lc
  | Base_msg.Gossip { entries } ->
    List.iter (fun (key, value, lc) -> apply t ~key ~value ~lc) entries
  | Base_msg.Client_read_req _ | Base_msg.Client_read_reply _ | Base_msg.Client_write_req _
  | Base_msg.Client_write_reply _ | Base_msg.Read_reply _ | Base_msg.Lc_reply _
  | Base_msg.Write_ack _ | Base_msg.Fwd_write_ack _ ->
    ()

let stored t key = Obj_map.get t.store key

let logical_clock t = t.global_lc
