(** A hash table with an implicit default: looking up an absent key
    materializes (and remembers) a default entry. Protocol servers use
    this for their per-object and per-volume state, which conceptually
    exists for every object from the start. *)

type ('k, 'v) t

val create : hash:('k -> int) -> equal:('k -> 'k -> bool) -> default:('k -> 'v) -> ('k, 'v) t

val get : ('k, 'v) t -> 'k -> 'v
(** Find, creating the default entry if absent. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Find without materializing. *)

val set : ('k, 'v) t -> 'k -> 'v -> unit

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit

val fold : ('k, 'v) t -> init:'a -> f:('k -> 'v -> 'a -> 'a) -> 'a

val clear : ('k, 'v) t -> unit

val length : ('k, 'v) t -> int

val of_key_default : default:(Key.t -> 'v) -> (Key.t, 'v) t
(** Convenience constructor for {!Key.t}-indexed maps. *)

val of_int_default : default:(int -> 'v) -> (int, 'v) t
(** Convenience constructor for [int]-indexed maps (volumes, nodes). *)
