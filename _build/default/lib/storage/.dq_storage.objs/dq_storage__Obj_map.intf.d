lib/storage/obj_map.mli: Key
