lib/storage/key.ml: Format Int
