lib/storage/versioned.ml: Format Lc
