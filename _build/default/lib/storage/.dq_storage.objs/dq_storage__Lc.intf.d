lib/storage/lc.mli: Format
