lib/storage/versioned.mli: Format Lc
