lib/storage/key.mli: Format
