lib/storage/lc.ml: Format Int Stdlib
