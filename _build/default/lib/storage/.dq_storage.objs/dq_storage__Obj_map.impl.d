lib/storage/obj_map.ml: Array Int Key List
