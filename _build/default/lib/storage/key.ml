type t = { volume : int; index : int }

let make ~volume ~index =
  if volume < 0 || index < 0 then invalid_arg "Key.make: negative component";
  { volume; index }

let volume t = t.volume

let index t = t.index

let compare a b =
  let c = Int.compare a.volume b.volume in
  if c <> 0 then c else Int.compare a.index b.index

let equal a b = compare a b = 0

let hash t = (t.volume * 1000003) lxor t.index

let pp ppf t = Format.fprintf ppf "v%d/o%d" t.volume t.index

let to_string t = Format.asprintf "%a" pp t
