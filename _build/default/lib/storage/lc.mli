(** Logical clocks (write timestamps).

    The paper orders writes by logical clock values obtained from IQS
    servers. To make the order total when two clients concurrently pick
    the same counter value, a timestamp pairs the counter with the id of
    the node that issued the write, compared lexicographically — the
    standard Lamport construction. [zero] is smaller than any timestamp
    a client can produce and denotes "no write yet". *)

type t = { count : int; node : int }

val zero : t

val make : count:int -> node:int -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val ( < ) : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( > ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val max : t -> t -> t

val succ : t -> node:int -> t
(** [succ t ~node] is the smallest timestamp issued by [node] that is
    greater than [t]: counter [t.count + 1], tagged with [node]. *)

val pp : Format.formatter -> t -> unit
