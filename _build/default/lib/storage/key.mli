(** Object identifiers.

    The volume-lease protocol groups objects into {e volumes}: a volume
    lease covers every object of the volume, while object leases
    (callbacks) are per object. A key therefore names both its volume
    and its index within the volume. *)

type t = private { volume : int; index : int }

val make : volume:int -> index:int -> t

val volume : t -> int

val index : t -> int

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
