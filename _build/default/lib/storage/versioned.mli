(** A value tagged with the logical clock of the write that produced it. *)

type t = { value : string; lc : Lc.t }

val initial : t
(** The state of an object never written: empty value at {!Lc.zero}. *)

val make : value:string -> lc:Lc.t -> t

val newer : t -> t -> t
(** The one with the larger timestamp (left-biased on equality). *)

val pp : Format.formatter -> t -> unit
