type t = { value : string; lc : Lc.t }

let initial = { value = ""; lc = Lc.zero }

let make ~value ~lc = { value; lc }

let newer a b = if Lc.(a.lc >= b.lc) then a else b

let pp ppf t = Format.fprintf ppf "%S@%a" t.value Lc.pp t.lc
