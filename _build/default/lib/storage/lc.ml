type t = { count : int; node : int }

let zero = { count = 0; node = -1 }

let make ~count ~node = { count; node }

let compare a b =
  let c = Int.compare a.count b.count in
  if c <> 0 then c else Int.compare a.node b.node

let equal a b = compare a b = 0

let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0

let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b

let succ t ~node = { count = t.count + 1; node }

let pp ppf t = Format.fprintf ppf "%d.%d" t.count t.node
