lib/sim/clock.ml: Dq_util Engine Float
