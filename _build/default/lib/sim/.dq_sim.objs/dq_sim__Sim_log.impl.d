lib/sim/sim_log.ml: Engine Format Logs
