lib/sim/heap.mli:
