lib/sim/sim_log.mli: Engine Logs
