lib/sim/engine.ml: Dq_util Heap Printf
