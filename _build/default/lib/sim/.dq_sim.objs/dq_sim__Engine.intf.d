lib/sim/engine.mli: Dq_util
