lib/sim/clock.mli: Dq_util Engine
