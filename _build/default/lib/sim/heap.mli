(** A mutable binary min-heap, the event queue of the simulation engine.

    Elements are ordered by a user-supplied comparison fixed at creation.
    Amortized O(log n) insert and pop. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)
