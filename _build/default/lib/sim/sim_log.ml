let reporter engine =
  let report src _level ~over k msgf =
    msgf (fun ?header ?tags fmt ->
        ignore header;
        ignore tags;
        let k _ =
          over ();
          k ()
        in
        Format.kfprintf k Format.std_formatter
          ("[%9.1fms] [%s] " ^^ fmt ^^ "@.")
          (Engine.now engine) (Logs.Src.name src))
  in
  { Logs.report }

let setup ?(level = Logs.Debug) engine =
  Logs.set_reporter (reporter engine);
  Logs.set_level (Some level)
