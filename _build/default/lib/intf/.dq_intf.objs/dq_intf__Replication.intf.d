lib/intf/replication.mli: Dq_net Dq_storage
