lib/intf/replication.ml: Dq_net Dq_storage
