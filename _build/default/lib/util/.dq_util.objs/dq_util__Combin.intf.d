lib/util/combin.mli:
