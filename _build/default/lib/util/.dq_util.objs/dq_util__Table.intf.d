lib/util/table.mli:
