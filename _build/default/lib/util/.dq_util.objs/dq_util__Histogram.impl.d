lib/util/histogram.ml: Array Buffer List Printf Stdlib String
