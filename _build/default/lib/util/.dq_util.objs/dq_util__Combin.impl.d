lib/util/combin.ml: Array Float Stdlib
