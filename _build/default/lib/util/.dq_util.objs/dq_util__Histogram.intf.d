lib/util/histogram.mli:
