lib/util/rng.mli:
