let log_factorial =
  (* Memoized table of log k!; grown on demand. *)
  let table = ref [| 0. |] in
  fun n ->
    let t = !table in
    if n < Array.length t then t.(n)
    else begin
      let old_len = Array.length t in
      let len = Stdlib.max (n + 1) (2 * old_len) in
      let t' = Array.make len 0. in
      Array.blit t 0 t' 0 old_len;
      for k = old_len to len - 1 do
        t'.(k) <- t'.(k - 1) +. log (float_of_int k)
      done;
      table := t';
      t'.(n)
    end

let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let choose n k = if k < 0 || k > n then 0. else exp (log_choose n k)

let binomial_pmf ~n ~p k =
  if k < 0 || k > n then 0.
  else if p <= 0. then (if k = 0 then 1. else 0.)
  else if p >= 1. then (if k = n then 1. else 0.)
  else
    exp (log_choose n k +. (float_of_int k *. log p) +. (float_of_int (n - k) *. log (1. -. p)))

let binomial_tail_ge ~n ~p k =
  if k <= 0 then 1.
  else begin
    (* Sum the smaller tail directly in probability space; terms are
       positive so there is no cancellation. *)
    let acc = ref 0. in
    for i = k to n do
      acc := !acc +. binomial_pmf ~n ~p i
    done;
    Float.min 1. !acc
  end

let binomial_tail_le ~n ~p k =
  if k >= n then 1.
  else begin
    let acc = ref 0. in
    for i = 0 to k do
      acc := !acc +. binomial_pmf ~n ~p i
    done;
    Float.min 1. !acc
  end
