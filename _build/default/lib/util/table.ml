type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row =
  let ncols = List.length t.header in
  let len = List.length row in
  if len > ncols then invalid_arg "Table.add_row: too many columns";
  let padded = row @ List.init (ncols - len) (fun _ -> "") in
  t.rows <- padded :: t.rows

let add_float_row t label xs =
  add_row t (label :: List.map (Printf.sprintf "%g") xs)

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  let note_widths row =
    List.iteri
      (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell)
      row
  in
  List.iter note_widths all;
  let buf = Buffer.create 256 in
  let pad cell width =
    let n = width - String.length cell in
    cell ^ String.make n ' '
  in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad cell widths.(i)))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row t.header;
  Array.iter (fun w -> Buffer.add_string buf (String.make w '-'); Buffer.add_string buf "  ") widths;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t = print_string (render t); print_newline ()
