(** Combinatorial probability helpers used by the availability models.

    Unavailabilities of interest reach 1e-12 and below, so everything is
    computed with explicit products of probabilities (never via
    [1. -. tiny]) where cancellation matters. *)

val log_choose : int -> int -> float
(** [log_choose n k] is log (n choose k); [neg_infinity] outside [0..n]. *)

val choose : int -> int -> float
(** [choose n k] as a float (exact for small n, via logs otherwise). *)

val binomial_pmf : n:int -> p:float -> int -> float
(** [binomial_pmf ~n ~p k] = P(X = k) for X ~ Binomial(n, p). *)

val binomial_tail_ge : n:int -> p:float -> int -> float
(** [binomial_tail_ge ~n ~p k] = P(X >= k). *)

val binomial_tail_le : n:int -> p:float -> int -> float
(** [binomial_tail_le ~n ~p k] = P(X <= k). *)
