(** Online and batch summary statistics for latency and count samples. *)

type t
(** A mutable accumulator of float samples. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one sample. *)

val count : t -> int

val mean : t -> float
(** Arithmetic mean; [nan] if no samples. *)

val stddev : t -> float
(** Sample standard deviation; [0.] with fewer than two samples. *)

val min : t -> float
(** Smallest sample; [nan] if none. *)

val max : t -> float
(** Largest sample; [nan] if none. *)

val sum : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], by linear interpolation over
    the sorted samples; [nan] if no samples. Samples are retained, so this
    is exact, not an approximation. *)

val median : t -> float

val to_list : t -> float list
(** All recorded samples, in insertion order. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator holding the samples of both. *)

val pp_summary : Format.formatter -> t -> unit
(** Render "mean p50 p99 min max n" on one line. *)
