(** The communication-overhead model of Section 4.3 (Figure 9).

    Expected number of message exchanges per client request, counting
    every request and reply as one message with equal weight (the
    paper's simplification). For DQVL the per-request cost depends on
    whether the previous operation on the object was a read or a write;
    with operations drawn independently at write ratio [w], steady
    state gives P(read miss) = w and P(write through) = 1 - w:

    - read hit: one exchange with an OQS read quorum, [2 |orq|];
    - read miss: the hit cost plus each OQS read-quorum node renewing
      from an IQS read quorum, [2 |orq| |irq|];
    - write suppress: the timestamp read from an IQS read quorum plus
      the write round to an IQS write quorum, [2 |irq| + 2 |iwq|];
    - write through: the suppress cost plus each IQS write-quorum node
      invalidating an OQS write quorum, [2 |iwq| |owq|].

    Background volume-lease renewals are amortized over many objects
    and excluded, as in the paper. *)

type sizes = {
  orq : int;  (** OQS read quorum size *)
  owq : int;  (** OQS write quorum size *)
  irq : int;  (** IQS read quorum size *)
  iwq : int;  (** IQS write quorum size *)
}

val dqvl_sizes : n_iqs:int -> n_oqs:int -> sizes
(** Majority IQS, read-one/write-all OQS. *)

(** {2 Per-scenario DQVL costs} *)

val read_hit : sizes -> float
val read_miss : sizes -> float
val write_suppress : sizes -> float
val write_through : sizes -> float

val dqvl : sizes -> w:float -> float
(** Steady-state expected messages per request at write ratio [w]. *)

val dqvl_with_hit_rates : sizes -> w:float -> p_miss:float -> p_through:float -> float
(** Same, but with explicit miss/through probabilities (for bursty
    workloads where consecutive same-kind operations dominate). *)

(** {2 Baselines} *)

val majority : n:int -> w:float -> float
val rowa : n:int -> w:float -> float
val rowa_async : n:int -> w:float -> float
val primary_backup : n:int -> w:float -> float
