lib/analysis/overhead_model.mli:
