lib/analysis/overhead_model.ml:
