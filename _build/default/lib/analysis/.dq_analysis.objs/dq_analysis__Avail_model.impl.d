lib/analysis/avail_model.ml: Dq_quorum Float Fun List
