lib/analysis/avail_model.mli: Dq_quorum
