type sizes = { orq : int; owq : int; irq : int; iwq : int }

let dqvl_sizes ~n_iqs ~n_oqs =
  let q = (n_iqs / 2) + 1 in
  { orq = 1; owq = n_oqs; irq = q; iwq = q }

let f = float_of_int

let read_hit s = 2. *. f s.orq

let read_miss s = (2. *. f s.orq) +. (2. *. f s.orq *. f s.irq)

let write_suppress s = (2. *. f s.irq) +. (2. *. f s.iwq)

let write_through s = write_suppress s +. (2. *. f s.iwq *. f s.owq)

let dqvl_with_hit_rates s ~w ~p_miss ~p_through =
  let read_cost = ((1. -. p_miss) *. read_hit s) +. (p_miss *. read_miss s) in
  let write_cost =
    ((1. -. p_through) *. write_suppress s) +. (p_through *. write_through s)
  in
  ((1. -. w) *. read_cost) +. (w *. write_cost)

let dqvl s ~w =
  (* Independent draws: a read misses iff the previous operation on the
     object was a write (probability w); a write must invalidate (write
     through) iff the previous operation was a read (probability 1-w). *)
  dqvl_with_hit_rates s ~w ~p_miss:w ~p_through:(1. -. w)

let majority ~n ~w =
  let q = f ((n / 2) + 1) in
  let read_cost = 2. *. q in
  let write_cost = (2. *. q) +. (2. *. q) in
  ((1. -. w) *. read_cost) +. (w *. write_cost)

let rowa ~n ~w =
  let read_cost = 2. in
  let write_cost = 2. *. f n in
  ((1. -. w) *. read_cost) +. (w *. write_cost)

let rowa_async ~n ~w =
  let read_cost = 2. in
  (* Local write acknowledged immediately, then one asynchronous
     propagation message to each other replica. *)
  let write_cost = 2. +. f (n - 1) in
  ((1. -. w) *. read_cost) +. (w *. write_cost)

let primary_backup ~n ~w =
  let read_cost = 2. in
  let write_cost = 2. +. f (n - 1) in
  ((1. -. w) *. read_cost) +. (w *. write_cost)
