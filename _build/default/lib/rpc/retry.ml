type t = {
  timer : delay_ms:float -> (unit -> unit) -> Dq_sim.Engine.handle;
  attempt : round:int -> unit;
  complete : unit -> bool;
  on_complete : unit -> unit;
  timeout_ms : float;
  backoff : float;
  max_rounds : int option;
  on_give_up : unit -> unit;
  mutable round : int;
  mutable done_ : bool;
  mutable pending : Dq_sim.Engine.handle option;
}

let disarm t =
  match t.pending with
  | Some handle ->
    Dq_sim.Engine.cancel handle;
    t.pending <- None
  | None -> ()

let finish t callback =
  if not t.done_ then begin
    t.done_ <- true;
    disarm t;
    callback ()
  end

let poke t = if (not t.done_) && t.complete () then finish t t.on_complete

let rerun t =
  if not t.done_ then begin
    t.attempt ~round:t.round;
    poke t
  end

let rec arm t =
  let delay_ms = t.timeout_ms *. (t.backoff ** float_of_int t.round) in
  t.pending <- Some (t.timer ~delay_ms (fun () -> on_timeout t))

and on_timeout t =
  if not t.done_ then begin
    t.pending <- None;
    let exhausted =
      match t.max_rounds with None -> false | Some m -> t.round + 1 >= m
    in
    if exhausted then finish t t.on_give_up
    else begin
      t.round <- t.round + 1;
      t.attempt ~round:t.round;
      poke t;
      if not t.done_ then arm t
    end
  end

let start ~timer ~attempt ~complete ~on_complete ?(timeout_ms = 200.) ?(backoff = 2.)
    ?max_rounds ?(on_give_up = fun () -> ()) () =
  let t =
    {
      timer;
      attempt;
      complete;
      on_complete;
      timeout_ms;
      backoff;
      max_rounds;
      on_give_up;
      round = 0;
      done_ = false;
      pending = None;
    }
  in
  attempt ~round:0;
  poke t;
  if not t.done_ then arm t;
  t

let cancel t =
  if not t.done_ then begin
    t.done_ <- true;
    disarm t
  end

let is_done t = t.done_
