lib/rpc/qrpc.ml: Dq_quorum Hashtbl List Peer_tracker Retry
