lib/rpc/qrpc.mli: Dq_quorum Dq_sim Dq_util Peer_tracker
