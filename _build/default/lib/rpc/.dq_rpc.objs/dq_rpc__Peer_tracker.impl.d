lib/rpc/peer_tracker.ml: Hashtbl List Option
