lib/rpc/retry.mli: Dq_sim
