lib/rpc/peer_tracker.mli:
