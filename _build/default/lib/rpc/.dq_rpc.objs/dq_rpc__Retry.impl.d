lib/rpc/retry.ml: Dq_sim
