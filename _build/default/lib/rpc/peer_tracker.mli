(** Per-peer response-time tracking for QRPC target selection.

    The paper (Section 2) notes that a QRPC implementation "might track
    which nodes have responded quickly in the past and first try
    sending to them". This module keeps an exponentially weighted
    moving average of each peer's request→reply latency; {!rank} orders
    candidates fastest-first, putting peers with no history ahead so
    they get explored. *)

type t

val create : now:(unit -> float) -> t
(** [now] supplies the caller's clock (usually virtual time). *)

val note_sent : t -> int -> unit
(** Record that a request was just sent to the peer. Only the most
    recent outstanding send is matched to a reply. *)

val note_reply : t -> int -> unit
(** Record a reply; updates the peer's EWMA with the elapsed time since
    its last {!note_sent} (ignored if there was none). *)

val estimate_ms : t -> int -> float option
(** Current smoothed latency estimate, if any. *)

val rank : t -> int list -> int list
(** Candidates ordered: unexplored peers first (in given order), then
    by ascending latency estimate. *)

val observed_peers : t -> int
