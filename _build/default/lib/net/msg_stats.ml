type t = {
  mutable remote : int;
  mutable local : int;
  mutable bytes : int;
  labels : (string, int ref) Hashtbl.t;
  label_bytes : (string, int ref) Hashtbl.t;
}

let create () =
  {
    remote = 0;
    local = 0;
    bytes = 0;
    labels = Hashtbl.create 16;
    label_bytes = Hashtbl.create 16;
  }

let bump table key amount =
  match Hashtbl.find_opt table key with
  | Some r -> r := !r + amount
  | None -> Hashtbl.add table key (ref amount)

let record t ~label ~local ?(bytes = 0) () =
  if local then t.local <- t.local + 1
  else begin
    t.remote <- t.remote + 1;
    t.bytes <- t.bytes + bytes;
    bump t.labels label 1;
    bump t.label_bytes label bytes
  end

let total t = t.remote + t.local

let remote_total t = t.remote

let local_total t = t.local

let by_label t =
  Hashtbl.fold (fun label r acc -> (label, !r) :: acc) t.labels []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let remote_bytes t = t.bytes

let bytes_by_label t =
  Hashtbl.fold (fun label r acc -> (label, !r) :: acc) t.label_bytes []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  t.remote <- 0;
  t.local <- 0;
  t.bytes <- 0;
  Hashtbl.reset t.labels;
  Hashtbl.reset t.label_bytes

let pp ppf t =
  Format.fprintf ppf "@[<v>remote=%d local=%d" t.remote t.local;
  List.iter (fun (label, n) -> Format.fprintf ppf "@,  %s: %d" label n) (by_label t);
  Format.fprintf ppf "@]"
