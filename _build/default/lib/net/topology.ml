type role = Server | Client

type t = {
  n_servers : int;
  n_clients : int;
  delay_fn : src:int -> dst:int -> float;
  closest_fn : int -> int;
}

let n_nodes t = t.n_servers + t.n_clients

let nodes t = List.init (n_nodes t) Fun.id

let role t id =
  if id < 0 || id >= n_nodes t then invalid_arg "Topology.role: bad node id";
  if id < t.n_servers then Server else Client

let servers t = List.init t.n_servers Fun.id

let clients t = List.init t.n_clients (fun i -> t.n_servers + i)

let delay t ~src ~dst = t.delay_fn ~src ~dst

let closest_server t id =
  if id < t.n_servers then id else t.closest_fn id

let make ~n_servers ~n_clients ?(lan_ms = 8.) ?(wan_ms = 86.) ?(server_ms = 80.)
    ?(local_ms = 0.05) ?closest () =
  if n_servers <= 0 then invalid_arg "Topology.make: need at least one server";
  let closest_fn =
    match closest with
    | Some f -> f
    | None -> fun c -> (c - n_servers) mod n_servers
  in
  let is_server id = id < n_servers in
  let delay_fn ~src ~dst =
    if src = dst then local_ms
    else
      match is_server src, is_server dst with
      | true, true -> server_ms
      | false, false -> wan_ms (* client-to-client traffic: treat as WAN *)
      | true, false -> if closest_fn dst = src then lan_ms else wan_ms
      | false, true -> if closest_fn src = dst then lan_ms else wan_ms
  in
  { n_servers; n_clients; delay_fn; closest_fn }

let custom ~n_servers ~n_clients ~delay ~closest =
  { n_servers; n_clients; delay_fn = delay; closest_fn = closest }
