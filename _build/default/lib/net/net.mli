(** The simulated message network.

    Delivers typed messages between nodes with per-link one-way delays
    from a {!Topology.t}, under an adjustable fault model:

    - message {b loss} (per-send Bernoulli),
    - message {b duplication} (a second copy with fresh jitter),
    - {b reordering} (uniform jitter added to each delivery),
    - {b partitions} (node groups that cannot exchange messages),
    - fail-stop {b crashes} (a crashed node neither sends nor receives,
      and its pending timers are invalidated).

    The paper assumes corrupted messages are discarded by checksums, so
    corruption is modelled as loss. All protocol messages must carry any
    identification the protocol needs (the network never invents
    metadata beyond the sender id). *)

type 'msg t

type fault_model = {
  loss : float;        (** per-message drop probability *)
  duplicate : float;   (** probability a message is delivered twice *)
  jitter_ms : float;   (** extra delay uniform in [0, jitter_ms] *)
}

val no_faults : fault_model

val create :
  Dq_sim.Engine.t ->
  Topology.t ->
  ?faults:fault_model ->
  classify:('msg -> string) ->
  ?size_of:('msg -> int) ->
  unit ->
  'msg t
(** [classify] labels each message for {!Msg_stats} accounting;
    [size_of] (optional) estimates its wire size in bytes for
    bandwidth accounting. *)

val engine : 'msg t -> Dq_sim.Engine.t

val topology : 'msg t -> Topology.t

val stats : 'msg t -> Msg_stats.t

val set_faults : 'msg t -> fault_model -> unit

val set_service_time : 'msg t -> ms:float -> unit
(** Per-message processing time at every node (default 0): a delivered
    message occupies its destination for [ms] of virtual time, FIFO, so
    nodes saturate under load. Response-time experiments in the paper
    assume constant processing delay; the queueing model supports load
    studies beyond it. *)

val register : 'msg t -> node:int -> (src:int -> 'msg -> unit) -> unit
(** Install the message handler for [node]. At most one handler per
    node; registering again replaces it (used by recovery). *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Fire-and-forget. Counted in {!stats} even if subsequently lost
    (the sender did transmit it); dropped silently if the sender is
    crashed, the destination is crashed at delivery time, the link is
    partitioned, or the fault model loses it. *)

(** {2 Fail-stop crashes} *)

val crash : 'msg t -> int -> unit
(** Take a node down. Idempotent. Pending timers created with
    {!timer} are invalidated. *)

val recover : 'msg t -> int -> unit
(** Bring a node back up (a fresh incarnation). Idempotent. *)

val is_up : 'msg t -> int -> bool

val on_status_change : 'msg t -> node:int -> (up:bool -> unit) -> unit
(** Register a callback invoked after each crash/recovery of [node]
    (protocols use it to reset volatile state on recovery). *)

(** {2 Node-scoped timers} *)

val timer : 'msg t -> node:int -> delay_ms:float -> (unit -> unit) -> Dq_sim.Engine.handle
(** Like {!Dq_sim.Engine.schedule}, but the action is skipped if [node]
    is down at expiry or has crashed (even transiently) since the timer
    was created. *)

(** {2 Manual delivery (schedule exploration)} *)

val set_manual : 'msg t -> bool -> unit
(** In manual mode, sent messages are not scheduled for timed delivery:
    they accumulate in a pending pool, and a test controller decides
    the delivery order with {!pending} / {!deliver_pending} /
    {!drop_pending}. Loss/duplication/jitter do not apply (the
    controller owns the nondeterminism); partitions and crashes do.
    Timers are unaffected. Used by {i schedule exploration}, which
    checks protocol correctness under message orderings the delay
    matrix could never produce. *)

val pending : 'msg t -> (int * int * 'msg) list
(** The undelivered sends, oldest first, as (src, dst, msg). *)

val deliver_pending : 'msg t -> int -> unit
(** Deliver the i-th pending message now (synchronously). Out-of-range
    indices raise [Invalid_argument]. Crashed destinations and
    partitioned pairs drop the message instead. *)

val drop_pending : 'msg t -> int -> unit
(** Remove the i-th pending message without delivering it. *)

(** {2 Partitions} *)

val partition : 'msg t -> int list list -> unit
(** [partition net groups] splits the network: messages flow only
    between nodes of the same group. Nodes absent from every group form
    an implicit final group. Replaces any previous partition. *)

val heal : 'msg t -> unit
(** Remove the partition. *)

val reachable : 'msg t -> src:int -> dst:int -> bool
(** Whether a message sent now from [src] would cross the partition
    (ignores crashes and probabilistic faults). *)
