(** Network topologies: who the nodes are and the one-way delay between
    them.

    Time unit: throughout this repository virtual time is measured in
    {b milliseconds}. The paper's evaluation testbed injects constant
    one-way delays — 8 ms between an application client and its closest
    edge server, 86 ms between a client and any other edge server, and
    80 ms between edge servers — and we reproduce exactly that model. *)

type role = Server | Client

type t

val n_nodes : t -> int

val nodes : t -> int list
(** All node ids, [0 .. n_nodes - 1]. *)

val role : t -> int -> role

val servers : t -> int list

val clients : t -> int list

val delay : t -> src:int -> dst:int -> float
(** One-way message delay in milliseconds. [delay ~src ~dst] with
    [src = dst] is the local-delivery delay (small but non-zero, so that
    a message to self is still asynchronous). *)

val closest_server : t -> int -> int
(** The edge server co-located with the given client (for a server,
    the node itself). *)

val make :
  n_servers:int ->
  n_clients:int ->
  ?lan_ms:float ->
  ?wan_ms:float ->
  ?server_ms:float ->
  ?local_ms:float ->
  ?closest:(int -> int) ->
  unit ->
  t
(** The paper's edge-service topology. Servers get ids
    [0 .. n_servers-1], clients [n_servers .. n_servers+n_clients-1].
    Client [c] is closest to server [closest c]
    (default: [(c - n_servers) mod n_servers]). Defaults:
    [lan_ms = 8.], [wan_ms = 86.], [server_ms = 80.], [local_ms = 0.05]. *)

val custom :
  n_servers:int ->
  n_clients:int ->
  delay:(src:int -> dst:int -> float) ->
  closest:(int -> int) ->
  t
(** Fully custom delay function (used in tests). *)
