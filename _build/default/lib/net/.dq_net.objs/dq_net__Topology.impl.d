lib/net/topology.ml: Fun List
