lib/net/msg_stats.mli: Format
