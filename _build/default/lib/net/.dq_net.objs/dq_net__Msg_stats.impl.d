lib/net/msg_stats.ml: Format Hashtbl List String
