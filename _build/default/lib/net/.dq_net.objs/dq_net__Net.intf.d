lib/net/net.mli: Dq_sim Msg_stats Topology
