lib/net/topology.mli:
