lib/net/net.ml: Array Dq_sim Dq_util Float List Msg_stats Printf Topology
