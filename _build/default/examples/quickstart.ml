(* Quickstart: a five-server DQVL cluster inside the simulator.

   Shows the public API end to end: build a topology, create a cluster,
   submit reads and writes from an application client, and watch the
   volume-lease machinery at work (read miss -> read hit -> write
   invalidation -> read miss again).

   Run with: dune exec examples/quickstart.exe *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Cluster = Dq_core.Cluster
module Config = Dq_core.Config
module R = Dq_intf.Replication
open Dq_storage

let () =
  (* Virtual time is milliseconds; everything is deterministic in the
     seed. *)
  let engine = Engine.create ~seed:1L () in

  (* Five edge servers, one application client. The client is node 5
     and its closest edge server is node 0 (8 ms away); other servers
     are 86 ms away; servers are 80 ms apart. *)
  let topology = Topology.make ~n_servers:5 ~n_clients:1 () in
  let servers = Topology.servers topology in

  (* The paper's default configuration: majority input quorum system
     (writes), read-one/write-all output quorum system (reads), 5 s
     volume leases kept fresh proactively. *)
  let config = Config.dqvl ~servers () in
  let cluster = Cluster.create engine topology config in
  let api = Cluster.api cluster in

  let client = 5 and home = 0 in
  let profile = Key.make ~volume:0 ~index:42 in

  let log fmt =
    Printf.ksprintf (fun s -> Printf.printf "[%8.1f ms] %s\n" (Engine.now engine) s) fmt
  in

  let step4 () =
    (* The write invalidated the cached copy, so this read misses,
       revalidates from the IQS, and returns the new value. *)
    api.R.submit_read ~client ~server:home profile (fun r ->
        log "read 3 (miss after invalidation) -> %S lc=%s" r.R.read_value
          (Format.asprintf "%a" Lc.pp r.R.read_lc))
  in
  let step3 () =
    api.R.submit_write ~client ~server:home profile "address=9 Rue du Port, Lyon" (fun w ->
        log "write 2 acknowledged by an IQS write quorum, lc=%s"
          (Format.asprintf "%a" Lc.pp w.R.write_lc);
        step4 ())
  in
  let step2 () =
    (* The object and volume leases acquired by the first read make
       this one a local read hit: ~16 ms instead of ~176 ms. *)
    let start = Engine.now engine in
    api.R.submit_read ~client ~server:home profile (fun r ->
        log "read 2 (hit, %.1f ms) -> %S" (Engine.now engine -. start) r.R.read_value;
        step3 ())
  in
  let step1 () =
    let start = Engine.now engine in
    api.R.submit_read ~client ~server:home profile (fun r ->
        log "read 1 (miss, %.1f ms) -> %S (initial value)"
          (Engine.now engine -. start) r.R.read_value;
        step2 ())
  in
  api.R.submit_write ~client ~server:home profile "address=12 High St, Austin" (fun w ->
      log "write 1 acknowledged, lc=%s" (Format.asprintf "%a" Lc.pp w.R.write_lc);
      step1 ());

  Engine.run ~until:60_000. engine;
  api.R.quiesce ();

  (* Peek inside: the home OQS node holds a valid cached copy. *)
  (match Cluster.oqs_server cluster home with
  | Some oqs ->
    Printf.printf "\nhome OQS cache: %s (condition C %s)\n"
      (Format.asprintf "%a" Versioned.pp (Dq_core.Oqs_server.cached oqs profile))
      (if Dq_core.Oqs_server.is_locally_valid oqs profile then "holds" else "does not hold")
  | None -> ());
  print_endline "quickstart: done"
