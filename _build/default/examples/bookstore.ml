(* A miniature TPC-W edge bookstore - the paper's motivating application
   (Section 1), composed from per-object-category protocols:

   - product catalog: single-writer (the origin), multi-reader ->
     ROWA-Async dissemination (stale product blurbs are acceptable);
   - customer profiles: multi-writer multi-reader with locality ->
     DQVL (the paper's contribution; local reads, regular semantics);
   - orders: multi-writer, single-reader (the order-processing
     origin) -> mailbox with exactly-once delivery; a majority quorum
     is shown alongside as the strong-consistency alternative;
   - inventory: commutative decrements, approximate reads -> escrow
     counters (local purchases that can never oversell).

   Four replication systems share one simulated edge deployment (nine
   edge servers, three customers); each customer runs browse/checkout
   sessions against its closest edge server. The output shows how each
   category gets the trade-off it needs.

   Run with: dune exec examples/bookstore.exe *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module BC = Dq_proto.Base_cluster
module R = Dq_intf.Replication
module Stats = Dq_util.Stats
open Dq_storage

let n_customers = 3

let sessions_per_customer = 40

let () =
  let engine = Engine.create ~seed:2005L () in
  let topology = Topology.make ~n_servers:9 ~n_clients:n_customers () in
  let servers = Topology.servers topology in

  (* Three replicated stores over the same edge servers. *)
  let catalog = BC.create engine topology (BC.Rowa_async { anti_entropy_ms = 1_000. }) in
  let catalog_api = BC.api catalog in
  let profiles =
    Dq_core.Cluster.create engine topology (Dq_core.Config.dqvl ~servers ())
  in
  let profiles_api = Dq_core.Cluster.api profiles in
  let orders = BC.create engine topology BC.Majority_quorum in
  let orders_api = BC.api orders in
  let order_feed = Dq_proto.Mailbox.create engine topology ~home:8 () in
  let inventory =
    Dq_proto.Escrow.create engine topology ~stock:(fun _ -> 10_000) ()
  in

  let catalog_latency = Stats.create () in
  let profile_latency = Stats.create () in
  let order_latency = Stats.create () in
  let feed_latency = Stats.create () in
  let inventory_latency = Stats.create () in
  let sold_out = ref 0 in
  let sessions_done = ref 0 in

  let timed stats start = Stats.add stats (Engine.now engine -. start) in

  (* Seed the catalog from the "origin" (edge server 8 acts as the
     publisher; dissemination reaches every edge asynchronously). *)
  let book i = Key.make ~volume:1 ~index:i in
  for i = 0 to 9 do
    catalog_api.R.submit_write ~client:9 ~server:8 (book i)
      (Printf.sprintf "Book #%d: Dual-Quorum Replication, 2nd ed." i)
      (fun _ -> ())
  done;

  (* One browse/checkout session: three catalog reads, a profile read,
     an order write, and (every few sessions) a profile update. *)
  let rec session ~customer ~index =
    if index >= sessions_per_customer then incr sessions_done
    else begin
      let edge = Topology.closest_server topology customer in
      let profile = Key.make ~volume:0 ~index:customer in
      let order = Key.make ~volume:2 ~index:((customer * 1000) + index) in
      let rng_book i = (customer + (index * 3) + i) mod 10 in
      let browse i k =
        let start = Engine.now engine in
        catalog_api.R.submit_read ~client:customer ~server:edge (book (rng_book i)) (fun _ ->
            timed catalog_latency start;
            k ())
      in
      browse 0 (fun () ->
          browse 1 (fun () ->
              browse 2 (fun () ->
                  let start = Engine.now engine in
                  profiles_api.R.submit_read ~client:customer ~server:edge profile (fun r ->
                      timed profile_latency start;
                      let start = Engine.now engine in
                      Dq_proto.Escrow.buy inventory ~client:customer ~server:edge
                        (book (rng_book 0)) ~amount:1 (fun in_stock ->
                      timed inventory_latency start;
                      if not in_stock then incr sold_out;
                      let start = Engine.now engine in
                      orders_api.R.submit_write ~client:customer ~server:edge order
                        (Printf.sprintf "order{%s -> %s}" r.R.read_value "1x book")
                        (fun _ ->
                          timed order_latency start;
                          let start = Engine.now engine in
                          Dq_proto.Mailbox.append order_feed ~client:customer ~server:edge
                            (Key.to_string order) (fun () -> timed feed_latency start);
                          if index mod 8 = 7 then begin
                            let start = Engine.now engine in
                            profiles_api.R.submit_write ~client:customer ~server:edge
                              profile
                              (Printf.sprintf "customer %d, address v%d" customer index)
                              (fun _ ->
                                timed profile_latency start;
                                session ~customer ~index:(index + 1))
                          end
                          else session ~customer ~index:(index + 1)))))))
    end
  in
  List.iter (fun customer -> session ~customer ~index:0) (Topology.clients topology);

  Engine.run_while engine (fun () -> !sessions_done < n_customers);
  catalog_api.R.quiesce ();
  profiles_api.R.quiesce ();
  orders_api.R.quiesce ();
  Dq_proto.Mailbox.quiesce order_feed;
  Dq_proto.Escrow.quiesce inventory;

  Printf.printf "bookstore: %d customers x %d sessions at %.1f s of virtual time\n\n"
    n_customers sessions_per_customer
    (Engine.now engine /. 1000.);
  let report label protocol stats why =
    Printf.printf "%-9s %-14s mean %6.1f ms  p99 %6.1f ms   %s\n" label protocol
      (Stats.mean stats) (Stats.percentile stats 99.) why
  in
  report "catalog" "rowa-async" catalog_latency "stale blurbs are fine; reads local";
  report "profiles" "dqvl" profile_latency "regular semantics + mostly local reads";
  report "inventory" "escrow" inventory_latency "commutative decrements; never oversells";
  report "orders" "majority" order_latency "never lost, never stale; pays WAN quorums";
  report "ord.feed" "mailbox" feed_latency "local append; exactly-once at the origin";
  Printf.printf "\nsold out: %d | orders delivered to origin: %d\n" !sold_out
    (Dq_proto.Mailbox.delivered_count order_feed)
