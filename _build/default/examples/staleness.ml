(* Staleness: why the paper does not just use ROWA-Async everywhere.

   Two clients in different cities share one object. Client A keeps
   writing through its edge server; client B keeps reading through a
   different one. Under ROWA-Async reads are local and can return stale
   values with no bound; DQVL reads are also (mostly) local but every
   returned value satisfies regular semantics, checked by the history
   checker.

   Run with: dune exec examples/staleness.exe *)

module Engine = Dq_sim.Engine
module Spec = Dq_workload.Spec
module Driver = Dq_harness.Driver
module Registry = Dq_harness.Registry
module Checker = Dq_harness.Regular_checker
module Stats = Dq_util.Stats

let run (builder : Registry.builder) =
  let topology = Dq_net.Topology.make ~n_servers:5 ~n_clients:2 () in
  let engine = Engine.create ~seed:99L () in
  let instance = builder.Registry.build engine topology () in
  let spec =
    {
      Spec.default with
      Spec.write_ratio = 0.5;
      sharing = Spec.Shared_uniform { objects = 1 };
    }
  in
  let config = { (Driver.default_config spec) with Driver.ops_per_client = 150 } in
  let result = Driver.run engine topology instance.Registry.api config in
  let report = Checker.check result.Driver.history in
  (result, report)

let () =
  print_endline "Two clients, one shared object, 50% writes, different edge servers.\n";
  List.iter
    (fun builder ->
      let result, report = run builder in
      Printf.printf "%-12s reads: mean %.1f ms | checked %d | stale %d\n"
        result.Driver.protocol
        (Stats.mean result.Driver.read_latency)
        report.Checker.checked
        (List.length report.Checker.violations))
    [ Registry.rowa_async (); Registry.dqvl (); Registry.majority ];
  print_endline
    "\nROWA-Async reads are fastest but stale; DQVL pays invalidation traffic\n\
     on this worst-case interleaving yet never returns a stale value -\n\
     exactly the trade-off of the paper's Figure 9(a)."
