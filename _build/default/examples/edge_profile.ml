(* The paper's motivating scenario: TPC-W customer-profile objects
   replicated across nine edge servers.

   Each of three application clients works on its own profile object
   (name, addresses, credit information) through its closest edge
   server: 95% reads (browsing, checkout summaries) and 5% writes
   (shipping-address updates). We run the same closed-loop workload
   against all five protocols of the paper's evaluation and print the
   response times plus consistency verdicts.

   Run with: dune exec examples/edge_profile.exe *)

module Engine = Dq_sim.Engine
module Spec = Dq_workload.Spec
module Driver = Dq_harness.Driver
module Registry = Dq_harness.Registry
module Checker = Dq_harness.Regular_checker
module Table = Dq_util.Table
module Stats = Dq_util.Stats

let () =
  let topology = Dq_net.Topology.make ~n_servers:9 ~n_clients:3 () in
  let spec = Spec.tpcw_profile in
  let table =
    Table.create
      ~header:
        [ "protocol"; "read ms (mean/p99)"; "write ms (mean/p99)"; "msgs/req"; "regular?" ]
  in
  List.iter
    (fun (builder : Registry.builder) ->
      let engine = Engine.create ~seed:2026L () in
      let instance = builder.Registry.build engine topology () in
      let config =
        { (Driver.default_config spec) with Driver.ops_per_client = 300 }
      in
      let result = Driver.run engine topology instance.Registry.api config in
      let report = Checker.check result.Driver.history in
      let pair stats =
        Printf.sprintf "%.1f / %.1f" (Stats.mean stats) (Stats.percentile stats 99.)
      in
      Table.add_row table
        [
          result.Driver.protocol;
          pair result.Driver.read_latency;
          pair result.Driver.write_latency;
          Printf.sprintf "%.1f" result.Driver.messages_per_request;
          (if report.Checker.violations = [] then "yes"
           else Printf.sprintf "NO (%d stale reads)" (List.length report.Checker.violations));
        ])
    Registry.paper_five;
  print_endline "TPC-W customer-profile workload: 9 edge servers, 3 clients, 5% writes";
  print_endline "(delays: 8 ms client-edge, 86 ms client-remote, 80 ms server-server)\n";
  Table.print table;
  print_endline
    "\nDQVL serves reads from the client's edge server like the ROWA family,\n\
     while keeping the regular semantics that ROWA-Async gives up."
