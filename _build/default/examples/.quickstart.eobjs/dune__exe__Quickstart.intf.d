examples/quickstart.mli:
