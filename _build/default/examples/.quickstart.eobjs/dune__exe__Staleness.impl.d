examples/staleness.ml: Dq_harness Dq_net Dq_sim Dq_util Dq_workload List Printf
