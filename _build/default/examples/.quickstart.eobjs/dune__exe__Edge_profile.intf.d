examples/edge_profile.mli:
