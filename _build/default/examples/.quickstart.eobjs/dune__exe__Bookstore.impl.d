examples/bookstore.ml: Dq_core Dq_intf Dq_net Dq_proto Dq_sim Dq_storage Dq_util Key List Printf
