examples/failover_partition.ml: Dq_core Dq_intf Dq_net Dq_sim Dq_storage Key Printf
