examples/failover_partition.mli:
