examples/bookstore.mli:
