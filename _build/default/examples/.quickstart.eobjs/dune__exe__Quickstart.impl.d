examples/quickstart.ml: Dq_core Dq_intf Dq_net Dq_sim Dq_storage Format Key Lc Printf Versioned
