examples/staleness.mli:
