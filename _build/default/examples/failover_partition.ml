(* Failure handling: client migration, a partitioned edge server, and
   the delayed-invalidation machinery.

   The scenario (paper Sections 3.2 and 4.2):
   1. A customer is served by edge server 4 and reads her profile there,
      so server 4 caches it under volume and object leases.
   2. Server 4 is cut off from the network (WAN partition).
   3. The customer is redirected to edge server 1 (request redirection)
      and updates her shipping address. The write cannot invalidate
      server 4 - instead it completes once server 4's volume lease
      expires, queueing a delayed invalidation. Write blocking is
      bounded by the lease length, not by the partition length.
   4. The partition heals. Server 4 must renew its volume lease before
      serving the object again; the renewal delivers the delayed
      invalidation, so the customer never sees her old address.

   Run with: dune exec examples/failover_partition.exe *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Cluster = Dq_core.Cluster
module Config = Dq_core.Config
module Iqs = Dq_core.Iqs_server
module R = Dq_intf.Replication
open Dq_storage

let () =
  let engine = Engine.create ~seed:7L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:1 () in
  let servers = Topology.servers topology in
  let lease_ms = 3_000. in
  let config = Config.dqvl ~servers ~volume_lease_ms:lease_ms ~proactive_renew:false () in
  let cluster = Cluster.create engine topology config in
  let api = Cluster.api cluster in
  let net = Cluster.net cluster in
  let client = 5 in
  let profile = Key.make ~volume:0 ~index:7 in
  let log fmt =
    Printf.ksprintf (fun s -> Printf.printf "[%8.1f ms] %s\n" (Engine.now engine) s) fmt
  in

  let step_read_after_heal () =
    api.R.submit_read ~client ~server:4 profile (fun r ->
        log "read via healed server 4 -> %S" r.R.read_value;
        if r.R.read_value = "address=new" then
          log "no stale read: the delayed invalidation did its job"
        else log "ERROR: stale read!")
  in
  let step_heal () =
    log "partition heals; client returns to server 4";
    Net.heal net;
    step_read_after_heal ()
  in
  let step_write () =
    log "client redirected to server 2; updating shipping address...";
    let start = Engine.now engine in
    api.R.submit_write ~client ~server:2 profile "address=new" (fun _ ->
        let blocked = Engine.now engine -. start in
        log "write completed after %.0f ms (lease is %.0f ms: blocking is bounded)"
          blocked lease_ms;
        (match Cluster.iqs_server cluster 2 with
        | Some iqs ->
          log "IQS server 2 queued %d delayed invalidation(s) for server 4"
            (Iqs.delayed_count iqs ~volume:0 ~oqs:4)
        | None -> ());
        ignore (Engine.schedule engine ~delay:2_000. step_heal))
  in
  let step_partition () =
    log "server 4 is cut off by a WAN partition";
    Net.partition net [ [ 4 ]; [ 0; 1; 2; 3; client ] ];
    step_write ()
  in
  api.R.submit_write ~client ~server:4 profile "address=old" (fun _ ->
      api.R.submit_read ~client ~server:4 profile (fun r ->
          log "read at home server 4 -> %S (cached under leases)" r.R.read_value;
          step_partition ()));

  Engine.run ~until:120_000. engine;
  api.R.quiesce ();
  print_endline "failover_partition: done"
