module Avail = Dq_analysis.Avail_model
module Overhead = Dq_analysis.Overhead_model

let p = 0.01

(* --- availability model (Figure 8 claims) ----------------------------- *)

let test_dqvl_tracks_majority () =
  (* "The key result is that DQVL's availability tracks that of the
     majority quorum" (Fig 8a). *)
  let n = 15 in
  List.iter
    (fun w ->
      let dq = Avail.unavailability (Avail.dqvl_default ~n) ~p ~w in
      let mj = Avail.unavailability (Avail.Majority { n }) ~p ~w in
      Alcotest.(check bool)
        (Printf.sprintf "w=%.2f dqvl=%.2e maj=%.2e" w dq mj)
        true
        (dq <= mj *. 10. +. 1e-300 && dq >= mj /. 10.))
    [ 0.05; 0.25; 0.5; 0.75 ]

let test_rowa_async_stale_is_best () =
  let n = 15 in
  let protocols =
    [
      Avail.dqvl_default ~n;
      Avail.Majority { n };
      Avail.Rowa { n };
      Avail.Rowa_async_no_stale;
      Avail.Primary_backup;
    ]
  in
  let stale = Avail.unavailability (Avail.Rowa_async_stale { n }) ~p ~w:0.25 in
  List.iter
    (fun proto ->
      Alcotest.(check bool)
        (Avail.name proto ^ " worse than stale rowa-async")
        true
        (Avail.unavailability proto ~p ~w:0.25 >= stale))
    protocols

let test_no_stale_rowa_async_orders_of_magnitude_worse () =
  (* "its availability decreases to several orders of magnitude worse
     than other quorum based protocols". *)
  let n = 15 in
  let nostale = Avail.unavailability Avail.Rowa_async_no_stale ~p ~w:0.25 in
  let majority = Avail.unavailability (Avail.Majority { n }) ~p ~w:0.25 in
  Alcotest.(check bool) "at least 1000x worse" true (nostale > majority *. 1000.)

let test_insensitive_to_n () =
  (* Fig 8b: primary/backup and no-stale ROWA-Async are flat in n. *)
  let u proto = Avail.unavailability proto ~p ~w:0.25 in
  Alcotest.(check (float 1e-15)) "pb flat" (u Avail.Primary_backup) (u Avail.Primary_backup);
  Alcotest.(check (float 1e-15)) "nostale flat"
    (u Avail.Rowa_async_no_stale) (u Avail.Rowa_async_no_stale);
  (* Majority and DQVL improve with n. *)
  let mj n = Avail.unavailability (Avail.Majority { n }) ~p ~w:0.25 in
  Alcotest.(check bool) "majority improves" true (mj 15 < mj 5 /. 100.);
  let dq n = Avail.unavailability (Avail.dqvl_default ~n) ~p ~w:0.25 in
  Alcotest.(check bool) "dqvl improves" true (dq 15 < dq 5 /. 100.)

let test_rowa_write_availability_poor () =
  (* ROWA's write unavailability grows with n (write-all). *)
  let u n = Avail.write_unavailability (Avail.Rowa { n }) ~p in
  Alcotest.(check bool) "grows with n" true (u 15 > u 3);
  Alcotest.(check bool) "roughly n*p" true (abs_float (u 15 -. 15. *. p) < 0.02)

let test_dqvl_formula_decomposition () =
  (* av = (1-w) min(av_orq, av_irq) + w min(av_iwq, av_irq). *)
  let n = 9 in
  let proto = Avail.dqvl_default ~n in
  let read_u = Avail.read_unavailability proto ~p in
  let write_u = Avail.write_unavailability proto ~p in
  let w = 0.3 in
  Alcotest.(check (float 1e-15))
    "weighted sum"
    (((1. -. w) *. read_u) +. (w *. write_u))
    (Avail.unavailability proto ~p ~w)

let test_dqvl_read_limited_by_irq () =
  (* With a read-one OQS, the binding constraint on reads is the IQS
     read quorum (renewals), exactly as the paper's pessimistic model
     says. *)
  let n = 15 in
  let proto = Avail.dqvl_default ~n in
  let irq_u =
    Avail.read_unavailability (Avail.Majority { n }) ~p
  in
  Alcotest.(check (float 1e-18)) "read bound by irq" irq_u (Avail.read_unavailability proto ~p)

(* --- overhead model (Figure 9 claims) ---------------------------------- *)

let sizes9 = Overhead.dqvl_sizes ~n_iqs:9 ~n_oqs:9

let test_sizes () =
  Alcotest.(check int) "orq" 1 sizes9.Overhead.orq;
  Alcotest.(check int) "owq" 9 sizes9.Overhead.owq;
  Alcotest.(check int) "irq" 5 sizes9.Overhead.irq;
  Alcotest.(check int) "iwq" 5 sizes9.Overhead.iwq

let test_scenario_costs () =
  Alcotest.(check (float 1e-9)) "hit" 2. (Overhead.read_hit sizes9);
  Alcotest.(check (float 1e-9)) "miss" 12. (Overhead.read_miss sizes9);
  Alcotest.(check (float 1e-9)) "suppress" 20. (Overhead.write_suppress sizes9);
  Alcotest.(check (float 1e-9)) "through" 110. (Overhead.write_through sizes9)

let test_peak_at_half () =
  (* Fig 9a: worst case at 50% writes where reads and writes interleave. *)
  let m w = Overhead.dqvl sizes9 ~w in
  Alcotest.(check bool) "0.5 worse than 0.05" true (m 0.5 > m 0.05);
  Alcotest.(check bool) "0.5 worse than 0.95" true (m 0.5 > m 0.95);
  Alcotest.(check bool) "worst of all sampled" true
    (List.for_all (fun w -> m 0.5 >= m w) [ 0.; 0.1; 0.3; 0.7; 0.9; 1. ])

let test_dqvl_worst_case_exceeds_majority () =
  Alcotest.(check bool) "significantly more at w=0.5" true
    (Overhead.dqvl sizes9 ~w:0.5 > 2. *. Overhead.majority ~n:9 ~w:0.5)

let test_dqvl_comparable_at_low_write_ratio () =
  (* Target workloads are read-dominated: DQVL should be comparable to
     (here: no worse than) the majority quorum at 5% writes. *)
  Alcotest.(check bool) "comparable at w=0.05" true
    (Overhead.dqvl sizes9 ~w:0.05 <= Overhead.majority ~n:9 ~w:0.05)

let test_bursts_reduce_overhead () =
  (* With long bursts, misses and throughs become rare. *)
  let iid = Overhead.dqvl sizes9 ~w:0.5 in
  let bursty =
    Overhead.dqvl_with_hit_rates sizes9 ~w:0.5 ~p_miss:0.1 ~p_through:0.1
  in
  Alcotest.(check bool) "bursty cheaper" true (bursty < iid /. 2.)

let test_fig9b_shape () =
  (* With the IQS fixed small, DQVL stays within a small factor of the
     majority quorum as the OQS grows. *)
  List.iter
    (fun n_oqs ->
      let s = Overhead.dqvl_sizes ~n_iqs:5 ~n_oqs in
      let dq = Overhead.dqvl s ~w:0.25 in
      let mj = Overhead.majority ~n:n_oqs ~w:0.25 in
      Alcotest.(check bool)
        (Printf.sprintf "n_oqs=%d dq=%.1f maj=%.1f" n_oqs dq mj)
        true (dq < 3. *. mj))
    [ 9; 15; 21; 27 ]

let test_baseline_costs () =
  Alcotest.(check (float 1e-9)) "majority read" 10. (Overhead.majority ~n:9 ~w:0.);
  Alcotest.(check (float 1e-9)) "majority write" 20. (Overhead.majority ~n:9 ~w:1.);
  Alcotest.(check (float 1e-9)) "rowa read" 2. (Overhead.rowa ~n:9 ~w:0.);
  Alcotest.(check (float 1e-9)) "rowa write" 18. (Overhead.rowa ~n:9 ~w:1.);
  Alcotest.(check (float 1e-9)) "pb write" 10. (Overhead.primary_backup ~n:9 ~w:1.)

let () =
  Alcotest.run "analysis"
    [
      ( "availability",
        [
          Alcotest.test_case "dqvl tracks majority" `Quick test_dqvl_tracks_majority;
          Alcotest.test_case "stale rowa-async best" `Quick test_rowa_async_stale_is_best;
          Alcotest.test_case "no-stale much worse" `Quick
            test_no_stale_rowa_async_orders_of_magnitude_worse;
          Alcotest.test_case "sensitivity to n" `Quick test_insensitive_to_n;
          Alcotest.test_case "rowa writes poor" `Quick test_rowa_write_availability_poor;
          Alcotest.test_case "formula decomposition" `Quick test_dqvl_formula_decomposition;
          Alcotest.test_case "read bound by irq" `Quick test_dqvl_read_limited_by_irq;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "scenario costs" `Quick test_scenario_costs;
          Alcotest.test_case "peak at 0.5" `Quick test_peak_at_half;
          Alcotest.test_case "worst case exceeds majority" `Quick
            test_dqvl_worst_case_exceeds_majority;
          Alcotest.test_case "comparable at low w" `Quick
            test_dqvl_comparable_at_low_write_ratio;
          Alcotest.test_case "bursts reduce overhead" `Quick test_bursts_reduce_overhead;
          Alcotest.test_case "fig9b shape" `Quick test_fig9b_shape;
          Alcotest.test_case "baseline costs" `Quick test_baseline_costs;
        ] );
    ]
