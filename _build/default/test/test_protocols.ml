(* Baseline protocols: primary/backup, majority quorum, ROWA,
   ROWA-Async, and the grid quorum system. *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module BC = Dq_proto.Base_cluster
module Qs = Dq_quorum.Quorum_system
module R = Dq_intf.Replication
open Dq_storage

let key = Key.make ~volume:0 ~index:0

let setup ?(n_servers = 5) protocol =
  let engine = Engine.create ~seed:17L () in
  let topology = Topology.make ~n_servers ~n_clients:2 () in
  let cluster = BC.create engine topology protocol in
  (engine, topology, cluster, BC.api cluster)

let client_a = 5
let client_b = 6

let write_then_read ?(read_delay_ms = 0.) protocol =
  let engine, _, _, api = setup protocol in
  let got = ref None in
  api.R.submit_write ~client:client_a ~server:0 key "payload" (fun w ->
      Alcotest.(check bool) "timestamp assigned" true Lc.(w.R.write_lc > Lc.zero);
      let read () =
        api.R.submit_read ~client:client_b ~server:1 key (fun r -> got := Some r.R.read_value)
      in
      if read_delay_ms > 0. then ignore (Engine.schedule engine ~delay:read_delay_ms read)
      else read ());
  Engine.run ~until:120_000. engine;
  api.R.quiesce ();
  Alcotest.(check (option string)) "read back" (Some "payload") !got

let test_wtr_primary_backup () = write_then_read (BC.Primary_backup { primary = 0 })
let test_wtr_majority () = write_then_read BC.Majority_quorum
let test_wtr_rowa () = write_then_read BC.Rowa
let test_wtr_rowa_async () =
  (* ROWA-Async only converges eventually: read after propagation. *)
  write_then_read ~read_delay_ms:2_000. (BC.Rowa_async { anti_entropy_ms = 500. })

let test_wtr_grid () =
  let engine, _, _, api = setup ~n_servers:4 (BC.Custom_quorum (Qs.grid ~rows:2 ~cols:2 [ 0; 1; 2; 3 ])) in
  let got = ref None in
  api.R.submit_write ~client:4 ~server:0 key "g" (fun _ ->
      api.R.submit_read ~client:5 ~server:1 key (fun r -> got := Some r.R.read_value));
  Engine.run ~until:60_000. engine;
  Alcotest.(check (option string)) "grid read back" (Some "g") !got

let test_majority_survives_minority_crash () =
  let engine, _, _, api = setup BC.Majority_quorum in
  let got = ref None in
  api.R.crash_server 3;
  api.R.crash_server 4;
  api.R.submit_write ~client:client_a ~server:0 key "v" (fun _ ->
      api.R.submit_read ~client:client_b ~server:1 key (fun r -> got := Some r.R.read_value));
  Engine.run ~until:120_000. engine;
  Alcotest.(check (option string)) "still available" (Some "v") !got

let test_majority_blocks_without_majority () =
  let engine, _, _, api = setup BC.Majority_quorum in
  api.R.crash_server 2;
  api.R.crash_server 3;
  api.R.crash_server 4;
  let done_ = ref false in
  api.R.submit_write ~client:client_a ~server:0 key "v" (fun _ -> done_ := true);
  Engine.run ~until:60_000. engine;
  Alcotest.(check bool) "write blocked" false !done_

let test_rowa_write_blocks_with_one_node_down () =
  let engine, _, _, api = setup BC.Rowa in
  api.R.crash_server 4;
  let write_done = ref false in
  let read_done = ref false in
  api.R.submit_write ~client:client_a ~server:0 key "v" (fun _ -> write_done := true);
  api.R.submit_read ~client:client_b ~server:1 key (fun _ -> read_done := true);
  Engine.run ~until:60_000. engine;
  Alcotest.(check bool) "write-all blocked" false !write_done;
  Alcotest.(check bool) "read-one still fine" true !read_done

let test_primary_backup_blocks_without_primary () =
  let engine, _, _, api = setup (BC.Primary_backup { primary = 0 }) in
  api.R.crash_server 0;
  let done_ = ref false in
  api.R.submit_read ~client:client_a ~server:1 key (fun _ -> done_ := true);
  Engine.run ~until:60_000. engine;
  Alcotest.(check bool) "read blocked without primary" false !done_

let test_primary_backup_tolerates_backup_crash () =
  let engine, _, _, api = setup (BC.Primary_backup { primary = 0 }) in
  api.R.crash_server 1;
  api.R.crash_server 2;
  let got = ref None in
  api.R.submit_write ~client:client_a ~server:0 key "v" (fun _ ->
      api.R.submit_read ~client:client_b ~server:3 key (fun r -> got := Some r.R.read_value));
  Engine.run ~until:60_000. engine;
  Alcotest.(check (option string)) "backups are not needed" (Some "v") !got

let test_rowa_async_local_write_is_fast () =
  let engine, _, _, api = setup (BC.Rowa_async { anti_entropy_ms = 500. }) in
  let latency = ref None in
  let start = Engine.now engine in
  api.R.submit_write ~client:client_a ~server:0 key "v" (fun _ ->
      latency := Some (Engine.now engine -. start));
  Engine.run ~until:10_000. engine;
  api.R.quiesce ();
  match !latency with
  | Some l -> Alcotest.(check bool) (Printf.sprintf "local write %.1f ms" l) true (l < 20.)
  | None -> Alcotest.fail "write did not complete"

let test_rowa_async_propagates () =
  let engine, _, cluster, api = setup (BC.Rowa_async { anti_entropy_ms = 500. }) in
  api.R.submit_write ~client:client_a ~server:0 key "v" (fun _ -> ());
  Engine.run ~until:5_000. engine;
  api.R.quiesce ();
  (* After the push, every replica holds the write. *)
  List.iter
    (fun node ->
      match BC.replica cluster node with
      | Some replica ->
        Alcotest.(check string)
          (Printf.sprintf "replica %d" node)
          "v"
          (Dq_proto.Replica.stored replica key).Versioned.value
      | None -> Alcotest.fail "missing replica")
    [ 0; 1; 2; 3; 4 ]

let test_rowa_async_anti_entropy_heals_loss () =
  (* Drop the direct propagation; periodic gossip must still converge. *)
  let engine = Engine.create ~seed:19L () in
  let topology = Topology.make ~n_servers:3 ~n_clients:1 () in
  let cluster = BC.create engine topology (BC.Rowa_async { anti_entropy_ms = 300. }) in
  let api = BC.api cluster in
  let net = BC.net cluster in
  Dq_net.Net.set_faults net { Dq_net.Net.loss = 1.0; duplicate = 0.; jitter_ms = 0. };
  (* With full loss nothing works; instead: lose propagation only by
     crashing the peers during the write, then recovering them. *)
  Dq_net.Net.set_faults net Dq_net.Net.no_faults;
  api.R.crash_server 1;
  api.R.crash_server 2;
  api.R.submit_write ~client:3 ~server:0 key "late" (fun _ -> ());
  ignore
    (Engine.schedule engine ~delay:1_000. (fun () ->
         api.R.recover_server 1;
         api.R.recover_server 2));
  Engine.run ~until:10_000. engine;
  api.R.quiesce ();
  List.iter
    (fun node ->
      match BC.replica cluster node with
      | Some replica ->
        Alcotest.(check string)
          (Printf.sprintf "replica %d converged" node)
          "late"
          (Dq_proto.Replica.stored replica key).Versioned.value
      | None -> Alcotest.fail "missing replica")
    [ 0; 1; 2 ]

let test_rowa_async_can_serve_stale_reads () =
  (* The weakness DQVL exists to avoid: with cross-site traffic on a
     shared object, ROWA-Async returns stale values. *)
  let engine = Engine.create ~seed:23L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:3 () in
  let cluster = BC.create engine topology (BC.Rowa_async { anti_entropy_ms = 2_000. }) in
  let api = BC.api cluster in
  let spec =
    {
      Dq_workload.Spec.default with
      Dq_workload.Spec.write_ratio = 0.5;
      sharing = Dq_workload.Spec.Shared_uniform { objects = 1 };
    }
  in
  let config =
    { (Dq_harness.Driver.default_config spec) with Dq_harness.Driver.ops_per_client = 60 }
  in
  let result = Dq_harness.Driver.run engine topology api config in
  let report = Dq_harness.Regular_checker.check result.Dq_harness.Driver.history in
  Alcotest.(check bool) "stale reads observed" true
    (List.length report.Dq_harness.Regular_checker.violations > 0)

let test_quorum_protocols_are_regular_on_shared_object () =
  List.iter
    (fun (name, protocol) ->
      let engine = Engine.create ~seed:29L () in
      let topology = Topology.make ~n_servers:5 ~n_clients:3 () in
      let cluster = BC.create engine topology protocol in
      let api = BC.api cluster in
      let spec =
        {
          Dq_workload.Spec.default with
          Dq_workload.Spec.write_ratio = 0.5;
          sharing = Dq_workload.Spec.Shared_uniform { objects = 1 };
        }
      in
      let config =
        { (Dq_harness.Driver.default_config spec) with Dq_harness.Driver.ops_per_client = 60 }
      in
      let result = Dq_harness.Driver.run engine topology api config in
      let report = Dq_harness.Regular_checker.check result.Dq_harness.Driver.history in
      Alcotest.(check int) (name ^ " regular") 0
        (List.length report.Dq_harness.Regular_checker.violations))
    [
      ("majority", BC.Majority_quorum);
      ("rowa", BC.Rowa);
      ("primary-backup", BC.Primary_backup { primary = 0 });
    ]

let () =
  Alcotest.run "protocols"
    [
      ( "write then read",
        [
          Alcotest.test_case "primary-backup" `Quick test_wtr_primary_backup;
          Alcotest.test_case "majority" `Quick test_wtr_majority;
          Alcotest.test_case "rowa" `Quick test_wtr_rowa;
          Alcotest.test_case "rowa-async" `Quick test_wtr_rowa_async;
          Alcotest.test_case "grid" `Quick test_wtr_grid;
        ] );
      ( "availability behaviour",
        [
          Alcotest.test_case "majority survives minority" `Quick
            test_majority_survives_minority_crash;
          Alcotest.test_case "majority blocks without majority" `Quick
            test_majority_blocks_without_majority;
          Alcotest.test_case "rowa write blocks" `Quick test_rowa_write_blocks_with_one_node_down;
          Alcotest.test_case "pb needs primary" `Quick test_primary_backup_blocks_without_primary;
          Alcotest.test_case "pb tolerates backup crash" `Quick
            test_primary_backup_tolerates_backup_crash;
        ] );
      ( "rowa-async",
        [
          Alcotest.test_case "local write fast" `Quick test_rowa_async_local_write_is_fast;
          Alcotest.test_case "propagates" `Quick test_rowa_async_propagates;
          Alcotest.test_case "anti-entropy heals" `Quick test_rowa_async_anti_entropy_heals_loss;
          Alcotest.test_case "stale reads happen" `Quick test_rowa_async_can_serve_stale_reads;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "quorum protocols regular" `Quick
            test_quorum_protocols_are_regular_on_shared_object;
        ] );
    ]
