module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Spec = Dq_workload.Spec
module Driver = Dq_harness.Driver
module Registry = Dq_harness.Registry
module Stats = Dq_util.Stats

let run_with ?(ops = 20) ?(spec = Spec.default) ?(builder = Registry.majority)
    ?(timeout_ms = 30_000.) ?(events = []) () =
  let engine = Engine.create ~seed:11L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:3 () in
  let instance = builder.Registry.build engine topology () in
  let config =
    { (Driver.default_config spec) with Driver.ops_per_client = ops; timeout_ms }
  in
  Driver.run_with_events engine topology instance.Registry.api config ~events
    ~on_net_event:(function
    | `Partition groups -> instance.Registry.partition groups
    | `Heal -> instance.Registry.heal ())

let test_counts_add_up () =
  let r = run_with () in
  Alcotest.(check int) "issued" 60 r.Driver.issued;
  Alcotest.(check int) "completed + failed = issued" 60 (r.Driver.completed + r.Driver.failed);
  Alcotest.(check int) "no failures in a healthy run" 0 r.Driver.failed;
  Alcotest.(check int) "history records all" 60 (List.length r.Driver.history)

let test_warmup_excluded_from_stats () =
  let r = run_with ~ops:20 () in
  (* 3 clients x (20 - 10 warmup) = 30 measured operations. *)
  Alcotest.(check int) "measured count" 30 (Stats.count r.Driver.all_latency);
  Alcotest.(check int) "read + write = all"
    (Stats.count r.Driver.all_latency)
    (Stats.count r.Driver.read_latency + Stats.count r.Driver.write_latency)

let test_latencies_positive_and_bounded () =
  let r = run_with () in
  Alcotest.(check bool) "positive" true (Stats.min r.Driver.all_latency > 0.);
  Alcotest.(check bool) "bounded by timeout" true (Stats.max r.Driver.all_latency < 30_000.)

let test_messages_counted () =
  let r = run_with () in
  Alcotest.(check bool) "messages flowed" true (r.Driver.remote_messages > 0);
  Alcotest.(check bool) "mpr sane" true
    (r.Driver.messages_per_request > 1. && r.Driver.messages_per_request < 1000.)

let test_all_ops_fail_when_cluster_down () =
  let events =
    List.init 5 (fun i -> { Driver.at_ms = 0.; action = `Crash i })
  in
  let r = run_with ~ops:3 ~timeout_ms:500. ~events () in
  Alcotest.(check int) "all failed" r.Driver.issued r.Driver.failed;
  Alcotest.(check int) "none completed" 0 r.Driver.completed

let test_think_time_spreads_requests () =
  let spec = { Spec.default with Spec.think_time_ms = 100. } in
  let r = run_with ~ops:5 ~spec () in
  Alcotest.(check int) "still completes" 15 r.Driver.completed

let test_deterministic () =
  let a = run_with () and b = run_with () in
  Alcotest.(check (float 0.)) "same mean latency"
    (Stats.mean a.Driver.all_latency)
    (Stats.mean b.Driver.all_latency);
  Alcotest.(check int) "same message count" a.Driver.remote_messages b.Driver.remote_messages

let test_partition_event_applied () =
  (* Cut off a majority mid-run: some operations must fail, and they
     must succeed again after healing. *)
  let events =
    [
      { Driver.at_ms = 500.; action = `Partition [ [ 0; 1 ]; [ 2; 3; 4 ] ] };
      { Driver.at_ms = 3_000.; action = `Heal };
    ]
  in
  let r = run_with ~ops:20 ~timeout_ms:1_000. ~events () in
  Alcotest.(check bool) "some failures during partition" true (r.Driver.failed > 0);
  Alcotest.(check bool) "recovered afterwards" true (r.Driver.completed > 0)

let () =
  Alcotest.run "driver"
    [
      ( "unit",
        [
          Alcotest.test_case "counts add up" `Quick test_counts_add_up;
          Alcotest.test_case "warmup excluded" `Quick test_warmup_excluded_from_stats;
          Alcotest.test_case "latencies sane" `Quick test_latencies_positive_and_bounded;
          Alcotest.test_case "messages counted" `Quick test_messages_counted;
          Alcotest.test_case "cluster down" `Quick test_all_ops_fail_when_cluster_down;
          Alcotest.test_case "think time" `Quick test_think_time_spreads_requests;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "partition event" `Quick test_partition_event_applied;
        ] );
    ]
