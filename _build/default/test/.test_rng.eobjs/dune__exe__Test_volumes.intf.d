test/test_volumes.mli:
