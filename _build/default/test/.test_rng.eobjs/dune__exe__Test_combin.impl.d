test/test_combin.ml: Alcotest Dq_util Float List Printf QCheck QCheck_alcotest
