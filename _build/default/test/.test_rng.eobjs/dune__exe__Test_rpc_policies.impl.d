test/test_rpc_policies.ml: Alcotest Dq_core Dq_intf Dq_net Dq_quorum Dq_rpc Dq_sim Dq_storage Float List Printf
