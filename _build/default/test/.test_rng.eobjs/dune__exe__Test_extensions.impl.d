test/test_extensions.ml: Alcotest Array Dq_harness Dq_intf Dq_net Dq_sim Dq_storage Dq_util Dq_workload Key Lc List Printf
