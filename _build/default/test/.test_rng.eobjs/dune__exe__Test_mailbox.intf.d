test/test_mailbox.mli:
