test/test_clock.ml: Alcotest Dq_sim Dq_util
