test/test_qrpc.ml: Alcotest Dq_net Dq_quorum Dq_rpc Dq_sim Hashtbl List
