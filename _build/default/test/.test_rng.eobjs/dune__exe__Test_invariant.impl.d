test/test_invariant.ml: Alcotest Dq_core Dq_harness Dq_intf Dq_net Dq_sim Dq_storage Dq_workload Format Key List Printf
