test/test_robustness.ml: Alcotest Dq_core Dq_net Dq_sim Dq_storage Dq_util Key Lc List QCheck QCheck_alcotest String Versioned
