test/test_net.ml: Alcotest Dq_net Dq_sim List
