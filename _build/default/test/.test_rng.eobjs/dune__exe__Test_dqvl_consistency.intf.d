test/test_dqvl_consistency.mli:
