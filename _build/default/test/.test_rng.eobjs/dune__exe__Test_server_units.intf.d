test/test_server_units.mli:
