test/test_dqvl_consistency.ml: Alcotest Dq_harness Dq_net Dq_sim Dq_workload Int64 List Printf QCheck QCheck_alcotest
