test/test_escrow.mli:
