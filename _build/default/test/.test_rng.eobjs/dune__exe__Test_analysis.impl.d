test/test_analysis.ml: Alcotest Dq_analysis List Printf
