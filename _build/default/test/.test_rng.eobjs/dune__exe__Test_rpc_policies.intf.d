test/test_rpc_policies.mli:
