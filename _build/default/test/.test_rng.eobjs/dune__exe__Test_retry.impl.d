test/test_retry.ml: Alcotest Dq_rpc Dq_sim List
