test/test_heap.ml: Alcotest Dq_sim List QCheck QCheck_alcotest
