test/test_rng.ml: Alcotest Array Dq_util Fun Int64 List Printf QCheck QCheck_alcotest
