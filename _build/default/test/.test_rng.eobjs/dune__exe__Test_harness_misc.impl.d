test/test_harness_misc.ml: Alcotest Buffer Dq_harness Dq_intf Dq_net Dq_sim Dq_storage Dq_util List Logs Printf String
