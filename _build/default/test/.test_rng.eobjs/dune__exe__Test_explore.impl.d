test/test_explore.ml: Alcotest Dq_core Dq_harness Dq_net Dq_sim Int64 List Printf QCheck QCheck_alcotest String
