test/test_harness_misc.mli:
