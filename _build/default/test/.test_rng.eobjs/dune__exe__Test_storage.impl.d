test/test_storage.ml: Alcotest Dq_storage Hashtbl Key Lc List Obj_map QCheck QCheck_alcotest Versioned
