test/test_experiment.ml: Alcotest Dq_analysis Dq_harness List Printf
