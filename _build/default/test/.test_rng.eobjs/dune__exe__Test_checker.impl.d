test/test_checker.ml: Alcotest Dq_harness Dq_storage Key Lc List
