test/test_dqvl.mli:
