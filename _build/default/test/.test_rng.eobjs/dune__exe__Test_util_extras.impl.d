test/test_util_extras.ml: Alcotest Dq_harness Dq_util Filename List Printf String
