test/test_stats.ml: Alcotest Dq_util Float Gen List QCheck QCheck_alcotest
