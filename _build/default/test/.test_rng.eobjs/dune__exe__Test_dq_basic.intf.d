test/test_dq_basic.mli:
