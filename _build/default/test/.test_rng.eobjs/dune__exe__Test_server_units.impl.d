test/test_server_units.ml: Alcotest Dq_core Dq_net Dq_sim Dq_storage Key Lc List Versioned
