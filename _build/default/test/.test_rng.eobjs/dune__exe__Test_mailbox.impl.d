test/test_mailbox.ml: Alcotest Dq_net Dq_proto Dq_sim List Printf
