test/test_availability.ml: Alcotest Dq_quorum Dq_util Fun List Printf QCheck QCheck_alcotest
