test/test_workload.ml: Alcotest Array Dq_storage Dq_util Dq_workload Fun Key List Printf QCheck QCheck_alcotest
