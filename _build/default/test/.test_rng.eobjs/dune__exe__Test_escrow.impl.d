test/test_escrow.ml: Alcotest Dq_net Dq_proto Dq_sim Dq_storage Fun Int64 Key List Printf QCheck QCheck_alcotest
