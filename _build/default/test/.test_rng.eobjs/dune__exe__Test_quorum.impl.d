test/test_quorum.ml: Alcotest Dq_quorum Dq_util Fun List QCheck QCheck_alcotest
