test/test_object_leases.mli:
