test/test_fuzz.ml: Alcotest Dq_harness Format Int64 List String
