test/test_qrpc.mli:
