test/test_table.ml: Alcotest Dq_util List String
