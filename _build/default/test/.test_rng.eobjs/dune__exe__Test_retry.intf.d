test/test_retry.mli:
