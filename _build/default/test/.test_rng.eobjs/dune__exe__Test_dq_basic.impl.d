test/test_dq_basic.ml: Alcotest Dq_core Dq_intf Dq_net Dq_sim Dq_storage Key Lc List Printf
