test/test_engine.ml: Alcotest Dq_sim Dq_util Gen List QCheck QCheck_alcotest
