test/test_sessions.ml: Alcotest Dq_harness Dq_intf Dq_net Dq_proto Dq_sim Dq_storage Dq_workload Key Lc List
