test/test_protocols.ml: Alcotest Dq_harness Dq_intf Dq_net Dq_proto Dq_quorum Dq_sim Dq_storage Dq_workload Key Lc List Printf Versioned
