test/test_topology.ml: Alcotest Dq_net Fun List Printf
