test/test_driver.ml: Alcotest Dq_harness Dq_net Dq_sim Dq_util Dq_workload List
