test/test_dqvl.ml: Alcotest Dq_core Dq_harness Dq_intf Dq_net Dq_sim Dq_storage Key List Printf Versioned
