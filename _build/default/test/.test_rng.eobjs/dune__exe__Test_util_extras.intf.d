test/test_util_extras.mli:
