test/test_messages.ml: Alcotest Dq_core Dq_proto Dq_quorum Dq_storage Format Fun Key Lc List String
