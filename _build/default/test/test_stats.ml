module Stats = Dq_util.Stats

let feed xs =
  let s = Stats.create () in
  List.iter (Stats.add s) xs;
  s

let check_float msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

let test_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.mean s));
  Alcotest.(check bool) "percentile nan" true (Float.is_nan (Stats.percentile s 50.))

let test_single () =
  let s = feed [ 4.2 ] in
  check_float "mean" 4.2 (Stats.mean s);
  check_float "min" 4.2 (Stats.min s);
  check_float "max" 4.2 (Stats.max s);
  check_float "median" 4.2 (Stats.median s);
  check_float "stddev" 0. (Stats.stddev s)

let test_mean_sum () =
  let s = feed [ 1.; 2.; 3.; 4. ] in
  check_float "mean" 2.5 (Stats.mean s);
  check_float "sum" 10. (Stats.sum s);
  Alcotest.(check int) "count" 4 (Stats.count s)

let test_stddev () =
  (* Sample stddev of [2;4;4;4;5;5;7;9] is sqrt(32/7). *)
  let s = feed [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  check_float "stddev" (sqrt (32. /. 7.)) (Stats.stddev s)

let test_percentiles () =
  let s = feed [ 10.; 20.; 30.; 40.; 50. ] in
  check_float "p0" 10. (Stats.percentile s 0.);
  check_float "p25" 20. (Stats.percentile s 25.);
  check_float "p50" 30. (Stats.percentile s 50.);
  check_float "p100" 50. (Stats.percentile s 100.);
  (* Interpolation between ranks. *)
  check_float "p10" 14. (Stats.percentile s 10.)

let test_percentile_after_add () =
  (* The sorted cache must be invalidated by new samples. *)
  let s = feed [ 1.; 2.; 3. ] in
  check_float "median before" 2. (Stats.median s);
  Stats.add s 100.;
  check_float "median after" 2.5 (Stats.median s)

let test_min_max () =
  let s = feed [ 3.; -1.; 7.; 0. ] in
  check_float "min" (-1.) (Stats.min s);
  check_float "max" 7. (Stats.max s)

let test_merge () =
  let a = feed [ 1.; 2. ] in
  let b = feed [ 3.; 4. ] in
  let m = Stats.merge a b in
  Alcotest.(check int) "count" 4 (Stats.count m);
  check_float "mean" 2.5 (Stats.mean m)

let test_to_list_order () =
  let s = feed [ 3.; 1.; 2. ] in
  Alcotest.(check (list (float 0.))) "insertion order" [ 3.; 1.; 2. ] (Stats.to_list s)

let prop_mean_within_bounds =
  QCheck.Test.make ~name:"mean lies within [min, max]" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = feed xs in
      Stats.mean s >= Stats.min s -. 1e-6 && Stats.mean s <= Stats.max s +. 1e-6)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 50) (float_range (-1e3) 1e3))
        (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let s = feed xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile s lo <= Stats.percentile s hi +. 1e-9)

let () =
  Alcotest.run "stats"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single" `Quick test_single;
          Alcotest.test_case "mean and sum" `Quick test_mean_sum;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "percentile cache invalidation" `Quick test_percentile_after_add;
          Alcotest.test_case "min max" `Quick test_min_max;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "to_list order" `Quick test_to_list_order;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_mean_within_bounds; prop_percentile_monotone ] );
    ]
