(* Finite object leases (paper footnote 4): expired callbacks need no
   invalidation, bounding write blocking even without volume leases and
   cutting write-side traffic when readers move away. *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Cluster = Dq_core.Cluster
module Config = Dq_core.Config
module Oqs = Dq_core.Oqs_server
module R = Dq_intf.Replication
open Dq_storage

let key = Key.make ~volume:0 ~index:0

let obj_lease = 1_500.

let setup ?(use_volume_leases = true) () =
  let engine = Engine.create ~seed:41L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:2 () in
  let servers = Topology.servers topology in
  let config =
    {
      (Config.dqvl ~servers ~volume_lease_ms:30_000. ~proactive_renew:false
         ~object_lease_ms:obj_lease ())
      with
      Config.use_volume_leases;
    }
  in
  let cluster = Cluster.create engine topology config in
  (engine, cluster, Cluster.api cluster)

let test_object_lease_expires () =
  let engine, cluster, api = setup () in
  let before = ref None and after = ref None in
  api.R.submit_read ~client:5 ~server:0 key (fun _ ->
      (match Cluster.oqs_server cluster 0 with
      | Some oqs -> before := Some (Oqs.is_locally_valid oqs key)
      | None -> ());
      ignore
        (Engine.schedule engine ~delay:(obj_lease *. 1.5) (fun () ->
             match Cluster.oqs_server cluster 0 with
             | Some oqs -> after := Some (Oqs.is_locally_valid oqs key)
             | None -> ())));
  Engine.run ~until:60_000. engine;
  Alcotest.(check (option bool)) "valid under lease" (Some true) !before;
  Alcotest.(check (option bool)) "invalid after expiry" (Some false) !after

let test_read_after_expiry_is_fresh () =
  let engine, _, api = setup () in
  let got = ref None in
  api.R.submit_read ~client:5 ~server:0 key (fun _ ->
      api.R.submit_write ~client:6 ~server:1 key "v2" (fun _ ->
          ignore
            (Engine.schedule engine ~delay:(obj_lease *. 2.) (fun () ->
                 api.R.submit_read ~client:5 ~server:0 key (fun r ->
                     got := Some r.R.read_value)))));
  Engine.run ~until:60_000. engine;
  Alcotest.(check (option string)) "fresh after renewal" (Some "v2") !got

let test_write_suppressed_after_reader_lease_lapses () =
  (* Server 4 read long ago; by the time of the write its object lease
     has lapsed, so the write sends no invalidation to it at all. *)
  let engine, cluster, api = setup () in
  let inval_count () =
    match
      List.assoc_opt "inval" (Dq_net.Msg_stats.by_label (Net.stats (Cluster.net cluster)))
    with
    | Some n -> n
    | None -> 0
  in
  let invals_for_write = ref None in
  api.R.submit_read ~client:5 ~server:4 key (fun _ ->
      ignore
        (Engine.schedule engine ~delay:(obj_lease *. 2.) (fun () ->
             let before = inval_count () in
             api.R.submit_write ~client:6 ~server:1 key "v" (fun _ ->
                 invals_for_write := Some (inval_count () - before)))));
  Engine.run ~until:60_000. engine;
  Alcotest.(check (option int)) "no invalidations needed" (Some 0) !invals_for_write

let test_write_through_while_lease_valid () =
  (* Same scenario but writing inside the lease: the holder must be
     invalidated. *)
  let engine, cluster, api = setup () in
  let inval_count () =
    match
      List.assoc_opt "inval" (Dq_net.Msg_stats.by_label (Net.stats (Cluster.net cluster)))
    with
    | Some n -> n
    | None -> 0
  in
  let invals_for_write = ref None in
  api.R.submit_read ~client:5 ~server:4 key (fun _ ->
      let before = inval_count () in
      api.R.submit_write ~client:6 ~server:1 key "v" (fun _ ->
          invals_for_write := Some (inval_count () - before)));
  Engine.run ~until:60_000. engine;
  match !invals_for_write with
  | Some n -> Alcotest.(check bool) "holder invalidated" true (n > 0)
  | None -> Alcotest.fail "write did not complete"

let test_bounded_blocking_without_volume_leases () =
  (* The basic dual-quorum protocol blocks forever on a crashed
     callback holder; with finite object leases the block is bounded by
     the object lease. *)
  let engine, _, api = setup ~use_volume_leases:false () in
  let write_latency = ref None in
  api.R.submit_read ~client:5 ~server:4 key (fun _ ->
      api.R.crash_server 4;
      let start = Engine.now engine in
      api.R.submit_write ~client:6 ~server:1 key "v" (fun _ ->
          write_latency := Some (Engine.now engine -. start)));
  Engine.run ~until:120_000. engine;
  match !write_latency with
  | Some latency ->
    Alcotest.(check bool)
      (Printf.sprintf "bounded by object lease (%.0f ms)" latency)
      true
      (latency < (2.5 *. obj_lease) +. 1_000.)
  | None -> Alcotest.fail "write never completed"

let test_consistency_with_finite_leases () =
  let topology = Topology.make ~n_servers:5 ~n_clients:3 () in
  let engine = Engine.create ~seed:43L () in
  let builder =
    Dq_harness.Registry.dqvl ~volume_lease_ms:3_000. ~object_lease_ms:800. ()
  in
  let instance = builder.Dq_harness.Registry.build engine topology () in
  let spec =
    {
      Dq_workload.Spec.default with
      Dq_workload.Spec.write_ratio = 0.4;
      sharing = Dq_workload.Spec.Shared_uniform { objects = 2 };
      think_time_ms = 100.;
    }
  in
  let config =
    { (Dq_harness.Driver.default_config spec) with Dq_harness.Driver.ops_per_client = 80 }
  in
  let result = Dq_harness.Driver.run engine topology instance.Dq_harness.Registry.api config in
  let report = Dq_harness.Regular_checker.check result.Dq_harness.Driver.history in
  Alcotest.(check int) "regular" 0 (List.length report.Dq_harness.Regular_checker.violations);
  Alcotest.(check int) "no failures" 0 result.Dq_harness.Driver.failed

let test_ablation_reduces_write_traffic () =
  match Dq_harness.Experiment.ablation_object_lease ~ops:60 ~object_leases_ms:[ 500. ] () with
  | [ (_, infinite_mpr, _); (_, finite_mpr, _) ] ->
    Alcotest.(check bool)
      (Printf.sprintf "finite (%.1f) <= infinite (%.1f) messages/request" finite_mpr
         infinite_mpr)
      true
      (finite_mpr <= infinite_mpr +. 0.5)
  | _ -> Alcotest.fail "two configurations expected"

let () =
  Alcotest.run "object_leases"
    [
      ( "unit",
        [
          Alcotest.test_case "expiry" `Quick test_object_lease_expires;
          Alcotest.test_case "fresh after expiry" `Quick test_read_after_expiry_is_fresh;
          Alcotest.test_case "write suppressed after lapse" `Quick
            test_write_suppressed_after_reader_lease_lapses;
          Alcotest.test_case "write through under lease" `Quick
            test_write_through_while_lease_valid;
          Alcotest.test_case "bounded blocking without volume leases" `Quick
            test_bounded_blocking_without_volume_leases;
          Alcotest.test_case "consistency" `Slow test_consistency_with_finite_leases;
          Alcotest.test_case "ablation" `Slow test_ablation_reduces_write_traffic;
        ] );
    ]
