module Qs = Dq_quorum.Quorum_system

let members n = List.init n Fun.id

let test_majority_sizes () =
  let qs = Qs.majority (members 9) in
  Alcotest.(check int) "read quorum" 5 (Qs.min_read_size qs);
  Alcotest.(check int) "write quorum" 5 (Qs.min_write_size qs);
  Alcotest.(check int) "size" 9 (Qs.size qs)

let test_rowa_sizes () =
  let qs = Qs.rowa (members 7) in
  Alcotest.(check int) "read quorum" 1 (Qs.min_read_size qs);
  Alcotest.(check int) "write quorum" 7 (Qs.min_write_size qs)

let test_threshold_predicates () =
  let qs = Qs.threshold ~name:"t" ~members:(members 5) ~read:2 ~write:4 in
  Alcotest.(check bool) "2 nodes read" true (Qs.is_read_quorum_list qs [ 0; 3 ]);
  Alcotest.(check bool) "1 node no read" false (Qs.is_read_quorum_list qs [ 0 ]);
  Alcotest.(check bool) "4 nodes write" true (Qs.is_write_quorum_list qs [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "3 nodes no write" false (Qs.is_write_quorum_list qs [ 0; 1; 2 ]);
  Alcotest.(check bool) "duplicates do not inflate" false
    (Qs.is_read_quorum_list qs [ 0; 0 ])

let test_threshold_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "r+w<=n rejected" true
    (raises (fun () -> ignore (Qs.threshold ~name:"x" ~members:(members 5) ~read:2 ~write:3)));
  Alcotest.(check bool) "2w<=n rejected" true
    (raises (fun () -> ignore (Qs.threshold ~name:"x" ~members:(members 6) ~read:4 ~write:3)));
  Alcotest.(check bool) "empty rejected" true
    (raises (fun () -> ignore (Qs.threshold ~name:"x" ~members:[] ~read:1 ~write:1)))

let test_nonconsecutive_member_ids () =
  let qs = Qs.majority [ 10; 20; 30 ] in
  Alcotest.(check bool) "mem" true (Qs.mem qs 20);
  Alcotest.(check bool) "not mem" false (Qs.mem qs 2);
  Alcotest.(check bool) "quorum of member ids" true (Qs.is_read_quorum_list qs [ 10; 30 ])

let test_choose_read_is_quorum () =
  let rng = Dq_util.Rng.create 4L in
  List.iter
    (fun qs ->
      for _ = 1 to 50 do
        let q = Qs.choose_read qs rng in
        Alcotest.(check bool) (Qs.name qs ^ " read choice valid") true
          (Qs.is_read_quorum_list qs q);
        Alcotest.(check int)
          (Qs.name qs ^ " minimal")
          (Qs.min_read_size qs) (List.length q)
      done)
    [ Qs.majority (members 9); Qs.rowa (members 5); Qs.grid ~rows:3 ~cols:3 (members 9) ]

let test_choose_write_is_quorum () =
  let rng = Dq_util.Rng.create 5L in
  List.iter
    (fun qs ->
      for _ = 1 to 50 do
        let q = Qs.choose_write qs rng in
        Alcotest.(check bool) (Qs.name qs ^ " write choice valid") true
          (Qs.is_write_quorum_list qs q)
      done)
    [ Qs.majority (members 9); Qs.rowa (members 5); Qs.grid ~rows:3 ~cols:3 (members 9) ]

let test_grid_read_quorum () =
  (* 2x3 grid, row-major:
       0 1 2
       3 4 5
     A read quorum covers every column. *)
  let qs = Qs.grid ~rows:2 ~cols:3 (members 6) in
  Alcotest.(check bool) "one per column" true (Qs.is_read_quorum_list qs [ 0; 4; 5 ]);
  Alcotest.(check bool) "column missing" false (Qs.is_read_quorum_list qs [ 0; 1; 3; 4 ]);
  Alcotest.(check int) "min read size" 3 (Qs.min_read_size qs)

let test_grid_write_quorum () =
  let qs = Qs.grid ~rows:2 ~cols:3 (members 6) in
  (* Full column {0,3} plus cover {1,2}. *)
  Alcotest.(check bool) "column + cover" true (Qs.is_write_quorum_list qs [ 0; 3; 1; 2 ]);
  Alcotest.(check bool) "cover without full column" false
    (Qs.is_write_quorum_list qs [ 0; 1; 2 ]);
  Alcotest.(check bool) "full column without cover" false
    (Qs.is_write_quorum_list qs [ 0; 3 ]);
  Alcotest.(check int) "min write size" 4 (Qs.min_write_size qs)

let test_weighted_votes () =
  (* Nodes 0..2 with votes 3, 1, 1 (total 5); read >= 2, write >= 4. *)
  let qs =
    Qs.weighted ~name:"w" ~members:[ (0, 3); (1, 1); (2, 1) ] ~read:2 ~write:4
  in
  Alcotest.(check bool) "heavy node alone reads" true (Qs.is_read_quorum_list qs [ 0 ]);
  Alcotest.(check bool) "one light node cannot read" false (Qs.is_read_quorum_list qs [ 1 ]);
  Alcotest.(check bool) "two light nodes read" true (Qs.is_read_quorum_list qs [ 1; 2 ]);
  Alcotest.(check bool) "heavy + light write" true (Qs.is_write_quorum_list qs [ 0; 1 ]);
  Alcotest.(check bool) "lights cannot write" false (Qs.is_write_quorum_list qs [ 1; 2 ]);
  Alcotest.(check int) "min read members" 1 (Qs.min_read_size qs);
  Alcotest.(check int) "min write members" 2 (Qs.min_write_size qs);
  Alcotest.(check (option (pair int int))) "not counting-based" None
    (Qs.counting_thresholds qs)

let test_weighted_choose () =
  let qs =
    Qs.weighted ~name:"w" ~members:[ (0, 3); (1, 1); (2, 1) ] ~read:2 ~write:4
  in
  let rng = Dq_util.Rng.create 6L in
  for _ = 1 to 50 do
    Alcotest.(check bool) "read choice valid" true
      (Qs.is_read_quorum_list qs (Qs.choose_read qs rng));
    Alcotest.(check bool) "write choice valid" true
      (Qs.is_write_quorum_list qs (Qs.choose_write qs rng))
  done

let test_weighted_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "non-intersecting rejected" true
    (raises (fun () ->
         ignore (Qs.weighted ~name:"w" ~members:[ (0, 2); (1, 2) ] ~read:1 ~write:3)));
  Alcotest.(check bool) "disjoint writes rejected" true
    (raises (fun () ->
         ignore (Qs.weighted ~name:"w" ~members:[ (0, 2); (1, 2) ] ~read:3 ~write:2)));
  (match Qs.validate (Qs.weighted ~name:"w" ~members:[ (0, 3); (1, 1); (2, 1) ] ~read:2 ~write:4) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg)

let test_grid_shape_validation () =
  Alcotest.(check bool) "bad shape" true
    (try
       ignore (Qs.grid ~rows:2 ~cols:3 (members 5));
       false
     with Invalid_argument _ -> true)

let test_validate_constructions () =
  List.iter
    (fun qs ->
      match Qs.validate qs with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (Qs.name qs ^ ": " ^ msg))
    [
      Qs.majority (members 3);
      Qs.majority (members 5);
      Qs.majority (members 9);
      Qs.rowa (members 4);
      Qs.threshold ~name:"t" ~members:(members 7) ~read:3 ~write:5;
      Qs.grid ~rows:2 ~cols:3 (members 6);
      Qs.grid ~rows:3 ~cols:3 (members 9);
      Qs.grid ~rows:2 ~cols:2 (members 4);
    ]

let test_counting_thresholds () =
  Alcotest.(check (option (pair int int))) "majority" (Some (3, 3))
    (Qs.counting_thresholds (Qs.majority (members 5)));
  Alcotest.(check (option (pair int int))) "grid" None
    (Qs.counting_thresholds (Qs.grid ~rows:2 ~cols:2 (members 4)))

(* Random subsets: read quorums always intersect write quorums. *)
let prop_read_write_intersection =
  QCheck.Test.make ~name:"read and write quorums intersect" ~count:500
    QCheck.(triple (int_range 1 10) (int_range 0 1023) (int_range 0 1023))
    (fun (n, mask_a, mask_b) ->
      let qs = Qs.majority (members n) in
      let of_mask mask = List.filter (fun i -> mask land (1 lsl i) <> 0) (members n) in
      let a = of_mask mask_a and b = of_mask mask_b in
      if Qs.is_read_quorum_list qs a && Qs.is_write_quorum_list qs b then
        List.exists (fun x -> List.mem x b) a
      else true)

let prop_grid_quorums_intersect =
  QCheck.Test.make ~name:"grid write quorums pairwise intersect" ~count:300
    QCheck.(pair (int_range 0 4095) (int_range 0 4095))
    (fun (mask_a, mask_b) ->
      let qs = Qs.grid ~rows:3 ~cols:4 (members 12) in
      let of_mask mask = List.filter (fun i -> mask land (1 lsl i) <> 0) (members 12) in
      let a = of_mask mask_a and b = of_mask mask_b in
      if Qs.is_write_quorum_list qs a && Qs.is_write_quorum_list qs b then
        List.exists (fun x -> List.mem x b) a
      else true)

let () =
  Alcotest.run "quorum"
    [
      ( "threshold",
        [
          Alcotest.test_case "majority sizes" `Quick test_majority_sizes;
          Alcotest.test_case "rowa sizes" `Quick test_rowa_sizes;
          Alcotest.test_case "predicates" `Quick test_threshold_predicates;
          Alcotest.test_case "validation" `Quick test_threshold_validation;
          Alcotest.test_case "nonconsecutive ids" `Quick test_nonconsecutive_member_ids;
          Alcotest.test_case "counting thresholds" `Quick test_counting_thresholds;
        ] );
      ( "choice",
        [
          Alcotest.test_case "choose read" `Quick test_choose_read_is_quorum;
          Alcotest.test_case "choose write" `Quick test_choose_write_is_quorum;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "votes" `Quick test_weighted_votes;
          Alcotest.test_case "choose" `Quick test_weighted_choose;
          Alcotest.test_case "validation" `Quick test_weighted_validation;
        ] );
      ( "grid",
        [
          Alcotest.test_case "read quorum" `Quick test_grid_read_quorum;
          Alcotest.test_case "write quorum" `Quick test_grid_write_quorum;
          Alcotest.test_case "shape validation" `Quick test_grid_shape_validation;
        ] );
      ("validate", [ Alcotest.test_case "constructions" `Quick test_validate_constructions ]);
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_read_write_intersection; prop_grid_quorums_intersect ] );
    ]
