module Engine = Dq_sim.Engine
module Retry = Dq_rpc.Retry

let engine_timer engine ~delay_ms action = Engine.schedule engine ~delay:delay_ms action

let test_completes_synchronously_if_condition_holds () =
  let engine = Engine.create () in
  let attempts = ref 0 in
  let completed = ref false in
  let t =
    Retry.start
      ~timer:(engine_timer engine)
      ~attempt:(fun ~round:_ -> incr attempts)
      ~complete:(fun () -> true)
      ~on_complete:(fun () -> completed := true)
      ()
  in
  Alcotest.(check bool) "done immediately" true (Retry.is_done t);
  Alcotest.(check bool) "callback fired" true !completed;
  Alcotest.(check int) "one attempt" 1 !attempts;
  Engine.run engine;
  Alcotest.(check int) "no retries" 1 !attempts

let test_retries_with_backoff () =
  let engine = Engine.create () in
  let times = ref [] in
  let t =
    Retry.start
      ~timer:(engine_timer engine)
      ~attempt:(fun ~round:_ -> times := Engine.now engine :: !times)
      ~complete:(fun () -> false)
      ~on_complete:(fun () -> ())
      ~timeout_ms:100. ~backoff:2. ~max_rounds:4 ()
  in
  Engine.run engine;
  (* max_rounds = 4 attempts: t = 0, then retries after 100, 200, 400 ms
     (exponential backoff), then the loop gives up. *)
  Alcotest.(check (list (float 0.)))
    "attempt times" [ 0.; 100.; 300.; 700. ] (List.rev !times);
  Alcotest.(check bool) "gave up" true (Retry.is_done t)

let test_poke_completes () =
  let engine = Engine.create () in
  let flag = ref false in
  let completed = ref false in
  let t =
    Retry.start
      ~timer:(engine_timer engine)
      ~attempt:(fun ~round:_ -> ())
      ~complete:(fun () -> !flag)
      ~on_complete:(fun () -> completed := true)
      ()
  in
  Alcotest.(check bool) "not done" false (Retry.is_done t);
  flag := true;
  Retry.poke t;
  Alcotest.(check bool) "done after poke" true (Retry.is_done t);
  Alcotest.(check bool) "callback" true !completed

let test_on_complete_fires_once () =
  let engine = Engine.create () in
  let flag = ref false in
  let count = ref 0 in
  let t =
    Retry.start
      ~timer:(engine_timer engine)
      ~attempt:(fun ~round:_ -> ())
      ~complete:(fun () -> !flag)
      ~on_complete:(fun () -> incr count)
      ()
  in
  flag := true;
  Retry.poke t;
  Retry.poke t;
  Engine.run engine;
  Alcotest.(check int) "exactly once" 1 !count

let test_cancel_stops_everything () =
  let engine = Engine.create () in
  let attempts = ref 0 in
  let completed = ref false in
  let t =
    Retry.start
      ~timer:(engine_timer engine)
      ~attempt:(fun ~round:_ -> incr attempts)
      ~complete:(fun () -> false)
      ~on_complete:(fun () -> completed := true)
      ~timeout_ms:10. ()
  in
  Retry.cancel t;
  Engine.run engine;
  Alcotest.(check int) "no more attempts" 1 !attempts;
  Alcotest.(check bool) "no completion" false !completed;
  Alcotest.(check bool) "done" true (Retry.is_done t);
  Alcotest.(check int) "no pending events" 0 (Engine.pending_events engine)

let test_give_up_callback () =
  let engine = Engine.create () in
  let gave_up = ref false in
  ignore
    (Retry.start
       ~timer:(engine_timer engine)
       ~attempt:(fun ~round:_ -> ())
       ~complete:(fun () -> false)
       ~on_complete:(fun () -> Alcotest.fail "must not complete")
       ~timeout_ms:10. ~max_rounds:2
       ~on_give_up:(fun () -> gave_up := true)
       ());
  Engine.run engine;
  Alcotest.(check bool) "give up called" true !gave_up

let test_completion_during_later_round () =
  let engine = Engine.create () in
  let rounds = ref 0 in
  let completed_at = ref (-1.) in
  ignore
    (Retry.start
       ~timer:(engine_timer engine)
       ~attempt:(fun ~round -> rounds := round)
       ~complete:(fun () -> !rounds >= 2)
       ~on_complete:(fun () -> completed_at := Engine.now engine)
       ~timeout_ms:50. ~backoff:1. ());
  Engine.run engine;
  (* Round 1 at t=50, round 2 at t=100 satisfies the condition. *)
  Alcotest.(check (float 0.)) "completed at second retry" 100. !completed_at;
  Alcotest.(check int) "no events left" 0 (Engine.pending_events engine)

let test_rerun_reattempts_immediately () =
  let engine = Engine.create () in
  let attempts = ref 0 in
  let flag = ref false in
  let t =
    Retry.start
      ~timer:(engine_timer engine)
      ~attempt:(fun ~round:_ -> incr attempts)
      ~complete:(fun () -> !flag)
      ~on_complete:(fun () -> ())
      ~timeout_ms:1_000. ()
  in
  Alcotest.(check int) "initial attempt" 1 !attempts;
  Retry.rerun t;
  Alcotest.(check int) "rerun attempts now" 2 !attempts;
  (* rerun also notices completion. *)
  flag := true;
  Retry.rerun t;
  Alcotest.(check bool) "completed" true (Retry.is_done t);
  Retry.rerun t;
  Alcotest.(check int) "no attempts after done" 3 !attempts;
  Engine.run engine

let test_rerun_keeps_timer_schedule () =
  let engine = Engine.create () in
  let attempt_times = ref [] in
  ignore
    (Retry.start
       ~timer:(engine_timer engine)
       ~attempt:(fun ~round:_ -> attempt_times := Engine.now engine :: !attempt_times)
       ~complete:(fun () -> List.length !attempt_times >= 3)
       ~on_complete:(fun () -> ())
       ~timeout_ms:100. ~backoff:1. ());
  Engine.run engine;
  (* Timer cadence unchanged: attempts at 0, 100, 200. *)
  Alcotest.(check (list (float 0.))) "cadence" [ 0.; 100.; 200. ] (List.rev !attempt_times)

let () =
  Alcotest.run "retry"
    [
      ( "unit",
        [
          Alcotest.test_case "synchronous completion" `Quick
            test_completes_synchronously_if_condition_holds;
          Alcotest.test_case "backoff schedule" `Quick test_retries_with_backoff;
          Alcotest.test_case "poke" `Quick test_poke_completes;
          Alcotest.test_case "completes once" `Quick test_on_complete_fires_once;
          Alcotest.test_case "cancel" `Quick test_cancel_stops_everything;
          Alcotest.test_case "give up" `Quick test_give_up_callback;
          Alcotest.test_case "late completion" `Quick test_completion_during_later_round;
          Alcotest.test_case "rerun" `Quick test_rerun_reattempts_immediately;
          Alcotest.test_case "rerun cadence" `Quick test_rerun_keeps_timer_schedule;
        ] );
    ]
