module Topology = Dq_net.Topology

let topo = Topology.make ~n_servers:9 ~n_clients:3 ()

let test_counts () =
  Alcotest.(check int) "nodes" 12 (Topology.n_nodes topo);
  Alcotest.(check (list int)) "servers" (List.init 9 Fun.id) (Topology.servers topo);
  Alcotest.(check (list int)) "clients" [ 9; 10; 11 ] (Topology.clients topo)

let test_roles () =
  Alcotest.(check bool) "0 is server" true (Topology.role topo 0 = Topology.Server);
  Alcotest.(check bool) "8 is server" true (Topology.role topo 8 = Topology.Server);
  Alcotest.(check bool) "9 is client" true (Topology.role topo 9 = Topology.Client)

let test_closest () =
  Alcotest.(check int) "client 9 -> server 0" 0 (Topology.closest_server topo 9);
  Alcotest.(check int) "client 10 -> server 1" 1 (Topology.closest_server topo 10);
  Alcotest.(check int) "server is its own closest" 4 (Topology.closest_server topo 4)

let test_paper_delays () =
  (* 8 ms LAN to the closest edge, 86 ms WAN to others, 80 ms between
     servers (Section 4.1). *)
  Alcotest.(check (float 0.)) "client->closest" 8. (Topology.delay topo ~src:9 ~dst:0);
  Alcotest.(check (float 0.)) "closest->client" 8. (Topology.delay topo ~src:0 ~dst:9);
  Alcotest.(check (float 0.)) "client->distant" 86. (Topology.delay topo ~src:9 ~dst:3);
  Alcotest.(check (float 0.)) "server->server" 80. (Topology.delay topo ~src:0 ~dst:5);
  Alcotest.(check (float 0.)) "local delivery" 0.05 (Topology.delay topo ~src:4 ~dst:4)

let test_symmetry () =
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          Alcotest.(check (float 0.))
            (Printf.sprintf "delay %d<->%d" src dst)
            (Topology.delay topo ~src ~dst)
            (Topology.delay topo ~src:dst ~dst:src))
        (Topology.nodes topo))
    (Topology.nodes topo)

let test_custom_closest () =
  let t = Topology.make ~n_servers:3 ~n_clients:2 ~closest:(fun _ -> 2) () in
  Alcotest.(check int) "custom closest" 2 (Topology.closest_server t 3);
  Alcotest.(check (float 0.)) "lan to custom closest" 8. (Topology.delay t ~src:3 ~dst:2);
  Alcotest.(check (float 0.)) "wan to others" 86. (Topology.delay t ~src:3 ~dst:0)

let test_custom_delays () =
  let t = Topology.make ~n_servers:2 ~n_clients:1 ~lan_ms:1. ~wan_ms:2. ~server_ms:3. () in
  Alcotest.(check (float 0.)) "lan" 1. (Topology.delay t ~src:2 ~dst:0);
  Alcotest.(check (float 0.)) "wan" 2. (Topology.delay t ~src:2 ~dst:1);
  Alcotest.(check (float 0.)) "server" 3. (Topology.delay t ~src:0 ~dst:1)

let test_bad_role_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Topology.role topo 99);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "topology"
    [
      ( "unit",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "roles" `Quick test_roles;
          Alcotest.test_case "closest" `Quick test_closest;
          Alcotest.test_case "paper delays" `Quick test_paper_delays;
          Alcotest.test_case "symmetry" `Quick test_symmetry;
          Alcotest.test_case "custom closest" `Quick test_custom_closest;
          Alcotest.test_case "custom delays" `Quick test_custom_delays;
          Alcotest.test_case "bad node id" `Quick test_bad_role_rejected;
        ] );
    ]
