module Qs = Dq_quorum.Quorum_system
module Av = Dq_quorum.Availability

let members n = List.init n Fun.id

let check_close ?(rel = 1e-9) msg expected actual =
  let ok =
    if expected = 0. then abs_float actual < 1e-15
    else abs_float (actual -. expected) /. abs_float expected < rel
  in
  Alcotest.(check bool) (Printf.sprintf "%s: %g vs %g" msg expected actual) true ok

let test_singleton () =
  let qs = Qs.threshold ~name:"one" ~members:[ 0 ] ~read:1 ~write:1 in
  check_close "read unavail = p" 0.01 (Av.unavailability qs ~mode:Av.Read ~p:0.01);
  check_close "write avail = 1-p" 0.99 (Av.availability qs ~mode:Av.Write ~p:0.01)

let test_rowa_closed_forms () =
  let qs = Qs.rowa (members 3) in
  let p = 0.1 in
  (* Read-one: unavailable iff all 3 down. *)
  check_close "read" (p ** 3.) (Av.unavailability qs ~mode:Av.Read ~p);
  (* Write-all: unavailable iff any down. *)
  check_close "write" (1. -. ((1. -. p) ** 3.)) (Av.unavailability qs ~mode:Av.Write ~p)

let test_majority_3 () =
  let qs = Qs.majority (members 3) in
  let p = 0.1 in
  (* Unavailable iff >= 2 of 3 down: 3 p^2 (1-p) + p^3. *)
  let expected = (3. *. p *. p *. (1. -. p)) +. (p ** 3.) in
  check_close "majority(3)" expected (Av.unavailability qs ~mode:Av.Read ~p)

let test_closed_form_matches_enumeration () =
  (* The closed-form binomial path and the exhaustive enumeration must
     agree; compare via a grid system of the same min sizes vs direct
     probability computation. Here: force enumeration by checking a
     threshold system as Custom would - use a small grid where we can
     compute by hand instead. *)
  let qs = Qs.grid ~rows:1 ~cols:3 (members 3) in
  (* 1x3 grid: read quorum = all three columns' single nodes = all 3;
     write = full column (1 node) + cover (other 2) = all 3. *)
  let p = 0.2 in
  check_close "1x3 grid read = all up" (1. -. (0.8 ** 3.))
    (Av.unavailability qs ~mode:Av.Read ~p)

let test_grid_2x2 () =
  let qs = Qs.grid ~rows:2 ~cols:2 (members 4) in
  let p = 0.1 in
  let q = 1. -. p in
  (* Read quorum: one node from each column. Column covered prob:
     1-p^2 each, independent: av_read = (1-p^2)^2. *)
  check_close "grid read" (1. -. ((1. -. (p *. p)) ** 2.))
    (Av.unavailability qs ~mode:Av.Read ~p);
  (* Write quorum: a full column up and every column covered.
     av_write = P(at least one full column up AND both columns covered).
     Enumerate by hand: columns are {0,2} and {1,3} (row-major 2x2:
     row0 = 0 1, row1 = 2 3; columns: {0,2}, {1,3}).
     full0 = q^2, full1 = q^2.
     av = P(full0 and cover1) + P(full1 and cover0) - P(full0 and full1)
        = q^2 (1-p^2) + (1-p^2) q^2 - q^4. *)
  let av = (2. *. (q ** 2.) *. (1. -. (p *. p))) -. (q ** 4.) in
  check_close "grid write" (1. -. av) (Av.unavailability qs ~mode:Av.Write ~p)

let test_avail_plus_unavail () =
  List.iter
    (fun qs ->
      List.iter
        (fun p ->
          let a = Av.availability qs ~mode:Av.Read ~p in
          let u = Av.unavailability qs ~mode:Av.Read ~p in
          Alcotest.(check (float 1e-9)) (Qs.name qs) 1. (a +. u))
        [ 0.01; 0.3; 0.9 ])
    [ Qs.majority (members 5); Qs.rowa (members 4); Qs.grid ~rows:2 ~cols:3 (members 6) ]

let test_extremes () =
  let qs = Qs.majority (members 5) in
  check_close "p=0" 0. (Av.unavailability qs ~mode:Av.Read ~p:0.);
  check_close "p=1" 1. (Av.unavailability qs ~mode:Av.Read ~p:1.)

let test_more_replicas_help_majority () =
  let p = 0.01 in
  let u n = Av.unavailability (Qs.majority (members n)) ~mode:Av.Read ~p in
  Alcotest.(check bool) "u(5) < u(3)" true (u 5 < u 3);
  Alcotest.(check bool) "u(15) < u(5)" true (u 15 < u 5);
  (* Roughly exponential improvement: each +2 replicas shrinks
     unavailability by about a factor p. *)
  Alcotest.(check bool) "sharp drop" true (u 15 < u 3 *. 1e-5)

let test_tiny_values_precise () =
  (* The paper plots 10^-9 and below; those values must not collapse to
     0 or lose precision to cancellation. majority(15), p=0.01:
     unavailable iff >= 8 of 15 down; leading term C(15,8) p^8. *)
  let u = Av.unavailability (Qs.majority (members 15)) ~mode:Av.Read ~p:0.01 in
  let leading = Dq_util.Combin.choose 15 8 *. (0.01 ** 8.) *. (0.99 ** 7.) in
  Alcotest.(check bool) "close to leading term" true
    (u > leading && u < leading *. 1.2)

let test_min_availability () =
  let qs = Qs.rowa (members 3) in
  let p = 0.1 in
  check_close "min = write side" (Av.availability qs ~mode:Av.Write ~p)
    (Av.min_availability qs ~p);
  check_close "max unavail = write side"
    (Av.unavailability qs ~mode:Av.Write ~p)
    (Av.max_unavailability qs ~p)

let test_monte_carlo_matches_exact () =
  let rng = Dq_util.Rng.create 9L in
  List.iter
    (fun (qs, mode) ->
      let exact = Av.unavailability qs ~mode ~p:0.2 in
      let mc = Av.unavailability_mc qs ~mode ~p:0.2 ~rng ~samples:20_000 in
      Alcotest.(check bool)
        (Printf.sprintf "%s mc %.4f vs exact %.4f" (Qs.name qs) mc exact)
        true
        (abs_float (mc -. exact) < 0.02))
    [
      (Qs.majority (members 5), Av.Read);
      (Qs.rowa (members 4), Av.Write);
      (Qs.grid ~rows:2 ~cols:3 (members 6), Av.Write);
    ]

let test_monte_carlo_scales_past_enumeration () =
  (* 30 members is beyond the exact enumerator; the estimate must still
     be a sane probability. *)
  let rng = Dq_util.Rng.create 10L in
  let qs = Qs.grid ~rows:5 ~cols:6 (members 30) in
  let u = Av.unavailability_mc qs ~mode:Av.Write ~p:0.3 ~rng ~samples:5_000 in
  Alcotest.(check bool) "probability" true (u >= 0. && u <= 1.);
  Alcotest.(check bool) "nontrivial at p=0.3" true (u > 0.01)

let prop_monotone_in_p =
  QCheck.Test.make ~name:"unavailability is monotone in p" ~count:200
    QCheck.(triple (int_range 1 12) (float_range 0.01 0.5) (float_range 0.01 0.4))
    (fun (n, p, dp) ->
      let qs = Qs.majority (members n) in
      Av.unavailability qs ~mode:Av.Read ~p
      <= Av.unavailability qs ~mode:Av.Read ~p:(p +. dp) +. 1e-12)

let prop_write_harder_than_read_rowa =
  QCheck.Test.make ~name:"rowa: writes no more available than reads" ~count:200
    QCheck.(pair (int_range 1 10) (float_range 0.01 0.99))
    (fun (n, p) ->
      let qs = Qs.rowa (members n) in
      Av.unavailability qs ~mode:Av.Write ~p >= Av.unavailability qs ~mode:Av.Read ~p -. 1e-12)

let () =
  Alcotest.run "availability"
    [
      ( "unit",
        [
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "rowa closed forms" `Quick test_rowa_closed_forms;
          Alcotest.test_case "majority(3)" `Quick test_majority_3;
          Alcotest.test_case "1x3 grid" `Quick test_closed_form_matches_enumeration;
          Alcotest.test_case "2x2 grid by hand" `Quick test_grid_2x2;
          Alcotest.test_case "avail + unavail = 1" `Quick test_avail_plus_unavail;
          Alcotest.test_case "extremes" `Quick test_extremes;
          Alcotest.test_case "replicas help" `Quick test_more_replicas_help_majority;
          Alcotest.test_case "tiny values" `Quick test_tiny_values_precise;
          Alcotest.test_case "min availability" `Quick test_min_availability;
          Alcotest.test_case "monte carlo vs exact" `Quick test_monte_carlo_matches_exact;
          Alcotest.test_case "monte carlo scales" `Quick test_monte_carlo_scales_past_enumeration;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_monotone_in_p; prop_write_harder_than_read_rowa ] );
    ]
