module Engine = Dq_sim.Engine

let test_time_starts_at_zero () =
  let e = Engine.create () in
  Alcotest.(check (float 0.)) "t=0" 0. (Engine.now e)

let test_fires_in_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := (tag, Engine.now e) :: !log in
  ignore (Engine.schedule e ~delay:30. (note "c"));
  ignore (Engine.schedule e ~delay:10. (note "a"));
  ignore (Engine.schedule e ~delay:20. (note "b"));
  Engine.run e;
  Alcotest.(check (list (pair string (float 0.))))
    "order" [ ("a", 10.); ("b", 20.); ("c", 30.) ] (List.rev !log)

let test_fifo_at_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:5. (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:1. (fun () ->
         log := ("outer", Engine.now e) :: !log;
         ignore
           (Engine.schedule e ~delay:2. (fun () -> log := ("inner", Engine.now e) :: !log))));
  Engine.run e;
  Alcotest.(check (list (pair string (float 0.))))
    "nested" [ ("outer", 1.); ("inner", 3.) ] (List.rev !log)

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let handle = Engine.schedule e ~delay:1. (fun () -> fired := true) in
  Alcotest.(check bool) "pending before" true (Engine.is_pending handle);
  Engine.cancel handle;
  Alcotest.(check bool) "pending after" false (Engine.is_pending handle);
  Engine.run e;
  Alcotest.(check bool) "not fired" false !fired

let test_cancel_idempotent () =
  let e = Engine.create () in
  let handle = Engine.schedule e ~delay:1. (fun () -> ()) in
  Engine.cancel handle;
  Engine.cancel handle;
  Alcotest.(check int) "no pending" 0 (Engine.pending_events e)

let test_pending_count () =
  let e = Engine.create () in
  let h1 = Engine.schedule e ~delay:1. (fun () -> ()) in
  let _h2 = Engine.schedule e ~delay:2. (fun () -> ()) in
  Alcotest.(check int) "two pending" 2 (Engine.pending_events e);
  Engine.cancel h1;
  Alcotest.(check int) "one pending" 1 (Engine.pending_events e);
  Engine.run e;
  Alcotest.(check int) "none pending" 0 (Engine.pending_events e)

let test_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun d -> ignore (Engine.schedule e ~delay:d (fun () -> fired := d :: !fired)))
    [ 5.; 15.; 25. ];
  Engine.run ~until:20. e;
  Alcotest.(check (list (float 0.))) "only early events" [ 5.; 15. ] (List.rev !fired);
  Alcotest.(check (float 0.)) "time advanced to horizon" 20. (Engine.now e);
  Engine.run e;
  Alcotest.(check (list (float 0.))) "rest fires later" [ 5.; 15.; 25. ] (List.rev !fired)

let test_run_until_with_cancelled_head () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:5. (fun () -> ()) in
  ignore (Engine.schedule e ~delay:30. (fun () -> fired := true));
  Engine.cancel h;
  (* The cancelled event at t=5 must not let the t=30 event slip inside
     an until:10 run. *)
  Engine.run ~until:10. e;
  Alcotest.(check bool) "late event did not fire" false !fired

let test_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore (Engine.schedule e ~delay:1. (fun () -> incr count))
  done;
  Engine.run ~max_events:3 e;
  Alcotest.(check int) "stopped after three" 3 !count

let test_schedule_in_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:5. (fun () -> ()));
  Engine.run e;
  Alcotest.(check bool) "raises" true
    (try
       ignore (Engine.schedule_at e ~time:1. (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_negative_delay_rejected () =
  let e = Engine.create () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Engine.schedule e ~delay:(-1.) (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_run_while () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore (Engine.schedule e ~delay:1. (fun () -> incr count))
  done;
  Engine.run_while e (fun () -> !count < 4);
  Alcotest.(check int) "condition stops the loop" 4 !count

let test_determinism () =
  (* Two engines with the same seed and the same program produce the
     same random draws interleaved with events. *)
  let run_once () =
    let e = Engine.create ~seed:99L () in
    let rng = Engine.split_rng e in
    let acc = ref [] in
    for i = 1 to 5 do
      ignore
        (Engine.schedule e ~delay:(float_of_int i) (fun () ->
             acc := Dq_util.Rng.int rng 1000 :: !acc))
    done;
    Engine.run e;
    !acc
  in
  Alcotest.(check (list int)) "identical" (run_once ()) (run_once ())

let prop_events_fire_in_order =
  QCheck.Test.make ~name:"events fire in nondecreasing time order" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 50) (float_range 0. 1000.))
    (fun delays ->
      let e = Engine.create () in
      let times = ref [] in
      List.iter
        (fun d -> ignore (Engine.schedule e ~delay:d (fun () -> times := Engine.now e :: !times)))
        delays;
      Engine.run e;
      let fired = List.rev !times in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | [ _ ] | [] -> true
      in
      List.length fired = List.length delays && nondecreasing fired)

let () =
  Alcotest.run "engine"
    [
      ( "unit",
        [
          Alcotest.test_case "starts at zero" `Quick test_time_starts_at_zero;
          Alcotest.test_case "time order" `Quick test_fires_in_time_order;
          Alcotest.test_case "fifo ties" `Quick test_fifo_at_same_time;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "cancel idempotent" `Quick test_cancel_idempotent;
          Alcotest.test_case "pending count" `Quick test_pending_count;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "run until with cancelled head" `Quick
            test_run_until_with_cancelled_head;
          Alcotest.test_case "max events" `Quick test_max_events;
          Alcotest.test_case "schedule in past" `Quick test_schedule_in_past_rejected;
          Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
          Alcotest.test_case "run while" `Quick test_run_while;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_events_fire_in_order ]);
    ]
