(* Property-based end-to-end consistency: random workloads, random
   fault schedules (message loss, duplication, jitter, crashes of an
   IQS minority, transient partitions) - the quorum protocols must
   never violate regular semantics, and must keep serving requests. *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Spec = Dq_workload.Spec
module Driver = Dq_harness.Driver
module Registry = Dq_harness.Registry
module Checker = Dq_harness.Regular_checker

type scenario = {
  seed : int64;
  n_servers : int;
  write_ratio : float;
  objects : int;
  loss : float;
  duplicate : float;
  jitter_ms : float;
  crashes : bool;
  partition : bool;
}

let scenario_gen =
  QCheck.Gen.(
    let* seed = map Int64.of_int (int_range 1 1_000_000) in
    let* n_servers = int_range 3 7 in
    let* write_ratio = float_range 0.1 0.6 in
    let* objects = int_range 1 3 in
    let* loss = float_range 0. 0.15 in
    let* duplicate = float_range 0. 0.15 in
    let* jitter_ms = float_range 0. 40. in
    let* crashes = bool in
    let* partition = bool in
    return
      { seed; n_servers; write_ratio; objects; loss; duplicate; jitter_ms; crashes; partition })

let print_scenario s =
  Printf.sprintf
    "{seed=%Ld n=%d w=%.2f objs=%d loss=%.2f dup=%.2f jitter=%.0f crash=%b part=%b}" s.seed
    s.n_servers s.write_ratio s.objects s.loss s.duplicate s.jitter_ms s.crashes s.partition

let scenario_arb = QCheck.make ~print:print_scenario scenario_gen

(* Crash a strict IQS minority for a while, and/or cut one server off. *)
let fault_events s =
  let minority = (s.n_servers - 1) / 2 in
  let crash_events =
    if s.crashes && minority >= 1 then
      List.concat
        (List.init minority (fun i ->
             [
               { Driver.at_ms = 2_000. +. (500. *. float_of_int i); action = `Crash i };
               { Driver.at_ms = 20_000. +. (500. *. float_of_int i); action = `Recover i };
             ]))
    else []
  in
  let partition_events =
    if s.partition then
      [
        {
          Driver.at_ms = 8_000.;
          action = `Partition [ [ s.n_servers - 1 ] ];
        };
        { Driver.at_ms = 25_000.; action = `Heal };
      ]
    else []
  in
  crash_events @ partition_events

let run_scenario (builder : Registry.builder) s =
  let engine = Engine.create ~seed:s.seed () in
  let topology = Topology.make ~n_servers:s.n_servers ~n_clients:3 () in
  let faults = { Net.loss = s.loss; duplicate = s.duplicate; jitter_ms = s.jitter_ms } in
  let instance = builder.Registry.build engine topology ~faults () in
  let spec =
    {
      Spec.default with
      Spec.write_ratio = s.write_ratio;
      sharing = Spec.Shared_uniform { objects = s.objects };
    }
  in
  let config =
    {
      (Driver.default_config spec) with
      Driver.ops_per_client = 40;
      timeout_ms = 8_000.;
      horizon_ms = 1.2e6;
    }
  in
  let result =
    Driver.run_with_events engine topology instance.Registry.api config
      ~events:(fault_events s)
      ~on_net_event:(function
        | `Partition groups -> instance.Registry.partition groups
        | `Heal -> instance.Registry.heal ())
  in
  result

let regular_under_faults builder =
  QCheck.Test.make
    ~name:(builder.Registry.name ^ " is regular under faults")
    ~count:15 scenario_arb
    (fun s ->
      let result = run_scenario builder s in
      let report = Checker.check result.Driver.history in
      if report.Checker.violations <> [] then
        QCheck.Test.fail_reportf "violations: %a" Checker.pp_report report
      else if result.Driver.completed = 0 then
        QCheck.Test.fail_report "no operation ever completed"
      else true)

let props =
  [
    regular_under_faults (Registry.dqvl ~volume_lease_ms:3_000. ());
    regular_under_faults Registry.dq_basic;
    regular_under_faults Registry.majority;
  ]

(* A deterministic heavier scenario exercised as a plain unit test. *)
let test_dqvl_long_mixed_run () =
  let s =
    {
      seed = 4242L;
      n_servers = 9;
      write_ratio = 0.3;
      objects = 2;
      loss = 0.05;
      duplicate = 0.05;
      jitter_ms = 20.;
      crashes = true;
      partition = true;
    }
  in
  let result = run_scenario (Registry.dqvl ()) s in
  let report = Checker.check result.Driver.history in
  Alcotest.(check int) "no violations" 0 (List.length report.Checker.violations);
  Alcotest.(check bool) "most operations completed" true
    (result.Driver.completed > (result.Driver.issued * 2) / 3)

let test_dqvl_heavy_contention () =
  (* All clients hammer one object at 50% writes with no faults: the
     worst interleaving for the caching machinery. *)
  let s =
    {
      seed = 777L;
      n_servers = 5;
      write_ratio = 0.5;
      objects = 1;
      loss = 0.;
      duplicate = 0.;
      jitter_ms = 0.;
      crashes = false;
      partition = false;
    }
  in
  let result = run_scenario (Registry.dqvl ()) s in
  let report = Checker.check result.Driver.history in
  Alcotest.(check int) "no violations" 0 (List.length report.Checker.violations);
  Alcotest.(check int) "no failures" 0 result.Driver.failed

let () =
  Alcotest.run "dqvl_consistency"
    [
      ( "deterministic",
        [
          Alcotest.test_case "long mixed run" `Slow test_dqvl_long_mixed_run;
          Alcotest.test_case "heavy contention" `Quick test_dqvl_heavy_contention;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest props);
    ]
