(* Volume semantics: leases are per volume, invalidations per object.
   Objects grouped into one volume share lease renewals (that is the
   amortization argument of the paper), while distinct volumes are
   isolated from each other's lease expiry and epochs. *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Cluster = Dq_core.Cluster
module Config = Dq_core.Config
module Oqs = Dq_core.Oqs_server
module Iqs = Dq_core.Iqs_server
module R = Dq_intf.Replication
open Dq_storage

let key ~volume ~index = Key.make ~volume ~index

let setup () =
  let engine = Engine.create ~seed:51L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:2 () in
  let servers = Topology.servers topology in
  let config = Config.dqvl ~servers ~volume_lease_ms:2_000. ~proactive_renew:false () in
  let cluster = Cluster.create engine topology config in
  (engine, cluster, Cluster.api cluster)

let vol_renew_count cluster =
  match
    List.assoc_opt "vol_renew_req" (Dq_net.Msg_stats.by_label (Net.stats (Cluster.net cluster)))
  with
  | Some n -> n
  | None -> 0

let test_same_volume_shares_lease () =
  (* After reading object 0 of volume 0, reading object 1 of the same
     volume needs object renewals but no further volume renewals. *)
  let engine, cluster, api = setup () in
  let renewals = ref [] in
  api.R.submit_read ~client:5 ~server:0 (key ~volume:0 ~index:0) (fun _ ->
      renewals := vol_renew_count cluster :: !renewals;
      api.R.submit_read ~client:5 ~server:0 (key ~volume:0 ~index:1) (fun _ ->
          renewals := vol_renew_count cluster :: !renewals));
  Engine.run ~until:10_000. engine;
  match List.rev !renewals with
  | [ after_first; after_second ] ->
    Alcotest.(check bool) "first read renews the volume" true (after_first > 0);
    Alcotest.(check int) "second object reuses the volume lease" after_first after_second
  | _ -> Alcotest.fail "both reads must complete"

let test_different_volume_needs_own_lease () =
  let engine, cluster, api = setup () in
  let renewals = ref [] in
  api.R.submit_read ~client:5 ~server:0 (key ~volume:0 ~index:0) (fun _ ->
      renewals := vol_renew_count cluster :: !renewals;
      api.R.submit_read ~client:5 ~server:0 (key ~volume:7 ~index:0) (fun _ ->
          renewals := vol_renew_count cluster :: !renewals));
  Engine.run ~until:10_000. engine;
  match List.rev !renewals with
  | [ after_first; after_second ] ->
    Alcotest.(check bool) "second volume pays its own renewals" true
      (after_second > after_first)
  | _ -> Alcotest.fail "both reads must complete"

let test_epoch_is_per_volume_and_peer () =
  (* Overflow volume 0's delayed queue for a partitioned node; volume
     1's epoch at the same IQS node must be untouched. *)
  let engine = Engine.create ~seed:52L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:2 () in
  let servers = Topology.servers topology in
  let config =
    {
      (Config.dqvl ~servers ~volume_lease_ms:1_000. ~proactive_renew:false ()) with
      Config.max_delayed = 1;
    }
  in
  let cluster = Cluster.create engine topology config in
  let api = Cluster.api cluster in
  let net = Cluster.net cluster in
  let stale = 4 in
  let keys0 = List.init 3 (fun i -> key ~volume:0 ~index:i) in
  let epochs = ref None in
  let rec warm = function
    | [] ->
      Net.partition net [ [ stale ]; [ 0; 1; 2; 3; 5; 6 ] ];
      write_all keys0
    | k :: rest -> api.R.submit_read ~client:5 ~server:stale k (fun _ -> warm rest)
  and write_all = function
    | [] ->
      (match Cluster.iqs_server cluster 0 with
      | Some iqs ->
        epochs :=
          Some (Iqs.epoch iqs ~volume:0 ~oqs:stale, Iqs.epoch iqs ~volume:1 ~oqs:stale)
      | None -> ());
      Net.heal net
    | k :: rest -> api.R.submit_write ~client:6 ~server:1 k "x" (fun _ -> write_all rest)
  in
  warm keys0;
  Engine.run ~until:300_000. engine;
  match !epochs with
  | Some (v0_epoch, v1_epoch) ->
    Alcotest.(check bool) "volume 0 epoch advanced" true (v0_epoch >= 1);
    Alcotest.(check int) "volume 1 epoch untouched" 0 v1_epoch
  | None -> Alcotest.fail "epochs not sampled"

let test_invalidations_do_not_cross_objects () =
  (* Writing object 0 leaves a cached object 1 of the same volume valid. *)
  let engine, cluster, api = setup () in
  let validity = ref None in
  api.R.submit_read ~client:5 ~server:0 (key ~volume:0 ~index:0) (fun _ ->
      api.R.submit_read ~client:5 ~server:0 (key ~volume:0 ~index:1) (fun _ ->
          api.R.submit_write ~client:6 ~server:1 (key ~volume:0 ~index:0) "w" (fun _ ->
              match Cluster.oqs_server cluster 0 with
              | Some oqs ->
                validity :=
                  Some
                    ( Oqs.is_locally_valid oqs (key ~volume:0 ~index:0),
                      Oqs.is_locally_valid oqs (key ~volume:0 ~index:1) )
              | None -> ())));
  Engine.run ~until:10_000. engine;
  match !validity with
  | Some (written, untouched) ->
    Alcotest.(check bool) "written object invalidated" false written;
    Alcotest.(check bool) "sibling object still valid" true untouched
  | None -> Alcotest.fail "validity not sampled"

(* Proactive renewal across many volumes, with and without batching:
   batching must cut the renewal request count while keeping every
   lease fresh. *)
let renewal_traffic ~batch =
  let engine = Engine.create ~seed:54L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:1 () in
  let servers = Topology.servers topology in
  let config =
    {
      (Config.dqvl ~servers ~volume_lease_ms:1_000. ~proactive_renew:true ()) with
      Config.batch_renewals = batch;
    }
  in
  let cluster = Cluster.create engine topology config in
  let api = Cluster.api cluster in
  let volumes = [ 0; 1; 2; 3; 4; 5 ] in
  (* Touch one object in each volume so node 0 holds all the leases. *)
  let rec touch = function
    | [] -> ()
    | v :: rest ->
      api.R.submit_read ~client:5 ~server:0 (key ~volume:v ~index:0) (fun _ -> touch rest)
  in
  touch volumes;
  (* Let proactive renewal run for a while. *)
  Engine.run ~until:20_000. engine;
  let stats = Net.stats (Cluster.net cluster) in
  let count label =
    Option.value (List.assoc_opt label (Dq_net.Msg_stats.by_label stats)) ~default:0
  in
  api.R.quiesce ();
  (* All leases must still be valid at the end in both modes. *)
  (match Cluster.oqs_server cluster 0 with
  | Some oqs ->
    List.iter
      (fun v ->
        Alcotest.(check bool)
          (Printf.sprintf "volume %d lease fresh (batch=%b)" v batch)
          true
          (List.exists
             (fun i -> Dq_core.Oqs_server.volume_valid_from oqs ~volume:v ~iqs:i)
             servers))
      volumes
  | None -> Alcotest.fail "no OQS");
  count "vol_renew_req" + count "vols_renew_req"

let test_batched_renewals_cut_traffic () =
  let unbatched = renewal_traffic ~batch:false in
  let batched = renewal_traffic ~batch:true in
  Alcotest.(check bool)
    (Printf.sprintf "batched (%d) well below unbatched (%d)" batched unbatched)
    true
    (float_of_int batched < 0.5 *. float_of_int unbatched)

let test_workload_volume_mapping_end_to_end () =
  (* A workload spreading objects over two volumes runs cleanly and
     stays regular. *)
  let engine = Engine.create ~seed:53L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:3 () in
  let builder = Dq_harness.Registry.dqvl ~volume_lease_ms:2_000. ~proactive_renew:false () in
  let instance = builder.Dq_harness.Registry.build engine topology () in
  let spec =
    {
      Dq_workload.Spec.default with
      Dq_workload.Spec.write_ratio = 0.3;
      sharing = Dq_workload.Spec.Shared_uniform { objects = 6 };
      volume_of = (fun index -> index mod 2);
    }
  in
  let config =
    { (Dq_harness.Driver.default_config spec) with Dq_harness.Driver.ops_per_client = 60 }
  in
  let result = Dq_harness.Driver.run engine topology instance.Dq_harness.Registry.api config in
  let report = Dq_harness.Regular_checker.check result.Dq_harness.Driver.history in
  Alcotest.(check int) "no failures" 0 result.Dq_harness.Driver.failed;
  Alcotest.(check int) "regular" 0 (List.length report.Dq_harness.Regular_checker.violations)

let () =
  Alcotest.run "volumes"
    [
      ( "unit",
        [
          Alcotest.test_case "shared lease within volume" `Quick test_same_volume_shares_lease;
          Alcotest.test_case "separate volumes separate leases" `Quick
            test_different_volume_needs_own_lease;
          Alcotest.test_case "epoch per volume and peer" `Quick
            test_epoch_is_per_volume_and_peer;
          Alcotest.test_case "invalidation per object" `Quick
            test_invalidations_do_not_cross_objects;
          Alcotest.test_case "two-volume workload" `Slow test_workload_volume_mapping_end_to_end;
          Alcotest.test_case "batched renewals" `Quick test_batched_renewals_cut_traffic;
        ] );
    ]
