(* Multi-writer single-reader mailboxes (the paper's customer-order
   object category from Section 1): local-latency appends with
   exactly-once delivery to the single consumer. *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Mailbox = Dq_proto.Mailbox

let setup ?(n_servers = 4) ?faults () =
  let engine = Engine.create ~seed:91L () in
  let topology = Topology.make ~n_servers ~n_clients:2 () in
  let mailbox = Mailbox.create engine topology ~home:0 () in
  (match faults with
  | Some _ ->
    (* Faults apply to the mailbox's own network: rebuild with them. *)
    ()
  | None -> ());
  (engine, topology, mailbox)

let test_append_is_local () =
  let engine, topology, mailbox = setup () in
  (* Client 4's closest edge is server 0... which is the home; use
     client 5 -> server 1 for a pure edge append. *)
  ignore topology;
  let latency = ref None in
  let start = Engine.now engine in
  Mailbox.append mailbox ~client:5 ~server:1 "order-1" (fun () ->
      latency := Some (Engine.now engine -. start));
  Engine.run ~until:30_000. engine;
  Mailbox.quiesce mailbox;
  (match !latency with
  | Some l -> Alcotest.(check bool) (Printf.sprintf "local ack (%.1f ms)" l) true (l < 20.)
  | None -> Alcotest.fail "no ack");
  Alcotest.(check int) "delivered to home" 1 (Mailbox.delivered_count mailbox);
  Alcotest.(check (list string)) "consumable" [ "order-1" ] (Mailbox.consume mailbox 10)

let test_all_edges_feed_the_home () =
  let engine, _, mailbox = setup () in
  let acked = ref 0 in
  for i = 1 to 10 do
    Mailbox.append mailbox ~client:4 ~server:1 (Printf.sprintf "a%d" i) (fun () -> incr acked);
    Mailbox.append mailbox ~client:5 ~server:2 (Printf.sprintf "b%d" i) (fun () -> incr acked)
  done;
  Engine.run ~until:60_000. engine;
  Mailbox.quiesce mailbox;
  Alcotest.(check int) "all acked" 20 !acked;
  Alcotest.(check int) "all delivered" 20 (Mailbox.delivered_count mailbox);
  Alcotest.(check int) "no stragglers" 0 (Mailbox.unforwarded_count mailbox);
  let entries = Mailbox.consume mailbox 100 in
  Alcotest.(check int) "distinct entries" 20 (List.length (List.sort_uniq compare entries))

let test_consume_in_batches () =
  let engine, _, mailbox = setup () in
  for i = 1 to 5 do
    Mailbox.append mailbox ~client:4 ~server:1 (Printf.sprintf "e%d" i) (fun () -> ())
  done;
  Engine.run ~until:30_000. engine;
  Mailbox.quiesce mailbox;
  let first = Mailbox.consume mailbox 2 in
  let rest = Mailbox.consume mailbox 10 in
  Alcotest.(check int) "first batch" 2 (List.length first);
  Alcotest.(check int) "rest" 3 (List.length rest);
  Alcotest.(check int) "drained" 0 (List.length (Mailbox.consume mailbox 10))

let test_exactly_once_under_loss_and_duplication () =
  let engine = Engine.create ~seed:92L () in
  let topology = Topology.make ~n_servers:4 ~n_clients:1 () in
  let mailbox = Mailbox.create engine topology ~home:0 ~retransmit_ms:300. () in
  (* Inject loss and duplication on the mailbox's network after the
     fact: crash/recover churn on the home plus lossy links. *)
  ignore
    (Engine.schedule engine ~delay:500. (fun () -> Mailbox.crash mailbox 0));
  ignore
    (Engine.schedule engine ~delay:5_000. (fun () -> Mailbox.recover mailbox 0));
  let acked = ref 0 in
  for i = 1 to 15 do
    Mailbox.append mailbox ~client:4 ~server:1 (Printf.sprintf "x%d" i) (fun () -> incr acked)
  done;
  Engine.run ~until:120_000. engine;
  Mailbox.quiesce mailbox;
  Alcotest.(check int) "all acked locally" 15 !acked;
  Alcotest.(check int) "each delivered exactly once" 15 (Mailbox.delivered_count mailbox);
  let entries = Mailbox.consume mailbox 100 in
  Alcotest.(check int) "no duplicates" 15 (List.length (List.sort_uniq compare entries))

let test_edge_crash_preserves_acked_appends () =
  (* The outbox is durable: appends acknowledged before the edge crash
     still reach the home after recovery. *)
  let engine, _, mailbox = setup () in
  let acked = ref 0 in
  for i = 1 to 5 do
    Mailbox.append mailbox ~client:4 ~server:1 (Printf.sprintf "d%d" i) (fun () -> incr acked)
  done;
  (* Crash the edge after the appends arrive (86 ms WAN) but before the
     forward acknowledgments return (~246 ms), so the outbox still
     holds every entry at crash time. *)
  ignore (Engine.schedule engine ~delay:200. (fun () -> Mailbox.crash mailbox 1));
  ignore (Engine.schedule engine ~delay:10_000. (fun () -> Mailbox.recover mailbox 1));
  Engine.run ~until:120_000. engine;
  Mailbox.quiesce mailbox;
  Alcotest.(check int) "delivered after recovery" 5 (Mailbox.delivered_count mailbox)

let test_home_must_be_server () =
  let engine = Engine.create ~seed:93L () in
  let topology = Topology.make ~n_servers:2 ~n_clients:1 () in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Mailbox.create engine topology ~home:7 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "mailbox"
    [
      ( "unit",
        [
          Alcotest.test_case "local append" `Quick test_append_is_local;
          Alcotest.test_case "edges feed home" `Quick test_all_edges_feed_the_home;
          Alcotest.test_case "consume batches" `Quick test_consume_in_batches;
          Alcotest.test_case "exactly once" `Quick test_exactly_once_under_loss_and_duplication;
          Alcotest.test_case "durable outbox" `Quick test_edge_crash_preserves_acked_appends;
          Alcotest.test_case "home validation" `Quick test_home_must_be_server;
        ] );
    ]
