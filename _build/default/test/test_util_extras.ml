(* Histogram rendering and CSV export. *)

module Histogram = Dq_util.Histogram
module Csv = Dq_harness.Csv

let test_histogram_bucketing () =
  let h = Histogram.of_samples ~buckets:[ 10.; 100. ] [ 1.; 5.; 10.; 50.; 500. ] in
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check (list (pair string int)))
    "buckets"
    [ ("< 10", 2); ("10 - 100", 2); (">= 100", 1) ]
    (Histogram.bucket_counts h)

let test_histogram_boundaries () =
  (* A sample equal to a bound falls into the next bucket. *)
  let h = Histogram.of_samples ~buckets:[ 10. ] [ 10. ] in
  Alcotest.(check (list (pair string int))) "boundary" [ ("< 10", 0); (">= 10", 1) ]
    (Histogram.bucket_counts h)

let test_histogram_render () =
  let h = Histogram.of_samples ~buckets:[ 10. ] [ 1.; 2.; 3.; 20. ] in
  let out = Histogram.render ~width:9 h in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "two lines" 2 (List.length lines);
  Alcotest.(check bool) "bars present" true (String.contains out '#')

let test_histogram_empty () =
  let h = Histogram.create ~buckets:[ 1. ] in
  Alcotest.(check string) "placeholder" "(no samples)\n" (Histogram.render h)

let test_histogram_bad_buckets () =
  Alcotest.(check bool) "unsorted rejected" true
    (try
       ignore (Histogram.create ~buckets:[ 10.; 1. ]);
       false
     with Invalid_argument _ -> true)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape "a\nb")

let test_csv_to_string () =
  let out = Csv.to_string ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4,5" ] ] in
  Alcotest.(check string) "rendered" "x,y\n1,2\n3,\"4,5\"\n" out

let test_csv_write_series () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "dq_csv_test" in
  let path =
    Csv.write_series ~dir ~name:"series" ~x_label:"w"
      ~x_of:(Printf.sprintf "%.2f")
      [ (0.1, [ ("a", 1.5); ("b", 2.5) ]); (0.2, [ ("a", 3.5); ("b", 4.5) ]) ]
  in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  match List.rev !lines with
  | [ header; row1; row2 ] ->
    Alcotest.(check string) "header" "w,a,b" header;
    Alcotest.(check bool) "row1" true (String.length row1 > 0 && row1.[0] = '0');
    Alcotest.(check bool) "row2 has x=0.20" true (String.sub row2 0 4 = "0.20")
  | _ -> Alcotest.fail "three lines expected"

let () =
  Alcotest.run "util_extras"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "boundaries" `Quick test_histogram_boundaries;
          Alcotest.test_case "render" `Quick test_histogram_render;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "bad buckets" `Quick test_histogram_bad_buckets;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "to_string" `Quick test_csv_to_string;
          Alcotest.test_case "write series" `Quick test_csv_write_series;
        ] );
    ]
