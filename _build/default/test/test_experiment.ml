(* Shape assertions for the paper's figures: who wins, by roughly what
   factor, and where the crossovers fall. Small operation counts keep
   the suite fast; the bench harness runs the full versions. *)

module E = Dq_harness.Experiment

let find rows name =
  match List.find_opt (fun r -> r.E.protocol = name) rows with
  | Some r -> r
  | None -> Alcotest.failf "protocol %s missing" name

let test_fig6a_shapes () =
  let rows = E.fig6a ~ops:60 () in
  Alcotest.(check int) "five protocols" 5 (List.length rows);
  let dqvl = find rows "dqvl" in
  let majority = find rows "majority" in
  let pb = find rows "primary-backup" in
  let rowa = find rows "rowa" in
  let rowa_async = find rows "rowa-async" in
  (* Headline claim: >= 6x read response time improvement over
     primary/backup and majority. *)
  Alcotest.(check bool)
    (Printf.sprintf "dqvl reads (%.1f) 6x better than majority (%.1f)" dqvl.E.read_ms
       majority.E.read_ms)
    true
    (majority.E.read_ms >= 6. *. dqvl.E.read_ms);
  Alcotest.(check bool) "6x better than primary-backup" true
    (pb.E.read_ms >= 5. *. dqvl.E.read_ms);
  (* Competitive with the ROWA family on reads (within 2.5x of local). *)
  Alcotest.(check bool) "reads near rowa-async" true
    (dqvl.E.read_ms <= 2.5 *. rowa_async.E.read_ms);
  Alcotest.(check bool) "rowa reads local too" true (rowa.E.read_ms < 20.);
  (* Everyone completes everything; quorum protocols stay regular. *)
  List.iter
    (fun r ->
      Alcotest.(check int) (r.E.protocol ^ " failures") 0 r.E.failed;
      if r.E.protocol <> "rowa-async" then
        Alcotest.(check int) (r.E.protocol ^ " violations") 0 r.E.violations)
    rows

let test_fig6b_write_dominated_end () =
  let sweep = E.fig6b ~ops:40 ~write_ratios:[ 1.0 ] () in
  match sweep with
  | [ (_, rows) ] ->
    let dqvl = find rows "dqvl" in
    let majority = find rows "majority" in
    let pb = find rows "primary-backup" in
    let rowa = find rows "rowa" in
    (* "DQVL's response time approximates that of the majority quorum
       protocol and becomes higher than those of primary/backup and
       ROWA" (write bursts are suppressed, so two IQS round trips). *)
    Alcotest.(check bool) "dqvl ~ majority" true
      (dqvl.E.overall_ms < 1.3 *. majority.E.overall_ms
      && dqvl.E.overall_ms > 0.7 *. majority.E.overall_ms);
    Alcotest.(check bool) "dqvl > pb" true (dqvl.E.overall_ms > pb.E.overall_ms);
    Alcotest.(check bool) "dqvl > rowa" true (dqvl.E.overall_ms > rowa.E.overall_ms)
  | _ -> Alcotest.fail "one sweep point expected"

let test_fig7a_locality_90 () =
  let rows = E.fig7a ~ops:60 () in
  let dqvl = find rows "dqvl" in
  let majority = find rows "majority" in
  let pb = find rows "primary-backup" in
  (* DQVL still outperforms both strong-consistency baselines at 90%
     locality. *)
  Alcotest.(check bool) "beats majority" true (dqvl.E.overall_ms < majority.E.overall_ms);
  Alcotest.(check bool) "beats primary-backup" true (dqvl.E.overall_ms < pb.E.overall_ms)

let test_fig7b_crossover () =
  let sweep = E.fig7b ~ops:60 ~localities:[ 0.0; 0.9 ] () in
  let at locality =
    match List.assoc_opt locality sweep with
    | Some rows -> rows
    | None -> Alcotest.fail "missing locality point"
  in
  let dqvl_low = find (at 0.0) "dqvl" in
  let dqvl_high = find (at 0.9) "dqvl" in
  let majority_low = find (at 0.0) "majority" in
  let majority_high = find (at 0.9) "majority" in
  (* DQVL improves with locality much more than the majority quorum
     (whose only locality-sensitive part is the client-to-front-end
     hop); at low locality DQVL loses its advantage, at high locality
     it is clearly better (the paper's ~70% crossover). *)
  Alcotest.(check bool) "dqvl improves with locality" true
    (dqvl_high.E.overall_ms < 0.7 *. dqvl_low.E.overall_ms);
  Alcotest.(check bool) "majority much less sensitive" true
    (majority_low.E.overall_ms -. majority_high.E.overall_ms
    < 0.7 *. (dqvl_low.E.overall_ms -. dqvl_high.E.overall_ms));
  Alcotest.(check bool) "dqvl wins at high locality" true
    (dqvl_high.E.overall_ms < majority_high.E.overall_ms);
  Alcotest.(check bool) "no dqvl win at zero locality" true
    (dqvl_low.E.overall_ms > 0.85 *. majority_low.E.overall_ms)

let test_fig8a_orderings () =
  let sweep = E.fig8a () in
  List.iter
    (fun (w, series) ->
      let u name =
        match List.assoc_opt name series with
        | Some v -> v
        | None -> Alcotest.failf "missing %s" name
      in
      Alcotest.(check bool)
        (Printf.sprintf "dqvl tracks majority at w=%.2f" w)
        true
        (u "dqvl" <= 10. *. u "majority" && u "dqvl" >= u "majority" /. 10.);
      Alcotest.(check bool)
        (Printf.sprintf "stale rowa-async best at w=%.2f" w)
        true
        (u "rowa-async" <= u "dqvl" && u "rowa-async" <= u "primary-backup");
      Alcotest.(check bool)
        (Printf.sprintf "no-stale much worse at w=%.2f" w)
        true
        (u "rowa-async-nostale" > 100. *. u "majority"))
    sweep

let test_fig8b_replica_scaling () =
  let sweep = E.fig8b ~ns:[ 5; 15 ] () in
  let at n = List.assoc n sweep in
  let u n name = List.assoc name (at n) in
  Alcotest.(check bool) "dqvl improves with replicas" true (u 15 "dqvl" < u 5 "dqvl" /. 100.);
  Alcotest.(check bool) "pb flat" true (u 15 "primary-backup" = u 5 "primary-backup");
  Alcotest.(check bool) "nostale flat" true
    (u 15 "rowa-async-nostale" = u 5 "rowa-async-nostale")

let test_fig9a_model_peak () =
  let sweep = E.fig9a () in
  let dqvl_at w = List.assoc "dqvl" (List.assoc w sweep) in
  Alcotest.(check bool) "peak at 0.5" true
    (dqvl_at 0.5 > dqvl_at 0.05 && dqvl_at 0.5 > dqvl_at 0.9);
  let mj_at w = List.assoc "majority" (List.assoc w sweep) in
  Alcotest.(check bool) "worst case above majority" true (dqvl_at 0.5 > 2. *. mj_at 0.5)

let test_fig9a_measured_matches_model () =
  let measured = E.fig9a_measured ~ops:150 ~write_ratios:[ 0.05; 0.5 ] () in
  let model w =
    let sizes = Dq_analysis.Overhead_model.dqvl_sizes ~n_iqs:9 ~n_oqs:9 in
    Dq_analysis.Overhead_model.dqvl sizes ~w
  in
  List.iter
    (fun (w, m) ->
      Alcotest.(check bool)
        (Printf.sprintf "w=%.2f measured %.1f vs model %.1f" w m (model w))
        true
        (m > 0.4 *. model w && m < 1.6 *. model w))
    measured;
  (* The measured curve also peaks toward the middle. *)
  match measured with
  | [ (_, low); (_, mid) ] -> Alcotest.(check bool) "interleaving costs more" true (mid > low)
  | _ -> Alcotest.fail "two points expected"

let test_ablation_leases () =
  let rows = E.ablation_leases ~ops:40 () in
  let dqvl = find rows "dqvl" in
  let basic = find rows "dq-basic" in
  (* Without failures both protocols behave similarly on the target
     workload. *)
  Alcotest.(check int) "dqvl failures" 0 dqvl.E.failed;
  Alcotest.(check int) "basic failures" 0 basic.E.failed;
  Alcotest.(check bool) "similar reads" true (dqvl.E.read_ms < 2. *. basic.E.read_ms +. 20.)

let test_ablation_orq () =
  let rows = E.ablation_orq ~ops:40 ~read_quorums:[ 1; 2 ] () in
  match rows with
  | [ (1, r1); (2, r2) ] ->
    (* A read quorum of one is served locally; two forces a WAN hop. *)
    Alcotest.(check bool)
      (Printf.sprintf "orq=1 local (%.1f)" r1.E.read_ms)
      true (r1.E.read_ms < 60.);
    Alcotest.(check bool)
      (Printf.sprintf "orq=2 remote (%.1f)" r2.E.read_ms)
      true (r2.E.read_ms > 2. *. r1.E.read_ms)
  | _ -> Alcotest.fail "two rows expected"

let test_ablation_grid () =
  let rows = E.ablation_grid ~ns:[ 9 ] () in
  match rows with
  | [ (9, series) ] ->
    let grid = List.assoc "grid" series in
    let majority = List.assoc "majority" series in
    Alcotest.(check bool) "both highly available" true (grid < 1e-2 && majority < 1e-2)
  | _ -> Alcotest.fail "one row expected"

let () =
  Alcotest.run "experiment"
    [
      ( "response time",
        [
          Alcotest.test_case "fig6a shapes" `Slow test_fig6a_shapes;
          Alcotest.test_case "fig6b write end" `Slow test_fig6b_write_dominated_end;
          Alcotest.test_case "fig7a" `Slow test_fig7a_locality_90;
          Alcotest.test_case "fig7b crossover" `Slow test_fig7b_crossover;
        ] );
      ( "availability",
        [
          Alcotest.test_case "fig8a orderings" `Quick test_fig8a_orderings;
          Alcotest.test_case "fig8b scaling" `Quick test_fig8b_replica_scaling;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "fig9a model" `Quick test_fig9a_model_peak;
          Alcotest.test_case "fig9a measured" `Slow test_fig9a_measured_matches_model;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "leases" `Slow test_ablation_leases;
          Alcotest.test_case "orq size" `Slow test_ablation_orq;
          Alcotest.test_case "grid" `Quick test_ablation_grid;
        ] );
    ]
