(* QRPC over a real simulated network: a coordinator node sends echo
   requests to a quorum system of responder nodes and gathers replies. *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Qs = Dq_quorum.Quorum_system
module Qrpc = Dq_rpc.Qrpc

type msg = Req | Rep

let classify = function Req -> "req" | Rep -> "rep"

(* Node 0 is the coordinator; nodes 1..n are responders. *)
let setup ?faults ~n () =
  let engine = Engine.create ~seed:2L () in
  let topo = Topology.make ~n_servers:(n + 1) ~n_clients:0 () in
  let net = Net.create engine topo ?faults ~classify () in
  Net.register net ~node:0 (fun ~src:_ _ -> ());
  for node = 1 to n do
    Net.register net ~node (fun ~src msg ->
        match msg with Req -> Net.send net ~src:node ~dst:src Rep | Rep -> ())
  done;
  (engine, net)

let start_call ?(mode = Qrpc.Read) ?prefer ~engine ~net ~system ~on_quorum () =
  let call = ref None in
  let c =
    Qrpc.call
      ~timer:(fun ~delay_ms action -> Net.timer net ~node:0 ~delay_ms action)
      ~rng:(Engine.split_rng engine) ~system ~mode
      ~send:(fun dst -> Net.send net ~src:0 ~dst Req)
      ~on_quorum ?prefer ~timeout_ms:500. ()
  in
  call := Some c;
  (* Route replies to the call. *)
  Net.register net ~node:0 (fun ~src msg ->
      match msg, !call with Rep, Some c -> Qrpc.deliver c ~src Rep | _ -> ());
  c

let test_gathers_read_quorum () =
  let engine, net = setup ~n:5 () in
  let system = Qs.majority [ 1; 2; 3; 4; 5 ] in
  let result = ref None in
  let _c =
    start_call ~engine ~net ~system
      ~on_quorum:(fun replies -> result := Some (List.length replies))
      ()
  in
  Engine.run engine;
  Alcotest.(check (option int)) "majority of 5" (Some 3) !result

let test_write_quorum_rowa () =
  let engine, net = setup ~n:4 () in
  let system = Qs.rowa [ 1; 2; 3; 4 ] in
  let result = ref None in
  let _c =
    start_call ~mode:Qrpc.Write ~engine ~net ~system
      ~on_quorum:(fun replies -> result := Some (List.length replies))
      ()
  in
  Engine.run engine;
  Alcotest.(check (option int)) "all four" (Some 4) !result

let test_succeeds_under_loss () =
  let engine, net =
    setup ~faults:{ Net.loss = 0.4; duplicate = 0.; jitter_ms = 0. } ~n:5 ()
  in
  let system = Qs.majority [ 1; 2; 3; 4; 5 ] in
  let done_at = ref None in
  let _c =
    start_call ~engine ~net ~system
      ~on_quorum:(fun _ -> done_at := Some (Engine.now engine))
      ()
  in
  Engine.run ~until:60_000. engine;
  Alcotest.(check bool) "eventually completed" true (!done_at <> None)

let test_succeeds_with_f_crashes () =
  let engine, net = setup ~n:5 () in
  Net.crash net 1;
  Net.crash net 2;
  let system = Qs.majority [ 1; 2; 3; 4; 5 ] in
  let result = ref None in
  let _c =
    start_call ~engine ~net ~system
      ~on_quorum:(fun replies -> result := Some (List.map fst replies |> List.sort compare))
      ()
  in
  Engine.run ~until:60_000. engine;
  Alcotest.(check (option (list int))) "survivors form the quorum" (Some [ 3; 4; 5 ]) !result

let test_blocks_without_quorum () =
  let engine, net = setup ~n:3 () in
  Net.crash net 1;
  Net.crash net 2;
  let system = Qs.majority [ 1; 2; 3 ] in
  let completed = ref false in
  let _c =
    start_call ~engine ~net ~system ~on_quorum:(fun _ -> completed := true) ()
  in
  Engine.run ~until:10_000. engine;
  Alcotest.(check bool) "still waiting" false !completed;
  (* Recovery unblocks it (the next retransmission rounds reach the
     recovered node). *)
  Net.recover net 1;
  Engine.run ~until:600_000. engine;
  Alcotest.(check bool) "completed after recovery" true !completed

let test_duplicate_replies_counted_once () =
  let engine, net =
    setup ~faults:{ Net.loss = 0.; duplicate = 1.0; jitter_ms = 0. } ~n:3 ()
  in
  let system = Qs.majority [ 1; 2; 3 ] in
  let result = ref None in
  let _c =
    start_call ~engine ~net ~system
      ~on_quorum:(fun replies -> result := Some (List.length replies))
      ()
  in
  Engine.run engine;
  match !result with
  | Some n -> Alcotest.(check bool) "2 or 3 distinct responders" true (n = 2 || n = 3)
  | None -> Alcotest.fail "did not complete"

let test_replies_from_strangers_ignored () =
  let engine, net = setup ~n:4 () in
  let system = Qs.majority [ 1; 2; 3 ] in
  let c =
    start_call ~engine ~net ~system ~on_quorum:(fun _ -> ()) ()
  in
  (* Node 4 is not a member; a forged reply from it must not count. *)
  Qrpc.deliver c ~src:4 Rep;
  Alcotest.(check int) "no replies recorded" 0 (List.length (Qrpc.replies c));
  Engine.run engine

let test_give_up () =
  let engine, net = setup ~n:3 () in
  Net.crash net 1;
  Net.crash net 2;
  Net.crash net 3;
  let system = Qs.majority [ 1; 2; 3 ] in
  let gave_up = ref false in
  let call = ref None in
  let c =
    Qrpc.call
      ~timer:(fun ~delay_ms action -> Net.timer net ~node:0 ~delay_ms action)
      ~rng:(Engine.split_rng engine) ~system ~mode:Qrpc.Read
      ~send:(fun dst -> Net.send net ~src:0 ~dst Req)
      ~on_quorum:(fun _ -> Alcotest.fail "must not complete")
      ~timeout_ms:100. ~max_rounds:3
      ~on_give_up:(fun () -> gave_up := true)
      ()
  in
  call := Some c;
  Engine.run engine;
  Alcotest.(check bool) "gave up" true !gave_up

let test_prefer_included () =
  (* With prefer = a member node, every attempt contacts it. Use a
     system where node 0 (the coordinator itself) is a member. *)
  let engine = Engine.create ~seed:3L () in
  let topo = Topology.make ~n_servers:4 ~n_clients:0 () in
  let net = Net.create engine topo ~classify () in
  let self_requests = ref 0 in
  let current = ref None in
  Net.register net ~node:0 (fun ~src msg ->
      match msg with
      | Req ->
        incr self_requests;
        Net.send net ~src:0 ~dst:src Rep
      | Rep -> ( match !current with Some c -> Qrpc.deliver c ~src Rep | None -> ()));
  for node = 1 to 3 do
    Net.register net ~node (fun ~src msg ->
        match msg with Req -> Net.send net ~src:node ~dst:src Rep | Rep -> ())
  done;
  let system = Qs.majority [ 0; 1; 2; 3 ] in
  let completed = ref 0 in
  let rec launch i =
    if i < 20 then begin
      let c =
        Qrpc.call
          ~timer:(fun ~delay_ms action -> Net.timer net ~node:0 ~delay_ms action)
          ~rng:(Engine.split_rng engine) ~system ~mode:Qrpc.Read
          ~send:(fun dst -> Net.send net ~src:0 ~dst Req)
          ~on_quorum:(fun _ ->
            incr completed;
            launch (i + 1))
          ~prefer:0 ~timeout_ms:10_000. ()
      in
      current := Some c
    end
  in
  launch 0;
  Engine.run engine;
  Alcotest.(check int) "all calls completed" 20 !completed;
  Alcotest.(check int) "self contacted every time" 20 !self_requests

let test_escalates_to_all_members_on_retry () =
  (* Round 0 contacts a minimal quorum; the first retransmission must
     contact every member that has not replied ("send to all nodes"). *)
  let engine = Engine.create ~seed:9L () in
  let topo = Topology.make ~n_servers:8 ~n_clients:0 () in
  let net = Net.create engine topo ~classify () in
  let contacted = Hashtbl.create 8 in
  Net.register net ~node:0 (fun ~src:_ _ -> ());
  for node = 1 to 7 do
    (* Nobody replies: force retransmissions. *)
    Net.register net ~node (fun ~src:_ msg ->
        match msg with Req -> Hashtbl.replace contacted node () | Rep -> ())
  done;
  let system = Qs.majority [ 1; 2; 3; 4; 5; 6; 7 ] in
  let c =
    Qrpc.call
      ~timer:(fun ~delay_ms action -> Net.timer net ~node:0 ~delay_ms action)
      ~rng:(Engine.split_rng engine) ~system ~mode:Qrpc.Read
      ~send:(fun dst -> Net.send net ~src:0 ~dst Req)
      ~on_quorum:(fun _ -> ())
      ~timeout_ms:100. ~max_rounds:2 ()
  in
  ignore c;
  Engine.run engine;
  Alcotest.(check int) "all members contacted after one retry" 7 (Hashtbl.length contacted)

let () =
  Alcotest.run "qrpc"
    [
      ( "unit",
        [
          Alcotest.test_case "gathers read quorum" `Quick test_gathers_read_quorum;
          Alcotest.test_case "rowa write quorum" `Quick test_write_quorum_rowa;
          Alcotest.test_case "survives loss" `Quick test_succeeds_under_loss;
          Alcotest.test_case "survives crashes" `Quick test_succeeds_with_f_crashes;
          Alcotest.test_case "blocks without quorum" `Quick test_blocks_without_quorum;
          Alcotest.test_case "duplicates once" `Quick test_duplicate_replies_counted_once;
          Alcotest.test_case "strangers ignored" `Quick test_replies_from_strangers_ignored;
          Alcotest.test_case "give up" `Quick test_give_up;
          Alcotest.test_case "prefer" `Quick test_prefer_included;
          Alcotest.test_case "escalation" `Quick test_escalates_to_all_members_on_retry;
        ] );
    ]
