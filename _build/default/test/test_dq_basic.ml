(* The basic dual-quorum protocol (Section 3.1): object callbacks only,
   no volume leases. Its defining weakness - writes block while an OQS
   node holding a callback is unreachable - is asserted here and
   contrasted with DQVL in test_dqvl.ml. *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Cluster = Dq_core.Cluster
module Config = Dq_core.Config
module R = Dq_intf.Replication
open Dq_storage

let key = Key.make ~volume:0 ~index:0

let setup () =
  let engine = Engine.create ~seed:21L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:2 () in
  let servers = Topology.servers topology in
  let cluster = Cluster.create engine topology (Config.basic ~servers ()) in
  (engine, topology, cluster, Cluster.api cluster)

let test_write_then_read () =
  let engine, _, _, api = setup () in
  let read_value = ref None in
  api.R.submit_write ~client:5 ~server:0 key "hello" (fun _ ->
      api.R.submit_read ~client:5 ~server:1 key (fun r ->
          read_value := Some r.R.read_value));
  Engine.run engine;
  Alcotest.(check (option string)) "reads the write" (Some "hello") !read_value

let test_read_before_any_write () =
  let engine, _, _, api = setup () in
  let result = ref None in
  api.R.submit_read ~client:5 ~server:2 key (fun r ->
      result := Some (r.R.read_value, Lc.equal r.R.read_lc Lc.zero));
  Engine.run engine;
  Alcotest.(check (option (pair string bool))) "initial value" (Some ("", true)) !result

let test_second_read_is_hit () =
  let engine, _, cluster, api = setup () in
  let t2 = ref (0., 0.) in
  api.R.submit_read ~client:5 ~server:0 key (fun _ ->
      let start2 = Engine.now engine in
      api.R.submit_read ~client:5 ~server:0 key (fun _ ->
          t2 := (start2, Engine.now engine)));
  Engine.run engine;
  let start2, end2 = !t2 in
  (* A read hit involves only client <-> front end (LAN) plus local OQS
     access: ~16 ms, far below the ~176 ms renewal cost. *)
  Alcotest.(check bool) "hit is local" true (end2 -. start2 < 20.);
  match Cluster.oqs_server cluster 0 with
  | Some oqs -> Alcotest.(check bool) "valid at OQS" true (Dq_core.Oqs_server.is_locally_valid oqs key)
  | None -> Alcotest.fail "server 0 must host an OQS role"

let test_write_invalidates_cached_copy () =
  let engine, _, cluster, api = setup () in
  let sequence = ref [] in
  api.R.submit_read ~client:5 ~server:0 key (fun r ->
      sequence := ("read1", r.R.read_value) :: !sequence;
      api.R.submit_write ~client:6 ~server:1 key "v2" (fun _ ->
          sequence := ("write", "v2") :: !sequence;
          (* After the write completed, server 0's cached copy must be
             invalid (basic protocol: it was invalidated directly). *)
          (match Cluster.oqs_server cluster 0 with
          | Some oqs ->
            if Dq_core.Oqs_server.is_locally_valid oqs key then
              sequence := ("still-valid!", "") :: !sequence
          | None -> ());
          api.R.submit_read ~client:5 ~server:0 key (fun r ->
              sequence := ("read2", r.R.read_value) :: !sequence)));
  Engine.run engine;
  Alcotest.(check (list (pair string string)))
    "invalidation then fresh read"
    [ ("read1", ""); ("write", "v2"); ("read2", "v2") ]
    (List.rev !sequence)

let test_write_blocks_while_callback_holder_down () =
  let engine, _, _, api = setup () in
  let write_done = ref false in
  (* Server 4 acquires a callback via a read, then crashes. *)
  api.R.submit_read ~client:5 ~server:4 key (fun _ ->
      api.R.crash_server 4;
      api.R.submit_write ~client:6 ~server:1 key "v2" (fun _ -> write_done := true));
  Engine.run ~until:120_000. engine;
  Alcotest.(check bool) "write blocked without volume leases" false !write_done;
  (* Recovery lets the invalidation be acknowledged. *)
  api.R.recover_server 4;
  Engine.run ~until:360_000. engine;
  Alcotest.(check bool) "write completes after recovery" true !write_done

let test_write_suppress_no_invalidations () =
  let engine, _, cluster, api = setup () in
  let inval_count () =
    match List.assoc_opt "inval" (Dq_net.Msg_stats.by_label (Net.stats (Cluster.net cluster))) with
    | Some n -> n
    | None -> 0
  in
  (* Early writes may be write-throughs: each write lands on a random
     IQS write quorum, and a member that has not yet collected
     invalidation acknowledgments conservatively invalidates. Once every
     IQS node has participated once, a write burst is fully suppressed:
     the final write adds no invalidation traffic. *)
  let counts = ref [] in
  let rec burst i =
    if i < 8 then
      api.R.submit_write ~client:5 ~server:0 key (Printf.sprintf "v%d" i) (fun _ ->
          counts := inval_count () :: !counts;
          burst (i + 1))
  in
  burst 0;
  Engine.run engine;
  match !counts with
  | last :: prev :: _ ->
    Alcotest.(check int) "suppressed write sends no invalidations" prev last
  | _ -> Alcotest.fail "writes must complete"

let test_concurrent_writers_ordered () =
  let engine, _, _, api = setup () in
  let lcs = ref [] in
  api.R.submit_write ~client:5 ~server:0 key "a" (fun w -> lcs := w.R.write_lc :: !lcs);
  api.R.submit_write ~client:6 ~server:1 key "b" (fun w -> lcs := w.R.write_lc :: !lcs);
  Engine.run engine;
  (match !lcs with
  | [ x; y ] -> Alcotest.(check bool) "distinct timestamps" false (Lc.equal x y)
  | _ -> Alcotest.fail "both writes must complete");
  (* A subsequent read returns the value of the larger timestamp. *)
  let winner = ref None in
  api.R.submit_read ~client:5 ~server:2 key (fun r -> winner := Some (r.R.read_value, r.R.read_lc)) ;
  Engine.run engine;
  match !winner, !lcs with
  | Some (_, rlc), [ x; y ] ->
    Alcotest.(check bool) "read returns max-lc write" true (Lc.equal rlc (Lc.max x y))
  | _ -> Alcotest.fail "read must complete"

let () =
  Alcotest.run "dq_basic"
    [
      ( "unit",
        [
          Alcotest.test_case "write then read" `Quick test_write_then_read;
          Alcotest.test_case "initial read" `Quick test_read_before_any_write;
          Alcotest.test_case "read hit" `Quick test_second_read_is_hit;
          Alcotest.test_case "write invalidates" `Quick test_write_invalidates_cached_copy;
          Alcotest.test_case "write blocks on crashed callback holder" `Quick
            test_write_blocks_while_callback_holder_down;
          Alcotest.test_case "write suppress" `Quick test_write_suppress_no_invalidations;
          Alcotest.test_case "concurrent writers" `Quick test_concurrent_writers_ordered;
        ] );
    ]
