(* Schedule exploration: systematic and randomized message-ordering
   search over the real DQVL implementation, with regular-semantics
   checking on every explored schedule. *)

module Ex = Dq_harness.Explore
module Net = Dq_net.Net
module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology

(* --- manual-delivery network mode ---------------------------------------- *)

type msg = Tag of int

let classify (Tag _) = "tag"

let manual_net () =
  let engine = Engine.create ~seed:1L () in
  let topo = Topology.make ~n_servers:3 ~n_clients:0 () in
  let net = Net.create engine topo ~classify () in
  Net.set_manual net true;
  (engine, net)

let test_manual_parks_messages () =
  let engine, net = manual_net () in
  let received = ref [] in
  Net.register net ~node:1 (fun ~src:_ (Tag i) -> received := i :: !received);
  Net.send net ~src:0 ~dst:1 (Tag 1);
  Net.send net ~src:0 ~dst:1 (Tag 2);
  Engine.run engine;
  Alcotest.(check (list int)) "nothing delivered" [] !received;
  Alcotest.(check int) "two pending" 2 (List.length (Net.pending net))

let test_manual_delivery_order_is_chosen () =
  let _, net = manual_net () in
  let received = ref [] in
  Net.register net ~node:1 (fun ~src:_ (Tag i) -> received := i :: !received);
  Net.send net ~src:0 ~dst:1 (Tag 1);
  Net.send net ~src:0 ~dst:1 (Tag 2);
  (* Deliver the newest first: the controller owns the order. *)
  Net.deliver_pending net 1;
  Net.deliver_pending net 0;
  Alcotest.(check (list int)) "chosen order" [ 2; 1 ] (List.rev !received)

let test_manual_drop () =
  let _, net = manual_net () in
  let received = ref [] in
  Net.register net ~node:1 (fun ~src:_ (Tag i) -> received := i :: !received);
  Net.send net ~src:0 ~dst:1 (Tag 1);
  Net.drop_pending net 0;
  Alcotest.(check int) "pool empty" 0 (List.length (Net.pending net));
  Alcotest.(check (list int)) "nothing delivered" [] !received

let test_manual_out_of_range () =
  let _, net = manual_net () in
  Alcotest.(check bool) "raises" true
    (try
       Net.deliver_pending net 0;
       false
     with Invalid_argument _ -> true)

(* --- exploration ----------------------------------------------------------- *)

let test_dfs_explores_cleanly () =
  let o = Ex.explore ~budget:400 Ex.default_scenario in
  Alcotest.(check int) "budget respected" 400 o.Ex.runs;
  Alcotest.(check int) "all runs complete" o.Ex.runs o.Ex.complete_runs;
  Alcotest.(check int) "no violations" 0 (List.length o.Ex.violations);
  Alcotest.(check bool)
    (Printf.sprintf "multiple distinct outcomes (%d)" o.Ex.distinct_outcomes)
    true (o.Ex.distinct_outcomes >= 2)

let test_random_explores_cleanly () =
  let o = Ex.explore_random ~runs:120 ~seed:77L Ex.default_scenario in
  Alcotest.(check int) "all runs complete" o.Ex.runs o.Ex.complete_runs;
  Alcotest.(check int) "no violations" 0 (List.length o.Ex.violations);
  Alcotest.(check bool) "distinct outcomes" true (o.Ex.distinct_outcomes >= 2)

let test_basic_protocol_explored () =
  let config servers =
    { (Dq_core.Config.basic ~servers ()) with Dq_core.Config.retry_timeout_ms = 400. }
  in
  let o = Ex.explore ~config ~budget:200 Ex.default_scenario in
  Alcotest.(check int) "no violations" 0 (List.length o.Ex.violations);
  Alcotest.(check int) "all complete" o.Ex.runs o.Ex.complete_runs

let test_run_choices_replays () =
  let config = Dq_core.Config.dqvl ~volume_lease_ms:5_000. ~proactive_renew:false in
  let config servers = config ~servers () in
  let a = Ex.run_choices ~config Ex.default_scenario [ 1; 0; 2 ] in
  let b = Ex.run_choices ~config Ex.default_scenario [ 1; 0; 2 ] in
  let values ops =
    List.map (fun (op : Dq_harness.History.op) -> (op.Dq_harness.History.id, op.value)) ops
  in
  Alcotest.(check (list (pair int string))) "replay identical" (values a) (values b)

let test_crash_choices () =
  (* Crash alternatives inject a fail-stop into the explored schedules;
     with one crash of an IQS-minority member and eventual recovery,
     regular semantics must hold and every run must still finish. *)
  let scenario =
    { Ex.default_scenario with Ex.max_crashes = 1; max_decisions = 2_000 }
  in
  let o = Ex.explore_random ~runs:80 ~seed:101L scenario in
  Alcotest.(check int) "no violations" 0 (List.length o.Ex.violations);
  Alcotest.(check int) "all complete" o.Ex.runs o.Ex.complete_runs;
  let dfs = Ex.explore ~budget:150 scenario in
  Alcotest.(check int) "dfs no violations" 0 (List.length dfs.Ex.violations)

let test_heavier_scenario () =
  (* Three concurrent writers and three readers on one object. *)
  let scenario =
    {
      Ex.default_scenario with
      Ex.n_clients = 3;
      ops =
        [
          { Ex.client = 3; server = 0; kind = `Write "a" };
          { Ex.client = 4; server = 1; kind = `Write "b" };
          { Ex.client = 5; server = 2; kind = `Write "c" };
          { Ex.client = 3; server = 0; kind = `Read };
          { Ex.client = 4; server = 1; kind = `Read };
          { Ex.client = 5; server = 2; kind = `Read };
        ];
      max_decisions = 600;
    }
  in
  let o = Ex.explore_random ~runs:60 ~seed:99L scenario in
  Alcotest.(check int) "no violations" 0 (List.length o.Ex.violations);
  Alcotest.(check int) "all complete" o.Ex.runs o.Ex.complete_runs

(* Random scenario shapes: any mix of concurrent reads and writes from
   any clients through any front ends stays regular under random
   schedules. *)
let prop_random_scenarios_regular =
  let gen =
    QCheck.Gen.(
      let* n_ops = int_range 2 5 in
      let* seed = map Int64.of_int (int_range 1 100_000) in
      let* ops =
        list_repeat n_ops
          (let* client = int_range 3 4 in
           let* server = int_range 0 2 in
           let* write = bool in
           return
             {
               Ex.client;
               server;
               kind = (if write then `Write (Printf.sprintf "v%d" client) else `Read);
             })
      in
      return (seed, ops))
  in
  let print (seed, ops) =
    Printf.sprintf "seed=%Ld ops=[%s]" seed
      (String.concat "; "
         (List.map
            (fun (o : Ex.op_spec) ->
              Printf.sprintf "%d->%d:%s" o.Ex.client o.Ex.server
                (match o.Ex.kind with `Read -> "R" | `Write v -> "W" ^ v))
            ops))
  in
  QCheck.Test.make ~name:"random scenarios stay regular under random schedules" ~count:15
    (QCheck.make ~print gen)
    (fun (seed, ops) ->
      let scenario = { Ex.default_scenario with Ex.ops; max_decisions = 800 } in
      let o = Ex.explore_random ~runs:15 ~seed scenario in
      if o.Ex.violations <> [] then
        QCheck.Test.fail_reportf "violation on %s: %s" (print (seed, ops))
          (String.concat "; " (List.map (fun v -> v.Ex.detail) o.Ex.violations))
      else o.Ex.complete_runs = o.Ex.runs)

let () =
  Alcotest.run "explore"
    [
      ( "manual net",
        [
          Alcotest.test_case "parks messages" `Quick test_manual_parks_messages;
          Alcotest.test_case "chosen order" `Quick test_manual_delivery_order_is_chosen;
          Alcotest.test_case "drop" `Quick test_manual_drop;
          Alcotest.test_case "out of range" `Quick test_manual_out_of_range;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "dfs clean" `Slow test_dfs_explores_cleanly;
          Alcotest.test_case "random clean" `Slow test_random_explores_cleanly;
          Alcotest.test_case "basic protocol" `Slow test_basic_protocol_explored;
          Alcotest.test_case "replay" `Quick test_run_choices_replays;
          Alcotest.test_case "heavier scenario" `Slow test_heavier_scenario;
          Alcotest.test_case "crash choices" `Slow test_crash_choices;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_random_scenarios_regular ]);
    ]
