module C = Dq_util.Combin

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let test_choose_small () =
  check_float "5C0" 1. (C.choose 5 0);
  check_float "5C2" 10. (C.choose 5 2);
  check_float "5C5" 1. (C.choose 5 5);
  check_float "out of range" 0. (C.choose 5 6);
  check_float "negative" 0. (C.choose 5 (-1))

let test_choose_symmetry () =
  for n = 0 to 20 do
    for k = 0 to n do
      let a = C.choose n k and b = C.choose n (n - k) in
      Alcotest.(check bool)
        (Printf.sprintf "C(%d,%d) = C(%d,%d)" n k n (n - k))
        true
        (abs_float (a -. b) /. Float.max 1. a < 1e-12)
    done
  done

let test_pascal () =
  for n = 1 to 25 do
    for k = 1 to n - 1 do
      let lhs = C.choose n k in
      let rhs = C.choose (n - 1) (k - 1) +. C.choose (n - 1) k in
      Alcotest.(check bool)
        (Printf.sprintf "Pascal n=%d k=%d" n k)
        true
        (abs_float (lhs -. rhs) /. rhs < 1e-10)
    done
  done

let test_pmf_sums_to_one () =
  List.iter
    (fun (n, p) ->
      let total = ref 0. in
      for k = 0 to n do
        total := !total +. C.binomial_pmf ~n ~p k
      done;
      check_float ~eps:1e-9 (Printf.sprintf "sum n=%d p=%g" n p) 1. !total)
    [ (1, 0.5); (10, 0.01); (15, 0.3); (40, 0.99) ]

let test_pmf_extremes () =
  check_float "p=0, k=0" 1. (C.binomial_pmf ~n:10 ~p:0. 0);
  check_float "p=0, k=1" 0. (C.binomial_pmf ~n:10 ~p:0. 1);
  check_float "p=1, k=n" 1. (C.binomial_pmf ~n:10 ~p:1. 10)

let test_tails_complement () =
  let n = 15 and p = 0.2 in
  for k = 0 to n do
    let le = C.binomial_tail_le ~n ~p k in
    let ge = C.binomial_tail_ge ~n ~p (k + 1) in
    check_float ~eps:1e-9 (Printf.sprintf "complement at k=%d" k) 1. (le +. ge)
  done

let test_tail_tiny_values () =
  (* P(X <= 7) for X ~ Bin(15, 0.99): needs 8 failures at 0.01 each;
     must be a sane tiny positive number, not 0 or garbage. *)
  let u = C.binomial_tail_le ~n:15 ~p:0.99 7 in
  Alcotest.(check bool) "positive" true (u > 0.);
  Alcotest.(check bool) "tiny" true (u < 1e-10)

let prop_pmf_nonneg =
  QCheck.Test.make ~name:"pmf is in [0,1]" ~count:500
    QCheck.(triple (int_range 0 60) (float_range 0. 1.) (int_range (-5) 65))
    (fun (n, p, k) ->
      let x = C.binomial_pmf ~n ~p k in
      x >= 0. && x <= 1. +. 1e-12)

let prop_tail_monotone =
  QCheck.Test.make ~name:"tail_le is monotone in k" ~count:300
    QCheck.(pair (int_range 1 40) (float_range 0.01 0.99))
    (fun (n, p) ->
      let ok = ref true in
      for k = 0 to n - 1 do
        if C.binomial_tail_le ~n ~p k > C.binomial_tail_le ~n ~p (k + 1) +. 1e-12 then
          ok := false
      done;
      !ok)

let () =
  Alcotest.run "combin"
    [
      ( "unit",
        [
          Alcotest.test_case "choose small" `Quick test_choose_small;
          Alcotest.test_case "choose symmetry" `Quick test_choose_symmetry;
          Alcotest.test_case "pascal identity" `Quick test_pascal;
          Alcotest.test_case "pmf sums to one" `Quick test_pmf_sums_to_one;
          Alcotest.test_case "pmf extremes" `Quick test_pmf_extremes;
          Alcotest.test_case "tails complement" `Quick test_tails_complement;
          Alcotest.test_case "tiny tails" `Quick test_tail_tiny_values;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_pmf_nonneg; prop_tail_monotone ] );
    ]
