module Engine = Dq_sim.Engine
module Clock = Dq_sim.Clock

let test_perfect_tracks_virtual_time () =
  let e = Engine.create () in
  let c = Clock.perfect e in
  Alcotest.(check (float 0.)) "t=0" 0. (Clock.now c);
  ignore (Engine.schedule e ~delay:42. (fun () -> ()));
  Engine.run e;
  Alcotest.(check (float 0.)) "t=42" 42. (Clock.now c)

let test_skew_and_offset () =
  let e = Engine.create () in
  let c = Clock.make e ~skew:0.1 ~offset:5. in
  ignore (Engine.schedule e ~delay:100. (fun () -> ()));
  Engine.run e;
  Alcotest.(check (float 1e-9)) "offset + 1.1 * 100" 115. (Clock.now c)

let test_after () =
  let e = Engine.create () in
  let c = Clock.perfect e in
  Alcotest.(check bool) "not after future" false (Clock.after c 10.);
  ignore (Engine.schedule e ~delay:20. (fun () -> ()));
  Engine.run e;
  Alcotest.(check bool) "after past deadline" true (Clock.after c 10.)

let test_delay_until_inverts_now () =
  let e = Engine.create () in
  let c = Clock.make e ~skew:0.05 ~offset:3. in
  ignore (Engine.schedule e ~delay:7. (fun () -> ()));
  Engine.run e;
  (* If we wait delay_until(d) of virtual time, the local clock reads d. *)
  let local_deadline = 50. in
  let wait = Clock.delay_until c local_deadline in
  ignore (Engine.schedule e ~delay:wait (fun () -> ()));
  Engine.run e;
  Alcotest.(check (float 1e-6)) "clock reads deadline" local_deadline (Clock.now c)

let test_delay_until_past_is_zero () =
  let e = Engine.create () in
  let c = Clock.perfect e in
  ignore (Engine.schedule e ~delay:100. (fun () -> ()));
  Engine.run e;
  Alcotest.(check (float 0.)) "past deadline" 0. (Clock.delay_until c 10.)

let test_random_within_bounds () =
  let e = Engine.create () in
  let rng = Dq_util.Rng.create 5L in
  for _ = 1 to 100 do
    let c = Clock.random e ~rng ~max_drift:0.01 ~max_offset:2. in
    Alcotest.(check bool) "skew bounded" true (abs_float (Clock.skew c) <= 0.01);
    let now = Clock.now c in
    Alcotest.(check bool) "offset bounded" true (now >= 0. && now <= 2.)
  done

let test_drift_bound_preserved_over_time () =
  (* Two clocks with drift <= d measure any duration within a (1+-d)
     factor of each other (to first order) - the property lease expiry
     arithmetic relies on. *)
  let e = Engine.create () in
  let c1 = Clock.make e ~skew:0.001 ~offset:0. in
  let c2 = Clock.make e ~skew:(-0.001) ~offset:9. in
  let s1 = Clock.now c1 and s2 = Clock.now c2 in
  ignore (Engine.schedule e ~delay:10_000. (fun () -> ()));
  Engine.run e;
  let d1 = Clock.now c1 -. s1 and d2 = Clock.now c2 -. s2 in
  Alcotest.(check bool) "durations within drift bound" true
    (abs_float (d1 -. d2) <= 0.002 *. 10_000. +. 1e-9)

let () =
  Alcotest.run "clock"
    [
      ( "unit",
        [
          Alcotest.test_case "perfect" `Quick test_perfect_tracks_virtual_time;
          Alcotest.test_case "skew and offset" `Quick test_skew_and_offset;
          Alcotest.test_case "after" `Quick test_after;
          Alcotest.test_case "delay_until inverts now" `Quick test_delay_until_inverts_now;
          Alcotest.test_case "delay_until past" `Quick test_delay_until_past_is_zero;
          Alcotest.test_case "random bounds" `Quick test_random_within_bounds;
          Alcotest.test_case "drift bound" `Quick test_drift_bound_preserved_over_time;
        ] );
    ]
