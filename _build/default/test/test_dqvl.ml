(* DQVL protocol behaviour (Section 3.2): leases, delayed
   invalidations, epochs, bounded write-blocking under failures. *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Cluster = Dq_core.Cluster
module Config = Dq_core.Config
module Oqs = Dq_core.Oqs_server
module Iqs = Dq_core.Iqs_server
module R = Dq_intf.Replication
open Dq_storage

let key = Key.make ~volume:0 ~index:0

let lease = 2_000.

let setup ?(n_servers = 5) ?(proactive = false) ?config_map () =
  let engine = Engine.create ~seed:33L () in
  let topology = Topology.make ~n_servers ~n_clients:2 () in
  let servers = Topology.servers topology in
  let config =
    Config.dqvl ~servers ~volume_lease_ms:lease ~proactive_renew:proactive ()
  in
  let config = match config_map with Some f -> f config | None -> config in
  let cluster = Cluster.create engine topology config in
  (engine, topology, cluster, Cluster.api cluster)

let client_a = 5 (* closest to server 0 *)
let client_b = 6 (* closest to server 1 *)

let test_write_then_read () =
  let engine, _, _, api = setup () in
  let got = ref None in
  api.R.submit_write ~client:client_a ~server:0 key "x" (fun _ ->
      api.R.submit_read ~client:client_b ~server:1 key (fun r -> got := Some r.R.read_value));
  Engine.run ~until:60_000. engine;
  Alcotest.(check (option string)) "value" (Some "x") !got

let test_read_hit_after_miss () =
  let engine, _, cluster, api = setup () in
  let latencies = ref [] in
  let valid_after_hit = ref None in
  let timed_read server k =
    let start = Engine.now engine in
    api.R.submit_read ~client:client_a ~server key (fun _ ->
        latencies := (Engine.now engine -. start) :: !latencies;
        k ())
  in
  timed_read 0 (fun () ->
      timed_read 0 (fun () ->
          (* Check condition C while the leases are still fresh. *)
          match Cluster.oqs_server cluster 0 with
          | Some oqs -> valid_after_hit := Some (Oqs.is_locally_valid oqs key)
          | None -> ()));
  Engine.run ~until:30_000. engine;
  (match List.rev !latencies with
  | [ miss; hit ] ->
    Alcotest.(check bool) (Printf.sprintf "miss %.1f > 100" miss) true (miss > 100.);
    Alcotest.(check bool) (Printf.sprintf "hit %.1f < 20" hit) true (hit < 20.)
  | _ -> Alcotest.fail "two reads expected");
  Alcotest.(check (option bool)) "condition C holds" (Some true) !valid_after_hit

let test_lease_expires_without_renewal () =
  let engine, _, cluster, api = setup () in
  let valid_after = ref None in
  api.R.submit_read ~client:client_a ~server:0 key (fun _ ->
      (* Let more than a lease length pass with no renewals. *)
      ignore
        (Engine.schedule engine ~delay:(lease *. 1.5) (fun () ->
             match Cluster.oqs_server cluster 0 with
             | Some oqs -> valid_after := Some (Oqs.is_locally_valid oqs key)
             | None -> ())));
  Engine.run ~until:60_000. engine;
  Alcotest.(check (option bool)) "lease expired" (Some false) !valid_after

let test_proactive_renewal_keeps_hits () =
  let engine, _, cluster, api = setup ~proactive:true () in
  let valid_later = ref None in
  api.R.submit_read ~client:client_a ~server:0 key (fun _ ->
      ignore
        (Engine.schedule engine ~delay:(lease *. 5.) (fun () ->
             match Cluster.oqs_server cluster 0 with
             | Some oqs -> valid_later := Some (Oqs.is_locally_valid oqs key)
             | None -> ())));
  Engine.run ~until:(lease *. 6.) engine;
  Alcotest.(check (option bool)) "still valid after 5 leases" (Some true) !valid_later;
  api.R.quiesce ()

let test_write_completes_despite_crashed_oqs_node () =
  (* THE volume-lease property: with a reader's replica crashed, a
     write blocks at most about one lease length - not forever. *)
  let engine, _, _, api = setup () in
  let write_latency = ref None in
  api.R.submit_read ~client:client_a ~server:4 key (fun _ ->
      api.R.crash_server 4;
      let start = Engine.now engine in
      api.R.submit_write ~client:client_b ~server:1 key "v2" (fun _ ->
          write_latency := Some (Engine.now engine -. start)));
  Engine.run ~until:120_000. engine;
  match !write_latency with
  | Some latency ->
    Alcotest.(check bool)
      (Printf.sprintf "write blocked %.0f ms, about one lease" latency)
      true
      (latency < (2.5 *. lease) +. 1000.)
  | None -> Alcotest.fail "write never completed"

let test_delayed_invalidation_via_partition () =
  (* Partition an OQS node that holds valid leases; a write then
     completes after the lease expires by queueing a delayed
     invalidation; after healing, a read through the partitioned node
     must see the new value (delivered with the volume renewal). *)
  let engine, topology, cluster, api = setup () in
  let net = Cluster.net cluster in
  let stale_node = 4 in
  let got = ref None in
  let delayed_at_iqs = ref (-1) in
  api.R.submit_read ~client:client_a ~server:stale_node key (fun _ ->
      (* stale_node now caches the initial value under valid leases. *)
      let clients = Topology.clients topology in
      let others = List.filter (fun n -> n <> stale_node) (Topology.servers topology) in
      Net.partition net [ [ stale_node ]; others @ clients ];
      api.R.submit_write ~client:client_b ~server:1 key "fresh" (fun _ ->
          (match Cluster.iqs_server cluster 1 with
          | Some iqs -> delayed_at_iqs := Iqs.delayed_count iqs ~volume:0 ~oqs:stale_node
          | None -> ());
          Net.heal net;
          api.R.submit_read ~client:client_a ~server:stale_node key (fun r ->
              got := Some r.R.read_value)));
  Engine.run ~until:300_000. engine;
  Alcotest.(check bool) "a delayed invalidation was queued" true (!delayed_at_iqs >= 1);
  Alcotest.(check (option string)) "no stale read after heal" (Some "fresh") !got

let test_epoch_advances_when_delayed_queue_overflows () =
  let engine, topology, cluster, api =
    setup ~config_map:(fun c -> { c with Config.max_delayed = 2 }) ()
  in
  let net = Cluster.net cluster in
  let stale_node = 4 in
  let keys = List.init 4 (fun i -> Key.make ~volume:0 ~index:i) in
  let epoch_after = ref (-1) in
  let reads_ok = ref 0 in
  (* Warm the cache for all four objects on the stale node. *)
  let rec warm = function
    | [] ->
      let others = List.filter (fun n -> n <> stale_node) (Topology.servers topology) in
      Net.partition net [ [ stale_node ]; others @ Topology.clients topology ];
      write_all keys
    | k :: rest -> api.R.submit_read ~client:client_a ~server:stale_node k (fun _ -> warm rest)
  and write_all = function
    | [] ->
      (match Cluster.iqs_server cluster 1 with
      | Some iqs -> epoch_after := Iqs.epoch iqs ~volume:0 ~oqs:stale_node
      | None -> ());
      Net.heal net;
      read_back keys
    | k :: rest ->
      api.R.submit_write ~client:client_b ~server:1 k "new" (fun _ -> write_all rest)
  and read_back = function
    | [] -> ()
    | k :: rest ->
      api.R.submit_read ~client:client_a ~server:stale_node k (fun r ->
          if r.R.read_value = "new" then incr reads_ok;
          read_back rest)
  in
  warm keys;
  Engine.run ~until:600_000. engine;
  Alcotest.(check bool) "epoch advanced" true (!epoch_after >= 1);
  Alcotest.(check int) "all reads fresh after epoch recovery" 4 !reads_ok

let test_regular_after_iqs_minority_crash () =
  let engine, _, _, api = setup () in
  let got = ref None in
  api.R.submit_write ~client:client_a ~server:0 key "v1" (fun _ ->
      (* Crash a minority of the IQS (2 of 5); writes and reads must
         still complete. *)
      api.R.crash_server 3;
      api.R.crash_server 4;
      api.R.submit_write ~client:client_b ~server:1 key "v2" (fun _ ->
          api.R.submit_read ~client:client_a ~server:0 key (fun r ->
              got := Some r.R.read_value)));
  Engine.run ~until:120_000. engine;
  Alcotest.(check (option string)) "survives minority crash" (Some "v2") !got

let test_oqs_cache_volatile_across_crash () =
  let engine, _, cluster, api = setup () in
  let second_value = ref None in
  api.R.submit_read ~client:client_a ~server:0 key (fun _ ->
      api.R.crash_server 0;
      api.R.recover_server 0;
      (match Cluster.oqs_server cluster 0 with
      | Some oqs ->
        Alcotest.(check bool) "cache cleared on recovery" false (Oqs.is_locally_valid oqs key)
      | None -> ());
      api.R.submit_read ~client:client_a ~server:0 key (fun r ->
          second_value := Some r.R.read_value));
  Engine.run ~until:60_000. engine;
  Alcotest.(check (option string)) "read after recovery works" (Some "") !second_value

let test_iqs_state_durable_across_crash () =
  let engine, _, cluster, api = setup () in
  let got = ref None in
  api.R.submit_write ~client:client_a ~server:0 key "persist" (fun _ ->
      api.R.crash_server 1;
      api.R.recover_server 1;
      (match Cluster.iqs_server cluster 1 with
      | Some iqs ->
        got := Some (Iqs.stored iqs key).Versioned.value
      | None -> ()));
  Engine.run ~until:60_000. engine;
  (* Server 1 is in the IQS write quorum with high probability; but the
     quorum is random, so only check when it received the write. *)
  match !got with
  | Some v -> Alcotest.(check bool) "durable or absent" true (v = "persist" || v = "")
  | None -> Alcotest.fail "introspection failed"

let test_write_suppress_and_through_counts () =
  let engine, _, cluster, api = setup () in
  let inval_count () =
    match
      List.assoc_opt "inval" (Dq_net.Msg_stats.by_label (Net.stats (Cluster.net cluster)))
    with
    | Some n -> n
    | None -> 0
  in
  let observations = ref [] in
  api.R.submit_write ~client:client_a ~server:0 key "w1" (fun _ ->
      let c1 = inval_count () in
      api.R.submit_write ~client:client_a ~server:0 key "w2" (fun _ ->
          let c2 = inval_count () in
          observations := [ ("suppress", c2 - c1) ];
          api.R.submit_read ~client:client_b ~server:1 key (fun _ ->
              let c3 = inval_count () in
              api.R.submit_write ~client:client_a ~server:0 key "w3" (fun _ ->
                  let c4 = inval_count () in
                  observations := ("through", c4 - c3) :: !observations))));
  Engine.run ~until:120_000. engine;
  match List.rev !observations with
  | [ ("suppress", s); ("through", t) ] ->
    Alcotest.(check int) "suppressed write sends no invalidations" 0 s;
    Alcotest.(check bool) "write after read invalidates" true (t > 0)
  | _ -> Alcotest.fail "missing observations"

let test_reads_survive_iqs_partition_under_leases () =
  (* With valid leases in hand, an OQS node keeps serving local reads
     even when every IQS node is unreachable - the availability payoff
     of leases. Writes block during the partition and resume after. *)
  let engine = Engine.create ~seed:35L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:2 () in
  let servers = Topology.servers topology in
  let config =
    Config.dqvl ~servers ~volume_lease_ms:60_000. ~proactive_renew:false ()
  in
  let cluster = Cluster.create engine topology config in
  let api = Cluster.api cluster in
  let net = Cluster.net cluster in
  let reads_during = ref 0 in
  let write_during = ref false in
  let write_after = ref false in
  api.R.submit_read ~client:client_a ~server:0 key (fun _ ->
      (* Cut server 0 (the reader's OQS node) plus its client off from
         the rest: the IQS majority is unreachable from node 0. *)
      Net.partition net [ [ 0; client_a ]; [ 1; 2; 3; 4; client_b ] ];
      let rec read_loop n =
        if n > 0 then
          api.R.submit_read ~client:client_a ~server:0 key (fun _ ->
              incr reads_during;
              read_loop (n - 1))
      in
      read_loop 5;
      (* A write into the majority side cannot invalidate node 0 and
         must wait out the lease; it stays blocked within our window. *)
      api.R.submit_write ~client:client_b ~server:1 key "w" (fun _ -> write_during := true);
      ignore
        (Engine.schedule engine ~delay:20_000. (fun () ->
             Alcotest.(check int) "leased reads served in partition" 5 !reads_during;
             Alcotest.(check bool) "write still blocked" false !write_during;
             Net.heal net)));
  ignore
    (Engine.schedule engine ~delay:100_000. (fun () ->
         api.R.submit_write ~client:client_b ~server:1 key "w2" (fun _ -> write_after := true)));
  Engine.run ~until:200_000. engine;
  Alcotest.(check bool) "write completed after heal" true (!write_during || !write_after)

let test_high_clock_drift_still_regular () =
  (* Stress the lease arithmetic: 5% drift rate (50x the default) with
     short leases; regular semantics must hold regardless. *)
  let engine = Engine.create ~seed:36L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:3 () in
  let servers = Topology.servers topology in
  let config =
    {
      (Config.dqvl ~servers ~volume_lease_ms:800. ~proactive_renew:false ()) with
      Config.max_drift = 0.05;
      renew_margin_ms = 200.;
    }
  in
  let cluster = Cluster.create engine topology config in
  let api = Cluster.api cluster in
  let history = Dq_harness.History.create () in
  let done_ops = ref 0 in
  let rec client_loop ~client ~server n =
    if n = 0 then incr done_ops
    else begin
      let start = Engine.now engine in
      if n mod 3 = 0 then begin
        let value = Printf.sprintf "c%d-%d" client n in
        let id =
          Dq_harness.History.begin_op history ~client ~key ~kind:Dq_harness.History.Write
            ~value ~now:start
        in
        api.R.submit_write ~client ~server key value (fun w ->
            Dq_harness.History.complete_op history ~id ~value ~lc:w.R.write_lc
              ~now:(Engine.now engine);
            client_loop ~client ~server (n - 1))
      end
      else begin
        let id =
          Dq_harness.History.begin_op history ~client ~key ~kind:Dq_harness.History.Read
            ~value:"" ~now:start
        in
        api.R.submit_read ~client ~server key (fun r ->
            Dq_harness.History.complete_op history ~id ~value:r.R.read_value ~lc:r.R.read_lc
              ~now:(Engine.now engine);
            client_loop ~client ~server (n - 1))
      end
    end
  in
  client_loop ~client:5 ~server:0 30;
  client_loop ~client:6 ~server:1 30;
  client_loop ~client:7 ~server:2 30;
  Engine.run_while engine (fun () -> !done_ops < 3);
  api.R.quiesce ();
  let report = Dq_harness.Regular_checker.check (Dq_harness.History.ops history) in
  Alcotest.(check int) "regular under heavy drift" 0
    (List.length report.Dq_harness.Regular_checker.violations)

let () =
  Alcotest.run "dqvl"
    [
      ( "basic behaviour",
        [
          Alcotest.test_case "write then read" `Quick test_write_then_read;
          Alcotest.test_case "read hit after miss" `Quick test_read_hit_after_miss;
          Alcotest.test_case "lease expiry" `Quick test_lease_expires_without_renewal;
          Alcotest.test_case "proactive renewal" `Quick test_proactive_renewal_keeps_hits;
          Alcotest.test_case "suppress and through" `Quick
            test_write_suppress_and_through_counts;
        ] );
      ( "failures",
        [
          Alcotest.test_case "write unblocked by lease expiry" `Quick
            test_write_completes_despite_crashed_oqs_node;
          Alcotest.test_case "delayed invalidations" `Quick
            test_delayed_invalidation_via_partition;
          Alcotest.test_case "epoch overflow" `Quick
            test_epoch_advances_when_delayed_queue_overflows;
          Alcotest.test_case "IQS minority crash" `Quick test_regular_after_iqs_minority_crash;
          Alcotest.test_case "reads survive IQS partition" `Quick
            test_reads_survive_iqs_partition_under_leases;
          Alcotest.test_case "heavy clock drift" `Quick test_high_clock_drift_still_regular;
          Alcotest.test_case "OQS cache volatile" `Quick test_oqs_cache_volatile_across_crash;
          Alcotest.test_case "IQS durable" `Quick test_iqs_state_durable_across_crash;
        ] );
    ]
