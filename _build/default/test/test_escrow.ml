(* Escrow inventory counters (the paper's commutative-write,
   approximate-read object category from Section 1): never oversell,
   conserve stock through transfers, local-latency purchases. *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Escrow = Dq_proto.Escrow
open Dq_storage

let item = Key.make ~volume:0 ~index:0

let setup ?(n_servers = 3) ?(stock = 90) () =
  let engine = Engine.create ~seed:81L () in
  let topology = Topology.make ~n_servers ~n_clients:3 () in
  let counters = Escrow.create engine topology ~stock:(fun _ -> stock) () in
  (engine, topology, counters)

let test_initial_split () =
  let _, _, counters = setup ~stock:10 ~n_servers:3 () in
  (* 10 over 3 servers: 4 + 3 + 3, conserved exactly. *)
  Alcotest.(check int) "conserved" 10 (Escrow.exact_remaining counters item);
  Alcotest.(check int) "nothing sold" 0 (Escrow.total_sold counters item)

let test_local_buy_is_fast () =
  let engine, _, counters = setup () in
  let latency = ref None in
  let start = Engine.now engine in
  Escrow.buy counters ~client:3 ~server:0 item ~amount:1 (fun ok ->
      Alcotest.(check bool) "sold" true ok;
      latency := Some (Engine.now engine -. start));
  Engine.run ~until:10_000. engine;
  Escrow.quiesce counters;
  match !latency with
  | Some l -> Alcotest.(check bool) (Printf.sprintf "local (%.1f ms)" l) true (l < 20.)
  | None -> Alcotest.fail "no reply"

let test_conservation_under_load () =
  let engine, _, counters = setup ~stock:90 () in
  let oks = ref 0 and fails = ref 0 in
  (* Three clients hammer their local servers: 40 purchases each = 120
     demanded > 90 stocked. *)
  let rec shop ~client ~server n =
    if n > 0 then
      Escrow.buy counters ~client ~server item ~amount:1 (fun ok ->
          if ok then incr oks else incr fails;
          shop ~client ~server (n - 1))
  in
  shop ~client:3 ~server:0 40;
  shop ~client:4 ~server:1 40;
  shop ~client:5 ~server:2 40;
  Engine.run ~until:600_000. engine;
  Escrow.quiesce counters;
  Alcotest.(check int) "every purchase answered" 120 (!oks + !fails);
  Alcotest.(check bool) "never oversells" true (!oks <= 90);
  Alcotest.(check int) "sold matches acks" !oks (Escrow.total_sold counters item);
  Alcotest.(check int) "stock conserved" 90
    (Escrow.total_sold counters item + Escrow.exact_remaining counters item)

let test_transfers_serve_hot_replica () =
  (* All demand lands on server 0; its 30-unit share runs dry and
     transfers must bring most of the remaining stock over. *)
  let engine, _, counters = setup ~stock:90 () in
  let oks = ref 0 in
  let rec shop n =
    if n > 0 then
      Escrow.buy counters ~client:3 ~server:0 item ~amount:1 (fun ok ->
          if ok then incr oks;
          shop (n - 1))
  in
  shop 80;
  Engine.run ~until:600_000. engine;
  Escrow.quiesce counters;
  Alcotest.(check bool)
    (Printf.sprintf "most of the stock sold through one edge (%d)" !oks)
    true (!oks >= 70);
  Alcotest.(check int) "conserved" 90
    (Escrow.total_sold counters item + Escrow.exact_remaining counters item)

let test_sold_out_refused () =
  let engine, _, counters = setup ~stock:3 () in
  let replies = ref [] in
  let rec shop n =
    if n > 0 then
      Escrow.buy counters ~client:3 ~server:0 item ~amount:1 (fun ok ->
          replies := ok :: !replies;
          shop (n - 1))
  in
  shop 6;
  Engine.run ~until:600_000. engine;
  Escrow.quiesce counters;
  let sold = List.length (List.filter Fun.id !replies) in
  Alcotest.(check int) "exactly the stock sold" 3 sold;
  Alcotest.(check int) "the rest refused" 3 (List.length !replies - sold)

let test_conservation_with_crashes () =
  (* Crash a replica mid-run (possibly with grants in transit); stock
     must still be conserved, counting in-transit units. *)
  let engine, _, counters = setup ~stock:60 () in
  let answered = ref 0 in
  let rec shop ~client ~server n =
    if n > 0 then
      Escrow.buy counters ~client ~server item ~amount:1 (fun _ ->
          incr answered;
          shop ~client ~server (n - 1))
  in
  shop ~client:3 ~server:0 30;
  shop ~client:4 ~server:1 30;
  ignore (Engine.schedule engine ~delay:1_000. (fun () -> Escrow.crash counters 2));
  ignore (Engine.schedule engine ~delay:15_000. (fun () -> Escrow.recover counters 2));
  Engine.run ~until:600_000. engine;
  Escrow.quiesce counters;
  Alcotest.(check int) "conserved under crash" 60
    (Escrow.total_sold counters item + Escrow.exact_remaining counters item);
  Alcotest.(check bool) "never oversells" true (Escrow.total_sold counters item <= 60)

let test_approx_read_converges () =
  let engine, _, counters = setup ~stock:90 () in
  let rec shop n =
    if n > 0 then
      Escrow.buy counters ~client:3 ~server:0 item ~amount:1 (fun _ -> shop (n - 1))
  in
  shop 30;
  Engine.run ~until:60_000. engine;
  Escrow.quiesce counters;
  (* Let gossip settle, then every replica's estimate equals the truth. *)
  let truth = Escrow.exact_remaining counters item in
  List.iter
    (fun server ->
      Alcotest.(check int)
        (Printf.sprintf "server %d estimate" server)
        truth
        (Escrow.approx_count counters ~server item))
    [ 0; 1; 2 ]

let prop_conservation_random =
  QCheck.Test.make ~name:"conservation under random demand and crashes" ~count:20
    QCheck.(
      quad (int_range 1 1_000_000) (int_range 10 120) (int_range 1 3) bool)
    (fun (seed, stock, amount, crash) ->
      let engine = Engine.create ~seed:(Int64.of_int seed) () in
      let topology = Topology.make ~n_servers:3 ~n_clients:3 () in
      let counters = Escrow.create engine topology ~stock:(fun _ -> stock) () in
      let oks = ref 0 in
      let rec shop ~client ~server n =
        if n > 0 then
          Escrow.buy counters ~client ~server item ~amount (fun ok ->
              if ok then incr oks;
              shop ~client ~server (n - 1))
      in
      shop ~client:3 ~server:0 20;
      shop ~client:4 ~server:1 20;
      shop ~client:5 ~server:2 20;
      if crash then begin
        ignore (Engine.schedule engine ~delay:500. (fun () -> Escrow.crash counters 2));
        ignore (Engine.schedule engine ~delay:8_000. (fun () -> Escrow.recover counters 2))
      end;
      Engine.run ~until:600_000. engine;
      Escrow.quiesce counters;
      let sold = Escrow.total_sold counters item in
      let remaining = Escrow.exact_remaining counters item in
      sold = !oks * amount && sold + remaining = stock && sold <= stock)

let () =
  Alcotest.run "escrow"
    [
      ( "unit",
        [
          Alcotest.test_case "initial split" `Quick test_initial_split;
          Alcotest.test_case "local buy" `Quick test_local_buy_is_fast;
          Alcotest.test_case "conservation under load" `Quick test_conservation_under_load;
          Alcotest.test_case "transfers" `Quick test_transfers_serve_hot_replica;
          Alcotest.test_case "sold out" `Quick test_sold_out_refused;
          Alcotest.test_case "crashes" `Quick test_conservation_with_crashes;
          Alcotest.test_case "approximate reads converge" `Quick test_approx_read_converges;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_conservation_random ]);
    ]
