(* Odds and ends of the harness: table rendering of experiment rows,
   the virtual-time log reporter, and registry coherence. *)

module E = Dq_harness.Experiment
module Render = Dq_harness.Render
module Registry = Dq_harness.Registry
module Table = Dq_util.Table
module Engine = Dq_sim.Engine

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let row protocol overall =
  {
    E.protocol;
    read_ms = overall -. 1.;
    write_ms = overall +. 1.;
    overall_ms = overall;
    completed = 10;
    failed = 0;
    violations = 0;
  }

let test_render_response_rows () =
  let t = Render.response_rows ~title:"proto" [ row "dqvl" 20.; row "majority" 180. ] in
  let out = Table.render t in
  Alcotest.(check bool) "has dqvl" true (contains ~needle:"dqvl" out);
  Alcotest.(check bool) "has value" true (contains ~needle:"180.0" out)

let test_render_sweep () =
  let t =
    Render.sweep ~title:"fig" ~x_label:"w"
      ~x_of:(Printf.sprintf "%.1f")
      [ (0.1, [ row "a" 10.; row "b" 20. ]); (0.2, [ row "a" 30.; row "b" 40. ]) ]
  in
  let out = Table.render t in
  Alcotest.(check bool) "columns from protocols" true (contains ~needle:"a" out);
  Alcotest.(check bool) "values in place" true (contains ~needle:"30.0" out)

let test_render_sweep_missing_protocol () =
  let t =
    Render.sweep ~title:"fig" ~x_label:"w"
      ~x_of:(Printf.sprintf "%.1f")
      [ (0.1, [ row "a" 10.; row "b" 20. ]); (0.2, [ row "a" 30. ]) ]
  in
  let out = Table.render t in
  Alcotest.(check bool) "dash for missing" true (contains ~needle:"-" out)

let test_render_series_formats () =
  let t =
    Render.series ~title:"u" ~x_label:"n" ~x_of:string_of_int ~fmt:Render.scientific
      [ (3, [ ("x", 1.5e-9) ]) ]
  in
  Alcotest.(check bool) "scientific" true (contains ~needle:"1.50e-09" (Table.render t))

let test_scientific () =
  Alcotest.(check string) "formats" "6.05e-13" (Render.scientific 6.05e-13)

let test_sim_log_reporter_stamps_time () =
  let engine = Engine.create () in
  (* Install, emit at two virtual times, restore defaults. *)
  let buf = Buffer.create 128 in
  let reporter = Dq_sim.Sim_log.reporter engine in
  Logs.set_reporter reporter;
  Logs.set_level (Some Logs.Debug);
  let src = Logs.Src.create "test.src" in
  let module Log = (val Logs.src_log src : Logs.LOG) in
  (* Capture by redirecting the formatter is awkward; instead verify the
     reporter formats without raising at different virtual times. *)
  Log.debug (fun m -> m "hello %d" 1);
  ignore (Engine.schedule engine ~delay:123. (fun () -> Log.debug (fun m -> m "later")));
  Engine.run engine;
  Logs.set_reporter Logs.nop_reporter;
  Logs.set_level None;
  ignore buf;
  Alcotest.(check (float 0.)) "time advanced" 123. (Engine.now engine)

let test_registry_names_are_unique () =
  let builders =
    Registry.paper_five
    @ [
        Registry.dq_basic;
        Registry.atomic_majority;
        Registry.dqvl_atomic ();
        Registry.grid ~rows:3 ~cols:3;
      ]
  in
  let names = List.map (fun (b : Registry.builder) -> b.Registry.name) builders in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_registry_builders_run () =
  (* Every registered builder stands up a working cluster. *)
  let topology = Dq_net.Topology.make ~n_servers:9 ~n_clients:1 () in
  let key = Dq_storage.Key.make ~volume:0 ~index:0 in
  List.iter
    (fun (builder : Registry.builder) ->
      let engine = Engine.create ~seed:14L () in
      let instance = builder.Registry.build engine topology () in
      let got = ref None in
      let module R = Dq_intf.Replication in
      instance.Registry.api.R.submit_write ~client:9 ~server:0 key "v" (fun _ ->
          instance.Registry.api.R.submit_read ~client:9 ~server:1 key (fun r ->
              got := Some r.R.read_value));
      Engine.run ~until:120_000. engine;
      instance.Registry.api.R.quiesce ();
      match !got with
      | Some v ->
        (* ROWA-Async may legitimately return a stale (initial) value at
           a replica the write has not reached. *)
        Alcotest.(check bool) (builder.Registry.name ^ " responds") true (v = "v" || v = "")
      | None -> Alcotest.failf "%s: read never completed" builder.Registry.name)
    (Registry.paper_five @ [ Registry.dq_basic; Registry.atomic_majority ])

let () =
  Alcotest.run "harness_misc"
    [
      ( "render",
        [
          Alcotest.test_case "response rows" `Quick test_render_response_rows;
          Alcotest.test_case "sweep" `Quick test_render_sweep;
          Alcotest.test_case "sweep missing" `Quick test_render_sweep_missing_protocol;
          Alcotest.test_case "series" `Quick test_render_series_formats;
          Alcotest.test_case "scientific" `Quick test_scientific;
        ] );
      ("logging", [ Alcotest.test_case "reporter" `Quick test_sim_log_reporter_stamps_time ]);
      ( "registry",
        [
          Alcotest.test_case "unique names" `Quick test_registry_names_are_unique;
          Alcotest.test_case "builders run" `Slow test_registry_builders_run;
        ] );
    ]
