(* Smoke tests of the fuzzing harness itself (bin/fuzz.exe runs larger
   campaigns): scenarios derive deterministically from seeds, replay
   identically, and small campaigns pass for every quorum protocol. *)

module Fuzz = Dq_harness.Fuzz
module Registry = Dq_harness.Registry

let test_scenario_deterministic () =
  let a = Fuzz.scenario_of_seed 123L and b = Fuzz.scenario_of_seed 123L in
  Alcotest.(check bool) "identical" true (a = b);
  let c = Fuzz.scenario_of_seed 124L in
  Alcotest.(check bool) "different seeds differ" true (a <> c)

let test_run_replays () =
  let builder = Registry.dqvl ~volume_lease_ms:3_000. () in
  let s = Fuzz.scenario_of_seed 2024L in
  let a = Fuzz.run builder s and b = Fuzz.run builder s in
  Alcotest.(check int) "completed equal" a.Fuzz.completed b.Fuzz.completed;
  Alcotest.(check int) "failed equal" a.Fuzz.failed b.Fuzz.failed;
  Alcotest.(check (list string)) "violations equal" a.Fuzz.violations b.Fuzz.violations

let campaign_passes name builder =
  let seeds = List.init 5 (fun i -> Int64.of_int (5000 + i)) in
  let failures = Fuzz.campaign builder ~seeds in
  List.iter
    (fun o ->
      Format.printf "%s counterexample: %a %s@." name Fuzz.pp_scenario o.Fuzz.scenario
        (String.concat "; " o.Fuzz.violations))
    failures;
  Alcotest.(check int) (name ^ " campaign clean") 0 (List.length failures)

let test_campaign_dqvl () = campaign_passes "dqvl" (Registry.dqvl ~volume_lease_ms:3_000. ())
let test_campaign_majority () = campaign_passes "majority" Registry.majority
let test_campaign_atomic () = campaign_passes "atomic-majority" Registry.atomic_majority

let () =
  Alcotest.run "fuzz"
    [
      ( "harness",
        [
          Alcotest.test_case "scenario determinism" `Quick test_scenario_deterministic;
          Alcotest.test_case "run replays" `Slow test_run_replays;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "dqvl" `Slow test_campaign_dqvl;
          Alcotest.test_case "majority" `Slow test_campaign_majority;
          Alcotest.test_case "atomic majority" `Slow test_campaign_atomic;
        ] );
    ]
