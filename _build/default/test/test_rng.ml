module Rng = Dq_util.Rng

let test_determinism () =
  let a = Rng.create 7L in
  let b = Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_copy_replays () =
  let a = Rng.create 9L in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.int64 a) (Rng.int64 b)

let test_split_independent () =
  let a = Rng.create 3L in
  let b = Rng.split a in
  (* After splitting, the parent's and the child's next outputs differ
     and each stream still works. *)
  let xa = Rng.int64 a and xb = Rng.int64 b in
  Alcotest.(check bool) "streams differ" true (not (Int64.equal xa xb))

let test_int_range () =
  let rng = Rng.create 11L in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_int_covers_values () =
  let rng = Rng.create 12L in
  let seen = Array.make 8 false in
  for _ = 1 to 1_000 do
    seen.(Rng.int rng 8) <- true
  done;
  Array.iteri (fun i b -> Alcotest.(check bool) (Printf.sprintf "value %d seen" i) true b) seen

let test_float_range () =
  let rng = Rng.create 13L in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 3.5 in
    Alcotest.(check bool) "in range" true (x >= 0. && x < 3.5)
  done

let test_bernoulli_frequency () =
  let rng = Rng.create 14L in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "freq %.3f close to 0.3" freq)
    true
    (abs_float (freq -. 0.3) < 0.01)

let test_bernoulli_extremes () =
  let rng = Rng.create 15L in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.)

let test_exponential_mean () =
  let rng = Rng.create 16L in
  let n = 100_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Rng.exponential rng ~mean:5.
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f close to 5" mean)
    true
    (abs_float (mean -. 5.) < 0.1)

let test_shuffle_is_permutation () =
  let rng = Rng.create 17L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Rng.create 18L in
  let xs = List.init 20 Fun.id in
  let s = Rng.sample rng xs 8 in
  Alcotest.(check int) "size" 8 (List.length s);
  Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq compare s));
  List.iter (fun x -> Alcotest.(check bool) "member" true (List.mem x xs)) s

let prop_int_in_bounds =
  QCheck.Test.make ~name:"int n is within [0, n)" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let x = Rng.int rng n in
      x >= 0 && x < n)

let prop_sample_size =
  QCheck.Test.make ~name:"sample returns k distinct members" ~count:200
    QCheck.(pair int64 (int_range 0 30))
    (fun (seed, k) ->
      let rng = Rng.create seed in
      let xs = List.init 30 Fun.id in
      let s = Rng.sample rng xs k in
      List.length s = k && List.length (List.sort_uniq compare s) = k)

let () =
  Alcotest.run "rng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "copy replays" `Quick test_copy_replays;
          Alcotest.test_case "split independent" `Quick test_split_independent;
          Alcotest.test_case "int range" `Quick test_int_range;
          Alcotest.test_case "int covers values" `Quick test_int_covers_values;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "bernoulli frequency" `Quick test_bernoulli_frequency;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "sample" `Quick test_sample_without_replacement;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_int_in_bounds; prop_sample_size ] );
    ]
