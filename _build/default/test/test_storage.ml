open Dq_storage

let test_key_accessors () =
  let k = Key.make ~volume:2 ~index:7 in
  Alcotest.(check int) "volume" 2 (Key.volume k);
  Alcotest.(check int) "index" 7 (Key.index k);
  Alcotest.(check string) "to_string" "v2/o7" (Key.to_string k)

let test_key_equality () =
  let a = Key.make ~volume:1 ~index:2 in
  let b = Key.make ~volume:1 ~index:2 in
  let c = Key.make ~volume:2 ~index:1 in
  Alcotest.(check bool) "equal" true (Key.equal a b);
  Alcotest.(check bool) "not equal" false (Key.equal a c);
  Alcotest.(check int) "same hash" (Key.hash a) (Key.hash b)

let test_key_ordering () =
  let k v i = Key.make ~volume:v ~index:i in
  Alcotest.(check bool) "volume major" true (Key.compare (k 1 9) (k 2 0) < 0);
  Alcotest.(check bool) "index minor" true (Key.compare (k 1 1) (k 1 2) < 0);
  Alcotest.(check int) "reflexive" 0 (Key.compare (k 3 3) (k 3 3))

let test_key_validation () =
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore (Key.make ~volume:(-1) ~index:0);
       false
     with Invalid_argument _ -> true)

let test_lc_total_order () =
  let a = Lc.make ~count:1 ~node:0 in
  let b = Lc.make ~count:1 ~node:1 in
  let c = Lc.make ~count:2 ~node:0 in
  Alcotest.(check bool) "count major" true Lc.(a < c);
  Alcotest.(check bool) "node tie-break" true Lc.(a < b);
  Alcotest.(check bool) "b < c" true Lc.(b < c);
  Alcotest.(check bool) "zero smallest" true Lc.(Lc.zero < a)

let test_lc_succ () =
  let a = Lc.make ~count:3 ~node:5 in
  let s = Lc.succ a ~node:1 in
  Alcotest.(check bool) "succ greater" true Lc.(s > a);
  Alcotest.(check int) "count bumped" 4 s.Lc.count;
  Alcotest.(check int) "node tagged" 1 s.Lc.node

let test_lc_succ_concurrent_distinct () =
  (* Two nodes advancing the same clock produce distinct, ordered stamps. *)
  let base = Lc.make ~count:7 ~node:0 in
  let s1 = Lc.succ base ~node:1 and s2 = Lc.succ base ~node:2 in
  Alcotest.(check bool) "distinct" false (Lc.equal s1 s2);
  Alcotest.(check bool) "ordered" true Lc.(s1 < s2)

let test_lc_max () =
  let a = Lc.make ~count:1 ~node:9 in
  let b = Lc.make ~count:2 ~node:0 in
  Alcotest.(check bool) "max picks larger" true (Lc.equal (Lc.max a b) b);
  Alcotest.(check bool) "commutative" true (Lc.equal (Lc.max a b) (Lc.max b a))

let test_versioned () =
  let v1 = Versioned.make ~value:"x" ~lc:(Lc.make ~count:1 ~node:0) in
  let v2 = Versioned.make ~value:"y" ~lc:(Lc.make ~count:2 ~node:0) in
  Alcotest.(check string) "newer wins" "y" (Versioned.newer v1 v2).Versioned.value;
  Alcotest.(check string) "order irrelevant" "y" (Versioned.newer v2 v1).Versioned.value;
  Alcotest.(check string) "initial empty" "" Versioned.initial.Versioned.value;
  Alcotest.(check bool) "initial at zero" true (Lc.equal Versioned.initial.Versioned.lc Lc.zero)

let test_obj_map_default_materializes () =
  let m = Obj_map.of_int_default ~default:(fun k -> ref (k * 10)) in
  let r = Obj_map.get m 3 in
  Alcotest.(check int) "default computed" 30 !r;
  r := 99;
  Alcotest.(check int) "entry remembered" 99 !(Obj_map.get m 3);
  Alcotest.(check int) "length" 1 (Obj_map.length m)

let test_obj_map_find_opt_no_materialize () =
  let m = Obj_map.of_int_default ~default:(fun _ -> 0) in
  Alcotest.(check (option int)) "absent" None (Obj_map.find_opt m 5);
  Alcotest.(check int) "still empty" 0 (Obj_map.length m)

let test_obj_map_set_overwrites () =
  let m = Obj_map.of_int_default ~default:(fun _ -> 0) in
  Obj_map.set m 1 10;
  Obj_map.set m 1 20;
  Alcotest.(check (option int)) "overwritten" (Some 20) (Obj_map.find_opt m 1);
  Alcotest.(check int) "no duplicate" 1 (Obj_map.length m)

let test_obj_map_growth () =
  let m = Obj_map.of_int_default ~default:(fun k -> k) in
  for k = 0 to 999 do
    ignore (Obj_map.get m k)
  done;
  Alcotest.(check int) "all present" 1000 (Obj_map.length m);
  for k = 0 to 999 do
    Alcotest.(check (option int)) "value" (Some k) (Obj_map.find_opt m k)
  done

let test_obj_map_fold_iter () =
  let m = Obj_map.of_int_default ~default:(fun k -> k * 2) in
  List.iter (fun k -> ignore (Obj_map.get m k)) [ 1; 2; 3 ];
  let total = Obj_map.fold m ~init:0 ~f:(fun _ v acc -> acc + v) in
  Alcotest.(check int) "fold" 12 total;
  let count = ref 0 in
  Obj_map.iter m (fun _ _ -> incr count);
  Alcotest.(check int) "iter" 3 !count

let test_obj_map_clear () =
  let m = Obj_map.of_int_default ~default:(fun _ -> 0) in
  ignore (Obj_map.get m 1);
  Obj_map.clear m;
  Alcotest.(check int) "cleared" 0 (Obj_map.length m)

let test_obj_map_key_keys () =
  let m = Obj_map.of_key_default ~default:(fun k -> Key.index k) in
  let k1 = Key.make ~volume:0 ~index:5 in
  let k2 = Key.make ~volume:1 ~index:5 in
  Alcotest.(check int) "k1" 5 (Obj_map.get m k1);
  Obj_map.set m k2 99;
  Alcotest.(check (option int)) "k2 distinct" (Some 99) (Obj_map.find_opt m k2);
  Alcotest.(check (option int)) "k1 unaffected" (Some 5) (Obj_map.find_opt m k1)

(* Model-based: Obj_map behaves like Hashtbl under a random op sequence. *)
let prop_obj_map_model =
  let op_gen =
    QCheck.Gen.(
      pair (int_range 0 20) (oneofl [ `Get; `Set 1; `Set 2; `Find ]))
  in
  QCheck.Test.make ~name:"obj_map matches hashtbl model" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 100) op_gen))
    (fun ops ->
      let m = Obj_map.of_int_default ~default:(fun k -> k * 7) in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (k, op) ->
          match op with
          | `Get ->
            let v = Obj_map.get m k in
            let expected =
              match Hashtbl.find_opt model k with
              | Some v -> v
              | None ->
                Hashtbl.replace model k (k * 7);
                k * 7
            in
            v = expected
          | `Set v ->
            Obj_map.set m k v;
            Hashtbl.replace model k v;
            true
          | `Find -> Obj_map.find_opt m k = Hashtbl.find_opt model k)
        ops)

let prop_lc_max_assoc =
  QCheck.Test.make ~name:"lc max is associative and commutative" ~count:300
    QCheck.(triple (pair small_nat small_nat) (pair small_nat small_nat) (pair small_nat small_nat))
    (fun ((c1, n1), (c2, n2), (c3, n3)) ->
      let a = Lc.make ~count:c1 ~node:n1 in
      let b = Lc.make ~count:c2 ~node:n2 in
      let c = Lc.make ~count:c3 ~node:n3 in
      Lc.equal (Lc.max a (Lc.max b c)) (Lc.max (Lc.max a b) c)
      && Lc.equal (Lc.max a b) (Lc.max b a))

let () =
  Alcotest.run "storage"
    [
      ( "key",
        [
          Alcotest.test_case "accessors" `Quick test_key_accessors;
          Alcotest.test_case "equality" `Quick test_key_equality;
          Alcotest.test_case "ordering" `Quick test_key_ordering;
          Alcotest.test_case "validation" `Quick test_key_validation;
        ] );
      ( "lc",
        [
          Alcotest.test_case "total order" `Quick test_lc_total_order;
          Alcotest.test_case "succ" `Quick test_lc_succ;
          Alcotest.test_case "concurrent succ" `Quick test_lc_succ_concurrent_distinct;
          Alcotest.test_case "max" `Quick test_lc_max;
        ] );
      ("versioned", [ Alcotest.test_case "newer" `Quick test_versioned ]);
      ( "obj_map",
        [
          Alcotest.test_case "default materializes" `Quick test_obj_map_default_materializes;
          Alcotest.test_case "find_opt" `Quick test_obj_map_find_opt_no_materialize;
          Alcotest.test_case "set overwrites" `Quick test_obj_map_set_overwrites;
          Alcotest.test_case "growth" `Quick test_obj_map_growth;
          Alcotest.test_case "fold iter" `Quick test_obj_map_fold_iter;
          Alcotest.test_case "clear" `Quick test_obj_map_clear;
          Alcotest.test_case "composite keys" `Quick test_obj_map_key_keys;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_obj_map_model; prop_lc_max_assoc ] );
    ]
