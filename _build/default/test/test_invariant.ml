(* The DQVL safety invariant, checked live across nodes while
   fault-injected workloads run: if an OQS node holds valid volume and
   object leases from an IQS node, that IQS node must still account for
   them. *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Cluster = Dq_core.Cluster
module Config = Dq_core.Config
module Invariant = Dq_harness.Invariant
module Driver = Dq_harness.Driver
module Registry = Dq_harness.Registry
module Spec = Dq_workload.Spec
open Dq_storage

let keys = List.init 3 (fun i -> Key.make ~volume:0 ~index:i)

let test_holds_on_fresh_cluster () =
  let engine = Engine.create ~seed:1L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:1 () in
  let cluster = Cluster.create engine topology (Config.dqvl ~servers:[ 0; 1; 2; 3; 4 ] ()) in
  Alcotest.(check int) "no violations" 0 (List.length (Invariant.check cluster ~keys))

let test_holds_after_traffic () =
  let engine = Engine.create ~seed:2L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:2 () in
  let cluster = Cluster.create engine topology (Config.dqvl ~servers:[ 0; 1; 2; 3; 4 ] ()) in
  let api = Cluster.api cluster in
  let module R = Dq_intf.Replication in
  List.iteri
    (fun idx key ->
      api.R.submit_write ~client:5 ~server:0 key (Printf.sprintf "v%d" idx) (fun _ ->
          api.R.submit_read ~client:6 ~server:1 key (fun _ -> ())))
    keys;
  Engine.run ~until:30_000. engine;
  api.R.quiesce ();
  Alcotest.(check int) "no violations" 0 (List.length (Invariant.check cluster ~keys))

(* Drive a faulty workload through a cluster while sampling the
   invariant every 100 ms of virtual time. *)
let run_with_periodic_checks ~seed ~faults ~events =
  let engine = Engine.create ~seed () in
  let topology = Topology.make ~n_servers:5 ~n_clients:3 () in
  let servers = Topology.servers topology in
  let config = Config.dqvl ~servers ~volume_lease_ms:2_000. ~proactive_renew:false () in
  let cluster = Cluster.create engine topology ?faults:None config in
  (match faults with Some f -> Net.set_faults (Cluster.net cluster) f | None -> ());
  let api = Cluster.api cluster in
  let violations =
    Invariant.install_periodic engine cluster ~keys ~every_ms:100. ~until_ms:200_000.
  in
  let spec =
    {
      Spec.default with
      Spec.write_ratio = 0.4;
      sharing = Spec.Shared_uniform { objects = 3 };
    }
  in
  let dconfig =
    { (Driver.default_config spec) with Driver.ops_per_client = 60; timeout_ms = 8_000. }
  in
  List.iter
    (fun (at_ms, action) -> ignore (Engine.schedule_at engine ~time:at_ms action))
    events;
  let result =
    Driver.run engine topology api dconfig
  in
  (result, !violations)

let test_holds_under_faults () =
  let faults = Some { Net.loss = 0.1; duplicate = 0.1; jitter_ms = 25. } in
  let _, violations = run_with_periodic_checks ~seed:77L ~faults ~events:[] in
  List.iter (fun v -> Format.printf "%a@." Invariant.pp v) violations;
  Alcotest.(check int) "no violations under loss/dup/jitter" 0 (List.length violations)

let test_holds_under_crashes () =
  (* Crash/recover two servers mid-run. *)
  let engine = Engine.create ~seed:78L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:3 () in
  let servers = Topology.servers topology in
  let config = Config.dqvl ~servers ~volume_lease_ms:2_000. ~proactive_renew:false () in
  let cluster = Cluster.create engine topology config in
  let api = Cluster.api cluster in
  let module R = Dq_intf.Replication in
  ignore (Engine.schedule_at engine ~time:3_000. (fun () -> api.R.crash_server 3));
  ignore (Engine.schedule_at engine ~time:4_000. (fun () -> api.R.crash_server 4));
  ignore (Engine.schedule_at engine ~time:12_000. (fun () -> api.R.recover_server 3));
  ignore (Engine.schedule_at engine ~time:13_000. (fun () -> api.R.recover_server 4));
  let violations =
    Invariant.install_periodic engine cluster ~keys ~every_ms:100. ~until_ms:120_000.
  in
  let spec =
    {
      Spec.default with
      Spec.write_ratio = 0.4;
      sharing = Spec.Shared_uniform { objects = 3 };
    }
  in
  let dconfig =
    { (Driver.default_config spec) with Driver.ops_per_client = 50; timeout_ms = 8_000. }
  in
  let result = Driver.run engine topology api dconfig in
  Alcotest.(check bool) "progress" true (result.Driver.completed > 0);
  Alcotest.(check int) "no violations under crashes" 0 (List.length !violations)

let test_holds_with_finite_object_leases () =
  let engine = Engine.create ~seed:79L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:3 () in
  let servers = Topology.servers topology in
  let config =
    Dq_core.Config.dqvl ~servers ~volume_lease_ms:2_000. ~proactive_renew:false
      ~object_lease_ms:700. ()
  in
  let cluster = Cluster.create engine topology config in
  let api = Cluster.api cluster in
  let violations =
    Invariant.install_periodic engine cluster ~keys ~every_ms:100. ~until_ms:120_000.
  in
  let spec =
    {
      Spec.default with
      Spec.write_ratio = 0.4;
      sharing = Spec.Shared_uniform { objects = 3 };
      think_time_ms = 150.;
    }
  in
  let dconfig = { (Driver.default_config spec) with Driver.ops_per_client = 50 } in
  let result = Driver.run engine topology api dconfig in
  Alcotest.(check int) "no failures" 0 result.Driver.failed;
  Alcotest.(check int) "no violations with finite leases" 0 (List.length !violations)

let () =
  Alcotest.run "invariant"
    [
      ( "safety invariant",
        [
          Alcotest.test_case "fresh cluster" `Quick test_holds_on_fresh_cluster;
          Alcotest.test_case "after traffic" `Quick test_holds_after_traffic;
          Alcotest.test_case "under faults" `Slow test_holds_under_faults;
          Alcotest.test_case "under crashes" `Slow test_holds_under_crashes;
          Alcotest.test_case "finite object leases" `Slow test_holds_with_finite_object_leases;
        ] );
    ]
