(* QRPC target-selection policies: the latency-aware peer tracker
   (paper Section 2: "track which nodes have responded quickly in the
   past and first try sending to them"). *)

module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Qs = Dq_quorum.Quorum_system
module Qrpc = Dq_rpc.Qrpc
module Tracker = Dq_rpc.Peer_tracker

(* --- unit: the tracker ---------------------------------------------- *)

let test_estimate_ewma () =
  let clock = ref 0. in
  let t = Tracker.create ~now:(fun () -> !clock) in
  Alcotest.(check (option (float 0.))) "unknown" None (Tracker.estimate_ms t 1);
  Tracker.note_sent t 1;
  clock := 100.;
  Tracker.note_reply t 1;
  Alcotest.(check (option (float 1e-9))) "first sample" (Some 100.) (Tracker.estimate_ms t 1);
  (* Second sample of 200 ms: EWMA = 0.8 * 100 + 0.2 * 200 = 120. *)
  Tracker.note_sent t 1;
  clock := 300.;
  Tracker.note_reply t 1;
  Alcotest.(check (option (float 1e-9))) "ewma" (Some 120.) (Tracker.estimate_ms t 1)

let test_reply_without_send_ignored () =
  let t = Tracker.create ~now:(fun () -> 0.) in
  Tracker.note_reply t 5;
  Alcotest.(check (option (float 0.))) "still unknown" None (Tracker.estimate_ms t 5);
  Alcotest.(check int) "no observed peers" 0 (Tracker.observed_peers t)

let test_rank_orders_fastest_first () =
  let clock = ref 0. in
  let t = Tracker.create ~now:(fun () -> !clock) in
  let observe id latency =
    clock := 0.;
    Tracker.note_sent t id;
    clock := latency;
    Tracker.note_reply t id
  in
  observe 1 300.;
  observe 2 10.;
  observe 3 150.;
  Alcotest.(check (list int)) "fastest first" [ 2; 3; 1 ] (Tracker.rank t [ 1; 2; 3 ]);
  (* Unexplored peers come before everything (exploration). *)
  Alcotest.(check (list int)) "unexplored first" [ 9; 2; 3; 1 ] (Tracker.rank t [ 1; 2; 3; 9 ])

(* --- integration: tracked QRPC converges on the fast quorum ----------- *)

type msg = Req | Rep

let classify = function Req -> "req" | Rep -> "rep"

let test_tracker_converges_to_fast_members () =
  (* Coordinator node 0; members 1 and 2 are 10 ms away, member 3 is
     200 ms away. A majority (2 of 3) from {1,2} costs ~20 ms; any
     quorum touching 3 costs ~400 ms. After exploration the tracked
     policy must stick to {1,2}. *)
  let engine = Engine.create ~seed:61L () in
  let delay ~src ~dst =
    let d node = if node = 3 then 200. else 10. in
    if src = dst then 0.05 else Float.max (d src) (d dst) /. 2.
  in
  let topo = Topology.custom ~n_servers:4 ~n_clients:0 ~delay ~closest:(fun c -> c) in
  let net = Net.create engine topo ~classify () in
  Net.register net ~node:0 (fun ~src:_ _ -> ());
  for node = 1 to 3 do
    Net.register net ~node (fun ~src msg ->
        match msg with Req -> Net.send net ~src:node ~dst:src Rep | Rep -> ())
  done;
  let system = Qs.majority [ 1; 2; 3 ] in
  let tracker = Tracker.create ~now:(fun () -> Engine.now engine) in
  let latencies = ref [] in
  let current = ref None in
  Net.register net ~node:0 (fun ~src msg ->
      match msg, !current with
      | Rep, Some c -> Qrpc.deliver c ~src Rep
      | _ -> ());
  let rec run_call i =
    if i < 20 then begin
      let start = Engine.now engine in
      let c =
        Qrpc.call
          ~timer:(fun ~delay_ms action -> Net.timer net ~node:0 ~delay_ms action)
          ~rng:(Engine.split_rng engine) ~system ~mode:Qrpc.Read
          ~send:(fun dst -> Net.send net ~src:0 ~dst Req)
          ~on_quorum:(fun _ ->
            latencies := (Engine.now engine -. start) :: !latencies;
            run_call (i + 1))
          ~tracker ~timeout_ms:5_000. ()
      in
      current := Some c
    end
  in
  run_call 0;
  Engine.run engine;
  let all = List.rev !latencies in
  Alcotest.(check int) "all calls completed" 20 (List.length all);
  (* After the exploration phase, calls settle at the fast-quorum cost. *)
  let tail = List.filteri (fun i _ -> i >= 10) all in
  List.iter
    (fun l -> Alcotest.(check bool) (Printf.sprintf "settled call %.0f ms" l) true (l < 50.))
    tail;
  Alcotest.(check int) "all peers eventually observed" 3 (Tracker.observed_peers tracker)

let test_untracked_policy_keeps_hitting_slow_member () =
  (* Control experiment: the random policy keeps paying the slow member
     in some rounds. *)
  let engine = Engine.create ~seed:61L () in
  let delay ~src ~dst =
    let d node = if node = 3 then 200. else 10. in
    if src = dst then 0.05 else Float.max (d src) (d dst) /. 2.
  in
  let topo = Topology.custom ~n_servers:4 ~n_clients:0 ~delay ~closest:(fun c -> c) in
  let net = Net.create engine topo ~classify () in
  Net.register net ~node:0 (fun ~src:_ _ -> ());
  for node = 1 to 3 do
    Net.register net ~node (fun ~src msg ->
        match msg with Req -> Net.send net ~src:node ~dst:src Rep | Rep -> ())
  done;
  let system = Qs.majority [ 1; 2; 3 ] in
  let latencies = ref [] in
  let current = ref None in
  Net.register net ~node:0 (fun ~src msg ->
      match msg, !current with
      | Rep, Some c -> Qrpc.deliver c ~src Rep
      | _ -> ());
  let rec run_call i =
    if i < 20 then begin
      let start = Engine.now engine in
      let c =
        Qrpc.call
          ~timer:(fun ~delay_ms action -> Net.timer net ~node:0 ~delay_ms action)
          ~rng:(Engine.split_rng engine) ~system ~mode:Qrpc.Read
          ~send:(fun dst -> Net.send net ~src:0 ~dst Req)
          ~on_quorum:(fun _ ->
            latencies := (Engine.now engine -. start) :: !latencies;
            run_call (i + 1))
          ~timeout_ms:5_000. ()
      in
      current := Some c
    end
  in
  run_call 0;
  Engine.run engine;
  let slow_calls = List.filter (fun l -> l > 100.) !latencies in
  Alcotest.(check bool) "random policy pays the slow member sometimes" true
    (List.length slow_calls > 0)

let test_dqvl_latency_aware_end_to_end () =
  (* The config flag wires the tracker into the front ends; the cluster
     must still behave correctly. *)
  let engine = Engine.create ~seed:62L () in
  let topology = Topology.make ~n_servers:5 ~n_clients:2 () in
  let servers = Topology.servers topology in
  let config =
    { (Dq_core.Config.dqvl ~servers ()) with Dq_core.Config.latency_aware = true }
  in
  let cluster = Dq_core.Cluster.create engine topology config in
  let api = Dq_core.Cluster.api cluster in
  let module R = Dq_intf.Replication in
  let key = Dq_storage.Key.make ~volume:0 ~index:0 in
  let got = ref None in
  api.R.submit_write ~client:5 ~server:0 key "x" (fun _ ->
      api.R.submit_read ~client:6 ~server:1 key (fun r -> got := Some r.R.read_value));
  Engine.run ~until:60_000. engine;
  api.R.quiesce ();
  Alcotest.(check (option string)) "works with tracker" (Some "x") !got

let () =
  Alcotest.run "rpc_policies"
    [
      ( "tracker",
        [
          Alcotest.test_case "ewma" `Quick test_estimate_ewma;
          Alcotest.test_case "reply without send" `Quick test_reply_without_send_ignored;
          Alcotest.test_case "rank" `Quick test_rank_orders_fastest_first;
        ] );
      ( "integration",
        [
          Alcotest.test_case "converges to fast quorum" `Quick
            test_tracker_converges_to_fast_members;
          Alcotest.test_case "random policy control" `Quick
            test_untracked_policy_keeps_hitting_slow_member;
          Alcotest.test_case "dqvl end to end" `Quick test_dqvl_latency_aware_end_to_end;
        ] );
    ]
