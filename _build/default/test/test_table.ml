module Table = Dq_util.Table

let test_render_alignment () =
  let t = Table.create ~header:[ "proto"; "ms" ] in
  Table.add_row t [ "dqvl"; "16" ];
  Table.add_row t [ "majority"; "176" ];
  let out = Table.render t in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: _sep :: row1 :: row2 :: _ ->
    Alcotest.(check bool) "header has both columns" true
      (String.length header >= String.length "proto     ms");
    Alcotest.(check bool) "row1 mentions dqvl" true (String.length row1 > 0);
    Alcotest.(check bool) "row2 mentions majority" true (String.length row2 > 0)
  | _ -> Alcotest.fail "expected at least four lines");
  (* All data lines share the same column offsets: the second column of
     every row starts at the same index. *)
  let second_col_start line =
    let rec scan i in_gap =
      if i >= String.length line then -1
      else if line.[i] = ' ' then scan (i + 1) true
      else if in_gap then i
      else scan (i + 1) false
    in
    scan 0 false
  in
  let offsets =
    List.filter_map
      (fun l -> if String.trim l = "" then None else Some (second_col_start l))
      lines
  in
  (match offsets with
  | first :: rest ->
    List.iter (fun o -> Alcotest.(check int) "aligned" first o) rest
  | [] -> Alcotest.fail "no lines")

let test_short_row_padded () =
  let t = Table.create ~header:[ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  let out = Table.render t in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_too_long_row_rejected () =
  let t = Table.create ~header:[ "a" ] in
  Alcotest.check_raises "too many columns" (Invalid_argument "Table.add_row: too many columns")
    (fun () -> Table.add_row t [ "x"; "y" ])

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_float_row () =
  let t = Table.create ~header:[ "label"; "v1"; "v2" ] in
  Table.add_float_row t "row" [ 1.5; 2.25 ];
  let out = Table.render t in
  Alcotest.(check bool) "contains 1.5" true (contains ~needle:"1.5" out);
  Alcotest.(check bool) "contains 2.25" true (contains ~needle:"2.25" out)

let () =
  Alcotest.run "table"
    [
      ( "unit",
        [
          Alcotest.test_case "alignment" `Quick test_render_alignment;
          Alcotest.test_case "short row padded" `Quick test_short_row_padded;
          Alcotest.test_case "long row rejected" `Quick test_too_long_row_rejected;
          Alcotest.test_case "float row" `Quick test_float_row;
        ] );
    ]
