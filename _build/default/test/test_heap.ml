module Heap = Dq_sim.Heap

let drain heap =
  let rec go acc = match Heap.pop heap with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let test_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check int) "size" 0 (Heap.size h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h)

let test_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 2; 3 ];
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (drain h)

let test_duplicates () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 2; 1; 2; 1 ];
  Alcotest.(check (list int)) "sorted with dups" [ 1; 1; 2; 2 ] (drain h)

let test_peek_does_not_remove () =
  let h = Heap.create ~cmp:compare in
  Heap.push h 9;
  Alcotest.(check (option int)) "peek" (Some 9) (Heap.peek h);
  Alcotest.(check int) "size unchanged" 1 (Heap.size h)

let test_interleaved () =
  let h = Heap.create ~cmp:compare in
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Heap.push h 0;
  Heap.push h 2;
  Alcotest.(check (option int)) "pop 0" (Some 0) (Heap.pop h);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Heap.pop h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Heap.pop h)

let test_custom_comparator () =
  let h = Heap.create ~cmp:(fun a b -> compare b a) in
  List.iter (Heap.push h) [ 1; 3; 2 ];
  Alcotest.(check (list int)) "max-heap order" [ 3; 2; 1 ] (drain h)

let prop_heapsort =
  QCheck.Test.make ~name:"drain equals sort" ~count:500
    QCheck.(list (int_range (-1000) 1000))
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      drain h = List.sort compare xs)

let prop_size_tracks =
  QCheck.Test.make ~name:"size tracks pushes and pops" ~count:200
    QCheck.(list (int_range 0 100))
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iteri (fun i x -> Heap.push h x; ignore i) xs;
      let n = List.length xs in
      let ok = ref (Heap.size h = n) in
      let rec pop_all k =
        match Heap.pop h with
        | None -> if k <> 0 then ok := false
        | Some _ ->
          if Heap.size h <> k - 1 then ok := false;
          pop_all (k - 1)
      in
      pop_all n;
      !ok)

let () =
  Alcotest.run "heap"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "duplicates" `Quick test_duplicates;
          Alcotest.test_case "peek" `Quick test_peek_does_not_remove;
          Alcotest.test_case "interleaved" `Quick test_interleaved;
          Alcotest.test_case "custom comparator" `Quick test_custom_comparator;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_heapsort; prop_size_tracks ] );
    ]
