module Spec = Dq_workload.Spec
module Generator = Dq_workload.Generator
module Zipf = Dq_workload.Zipf
open Dq_storage

let sample_ops spec n =
  let rng = Dq_util.Rng.create 7L in
  let gen = Generator.create ~spec ~rng ~client_index:1 in
  List.init n (fun _ -> Generator.next gen)

let write_fraction ops =
  let writes =
    List.length (List.filter (fun op -> op.Generator.kind = Generator.Write) ops)
  in
  float_of_int writes /. float_of_int (List.length ops)

let test_write_ratio_respected () =
  List.iter
    (fun w ->
      let ops = sample_ops { Spec.default with Spec.write_ratio = w } 20_000 in
      let actual = write_fraction ops in
      Alcotest.(check bool)
        (Printf.sprintf "ratio %.2f measured %.3f" w actual)
        true
        (abs_float (actual -. w) < 0.02))
    [ 0.; 0.05; 0.5; 1. ]

let test_private_object () =
  let ops = sample_ops Spec.default 100 in
  List.iter
    (fun op ->
      Alcotest.(check int) "own object" 1 (Key.index op.Generator.key);
      Alcotest.(check int) "volume 0" 0 (Key.volume op.Generator.key))
    ops

let test_locality () =
  let ops = sample_ops { Spec.default with Spec.locality = 0.9 } 20_000 in
  let close = List.length (List.filter (fun op -> op.Generator.use_closest) ops) in
  let frac = float_of_int close /. float_of_int (List.length ops) in
  Alcotest.(check bool) (Printf.sprintf "locality %.3f" frac) true (abs_float (frac -. 0.9) < 0.02)

let test_locality_extremes () =
  let all_close = sample_ops { Spec.default with Spec.locality = 1. } 100 in
  Alcotest.(check bool) "always closest" true
    (List.for_all (fun op -> op.Generator.use_closest) all_close);
  let never_close = sample_ops { Spec.default with Spec.locality = 0. } 100 in
  Alcotest.(check bool) "never closest" true
    (List.for_all (fun op -> not op.Generator.use_closest) never_close)

let test_shared_uniform_coverage () =
  let spec = { Spec.default with Spec.sharing = Spec.Shared_uniform { objects = 5 } } in
  let ops = sample_ops spec 5_000 in
  let seen = Array.make 5 0 in
  List.iter (fun op -> seen.(Key.index op.Generator.key) <- seen.(Key.index op.Generator.key) + 1) ops;
  Array.iteri
    (fun i n ->
      Alcotest.(check bool) (Printf.sprintf "object %d used roughly uniformly" i) true
        (n > 800 && n < 1200))
    seen

let test_zipf_skew () =
  let spec =
    { Spec.default with Spec.sharing = Spec.Shared_zipf { objects = 10; exponent = 1.2 } }
  in
  let ops = sample_ops spec 10_000 in
  let seen = Array.make 10 0 in
  List.iter (fun op -> seen.(Key.index op.Generator.key) <- seen.(Key.index op.Generator.key) + 1) ops;
  Alcotest.(check bool) "rank 0 most popular" true (seen.(0) > seen.(5));
  Alcotest.(check bool) "heavily skewed" true (seen.(0) > 3 * seen.(9))

let test_zipf_pmf () =
  let z = Zipf.create ~n:4 ~s:1. in
  (* Weights 1, 1/2, 1/3, 1/4 normalized by 25/12. *)
  let h = 25. /. 12. in
  Alcotest.(check (float 1e-9)) "pmf 0" (1. /. h) (Zipf.pmf z 0);
  Alcotest.(check (float 1e-9)) "pmf 3" (0.25 /. h) (Zipf.pmf z 3);
  let total = List.fold_left (fun acc k -> acc +. Zipf.pmf z k) 0. [ 0; 1; 2; 3 ] in
  Alcotest.(check (float 1e-9)) "sums to one" 1. total

let test_zipf_zero_exponent_uniform () =
  let z = Zipf.create ~n:5 ~s:0. in
  for k = 0 to 4 do
    Alcotest.(check (float 1e-9)) "uniform pmf" 0.2 (Zipf.pmf z k)
  done

let test_zipf_sample_range () =
  let z = Zipf.create ~n:7 ~s:0.8 in
  let rng = Dq_util.Rng.create 8L in
  for _ = 1 to 1000 do
    let k = Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 7)
  done

let run_lengths ops =
  (* Lengths of maximal same-kind runs. *)
  let rec go acc current_kind current_len = function
    | [] -> List.rev (current_len :: acc)
    | op :: rest ->
      if op.Generator.kind = current_kind then go acc current_kind (current_len + 1) rest
      else go (current_len :: acc) op.Generator.kind 1 rest
  in
  match ops with [] -> [] | op :: rest -> go [] op.Generator.kind 1 rest

let test_bursts_lengthen_runs () =
  let independent = sample_ops { Spec.default with Spec.write_ratio = 0.5 } 10_000 in
  let bursty =
    sample_ops { Spec.default with Spec.write_ratio = 0.5; burst_mean = Some 10. } 10_000
  in
  let mean xs = float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs) in
  let mi = mean (run_lengths independent) and mb = mean (run_lengths bursty) in
  Alcotest.(check bool)
    (Printf.sprintf "bursty runs (%.1f) longer than independent (%.1f)" mb mi)
    true (mb > 3. *. mi)

let test_bursts_preserve_ratio () =
  let ops =
    sample_ops { Spec.default with Spec.write_ratio = 0.3; burst_mean = Some 8. } 50_000
  in
  let actual = write_fraction ops in
  Alcotest.(check bool)
    (Printf.sprintf "ratio preserved %.3f" actual)
    true
    (abs_float (actual -. 0.3) < 0.03)

let test_spec_validation () =
  let invalid f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad write ratio" true
    (invalid (fun () -> Spec.validate { Spec.default with Spec.write_ratio = 1.5 }));
  Alcotest.(check bool) "bad locality" true
    (invalid (fun () -> Spec.validate { Spec.default with Spec.locality = -0.1 }));
  Alcotest.(check bool) "bad burst" true
    (invalid (fun () -> Spec.validate { Spec.default with Spec.burst_mean = Some 0.5 }));
  Alcotest.(check bool) "bad objects" true
    (invalid (fun () ->
         Spec.validate { Spec.default with Spec.sharing = Spec.Shared_uniform { objects = 0 } }))

let test_volume_mapping () =
  let spec = { Spec.default with Spec.volume_of = (fun i -> i mod 3) } in
  let rng = Dq_util.Rng.create 9L in
  let gen = Generator.create ~spec ~rng ~client_index:7 in
  let op = Generator.next gen in
  Alcotest.(check int) "volume of object 7" 1 (Key.volume op.Generator.key)

let prop_deterministic =
  QCheck.Test.make ~name:"generator is deterministic in the seed" ~count:50
    QCheck.(pair int64 (float_range 0. 1.))
    (fun (seed, w) ->
      let make () =
        let rng = Dq_util.Rng.create seed in
        Generator.create
          ~spec:{ Spec.default with Spec.write_ratio = w }
          ~rng ~client_index:0
      in
      let a = make () and b = make () in
      List.for_all
        (fun _ ->
          let x = Generator.next a and y = Generator.next b in
          x.Generator.kind = y.Generator.kind
          && Key.equal x.Generator.key y.Generator.key
          && x.Generator.use_closest = y.Generator.use_closest)
        (List.init 50 Fun.id))

let () =
  Alcotest.run "workload"
    [
      ( "generator",
        [
          Alcotest.test_case "write ratio" `Quick test_write_ratio_respected;
          Alcotest.test_case "private object" `Quick test_private_object;
          Alcotest.test_case "locality" `Quick test_locality;
          Alcotest.test_case "locality extremes" `Quick test_locality_extremes;
          Alcotest.test_case "shared uniform" `Quick test_shared_uniform_coverage;
          Alcotest.test_case "volume mapping" `Quick test_volume_mapping;
          Alcotest.test_case "spec validation" `Quick test_spec_validation;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "pmf" `Quick test_zipf_pmf;
          Alcotest.test_case "zero exponent" `Quick test_zipf_zero_exponent_uniform;
          Alcotest.test_case "sample range" `Quick test_zipf_sample_range;
        ] );
      ( "bursts",
        [
          Alcotest.test_case "longer runs" `Quick test_bursts_lengthen_runs;
          Alcotest.test_case "ratio preserved" `Quick test_bursts_preserve_ratio;
        ] );
      ("property", List.map QCheck_alcotest.to_alcotest [ prop_deterministic ]);
    ]
