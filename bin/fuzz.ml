(* dqr-fuzz - randomized fault-scenario fuzzing of the replication
   protocols. Every scenario is a pure function of its seed; a failure
   report names the seed, which replays the run exactly. *)

module Fuzz = Dq_harness.Fuzz
module Explore = Dq_harness.Explore
module Registry = Dq_harness.Registry
open Cmdliner

let builder_of_name = function
  | "dqvl" -> Some (Registry.dqvl ~volume_lease_ms:3_000. ())
  | "dq-basic" -> Some Registry.dq_basic
  | "majority" -> Some Registry.majority
  | "atomic-majority" -> Some Registry.atomic_majority
  | "dqvl-atomic" -> Some (Registry.dqvl_atomic ())
  | _ -> None

let run_explore runs base_seed =
  let dfs = Explore.explore ~budget:runs Explore.default_scenario in
  Format.printf "schedule DFS: %d runs, %d complete, %d distinct outcomes, %d violations@."
    dfs.Explore.runs dfs.Explore.complete_runs dfs.Explore.distinct_outcomes
    (List.length dfs.Explore.violations);
  let rnd = Explore.explore_random ~runs ~seed:base_seed Explore.default_scenario in
  Format.printf "schedule sampling: %d runs, %d complete, %d distinct outcomes, %d violations@."
    rnd.Explore.runs rnd.Explore.complete_runs rnd.Explore.distinct_outcomes
    (List.length rnd.Explore.violations);
  let all = dfs.Explore.violations @ rnd.Explore.violations in
  List.iter
    (fun (v : Explore.violation) ->
      Format.printf "counterexample schedule [%s]: %s@."
        (String.concat ";" (List.map string_of_int v.Explore.choices))
        v.Explore.detail)
    all;
  exit (if all = [] then 0 else 1)

let fuzz protocol runs base_seed verbose trace_file metrics_file =
  if protocol = "explore" then run_explore runs base_seed;
  match builder_of_name protocol with
  | None ->
    Printf.eprintf
      "unknown protocol %S (dqvl, dq-basic, majority, atomic-majority, dqvl-atomic, explore)\n"
      protocol;
    exit 2
  | Some builder ->
    let seeds = List.init runs (fun i -> Int64.add base_seed (Int64.of_int i)) in
    let trace = Option.map (fun _ -> Dq_telemetry.Trace.create ()) trace_file in
    let metrics = Option.map (fun _ -> Dq_telemetry.Metrics.create ()) metrics_file in
    let instrument i engine =
      let bus = Dq_sim.Engine.telemetry engine in
      Option.iter
        (fun t ->
          Dq_telemetry.Trace.set_process_name t ~pid:i
            (Printf.sprintf "%s seed=%Ld" protocol (Int64.add base_seed (Int64.of_int i)));
          Dq_telemetry.Bus.subscribe bus (Dq_telemetry.Trace.sink ~pid:i t))
        trace;
      Option.iter
        (fun m -> Dq_telemetry.Bus.subscribe bus (Dq_telemetry.Metrics.sink m))
        metrics
    in
    let checked = ref 0 in
    let failures =
      Fuzz.campaign builder ~seeds ~instrument ~on_progress:(fun i outcome ->
          incr checked;
          if verbose then
            Format.printf "[%4d] %a completed=%d failed=%d %s@." i Fuzz.pp_scenario
              outcome.Fuzz.scenario outcome.Fuzz.completed outcome.Fuzz.failed
              (if outcome.Fuzz.violations = [] then "ok" else "VIOLATION")
          else if (i + 1) mod 25 = 0 then Format.printf "%d scenarios checked@." (i + 1))
    in
    let write_outputs () =
      Option.iter
        (fun path ->
          let t = Option.get trace in
          Dq_telemetry.Trace.write_file t path;
          Format.printf "trace written to %s (%d events)@." path
            (Dq_telemetry.Trace.count t))
        trace_file;
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Dq_telemetry.Metrics.to_json (Option.get metrics));
          close_out oc;
          Format.printf "metrics written to %s@." path)
        metrics_file
    in
    if failures = [] then begin
      write_outputs ();
      Format.printf "all %d scenarios passed for %s@." !checked protocol;
      exit 0
    end
    else begin
      List.iter
        (fun outcome ->
          let s = outcome.Fuzz.scenario in
          Format.printf "@.counterexample %a:@." Fuzz.pp_scenario s;
          (* The seed and give-up counts on one line: everything needed
             to reproduce and triage from the console output alone. *)
          Format.printf "  seed=%Ld completed=%d failed=%d gave-up=%d@." s.Fuzz.seed
            outcome.Fuzz.completed outcome.Fuzz.failed outcome.Fuzz.gave_up;
          Format.printf "  replay: dqr-fuzz -p %s -n 1 --seed %Ld@." protocol s.Fuzz.seed;
          List.iter (fun v -> Format.printf "  %s@." v) outcome.Fuzz.violations)
        failures;
      write_outputs ();
      exit 1
    end

let cmd =
  let protocol =
    Arg.(value & opt string "dqvl" & info [ "protocol"; "p" ] ~docv:"PROTO" ~doc:"Protocol to fuzz.")
  in
  let runs = Arg.(value & opt int 50 & info [ "runs"; "n" ] ~docv:"N" ~doc:"Scenarios to run.") in
  let base_seed =
    Arg.(value & opt int64 1000L & info [ "seed" ] ~docv:"SEED" ~doc:"First scenario seed.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every scenario.") in
  let trace_file =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON timeline of all scenarios to $(docv) (one \
             Perfetto process group per scenario).")
  in
  let metrics_file =
    Arg.(
      value & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write an aggregated JSON metrics snapshot to $(docv).")
  in
  Cmd.v
    (Cmd.info "dqr-fuzz" ~version:"1.0.0"
       ~doc:"Randomized fault-scenario fuzzing with replayable seeds")
    Term.(const fuzz $ protocol $ runs $ base_seed $ verbose $ trace_file $ metrics_file)

let () = exit (Cmd.eval cmd)
