(* dqr-nemesis - the robustness campaign: run every protocol under
   seeded nemesis programs spanning all fault classes and emit a
   machine-readable JSON report ranking availability and staleness per
   fault class. Every scenario is a pure function of (base seed,
   protocol, fault class, index) and replays exactly. *)

module Fuzz = Dq_harness.Fuzz
module Nemesis = Dq_harness.Nemesis
module Registry = Dq_harness.Registry
module Rng = Dq_util.Rng
open Cmdliner

type cell = {
  protocol : string;
  fault_class : Nemesis.fault_class;
  mutable runs : int;
  mutable completed : int;
  mutable failed : int;
  mutable gave_up : int;
  mutable stale_reads : int;
  mutable reads_checked : int;
  mutable max_staleness_ms : float;
  mutable age_weight : float; (* sum of per-run mean_age_ms * reads, for the pooled mean *)
  mutable max_age_ms : float;
  mutable max_gap_ms : float;
  mutable recoveries_started : int;
  mutable recoveries_done : int;
  mutable sync_bytes : int;
  mutable sync_objects : int;
  mutable recovery_weight : float; (* sum of per-run mean_recovery_ms * done, for the pooled mean *)
  mutable max_recovery_ms : float;
  mutable violation_seeds : int64 list;
}

let availability cell =
  let settled = cell.completed + cell.failed in
  if settled = 0 then 0. else float_of_int cell.completed /. float_of_int settled

let stale_fraction ~stale_reads ~reads_checked =
  if reads_checked = 0 then 0. else float_of_int stale_reads /. float_of_int reads_checked

(* The scenario for one campaign cell: the seed-derived topology and
   workload, the legacy ad-hoc fault schedule disabled, and a nemesis
   program of the cell's class attached (derived from a salted stream
   of the same seed, so the program is independent of the scenario's
   own draws but still replayable). *)
let cell_scenario ~fault_class seed =
  let s = Fuzz.scenario_of_seed seed in
  let nemesis_rng = Rng.create (Int64.logxor seed 0x9E3779B97F4A7C15L) in
  let program = Nemesis.generate nemesis_rng fault_class ~n_servers:s.Fuzz.n_servers in
  { s with Fuzz.crashes = false; partition = false; nemesis = Some program }

(* {2 Hand-rolled JSON (no external dependencies)} *)

let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let json_of_report ~base_seed ~runs_per_cell ~cells =
  let buf = Buffer.create 4096 in
  let classes =
    List.filter
      (fun cls -> List.exists (fun c -> c.fault_class = cls) cells)
      Nemesis.all_classes
  in
  buf_addf buf "{\n  \"tool\": \"dqr-nemesis\",\n";
  buf_addf buf "  \"base_seed\": %Ld,\n  \"runs_per_cell\": %d,\n" base_seed runs_per_cell;
  buf_addf buf "  \"classes\": [\n";
  List.iteri
    (fun ci cls ->
      (* Availability first, then freshness: fewer stale reads ranks
         higher, staleness depth breaks the remaining ties. *)
      let ranked =
        List.filter (fun c -> c.fault_class = cls) cells
        |> List.sort (fun a b ->
               match Float.compare (availability b) (availability a) with
               | 0 -> (
                 match
                   Float.compare
                     (stale_fraction ~stale_reads:a.stale_reads ~reads_checked:a.reads_checked)
                     (stale_fraction ~stale_reads:b.stale_reads ~reads_checked:b.reads_checked)
                 with
                 | 0 -> Float.compare a.max_staleness_ms b.max_staleness_ms
                 | c -> c)
               | c -> c)
      in
      buf_addf buf "    {\n      \"class\": %S,\n      \"protocols\": [\n"
        (Nemesis.class_name cls);
      List.iteri
        (fun pi cell ->
          buf_addf buf
            "        {\"rank\": %d, \"protocol\": %S, \"runs\": %d, \"completed\": %d, \
             \"failed\": %d, \"gave_up\": %d, \"availability\": %s, \"stale_reads\": %d, \
             \"reads_checked\": %d, \"stale_fraction\": %s, \"max_staleness_ms\": %s, \
             \"mean_age_ms\": %s, \"max_age_ms\": %s, \"max_unavailability_ms\": %s, \
             \"recoveries_started\": %d, \"recoveries_done\": %d, \
             \"mean_recovery_ms\": %s, \"max_recovery_ms\": %s, \"sync_bytes\": %d, \
             \"sync_objects\": %d, \
             \"violations\": %d, \"violation_seeds\": [%s]}%s\n"
            (pi + 1) cell.protocol cell.runs cell.completed cell.failed cell.gave_up
            (json_float (availability cell))
            cell.stale_reads cell.reads_checked
            (json_float
               (stale_fraction ~stale_reads:cell.stale_reads ~reads_checked:cell.reads_checked))
            (json_float cell.max_staleness_ms)
            (json_float
               (if cell.reads_checked = 0 then 0.
                else cell.age_weight /. float_of_int cell.reads_checked))
            (json_float cell.max_age_ms)
            (json_float cell.max_gap_ms)
            cell.recoveries_started cell.recoveries_done
            (json_float
               (if cell.recoveries_done = 0 then 0.
                else cell.recovery_weight /. float_of_int cell.recoveries_done))
            (json_float cell.max_recovery_ms)
            cell.sync_bytes cell.sync_objects
            (List.length cell.violation_seeds)
            (String.concat ", "
               (List.rev_map (Printf.sprintf "%Ld") cell.violation_seeds))
            (if pi + 1 < List.length ranked then "," else ""))
        ranked;
      buf_addf buf "      ]\n    }%s\n" (if ci + 1 < List.length classes then "," else ""))
    classes;
  buf_addf buf "  ],\n  \"overall\": [\n";
  let protocols = List.sort_uniq compare (List.map (fun c -> c.protocol) cells) in
  let overall =
    List.map
      (fun name ->
        let mine = List.filter (fun c -> c.protocol = name) cells in
        let sum f = List.fold_left (fun acc c -> acc + f c) 0 mine in
        let completed = sum (fun c -> c.completed) and failed = sum (fun c -> c.failed) in
        let settled = completed + failed in
        let avail =
          if settled = 0 then 0. else float_of_int completed /. float_of_int settled
        in
        let max_stale =
          List.fold_left (fun acc c -> Float.max acc c.max_staleness_ms) 0. mine
        in
        let stale_reads = sum (fun c -> c.stale_reads) in
        let reads_checked = sum (fun c -> c.reads_checked) in
        let age_weight = List.fold_left (fun acc c -> acc +. c.age_weight) 0. mine in
        let mean_age =
          if reads_checked = 0 then 0. else age_weight /. float_of_int reads_checked
        in
        let max_age = List.fold_left (fun acc c -> Float.max acc c.max_age_ms) 0. mine in
        ( name,
          avail,
          stale_fraction ~stale_reads ~reads_checked,
          max_stale,
          mean_age,
          max_age,
          sum (fun c -> List.length c.violation_seeds) ))
      protocols
    |> List.sort (fun (_, a, fa, sa, _, _, _) (_, b, fb, sb, _, _, _) ->
           match Float.compare b a with
           | 0 -> (
             match Float.compare fa fb with
             | 0 -> Float.compare sa sb
             | c -> c)
           | c -> c)
  in
  List.iteri
    (fun i (name, avail, stale_frac, max_stale, mean_age, max_age, violations) ->
      buf_addf buf
        "    {\"rank\": %d, \"protocol\": %S, \"availability\": %s, \
         \"stale_fraction\": %s, \"max_staleness_ms\": %s, \"mean_age_ms\": %s, \
         \"max_age_ms\": %s, \"violations\": %d}%s\n"
        (i + 1) name (json_float avail) (json_float stale_frac) (json_float max_stale)
        (json_float mean_age) (json_float max_age) violations
        (if i + 1 < List.length overall then "," else ""))
    overall;
  buf_addf buf "  ]\n}\n";
  Buffer.contents buf

let parse_classes = function
  | "all" -> Ok Nemesis.all_classes
  | spec ->
    let names = String.split_on_char ',' spec in
    let classes = List.map (fun n -> (n, Nemesis.class_of_name (String.trim n))) names in
    (match List.find_opt (fun (_, c) -> c = None) classes with
    | Some (bad, _) ->
      Error
        (Printf.sprintf "unknown fault class %S (known: %s)" bad
           (String.concat ", " (List.map Nemesis.class_name Nemesis.all_classes)))
    | None -> Ok (List.filter_map snd classes))

let run_campaign runs base_seed out classes_spec verbose trace_file metrics_file =
  match parse_classes classes_spec with
  | Error msg ->
    prerr_endline msg;
    exit 2
  | Ok classes ->
    let builders = Registry.paper_five in
    let cells = ref [] in
    let scenario_index = ref 0 in
    let total = List.length classes * List.length builders * runs in
    (* One shared trace/metrics accumulator across the whole campaign:
       each scenario gets its own pid (its index) so Perfetto renders it
       as a separate process group. *)
    let trace = Option.map (fun _ -> Dq_telemetry.Trace.create ()) trace_file in
    let metrics = Option.map (fun _ -> Dq_telemetry.Metrics.create ()) metrics_file in
    List.iter
      (fun fault_class ->
        List.iter
          (fun (builder : Registry.builder) ->
            let cell =
              {
                protocol = builder.Registry.name;
                fault_class;
                runs = 0;
                completed = 0;
                failed = 0;
                gave_up = 0;
                stale_reads = 0;
                reads_checked = 0;
                max_staleness_ms = 0.;
                age_weight = 0.;
                max_age_ms = 0.;
                max_gap_ms = 0.;
                recoveries_started = 0;
                recoveries_done = 0;
                sync_bytes = 0;
                sync_objects = 0;
                recovery_weight = 0.;
                max_recovery_ms = 0.;
                violation_seeds = [];
              }
            in
            cells := cell :: !cells;
            for i = 0 to runs - 1 do
              let pid = !scenario_index in
              let seed = Int64.add base_seed (Int64.of_int pid) in
              incr scenario_index;
              let scenario = cell_scenario ~fault_class seed in
              (* ROWA-Async is weakly consistent by design: its stale
                 reads are the staleness metric, not a violation. *)
              let check_regular = builder.Registry.name <> "rowa-async" in
              let instrument engine =
                let bus = Dq_sim.Engine.telemetry engine in
                Option.iter
                  (fun t ->
                    Dq_telemetry.Trace.set_process_name t ~pid
                      (Printf.sprintf "%s/%s seed=%Ld"
                         (Nemesis.class_name fault_class) cell.protocol seed);
                    Dq_telemetry.Bus.subscribe bus (Dq_telemetry.Trace.sink ~pid t))
                  trace;
                Option.iter
                  (fun m -> Dq_telemetry.Bus.subscribe bus (Dq_telemetry.Metrics.sink m))
                  metrics
              in
              let outcome = Fuzz.run ~check_regular ~instrument builder scenario in
              cell.runs <- cell.runs + 1;
              cell.completed <- cell.completed + outcome.Fuzz.completed;
              cell.failed <- cell.failed + outcome.Fuzz.failed;
              cell.gave_up <- cell.gave_up + outcome.Fuzz.gave_up;
              cell.stale_reads <- cell.stale_reads + outcome.Fuzz.stale_reads;
              cell.reads_checked <- cell.reads_checked + outcome.Fuzz.reads_checked;
              cell.max_staleness_ms <-
                Float.max cell.max_staleness_ms outcome.Fuzz.max_staleness_ms;
              cell.age_weight <-
                cell.age_weight
                +. (outcome.Fuzz.mean_age_ms *. float_of_int outcome.Fuzz.reads_checked);
              cell.max_age_ms <- Float.max cell.max_age_ms outcome.Fuzz.max_age_ms;
              cell.max_gap_ms <- Float.max cell.max_gap_ms outcome.Fuzz.max_gap_ms;
              cell.recoveries_started <-
                cell.recoveries_started + outcome.Fuzz.recoveries_started;
              cell.recoveries_done <- cell.recoveries_done + outcome.Fuzz.recoveries_done;
              cell.sync_bytes <- cell.sync_bytes + outcome.Fuzz.sync_bytes;
              cell.sync_objects <- cell.sync_objects + outcome.Fuzz.sync_objects;
              cell.recovery_weight <-
                cell.recovery_weight
                +. (outcome.Fuzz.mean_recovery_ms
                   *. float_of_int outcome.Fuzz.recoveries_done);
              cell.max_recovery_ms <-
                Float.max cell.max_recovery_ms outcome.Fuzz.max_recovery_ms;
              if outcome.Fuzz.violations <> [] then begin
                cell.violation_seeds <- seed :: cell.violation_seeds;
                (* Everything needed to replay from the console alone:
                   the seed (the scenario is a pure function of it) plus
                   the outcome counters, give-ups included. *)
                Format.eprintf
                  "VIOLATION %s/%s seed=%Ld (completed=%d failed=%d gave-up=%d):@."
                  (Nemesis.class_name fault_class) cell.protocol seed
                  outcome.Fuzz.completed outcome.Fuzz.failed outcome.Fuzz.gave_up;
                Format.eprintf "  scenario %a@." Fuzz.pp_scenario outcome.Fuzz.scenario;
                List.iter (fun v -> Format.eprintf "  %s@." v) outcome.Fuzz.violations
              end;
              if verbose then
                Format.printf "[%s/%s %d/%d] %a completed=%d failed=%d gave-up=%d %s@."
                  (Nemesis.class_name fault_class) cell.protocol (i + 1) runs
                  Fuzz.pp_scenario outcome.Fuzz.scenario outcome.Fuzz.completed
                  outcome.Fuzz.failed outcome.Fuzz.gave_up
                  (if outcome.Fuzz.violations = [] then "ok" else "VIOLATION")
              else if !scenario_index mod 25 = 0 then
                Format.printf "%d/%d scenarios run@." !scenario_index total
            done)
          builders)
      classes;
    let cells = List.rev !cells in
    let json = json_of_report ~base_seed ~runs_per_cell:runs ~cells in
    (match out with
    | "-" -> print_string json
    | path ->
      let oc = open_out path in
      output_string oc json;
      close_out oc;
      Format.printf "report written to %s@." path);
    Option.iter
      (fun path ->
        let t = Option.get trace in
        Dq_telemetry.Trace.write_file t path;
        Format.printf "trace written to %s (%d events)@." path (Dq_telemetry.Trace.count t))
      trace_file;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Dq_telemetry.Metrics.to_json (Option.get metrics));
        close_out oc;
        Format.printf "metrics written to %s@." path)
      metrics_file;
    let violations =
      List.fold_left (fun acc c -> acc + List.length c.violation_seeds) 0 cells
    in
    Format.printf "%d scenarios, %d violation(s)@." total violations;
    exit (if violations = 0 then 0 else 1)

let cmd =
  let runs =
    Arg.(
      value & opt int 6
      & info [ "runs"; "n" ] ~docv:"N" ~doc:"Scenarios per (fault class, protocol) cell.")
  in
  let base_seed =
    Arg.(value & opt int64 1000L & info [ "seed" ] ~docv:"SEED" ~doc:"First scenario seed.")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"JSON report path ('-' for stdout).")
  in
  let classes =
    Arg.(
      value & opt string "all"
      & info [ "classes" ] ~docv:"CLASSES"
          ~doc:"Comma-separated fault classes to run (default: all).")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every scenario.") in
  let trace_file =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON timeline of the whole campaign to $(docv) \
             (one Perfetto process group per scenario).")
  in
  let metrics_file =
    Arg.(
      value & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write an aggregated JSON metrics snapshot to $(docv).")
  in
  Cmd.v
    (Cmd.info "dqr-nemesis" ~version:"1.0.0"
       ~doc:
         "Robustness campaign: all protocols under seeded nemesis fault programs, with a \
          JSON report ranking availability and staleness per fault class")
    Term.(
      const run_campaign $ runs $ base_seed $ out $ classes $ verbose $ trace_file
      $ metrics_file)

let () = exit (Cmd.eval cmd)
