(* dqr-lint - the project invariant linter. Loads the .cmt typedtrees
   dune already produced under _build and checks the load-bearing
   conventions the reproduction's trustworthiness rests on: no
   polymorphic compare on hot paths (R1), no ambient randomness (R2),
   no wall clock in simulation code (R3), telemetry publishes guarded
   by Bus.subscribed (R4), and no captured-state mutation inside
   domain-pool workers (R5). See DESIGN.md section 9. *)

module Diagnostic = Dq_lint.Diagnostic
module Rules = Dq_lint.Rules
module Engine = Dq_lint.Engine
open Cmdliner

let list_rules () =
  print_endline "rule  name                    scope";
  print_endline "----  ----                    -----";
  List.iter
    (fun (r : Rules.t) ->
      Printf.printf "%-4s  %-22s  %s\n      %s\n" r.id r.name r.scope_doc
        r.summary)
    Rules.all

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let select_rules spec =
  match spec with
  | "all" -> Ok Rules.all
  | spec ->
    let keys =
      String.split_on_char ',' spec
      |> List.map String.trim
      |> List.filter (fun s -> not (String.equal s ""))
    in
    let missing =
      List.filter (fun k -> Option.is_none (Rules.find k)) keys
    in
    (match missing with
    | [] -> Ok (List.filter_map Rules.find keys)
    | m -> Error (Printf.sprintf "unknown rule(s): %s" (String.concat ", " m)))

let run build_dir json_out allowlist_file rules_spec all_scopes show_rules
    quiet paths =
  if show_rules then begin
    list_rules ();
    0
  end
  else
    match select_rules rules_spec with
    | Error msg ->
      prerr_endline ("dqr-lint: " ^ msg);
      2
    | Ok rules ->
      if not (Sys.file_exists build_dir && Sys.is_directory build_dir) then begin
        Printf.eprintf
          "dqr-lint: build dir %s not found (run 'dune build' first)\n"
          build_dir;
        2
      end
      else begin
        let allowlist =
          match allowlist_file with
          | None -> []
          | Some f -> Engine.parse_allowlist (read_file f)
        in
        let cfg =
          {
            Engine.rules;
            ignore_scopes = all_scopes;
            exclude_paths =
              (if all_scopes then []
               else Engine.default_config.exclude_paths);
            allowlist;
          }
        in
        let diags, errors = Engine.lint_build_dir ~paths cfg build_dir in
        List.iter (fun e -> Printf.eprintf "dqr-lint: warning: %s\n" e) errors;
        if not quiet then
          List.iter (fun d -> print_endline (Diagnostic.to_string d)) diags;
        (match json_out with
        | None -> ()
        | Some "-" -> print_string (Diagnostic.list_to_json diags)
        | Some f -> write_file f (Diagnostic.list_to_json diags));
        let n = List.length diags in
        if not quiet then
          Printf.printf "dqr-lint: %d finding%s\n" n (if n = 1 then "" else "s");
        if n > 0 then 1 else 0
      end

let cmd =
  let build_dir =
    Arg.(
      value & opt string "_build/default"
      & info [ "build-dir" ] ~docv:"DIR"
          ~doc:"Build context root holding the .cmt artifacts.")
  in
  let json_out =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the findings as JSON to $(docv) ('-' for stdout).")
  in
  let allowlist =
    Arg.(
      value & opt (some string) None
      & info [ "allowlist" ] ~docv:"FILE"
          ~doc:
            "Allowlist file: lines of '<rule-or-*> <path-substring>', \
             #-comments allowed.")
  in
  let rules =
    Arg.(
      value & opt string "all"
      & info [ "rules" ] ~docv:"LIST"
          ~doc:"Comma-separated rule ids or names to run (default: all).")
  in
  let all_scopes =
    Arg.(
      value & flag
      & info [ "all-scopes" ]
          ~doc:
            "Ignore per-directory scoping (and the default exclusions) and \
             run every rule everywhere.")
  in
  let list_rules =
    Arg.(value & flag & info [ "list-rules" ] ~doc:"Print the rule table.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-finding output.")
  in
  let paths =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:"Project-relative path prefixes to restrict the lint to.")
  in
  Cmd.v
    (Cmd.info "dqr-lint" ~version:"1.0.0"
       ~doc:
         "Typedtree linter for the dual-quorum reproduction: determinism, \
          hot-path purity and domain-safety invariants, machine-checked from \
          the .cmt artifacts dune already builds")
    Term.(
      const run $ build_dir $ json_out $ allowlist $ rules $ all_scopes
      $ list_rules $ quiet $ paths)

let () = exit (Cmd.eval' cmd)
