(* dqr-lint - the project invariant linter. Loads the .cmt typedtrees
   dune already produced under _build and checks the load-bearing
   conventions the reproduction's trustworthiness rests on: no
   polymorphic compare on hot paths (R1), no ambient randomness (R2),
   no wall clock in simulation code (R3), telemetry publishes guarded
   by Bus.subscribed (R4), no captured-state mutation inside
   domain-pool workers (R5), no raw engine timers in node-scoped code
   (R6), no hash-ordered fold results escaping (R7), no partial
   functions (R8), and no silent message drops (R9). See DESIGN.md
   section 9. *)

module Diagnostic = Dq_lint.Diagnostic
module Rules = Dq_lint.Rules
module Engine = Dq_lint.Engine
module Sarif = Dq_lint.Sarif
open Cmdliner

let list_rules () =
  print_endline "rule  name                    scope";
  print_endline "----  ----                    -----";
  List.iter
    (fun (r : Rules.t) ->
      Printf.printf "%-4s  %-22s  %s\n      %s\n" r.id r.name r.scope_doc
        r.summary)
    Rules.all

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let select_rules spec =
  match spec with
  | "all" -> Ok Rules.all
  | spec ->
    let keys =
      String.split_on_char ',' spec
      |> List.map String.trim
      |> List.filter (fun s -> not (String.equal s ""))
    in
    let missing =
      List.filter (fun k -> Option.is_none (Rules.find k)) keys
    in
    (match missing with
    | [] -> Ok (List.filter_map Rules.find keys)
    | m -> Error (Printf.sprintf "unknown rule(s): %s" (String.concat ", " m)))

let emit out contents =
  match out with
  | None -> ()
  | Some "-" -> print_string contents
  | Some f -> write_file f contents

let run build_dir json_out sarif_out cache_file jobs allowlist_file rules_spec
    ignore_scopes all_scopes show_rules quiet paths =
  if show_rules then begin
    list_rules ();
    0
  end
  else
    match select_rules rules_spec with
    | Error msg ->
      prerr_endline ("dqr-lint: " ^ msg);
      2
    | Ok rules ->
      if not (Sys.file_exists build_dir && Sys.is_directory build_dir) then begin
        Printf.eprintf
          "dqr-lint: build dir %s not found (run 'dune build' first)\n"
          build_dir;
        2
      end
      else begin
        ignore all_scopes;
        let allowlist =
          match allowlist_file with
          | None -> []
          | Some f -> Engine.parse_allowlist (read_file f)
        in
        let cfg =
          {
            Engine.rules;
            ignore_scopes;
            exclude_paths =
              (if ignore_scopes then []
               else Engine.default_config.exclude_paths);
            allowlist;
          }
        in
        let jobs = if jobs = 0 then Dq_par.Pool.default_jobs () else jobs in
        let diags, errors, stats =
          Engine.lint_build_dir ~paths ~jobs ?cache_file cfg build_dir
        in
        List.iter (fun e -> Printf.eprintf "dqr-lint: warning: %s\n" e) errors;
        if not quiet then
          List.iter (fun d -> print_endline (Diagnostic.to_string d)) diags;
        emit json_out (Diagnostic.list_to_json ~rules diags);
        emit sarif_out (Sarif.to_string ~version:Engine.version ~rules diags);
        let n = List.length diags in
        if not quiet then
          Printf.printf
            "dqr-lint: %d finding%s (%d cmts: %d analyzed, %d cached)\n" n
            (if n = 1 then "" else "s")
            stats.Engine.cmts stats.Engine.analyzed stats.Engine.cache_hits;
        if n > 0 then 1 else 0
      end

let cmd =
  let build_dir =
    Arg.(
      value & opt string "_build/default"
      & info [ "build-dir" ] ~docv:"DIR"
          ~doc:"Build context root holding the .cmt artifacts.")
  in
  let json_out =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the findings as schema-2 JSON to $(docv) ('-' for \
             stdout).")
  in
  let sarif_out =
    Arg.(
      value & opt (some string) None
      & info [ "sarif" ] ~docv:"FILE"
          ~doc:
            "Write the findings as SARIF 2.1.0 to $(docv) ('-' for stdout), \
             for code-scanning upload.")
  in
  let cache_file =
    Arg.(
      value & opt (some string) None
      & info [ "cache" ] ~docv:"FILE"
          ~doc:
            "Incremental cache: skip re-analyzing .cmt files whose content \
             digest is unchanged since the last run with the same \
             configuration. Reports are byte-identical with or without the \
             cache.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Fan the per-cmt analysis across $(docv) domains via \
             Dq_par.Pool (0 = DQ_JOBS or the core count). Results are \
             independent of $(docv).")
  in
  let allowlist =
    Arg.(
      value & opt (some string) None
      & info [ "allowlist" ] ~docv:"FILE"
          ~doc:
            "Allowlist file: lines of '<rule-or-*> <path-substring>', \
             #-comments allowed.")
  in
  let rules =
    Arg.(
      value & opt string "all"
      & info [ "rules" ] ~docv:"LIST"
          ~doc:"Comma-separated rule ids or names to run (default: all).")
  in
  let ignore_scopes =
    Arg.(
      value & flag
      & info [ "ignore-scopes" ]
          ~doc:
            "Debug aid: run every rule on every file, ignoring both the \
             per-rule directory scoping and the default exclusions (so the \
             intentionally-violating lint fixtures flag too).")
  in
  let all_scopes =
    Arg.(
      value & flag
      & info [ "all-scopes" ]
          ~doc:
            "Lint every scope of the tree (lib/, bin/, test/, bench/). This \
             is also the default; the flag is kept for compatibility. \
             Per-rule directory scoping is part of each rule's definition — \
             a rule outside its scope is vacuous, not violated; use \
             $(b,--ignore-scopes) to override scoping for rule debugging.")
  in
  let list_rules =
    Arg.(value & flag & info [ "list-rules" ] ~doc:"Print the rule table.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-finding output.")
  in
  let paths =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:"Project-relative path prefixes to restrict the lint to.")
  in
  Cmd.v
    (Cmd.info "dqr-lint" ~version:Dq_lint.Engine.version
       ~doc:
         "Typedtree linter for the dual-quorum reproduction: determinism, \
          hot-path purity, domain-safety and protocol-lifecycle invariants, \
          machine-checked from the .cmt artifacts dune already builds")
    Term.(
      const run $ build_dir $ json_out $ sarif_out $ cache_file $ jobs
      $ allowlist $ rules $ ignore_scopes $ all_scopes $ list_rules $ quiet
      $ paths)

let () = exit (Cmd.eval' cmd)
