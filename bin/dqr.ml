(* dqr - the dual-quorum replication experiment driver.

   Subcommands:
     fig <id>        regenerate one of the paper's figures (6a..9b)
     ablation <id>   run one of the ablation studies
     run             run a custom workload against a chosen protocol
     avail           print the analytical availability model
     overhead        print the analytical overhead model *)

module E = Dq_harness.Experiment
module Render = Dq_harness.Render
module Registry = Dq_harness.Registry
module Driver = Dq_harness.Driver
module Checker = Dq_harness.Regular_checker
module Spec = Dq_workload.Spec
module Table = Dq_util.Table
open Cmdliner

let seed_arg =
  let doc = "Random seed (the whole simulation is deterministic in it)." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)

let ops_arg default =
  let doc = "Operations per application client." in
  Arg.(value & opt int default & info [ "ops" ] ~docv:"N" ~doc)

module Csv = Dq_harness.Csv

(* --- fig ---------------------------------------------------------------- *)

let csv_note = function
  | Some path -> Printf.printf "(wrote %s)\n" path
  | None -> ()

let print_fig id seed ops csv_dir =
  let f2 x = Printf.sprintf "%.2f" x in
  let csv_series ~name ~x_label ~x_of points =
    csv_note
      (Option.map (fun dir -> Csv.write_series ~dir ~name ~x_label ~x_of points) csv_dir)
  in
  let csv_rows ~name rows =
    csv_note
      (Option.map
         (fun dir ->
           Csv.write_rows ~dir ~name
             ~header:[ "protocol"; "read_ms"; "write_ms"; "overall_ms"; "completed"; "failed" ]
             (List.map
                (fun (r : E.response_row) ->
                  [
                    r.E.protocol;
                    Printf.sprintf "%.3f" r.E.read_ms;
                    Printf.sprintf "%.3f" r.E.write_ms;
                    Printf.sprintf "%.3f" r.E.overall_ms;
                    string_of_int r.E.completed;
                    string_of_int r.E.failed;
                  ])
                rows))
         csv_dir)
  in
  match id with
  | "6a" ->
    let rows = E.fig6a ~seed ~ops () in
    Table.print (Render.response_rows ~title:"fig6a: 5% writes" rows);
    csv_rows ~name:"fig6a" rows
  | "6b" ->
    let sweep = E.fig6b ~seed ~ops () in
    Table.print (Render.sweep ~title:"fig6b:" ~x_label:"write ratio" ~x_of:f2 sweep);
    csv_series ~name:"fig6b" ~x_label:"write_ratio" ~x_of:f2
      (List.map
         (fun (w, rows) ->
           (w, List.map (fun (r : E.response_row) -> (r.E.protocol, r.E.overall_ms)) rows))
         sweep)
  | "7a" ->
    let rows = E.fig7a ~seed ~ops () in
    Table.print (Render.response_rows ~title:"fig7a: 5% writes, 90% locality" rows);
    csv_rows ~name:"fig7a" rows
  | "7b" ->
    let sweep = E.fig7b ~seed ~ops () in
    Table.print (Render.sweep ~title:"fig7b:" ~x_label:"locality" ~x_of:f2 sweep);
    csv_series ~name:"fig7b" ~x_label:"locality" ~x_of:f2
      (List.map
         (fun (l, rows) ->
           (l, List.map (fun (r : E.response_row) -> (r.E.protocol, r.E.overall_ms)) rows))
         sweep)
  | "8a" ->
    let sweep = E.fig8a () in
    Table.print
      (Render.series ~title:"fig8a: unavailability," ~x_label:"write ratio" ~x_of:f2
         ~fmt:Render.scientific sweep);
    csv_series ~name:"fig8a" ~x_label:"write_ratio" ~x_of:f2 sweep
  | "8b" ->
    let sweep = E.fig8b () in
    Table.print
      (Render.series ~title:"fig8b: unavailability," ~x_label:"replicas"
         ~x_of:string_of_int ~fmt:Render.scientific sweep);
    csv_series ~name:"fig8b" ~x_label:"replicas" ~x_of:string_of_int sweep
  | "9a" ->
    let sweep = E.fig9a () in
    csv_series ~name:"fig9a" ~x_label:"write_ratio" ~x_of:f2 sweep;
    Table.print
      (Render.series ~title:"fig9a: msgs/request (model)," ~x_label:"write ratio"
         ~x_of:f2 sweep);
    let measured = E.fig9a_measured ~seed ~ops () in
    Table.print
      (Render.series ~title:"fig9a: msgs/request (measured dqvl)," ~x_label:"write ratio"
         ~x_of:f2
         (List.map (fun (w, v) -> (w, [ ("dqvl", v) ])) measured))
  | "9b" ->
    let sweep = E.fig9b () in
    Table.print
      (Render.series ~title:"fig9b: msgs/request," ~x_label:"OQS size"
         ~x_of:string_of_int sweep);
    csv_series ~name:"fig9b" ~x_label:"oqs_size" ~x_of:string_of_int sweep
  | "8m" ->
    (* simulation cross-check of figure 8 *)
    let t = Table.create ~header:[ "protocol"; "measured unavailability (p=0.1)" ] in
    List.iter
      (fun (name, u) -> Table.add_row t [ name; Render.scientific u ])
      (E.fig8_measured ~seed ~ops ());
    Table.print t
  | other -> Printf.eprintf "unknown figure %S (expected 6a..9b, or 8m)\n" other

let fig_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE" ~doc:"6a, 6b, 7a, 7b, 8a, 8b, 9a or 9b.")
  in
  let csv_dir =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write the data as DIR/<figure>.csv.")
  in
  let run id seed ops csv = print_fig id seed ops csv in
  Cmd.v (Cmd.info "fig" ~doc:"Regenerate one of the paper's figures")
    Term.(const run $ id $ seed_arg $ ops_arg 200 $ csv_dir)

(* --- ablation ------------------------------------------------------------ *)

let print_ablation id seed ops =
  match id with
  | "leases" ->
    Table.print
      (Render.response_rows ~title:"ablation: volume leases" (E.ablation_leases ~seed ~ops ()))
  | "lease-len" ->
    let rows = E.ablation_lease_len ~seed ~ops () in
    Table.print
      (Render.response_rows ~title:"ablation: lease length"
         (List.map
            (fun (lease, r) ->
              { r with E.protocol = Printf.sprintf "dqvl L=%.0fms" lease })
            rows))
  | "bursts" ->
    let rows = E.ablation_bursts ~seed ~ops () in
    Table.print
      (Render.response_rows ~title:"ablation: burst length (w=0.5)"
         (List.map
            (fun (mean, r) -> { r with E.protocol = Printf.sprintf "dqvl burst=%.0f" mean })
            rows))
  | "orq" ->
    let rows = E.ablation_orq ~seed ~ops () in
    Table.print
      (Render.response_rows ~title:"ablation: OQS read quorum size"
         (List.map (fun (_, r) -> r) rows))
  | "grid" ->
    Table.print
      (Render.series ~title:"ablation: grid vs majority unavailability," ~x_label:"replicas"
         ~x_of:string_of_int ~fmt:Render.scientific (E.ablation_grid ()))
  | "atomic" ->
    Table.print
      (Render.response_rows ~title:"ablation: atomic semantics" (E.ablation_atomic ~seed ~ops ()))
  | "object-lease" ->
    let t = Table.create ~header:[ "config"; "msgs/request"; "mean write ms" ] in
    List.iter
      (fun (name, mpr, write_ms) ->
        Table.add_row t [ name; Printf.sprintf "%.1f" mpr; Printf.sprintf "%.1f" write_ms ])
      (E.ablation_object_lease ~seed ~ops ());
    Table.print t
  | "staleness" ->
    let t = Table.create ~header:[ "protocol"; "stale"; "mean behind ms"; "max behind ms" ] in
    List.iter
      (fun (r : E.staleness_row) ->
        Table.add_row t
          [
            r.E.s_protocol;
            Printf.sprintf "%.1f%%" (100. *. r.E.s_stale_fraction);
            Printf.sprintf "%.0f" r.E.s_mean_behind_ms;
            Printf.sprintf "%.0f" r.E.s_max_behind_ms;
          ])
      (E.ablation_staleness ~seed ~ops ());
    Table.print t
  | other -> Printf.eprintf "unknown ablation %S\n" other

let ablation_cmd =
  let id =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"ABLATION"
          ~doc:"leases, lease-len, bursts, orq, grid, atomic, object-lease or staleness.")
  in
  Cmd.v (Cmd.info "ablation" ~doc:"Run one of the ablation studies")
    Term.(const print_ablation $ id $ seed_arg $ ops_arg 120)

(* --- run ----------------------------------------------------------------- *)

let write_text_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run_custom protocol seed ops servers clients write_ratio locality objects verbose
    trace_file metrics_file =
  match Registry.find protocol with
  | None ->
    Printf.eprintf "unknown protocol %S (%s)\n" protocol
      (String.concat ", " (Registry.known_names ()))
  | Some builder ->
    let engine = Dq_sim.Engine.create ~seed () in
    if verbose then Dq_sim.Sim_log.setup ~level:Logs.Debug engine;
    let bus = Dq_sim.Engine.telemetry engine in
    let trace =
      Option.map
        (fun _ ->
          let t = Dq_telemetry.Trace.create () in
          Dq_telemetry.Trace.set_process_name t ~pid:0
            (Printf.sprintf "dqr run %s seed=%Ld" protocol seed);
          Dq_telemetry.Bus.subscribe bus (Dq_telemetry.Trace.sink t);
          t)
        trace_file
    in
    let metrics =
      Option.map
        (fun _ ->
          let m = Dq_telemetry.Metrics.create () in
          Dq_telemetry.Bus.subscribe bus (Dq_telemetry.Metrics.sink m);
          m)
        metrics_file
    in
    let topology = Dq_net.Topology.make ~n_servers:servers ~n_clients:clients () in
    let instance = builder.Registry.build engine topology () in
    let spec =
      {
        Spec.default with
        Spec.write_ratio;
        locality;
        sharing =
          (if objects = 0 then Spec.Private_object else Spec.Shared_uniform { objects });
      }
    in
    let config = { (Driver.default_config spec) with Driver.ops_per_client = ops } in
    let result = Driver.run engine topology instance.Registry.api config in
    let report = Checker.check result.Driver.history in
    Printf.printf "protocol            %s\n" result.Driver.protocol;
    Printf.printf "issued/completed    %d/%d (%d failed)\n" result.Driver.issued
      result.Driver.completed result.Driver.failed;
    Format.printf "read latency (ms)   %a@." Dq_util.Stats.pp_summary result.Driver.read_latency;
    Format.printf "write latency (ms)  %a@." Dq_util.Stats.pp_summary result.Driver.write_latency;
    Printf.printf "messages/request    %.2f\n" result.Driver.messages_per_request;
    Printf.printf "bytes/request       %.0f\n" result.Driver.bytes_per_request;
    Printf.printf "throughput          %.1f ops/s over %.1f s\n" result.Driver.throughput_per_s
      (result.Driver.elapsed_ms /. 1000.);
    Format.printf "consistency         %a@." Checker.pp_report report;
    let samples = Dq_util.Stats.to_list result.Driver.all_latency in
    if samples <> [] then begin
      Printf.printf "\nlatency distribution (ms):\n";
      print_string
        (Dq_util.Histogram.render
           (Dq_util.Histogram.of_samples ~buckets:[ 20.; 100.; 200.; 400.; 800. ] samples))
    end;
    Option.iter
      (fun path ->
        let t = Option.get trace in
        Dq_telemetry.Trace.write_file t path;
        Printf.printf "(wrote %s: %d trace events)\n" path (Dq_telemetry.Trace.count t))
      trace_file;
    Option.iter
      (fun path ->
        write_text_file path (Dq_telemetry.Metrics.to_json (Option.get metrics));
        Printf.printf "(wrote %s)\n" path)
      metrics_file

let run_cmd =
  let protocol =
    Arg.(value & opt string "dqvl" & info [ "protocol"; "p" ] ~docv:"PROTO" ~doc:"Protocol to run.")
  in
  let servers = Arg.(value & opt int 9 & info [ "servers" ] ~docv:"N" ~doc:"Edge servers.") in
  let clients = Arg.(value & opt int 3 & info [ "clients" ] ~docv:"N" ~doc:"Application clients.") in
  let write_ratio =
    Arg.(value & opt float 0.05 & info [ "write-ratio"; "w" ] ~docv:"W" ~doc:"Write ratio.")
  in
  let locality =
    Arg.(value & opt float 1.0 & info [ "locality"; "l" ] ~docv:"L" ~doc:"Access locality.")
  in
  let objects =
    Arg.(
      value & opt int 0
      & info [ "objects" ] ~docv:"K" ~doc:"Shared objects (0 = one private object per client).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Trace protocol events (virtual-time log).")
  in
  let trace_file =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON timeline of the run to $(docv) (open it in \
             ui.perfetto.dev or chrome://tracing).")
  in
  let metrics_file =
    Arg.(
      value & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a JSON metrics snapshot (event counters, per-label message tables, \
             latency histograms) to $(docv).")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a custom workload")
    Term.(
      const run_custom $ protocol $ seed_arg $ ops_arg 200 $ servers $ clients $ write_ratio
      $ locality $ objects $ verbose $ trace_file $ metrics_file)

(* --- bench ---------------------------------------------------------------- *)

module Scenario = Dq_bench.Scenario
module Results = Dq_bench.Results
module Bench_diff = Dq_bench.Diff

let bench_list () =
  let t = Table.create ~header:[ "scenario"; "v"; "protocols"; "description" ] in
  List.iter
    (fun (s : Scenario.t) ->
      Table.add_row t
        [
          s.Scenario.name;
          string_of_int s.Scenario.version;
          String.concat "," s.Scenario.protocols;
          s.Scenario.description;
        ])
    Scenario.all;
  Table.print t

let print_outcomes outcomes =
  let t =
    Table.create
      ~header:
        [
          "run"; "done"; "fail"; "read p50"; "write p50"; "msgs/req"; "stale";
          "mean age"; "avg AoI"; "wall s";
        ]
  in
  List.iter
    (fun (o : Scenario.outcome) ->
      let r = o.Scenario.result in
      let aoi = Dq_telemetry.Aoi.summary o.Scenario.aoi in
      Table.add_row t
        [
          Printf.sprintf "%s w=%.2f wan=%.2g" o.Scenario.protocol o.Scenario.write_ratio
            o.Scenario.wan_scale;
          string_of_int r.Driver.completed;
          string_of_int r.Driver.failed;
          Printf.sprintf "%.1f" (Dq_util.Stats.percentile r.Driver.read_latency 50.);
          Printf.sprintf "%.1f" (Dq_util.Stats.percentile r.Driver.write_latency 50.);
          Printf.sprintf "%.1f" r.Driver.messages_per_request;
          Printf.sprintf "%.1f%%" (100. *. aoi.Dq_telemetry.Aoi.stale_fraction);
          Printf.sprintf "%.1f" aoi.Dq_telemetry.Aoi.mean_read_age_ms;
          Printf.sprintf "%.1f" aoi.Dq_telemetry.Aoi.time_avg_age_ms;
          (match o.Scenario.wall_s with Some s -> Printf.sprintf "%.2f" s | None -> "-");
        ])
    outcomes;
  Table.print t

let find_scenario name =
  match Scenario.find name with
  | Some s -> s
  | None ->
    Printf.eprintf "unknown scenario %S (%s)\n" name
      (String.concat ", " (List.map (fun (s : Scenario.t) -> s.Scenario.name) Scenario.all));
    exit 2

let bench_run name smoke seed out noise_band wan_scale write_ratio =
  let scenario = find_scenario name in
  let now_s = Unix.gettimeofday in
  let outcomes =
    List.map
      (fun protocol ->
        Scenario.run_protocol ~now_s ~wan_scale ?write_ratio ~smoke ~seed scenario ~protocol)
      scenario.Scenario.protocols
  in
  print_outcomes outcomes;
  Option.iter
    (fun path ->
      Results.write_file path (Results.render ?noise_band ~smoke ~seed scenario outcomes);
      Printf.printf "wrote %s\n" path)
    out

let bench_sweep name smoke seed out noise_band wan_scales write_ratios =
  let scenario = find_scenario name in
  let now_s = Unix.gettimeofday in
  let outcomes = Scenario.sweep ~now_s ~smoke ~seed ~wan_scales ~write_ratios scenario in
  print_outcomes outcomes;
  Option.iter
    (fun path ->
      Results.write_file path
        (Results.render ?noise_band ~sweep_axes:(wan_scales, write_ratios) ~smoke ~seed
           scenario outcomes);
      Printf.printf "wrote %s\n" path)
    out

let bench_diff old_path new_path noise_band =
  match Bench_diff.diff_files ?band:noise_band ~old_path ~new_path () with
  | Error msg ->
    Printf.eprintf "dqr bench diff: %s\n" msg;
    exit 2
  | Ok report ->
    Format.printf "%a" Bench_diff.pp report;
    if not (Bench_diff.passed report) then exit 1

let scenario_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc:"Scenario name (see $(b,bench list)).")

let smoke_arg =
  Arg.(value & flag & info [ "smoke" ] ~doc:"Small op counts (CI-sized run).")

let bench_out =
  Arg.(
    value & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Write schema-3 results JSON to $(docv).")

let noise_band_opt =
  Arg.(
    value & opt (some float) None
    & info [ "noise-band" ] ~docv:"B"
        ~doc:"Relative noise band (e.g. 0.1 = 10%) recorded in the results / used by diff.")

let bench_cmd =
  let list_cmd =
    Cmd.v (Cmd.info "list" ~doc:"List registered scenarios") Term.(const bench_list $ const ())
  in
  let run_cmd =
    let wan_scale =
      Arg.(
        value & opt float 1.0
        & info [ "wan-scale" ] ~docv:"X" ~doc:"Extra multiplier on WAN delays.")
    in
    let write_ratio =
      Arg.(
        value & opt (some float) None
        & info [ "write-ratio"; "w" ] ~docv:"W" ~doc:"Override the scenario's write ratio.")
    in
    Cmd.v (Cmd.info "run" ~doc:"Run one scenario across its protocols")
      Term.(
        const bench_run $ scenario_pos $ smoke_arg $ seed_arg $ bench_out $ noise_band_opt
        $ wan_scale $ write_ratio)
  in
  let sweep_cmd =
    let wan_scales =
      Arg.(
        value & opt (list float) [ 1.0; 2.0 ]
        & info [ "wan-scales" ] ~docv:"X,Y" ~doc:"WAN-delay multipliers to sweep.")
    in
    let write_ratios =
      Arg.(
        value & opt (list float) [ 0.05; 0.5 ]
        & info [ "write-ratios" ] ~docv:"W,V" ~doc:"Write ratios to sweep.")
    in
    Cmd.v (Cmd.info "sweep" ~doc:"Sweep a scenario over WAN-delay and write-ratio axes")
      Term.(
        const bench_sweep $ scenario_pos $ smoke_arg $ seed_arg $ bench_out $ noise_band_opt
        $ wan_scales $ write_ratios)
  in
  let diff_cmd =
    let old_path =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD.json" ~doc:"Baseline results.")
    in
    let new_path =
      Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW.json" ~doc:"Fresh results.")
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare two results files metric-by-metric; exit 1 on regression, 2 when the \
            files are not comparable")
      Term.(const bench_diff $ old_path $ new_path $ noise_band_opt)
  in
  Cmd.group
    (Cmd.info "bench" ~doc:"Perf-campaign scenarios: run, sweep and regression-diff")
    [ list_cmd; run_cmd; sweep_cmd; diff_cmd ]

(* --- avail / overhead ----------------------------------------------------- *)

let avail n p w =
  let protocols =
    [
      Dq_analysis.Avail_model.dqvl_default ~n;
      Dq_analysis.Avail_model.Majority { n };
      Dq_analysis.Avail_model.Rowa { n };
      Dq_analysis.Avail_model.Rowa_async_stale { n };
      Dq_analysis.Avail_model.Rowa_async_no_stale;
      Dq_analysis.Avail_model.Primary_backup;
    ]
  in
  let t = Table.create ~header:[ "protocol"; "read unavail"; "write unavail"; "overall" ] in
  List.iter
    (fun proto ->
      Table.add_row t
        [
          Dq_analysis.Avail_model.name proto;
          Render.scientific (Dq_analysis.Avail_model.read_unavailability proto ~p);
          Render.scientific (Dq_analysis.Avail_model.write_unavailability proto ~p);
          Render.scientific (Dq_analysis.Avail_model.unavailability proto ~p ~w);
        ])
    protocols;
  Table.print t

let avail_cmd =
  let n = Arg.(value & opt int 15 & info [ "n" ] ~docv:"N" ~doc:"Replica count.") in
  let p = Arg.(value & opt float 0.01 & info [ "p" ] ~docv:"P" ~doc:"Per-node failure probability.") in
  let w = Arg.(value & opt float 0.25 & info [ "w" ] ~docv:"W" ~doc:"Write ratio.") in
  Cmd.v (Cmd.info "avail" ~doc:"Analytical availability model") Term.(const avail $ n $ p $ w)

let overhead n_iqs n_oqs w =
  let sizes = Dq_analysis.Overhead_model.dqvl_sizes ~n_iqs ~n_oqs in
  let t = Table.create ~header:[ "scenario"; "messages" ] in
  let add label v = Table.add_row t [ label; Printf.sprintf "%.1f" v ] in
  add "read hit" (Dq_analysis.Overhead_model.read_hit sizes);
  add "read miss" (Dq_analysis.Overhead_model.read_miss sizes);
  add "write suppress" (Dq_analysis.Overhead_model.write_suppress sizes);
  add "write through" (Dq_analysis.Overhead_model.write_through sizes);
  add (Printf.sprintf "dqvl expected (w=%.2f)" w) (Dq_analysis.Overhead_model.dqvl sizes ~w);
  add "majority expected" (Dq_analysis.Overhead_model.majority ~n:n_oqs ~w);
  Table.print t

let overhead_cmd =
  let n_iqs = Arg.(value & opt int 9 & info [ "iqs" ] ~docv:"N" ~doc:"IQS size.") in
  let n_oqs = Arg.(value & opt int 9 & info [ "oqs" ] ~docv:"N" ~doc:"OQS size.") in
  let w = Arg.(value & opt float 0.25 & info [ "w" ] ~docv:"W" ~doc:"Write ratio.") in
  Cmd.v (Cmd.info "overhead" ~doc:"Analytical communication-overhead model")
    Term.(const overhead $ n_iqs $ n_oqs $ w)

(* --- quorum-opt ------------------------------------------------------------ *)

module Qs = Dq_quorum.Quorum_system
module Strategy = Dq_quorum.Strategy
module Optimizer = Dq_quorum.Optimizer

(* Expand a per-node parameter: one value is replicated to all nodes, a
   comma list must name every node. *)
let per_node ~what ~n = function
  | [ v ] -> Array.make n v
  | vs when List.length vs = n -> Array.of_list vs
  | vs ->
    Printf.eprintf "quorum-opt: --%s needs 1 or %d values (got %d)\n" what n
      (List.length vs);
    exit 2

let votes_label votes =
  Printf.sprintf "[%s]" (String.concat "," (List.map (fun (_, v) -> string_of_int v) votes))

let print_frontier (result : Optimizer.result) =
  Printf.printf "searched %d quorum systems%s; frontier has %d point(s)\n"
    result.Optimizer.candidates
    (if result.Optimizer.truncated then " (truncated)" else "")
    (List.length result.Optimizer.frontier);
  let t =
    Table.create
      ~header:
        [ "votes"; "r"; "w"; "kind"; "load"; "capacity"; "latency"; "ft";
          "read unavail"; "write unavail" ]
  in
  List.iter
    (fun (pt : Optimizer.point) ->
      let m = pt.Optimizer.metrics in
      Table.add_row t
        [
          votes_label pt.Optimizer.votes;
          string_of_int pt.Optimizer.read_votes;
          string_of_int pt.Optimizer.write_votes;
          pt.Optimizer.kind;
          Printf.sprintf "%.4f" m.Optimizer.load;
          Printf.sprintf "%.2f" m.Optimizer.capacity;
          Printf.sprintf "%.1f" m.Optimizer.latency_ms;
          string_of_int m.Optimizer.fault_tolerance;
          Render.scientific m.Optimizer.read_unavailability;
          Render.scientific m.Optimizer.write_unavailability;
        ])
    result.Optimizer.frontier;
  Table.print t

(* Re-base the winning system and strategies from optimizer node ids
   (0..n-1) onto the scenario topology's server ids, then register a
   "dqvl-opt" protocol: optimized weighted IQS (with its explicit
   read/write strategies) and the paper's read-one/write-all OQS. *)
let register_applied (winner : Optimizer.point) ~n =
  let make_config servers =
    if List.length servers < n then
      invalid_arg
        (Printf.sprintf
           "quorum-opt --apply: scenario has %d servers but the topology was \
            optimized for %d nodes"
           (List.length servers) n);
    let mapped = Array.of_list (List.filteri (fun i _ -> i < n) servers) in
    let iqs =
      Qs.weighted ~name:"iqs-opt"
        ~members:(List.map (fun (id, v) -> (mapped.(id), v)) winner.Optimizer.votes)
        ~read:winner.Optimizer.read_votes ~write:winner.Optimizer.write_votes
    in
    let remap strategy mode =
      match Strategy.distribution strategy with
      | None -> None
      | Some dist ->
        Some
          (Strategy.explicit iqs mode
             (List.map (fun (q, p) -> (List.map (fun id -> mapped.(id)) q, p)) dist))
    in
    let config =
      {
        (Dq_core.Config.dqvl ~servers ()) with
        Dq_core.Config.iqs;
        oqs = Qs.rowa servers;
        iqs_read_strategy = remap winner.Optimizer.read_strategy Qs.Read;
        iqs_write_strategy = remap winner.Optimizer.write_strategy Qs.Write;
      }
    in
    Dq_core.Config.validate config;
    config
  in
  Registry.register (Registry.dqvl_custom ~name:"dqvl-opt" make_config)

let quorum_opt n ps latencies read_fraction max_votes out apply scenario_name seed =
  let fail_prob = per_node ~what:"p" ~n ps in
  let latency = per_node ~what:"latency" ~n latencies in
  let nodes =
    List.init n (fun id ->
        { Optimizer.id; fail_prob = fail_prob.(id); latency_ms = latency.(id) })
  in
  let result = Optimizer.search ~read_fraction ~max_votes ~nodes () in
  print_frontier result;
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (Optimizer.to_json result);
      close_out oc;
      Printf.printf "wrote %s\n" path)
    out;
  if apply then begin
    match Optimizer.winner result with
    | None ->
      Printf.eprintf "quorum-opt: empty frontier, nothing to apply\n";
      exit 1
    | Some winner ->
      Printf.printf "applying %s r=%d w=%d (%s) to scenario %s (smoke)\n"
        (votes_label winner.Optimizer.votes)
        winner.Optimizer.read_votes winner.Optimizer.write_votes winner.Optimizer.kind
        scenario_name;
      register_applied winner ~n;
      let scenario = find_scenario scenario_name in
      let now_s = Unix.gettimeofday in
      let outcome =
        Scenario.run_protocol ~now_s ~smoke:true ~seed scenario ~protocol:"dqvl-opt"
      in
      print_outcomes [ outcome ]
  end

let quorum_opt_cmd =
  let n = Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Node count.") in
  let p =
    Arg.(
      value & opt (list float) [ 0.01 ]
      & info [ "p"; "fail-probs" ] ~docv:"P,..."
          ~doc:"Per-node failure probability: one value for all nodes, or one per node.")
  in
  let latency =
    Arg.(
      value & opt (list float) [ 10. ]
      & info [ "latency" ] ~docv:"MS,..."
          ~doc:"Per-node latency in ms: one value for all nodes, or one per node.")
  in
  let read_fraction =
    Arg.(
      value & opt float 0.9
      & info [ "read-fraction" ] ~docv:"F" ~doc:"Fraction of operations that are reads.")
  in
  let max_votes =
    Arg.(
      value & opt int 3
      & info [ "max-votes" ] ~docv:"V" ~doc:"Largest per-node vote weight searched.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the frontier JSON (schema quorum-opt-1) to $(docv).")
  in
  let apply =
    Arg.(
      value & flag
      & info [ "apply" ]
          ~doc:
            "Run the winning system as the DQVL input quorum system in a smoke bench \
             scenario (protocol name dqvl-opt).")
  in
  let scenario =
    Arg.(
      value & opt string "baseline"
      & info [ "scenario" ] ~docv:"SCENARIO" ~doc:"Scenario used by $(b,--apply).")
  in
  Cmd.v
    (Cmd.info "quorum-opt"
       ~doc:
         "Search weighted quorum systems and read/write strategies for a \
          load/latency/fault-tolerance Pareto frontier")
    Term.(
      const quorum_opt $ n $ p $ latency $ read_fraction $ max_votes $ out $ apply
      $ scenario $ seed_arg)

(* --- load / bandwidth ------------------------------------------------------ *)

let load_study seed ops service_ms =
  Table.print
    (Render.series ~title:"load study:" ~x_label:"req/s per client"
       ~x_of:(Printf.sprintf "%.0f")
       ~fmt:(Printf.sprintf "%.1f")
       (E.saturation ~seed ~ops ~service_ms ()))

let load_cmd =
  let service_ms =
    Arg.(value & opt float 1.0 & info [ "service-ms" ] ~docv:"MS" ~doc:"Per-message service time.")
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Open-loop load study with a per-message service time")
    Term.(const load_study $ seed_arg $ ops_arg 300 $ service_ms)

let bandwidth seed ops write_ratio =
  let t = Table.create ~header:[ "protocol"; "msgs/request"; "bytes/request" ] in
  List.iter
    (fun (name, mpr, bpr) ->
      Table.add_row t [ name; Printf.sprintf "%.1f" mpr; Printf.sprintf "%.0f" bpr ])
    (E.bandwidth ~seed ~ops ~write_ratio ());
  Table.print t

let bandwidth_cmd =
  let w = Arg.(value & opt float 0.25 & info [ "w" ] ~docv:"W" ~doc:"Write ratio.") in
  Cmd.v
    (Cmd.info "bandwidth" ~doc:"Measured messages and bytes per request")
    Term.(const bandwidth $ seed_arg $ ops_arg 200 $ w)

let () =
  let doc = "dual-quorum replication for edge services - experiments" in
  let info = Cmd.info "dqr" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig_cmd; ablation_cmd; run_cmd; bench_cmd; avail_cmd; overhead_cmd;
            quorum_opt_cmd; load_cmd; bandwidth_cmd;
          ]))
