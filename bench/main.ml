(* The benchmark harness: regenerates every table/figure of the paper's
   evaluation (Section 4) and then runs Bechamel microbenchmarks - one
   Test.make per figure (measuring the computation that regenerates it)
   plus microbenchmarks of the hot paths.

   Usage: main.exe [-j N] [--smoke] [--out BENCH_<n>.json]

   [-j N] sizes the experiment worker pool (default: DQ_JOBS, else the
   machine's recommended domain count). With N > 1 every figure is
   regenerated a second time on the pool and the serial/parallel
   wall-clocks land in a machine-readable BENCH_<n>.json so the perf
   trajectory is tracked across PRs. [--smoke] runs a tiny-op sanity pass
   (serial vs parallel bit-equality) and exits. *)

module E = Dq_harness.Experiment
module Render = Dq_harness.Render
module Sites = Dq_harness.Sites
module Table = Dq_util.Table
open Bechamel
open Toolkit

let section title =
  Printf.printf "\n== %s ==\n\n" title

let f2 x = Printf.sprintf "%.2f" x

(* --- figure regeneration ------------------------------------------------ *)

let print_fig6a () =
  section "Figure 6(a): response time at 5% writes (ms)";
  Table.print (Render.response_rows ~title:"protocol" (E.fig6a ()))

let print_fig6b () =
  section "Figure 6(b): mean response time vs write ratio (ms)";
  Table.print (Render.sweep ~title:"" ~x_label:"write ratio" ~x_of:f2 (E.fig6b ()))

let print_fig7a () =
  section "Figure 7(a): response time at 5% writes, 90% locality (ms)";
  Table.print (Render.response_rows ~title:"protocol" (E.fig7a ()))

let print_fig7b () =
  section "Figure 7(b): mean response time vs access locality (ms)";
  Table.print (Render.sweep ~title:"" ~x_label:"locality" ~x_of:f2 (E.fig7b ()))

let print_fig8a () =
  section "Figure 8(a): unavailability vs write ratio (n=15, p=0.01)";
  Table.print
    (Render.series ~title:"" ~x_label:"write ratio" ~x_of:f2 ~fmt:Render.scientific
       (E.fig8a ()))

let print_fig8b () =
  section "Figure 8(b): unavailability vs number of replicas (w=0.25, p=0.01)";
  Table.print
    (Render.series ~title:"" ~x_label:"replicas" ~x_of:string_of_int ~fmt:Render.scientific
       (E.fig8b ()))

let print_fig8_measured () =
  section
    "Figure 8 cross-check: measured unavailability under churn (p=0.1, w=0.25, redirection)";
  let t = Table.create ~header:[ "protocol"; "measured unavail"; "model unavail (p=0.1)" ] in
  let model =
    match E.fig8a ~p:0.1 ~n:9 ~write_ratios:[ 0.25 ] () with
    | [ (_, series) ] -> series
    | _ -> []
  in
  List.iter
    (fun (name, measured) ->
      Table.add_row t
        [
          name;
          Render.scientific measured;
          (match List.assoc_opt name model with
          | Some v -> Render.scientific v
          | None -> "-");
        ])
    (E.fig8_measured ());
  Table.print t

let print_fig9a () =
  section "Figure 9(a): messages per request vs write ratio (model)";
  Table.print (Render.series ~title:"" ~x_label:"write ratio" ~x_of:f2 (E.fig9a ()));
  section "Figure 9(a) cross-check: measured DQVL messages per request";
  Table.print
    (Render.series ~title:"" ~x_label:"write ratio" ~x_of:f2
       (List.map (fun (w, v) -> (w, [ ("dqvl measured", v) ])) (E.fig9a_measured ())))

let print_fig9b () =
  section "Figure 9(b): messages per request vs OQS size (IQS fixed at 5, w=0.25)";
  Table.print
    (Render.series ~title:"" ~x_label:"OQS size" ~x_of:string_of_int (E.fig9b ()))

let print_bandwidth () =
  section "Bandwidth: measured messages and bytes per request (w=0.25)";
  let t = Table.create ~header:[ "protocol"; "msgs/request"; "bytes/request" ] in
  List.iter
    (fun (name, mpr, bpr) ->
      Table.add_row t [ name; Printf.sprintf "%.1f" mpr; Printf.sprintf "%.0f" bpr ])
    (E.bandwidth ());
  Table.print t

let print_saturation () =
  section
    "Load study (beyond the paper): open-loop arrivals, 1 ms/message service time (mean ms)";
  Table.print
    (Render.series ~title:"" ~x_label:"req/s per client"
       ~x_of:(Printf.sprintf "%.0f")
       ~fmt:(Printf.sprintf "%.1f")
       (E.saturation ()))

let print_ablations () =
  section "Ablation: DQVL vs basic dual quorum (value of volume leases)";
  Table.print (Render.response_rows ~title:"protocol" (E.ablation_leases ()));
  section "Ablation: volume lease length (on-demand renewal)";
  Table.print
    (Render.response_rows ~title:"config"
       (List.map
          (fun (lease, r) -> { r with E.protocol = Printf.sprintf "dqvl L=%.0fms" lease })
          (E.ablation_lease_len ())));
  section "Ablation: workload burstiness at 50% writes";
  Table.print
    (Render.response_rows ~title:"config"
       (List.map
          (fun (mean, r) -> { r with E.protocol = Printf.sprintf "dqvl burst=%.0f" mean })
          (E.ablation_bursts ())));
  section "Ablation: OQS read quorum size (paper future work)";
  Table.print
    (Render.response_rows ~title:"config" (List.map snd (E.ablation_orq ())));
  section "Ablation: grid-quorum IQS availability (paper future work)";
  Table.print
    (Render.series ~title:"" ~x_label:"replicas" ~x_of:string_of_int ~fmt:Render.scientific
       (E.ablation_grid ()));
  section "Ablation: finite object leases (paper footnote 4; scattered readers, think time)";
  let t = Table.create ~header:[ "config"; "msgs/request"; "mean write ms" ] in
  List.iter
    (fun (name, mpr, write_ms) ->
      Table.add_row t [ name; Printf.sprintf "%.1f" mpr; Printf.sprintf "%.1f" write_ms ])
    (E.ablation_object_lease ());
  Table.print t;
  section "Ablation: batched volume-lease renewals (6 volumes, 20 s, proactive)";
  let t = Table.create ~header:[ "policy"; "renewal requests" ] in
  List.iter
    (fun (name, n) -> Table.add_row t [ name; string_of_int n ])
    (E.ablation_batch_renewals ());
  Table.print t;
  section "Ablation: the cost of atomic semantics (read-imposition, paper future work)";
  Table.print (Render.response_rows ~title:"protocol" (E.ablation_atomic ()));
  section "Ablation: read staleness under 30% message loss (shared object, 50% writes)";
  let t =
    Table.create ~header:[ "protocol"; "stale reads"; "mean behind (ms)"; "max behind (ms)" ]
  in
  List.iter
    (fun (r : E.staleness_row) ->
      Table.add_row t
        [
          r.E.s_protocol;
          Printf.sprintf "%.1f%%" (100. *. r.E.s_stale_fraction);
          Printf.sprintf "%.0f" r.E.s_mean_behind_ms;
          Printf.sprintf "%.0f" r.E.s_max_behind_ms;
        ])
    (E.ablation_staleness ());
  Table.print t

(* --- bechamel microbenchmarks -------------------------------------------- *)

let engine_churn () =
  let engine = Dq_sim.Engine.create () in
  for i = 1 to 1_000 do
    ignore (Dq_sim.Engine.schedule engine ~delay:(float_of_int (i mod 97)) (fun () -> ()))
  done;
  Dq_sim.Engine.run engine

let dqvl_sim ~ops () =
  let engine = Dq_sim.Engine.create ~seed:7L () in
  let topology = E.paper_topology () in
  let builder = Dq_harness.Registry.dqvl ~volume_lease_ms:1_000. ~proactive_renew:false () in
  let instance = builder.Dq_harness.Registry.build engine topology () in
  let spec = Dq_workload.Spec.default in
  let config =
    { (Dq_harness.Driver.default_config spec) with Dq_harness.Driver.ops_per_client = ops }
  in
  ignore (Dq_harness.Driver.run engine topology instance.Dq_harness.Registry.api config)

let tests =
  Test.make_grouped ~name:"dual-quorum" ~fmt:"%s %s"
    [
      (* One Test.make per figure: the cost of regenerating it. *)
      Test.make ~name:"fig6a" (Staged.stage (fun () -> ignore (E.fig6a ~ops:30 ())));
      Test.make ~name:"fig6b"
        (Staged.stage (fun () -> ignore (E.fig6b ~ops:15 ~write_ratios:[ 0.05; 0.5 ] ())));
      Test.make ~name:"fig7a" (Staged.stage (fun () -> ignore (E.fig7a ~ops:30 ())));
      Test.make ~name:"fig7b"
        (Staged.stage (fun () -> ignore (E.fig7b ~ops:15 ~localities:[ 0.5; 1.0 ] ())));
      Test.make ~name:"fig8a" (Staged.stage (fun () -> ignore (E.fig8a ())));
      Test.make ~name:"fig8b" (Staged.stage (fun () -> ignore (E.fig8b ())));
      Test.make ~name:"fig9a" (Staged.stage (fun () -> ignore (E.fig9a ())));
      Test.make ~name:"fig9b" (Staged.stage (fun () -> ignore (E.fig9b ())));
      (* Hot paths. *)
      Test.make ~name:"engine 1k events" (Staged.stage engine_churn);
      Test.make ~name:"dqvl 60-op simulation" (Staged.stage (dqvl_sim ~ops:20));
      Test.make ~name:"availability enum grid 4x4"
        (Staged.stage (fun () ->
             let qs = Dq_quorum.Quorum_system.grid ~rows:4 ~cols:4 (List.init 16 Fun.id) in
             ignore
               (Dq_quorum.Availability.unavailability qs ~mode:Dq_quorum.Availability.Write
                  ~p:0.01)));
    ]

let run_benchmarks () =
  section "Bechamel microbenchmarks (ns per run, OLS fit)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~kde:(Some 10) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table = Table.create ~header:[ "benchmark"; "ns/run"; "r^2" ] in
  let rows =
    Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let measured =
    List.map
      (fun (name, ols_result) ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (x :: _) -> Some x
          | Some [] | None -> None
        in
        let r2 = Analyze.OLS.r_square ols_result in
        (name, ns, r2))
      rows
  in
  List.iter
    (fun (name, ns, r2) ->
      let fmt_opt f = function Some x -> Printf.sprintf f x | None -> "-" in
      Table.add_row table [ name; fmt_opt "%.0f" ns; fmt_opt "%.3f" r2 ])
    measured;
  Table.print table;
  measured

(* --- figure regeneration wall-clock, serial vs parallel ----------------- *)

(* Each figure: its printing function (used for the serial pass, so the
   tables appear exactly once) and a silent compute thunk doing the same
   work (used for the timed parallel pass). *)
let figures =
  [
    ("fig6a", print_fig6a, fun () -> ignore (E.fig6a ()));
    ("fig6b", print_fig6b, fun () -> ignore (E.fig6b ()));
    ("fig7a", print_fig7a, fun () -> ignore (E.fig7a ()));
    ("fig7b", print_fig7b, fun () -> ignore (E.fig7b ()));
    ("fig8a", print_fig8a, fun () -> ignore (E.fig8a ()));
    ("fig8b", print_fig8b, fun () -> ignore (E.fig8b ()));
    ("fig8_measured", print_fig8_measured, fun () -> ignore (E.fig8_measured ()));
    ( "fig9a",
      print_fig9a,
      fun () ->
        ignore (E.fig9a ());
        ignore (E.fig9a_measured ()) );
    ("fig9b", print_fig9b, fun () -> ignore (E.fig9b ()));
    ("bandwidth", print_bandwidth, fun () -> ignore (E.bandwidth ()));
    ("saturation", print_saturation, fun () -> ignore (E.saturation ()));
    ( "ablations",
      print_ablations,
      fun () ->
        ignore (E.ablation_leases ());
        ignore (E.ablation_lease_len ());
        ignore (E.ablation_bursts ());
        ignore (E.ablation_orq ());
        ignore (E.ablation_grid ());
        ignore (E.ablation_object_lease ());
        ignore (E.ablation_batch_renewals ());
        ignore (E.ablation_atomic ());
        ignore (E.ablation_staleness ()) );
  ]

let time_it f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* --- advisory guard ------------------------------------------------------ *)

(* Parallel wall-clocks taken on a single-core host measure scheduling
   overhead, not speedup. Mark them so downstream tooling never treats
   them as a perf regression/claim. *)
let cores = Domain.recommended_domain_count ()

let advisory ~jobs = jobs > 1 && cores <= 1

let warn_advisory ~jobs =
  if advisory ~jobs then
    Printf.eprintf
      "warning: -j %d requested but only %d core(s) available; parallel \
       timings are advisory (recorded with \"advisory\": true)\n%!"
      jobs cores

(* --- events per second: the PDES headline ------------------------------- *)

(* ~10^6-event site-partitioned workload (see lib/harness/sites.ml):
   8 sites x 8 closed-loop clients x 4000 ops. The serial and pooled
   runs are required to be bit-identical; throughput is reported for
   both so the headline captures the engine, not just the pool. *)
let eps_config =
  { Sites.default with n_sites = 8; clients_per_site = 8; ops_per_client = 4000 }

type eps = {
  workload_events : int;
  serial_eps : float;
  parallel_eps : float option;
}

let check_deterministic ~what (a : Sites.result) (b : Sites.result) =
  (* [compare]: histories contain floats, and the total order treats
     NaN = NaN (none are expected here anyway). *)
  if compare a b <> 0 then begin
    Printf.eprintf "%s: parallel PDES run differs from serial oracle\n%!" what;
    exit 1
  end;
  if a.Sites.violations <> 0 then begin
    Printf.eprintf "%s: %d regular-register violations\n%!" what a.Sites.violations;
    exit 1
  end

let run_events_per_sec ~jobs cfg =
  section "Events per second: site-partitioned PDES workload";
  let serial_res = ref None in
  let dt_serial = time_it (fun () -> serial_res := Some (Sites.run cfg)) in
  let serial_res = Option.get !serial_res in
  let serial_eps = float_of_int serial_res.Sites.events /. dt_serial in
  let parallel_eps =
    if jobs <= 1 then None
    else begin
      let par_res = ref None in
      let dt =
        time_it (fun () ->
            Dq_par.Pool.with_pool ~jobs (fun pool ->
                par_res := Some (Sites.run ~pool cfg)))
      in
      check_deterministic ~what:"events_per_sec" serial_res (Option.get !par_res);
      Some (float_of_int serial_res.Sites.events /. dt)
    end
  in
  let t = Table.create ~header:[ "mode"; "events"; "events/s" ] in
  let row name eps =
    Table.add_row t
      [ name; string_of_int serial_res.Sites.events; Printf.sprintf "%.0f" eps ]
  in
  row "serial" serial_eps;
  Option.iter (row (Printf.sprintf "parallel -j %d" jobs)) parallel_eps;
  Table.print t;
  { workload_events = serial_res.Sites.events; serial_eps; parallel_eps }

(* --- BENCH_<n>.json ------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x = if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

let json_opt = function Some x -> json_float x | None -> "null"

(* Parallel timings (per-figure, total, events_per_sec.parallel) carry
   "advisory": true when taken on a single-core host — they measure
   pool overhead there, not speedup. *)
let write_bench_json ~out ~jobs ~serial ~parallel ~micro ~events =
  let oc = open_out out in
  let adv = advisory ~jobs in
  (* ", \"advisory\": true" appended to entries holding a parallel
     timing taken on a single-core host; empty otherwise. *)
  let adv_field has_parallel = if adv && has_parallel then ", \"advisory\": true" else "" in
  let total xs = List.fold_left (fun acc (_, s) -> acc +. s) 0. xs in
  let parallel_of name = List.assoc_opt name parallel in
  let fig_entries =
    List.map
      (fun (name, serial_s) ->
        let par = parallel_of name in
        let speedup = Option.map (fun p -> serial_s /. p) par in
        Printf.sprintf
          "    {\"name\": \"%s\", \"serial_s\": %s, \"parallel_s\": %s, \"speedup\": %s%s}"
          (json_escape name) (json_float serial_s) (json_opt par) (json_opt speedup)
          (adv_field (par <> None)))
      serial
  in
  let micro_entries =
    List.map
      (fun (name, ns, r2) ->
        Printf.sprintf "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s}"
          (json_escape name) (json_opt ns) (json_opt r2))
      micro
  in
  let total_serial = total serial in
  let total_parallel = if parallel = [] then None else Some (total parallel) in
  let events_json =
    match events with
    | None -> "null"
    | Some e ->
      Printf.sprintf
        "{\"workload_events\": %d, \"serial\": %s, \"parallel\": %s%s}"
        e.workload_events (json_float e.serial_eps) (json_opt e.parallel_eps)
        (adv_field (e.parallel_eps <> None))
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": 2,\n\
    \  \"generated_by\": \"bench/main.exe\",\n\
    \  \"jobs\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"advisory\": %b,\n\
    \  \"events_per_sec\": %s,\n\
    \  \"total\": {\"serial_s\": %s, \"parallel_s\": %s, \"speedup\": %s%s},\n\
    \  \"figures\": [\n%s\n  ],\n\
    \  \"microbench_ns_per_run\": [\n%s\n  ]\n\
     }\n"
    jobs cores adv events_json
    (json_float total_serial) (json_opt total_parallel)
    (json_opt (Option.map (fun p -> total_serial /. p) total_parallel))
    (adv_field (total_parallel <> None))
    (String.concat ",\n" fig_entries)
    (String.concat ",\n" micro_entries);
  close_out oc;
  Printf.printf "\nwrote %s\n" out

(* --- smoke mode (CI): tiny ops, parallel path, bit-equality check -------- *)

let run_smoke ~jobs ~out =
  section (Printf.sprintf "Smoke: tiny figures, serial vs -j %d (must be bit-identical)" jobs);
  E.set_jobs 1;
  let fig6a_serial = E.fig6a ~ops:20 () in
  let lease_serial = E.ablation_lease_len ~ops:15 () in
  E.set_jobs jobs;
  let fig6a_par = E.fig6a ~ops:20 () in
  let lease_par = E.ablation_lease_len ~ops:15 () in
  Table.print (Render.response_rows ~title:"protocol" fig6a_par);
  E.set_jobs 1;
  (* [compare] rather than [=]: a NaN mean (all ops inside the warmup
     window) is still equal to itself under the total order. *)
  if compare fig6a_serial fig6a_par = 0 && compare lease_serial lease_par = 0 then
    print_endline "smoke OK: parallel output bit-identical to serial"
  else begin
    prerr_endline "smoke FAILED: parallel output differs from serial";
    exit 1
  end;
  (* PDES determinism diff: the site-partitioned workload, with loss
     and a crash window, serial vs pooled — histories, merged metrics
     JSON, counters and checker verdicts must all match. *)
  section (Printf.sprintf "Smoke: PDES serial oracle vs -j %d (must be bit-identical)" jobs);
  let cfg = { Sites.default with loss = 0.02; crash_sites = 1; seed = 7L } in
  let serial = Sites.run cfg in
  let pooled = Dq_par.Pool.with_pool ~jobs (fun pool -> Sites.run ~pool cfg) in
  check_deterministic ~what:"smoke PDES" serial pooled;
  Printf.printf
    "smoke OK: PDES bit-identical (%d events, %d windows, %d ops, 0 violations)\n"
    serial.Sites.events serial.Sites.windows serial.Sites.ops_completed;
  (* A small throughput sample so CI validates the schema-2 JSON shape
     (figures/microbench stay empty in smoke mode). *)
  let eps = run_events_per_sec ~jobs { cfg with ops_per_client = 200 } in
  write_bench_json ~out ~jobs ~serial:[] ~parallel:[] ~micro:[] ~events:(Some eps)

(* --- entry point ---------------------------------------------------------- *)

let usage () =
  prerr_endline "usage: main.exe [-j N] [--smoke] [--out FILE.json]";
  exit 2

let parse_args () =
  let jobs = ref (Dq_par.Pool.default_jobs ()) in
  let smoke = ref false in
  let out = ref "BENCH_2.json" in
  let rec go = function
    | [] -> ()
    | "-j" :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 ->
        jobs := j;
        go rest
      | _ -> usage ())
    | "--smoke" :: rest ->
      smoke := true;
      go rest
    | "--out" :: file :: rest ->
      out := file;
      go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  (!jobs, !smoke, !out)

let () =
  let jobs, smoke, out = parse_args () in
  warn_advisory ~jobs;
  if smoke then run_smoke ~jobs ~out
  else begin
    (* Serial pass: print every table/figure (as before) and time it. *)
    E.set_jobs 1;
    let serial = List.map (fun (name, print, _) -> (name, time_it print)) figures in
    (* Parallel pass: regenerate silently on the pool and time it. *)
    let parallel =
      if jobs <= 1 then []
      else begin
        section (Printf.sprintf "Parallel regeneration wall-clock (-j %d)" jobs);
        E.set_jobs jobs;
        let t = Table.create ~header:[ "figure"; "serial s"; "parallel s"; "speedup" ] in
        let timed =
          List.map
            (fun (name, _, compute) ->
              let dt = time_it compute in
              let serial_s = List.assoc name serial in
              Table.add_row t
                [
                  name;
                  Printf.sprintf "%.2f" serial_s;
                  Printf.sprintf "%.2f" dt;
                  Printf.sprintf "%.2fx" (serial_s /. dt);
                ];
              (name, dt))
            figures
        in
        Table.print t;
        timed
      end
    in
    E.set_jobs 1;
    let events = run_events_per_sec ~jobs eps_config in
    let micro = run_benchmarks () in
    write_bench_json ~out ~jobs ~serial ~parallel ~micro ~events:(Some events)
  end
