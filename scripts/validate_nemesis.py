#!/usr/bin/env python3
"""Validate dqr-nemesis campaign report JSONs.

Sibling of validate_bench.py for the robustness campaign. Checks the
report's structure — per-class protocol rankings with contiguous ranks,
the overall cross-class ranking — and the recovery block added by the
amnesia/gray-failure fault classes:

  - recoveries_started / recoveries_done counters (done <= started),
  - pooled mean / max time-to-recover (mean <= max; both zero exactly
    when no recovery completed),
  - state-transfer volume (sync_bytes / sync_objects; zero when no
    recovery completed).

Also checks the bookkeeping invariants the campaign runner promises:
violations == len(violation_seeds), availability in [0, 1], stale
accounting consistent with reads_checked, and that every class name is
one the nemesis generator actually knows.

Usage: validate_nemesis.py REPORT.json [...]
Exits non-zero with one message per problem.
"""

import json
import sys

errors = []


def err(path, msg):
    errors.append(f"{path}: {msg}")


def require(doc, path, key, types):
    if key not in doc:
        err(path, f"missing key '{key}'")
        return None
    v = doc[key]
    if not isinstance(v, types):
        names = "/".join(t.__name__ for t in types) if isinstance(types, tuple) else types.__name__
        err(path, f"'{key}' should be {names}, got {type(v).__name__}")
        return None
    return v


NUM = (int, float)

# Must match Nemesis.all_classes / class_name in lib/harness/nemesis.ml.
KNOWN_CLASSES = (
    "partitions", "crashes", "amnesia", "gray-degrade", "degraded-links",
    "flapping", "clock-skew", "lease-expiry", "mixed",
)

# The classes whose scenarios may wipe nodes. Only "amnesia" wipes on
# every scenario ("mixed" draws its sub-classes randomly), so the hard
# completed-a-non-empty-state-transfer requirement keys off "amnesia";
# "mixed" rows merely contribute to the aggregate.
RECOVERY_CLASSES = ("amnesia", "mixed")

ROW_INTS = (
    "runs", "completed", "failed", "gave_up", "stale_reads", "reads_checked",
    "recoveries_started", "recoveries_done", "sync_bytes", "sync_objects",
    "violations",
)
ROW_NUMS = (
    "availability", "stale_fraction", "max_staleness_ms", "mean_age_ms",
    "max_age_ms", "max_unavailability_ms", "mean_recovery_ms",
    "max_recovery_ms",
)


def validate_row(path, row):
    require(row, path, "protocol", str)
    for key in ROW_INTS:
        v = require(row, path, key, int)
        if isinstance(v, int) and v < 0:
            err(path, f"'{key}' is negative ({v})")
    for key in ROW_NUMS:
        v = require(row, path, key, NUM)
        if isinstance(v, NUM) and v < 0:
            err(path, f"'{key}' is negative ({v})")

    avail = row.get("availability")
    if isinstance(avail, NUM) and not 0 <= avail <= 1:
        err(path, f"availability {avail} outside [0, 1]")
    stale, checked = row.get("stale_reads"), row.get("reads_checked")
    if isinstance(stale, int) and isinstance(checked, int) and stale > checked:
        err(path, f"stale_reads ({stale}) exceeds reads_checked ({checked})")

    started, done = row.get("recoveries_started"), row.get("recoveries_done")
    if isinstance(started, int) and isinstance(done, int) and done > started:
        err(path, f"recoveries_done ({done}) exceeds recoveries_started ({started})")
    mean_r, max_r = row.get("mean_recovery_ms"), row.get("max_recovery_ms")
    if isinstance(mean_r, NUM) and isinstance(max_r, NUM) and mean_r > max_r:
        err(path, f"mean_recovery_ms ({mean_r}) exceeds max_recovery_ms ({max_r})")
    if isinstance(done, int) and done == 0:
        # With no completed recovery there is nothing to have measured.
        for key in ("mean_recovery_ms", "max_recovery_ms"):
            v = row.get(key)
            if isinstance(v, NUM) and v != 0:
                err(path, f"'{key}' is {v} with recoveries_done = 0")
        for key in ("sync_bytes", "sync_objects"):
            v = row.get(key)
            if isinstance(v, int) and v != 0:
                err(path, f"'{key}' is {v} with recoveries_done = 0")

    seeds = require(row, path, "violation_seeds", list)
    violations = row.get("violations")
    if seeds is not None:
        if not all(isinstance(s, int) for s in seeds):
            err(path, "violation_seeds entries must be integers")
        if isinstance(violations, int) and violations != len(seeds):
            err(path, f"violations ({violations}) != len(violation_seeds) ({len(seeds)})")


def validate_ranking(path, rows):
    ranks = [r.get("rank") for r in rows if isinstance(r, dict)]
    if ranks != list(range(1, len(ranks) + 1)):
        err(path, f"ranks {ranks} are not contiguous from 1")
    names = [r.get("protocol") for r in rows if isinstance(r, dict)]
    if len(set(names)) != len(names):
        err(path, "duplicate protocol in one ranking")


def validate(fname):
    path = fname
    try:
        with open(fname) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(path, str(e))
        return

    tool = require(doc, path, "tool", str)
    if tool is not None and tool != "dqr-nemesis":
        err(path, f"tool '{tool}', expected 'dqr-nemesis'")
    require(doc, path, "base_seed", int)
    runs = require(doc, path, "runs_per_cell", int)

    classes = require(doc, path, "classes", list)
    seen = []
    recovery_done_total = 0
    sync_bytes_total = 0
    if classes is not None:
        if not classes:
            err(path, "'classes' is empty")
        for ci, cls in enumerate(classes):
            p = f"{path}/classes[{ci}]"
            if not isinstance(cls, dict):
                err(p, "not an object")
                continue
            name = require(cls, p, "class", str)
            if name is not None:
                if name not in KNOWN_CLASSES:
                    err(p, f"unknown fault class '{name}'")
                if name in seen:
                    err(p, f"fault class '{name}' listed twice")
                seen.append(name)
            rows = require(cls, p, "protocols", list)
            if rows is None:
                continue
            if not rows:
                err(p, "'protocols' is empty")
            validate_ranking(p, rows)
            for pi, row in enumerate(rows):
                rp = f"{p}/protocols[{pi}]"
                if not isinstance(row, dict):
                    err(rp, "not an object")
                    continue
                validate_row(rp, row)
                if isinstance(row.get("runs"), int) and isinstance(runs, int) \
                        and row["runs"] != runs:
                    err(rp, f"runs ({row['runs']}) != runs_per_cell ({runs})")
                if name in RECOVERY_CLASSES:
                    if isinstance(row.get("recoveries_done"), int):
                        recovery_done_total += row["recoveries_done"]
                    if isinstance(row.get("sync_bytes"), int):
                        sync_bytes_total += row["sync_bytes"]

        # When the always-wiping class was part of the campaign, at
        # least one protocol must have completed a non-empty state
        # transfer — the acceptance bar for the recovery machinery
        # being alive.
        if "amnesia" in seen:
            if recovery_done_total == 0:
                err(path, "no completed recovery in any state-wiping fault class")
            elif sync_bytes_total == 0:
                err(path, "recoveries completed but transferred zero bytes in total")

    overall = require(doc, path, "overall", list)
    if overall is not None:
        if not overall:
            err(path, "'overall' is empty")
        validate_ranking(f"{path}/overall", overall)
        for pi, row in enumerate(overall):
            p = f"{path}/overall[{pi}]"
            if not isinstance(row, dict):
                err(p, "not an object")
                continue
            require(row, p, "protocol", str)
            for key in ("availability", "stale_fraction", "max_staleness_ms",
                        "mean_age_ms", "max_age_ms"):
                require(row, p, key, NUM)
            require(row, p, "violations", int)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for fname in argv[1:]:
        validate(fname)
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        return 1
    print(f"validate_nemesis: {len(argv) - 1} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
