#!/usr/bin/env python3
"""Validate dqr-lint report files: schema-2 JSON and SARIF 2.1.0.

Sibling of validate_bench.py / validate_nemesis.py for the static
analysis job. Each argument is sniffed by shape — a schema-2 report
(`{"version":2,...}`) or a SARIF log (`{"version":"2.1.0",...}`) — and
checked structurally:

schema-2:
  - version == 2, count == len(diagnostics),
  - the rule table carries id/name/summary/scope/findings per rule,
    with unique ids and per-rule tallies summing to count,
  - every diagnostic names a tabled rule, with 1-based line and
    0-based col.

SARIF:
  - version == "2.1.0" and a 2.1.0 $schema pointer,
  - exactly one run, tool.driver has name/version and a rule array
    with unique ids and shortDescription text,
  - every result's ruleId is a driver rule and ruleIndex (when
    present) agrees with it; regions are 1-based.

Usage: validate_lint.py REPORT.json [REPORT.sarif ...]
Exits non-zero with one message per problem.
"""

import json
import sys

errors = []


def err(path, msg):
    errors.append(f"{path}: {msg}")


def require(doc, path, key, types):
    if key not in doc:
        err(path, f"missing key '{key}'")
        return None
    v = doc[key]
    if not isinstance(v, types):
        names = "/".join(t.__name__ for t in types) if isinstance(types, tuple) else types.__name__
        err(path, f"'{key}' should be {names}, got {type(v).__name__}")
        return None
    return v


def check_schema2(path, doc):
    if doc.get("version") != 2:
        err(path, f"version should be 2, got {doc.get('version')!r}")
    count = require(doc, path, "count", int)
    rules = require(doc, path, "rules", list) or []
    diags = require(doc, path, "diagnostics", list) or []

    ids = set()
    tally = 0
    for i, r in enumerate(rules):
        rp = f"{path}:rules[{i}]"
        if not isinstance(r, dict):
            err(rp, "rule entries should be objects")
            continue
        rid = require(r, rp, "id", str)
        require(r, rp, "name", str)
        require(r, rp, "summary", str)
        require(r, rp, "scope", str)
        findings = require(r, rp, "findings", int)
        if rid is not None:
            if rid in ids:
                err(rp, f"duplicate rule id {rid!r}")
            ids.add(rid)
        if findings is not None:
            if findings < 0:
                err(rp, f"findings should be >= 0, got {findings}")
            else:
                tally += findings

    if count is not None and count != len(diags):
        err(path, f"count={count} but {len(diags)} diagnostics")
    if count is not None and rules and tally != count:
        err(path, f"per-rule findings sum to {tally}, count is {count}")

    per_rule = {}
    for i, d in enumerate(diags):
        dp = f"{path}:diagnostics[{i}]"
        if not isinstance(d, dict):
            err(dp, "diagnostics should be objects")
            continue
        rid = require(d, dp, "rule", str)
        require(d, dp, "file", str)
        line = require(d, dp, "line", int)
        col = require(d, dp, "col", int)
        require(d, dp, "message", str)
        if rid is not None:
            if rules and rid not in ids:
                err(dp, f"rule {rid!r} is not in the rule table")
            per_rule[rid] = per_rule.get(rid, 0) + 1
        if line is not None and line < 1:
            err(dp, f"line should be 1-based, got {line}")
        if col is not None and col < 0:
            err(dp, f"col should be >= 0, got {col}")

    for r in rules:
        if isinstance(r, dict) and isinstance(r.get("id"), str) and isinstance(r.get("findings"), int):
            actual = per_rule.get(r["id"], 0)
            if r["findings"] != actual:
                err(path, f"rule {r['id']} tallies {r['findings']} findings, {actual} diagnostics carry it")


def check_sarif(path, doc):
    if doc.get("version") != "2.1.0":
        err(path, f"SARIF version should be '2.1.0', got {doc.get('version')!r}")
    schema = doc.get("$schema", "")
    if "sarif" not in schema or "2.1.0" not in schema:
        err(path, f"$schema should point at the SARIF 2.1.0 schema, got {schema!r}")
    runs = require(doc, path, "runs", list) or []
    if len(runs) != 1:
        err(path, f"expected exactly one run, got {len(runs)}")
        return
    run = runs[0]
    rp = f"{path}:runs[0]"
    driver = run.get("tool", {}).get("driver")
    if not isinstance(driver, dict):
        err(rp, "missing tool.driver")
        return
    require(driver, f"{rp}:driver", "name", str)
    require(driver, f"{rp}:driver", "version", str)
    rules = require(driver, f"{rp}:driver", "rules", list) or []
    rule_ids = []
    for i, r in enumerate(rules):
        rrp = f"{rp}:driver.rules[{i}]"
        if not isinstance(r, dict):
            err(rrp, "rules should be objects")
            continue
        rid = require(r, rrp, "id", str)
        require(r, rrp, "name", str)
        short = r.get("shortDescription")
        if not (isinstance(short, dict) and isinstance(short.get("text"), str)):
            err(rrp, "missing shortDescription.text")
        rule_ids.append(rid)
    if len(set(rule_ids)) != len(rule_ids):
        err(rp, "duplicate rule ids in tool.driver.rules")

    for i, res in enumerate(run.get("results", [])):
        sp = f"{rp}:results[{i}]"
        if not isinstance(res, dict):
            err(sp, "results should be objects")
            continue
        rid = require(res, sp, "ruleId", str)
        if rid is not None and rule_ids and rid not in rule_ids:
            err(sp, f"ruleId {rid!r} is not a driver rule")
        idx = res.get("ruleIndex")
        if idx is not None:
            if not isinstance(idx, int) or idx < 0 or idx >= len(rule_ids):
                err(sp, f"ruleIndex {idx!r} out of range")
            elif rid is not None and rule_ids[idx] != rid:
                err(sp, f"ruleIndex {idx} names {rule_ids[idx]!r}, ruleId is {rid!r}")
        msg = res.get("message")
        if not (isinstance(msg, dict) and isinstance(msg.get("text"), str)):
            err(sp, "missing message.text")
        for j, loc in enumerate(res.get("locations", [])):
            lp = f"{sp}:locations[{j}]"
            phys = loc.get("physicalLocation", {}) if isinstance(loc, dict) else {}
            art = phys.get("artifactLocation", {})
            if not isinstance(art.get("uri"), str):
                err(lp, "missing artifactLocation.uri")
            region = phys.get("region", {})
            for key in ("startLine", "startColumn"):
                v = region.get(key)
                if not isinstance(v, int) or v < 1:
                    err(lp, f"region.{key} should be a 1-based int, got {v!r}")


def check_file(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(path, f"unreadable or invalid JSON: {e}")
        return
    if not isinstance(doc, dict):
        err(path, "top level should be an object")
    elif doc.get("version") == 2:
        check_schema2(path, doc)
    elif isinstance(doc.get("version"), str):
        check_sarif(path, doc)
    else:
        err(path, f"unrecognised report: version={doc.get('version')!r}")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        check_file(path)
    if errors:
        for e in errors:
            print(f"validate_lint: {e}", file=sys.stderr)
        return 1
    names = ", ".join(argv[1:])
    print(f"validate_lint: OK ({names})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
