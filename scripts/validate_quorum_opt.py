#!/usr/bin/env python3
"""Validate a `dqr quorum-opt` frontier JSON (schema "quorum-opt-1").

Checks:
  - document structure: inputs (nodes with id/fail_prob/latency_ms,
    read_fraction, max_votes), search coverage (candidates, truncated)
    and a non-empty frontier;
  - per point: votes/thresholds, explicit read and write strategies
    whose probabilities are non-negative and sum to 1, and the full
    metrics block;
  - the availability cross-check invariant: the optimizer's own
    quorum-list unavailability must match the independently computed
    check_{read,write}_unavailability fields (Availability.enumerate)
    to 1e-9 on every point;
  - the Pareto invariant: no frontier point dominates another on
    (load, latency, fault tolerance).

Usage: validate_quorum_opt.py FRONTIER.json [...]
Exits non-zero with one message per problem.
"""

import json
import sys

errors = []


def err(path, msg):
    errors.append(f"{path}: {msg}")


def require(doc, path, key, types):
    if key not in doc:
        err(path, f"missing key '{key}'")
        return None
    v = doc[key]
    if not isinstance(v, types):
        names = "/".join(t.__name__ for t in types) if isinstance(types, tuple) else types.__name__
        err(path, f"'{key}' should be {names}, got {type(v).__name__}")
        return None
    return v


NUM = (int, float)

POINT_METRICS = (
    "load", "capacity", "latency_ms", "read_unavailability",
    "write_unavailability", "check_read_unavailability",
    "check_write_unavailability",
)


def check_strategy(point, path, key):
    dist = require(point, path, key, list)
    if dist is None:
        return
    if not dist:
        err(path, f"'{key}' is empty")
        return
    total = 0.0
    for i, entry in enumerate(dist):
        epath = f"{path}.{key}[{i}]"
        if not isinstance(entry, dict):
            err(epath, "should be an object")
            continue
        quorum = require(entry, epath, "quorum", list)
        prob = require(entry, epath, "prob", NUM)
        if quorum is not None and not quorum:
            err(epath, "empty quorum")
        if prob is not None:
            if prob < 0:
                err(epath, f"negative probability {prob}")
            total += prob
    if abs(total - 1.0) > 1e-9:
        err(path, f"'{key}' probabilities sum to {total}, not 1")


def dominates(a, b):
    """Pareto dominance on (load down, latency down, fault tolerance up)."""
    no_worse = (
        a["load"] <= b["load"]
        and a["latency_ms"] <= b["latency_ms"]
        and a["fault_tolerance"] >= b["fault_tolerance"]
    )
    better = (
        a["load"] < b["load"]
        or a["latency_ms"] < b["latency_ms"]
        or a["fault_tolerance"] > b["fault_tolerance"]
    )
    return no_worse and better


def check_point(point, path):
    require(point, path, "name", str)
    kind = require(point, path, "kind", str)
    if kind is not None and kind not in ("load-optimal", "latency-optimal"):
        err(path, f"unknown kind '{kind}'")
    votes = require(point, path, "votes", list)
    if votes is not None:
        for v in votes:
            if not (isinstance(v, list) and len(v) == 2 and all(isinstance(x, int) for x in v)):
                err(path, f"votes entries should be [node, votes] pairs, got {v!r}")
                break
    for key in ("read_votes", "write_votes", "fault_tolerance"):
        v = require(point, path, key, int)
        if key != "fault_tolerance" and v is not None and v <= 0:
            err(path, f"'{key}' should be positive, got {v}")
    for key in POINT_METRICS:
        require(point, path, key, NUM)
    check_strategy(point, path, "read_strategy")
    check_strategy(point, path, "write_strategy")
    for side in ("read", "write"):
        reported = point.get(f"{side}_unavailability")
        checked = point.get(f"check_{side}_unavailability")
        if isinstance(reported, NUM) and isinstance(checked, NUM):
            if abs(reported - checked) > 1e-9:
                err(
                    path,
                    f"{side} unavailability {reported} disagrees with the "
                    f"Availability.enumerate cross-check {checked}",
                )


def check_doc(doc, path):
    schema = require(doc, path, "schema", str)
    if schema is not None and schema != "quorum-opt-1":
        err(path, f"unknown schema '{schema}'")
        return
    nodes = require(doc, path, "nodes", list)
    if nodes is not None:
        if not nodes:
            err(path, "no nodes")
        for i, node in enumerate(nodes):
            npath = f"{path}.nodes[{i}]"
            if not isinstance(node, dict):
                err(npath, "should be an object")
                continue
            require(node, npath, "id", int)
            p = require(node, npath, "fail_prob", NUM)
            if p is not None and not (0 <= p < 1):
                err(npath, f"fail_prob {p} outside [0, 1)")
            lat = require(node, npath, "latency_ms", NUM)
            if lat is not None and lat < 0:
                err(npath, f"negative latency {lat}")
    rf = require(doc, path, "read_fraction", NUM)
    if rf is not None and not (0 <= rf <= 1):
        err(path, f"read_fraction {rf} outside [0, 1]")
    require(doc, path, "max_votes", int)
    require(doc, path, "candidates", int)
    require(doc, path, "truncated", bool)
    frontier = require(doc, path, "frontier", list)
    if frontier is None:
        return
    if not frontier:
        err(path, "empty frontier")
        return
    for i, point in enumerate(frontier):
        ppath = f"{path}.frontier[{i}]"
        if not isinstance(point, dict):
            err(ppath, "should be an object")
            continue
        check_point(point, ppath)
    # Pareto invariant over the reported metrics.
    complete = [
        p for p in frontier
        if isinstance(p, dict)
        and all(isinstance(p.get(k), NUM) for k in ("load", "latency_ms"))
        and isinstance(p.get("fault_tolerance"), int)
    ]
    for i, a in enumerate(complete):
        for j, b in enumerate(complete):
            if i != j and dominates(a, b):
                err(
                    path,
                    f"frontier[{i}] ({a.get('name')}/{a.get('kind')}) dominates "
                    f"frontier[{j}] ({b.get('name')}/{b.get('kind')})",
                )


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            err(path, str(e))
            continue
        check_doc(doc, path)
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        return 1
    print(f"{len(argv) - 1} file(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
