#!/usr/bin/env python3
"""Validate bench result JSONs.

Two schemas are accepted, keyed by the top-level "schema" field:

  2 -- BENCH_<n>.json from bench/main.exe. Checks structure and the
       advisory invariant: any parallel timing taken with more jobs
       than cores must carry "advisory": true, so single-core CI runs
       can never be misread as speedup measurements.

  3 -- campaign results from `dqr bench run` / `dqr bench sweep`.
       Checks the self-describing scenario block, per-run metric
       structure (latency quantiles, message accounting, AoI and
       staleness blocks), and the cross-check invariant that the
       online AoI sink and the offline staleness oracle agree on
       their exactly-countable fields.

Usage: validate_bench.py RESULTS.json [...]
Exits non-zero with one message per problem.
"""

import json
import sys

errors = []


def err(path, msg):
    errors.append(f"{path}: {msg}")


def require(doc, path, key, types):
    if key not in doc:
        err(path, f"missing key '{key}'")
        return None
    v = doc[key]
    if not isinstance(v, types):
        names = "/".join(t.__name__ for t in types) if isinstance(types, tuple) else types.__name__
        err(path, f"'{key}' should be {names}, got {type(v).__name__}")
        return None
    return v


def check_advisory(doc, path, advisory_expected, parallel_key):
    """A non-null parallel timing must be flagged advisory iff the run was."""
    has_parallel = doc.get(parallel_key) is not None
    flagged = doc.get("advisory", False)
    if has_parallel and advisory_expected and flagged is not True:
        err(path, f"parallel timing present on an advisory run but 'advisory' is not true")
    if flagged and not has_parallel:
        err(path, "'advisory' set but no parallel timing present")


NUM = (int, float)

LATENCY_KINDS = ("read", "write", "all")
QUANTILES = ("mean", "p50", "p90", "p99", "max")
AOI_SCALARS = (
    "keys", "reads_checked", "stale_reads", "stale_fraction",
    "mean_behind_ms", "max_behind_ms", "max_versions_behind",
    "mean_read_age_ms", "max_read_age_ms", "time_avg_age_ms", "peak_age_ms",
)
AOI_HISTOGRAMS = ("read_age_ms", "behind_ms", "versions_behind")
ORACLE_KEYS = (
    "checked", "stale", "stale_fraction", "mean_behind_ms",
    "max_behind_ms", "max_versions_behind", "mean_age_ms", "max_age_ms",
)


def validate_result(path, run_id, kind, protocols, run):
    protocol = require(run, path, "protocol", str)
    if protocols is not None and protocol is not None and protocol not in protocols:
        err(path, f"protocol '{protocol}' not in the scenario's protocol list")
    if kind == "scenario" and protocol is not None and run_id != protocol:
        err(path, f"run id '{run_id}' should equal the protocol name in a scenario file")
    require(run, path, "wan_scale", NUM)
    require(run, path, "write_ratio", NUM)

    wall = require(run, path, "wall", (dict, type(None)))
    if isinstance(wall, dict):
        require(wall, f"{path}/wall", "wall_s", NUM)
        require(wall, f"{path}/wall", "events_per_sec", NUM)

    for key in ("sim_events", "issued", "completed", "failed", "gave_up", "violations"):
        require(run, path, key, int)
    issued, completed = run.get("issued"), run.get("completed")
    if isinstance(issued, int) and isinstance(completed, int) and completed > issued:
        err(path, f"completed ({completed}) exceeds issued ({issued})")
    require(run, path, "elapsed_virtual_ms", NUM)
    require(run, path, "throughput_per_s", NUM)

    latency = require(run, path, "latency_ms", dict)
    if latency is not None:
        for lk in LATENCY_KINDS:
            block = require(latency, f"{path}/latency_ms", lk, dict)
            if block is None:
                continue
            p = f"{path}/latency_ms/{lk}"
            require(block, p, "count", int)
            for q in QUANTILES:
                require(block, p, q, NUM)

    messages = require(run, path, "messages", dict)
    if messages is not None:
        p = f"{path}/messages"
        require(messages, p, "remote", int)
        require(messages, p, "bytes", int)
        require(messages, p, "per_request", NUM)
        require(messages, p, "bytes_per_request", NUM)

    aoi = require(run, path, "aoi", dict)
    if aoi is not None:
        p = f"{path}/aoi"
        for key in AOI_SCALARS:
            require(aoi, p, key, NUM)
        for key in AOI_HISTOGRAMS:
            hist = require(aoi, p, key, dict)
            if hist is None:
                continue
            hp = f"{p}/{key}"
            count = require(hist, hp, "count", int)
            for q in ("p50", "p90", "p99"):
                # Quantiles are null exactly when the histogram is empty.
                v = require(hist, hp, q, (int, float, type(None)))
                if count and v is None:
                    err(hp, f"'{q}' is null on a non-empty histogram")
            buckets = require(hist, hp, "buckets", dict)
            if buckets is not None:
                if not all(isinstance(c, int) for c in buckets.values()):
                    err(hp, "bucket counts must be integers")
                if count is not None and sum(buckets.values()) != count:
                    err(hp, "bucket counts do not sum to 'count'")

    oracle = require(run, path, "staleness_oracle", dict)
    if oracle is not None:
        p = f"{path}/staleness_oracle"
        for key in ORACLE_KEYS:
            require(oracle, p, key, NUM)

    # The cross-check invariant, visible in the document itself: the
    # online sink and the offline oracle were computed from one run and
    # must agree on everything exactly countable.
    if aoi is not None and oracle is not None:
        for a, o in (("reads_checked", "checked"), ("stale_reads", "stale"),
                     ("max_versions_behind", "max_versions_behind")):
            if a in aoi and o in oracle and aoi[a] != oracle[o]:
                err(path, f"aoi.{a} ({aoi[a]}) != staleness_oracle.{o} ({oracle[o]})")


def validate_v3(doc, path):
    require(doc, path, "generated_by", str)
    kind = require(doc, path, "kind", str)
    if kind is not None and kind not in ("scenario", "sweep"):
        err(path, f"kind '{kind}', expected 'scenario' or 'sweep'")

    scenario = require(doc, path, "scenario", dict)
    protocols = None
    if scenario is not None:
        p = f"{path}/scenario"
        require(scenario, p, "name", str)
        require(scenario, p, "version", int)
        require(scenario, p, "seed", int)
        require(scenario, p, "smoke", bool)
        for key in ("n_servers", "n_clients", "ops_per_client", "value_pad"):
            require(scenario, p, key, int)
        for key in ("write_ratio", "locality", "wan_scale"):
            require(scenario, p, key, NUM)
        protocols = require(scenario, p, "protocols", list)
        if kind == "sweep":
            sweep = require(scenario, p, "sweep", dict)
            if sweep is not None:
                for key in ("wan_scales", "write_ratios"):
                    axis = require(sweep, f"{p}/sweep", key, list)
                    if axis is not None and not axis:
                        err(f"{p}/sweep", f"'{key}' is empty in a sweep file")

    band = require(doc, path, "noise_band", NUM)
    if band is not None and not 0 < band < 1:
        err(path, f"noise_band {band} outside (0, 1)")

    results = require(doc, path, "results", dict)
    if results is not None:
        if not results:
            err(path, "'results' is empty")
        for run_id, run in results.items():
            p = f"{path}/results/{run_id}"
            if not isinstance(run, dict):
                err(p, "not an object")
                continue
            validate_result(p, run_id, kind, protocols, run)


def validate(fname):
    path = fname
    try:
        with open(fname) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(path, str(e))
        return

    schema = require(doc, path, "schema", int)
    if schema == 3:
        validate_v3(doc, path)
        return
    if schema != 2:
        err(path, f"schema {doc.get('schema')!r}, expected 2 or 3")
        return
    require(doc, path, "generated_by", str)
    jobs = require(doc, path, "jobs", int)
    cores = require(doc, path, "cores", int)
    advisory = require(doc, path, "advisory", bool)
    if None in (jobs, cores, advisory):
        return
    advisory_expected = jobs > 1 and cores <= 1
    if advisory != advisory_expected:
        err(path, f"advisory is {advisory} but jobs={jobs}, cores={cores} imply {advisory_expected}")

    eps = require(doc, path, "events_per_sec", (dict, type(None)))
    if isinstance(eps, dict):
        p = f"{path}/events_per_sec"
        require(eps, p, "workload_events", int)
        require(eps, p, "serial", (int, float))
        if "parallel" not in eps:
            err(p, "missing key 'parallel'")
        check_advisory(eps, p, advisory_expected, "parallel")

    total = require(doc, path, "total", dict)
    if total is not None:
        p = f"{path}/total"
        require(total, p, "serial_s", (int, float))
        check_advisory(total, p, advisory_expected, "parallel_s")

    figures = require(doc, path, "figures", list)
    for i, fig in enumerate(figures or []):
        p = f"{path}/figures[{i}]"
        if not isinstance(fig, dict):
            err(p, "not an object")
            continue
        require(fig, p, "name", str)
        require(fig, p, "serial_s", (int, float))
        check_advisory(fig, p, advisory_expected, "parallel_s")

    micro = require(doc, path, "microbench_ns_per_run", list)
    for i, m in enumerate(micro or []):
        p = f"{path}/microbench_ns_per_run[{i}]"
        if not isinstance(m, dict):
            err(p, "not an object")
            continue
        require(m, p, "name", str)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for fname in argv[1:]:
        validate(fname)
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        return 1
    print(f"validate_bench: {len(argv) - 1} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
