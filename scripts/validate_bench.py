#!/usr/bin/env python3
"""Validate a BENCH_<n>.json emitted by bench/main.exe (schema 2).

Checks structure and the advisory invariant: any parallel timing taken
with more jobs than cores must carry "advisory": true, so single-core
CI runs can never be misread as speedup measurements.

Usage: validate_bench.py BENCH_2.json [...]
Exits non-zero with one message per problem.
"""

import json
import sys

errors = []


def err(path, msg):
    errors.append(f"{path}: {msg}")


def require(doc, path, key, types):
    if key not in doc:
        err(path, f"missing key '{key}'")
        return None
    v = doc[key]
    if not isinstance(v, types):
        names = "/".join(t.__name__ for t in types) if isinstance(types, tuple) else types.__name__
        err(path, f"'{key}' should be {names}, got {type(v).__name__}")
        return None
    return v


def check_advisory(doc, path, advisory_expected, parallel_key):
    """A non-null parallel timing must be flagged advisory iff the run was."""
    has_parallel = doc.get(parallel_key) is not None
    flagged = doc.get("advisory", False)
    if has_parallel and advisory_expected and flagged is not True:
        err(path, f"parallel timing present on an advisory run but 'advisory' is not true")
    if flagged and not has_parallel:
        err(path, "'advisory' set but no parallel timing present")


def validate(fname):
    path = fname
    try:
        with open(fname) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(path, str(e))
        return

    if require(doc, path, "schema", int) != 2:
        err(path, f"schema {doc.get('schema')!r}, expected 2")
        return
    require(doc, path, "generated_by", str)
    jobs = require(doc, path, "jobs", int)
    cores = require(doc, path, "cores", int)
    advisory = require(doc, path, "advisory", bool)
    if None in (jobs, cores, advisory):
        return
    advisory_expected = jobs > 1 and cores <= 1
    if advisory != advisory_expected:
        err(path, f"advisory is {advisory} but jobs={jobs}, cores={cores} imply {advisory_expected}")

    eps = require(doc, path, "events_per_sec", (dict, type(None)))
    if isinstance(eps, dict):
        p = f"{path}/events_per_sec"
        require(eps, p, "workload_events", int)
        require(eps, p, "serial", (int, float))
        if "parallel" not in eps:
            err(p, "missing key 'parallel'")
        check_advisory(eps, p, advisory_expected, "parallel")

    total = require(doc, path, "total", dict)
    if total is not None:
        p = f"{path}/total"
        require(total, p, "serial_s", (int, float))
        check_advisory(total, p, advisory_expected, "parallel_s")

    figures = require(doc, path, "figures", list)
    for i, fig in enumerate(figures or []):
        p = f"{path}/figures[{i}]"
        if not isinstance(fig, dict):
            err(p, "not an object")
            continue
        require(fig, p, "name", str)
        require(fig, p, "serial_s", (int, float))
        check_advisory(fig, p, advisory_expected, "parallel_s")

    micro = require(doc, path, "microbench_ns_per_run", list)
    for i, m in enumerate(micro or []):
        p = f"{path}/microbench_ns_per_run[{i}]"
        if not isinstance(m, dict):
            err(p, "not an object")
            continue
        require(m, p, "name", str)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for fname in argv[1:]:
        validate(fname)
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        return 1
    print(f"validate_bench: {len(argv) - 1} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
