type peer = { mutable sent_at : float option; mutable ewma : float option }

type t = { now : unit -> float; peers : (int, peer) Hashtbl.t }

let alpha = 0.2

let create ~now = { now; peers = Hashtbl.create 16 }

let peer t id =
  match Hashtbl.find_opt t.peers id with
  | Some p -> p
  | None ->
    let p = { sent_at = None; ewma = None } in
    Hashtbl.add t.peers id p;
    p

let note_sent t id = (peer t id).sent_at <- Some (t.now ())

let note_reply t id =
  let p = peer t id in
  match p.sent_at with
  | None -> ()
  | Some sent ->
    p.sent_at <- None;
    let sample = t.now () -. sent in
    p.ewma <-
      Some
        (match p.ewma with
        | None -> sample
        | Some prev -> ((1. -. alpha) *. prev) +. (alpha *. sample))

let estimate_ms t id =
  match Hashtbl.find_opt t.peers id with Some { ewma; _ } -> ewma | None -> None

let rank t candidates =
  let unexplored, explored =
    List.partition (fun id -> Option.is_none (estimate_ms t id)) candidates
  in
  let sorted =
    List.sort
      (fun a b ->
        Float.compare
          (Option.value (estimate_ms t a) ~default:infinity)
          (Option.value (estimate_ms t b) ~default:infinity))
      explored
  in
  unexplored @ sorted

let observed_peers t =
  Hashtbl.fold
    (fun _ p acc -> if Option.is_some p.ewma then acc + 1 else acc)
    t.peers 0
