type peer = { mutable sent_at : float option; mutable ewma : float option }

(* [observed] counts peers whose ewma went None -> Some, maintained at
   the transition so the read is O(1) rather than a table fold. *)
type t = {
  now : unit -> float;
  mutable observed : int;
  peers : (int, peer) Hashtbl.t;
}

let alpha = 0.2

let create ~now = { now; observed = 0; peers = Hashtbl.create 16 }

let peer t id =
  match Hashtbl.find_opt t.peers id with
  | Some p -> p
  | None ->
    let p = { sent_at = None; ewma = None } in
    Hashtbl.add t.peers id p;
    p

let note_sent t id = (peer t id).sent_at <- Some (t.now ())

let note_reply t id =
  let p = peer t id in
  match p.sent_at with
  | None -> ()
  | Some sent ->
    p.sent_at <- None;
    let sample = t.now () -. sent in
    (match p.ewma with
    | None -> t.observed <- t.observed + 1
    | Some _ -> ());
    p.ewma <-
      Some
        (match p.ewma with
        | None -> sample
        | Some prev -> ((1. -. alpha) *. prev) +. (alpha *. sample))

let estimate_ms t id =
  match Hashtbl.find_opt t.peers id with Some { ewma; _ } -> ewma | None -> None

let rank t candidates =
  let unexplored, explored =
    List.partition (fun id -> Option.is_none (estimate_ms t id)) candidates
  in
  let sorted =
    List.sort
      (fun a b ->
        Float.compare
          (Option.value (estimate_ms t a) ~default:infinity)
          (Option.value (estimate_ms t b) ~default:infinity))
      explored
  in
  unexplored @ sorted

let observed_peers t = t.observed
