(** A retransmit-until-done loop.

    This is the engine under QRPC (Section 2 of the paper): send a round
    of requests, wait with an exponentially increasing interval, and
    re-send (possibly to a different set of nodes — the [attempt]
    callback decides) until a completion condition holds. The DQVL
    client read uses the generalized form directly: each round sends
    {e different} requests to different nodes and completion is a
    predicate over protocol state ("condition C"), not a reply count. *)

type t

val start :
  timer:(delay_ms:float -> (unit -> unit) -> Dq_sim.Engine.handle) ->
  attempt:(round:int -> unit) ->
  complete:(unit -> bool) ->
  on_complete:(unit -> unit) ->
  ?timeout_ms:float ->
  ?backoff:float ->
  ?max_rounds:int ->
  ?on_give_up:(unit -> unit) ->
  ?bus:Dq_telemetry.Bus.t ->
  ?node:int ->
  ?tag:string ->
  unit ->
  t
(** Runs [attempt ~round:0] immediately. If [complete ()] is already
    true, [on_complete] fires synchronously and no timer is armed.
    Otherwise a retransmission timer fires after [timeout_ms]
    (default 200), multiplied by [backoff] (default 2) each round.
    After [max_rounds] attempts (default unlimited) [on_give_up] is
    called (default: keep silent, stop retrying).

    [timer] should be a node-scoped timer ({!Dq_net.Net.timer}) so the
    loop dies with its node.

    When a [bus] is supplied, every attempt publishes an [Rpc_round]
    event and exhaustion publishes [Rpc_give_up], attributed to [node]
    and labelled [tag] (e.g. ["fe.read"]). Default: the null bus —
    silent. *)

val poke : t -> unit
(** Re-test the completion condition; fires [on_complete] (once) if it
    now holds. Call this after processing each reply. *)

val rerun : t -> unit
(** If the loop is still running, immediately run another [attempt]
    (with the current round number) and re-test completion. Use when
    new information invalidates what the previous round requested —
    e.g. an invalidation arrives while renewals are in flight — so the
    loop does not stall until its retransmission timer. The timer
    schedule is unchanged. *)

val cancel : t -> unit
(** Stop retrying; no callback fires. Idempotent. *)

val is_done : t -> bool
(** True once [on_complete] or [on_give_up] has fired or after {!cancel}. *)
