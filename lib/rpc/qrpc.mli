(** QRPC — quorum-based remote procedure call (paper, Section 2).

    [replies = QRPC(system, READ/WRITE, request)]: send the request to
    enough nodes of a quorum system, collect replies until they contain
    the specified quorum, retransmitting to a freshly selected random
    quorum on timeout with an exponentially increasing interval. This
    mirrors the paper's "simple prototype implementation", including its
    preference for the local node when it is a member of the system. *)

type quorum_mode = Read | Write

type 'rep t

val call :
  timer:(delay_ms:float -> (unit -> unit) -> Dq_sim.Engine.handle) ->
  rng:Dq_util.Rng.t ->
  system:Dq_quorum.Quorum_system.t ->
  mode:quorum_mode ->
  send:(int -> unit) ->
  on_quorum:((int * 'rep) list -> unit) ->
  ?prefer:int ->
  ?tracker:Peer_tracker.t ->
  ?strategy:Dq_quorum.Strategy.t ->
  ?timeout_ms:float ->
  ?backoff:float ->
  ?max_rounds:int ->
  ?on_give_up:(unit -> unit) ->
  ?bus:Dq_telemetry.Bus.t ->
  ?node:int ->
  ?tag:string ->
  unit ->
  'rep t
(** [bus]/[node]/[tag] attribute per-round telemetry (see
    {!Retry.start}). [send dst] must transmit the request (with whatever rpc id the
    caller needs to route the reply back via {!deliver}). [on_quorum]
    fires exactly once, with one (node, reply) pair per responder — if a
    node replied several times (retransmission, duplication), the latest
    reply wins. [prefer] (typically the calling node itself) is always
    included in the contacted set when it is a member of the system.
    [strategy] selects the first-round quorum: omitted (or default), the
    legacy sampler with the [prefer]/[tracker] refinements runs, drawing
    the exact same RNG stream as before strategies existed; an explicit
    strategy (see {!Dq_quorum.Strategy.explicit}) is sampled as-is — its
    distribution {e is} the policy, so [prefer] and [tracker] do not
    rewrite the choice. Retransmission rounds always escalate to all
    members regardless of strategy. *)

val deliver : 'rep t -> src:int -> 'rep -> unit
(** Record a reply. Replies from nodes outside the system are ignored;
    replies after completion are ignored. *)

val cancel : 'rep t -> unit

val is_done : 'rep t -> bool

val replies : 'rep t -> (int * 'rep) list
(** Replies received so far. *)

val pick_read_targets :
  ?tracker:Peer_tracker.t ->
  ?strategy:Dq_quorum.Strategy.t ->
  rng:Dq_util.Rng.t ->
  system:Dq_quorum.Quorum_system.t ->
  prefer:int ->
  unit ->
  int list
(** The target-selection policy alone (a minimal read quorum — random,
    or fastest-first when a {!Peer_tracker.t} is supplied — always
    preferring [prefer] when it is a member; an explicit [strategy] is
    sampled verbatim instead) — for callers that run their own retry
    loop, like the DQVL ensure-condition-C variation. *)
