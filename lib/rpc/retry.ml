type t = {
  timer : delay_ms:float -> (unit -> unit) -> Dq_sim.Engine.handle;
  attempt : round:int -> unit;
  complete : unit -> bool;
  on_complete : unit -> unit;
  timeout_ms : float;
  backoff : float;
  max_rounds : int option;
  on_give_up : unit -> unit;
  bus : Dq_telemetry.Bus.t;
  node : int;
  tag : string;
  mutable round : int;
  mutable done_ : bool;
  mutable pending : Dq_sim.Engine.handle option;
}

let disarm t =
  match t.pending with
  | Some handle ->
    Dq_sim.Engine.cancel handle;
    t.pending <- None
  | None -> ()

let finish t callback =
  if not t.done_ then begin
    t.done_ <- true;
    disarm t;
    callback ()
  end

let poke t = if (not t.done_) && t.complete () then finish t t.on_complete

(* Every (re)transmission attempt surfaces as an [Rpc_round] event —
   round 0 is the initial send, later rounds are retries. *)
let run_attempt t ~round =
  if Dq_telemetry.Bus.subscribed t.bus then
    Dq_telemetry.Bus.emit t.bus
      (Dq_telemetry.Event.Rpc_round { node = t.node; tag = t.tag; round });
  t.attempt ~round

let rerun t =
  if not t.done_ then begin
    run_attempt t ~round:t.round;
    poke t
  end

let rec arm t =
  let delay_ms = t.timeout_ms *. (t.backoff ** float_of_int t.round) in
  t.pending <- Some (t.timer ~delay_ms (fun () -> on_timeout t))

and on_timeout t =
  if not t.done_ then begin
    t.pending <- None;
    let exhausted =
      match t.max_rounds with None -> false | Some m -> t.round + 1 >= m
    in
    if exhausted then begin
      if Dq_telemetry.Bus.subscribed t.bus then
        Dq_telemetry.Bus.emit t.bus
          (Dq_telemetry.Event.Rpc_give_up
             { node = t.node; tag = t.tag; rounds = t.round + 1 });
      finish t t.on_give_up
    end
    else begin
      t.round <- t.round + 1;
      run_attempt t ~round:t.round;
      poke t;
      if not t.done_ then arm t
    end
  end

let start ~timer ~attempt ~complete ~on_complete ?(timeout_ms = 200.) ?(backoff = 2.)
    ?max_rounds ?(on_give_up = fun () -> ()) ?(bus = Dq_telemetry.Bus.null) ?(node = -1)
    ?(tag = "rpc") () =
  let t =
    {
      timer;
      attempt;
      complete;
      on_complete;
      timeout_ms;
      backoff;
      max_rounds;
      on_give_up;
      bus;
      node;
      tag;
      round = 0;
      done_ = false;
      pending = None;
    }
  in
  run_attempt t ~round:0;
  poke t;
  if not t.done_ then arm t;
  t

let cancel t =
  if not t.done_ then begin
    t.done_ <- true;
    disarm t
  end

let is_done t = t.done_
