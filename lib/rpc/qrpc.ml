module Qs = Dq_quorum.Quorum_system
module Strategy = Dq_quorum.Strategy

type quorum_mode = Read | Write

let qs_mode = function Read -> Qs.Read | Write -> Qs.Write

type 'rep t = {
  system : Qs.t;
  replies : (int, 'rep) Hashtbl.t;
  tracker : Peer_tracker.t option;
  mutable retry : Retry.t option;
}

(* Sorted by replier id: the reply table is keyed by node, and hash
   order must not leak into quorum callbacks (R7). *)
let replies t =
  Hashtbl.fold (fun src rep acc -> (src, rep) :: acc) t.replies []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Pick a quorum to contact, always including [prefer] when it is a
   member (the paper's prototype contacts the local node first and fills
   the rest of the quorum randomly). With a [tracker], counting systems
   instead take the historically fastest members ("track which nodes
   have responded quickly in the past and first try sending to them").
   An explicit [strategy] overrides both: its distribution is the
   configured policy, so the sample is used as-is — no prefer swap, no
   latency ranking. *)
let pick_targets ?tracker ?strategy ~rng ~system ~mode ~prefer () =
  let strategy =
    match strategy with Some s -> s | None -> Strategy.default system (qs_mode mode)
  in
  if not (Strategy.is_default strategy) then Strategy.sample strategy rng
  else
    let tracked =
      match tracker, Qs.counting_thresholds system with
      | Some tracker, Some (read, write) ->
        let k = match mode with Read -> read | Write -> write in
        let members =
          match prefer with
          | Some node when Qs.mem system node ->
            node :: List.filter (fun m -> m <> node) (Qs.members system)
          | Some _ | None -> Qs.members system
        in
        let ranked =
          match prefer with
          | Some node when Qs.mem system node ->
            node :: Peer_tracker.rank tracker (List.filter (fun m -> m <> node) members)
          | Some _ | None -> Peer_tracker.rank tracker members
        in
        Some (List.filteri (fun i _ -> i < k) ranked)
      | _ -> None
    in
    match tracked with
    | Some targets -> targets
    | None -> (
      let base = Strategy.sample strategy rng in
      match prefer with
      | Some node when Qs.mem system node && not (List.mem node base) -> (
        match Qs.counting_thresholds system with
        | Some _ ->
          (* Counting system: swapping any chosen member for [node] keeps a
             valid quorum. *)
          (match base with [] -> [ node ] | _ :: rest -> node :: rest)
        | None -> base (* structured quorums: keep the valid random choice *))
      | Some _ | None -> base)

let pick_read_targets ?tracker ?strategy ~rng ~system ~prefer () =
  pick_targets ?tracker ?strategy ~rng ~system ~mode:Read ~prefer:(Some prefer) ()

let call ~timer ~rng ~system ~mode ~send ~on_quorum ?prefer ?tracker ?strategy
    ?timeout_ms ?backoff ?max_rounds ?on_give_up ?bus ?node ?tag () =
  let t = { system; replies = Hashtbl.create 8; tracker; retry = None } in
  let attempt ~round =
    (* First try a minimal quorum; a retransmission means some target is
       slow or dead, so escalate to every member that has not yet
       replied (the paper's "more aggressive implementation might send
       to all nodes in system"). *)
    let targets =
      if round = 0 then pick_targets ?tracker ?strategy ~rng ~system ~mode ~prefer ()
      else List.filter (fun m -> not (Hashtbl.mem t.replies m)) (Qs.members system)
    in
    List.iter
      (fun dst ->
        (match tracker with Some tr -> Peer_tracker.note_sent tr dst | None -> ());
        send dst)
      targets
  in
  let complete () =
    let present id = Hashtbl.mem t.replies id in
    match mode with
    | Read -> Qs.is_read_quorum t.system ~present
    | Write -> Qs.is_write_quorum t.system ~present
  in
  let on_complete () = on_quorum (replies t) in
  let retry =
    Retry.start ~timer ~attempt ~complete ~on_complete ?timeout_ms ?backoff ?max_rounds
      ?on_give_up ?bus ?node ?tag ()
  in
  t.retry <- Some retry;
  t

let deliver t ~src rep =
  if Qs.mem t.system src then begin
    (match t.tracker with Some tr -> Peer_tracker.note_reply tr src | None -> ());
    Hashtbl.replace t.replies src rep;
    match t.retry with Some retry -> Retry.poke retry | None -> ()
  end

let cancel t = match t.retry with Some retry -> Retry.cancel retry | None -> ()

let is_done t = match t.retry with Some retry -> Retry.is_done retry | None -> false
