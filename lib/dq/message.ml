open Dq_storage

type obj_grant = {
  g_key : Key.t;
  g_epoch : int;
  g_lc : Lc.t;
  g_value : string;
  g_lease_ms : float;  (** object lease duration; [infinity] = callback *)
  g_t0 : float;        (** echo of the requestor's local send time *)
}

type t =
  | Client_read_req of { op : int; key : Key.t }
  | Client_read_reply of { op : int; key : Key.t; value : string; lc : Lc.t }
  | Client_write_req of { op : int; key : Key.t; value : string }
  | Client_write_reply of { op : int; key : Key.t; lc : Lc.t }
  | Client_read_fail of { op : int; key : Key.t }
  | Client_write_fail of { op : int; key : Key.t }
  | Oqs_read_req of { op : int; key : Key.t }
  | Oqs_read_reply of { op : int; key : Key.t; value : string; lc : Lc.t }
  | Lc_read_req of { op : int }
  | Lc_read_reply of { op : int; lc : Lc.t }
  | Iqs_write_req of { op : int; key : Key.t; value : string; lc : Lc.t }
  | Iqs_write_ack of { op : int; key : Key.t; lc : Lc.t }
  | Obj_renew_req of { key : Key.t; t0 : float }
  | Obj_renew_reply of { grant : obj_grant }
  | Vol_renew_req of { volume : int; t0 : float; want : Key.t option; epoch : int }
      (** [epoch] is the requester's cached epoch for the volume: a
          grantor that lost its durable state (amnesia) must issue a
          strictly higher epoch so every pre-wipe object lease of the
          volume is invalidated at once. *)
  | Vol_renew_reply of {
      volume : int;
      lease_ms : float;
      epoch : int;
      t0 : float;
      delayed : (Key.t * Lc.t) list;
      grant : obj_grant option;
    }
  | Vol_renew_ack of { volume : int; upto : Lc.t }
  | Vols_renew_req of { volumes : (int * int) list; t0 : float }
      (** Batched renewal: [(volume, cached epoch)] pairs. *)
  | Vols_renew_reply of {
      t0 : float;
      lease_ms : float;
      grants : (int * int * (Key.t * Lc.t) list) list;
    }
  | Inval of { key : Key.t; lc : Lc.t }
  | Inval_ack of { key : Key.t; lc : Lc.t }
  | Sync_req of { session : int; volume : int }
      (** State transfer after amnesia: ask a peer IQS node for every
          object it stores in [volume] (one volume per chunk, so the
          transfer is resumable at volume granularity). *)
  | Sync_resp of {
      session : int;
      volume : int;
      max_volume : int;
      global_lc : Lc.t;
      objects : (Key.t * Lc.t * string) list;
    }
      (** One chunk of state transfer. [max_volume] bounds the
          requester's cursor (the highest volume the responder has any
          state for), so the transfer terminates. *)

let classify = function
  | Client_read_req _ -> "client_read_req"
  | Client_read_reply _ -> "client_read_reply"
  | Client_write_req _ -> "client_write_req"
  | Client_write_reply _ -> "client_write_reply"
  | Client_read_fail _ -> "client_read_fail"
  | Client_write_fail _ -> "client_write_fail"
  | Oqs_read_req _ -> "oqs_read_req"
  | Oqs_read_reply _ -> "oqs_read_reply"
  | Lc_read_req _ -> "lc_read_req"
  | Lc_read_reply _ -> "lc_read_reply"
  | Iqs_write_req _ -> "iqs_write_req"
  | Iqs_write_ack _ -> "iqs_write_ack"
  | Obj_renew_req _ -> "obj_renew_req"
  | Obj_renew_reply _ -> "obj_renew_reply"
  | Vol_renew_req _ -> "vol_renew_req"
  | Vol_renew_reply _ -> "vol_renew_reply"
  | Vol_renew_ack _ -> "vol_renew_ack"
  | Vols_renew_req _ -> "vols_renew_req"
  | Vols_renew_reply _ -> "vols_renew_reply"
  | Inval _ -> "inval"
  | Inval_ack _ -> "inval_ack"
  | Sync_req _ -> "sync_req"
  | Sync_resp _ -> "sync_resp"

(* Wire-size model: 48-byte header (addressing, type, checksums), 8 B
   per identifier/clock/number field, payloads at their length. *)
let header = 48

let key_sz = 8

let lc_sz = 12

let grant_size (g : obj_grant) = key_sz + 8 + lc_sz + String.length g.g_value + 8 + 8

let size_of = function
  | Client_read_req _ -> header + 8 + key_sz
  | Client_read_reply { value; _ } -> header + 8 + key_sz + String.length value + lc_sz
  | Client_write_req { value; _ } -> header + 8 + key_sz + String.length value
  | Client_write_reply _ -> header + 8 + key_sz + lc_sz
  | Client_read_fail _ | Client_write_fail _ -> header + 8 + key_sz
  | Oqs_read_req _ -> header + 8 + key_sz
  | Oqs_read_reply { value; _ } -> header + 8 + key_sz + String.length value + lc_sz
  | Lc_read_req _ -> header + 8
  | Lc_read_reply _ -> header + 8 + lc_sz
  | Iqs_write_req { value; _ } -> header + 8 + key_sz + String.length value + lc_sz
  | Iqs_write_ack _ -> header + 8 + key_sz + lc_sz
  | Obj_renew_req _ -> header + key_sz + 8
  | Obj_renew_reply { grant } -> header + grant_size grant
  | Vol_renew_req _ -> header + 8 + 8 + 8 + key_sz
  | Vol_renew_reply { delayed; grant; _ } ->
    header + 8 + 8 + 8 + 8
    + (List.length delayed * (key_sz + lc_sz))
    + (match grant with Some g -> grant_size g | None -> 0)
  | Vol_renew_ack _ -> header + 8 + lc_sz
  | Vols_renew_req { volumes; _ } -> header + 8 + (16 * List.length volumes)
  | Vols_renew_reply { grants; _ } ->
    header + 8 + 8
    + List.fold_left
        (fun acc (_, _, delayed) -> acc + 16 + (List.length delayed * (key_sz + lc_sz)))
        0 grants
  | Inval _ -> header + key_sz + lc_sz
  | Inval_ack _ -> header + key_sz + lc_sz
  | Sync_req _ -> header + 8 + 8
  | Sync_resp { objects; _ } ->
    header + 8 + 8 + 8 + lc_sz
    + List.fold_left
        (fun acc (_, _, value) -> acc + key_sz + lc_sz + String.length value)
        0 objects

let pp ppf t =
  match t with
  | Client_read_req { op; key } -> Format.fprintf ppf "Client_read_req(op=%d,%a)" op Key.pp key
  | Client_read_reply { op; key; lc; _ } ->
    Format.fprintf ppf "Client_read_reply(op=%d,%a,lc=%a)" op Key.pp key Lc.pp lc
  | Client_write_req { op; key; _ } ->
    Format.fprintf ppf "Client_write_req(op=%d,%a)" op Key.pp key
  | Client_write_reply { op; key; lc } ->
    Format.fprintf ppf "Client_write_reply(op=%d,%a,lc=%a)" op Key.pp key Lc.pp lc
  | Client_read_fail { op; key } -> Format.fprintf ppf "Client_read_fail(op=%d,%a)" op Key.pp key
  | Client_write_fail { op; key } ->
    Format.fprintf ppf "Client_write_fail(op=%d,%a)" op Key.pp key
  | Oqs_read_req { op; key } -> Format.fprintf ppf "Oqs_read_req(op=%d,%a)" op Key.pp key
  | Oqs_read_reply { op; key; lc; _ } ->
    Format.fprintf ppf "Oqs_read_reply(op=%d,%a,lc=%a)" op Key.pp key Lc.pp lc
  | Lc_read_req { op } -> Format.fprintf ppf "Lc_read_req(op=%d)" op
  | Lc_read_reply { op; lc } -> Format.fprintf ppf "Lc_read_reply(op=%d,lc=%a)" op Lc.pp lc
  | Iqs_write_req { op; key; lc; _ } ->
    Format.fprintf ppf "Iqs_write_req(op=%d,%a,lc=%a)" op Key.pp key Lc.pp lc
  | Iqs_write_ack { op; key; lc } ->
    Format.fprintf ppf "Iqs_write_ack(op=%d,%a,lc=%a)" op Key.pp key Lc.pp lc
  | Obj_renew_req { key; _ } -> Format.fprintf ppf "Obj_renew_req(%a)" Key.pp key
  | Obj_renew_reply { grant } ->
    Format.fprintf ppf "Obj_renew_reply(%a,e=%d,lc=%a)" Key.pp grant.g_key grant.g_epoch
      Lc.pp grant.g_lc
  | Vol_renew_req { volume; want; _ } ->
    Format.fprintf ppf "Vol_renew_req(v%d%s)" volume
      (match want with Some k -> "+" ^ Key.to_string k | None -> "")
  | Vol_renew_reply { volume; epoch; delayed; _ } ->
    Format.fprintf ppf "Vol_renew_reply(v%d,e=%d,|di|=%d)" volume epoch (List.length delayed)
  | Vol_renew_ack { volume; upto } ->
    Format.fprintf ppf "Vol_renew_ack(v%d,upto=%a)" volume Lc.pp upto
  | Vols_renew_req { volumes; _ } ->
    Format.fprintf ppf "Vols_renew_req(%d volumes)" (List.length volumes)
  | Vols_renew_reply { grants; _ } ->
    Format.fprintf ppf "Vols_renew_reply(%d volumes)" (List.length grants)
  | Inval { key; lc } -> Format.fprintf ppf "Inval(%a,lc=%a)" Key.pp key Lc.pp lc
  | Inval_ack { key; lc } -> Format.fprintf ppf "Inval_ack(%a,lc=%a)" Key.pp key Lc.pp lc
  | Sync_req { session; volume } -> Format.fprintf ppf "Sync_req(s%d,v%d)" session volume
  | Sync_resp { session; volume; max_volume; objects; _ } ->
    Format.fprintf ppf "Sync_resp(s%d,v%d/%d,|objs|=%d)" session volume max_volume
      (List.length objects)
