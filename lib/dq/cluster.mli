(** Wiring of a complete dual-quorum deployment inside the simulator.

    Every server node of the topology hosts a front end; nodes listed in
    the configuration's quorum systems additionally host an IQS and/or
    OQS role. Application-client nodes get a thin stub that routes
    replies back to submitted operations. Crashing a server wipes its
    volatile state (OQS cache, front-end pending operations, in-flight
    IQS loops) while IQS object state survives, per the paper's
    fail-stop model. *)

type t

val create :
  Dq_sim.Engine.t -> Dq_net.Topology.t -> ?faults:Dq_net.Net.fault_model -> Config.t -> t

val api : t -> Dq_intf.Replication.api
(** The protocol-independent interface used by the experiment harness. *)

val net : t -> Message.t Dq_net.Net.t

val config : t -> Config.t

val iqs_server : t -> int -> Iqs_server.t option
(** The IQS role of a node, for tests and examples. *)

val oqs_server : t -> int -> Oqs_server.t option

val frontend : t -> int -> Frontend.t option

val server_clock : t -> int -> Dq_sim.Clock.t option
(** The node's local clock, for introspection and fault injection
    (clock-skew bumps stay within the configured drift bound). *)
