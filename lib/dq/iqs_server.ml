open Dq_storage
module Qs = Dq_quorum.Quorum_system
module Net = Dq_net.Net
module Clock = Dq_sim.Clock

(* Per-object durable state: the stored version, the logical clock of
   the last write at the time of the last lease grant (lastReadLC), and
   the highest acknowledged invalidation per OQS node (lastAckLC). *)
type obj_state = {
  mutable value : Versioned.t;
  mutable last_read : Lc.t;
  acks : (int, Lc.t) Hashtbl.t;
  grants : (int, float) Hashtbl.t;
      (* per OQS node: local-clock expiry of the last object lease
         granted to it; only consulted when object leases are finite *)
}

(* Per (volume, OQS node) lease state. [barrier] records the highest
   logical clock discarded by an epoch advance: the epoch bump makes the
   peer treat all objects of the volume as invalid, so any invalidation
   at or below [barrier] counts as delivered. *)
type vol_peer = {
  mutable expires : float;
  mutable epoch : int;
  mutable granted : bool; (* any lease granted since this record was created *)
  mutable barrier : Lc.t;
  delayed : (Key.t, Lc.t) Hashtbl.t;
}

(* State-transfer progress after an amnesia crash. Durable on purpose: a
   fail-stop crash in the middle of a sync resumes at the same cursor
   (the merged objects really are on disk), while a second amnesia crash
   wipes this record along with everything else and starts over. *)
type sync_progress = {
  session : int;       (* distinguishes chunks of superseded syncs *)
  started_ms : float;  (* engine time of the Recovery_start *)
  mutable cursor : int;     (* next volume chunk to fetch *)
  mutable max_volume : int; (* highest volume any responder has state for *)
  mutable bytes : int;
  mutable objects : int;
}

type durable = {
  mutable global_lc : Lc.t;
  objects : (Key.t, obj_state) Obj_map.t;
  vol_peers : (int * int, vol_peer) Obj_map.t; (* (volume, oqs node id) *)
  mutable wiped : bool; (* this replica lost its durable state at least once *)
  mutable sync : sync_progress option; (* Some = the node is in [Syncing] *)
}

(* The volatile side of a state transfer: the retransmission loop and
   the peers that answered the current chunk. Rebuilt on every
   recovery (the incarnation guard kills the previous loop's timers). *)
type sync_run = { mutable loop : Dq_rpc.Retry.t option; mutable replied : int list }

type t = {
  net : Message.t Net.t;
  bus : Dq_telemetry.Bus.t;
  clock : Clock.t;
  config : Config.t;
  me : int;
  durable : durable;
  mutable loops : (Key.t, Dq_rpc.Retry.t list ref) Hashtbl.t;
  mutable next_session : int;
  mutable syncing : sync_run option;
}

let subscribed t = Dq_telemetry.Bus.subscribed t.bus

let emit t ev = Dq_telemetry.Bus.emit t.bus ev

let fresh_obj _key =
  {
    value = Versioned.initial;
    last_read = Lc.zero;
    acks = Hashtbl.create 8;
    grants = Hashtbl.create 8;
  }

let fresh_vol_peer _ =
  {
    expires = neg_infinity;
    epoch = 0;
    granted = false;
    barrier = Lc.zero;
    delayed = Hashtbl.create 8;
  }

let create ~net ~clock ~config ~me =
  {
    net;
    bus = Dq_sim.Engine.telemetry (Net.engine net);
    clock;
    config;
    me;
    durable =
      {
        global_lc = Lc.zero;
        objects = Obj_map.of_key_default ~default:fresh_obj;
        vol_peers =
          Obj_map.create
            ~hash:(fun (v, j) -> (v * 65599) + j)
            ~equal:(fun (a, b) (c, d) -> a = c && b = d)
            ~default:fresh_vol_peer;
        wiped = false;
        sync = None;
      };
    loops = Hashtbl.create 16;
    next_session = 0;
    syncing = None;
  }

let obj t key = Obj_map.get t.durable.objects key

let vol_peer t ~volume ~oqs = Obj_map.get t.durable.vol_peers (volume, oqs)

let ack_of o j = Option.value (Hashtbl.find_opt o.acks j) ~default:Lc.zero

let record_ack t key j lc =
  let o = obj t key in
  Hashtbl.replace o.acks j (Lc.max (ack_of o j) lc)

let send t dst msg = Net.send t.net ~src:t.me ~dst msg

let now t = Clock.now t.clock

(* --- delayed invalidations ------------------------------------------- *)

(* True when the queued (or epoch-subsumed) invalidations for [key] at
   peer [j] cover logical clock [wlc]. *)
let delayed_covers vp key wlc =
  Lc.(vp.barrier >= wlc)
  || match Hashtbl.find_opt vp.delayed key with
     | Some lc -> Lc.(lc >= wlc)
     | None -> false

let enqueue_delayed t vp ~peer ~volume key wlc =
  let lc =
    match Hashtbl.find_opt vp.delayed key with
    | Some old -> Lc.max old wlc
    | None -> wlc
  in
  Hashtbl.replace vp.delayed key lc;
  if subscribed t then
    emit t
      (Dq_telemetry.Event.Inval_delayed { node = t.me; peer; key = Key.to_string key });
  if Hashtbl.length vp.delayed > t.config.max_delayed then begin
    (* Bound the queue with an epoch advance (paper: garbage collection
       of delayed invalidations): the peer's next renewal carries a new
       epoch, invalidating every object lease of the volume at once. *)
    Hashtbl.iter (fun _ lc -> vp.barrier <- Lc.max vp.barrier lc) vp.delayed;
    Hashtbl.reset vp.delayed;
    vp.epoch <- vp.epoch + 1;
    if subscribed t then
      emit t
        (Dq_telemetry.Event.Epoch_advance { node = t.me; peer; volume; epoch = vp.epoch })
  end

(* --- write processing ------------------------------------------------ *)

(* Is peer [j] unable to read any version of [key] older than [wlc]?
   May enqueue a delayed invalidation as a side effect (case "delay"). *)
(* With finite object leases, a peer whose lease on [key] has lapsed
   (or was never granted) cannot serve the object at all - no
   invalidation of any kind is needed (paper footnote 4). *)
let object_lease_lapsed t o j =
  match t.config.object_lease_ms with
  | None -> false
  | Some _ -> (
    match Hashtbl.find_opt o.grants j with
    | None -> true
    | Some expiry -> now t > expiry)

let peer_settled t ~key ~wlc j =
  let o = obj t key in
  let ack = ack_of o j in
  Lc.(ack > o.last_read) (* suppress: no valid callback at j *)
  || Lc.(ack >= wlc) (* j acknowledged this (or a newer) invalidation *)
  || object_lease_lapsed t o j
  || t.config.use_volume_leases
     &&
     let volume = Key.volume key in
     let vp = vol_peer t ~volume ~oqs:j in
     now t > vp.expires
     && begin
          if not (delayed_covers vp key wlc) then
            enqueue_delayed t vp ~peer:j ~volume key wlc;
          delayed_covers vp key wlc
        end

let owq_invalid t ~key ~wlc =
  Qs.is_write_quorum t.config.oqs ~present:(peer_settled t ~key ~wlc)

let register_loop t key loop =
  match Hashtbl.find_opt t.loops key with
  | Some loops -> loops := loop :: !loops
  | None -> Hashtbl.add t.loops key (ref [ loop ])

let unregister_loop t key loop =
  match Hashtbl.find_opt t.loops key with
  | Some loops ->
    loops := List.filter (fun l -> l != loop) !loops;
    (match !loops with [] -> Hashtbl.remove t.loops key | _ :: _ -> ())
  | None -> ()

let poke_loops t key =
  match Hashtbl.find_opt t.loops key with
  | Some loops -> List.iter Dq_rpc.Retry.poke !loops
  | None -> ()

(* Drive the OQS write quorum to a state where it cannot serve any
   version of [key] older than [wlc], then call [on_done]. *)
let ensure_owq_invalid t ~key ~wlc ~on_done =
  let loop_cell = ref None in
  let poke_self () =
    match !loop_cell with Some loop -> Dq_rpc.Retry.poke loop | None -> ()
  in
  let attempt ~round:_ =
    let inval_lc = Lc.max wlc (obj t key).value.lc in
    let visit j =
      if not (peer_settled t ~key ~wlc j) then begin
        send t j (Message.Inval { key; lc = inval_lc });
        (* If j's lease expires before it acknowledges (e.g. j crashed),
           re-evaluate right after expiry so the write blocks for at
           most the lease duration. *)
        if t.config.use_volume_leases then begin
          let vp = vol_peer t ~volume:(Key.volume key) ~oqs:j in
          if vp.expires > now t then begin
            let delay_ms = Clock.delay_until t.clock vp.expires +. 1. in
            ignore (Net.timer t.net ~node:t.me ~delay_ms poke_self)
          end
        end
      end
    in
    List.iter visit (Qs.members t.config.oqs)
  in
  let complete () = owq_invalid t ~key ~wlc in
  let finish whom () =
    (match !loop_cell with Some loop -> unregister_loop t key loop | None -> ());
    whom ()
  in
  let loop =
    Dq_rpc.Retry.start
      ~timer:(fun ~delay_ms action -> Net.timer t.net ~node:t.me ~delay_ms action)
      ~attempt ~complete
      ~on_complete:(finish on_done)
      ~timeout_ms:t.config.retry_timeout_ms ~backoff:t.config.retry_backoff ~bus:t.bus
      ~node:t.me ~tag:"iqs.owq_inval" ()
  in
  if not (Dq_rpc.Retry.is_done loop) then begin
    loop_cell := Some loop;
    register_loop t key loop
  end

let handle_write t ~src ~op ~key ~value ~lc =
  let o = obj t key in
  if Lc.(lc > o.value.lc) then begin
    o.value <- Versioned.make ~value ~lc;
    t.durable.global_lc <- Lc.max t.durable.global_lc lc
  end;
  let suppressed = owq_invalid t ~key ~wlc:lc in
  if subscribed t then
    emit t
      (if suppressed then
         Dq_telemetry.Event.Inval_suppressed { node = t.me; key = Key.to_string key }
       else
         Dq_telemetry.Event.Inval_through
           { node = t.me; peer = src; key = Key.to_string key });
  ensure_owq_invalid t ~key ~wlc:lc ~on_done:(fun () ->
      send t src (Message.Iqs_write_ack { op; key; lc }))

(* --- lease grants ----------------------------------------------------- *)

let obj_grant t ~key ~requester ~t0 =
  let o = obj t key in
  o.last_read <- Lc.max o.last_read o.value.lc;
  let epoch =
    if t.config.use_volume_leases then
      (vol_peer t ~volume:(Key.volume key) ~oqs:requester).epoch
    else 0
  in
  let lease_ms =
    match t.config.object_lease_ms with
    | Some lease ->
      Hashtbl.replace o.grants requester (now t +. lease);
      lease
    | None -> infinity
  in
  {
    Message.g_key = key;
    g_epoch = epoch;
    g_lc = o.value.lc;
    g_value = o.value.value;
    g_lease_ms = lease_ms;
    g_t0 = t0;
  }

let handle_obj_renew t ~src ~key ~t0 =
  let grant = obj_grant t ~key ~requester:src ~t0 in
  send t src (Message.Obj_renew_reply { grant })

(* Grant one volume's lease and collect its delayed invalidations
   (shared by the single and batched renewal paths). [holder_epoch] is
   the epoch the requester currently caches for the volume: a replica
   that lost its durable state restarts epochs at 0, so its first grant
   of each volume must jump strictly above whatever the holder reports —
   the bump makes every pre-wipe object lease of the volume invalid at
   the holder (its cached epoch no longer matches), closing the window
   where wiped callback bookkeeping could let a stale version survive. *)
let grant_volume t ~src ~holder_epoch volume =
  let vp = vol_peer t ~volume ~oqs:src in
  if holder_epoch >= vp.epoch && t.durable.wiped && not vp.granted then begin
    vp.epoch <- holder_epoch + 1;
    if subscribed t then
      emit t
        (Dq_telemetry.Event.Epoch_advance { node = t.me; peer = src; volume; epoch = vp.epoch })
  end
  else if holder_epoch > vp.epoch then begin
    (* A holder can only learn epochs from our own grants, so this means
       state loss we were not told about; jump past it to stay safe. *)
    vp.epoch <- holder_epoch + 1;
    if subscribed t then
      emit t
        (Dq_telemetry.Event.Epoch_advance { node = t.me; peer = src; volume; epoch = vp.epoch })
  end;
  vp.granted <- true;
  vp.expires <- now t +. t.config.volume_lease_ms;
  let delayed = Hashtbl.fold (fun k lc acc -> (k, lc) :: acc) vp.delayed [] in
  if subscribed t then
    emit t
      (Dq_telemetry.Event.Lease_granted
         {
           node = t.me;
           peer = src;
           volume;
           lease_ms = t.config.volume_lease_ms;
           epoch = vp.epoch;
         });
  (vp.epoch, delayed)

let handle_vols_renew t ~src ~volumes ~t0 =
  let grants =
    List.map
      (fun (volume, holder_epoch) ->
        let epoch, delayed = grant_volume t ~src ~holder_epoch volume in
        (volume, epoch, delayed))
      volumes
  in
  send t src
    (Message.Vols_renew_reply { t0; lease_ms = t.config.volume_lease_ms; grants })

let handle_vol_renew t ~src ~volume ~t0 ~want ~holder_epoch =
  let epoch, delayed = grant_volume t ~src ~holder_epoch volume in
  let grant = Option.map (fun key -> obj_grant t ~key ~requester:src ~t0) want in
  send t src
    (Message.Vol_renew_reply
       { volume; lease_ms = t.config.volume_lease_ms; epoch; t0; delayed; grant })

let handle_vol_renew_ack t ~src ~volume ~upto =
  let vp = vol_peer t ~volume ~oqs:src in
  let cleared =
    Hashtbl.fold
      (fun key lc acc -> if Lc.(lc <= upto) then (key, lc) :: acc else acc)
      vp.delayed []
  in
  List.iter
    (fun (key, lc) ->
      Hashtbl.remove vp.delayed key;
      (* The peer has applied these invalidations (it acknowledged the
         renewal reply that carried them), so they count as acked. *)
      record_ack t key src lc;
      poke_loops t key)
    cleared

let handle_inval_ack t ~src ~key ~lc =
  record_ack t key src lc;
  poke_loops t key

(* --- amnesia recovery: state transfer ---------------------------------- *)

let engine_now t = Dq_sim.Engine.now (Net.engine t.net)

(* After a wipe, even a fully synced replica must not vote (or grant)
   until every lease it might have granted before the wipe has expired
   at its holder: the wiped grant table would otherwise let
   [peer_settled] treat a still-valid pre-wipe lease as lapsed and ack
   a write whose overwritten version that holder can still serve. The
   bound is the longest lease duration stretched by drift on both
   sides, plus slack for the holder's send-time base point. Pure
   callback configurations (no leases) need no quarantine: empty ack
   tables already make every peer look possibly-valid, which is the
   conservative direction. *)
let quarantine_ms t =
  let vol = if t.config.use_volume_leases then t.config.volume_lease_ms else 0. in
  let obj = match t.config.object_lease_ms with Some l -> l | None -> 0. in
  let lease = Float.max vol obj in
  if lease > 0. then (lease *. (1. +. (2. *. t.config.max_drift))) +. 250. else 0.

let finish_sync t (s : sync_progress) =
  t.durable.sync <- None;
  t.syncing <- None;
  if subscribed t then
    emit t
      (Dq_telemetry.Event.Recovery_done
         {
           node = t.me;
           bytes = s.bytes;
           objects = s.objects;
           duration_ms = engine_now t -. s.started_ms;
         })

let start_sync t (s : sync_progress) =
  let run = { loop = None; replied = [] } in
  t.syncing <- Some run;
  let peers = List.filter (fun i -> i <> t.me) (Qs.members t.config.iqs) in
  let no_peers = match peers with [] -> true | _ :: _ -> false in
  let active_at = s.started_ms +. quarantine_ms t in
  let attempt ~round:_ =
    if s.cursor <= s.max_volume then
      List.iter
        (fun i ->
          if not (List.mem i run.replied) then
            send t i (Message.Sync_req { session = s.session; volume = s.cursor }))
        peers
  in
  let complete () =
    (no_peers || s.cursor > s.max_volume) && engine_now t >= active_at
  in
  let loop =
    Dq_rpc.Retry.start
      ~timer:(fun ~delay_ms action -> Net.timer t.net ~node:t.me ~delay_ms action)
      ~attempt ~complete
      ~on_complete:(fun () -> finish_sync t s)
      ~timeout_ms:t.config.retry_timeout_ms ~backoff:t.config.retry_backoff ~bus:t.bus
      ~node:t.me ~tag:"iqs.sync" ()
  in
  if not (Dq_rpc.Retry.is_done loop) then begin
    run.loop <- Some loop;
    (* Re-test completion right after the lease quarantine elapses — the
       transfer itself usually finishes well before it, and the retry
       loop's backed-off timer may otherwise fire much later. *)
    let wait = active_at -. engine_now t in
    if wait > 0. then
      ignore
        (Net.timer t.net ~node:t.me ~delay_ms:(wait +. 1.) (fun () ->
             Dq_rpc.Retry.poke loop))
  end

(* A read quorum of peers (not counting this node) answered the chunk:
   max-LC merge is monotone, so any read quorum intersects every write
   quorum that acknowledged a write and the merged state covers it. *)
let sync_quorum_done t replied =
  Qs.is_read_quorum t.config.iqs ~present:(fun i -> i <> t.me && List.mem i replied)

let handle_sync_resp t ~src ~session ~volume ~max_volume ~global_lc ~objects ~bytes =
  match (t.durable.sync, t.syncing) with
  | Some s, Some run
    when session = s.session && volume = s.cursor && not (List.mem src run.replied) ->
    run.replied <- src :: run.replied;
    s.bytes <- s.bytes + bytes;
    s.max_volume <- Stdlib.max s.max_volume max_volume;
    t.durable.global_lc <- Lc.max t.durable.global_lc global_lc;
    List.iter
      (fun (key, lc, value) ->
        let o = obj t key in
        if Lc.(lc > o.value.lc) then begin
          o.value <- Versioned.make ~value ~lc;
          s.objects <- s.objects + 1
        end)
      objects;
    if sync_quorum_done t run.replied then begin
      s.cursor <- s.cursor + 1;
      run.replied <- [];
      (* Request the next chunk immediately (or re-test completion). *)
      match run.loop with Some loop -> Dq_rpc.Retry.rerun loop | None -> ()
    end
  | _, _ -> () (* stale session, wrong chunk, or duplicate reply *)

let handle_sync_req t ~src ~session ~volume =
  let max_volume, objects =
    Obj_map.fold t.durable.objects ~init:(0, []) ~f:(fun key o (max_vol, acc) ->
        let v = Key.volume key in
        let max_vol = Stdlib.max max_vol v in
        let acc =
          if v = volume && Lc.(o.value.lc > zero) then
            (key, o.value.lc, o.value.value) :: acc
          else acc
        in
        (max_vol, acc))
  in
  send t src
    (Message.Sync_resp
       { session; volume; max_volume; global_lc = t.durable.global_lc; objects })

(* --- dispatch ---------------------------------------------------------- *)

let active_handle t ~src msg =
  match msg with
  | Message.Lc_read_req { op } ->
    send t src (Message.Lc_read_reply { op; lc = t.durable.global_lc })
  | Message.Iqs_write_req { op; key; value; lc } -> handle_write t ~src ~op ~key ~value ~lc
  | Message.Obj_renew_req { key; t0 } -> handle_obj_renew t ~src ~key ~t0
  | Message.Vol_renew_req { volume; t0; want; epoch } ->
    handle_vol_renew t ~src ~volume ~t0 ~want ~holder_epoch:epoch
  | Message.Vol_renew_ack { volume; upto } -> handle_vol_renew_ack t ~src ~volume ~upto
  | Message.Vols_renew_req { volumes; t0 } -> handle_vols_renew t ~src ~volumes ~t0
  | Message.Inval_ack { key; lc } -> handle_inval_ack t ~src ~key ~lc
  | Message.Sync_req { session; volume } -> handle_sync_req t ~src ~session ~volume
  | Message.Client_read_req _ | Message.Client_read_reply _ | Message.Client_write_req _
  | Message.Client_write_reply _ | Message.Oqs_read_req _ | Message.Oqs_read_reply _
  | Message.Lc_read_reply _ | Message.Iqs_write_ack _ | Message.Obj_renew_reply _
  | Message.Vol_renew_reply _ | Message.Vols_renew_reply _ | Message.Inval _
  | Message.Client_read_fail _ | Message.Client_write_fail _ | Message.Sync_resp _ ->
    ()

let handle t ~src msg =
  match t.durable.sync with
  | None -> active_handle t ~src msg
  | Some _ -> (
    (* Syncing: the replica neither votes in read or write quorums nor
       grants leases — it answers nothing but its own state transfer. *)
    match msg with
    | Message.Sync_resp { session; volume; max_volume; global_lc; objects } ->
      handle_sync_resp t ~src ~session ~volume ~max_volume ~global_lc ~objects
        ~bytes:(Message.size_of msg)
    | _ -> () [@dqr.lint.allow "R9"])

let on_recover t ~wiped =
  t.loops <- Hashtbl.create 16;
  t.syncing <- None;
  if wiped then begin
    (* Amnesia: everything this node called durable is gone. *)
    t.durable.global_lc <- Lc.zero;
    Obj_map.clear t.durable.objects;
    Obj_map.clear t.durable.vol_peers;
    t.durable.wiped <- true;
    t.next_session <- t.next_session + 1;
    t.durable.sync <-
      Some
        {
          session = t.next_session;
          started_ms = engine_now t;
          cursor = 0;
          max_volume = 0;
          bytes = 0;
          objects = 0;
        };
    if subscribed t then emit t (Dq_telemetry.Event.Recovery_start { node = t.me })
  end;
  match t.durable.sync with Some s -> start_sync t s | None -> ()

(* --- introspection ---------------------------------------------------- *)

let logical_clock t = t.durable.global_lc

let stored t key = (obj t key).value

let last_read_lc t key = (obj t key).last_read

let last_ack_lc t key ~oqs = ack_of (obj t key) oqs

let lease_expires t ~volume ~oqs =
  match Obj_map.find_opt t.durable.vol_peers (volume, oqs) with
  | Some vp -> vp.expires
  | None -> neg_infinity

let epoch t ~volume ~oqs =
  match Obj_map.find_opt t.durable.vol_peers (volume, oqs) with
  | Some vp -> vp.epoch
  | None -> 0

let delayed_count t ~volume ~oqs =
  match Obj_map.find_opt t.durable.vol_peers (volume, oqs) with
  | Some vp -> Hashtbl.length vp.delayed
  | None -> 0

let local_time t = now t

let lease_valid_for t ~volume ~oqs =
  (not t.config.use_volume_leases)
  ||
  match Obj_map.find_opt t.durable.vol_peers (volume, oqs) with
  | Some vp -> vp.expires > now t
  | None -> false

(* Could this IQS node believe that [oqs] holds a valid callback on
   [key]? False only when the node has positive proof of invalidity
   (acknowledged invalidation newer than any grant, or a lapsed finite
   object lease). *)
let callback_possible t key ~oqs =
  let o = obj t key in
  (not Lc.(ack_of o oqs > o.last_read)) && not (object_lease_lapsed t o oqs)

let active_write_loops t =
  Hashtbl.fold (fun _ loops acc -> acc + List.length !loops) t.loops 0

let is_syncing t = Option.is_some t.durable.sync

let was_wiped t = t.durable.wiped

let sync_progress t =
  match t.durable.sync with
  | Some s -> Some (s.cursor, s.bytes, s.objects)
  | None -> None
