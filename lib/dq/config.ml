module Qs = Dq_quorum.Quorum_system
module Strategy = Dq_quorum.Strategy

type t = {
  iqs : Qs.t;
  oqs : Qs.t;
  iqs_read_strategy : Strategy.t option;
  iqs_write_strategy : Strategy.t option;
  oqs_read_strategy : Strategy.t option;
  oqs_write_strategy : Strategy.t option;
  use_volume_leases : bool;
  volume_lease_ms : float;
  object_lease_ms : float option;
  max_drift : float;
  max_delayed : int;
  retry_timeout_ms : float;
  retry_backoff : float;
  max_rounds : int option;
  proactive_renew : bool;
  renew_margin_ms : float;
  atomic_reads : bool;
  latency_aware : bool;
  batch_renewals : bool;
}

let validate t =
  if t.volume_lease_ms <= 0. then invalid_arg "Config: volume lease must be positive";
  (match t.object_lease_ms with
  | Some lease when lease <= 0. -> invalid_arg "Config: object lease must be positive"
  | Some _ | None -> ());
  if t.max_drift < 0. || t.max_drift >= 1. then
    invalid_arg "Config: max_drift must be in [0, 1)";
  if t.max_delayed < 1 then invalid_arg "Config: max_delayed must be at least 1";
  if t.retry_timeout_ms <= 0. then invalid_arg "Config: retry timeout must be positive";
  if t.retry_backoff < 1. then invalid_arg "Config: retry backoff must be >= 1";
  (match t.max_rounds with
  | Some rounds when rounds < 1 -> invalid_arg "Config: max_rounds must be at least 1"
  | Some _ | None -> ());
  if t.renew_margin_ms <= 0. || t.renew_margin_ms >= t.volume_lease_ms then
    invalid_arg "Config: renew margin must lie strictly inside the lease";
  if Qs.size t.iqs = 0 || Qs.size t.oqs = 0 then invalid_arg "Config: empty quorum system";
  let check_strategy what system mode strategy =
    match strategy with
    | None -> ()
    | Some s ->
      if not (Strategy.system s == system) then
        invalid_arg
          (Printf.sprintf "Config: %s is not built over the configured quorum system" what);
      (match Strategy.mode s, mode with
      | Qs.Read, Qs.Read | Qs.Write, Qs.Write -> ()
      | Qs.Read, Qs.Write | Qs.Write, Qs.Read ->
        invalid_arg (Printf.sprintf "Config: %s has the wrong quorum mode" what))
  in
  check_strategy "iqs_read_strategy" t.iqs Qs.Read t.iqs_read_strategy;
  check_strategy "iqs_write_strategy" t.iqs Qs.Write t.iqs_write_strategy;
  check_strategy "oqs_read_strategy" t.oqs Qs.Read t.oqs_read_strategy;
  check_strategy "oqs_write_strategy" t.oqs Qs.Write t.oqs_write_strategy

let dqvl ~servers ?(volume_lease_ms = 5000.) ?(proactive_renew = true) ?object_lease_ms
    ?(max_drift = 1e-3) ?max_rounds () =
  let t =
    {
      iqs = Qs.majority servers;
      oqs = Qs.rowa servers;
      iqs_read_strategy = None;
      iqs_write_strategy = None;
      oqs_read_strategy = None;
      oqs_write_strategy = None;
      use_volume_leases = true;
      volume_lease_ms;
      object_lease_ms;
      max_drift;
      max_delayed = 64;
      retry_timeout_ms = 400.;
      retry_backoff = 2.;
      max_rounds;
      proactive_renew;
      renew_margin_ms = Float.min 1000. (volume_lease_ms /. 4.);
      atomic_reads = false;
      latency_aware = false;
      batch_renewals = false;
    }
  in
  validate t;
  t

let basic ~servers () =
  let t = dqvl ~servers () in
  { t with use_volume_leases = false; proactive_renew = false }

let name t =
  let base = if t.use_volume_leases then "dqvl" else "dq-basic" in
  if t.atomic_reads then base ^ "-atomic" else base
