open Dq_storage
module Qs = Dq_quorum.Quorum_system
module Net = Dq_net.Net
module Clock = Dq_sim.Clock

(* Per (volume, IQS node) lease state held by this OQS node. *)
type vol_from = { mutable epoch : int; mutable expires : float }

(* Per (object, IQS node) callback state. [expires] starts in the past
   and is advanced by each grant; infinite object leases (callbacks)
   grant an infinite expiry. *)
type obj_from = {
  mutable epoch : int;
  mutable lc : Lc.t;
  mutable valid : bool;
  mutable expires : float;
}

(* An in-progress "ensure condition C" loop with the readers awaiting it.
   [loop] is filled right after [Retry.start] returns. *)
type ensure = {
  mutable loop : Dq_rpc.Retry.t option;
  mutable waiters : (Versioned.t -> unit) list;
}

type cache = {
  vols : (int * int, vol_from) Obj_map.t; (* (volume, iqs node) *)
  objs : (Key.t * int, obj_from) Obj_map.t; (* (key, iqs node) *)
  values : (Key.t, Versioned.t) Obj_map.t;
  touched_volumes : (int, unit) Hashtbl.t;
}

type t = {
  net : Message.t Net.t;
  bus : Dq_telemetry.Bus.t;
  clock : Clock.t;
  config : Config.t;
  rng : Dq_util.Rng.t;
  me : int;
  mutable cache : cache;
  mutable ensuring : (Key.t, ensure) Hashtbl.t;
  renew_timers : (int * int, Dq_sim.Engine.handle) Hashtbl.t;
  mutable quiesced : bool;
}

let subscribed t = Dq_telemetry.Bus.subscribed t.bus

let emit t ev = Dq_telemetry.Bus.emit t.bus ev

let fresh_vol_from _ = { epoch = 0; expires = neg_infinity }

let fresh_obj_from _ = { epoch = 0; lc = Lc.zero; valid = false; expires = neg_infinity }

let fresh_cache () =
  {
    vols =
      Obj_map.create
        ~hash:(fun (v, i) -> (v * 65599) + i)
        ~equal:(fun (a, b) (c, d) -> a = c && b = d)
        ~default:fresh_vol_from;
    objs =
      Obj_map.create
        ~hash:(fun (k, i) -> (Key.hash k * 31) + i)
        ~equal:(fun (k, i) (k', i') -> Key.equal k k' && i = i')
        ~default:fresh_obj_from;
    values = Obj_map.of_key_default ~default:(fun _ -> Versioned.initial);
    touched_volumes = Hashtbl.create 8;
  }

let create ~net ~clock ~config ~rng ~me =
  {
    net;
    bus = Dq_sim.Engine.telemetry (Net.engine net);
    clock;
    config;
    rng;
    me;
    cache = fresh_cache ();
    ensuring = Hashtbl.create 16;
    renew_timers = Hashtbl.create 16;
    quiesced = false;
  }

let send t dst msg = Net.send t.net ~src:t.me ~dst msg

let now t = Clock.now t.clock

let vol_from t ~volume ~iqs = Obj_map.get t.cache.vols (volume, iqs)

let obj_from t key ~iqs = Obj_map.get t.cache.objs (key, iqs)

let volume_valid_from t ~volume ~iqs =
  (not t.config.use_volume_leases) || (vol_from t ~volume ~iqs).expires > now t

let object_valid_from t key ~iqs =
  let o = obj_from t key ~iqs in
  o.valid
  && ((not t.config.use_volume_leases)
     || o.epoch = (vol_from t ~volume:(Key.volume key) ~iqs).epoch)
  && (Option.is_none t.config.object_lease_ms || o.expires > now t)

let valid_from t key iqs =
  volume_valid_from t ~volume:(Key.volume key) ~iqs && object_valid_from t key ~iqs

(* Condition C: some IQS read quorum from which everything is valid. *)
let is_locally_valid t key =
  Qs.is_read_quorum t.config.iqs ~present:(fun i -> valid_from t key i)

let cached t key = Obj_map.get t.cache.values key

(* --- applying grants and invalidations -------------------------------- *)

let poke_ensure_loops t =
  (* Lease state is shared across objects (volumes), so any progress may
     complete any waiting read; poking all loops is cheap and simple.
     Collect first: a poke can complete a loop and mutate the table. *)
  let loops = Hashtbl.fold (fun _ e acc -> e.loop :: acc) t.ensuring [] in
  List.iter (function Some loop -> Dq_rpc.Retry.poke loop | None -> ()) loops

let apply_obj_grant t ~iqs (grant : Message.obj_grant) =
  let key = grant.g_key in
  let o = obj_from t key ~iqs in
  o.epoch <- Stdlib.max o.epoch grant.g_epoch;
  if Lc.(o.lc <= grant.g_lc) then begin
    o.lc <- grant.g_lc;
    o.valid <- true;
    (* Drift-compensated expiry from our own send time, as for volume
       leases; infinite lease durations yield an infinite expiry. *)
    o.expires <-
      Float.max o.expires (grant.g_t0 +. (grant.g_lease_ms *. (1. -. t.config.max_drift)))
  end;
  let current = cached t key in
  if Lc.(grant.g_lc >= current.lc) then
    Obj_map.set t.cache.values key (Versioned.make ~value:grant.g_value ~lc:grant.g_lc)

let apply_inval t ~iqs ~key ~lc =
  let o = obj_from t key ~iqs in
  if Lc.(o.lc < lc) then begin
    if subscribed t then
      emit t
        (Dq_telemetry.Event.Note
           {
             src = "dq.oqs";
             msg =
               Format.asprintf "node %d: %a invalidated by %d at lc=%a" t.me Key.pp key
                 iqs Lc.pp lc;
           });
    o.lc <- lc;
    o.valid <- false
  end

(* Proactive volume-lease renewal: once this node holds a lease on a
   volume it keeps the lease fresh, so reads stay local (read hits).
   With [batch_renewals], a firing timer coalesces every touched volume
   whose lease from the same IQS node is due within the next half
   lease into one request, and re-arms the siblings' timers as loss
   fallbacks so only one batch per node pair is in flight. *)
let rec arm_renew_timer t ~volume ~iqs ~delay_ms =
  (match Hashtbl.find_opt t.renew_timers (volume, iqs) with
  | Some handle -> Dq_sim.Engine.cancel handle
  | None -> ());
  let handle =
    Net.timer t.net ~node:t.me ~delay_ms (fun () ->
        Hashtbl.remove t.renew_timers (volume, iqs);
        if not t.quiesced then proactive_fire t ~volume ~iqs)
  in
  Hashtbl.replace t.renew_timers (volume, iqs) handle

and proactive_fire t ~volume ~iqs =
  if t.config.batch_renewals then begin
    let within window v = (vol_from t ~volume:v ~iqs).expires <= now t +. window in
    if within t.config.renew_margin_ms volume then begin
      (* Renew siblings due within the next half lease slightly early:
         their expiries align, so later cycles need one batch. *)
      let window = t.config.renew_margin_ms +. (t.config.volume_lease_ms /. 2.) in
      let stale =
        Hashtbl.fold
          (fun v () acc -> if within window v then v :: acc else acc)
          t.cache.touched_volumes []
      in
      let volumes = if List.mem volume stale then stale else volume :: stale in
      (* Report the cached epoch per volume so a grantor that lost its
         durable state can issue strictly-higher epochs. *)
      let pairs = List.map (fun v -> (v, (vol_from t ~volume:v ~iqs).epoch)) volumes in
      send t iqs (Message.Vols_renew_req { volumes = pairs; t0 = now t });
      (* One batch in flight covers every listed volume; their timers
         become retransmission fallbacks (the grant re-arms properly). *)
      List.iter
        (fun v -> arm_renew_timer t ~volume:v ~iqs ~delay_ms:t.config.retry_timeout_ms)
        volumes
    end
    else
      (* A batch triggered by a sibling already renewed this lease;
         re-arm for the actual expiry. *)
      schedule_proactive_renew t ~volume ~iqs
  end
  else
    send t iqs
      (Message.Vol_renew_req
         { volume; t0 = now t; want = None; epoch = (vol_from t ~volume ~iqs).epoch })

and schedule_proactive_renew t ~volume ~iqs =
  if t.config.proactive_renew && not t.quiesced then begin
    let vf = vol_from t ~volume ~iqs in
    let renew_at = vf.expires -. t.config.renew_margin_ms in
    let delay_ms = Float.max 0. (Clock.delay_until t.clock renew_at) in
    arm_renew_timer t ~volume ~iqs ~delay_ms
  end

and apply_vol_grant t ~iqs ~volume ~lease_ms ~epoch ~t0 ~delayed =
  let vf = vol_from t ~volume ~iqs in
  (* Drift-compensated expiry measured from our own send time t0. *)
  let expires = t0 +. (lease_ms *. (1. -. t.config.max_drift)) in
  vf.expires <- Float.max vf.expires expires;
  vf.epoch <- Stdlib.max vf.epoch epoch;
  let upto =
    List.fold_left
      (fun acc (key, lc) ->
        apply_inval t ~iqs ~key ~lc;
        Lc.max acc lc)
      Lc.zero delayed
  in
  send t iqs (Message.Vol_renew_ack { volume; upto });
  Hashtbl.replace t.cache.touched_volumes volume ();
  schedule_proactive_renew t ~volume ~iqs

(* --- ensuring condition C --------------------------------------------- *)

let start_ensure t key =
  (* One round of the paper's QRPC variation: object renewals go to a
     random IQS read quorum (preferring the local node), and any volume
     lease that has expired — or would expire before a reply can return
     (within [renew_margin_ms]) — is refreshed from {e every} IQS
     member. Keeping all volume leases fresh means writes invalidate
     this node directly instead of queueing delayed invalidations, so a
     typical read miss resolves in a single renewal round; the extra
     renewal messages are amortized over every object in the volume. *)
  let attempt ~round:_ =
    let volume = Key.volume key in
    let quorum =
      Dq_rpc.Qrpc.pick_read_targets ?strategy:t.config.iqs_read_strategy ~rng:t.rng
        ~system:t.config.iqs ~prefer:t.me ()
    in
    let visit i =
      let in_quorum = List.mem i quorum in
      let vol_fresh =
        (not t.config.use_volume_leases)
        || (vol_from t ~volume ~iqs:i).expires > now t +. t.config.renew_margin_ms
      in
      if (not vol_fresh) && subscribed t then
        emit t (Dq_telemetry.Event.Lease_expired { node = t.me; peer = i; volume });
      (* A finite object lease about to expire counts as missing too,
         so the grant arrives under a still-valid lease. The margin is
         capped for very short leases. *)
      let obj_ok =
        object_valid_from t key ~iqs:i
        &&
        match t.config.object_lease_ms with
        | None -> true
        | Some lease ->
          let margin = Float.min t.config.renew_margin_ms (lease /. 4.) in
          (obj_from t key ~iqs:i).expires > now t +. margin
      in
      if not vol_fresh then
        send t i
          (Message.Vol_renew_req
             {
               volume;
               t0 = now t;
               want = (if in_quorum && not obj_ok then Some key else None);
               epoch = (vol_from t ~volume ~iqs:i).epoch;
             })
      else if in_quorum && not obj_ok then
        send t i (Message.Obj_renew_req { key; t0 = now t })
    in
    List.iter visit (Qs.members t.config.iqs)
  in
  let complete () = is_locally_valid t key in
  let on_complete () =
    match Hashtbl.find_opt t.ensuring key with
    | Some e ->
      Hashtbl.remove t.ensuring key;
      let result = cached t key in
      List.iter (fun waiter -> waiter result) (List.rev e.waiters)
    | None -> ()
  in
  let loop =
    Dq_rpc.Retry.start
      ~timer:(fun ~delay_ms action -> Net.timer t.net ~node:t.me ~delay_ms action)
      ~attempt ~complete ~on_complete ~timeout_ms:t.config.retry_timeout_ms
      ~backoff:t.config.retry_backoff ~bus:t.bus ~node:t.me ~tag:"oqs.ensure_c" ()
  in
  loop

let with_valid_object t key callback =
  if is_locally_valid t key then begin
    if subscribed t then
      emit t
        (Dq_telemetry.Event.Cache_read
           { node = t.me; key = Key.to_string key; hit = true });
    callback (cached t key)
  end
  else
    match Hashtbl.find_opt t.ensuring key with
    | Some e -> e.waiters <- callback :: e.waiters
    | None ->
      (* Register the entry before starting the loop so that a
         synchronously-completing loop finds its waiters. *)
      if subscribed t then
        emit t
          (Dq_telemetry.Event.Cache_read
             { node = t.me; key = Key.to_string key; hit = false });
      let e = { loop = None; waiters = [ callback ] } in
      Hashtbl.add t.ensuring key e;
      let loop = start_ensure t key in
      if Hashtbl.mem t.ensuring key then e.loop <- Some loop

(* --- message dispatch -------------------------------------------------- *)

let handle t ~src msg =
  match msg with
  | Message.Oqs_read_req { op; key } ->
    with_valid_object t key (fun version ->
        send t src
          (Message.Oqs_read_reply { op; key; value = version.value; lc = version.lc }))
  | Message.Obj_renew_reply { grant } ->
    apply_obj_grant t ~iqs:src grant;
    poke_ensure_loops t
  | Message.Vols_renew_reply { t0; lease_ms; grants } ->
    let all_delayed =
      List.concat_map
        (fun (volume, epoch, delayed) ->
          apply_vol_grant t ~iqs:src ~volume ~lease_ms ~epoch ~t0 ~delayed;
          delayed)
        grants
    in
    poke_ensure_loops t;
    List.iter
      (fun (key, _) ->
        match Hashtbl.find_opt t.ensuring key with
        | Some { loop = Some loop; _ } -> Dq_rpc.Retry.rerun loop
        | Some { loop = None; _ } | None -> ())
      all_delayed
  | Message.Vol_renew_reply { volume; lease_ms; epoch; t0; delayed; grant } ->
    apply_vol_grant t ~iqs:src ~volume ~lease_ms ~epoch ~t0 ~delayed;
    Option.iter (apply_obj_grant t ~iqs:src) grant;
    poke_ensure_loops t;
    (* Delayed invalidations delivered with the lease may have consumed
       exactly the objects waiting reads were about to validate; re-drive
       their loops to fetch the fresh versions without a timer stall. *)
    List.iter
      (fun (key, _) ->
        match Hashtbl.find_opt t.ensuring key with
        | Some { loop = Some loop; _ } -> Dq_rpc.Retry.rerun loop
        | Some { loop = None; _ } | None -> ())
      delayed
  | Message.Inval { key; lc } ->
    apply_inval t ~iqs:src ~key ~lc;
    send t src (Message.Inval_ack { key; lc });
    (* If a read is waiting on condition C for this object, the
       invalidation has just consumed what its in-flight renewals will
       grant; re-drive the loop now rather than after its timer. *)
    (match Hashtbl.find_opt t.ensuring key with
    | Some { loop = Some loop; _ } -> Dq_rpc.Retry.rerun loop
    | Some { loop = None; _ } | None -> ())
  | Message.Client_read_req _ | Message.Client_read_reply _ | Message.Client_write_req _
  | Message.Client_write_reply _ | Message.Oqs_read_reply _ | Message.Lc_read_req _
  | Message.Lc_read_reply _ | Message.Iqs_write_req _ | Message.Iqs_write_ack _
  | Message.Obj_renew_req _ | Message.Vol_renew_req _ | Message.Vol_renew_ack _
  | Message.Vols_renew_req _ | Message.Inval_ack _
  | Message.Client_read_fail _ | Message.Client_write_fail _
  | Message.Sync_req _ | Message.Sync_resp _ ->
    ()

let on_recover t =
  t.cache <- fresh_cache ();
  t.ensuring <- Hashtbl.create 16;
  Hashtbl.reset t.renew_timers

let quiesce t =
  t.quiesced <- true;
  Hashtbl.iter (fun _ handle -> Dq_sim.Engine.cancel handle) t.renew_timers;
  Hashtbl.reset t.renew_timers

let local_time t = now t

let epoch_from t ~volume ~iqs =
  match Obj_map.find_opt t.cache.vols (volume, iqs) with
  | Some vf -> vf.epoch
  | None -> 0

(* Earliest future volume-lease expiry, as a virtual-time delay. This is
   the nemesis layer's targeting hook: firing a partition just inside
   this window hits the protocol exactly as a lease is about to lapse. *)
let next_lease_expiry_ms t =
  if not t.config.use_volume_leases then None
  else
    Obj_map.fold t.cache.vols ~init:None ~f:(fun _ vf acc ->
        if vf.expires > now t && vf.expires < infinity then begin
          let delay = Clock.delay_until t.clock vf.expires in
          match acc with Some best when best <= delay -> acc | Some _ | None -> Some delay
        end
        else acc)

let active_ensure_loops t = Hashtbl.length t.ensuring
