(** An output-quorum-system (OQS) server node.

    OQS nodes cache object values under the volume-lease protocol and
    serve reads. A read of object [o] may be answered only while
    {b condition C} holds: there is an IQS read quorum from {e every}
    member of which this node holds both a valid volume lease and a
    valid object lease (callback). When C does not hold, the node runs
    the paper's QRPC variation — sending each IQS node exactly what it
    is missing (volume renewal, object renewal, or both combined) and
    retrying with fresh quorums until C becomes true.

    All cached state is volatile: a crash clears it (see
    {!on_recover}), and subsequent reads rebuild it through renewals. *)

open Dq_storage

type t

val create :
  net:Message.t Dq_net.Net.t ->
  clock:Dq_sim.Clock.t ->
  config:Config.t ->
  rng:Dq_util.Rng.t ->
  me:int ->
  t

val handle : t -> src:int -> Message.t -> unit

val on_recover : t -> unit
(** Reset the cache to its initial (all-invalid) state. *)

val quiesce : t -> unit
(** Stop proactive lease-renewal timers (end-of-experiment drain). *)

(** {2 Introspection} *)

val is_locally_valid : t -> Key.t -> bool
(** Does condition C currently hold for the object (a read would be a
    {e read hit})? *)

val cached : t -> Key.t -> Versioned.t

val volume_valid_from : t -> volume:int -> iqs:int -> bool

val object_valid_from : t -> Key.t -> iqs:int -> bool

val epoch_from : t -> volume:int -> iqs:int -> int

val local_time : t -> float

val active_ensure_loops : t -> int

val next_lease_expiry_ms : t -> float option
(** Virtual-time delay until the earliest currently-valid volume lease
    held by this node expires; [None] when no finite unexpired lease is
    held (or volume leases are disabled). Fault orchestration uses this
    to fire partitions precisely inside a lease-expiry window. *)
