(** The wire protocol of the dual-quorum system.

    One variant covers all four conversations:
    - application client <-> front end ([Client_*]),
    - front end (service client) <-> OQS ([Oqs_read_*]),
    - front end (service client) <-> IQS ([Lc_read_*], [Iqs_write_*]),
    - OQS <-> IQS lease traffic ([*_renew_*], [Inval], [Inval_ack]).

    [op] identifiers are unique per issuing node and route replies back
    to the matching pending operation. Lease-protocol messages carry no
    such identifier: their effects on receiver state are monotone, so
    they are applied idempotently and pending work is re-evaluated. *)

open Dq_storage

type obj_grant = {
  g_key : Key.t;
  g_epoch : int;
  g_lc : Lc.t;
  g_value : string;
  g_lease_ms : float;  (** object lease duration; [infinity] = callback *)
  g_t0 : float;        (** echo of the requestor's local send time *)
}
(** The payload of an object lease grant (renewal reply). *)

type t =
  | Client_read_req of { op : int; key : Key.t }
  | Client_read_reply of { op : int; key : Key.t; value : string; lc : Lc.t }
  | Client_write_req of { op : int; key : Key.t; value : string }
  | Client_write_reply of { op : int; key : Key.t; lc : Lc.t }
  | Client_read_fail of { op : int; key : Key.t }
      (** The front end's retransmission loop exhausted its round bound
          ({!Config.max_rounds}) and gave up on the read. *)
  | Client_write_fail of { op : int; key : Key.t }
      (** As {!Client_read_fail}, for either phase of a write. The
          write may or may not have taken effect at the IQS. *)
  | Oqs_read_req of { op : int; key : Key.t }
  | Oqs_read_reply of { op : int; key : Key.t; value : string; lc : Lc.t }
  | Lc_read_req of { op : int }
  | Lc_read_reply of { op : int; lc : Lc.t }
  | Iqs_write_req of { op : int; key : Key.t; value : string; lc : Lc.t }
  | Iqs_write_ack of { op : int; key : Key.t; lc : Lc.t }
  | Obj_renew_req of { key : Key.t; t0 : float }
  | Obj_renew_reply of { grant : obj_grant }
  | Vol_renew_req of { volume : int; t0 : float; want : Key.t option; epoch : int }
      (** [t0] is the requestor's local send time, echoed in the reply
          for drift-compensated expiry. [want] piggybacks an object
          renewal (the paper's "combined volume renewal and object
          read"). [epoch] is the requester's cached epoch for the
          volume: a grantor that lost its durable state (amnesia) must
          grant a strictly higher epoch so every pre-wipe object lease
          of the volume is invalidated at once. *)
  | Vol_renew_reply of {
      volume : int;
      lease_ms : float;
      epoch : int;
      t0 : float;
      delayed : (Key.t * Lc.t) list;
      grant : obj_grant option;
    }
  | Vol_renew_ack of { volume : int; upto : Lc.t }
      (** Acknowledges application of the delayed invalidations up to
          logical clock [upto]. *)
  | Vols_renew_req of { volumes : (int * int) list; t0 : float }
      (** Batched renewal (see {!Config.batch_renewals}): one message
          renews every listed volume's lease, as [(volume, cached
          epoch)] pairs. *)
  | Vols_renew_reply of {
      t0 : float;
      lease_ms : float;
      grants : (int * int * (Key.t * Lc.t) list) list;
          (** per volume: (volume, epoch, delayed invalidations) *)
    }
  | Inval of { key : Key.t; lc : Lc.t }
  | Inval_ack of { key : Key.t; lc : Lc.t }
  | Sync_req of { session : int; volume : int }
      (** State transfer after an amnesia crash: a [Syncing] IQS
          replica asks a peer for every object it stores in [volume]
          (one volume per chunk, so the transfer is resumable at volume
          granularity; [session] discards replies of superseded
          syncs). *)
  | Sync_resp of {
      session : int;
      volume : int;
      max_volume : int;
      global_lc : Lc.t;
      objects : (Key.t * Lc.t * string) list;
    }
      (** One state-transfer chunk. [max_volume] bounds the requester's
          chunk cursor — the highest volume the responder has any state
          for — so the transfer terminates; versions merge by
          highest-LC-wins, so chunks are idempotent. *)

val classify : t -> string
(** Short label for message accounting (Figure 9). *)

val size_of : t -> int
(** Estimated wire size in bytes, for bandwidth accounting: a fixed
    header plus per-field costs (8 B per key/clock/number, plus value
    payload lengths). The paper weighs all messages equally; this model
    refines Figure 9 into bytes per request. *)

val pp : Format.formatter -> t -> unit
