(** The service client (front-end) role.

    A front end runs on an edge server, receives application-client
    requests, and executes the dual-quorum client protocol:

    - a {b read} is a standard quorum read on the OQS (read quorum
      size 1 in the common configuration, i.e. the co-located replica);
      the reply with the highest logical clock wins;
    - a {b write} first obtains the highest logical clock of any
      completed write from an IQS read quorum, advances it, then sends
      the write to an IQS write quorum and waits for its
      acknowledgments.

    Writes issued by this front end get strictly increasing timestamps
    even when concurrent, by folding the front end's own last issued
    timestamp into the advance. *)

open Dq_storage

type t

val create :
  net:Message.t Dq_net.Net.t -> config:Config.t -> rng:Dq_util.Rng.t -> me:int -> t

val read :
  t -> key:Key.t -> on_done:(value:string -> lc:Lc.t -> unit) -> on_fail:(unit -> unit) -> unit
(** [on_fail] fires (instead of [on_done]) when the retransmission loop
    exhausts {!Config.max_rounds}; with the default unbounded rounds it
    never fires. *)

val write :
  t ->
  key:Key.t ->
  value:string ->
  on_done:(lc:Lc.t -> unit) ->
  on_fail:(unit -> unit) ->
  unit

val handle : t -> src:int -> Message.t -> unit
(** Route [Oqs_read_reply], [Lc_read_reply] and [Iqs_write_ack] to the
    matching pending operation; handle [Client_read_req] and
    [Client_write_req] by running the operation and replying to the
    application client. Other messages are ignored. *)

val on_recover : t -> unit
(** Drop all pending operations (their callbacks never fire). *)

val pending_operations : t -> int
