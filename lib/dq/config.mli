(** Configuration of a dual-quorum cluster.

    The two quorum systems may be configured independently (that is the
    point of the protocol): the input quorum system (IQS) receives
    writes, the output quorum system (OQS) serves reads. The common
    deployment — and the paper's default — is a majority IQS over the
    edge servers and a read-one/write-all OQS over all edge servers, so
    that reads are served by the client's co-located replica. *)

type t = {
  iqs : Dq_quorum.Quorum_system.t;  (** input quorum system, over server ids *)
  oqs : Dq_quorum.Quorum_system.t;  (** output quorum system, over server ids *)
  iqs_read_strategy : Dq_quorum.Strategy.t option;
      (** quorum-selection strategy for IQS reads (the write path's
          lc-read phase and renewal targeting). [None] — the default in
          {!dqvl} and {!basic} — uses the legacy sampler, which is
          bit-identical to pre-strategy behavior; [Some s] (typically
          from {!Dq_quorum.Optimizer} or {!Dq_quorum.Strategy.explicit})
          samples [s] verbatim. Must be built over [iqs] (the very same
          value) with mode [Read]. *)
  iqs_write_strategy : Dq_quorum.Strategy.t option;
      (** same, for IQS writes (impose and write phase 2) *)
  oqs_read_strategy : Dq_quorum.Strategy.t option;
      (** same, for OQS reads (the front-end read path) *)
  oqs_write_strategy : Dq_quorum.Strategy.t option;
      (** same, for OQS writes (reserved — the OQS write path runs
          through invalidation fan-out, not QRPC quorum selection, so
          this is validated but currently unused) *)
  use_volume_leases : bool;
      (** [true] for DQVL (Section 3.2); [false] for the basic
          dual-quorum protocol (Section 3.1), in which OQS copies are
          guarded by object callbacks alone and a write must collect
          invalidation acknowledgments from an OQS write quorum no
          matter how long that takes. *)
  volume_lease_ms : float;  (** volume lease duration L *)
  object_lease_ms : float option;
      (** object lease duration; [None] gives infinite object leases
          (callbacks), the paper's default (footnote 4). Finite object
          leases trade renewal traffic for cheaper writes: an expired
          object lease needs neither an invalidation nor a delayed
          invalidation. *)
  max_drift : float;
      (** bound on clock drift rate; OQS discounts lease expiry by
          [L * (1 - max_drift)] per the paper *)
  max_delayed : int;
      (** per (volume, OQS node) bound on the delayed-invalidation
          queue; exceeding it advances the epoch and clears the queue *)
  retry_timeout_ms : float;  (** initial QRPC retransmission interval *)
  retry_backoff : float;     (** retransmission interval multiplier *)
  max_rounds : int option;
      (** bound on front-end QRPC retransmission rounds; after this many
          attempts the operation {e gives up} and the front end reports
          failure to the application client instead of retrying forever.
          [None] (the default) retries without bound, the paper's
          model. *)
  proactive_renew : bool;
      (** when [true], an OQS node keeps renewing the volume leases it
          has acquired shortly before they expire, keeping reads local;
          when [false], leases are renewed on demand by read misses *)
  renew_margin_ms : float;   (** how long before expiry to renew *)
  atomic_reads : bool;
      (** upgrade reads from regular to atomic semantics (paper future
          work, Section 6): before returning, the service client pushes
          the value it read through an IQS write quorum (re-using the
          write path with the value's own timestamp), which guarantees
          no later read observes an older version. Costs every read an
          extra IQS round trip. *)
  latency_aware : bool;
      (** QRPC target selection tracks per-peer response times and
          contacts the historically fastest quorum first (the paper's
          aggressive-implementation note in Section 2); default is the
          paper's random-quorum policy. *)
  batch_renewals : bool;
      (** When an OQS node renews proactively, coalesce every volume
          lease from the same IQS node that is within the renewal
          margin into a single request/reply pair — cutting the
          renewal message rate by roughly the number of active volumes
          (the aggregation the paper's amortization argument implies). *)
}

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical parameters (non-positive
    lease, drift outside [0, 1), margin >= lease, a strategy whose
    system or mode does not match the quorum system it is configured
    for, ...). *)

val dqvl :
  servers:int list ->
  ?volume_lease_ms:float ->
  ?proactive_renew:bool ->
  ?object_lease_ms:float ->
  ?max_drift:float ->
  ?max_rounds:int ->
  unit ->
  t
(** The paper's default DQVL configuration: majority IQS and
    read-one/write-all OQS over [servers], 5000 ms volume leases,
    drift bound 1e-3 (overridable with [max_drift]), proactive renewal
    on, unbounded retransmission ([max_rounds]). *)

val basic : servers:int list -> unit -> t
(** The basic dual-quorum protocol of Section 3.1 (no volume leases). *)

val name : t -> string
(** ["dqvl"], ["dq-basic"], or the same with an ["-atomic"] suffix;
    used in experiment output. *)
