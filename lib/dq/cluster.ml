module Net = Dq_net.Net
module Topology = Dq_net.Topology
module Qs = Dq_quorum.Quorum_system
module Engine = Dq_sim.Engine
module Clock = Dq_sim.Clock
module R = Dq_intf.Replication

type server_roles = {
  iqs : Iqs_server.t option;
  oqs : Oqs_server.t option;
  fe : Frontend.t;
}

type client_stub = {
  mutable next_op : int;
  pending : (int, [ `Read of R.read_result -> unit | `Write of R.write_result -> unit ]) Hashtbl.t;
  give_ups : (int, unit -> unit) Hashtbl.t;
      (* give-up notification per pending op, when the caller wants one *)
}

type t = {
  engine : Engine.t;
  net : Message.t Net.t;
  config : Config.t;
  servers : (int, server_roles) Hashtbl.t;
  clients : (int, client_stub) Hashtbl.t;
  clocks : (int, Clock.t) Hashtbl.t; (* per-server clocks, for fault injection *)
}

let config t = t.config

let net t = t.net

let iqs_server t id =
  match Hashtbl.find_opt t.servers id with Some r -> r.iqs | None -> None

let oqs_server t id =
  match Hashtbl.find_opt t.servers id with Some r -> r.oqs | None -> None

let frontend t id =
  match Hashtbl.find_opt t.servers id with Some r -> Some r.fe | None -> None

let make_server_clock engine config =
  (* Strictly inside the drift bound assumed by the lease arithmetic. *)
  let rng = Engine.split_rng engine in
  Clock.random engine ~rng ~max_drift:(config.Config.max_drift *. 0.9) ~max_offset:0.

let server_clock t id = Hashtbl.find_opt t.clocks id

let install_server t id =
  let clock = make_server_clock t.engine t.config in
  Clock.set_owner clock id;
  Hashtbl.replace t.clocks id clock;
  let iqs =
    if Qs.mem t.config.iqs id then
      Some (Iqs_server.create ~net:t.net ~clock ~config:t.config ~me:id)
    else None
  in
  let oqs =
    if Qs.mem t.config.oqs id then
      Some
        (Oqs_server.create ~net:t.net ~clock ~config:t.config
           ~rng:(Engine.split_rng t.engine) ~me:id)
    else None
  in
  let fe =
    Frontend.create ~net:t.net ~config:t.config ~rng:(Engine.split_rng t.engine) ~me:id
  in
  let roles = { iqs; oqs; fe } in
  Hashtbl.replace t.servers id roles;
  Net.register t.net ~node:id (fun ~src msg ->
      Option.iter (fun server -> Iqs_server.handle server ~src msg) roles.iqs;
      Option.iter (fun server -> Oqs_server.handle server ~src msg) roles.oqs;
      Frontend.handle roles.fe ~src msg);
  Net.on_status_change t.net ~node:id (fun ~up ~wiped ->
      if up then begin
        (* The OQS cache and frontend state are volatile anyway: a wipe
           changes nothing for them (the cache restarts cold, epochs
           from 0). Only the IQS role has durable state to mourn. *)
        Option.iter (fun server -> Iqs_server.on_recover server ~wiped) roles.iqs;
        Option.iter Oqs_server.on_recover roles.oqs;
        Frontend.on_recover roles.fe
      end)

let install_client t id =
  let stub = { next_op = 0; pending = Hashtbl.create 8; give_ups = Hashtbl.create 8 } in
  Hashtbl.replace t.clients id stub;
  let settle op =
    Hashtbl.remove stub.pending op;
    Hashtbl.remove stub.give_ups op
  in
  Net.register t.net ~node:id (fun ~src:_ msg ->
      match msg with
      | Message.Client_read_reply { op; key; value; lc } -> (
        match Hashtbl.find_opt stub.pending op with
        | Some (`Read callback) ->
          settle op;
          callback { R.read_key = key; read_value = value; read_lc = lc }
        | Some (`Write _) | None -> ())
      | Message.Client_write_reply { op; key; lc } -> (
        match Hashtbl.find_opt stub.pending op with
        | Some (`Write callback) ->
          settle op;
          callback { R.write_key = key; write_lc = lc }
        | Some (`Read _) | None -> ())
      | Message.Client_read_fail { op; _ } | Message.Client_write_fail { op; _ } ->
        if Hashtbl.mem stub.pending op then begin
          let give_up = Hashtbl.find_opt stub.give_ups op in
          settle op;
          match give_up with Some notify -> notify () | None -> ()
        end
      (* client stubs only consume read/write replies; anything else
         addressed to a client is dropped by design *)
      | _ -> () [@dqr.lint.allow "R9"])

let create engine topology ?faults config =
  Config.validate config;
  let net = Net.create engine topology ?faults ~classify:Message.classify ~size_of:Message.size_of () in
  let t =
    {
      engine;
      net;
      config;
      servers = Hashtbl.create 16;
      clients = Hashtbl.create 8;
      clocks = Hashtbl.create 16;
    }
  in
  List.iter (install_server t) (Topology.servers topology);
  List.iter (install_client t) (Topology.clients topology);
  t

let client_stub t id =
  match Hashtbl.find_opt t.clients id with
  | Some stub -> stub
  | None -> invalid_arg (Printf.sprintf "Cluster: node %d is not a client" id)

let api t =
  let submit_read ~client ~server ?on_give_up key callback =
    let stub = client_stub t client in
    let op = stub.next_op in
    stub.next_op <- op + 1;
    Hashtbl.replace stub.pending op (`Read callback);
    (match on_give_up with
    | Some notify -> Hashtbl.replace stub.give_ups op notify
    | None -> ());
    Net.send t.net ~src:client ~dst:server (Message.Client_read_req { op; key })
  in
  let submit_write ~client ~server ?on_give_up key value callback =
    let stub = client_stub t client in
    let op = stub.next_op in
    stub.next_op <- op + 1;
    Hashtbl.replace stub.pending op (`Write callback);
    (match on_give_up with
    | Some notify -> Hashtbl.replace stub.give_ups op notify
    | None -> ());
    Net.send t.net ~src:client ~dst:server (Message.Client_write_req { op; key; value })
  in
  {
    R.protocol_name = Config.name t.config;
    submit_read;
    submit_write;
    crash_server = (fun id -> Net.crash t.net id);
    recover_server = (fun id -> Net.recover t.net id);
    server_up = (fun id -> Net.is_up t.net id);
    message_stats = (fun () -> Net.stats t.net);
    quiesce =
      (fun () ->
        Hashtbl.iter (fun _ roles -> Option.iter Oqs_server.quiesce roles.oqs) t.servers);
  }
