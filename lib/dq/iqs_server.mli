(** An input-quorum-system (IQS) server node.

    IQS nodes accept writes, grant object and volume leases to OQS
    nodes, and guarantee — before acknowledging a write — that no OQS
    write quorum can still read the overwritten version. Three ways a
    peer OQS node [j] is ruled out (paper, Section 3.2, client write):

    - {b suppress}: this node knows [j] holds no valid callback
      ([lastAckLC > lastReadLC], strictly — the equality case is
      conservatively treated as "possibly valid");
    - {b invalidate}: an object invalidation is sent to [j] and its
      acknowledgment awaited;
    - {b delay}: [j]'s volume lease has expired, so an invalidation is
      queued in [delayed] for delivery with [j]'s next lease renewal.

    Object state ([lastWriteLC], values, callback bookkeeping) is
    durable: it survives a {e fail-stop} crash. Retransmission loops are
    volatile and are rebuilt by client retransmissions after recovery.

    An {e amnesia} crash wipes the durable state too. On recovery the
    node enters [Syncing]: it refuses to vote in any quorum (all
    messages but its own state transfer are dropped) while it rebuilds
    its objects from a read quorum of IQS peers, one volume chunk at a
    time ([Sync_req]/[Sync_resp]), resumably — a fail-stop crash
    mid-sync continues at the saved cursor. Even once the transfer
    completes it stays quarantined until every lease it could have
    granted before the wipe has expired at its holder, and the first
    post-wipe volume grant to each holder bumps the epoch strictly above
    the holder's cached one, invalidating all pre-wipe object leases. *)

open Dq_storage

type t

val create :
  net:Message.t Dq_net.Net.t -> clock:Dq_sim.Clock.t -> config:Config.t -> me:int -> t

val handle : t -> src:int -> Message.t -> unit
(** Process one protocol message. Messages that are not addressed to an
    IQS role are ignored (the node dispatcher may host several roles). *)

val on_recover : t -> wiped:bool -> unit
(** Discard volatile runtime state (in-flight write loops) after a
    crash. With [wiped:false] durable object state is retained (and an
    interrupted state transfer resumes); with [wiped:true] the durable
    state is discarded too and the node enters [Syncing]. *)

(** {2 Introspection (tests, examples, experiment assertions)} *)

val logical_clock : t -> Lc.t

val stored : t -> Key.t -> Versioned.t

val last_read_lc : t -> Key.t -> Lc.t

val last_ack_lc : t -> Key.t -> oqs:int -> Lc.t

val lease_expires : t -> volume:int -> oqs:int -> float
(** In this node's local clock; [neg_infinity] if never granted. *)

val epoch : t -> volume:int -> oqs:int -> int

val delayed_count : t -> volume:int -> oqs:int -> int

val local_time : t -> float
(** This node's local clock reading (for cross-node invariant checks). *)

val lease_valid_for : t -> volume:int -> oqs:int -> bool
(** Does this node consider [oqs]'s volume lease currently valid? *)

val callback_possible : t -> Dq_storage.Key.t -> oqs:int -> bool
(** Could this node believe [oqs] holds a valid object callback? The
    safety invariant requires this whenever [oqs] actually holds one. *)

val active_write_loops : t -> int

val is_syncing : t -> bool
(** The node is catching up after an amnesia crash (or still inside the
    post-sync lease quarantine) and refuses to vote in any quorum. *)

val was_wiped : t -> bool
(** The node has lost its durable state at least once in its history. *)

val sync_progress : t -> (int * int * int) option
(** [(cursor, bytes, objects)] of the in-progress state transfer. *)
