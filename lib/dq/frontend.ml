open Dq_storage
module Net = Dq_net.Net
module Qrpc = Dq_rpc.Qrpc

type pending =
  | Oqs_read of (string * Lc.t) Qrpc.t
  | Lc_read of Lc.t Qrpc.t
  | Iqs_write of Lc.t Qrpc.t

type t = {
  net : Message.t Net.t;
  bus : Dq_telemetry.Bus.t;
  config : Config.t;
  rng : Dq_util.Rng.t;
  me : int;
  tracker : Dq_rpc.Peer_tracker.t option;
  mutable next_op : int;
  mutable last_issued : Lc.t;
  mutable pending : (int, pending) Hashtbl.t;
  mutable seen_client_ops : (int * int, unit) Hashtbl.t;
      (* (client, op) pairs already accepted: the network may duplicate
         requests, and executing a client write twice would issue two
         distinct writes for one client operation *)
}

let create ~net ~config ~rng ~me =
  let tracker =
    if config.Config.latency_aware then
      Some
        (Dq_rpc.Peer_tracker.create ~now:(fun () ->
             Dq_sim.Engine.now (Net.engine net)))
    else None
  in
  {
    net;
    bus = Dq_sim.Engine.telemetry (Net.engine net);
    config;
    rng;
    me;
    tracker;
    next_op = 0;
    last_issued = Lc.zero;
    pending = Hashtbl.create 16;
    seen_client_ops = Hashtbl.create 16;
  }

let fresh_client_op t ~client ~op =
  if Hashtbl.mem t.seen_client_ops (client, op) then false
  else begin
    Hashtbl.add t.seen_client_ops (client, op) ();
    true
  end

let fresh_op t =
  let op = t.next_op in
  t.next_op <- op + 1;
  op

let send t dst msg = Net.send t.net ~src:t.me ~dst msg

let timer t ~delay_ms action = Net.timer t.net ~node:t.me ~delay_ms action

(* Atomic-read imposition (paper future work): push the value about to
   be returned through an IQS write quorum with its own timestamp. Each
   IQS node re-runs the ensure-invalid step for that timestamp, which
   guarantees no OQS write quorum can still serve an older version —
   so no later read can observe one (no new-old inversion). *)
let impose t ~key ~value ~lc ~on_done ~on_fail =
  let op = fresh_op t in
  let call =
    Qrpc.call ~timer:(timer t) ~rng:t.rng ~system:t.config.iqs ~mode:Qrpc.Write
      ~send:(fun dst -> send t dst (Message.Iqs_write_req { op; key; value; lc }))
      ~on_quorum:(fun _ ->
        Hashtbl.remove t.pending op;
        on_done ~value ~lc)
      ~prefer:t.me ?tracker:t.tracker ?strategy:t.config.iqs_write_strategy
      ~timeout_ms:t.config.retry_timeout_ms
      ~backoff:t.config.retry_backoff ?max_rounds:t.config.max_rounds
      ~on_give_up:(fun () ->
        Hashtbl.remove t.pending op;
        on_fail ())
      ~bus:t.bus ~node:t.me ~tag:"fe.impose" ()
  in
  Hashtbl.replace t.pending op (Iqs_write call)

let read t ~key ~on_done ~on_fail =
  let op = fresh_op t in
  let call =
    Qrpc.call ~timer:(timer t) ~rng:t.rng ~system:t.config.oqs ~mode:Qrpc.Read
      ~send:(fun dst -> send t dst (Message.Oqs_read_req { op; key }))
      ~on_quorum:(fun replies ->
        Hashtbl.remove t.pending op;
        let best =
          List.fold_left
            (fun acc (_, (value, lc)) ->
              match acc with
              | Some (_, best_lc) when Lc.(best_lc >= lc) -> acc
              | Some _ | None -> Some (value, lc))
            None replies
        in
        match best with
        | Some (value, lc) ->
          if t.config.atomic_reads then impose t ~key ~value ~lc ~on_done ~on_fail
          else on_done ~value ~lc
        | None -> () (* a quorum always has at least one reply *))
      ~prefer:t.me ?tracker:t.tracker ?strategy:t.config.oqs_read_strategy
      ~timeout_ms:t.config.retry_timeout_ms
      ~backoff:t.config.retry_backoff ?max_rounds:t.config.max_rounds
      ~on_give_up:(fun () ->
        Hashtbl.remove t.pending op;
        on_fail ())
      ~bus:t.bus ~node:t.me ~tag:"fe.read" ()
  in
  Hashtbl.replace t.pending op (Oqs_read call)

let write t ~key ~value ~on_done ~on_fail =
  (* Phase 1: highest logical clock of any completed write, from an IQS
     read quorum. *)
  let op1 = fresh_op t in
  let phase2 max_lc =
    let wlc = Lc.succ (Lc.max max_lc t.last_issued) ~node:t.me in
    if Dq_telemetry.Bus.subscribed t.bus then
      Dq_telemetry.Bus.emit t.bus
        (Dq_telemetry.Event.Note
           {
             src = "dq.frontend";
             msg =
               Format.asprintf "node %d: write %a assigned lc=%a" t.me Key.pp key Lc.pp
                 wlc;
           });
    t.last_issued <- wlc;
    let op2 = fresh_op t in
    let call =
      Qrpc.call ~timer:(timer t) ~rng:t.rng ~system:t.config.iqs ~mode:Qrpc.Write
        ~send:(fun dst -> send t dst (Message.Iqs_write_req { op = op2; key; value; lc = wlc }))
        ~on_quorum:(fun _replies ->
          Hashtbl.remove t.pending op2;
          on_done ~lc:wlc)
        ~prefer:t.me ?tracker:t.tracker ?strategy:t.config.iqs_write_strategy
        ~timeout_ms:t.config.retry_timeout_ms
        ~backoff:t.config.retry_backoff ?max_rounds:t.config.max_rounds
        ~on_give_up:(fun () ->
          Hashtbl.remove t.pending op2;
          on_fail ())
        ~bus:t.bus ~node:t.me ~tag:"fe.write" ()
    in
    Hashtbl.replace t.pending op2 (Iqs_write call)
  in
  let call =
    Qrpc.call ~timer:(timer t) ~rng:t.rng ~system:t.config.iqs ~mode:Qrpc.Read
      ~send:(fun dst -> send t dst (Message.Lc_read_req { op = op1 }))
      ~on_quorum:(fun replies ->
        Hashtbl.remove t.pending op1;
        let max_lc = List.fold_left (fun acc (_, lc) -> Lc.max acc lc) Lc.zero replies in
        phase2 max_lc)
      ~prefer:t.me ?tracker:t.tracker ?strategy:t.config.iqs_read_strategy
      ~timeout_ms:t.config.retry_timeout_ms
      ~backoff:t.config.retry_backoff ?max_rounds:t.config.max_rounds
      ~on_give_up:(fun () ->
        Hashtbl.remove t.pending op1;
        on_fail ())
      ~bus:t.bus ~node:t.me ~tag:"fe.lc_read" ()
  in
  Hashtbl.replace t.pending op1 (Lc_read call)

let deliver_reply t ~src ~op payload =
  match Hashtbl.find_opt t.pending op, payload with
  | Some (Oqs_read call), `Read (value, lc) -> Qrpc.deliver call ~src (value, lc)
  | Some (Lc_read call), `Lc lc -> Qrpc.deliver call ~src lc
  | Some (Iqs_write call), `Ack lc -> Qrpc.deliver call ~src lc
  | Some _, _ | None, _ -> () (* stale or mismatched reply *)

let handle t ~src msg =
  match msg with
  | Message.Oqs_read_reply { op; value; lc; _ } -> deliver_reply t ~src ~op (`Read (value, lc))
  | Message.Lc_read_reply { op; lc } -> deliver_reply t ~src ~op (`Lc lc)
  | Message.Iqs_write_ack { op; lc; _ } -> deliver_reply t ~src ~op (`Ack lc)
  | Message.Client_read_req { op; key } ->
    if fresh_client_op t ~client:src ~op then
      read t ~key
        ~on_done:(fun ~value ~lc ->
          send t src (Message.Client_read_reply { op; key; value; lc }))
        ~on_fail:(fun () -> send t src (Message.Client_read_fail { op; key }))
  | Message.Client_write_req { op; key; value } ->
    if fresh_client_op t ~client:src ~op then
      write t ~key ~value
        ~on_done:(fun ~lc -> send t src (Message.Client_write_reply { op; key; lc }))
        ~on_fail:(fun () -> send t src (Message.Client_write_fail { op; key }))
  | Message.Client_read_fail _ | Message.Client_write_fail _ | Message.Client_read_reply _
  | Message.Client_write_reply _ | Message.Oqs_read_req _
  | Message.Lc_read_req _ | Message.Iqs_write_req _ | Message.Obj_renew_req _
  | Message.Obj_renew_reply _ | Message.Vol_renew_req _ | Message.Vol_renew_reply _
  | Message.Vol_renew_ack _ | Message.Vols_renew_req _ | Message.Vols_renew_reply _
  | Message.Inval _ | Message.Inval_ack _ | Message.Sync_req _ | Message.Sync_resp _ ->
    ()

let on_recover t =
  t.pending <- Hashtbl.create 16;
  t.seen_client_ops <- Hashtbl.create 16

let pending_operations t = Hashtbl.length t.pending
