(** The availability models of Section 4.2 (Figure 8).

    Availability is the fraction of client requests the system can
    process while still guaranteeing regular semantics; nodes fail
    independently with probability [p]. With write ratio [w]:

    - {b DQVL}: av = (1-w) * min(av_orq, av_irq) + w * min(av_iwq, av_irq)
      (the paper's formula; reads need an OQS read quorum and, in the
      pessimistic model, an IQS read quorum for renewals; writes need an
      IQS write quorum and an IQS read quorum for the timestamp read).
    - {b Majority quorum}: both operations need a majority.
    - {b ROWA}: reads need one replica, writes all.
    - {b ROWA-Async (stale reads allowed)}: any replica serves anything
      — but reads may be arbitrarily stale.
    - {b ROWA-Async (no stale reads)}: to guarantee a read reflects the
      latest completed write, the replica holding that write must be
      reachable; unavailability is dominated by a single-node failure
      ([p]) and is insensitive to the replica count.
    - {b Primary/backup}: every request needs the primary.

    Unavailabilities are computed in probability space, so the 1e-9
    and smaller values plotted by the paper keep full precision. *)

type protocol =
  | Dqvl of { iqs : Dq_quorum.Quorum_system.t; oqs : Dq_quorum.Quorum_system.t }
  | Majority of { n : int }
  | Rowa of { n : int }
  | Rowa_async_stale of { n : int }
  | Rowa_async_no_stale
  | Primary_backup
  | Custom of { read : Dq_quorum.Quorum_system.t; write : Dq_quorum.Quorum_system.t }
      (** e.g. a grid quorum system *)

val dqvl_default : n:int -> protocol
(** Majority IQS and read-one/write-all OQS over [n] replicas. *)

val read_unavailability : protocol -> p:float -> float

val write_unavailability : protocol -> p:float -> float

val unavailability : protocol -> p:float -> w:float -> float
(** Request-weighted: [(1-w) * read + w * write] unavailability. *)

val availability : protocol -> p:float -> w:float -> float

val read_unavailability_p : protocol -> p:(int -> float) -> float
(** Heterogeneous variant: [p id] is node [id]'s failure probability
    (ids [0 .. n-1]). Quorum-backed protocols use the exact 2^n
    enumeration of {!Dq_quorum.Availability.unavailability_p}; for the
    structureless baselines, [Primary_backup] and
    [Rowa_async_no_stale] depend on node 0 (the primary / the replica
    holding the latest write). *)

val write_unavailability_p : protocol -> p:(int -> float) -> float

val unavailability_p : protocol -> p:(int -> float) -> w:float -> float

val name : protocol -> string
