module Qs = Dq_quorum.Quorum_system
module Av = Dq_quorum.Availability

type protocol =
  | Dqvl of { iqs : Qs.t; oqs : Qs.t }
  | Majority of { n : int }
  | Rowa of { n : int }
  | Rowa_async_stale of { n : int }
  | Rowa_async_no_stale
  | Primary_backup
  | Custom of { read : Qs.t; write : Qs.t }

let dqvl_default ~n =
  let members = List.init n Fun.id in
  Dqvl { iqs = Qs.majority members; oqs = Qs.rowa members }

let name = function
  | Dqvl _ -> "dqvl"
  | Majority _ -> "majority"
  | Rowa _ -> "rowa"
  | Rowa_async_stale _ -> "rowa-async"
  | Rowa_async_no_stale -> "rowa-async-nostale"
  | Primary_backup -> "primary-backup"
  | Custom { read; _ } -> Qs.name read

(* P(all n nodes fail) computed in probability space. *)
let all_fail ~n ~p = p ** float_of_int n

(* P(at least one of n nodes fails) = 1 - (1-p)^n, via expm1 to keep
   precision for small p. *)
let any_fail ~n ~p = -.Float.expm1 (float_of_int n *. Float.log1p (-.p))

let members_of n = List.init n Fun.id

let read_unavailability protocol ~p =
  match protocol with
  | Dqvl { iqs; oqs } ->
    (* min(av_orq, av_irq) = 1 - max(unav_orq, unav_irq). *)
    Float.max (Av.unavailability oqs ~mode:Av.Read ~p) (Av.unavailability iqs ~mode:Av.Read ~p)
  | Majority { n } -> Av.unavailability (Qs.majority (members_of n)) ~mode:Av.Read ~p
  | Rowa { n } -> all_fail ~n ~p
  | Rowa_async_stale { n } -> all_fail ~n ~p
  | Rowa_async_no_stale -> p
  | Primary_backup -> p
  | Custom { read; _ } -> Av.unavailability read ~mode:Av.Read ~p

let write_unavailability protocol ~p =
  match protocol with
  | Dqvl { iqs; _ } ->
    (* min(av_iwq, av_irq): both quorums live in the IQS. *)
    Float.max
      (Av.unavailability iqs ~mode:Av.Write ~p)
      (Av.unavailability iqs ~mode:Av.Read ~p)
  | Majority { n } -> Av.unavailability (Qs.majority (members_of n)) ~mode:Av.Write ~p
  | Rowa { n } -> any_fail ~n ~p
  | Rowa_async_stale { n } -> all_fail ~n ~p
  | Rowa_async_no_stale -> p
  | Primary_backup -> p
  | Custom { write; _ } -> Av.unavailability write ~mode:Av.Write ~p

let unavailability protocol ~p ~w =
  ((1. -. w) *. read_unavailability protocol ~p) +. (w *. write_unavailability protocol ~p)

let availability protocol ~p ~w = 1. -. unavailability protocol ~p ~w

(* Heterogeneous per-node failure probabilities: the quorum-backed
   protocols route through {!Av.unavailability_p} (exact 2^n
   enumeration); the structureless baselines take the probability of
   the specific node/set they depend on. *)

let hetero_fail_all ~n ~p =
  let acc = ref 1. in
  for id = 0 to n - 1 do
    acc := !acc *. p id
  done;
  !acc

let hetero_fail_any ~n ~p =
  let live = ref 1. in
  for id = 0 to n - 1 do
    live := !live *. (1. -. p id)
  done;
  1. -. !live

let read_unavailability_p protocol ~p =
  match protocol with
  | Dqvl { iqs; oqs } ->
    Float.max
      (Av.unavailability_p oqs ~mode:Av.Read ~p)
      (Av.unavailability_p iqs ~mode:Av.Read ~p)
  | Majority { n } -> Av.unavailability_p (Qs.majority (members_of n)) ~mode:Av.Read ~p
  | Rowa { n } -> hetero_fail_all ~n ~p
  | Rowa_async_stale { n } -> hetero_fail_all ~n ~p
  | Rowa_async_no_stale -> p 0
  | Primary_backup -> p 0
  | Custom { read; _ } -> Av.unavailability_p read ~mode:Av.Read ~p

let write_unavailability_p protocol ~p =
  match protocol with
  | Dqvl { iqs; _ } ->
    Float.max
      (Av.unavailability_p iqs ~mode:Av.Write ~p)
      (Av.unavailability_p iqs ~mode:Av.Read ~p)
  | Majority { n } -> Av.unavailability_p (Qs.majority (members_of n)) ~mode:Av.Write ~p
  | Rowa { n } -> hetero_fail_any ~n ~p
  | Rowa_async_stale { n } -> hetero_fail_all ~n ~p
  | Rowa_async_no_stale -> p 0
  | Primary_backup -> p 0
  | Custom { write; _ } -> Av.unavailability_p write ~mode:Av.Write ~p

let unavailability_p protocol ~p ~w =
  ((1. -. w) *. read_unavailability_p protocol ~p)
  +. (w *. write_unavailability_p protocol ~p)
