(** The perf-campaign scenario registry.

    A scenario is a named, versioned experiment shape: topology,
    workload, protocols under test, op counts (full and smoke), value
    padding and an optional fault schedule. Scenarios run entirely in
    virtual time, so every metric except the wall-clock ones is a pure
    function of the seed — which is what lets CI diff fresh results
    against a committed baseline ({!Diff}).

    Changing a scenario's definition must bump its [version]: the
    differ refuses to compare results generated from different
    versions, so a reshaped experiment reads as "regenerate the
    baseline", never as a phantom regression. *)

type t = {
  name : string;
  version : int;  (** part of the baseline contract — bump on any reshape *)
  description : string;
  protocols : string list;  (** {!Dq_harness.Registry.find} names *)
  n_servers : int;
  n_clients : int;
  ops_per_client : int;
  smoke_ops : int;  (** op count under [--smoke] (CI) *)
  spec : Dq_workload.Spec.t;
  value_pad : int;  (** pad write values to this size (large-object runs) *)
  wan_scale : float;
      (** multiplier on the paper's WAN delays (client-distant 86 ms,
          server-server 80 ms); LAN delays are never scaled *)
  timeout_ms : float;
  redirect_to_up : bool;
  faults : Dq_harness.Driver.event list;
}

val baseline : t
(** Paper topology, 10% writes on shared objects, all five paper
    protocols — the scenario CI gates against a committed baseline. *)

val high_throughput : t
(** Open-loop Poisson arrivals; saturation behaviour. *)

val large_objects : t
(** 16 KiB values; wire-byte costs dominate. *)

val latency_focus : t
(** Read-dominated, 90% locality; tail-latency quantiles. *)

val warm_standby : t
(** A server crashes mid-run and recovers, with request redirection:
    failover latency, availability and staleness. *)

val all : t list

val find : string -> t option

(** {2 Running} *)

type outcome = {
  protocol : string;
  wan_scale : float;     (** effective (scenario × sweep override) *)
  write_ratio : float;   (** effective *)
  result : Dq_harness.Driver.result;
  metrics : Dq_telemetry.Metrics.t;
  aoi : Dq_telemetry.Aoi.t;
  staleness : Dq_harness.Staleness.report;  (** offline oracle *)
  age : Dq_harness.Staleness.age_report;
  violations : int;  (** regular-semantics violations (a metric here —
                         ROWA-Async violates by design) *)
  sim_events : int;
  wall_s : float option;  (** only when [now_s] was supplied *)
}

val run :
  ?now_s:(unit -> float) ->
  ?smoke:bool ->
  ?seed:int64 ->
  t ->
  outcome list
(** One outcome per protocol, in registry order. [now_s] is a
    wall-clock reader (the CLI passes [Unix.gettimeofday]) used only
    for the advisory [wall_s] timing — the library itself never reads
    wall clocks, keeping every gated metric deterministic. Every run
    cross-checks the online AoI sink against the offline staleness
    oracle and fails loudly on disagreement.

    @raise Invalid_argument on an unknown protocol name. *)

val sweep :
  ?now_s:(unit -> float) ->
  ?smoke:bool ->
  ?seed:int64 ->
  wan_scales:float list ->
  write_ratios:float list ->
  t ->
  outcome list
(** The cross product of the axes over the scenario's protocols, outer
    to inner: wan_scale, write_ratio, protocol. *)

val run_protocol :
  ?now_s:(unit -> float) ->
  ?wan_scale:float ->
  ?write_ratio:float ->
  smoke:bool ->
  seed:int64 ->
  t ->
  protocol:string ->
  outcome
(** One cell. [wan_scale] multiplies the scenario's own factor
    (sweep override); [write_ratio] replaces the spec's. *)
