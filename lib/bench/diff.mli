(** The results differ behind [dqr bench diff OLD.json NEW.json].

    Pairs the two files' gated metrics by flattened leaf path and flags
    drift beyond a noise band. Per-path direction is derived from the
    metric name:

    - {e lower is better} (the default): latency, age, staleness,
      message/byte, failure and violation metrics;
    - {e higher is better}: [completed], [throughput*];
    - {e neutral}: structural counters (histogram buckets, [count],
      [issued], [sim_events], [checked], axis echoes) — drift is
      reported but never gates;
    - {e skipped}: anything under a [wall] path — wall-clock numbers
      measure the machine, not the code.

    A gated metric that disappears from NEW is a failure (a deleted
    metric must come with a regenerated baseline); metrics only in NEW
    are noted but pass. Files must both be schema 3 with the same
    scenario name/version and kind, otherwise the comparison itself is
    an error — changing a scenario means regenerating its baseline. *)

type direction = Lower_better | Higher_better | Neutral | Skip

type finding = { path : string; old_v : float; new_v : float; direction : direction }

type report = {
  band : float;  (** the relative band actually used *)
  compared : int;
  regressions : finding list;
  improvements : finding list;
  changes : finding list;  (** neutral drift beyond the band *)
  missing : string list;   (** gated in OLD, absent from NEW *)
  added : string list;     (** present only in NEW *)
}

val direction_of : string -> direction
(** Classification of one flattened leaf path. *)

val diff : ?band:float -> Json.t -> Json.t -> (report, string) result
(** [diff old_ new_]. The band is [?band], else NEW's [noise_band]
    field, else OLD's, else {!Results.default_noise_band}. The
    threshold per metric is [band * max (abs old) 1.0] — a relative
    band with an absolute floor, so tiny counters don't flag on any
    movement. [Error] means the files are not comparable (schema or
    scenario mismatch, no results). *)

val diff_files : ?band:float -> old_path:string -> new_path:string -> unit -> (report, string) result

val passed : report -> bool
(** No regressions and no missing gated metrics. *)

val pp : Format.formatter -> report -> unit
(** Human-readable summary, regressions first. *)
