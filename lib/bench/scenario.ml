module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Spec = Dq_workload.Spec
module Driver = Dq_harness.Driver
module Registry = Dq_harness.Registry
module Staleness = Dq_harness.Staleness
module Regular_checker = Dq_harness.Regular_checker
module Bus = Dq_telemetry.Bus
module Metrics = Dq_telemetry.Metrics
module Aoi = Dq_telemetry.Aoi

type t = {
  name : string;
  version : int;
  description : string;
  protocols : string list;
  n_servers : int;
  n_clients : int;
  ops_per_client : int;
  smoke_ops : int;
  spec : Spec.t;
  value_pad : int;
  wan_scale : float;
  timeout_ms : float;
  redirect_to_up : bool;
  faults : Driver.event list;
}

(* The campaign registry. Versions are part of the baseline contract:
   any change to a scenario's shape (topology, workload, op counts,
   faults) must bump [version], which makes [dqr bench diff] refuse to
   compare results across definitions instead of reporting noise. *)

let paper_five_names = [ "dqvl-paper"; "primary-backup"; "majority"; "rowa"; "rowa-async" ]

let baseline =
  {
    name = "baseline";
    version = 1;
    description =
      "paper topology, mixed read/write on shared objects; every paper protocol";
    protocols = paper_five_names;
    n_servers = 5;
    n_clients = 3;
    ops_per_client = 200;
    smoke_ops = 40;
    spec =
      {
        Spec.default with
        Spec.write_ratio = 0.1;
        sharing = Spec.Shared_uniform { objects = 4 };
      };
    value_pad = 0;
    wan_scale = 1.;
    timeout_ms = 30_000.;
    redirect_to_up = false;
    faults = [];
  }

let high_throughput =
  {
    name = "high-throughput";
    version = 1;
    description = "open-loop Poisson arrivals at 50 req/s per client; saturation behaviour";
    protocols = [ "dqvl-paper"; "majority" ];
    n_servers = 3;
    n_clients = 6;
    ops_per_client = 300;
    smoke_ops = 50;
    spec =
      {
        Spec.default with
        Spec.write_ratio = 0.2;
        sharing = Spec.Shared_uniform { objects = 8 };
        arrival = Spec.Open { rate_per_s = 50. };
      };
    value_pad = 0;
    wan_scale = 1.;
    timeout_ms = 30_000.;
    redirect_to_up = false;
    faults = [];
  }

let large_objects =
  {
    name = "large-objects";
    version = 1;
    description = "16 KiB values: wire-byte costs dominate; replication fan-out visible";
    protocols = [ "dqvl-paper"; "primary-backup"; "majority" ];
    n_servers = 5;
    n_clients = 3;
    ops_per_client = 150;
    smoke_ops = 30;
    spec = { Spec.default with Spec.write_ratio = 0.25 };
    value_pad = 16_384;
    wan_scale = 1.;
    timeout_ms = 30_000.;
    redirect_to_up = false;
    faults = [];
  }

let latency_focus =
  {
    name = "latency-focus";
    version = 1;
    description = "read-dominated private objects at 90% locality; tail-latency quantiles";
    protocols = paper_five_names;
    n_servers = 5;
    n_clients = 3;
    ops_per_client = 300;
    smoke_ops = 60;
    spec = { Spec.default with Spec.write_ratio = 0.05; locality = 0.9 };
    value_pad = 0;
    wan_scale = 1.;
    timeout_ms = 30_000.;
    redirect_to_up = false;
    faults = [];
  }

let warm_standby =
  {
    name = "warm-standby";
    version = 1;
    description =
      "failover: a server crashes mid-run and recovers; request redirection on";
    protocols = [ "dqvl-paper"; "primary-backup"; "majority" ];
    n_servers = 5;
    n_clients = 3;
    ops_per_client = 200;
    smoke_ops = 40;
    spec =
      {
        Spec.default with
        Spec.write_ratio = 0.1;
        sharing = Spec.Shared_uniform { objects = 4 };
      };
    value_pad = 0;
    wan_scale = 1.;
    timeout_ms = 8_000.;
    redirect_to_up = true;
    faults =
      [
        { Driver.at_ms = 10_000.; action = `Crash 0 };
        { Driver.at_ms = 40_000.; action = `Recover 0 };
      ];
  }

let all = [ baseline; high_throughput; large_objects; latency_focus; warm_standby ]

let find name = List.find_opt (fun s -> String.equal s.name name) all

(* {2 Running} *)

type outcome = {
  protocol : string;
  wan_scale : float;
  write_ratio : float;
  result : Driver.result;
  metrics : Metrics.t;
  aoi : Aoi.t;
  staleness : Staleness.report;
  age : Staleness.age_report;
  violations : int;
  sim_events : int;
  wall_s : float option;
}

(* The online AoI sink and the offline history oracle are two
   implementations of one definition; every bench run cross-checks the
   exactly-countable parts so drift between them fails loudly instead
   of silently skewing a gated metric. (Float accumulations are
   order-sensitive, so means are checked in the test suite with a
   tolerance, not here.) *)
let cross_check ~protocol (aoi : Aoi.summary) (oracle : Staleness.report) =
  if
    aoi.Aoi.reads_checked <> oracle.Staleness.checked
    || aoi.Aoi.stale_reads <> List.length oracle.Staleness.stale
    || aoi.Aoi.max_versions_behind <> oracle.Staleness.max_versions_behind
  then
    failwith
      (Printf.sprintf
         "%s: online AoI sink disagrees with offline staleness oracle \
          (reads %d/%d, stale %d/%d, versions-behind %d/%d)"
         protocol aoi.Aoi.reads_checked oracle.Staleness.checked aoi.Aoi.stale_reads
         (List.length oracle.Staleness.stale)
         aoi.Aoi.max_versions_behind oracle.Staleness.max_versions_behind)

let run_protocol ?now_s ?(wan_scale = 1.) ?write_ratio ~smoke ~seed (scenario : t) ~protocol =
  let builder =
    match Registry.find protocol with
    | Some b -> b
    | None ->
      invalid_arg
        (Printf.sprintf "Scenario.run: unknown protocol %S (known: %s)" protocol
           (String.concat ", " (Registry.known_names ())))
  in
  let wan_scale = scenario.wan_scale *. wan_scale in
  let spec =
    match write_ratio with
    | None -> scenario.spec
    | Some write_ratio -> { scenario.spec with Spec.write_ratio }
  in
  let engine = Engine.create ~seed () in
  let bus = Engine.telemetry engine in
  let metrics = Metrics.create () in
  let aoi = Aoi.create () in
  Bus.subscribe bus (Metrics.sink metrics);
  Bus.subscribe bus (Aoi.sink aoi);
  let topology =
    Topology.make ~n_servers:scenario.n_servers ~n_clients:scenario.n_clients
      ~wan_ms:(86. *. wan_scale) ~server_ms:(80. *. wan_scale) ()
  in
  let instance = builder.Registry.build engine topology () in
  let config =
    {
      (Driver.default_config spec) with
      Driver.ops_per_client = (if smoke then scenario.smoke_ops else scenario.ops_per_client);
      timeout_ms = scenario.timeout_ms;
      redirect_to_up = scenario.redirect_to_up;
      value_pad = scenario.value_pad;
    }
  in
  let started = Option.map (fun f -> f ()) now_s in
  let result =
    Driver.run_with_events engine topology instance.Registry.api config
      ~events:scenario.faults
      ~on_net_event:(function
        | `Partition groups -> instance.Registry.partition groups
        | `Heal -> instance.Registry.heal ())
  in
  let wall_s =
    match now_s, started with Some f, Some t0 -> Some (f () -. t0) | _ -> None
  in
  let staleness = Staleness.measure result.Driver.history in
  let age = Staleness.measure_age result.Driver.history in
  cross_check ~protocol (Aoi.summary aoi) staleness;
  {
    protocol;
    wan_scale;
    write_ratio = spec.Spec.write_ratio;
    result;
    metrics;
    aoi;
    staleness;
    age;
    violations =
      List.length (Regular_checker.check result.Driver.history).Regular_checker.violations;
    sim_events = Engine.events_executed engine;
    wall_s;
  }

let run ?now_s ?(smoke = false) ?(seed = 42L) (scenario : t) =
  List.map (fun protocol -> run_protocol ?now_s ~smoke ~seed scenario ~protocol)
    scenario.protocols

let sweep ?now_s ?(smoke = false) ?(seed = 42L) ~wan_scales ~write_ratios (scenario : t) =
  List.concat_map
    (fun wan_scale ->
      List.concat_map
        (fun write_ratio ->
          List.map
            (fun protocol ->
              run_protocol ?now_s ~wan_scale ~write_ratio ~smoke ~seed scenario ~protocol)
            scenario.protocols)
        write_ratios)
    wan_scales
