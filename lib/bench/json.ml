type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

(* {2 Parsing}

   A recursive-descent parser over the whole input string. It accepts
   exactly the JSON this repository emits (hand-rolled writers in
   [Dq_telemetry.Json_util], [Results] and [bench/main.ml]) plus the
   usual whitespace/escape liberties, which keeps it honest against
   externally edited baselines too. *)

type state = { src : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun msg -> raise (Error (Printf.sprintf "at byte %d: %s" st.pos msg))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some got when Char.equal got c -> advance st
  | Some got -> fail st "expected %C, found %C" c got
  | None -> fail st "expected %C, found end of input" c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.equal (String.sub st.src st.pos n) word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st "invalid literal (expected %s)" word

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
          let hex = String.sub st.src st.pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | None -> fail st "invalid \\u escape %S" hex
          | Some code ->
            st.pos <- st.pos + 4;
            (* Our writers only escape control characters this way;
               anything outside the Latin-1 range degrades to '?'. *)
            if code < 0x100 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?')
        | c -> fail st "invalid escape \\%C" c);
        go ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail st "invalid number %S" text

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_arr st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail st "unexpected character %C" c

and parse_obj st =
  expect st '{';
  skip_ws st;
  match peek st with
  | Some '}' ->
    advance st;
    Obj []
  | _ ->
    let rec members acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let value = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        members ((key, value) :: acc)
      | Some '}' ->
        advance st;
        Obj (List.rev ((key, value) :: acc))
      | _ -> fail st "expected ',' or '}' in object"
    in
    members []

and parse_arr st =
  expect st '[';
  skip_ws st;
  match peek st with
  | Some ']' ->
    advance st;
    Arr []
  | _ ->
    let rec elements acc =
      let value = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        elements (value :: acc)
      | Some ']' ->
        advance st;
        Arr (List.rev (value :: acc))
      | _ -> fail st "expected ',' or ']' in array"
    in
    elements []

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
  | Some c -> fail st "trailing garbage %C after value" c
  | None -> ());
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* {2 Accessors} *)

let member key v =
  match v with
  | Obj fields -> Option.map snd (List.find_opt (fun (k, _) -> String.equal k key) fields)
  | _ -> None

let num v = match v with Num f -> Some f | _ -> None

let str v = match v with Str s -> Some s | _ -> None

let arr v = match v with Arr items -> Some items | _ -> None

(* {2 Flattening} *)

(* Every numeric leaf as a dotted path: the differ's working
   representation. Booleans count as 0/1 (a flipped flag is a change
   worth surfacing); strings and nulls are not comparable metrics and
   are skipped. *)
let flatten v =
  let out = ref [] in
  let join prefix key = if String.equal prefix "" then key else prefix ^ "." ^ key in
  let rec go prefix v =
    match v with
    | Num f -> out := (prefix, f) :: !out
    | Bool b -> out := (prefix, if b then 1. else 0.) :: !out
    | Obj fields -> List.iter (fun (k, v) -> go (join prefix k) v) fields
    | Arr items -> List.iteri (fun i v -> go (Printf.sprintf "%s[%d]" prefix i) v) items
    | Str _ | Null -> ()
  in
  go "" v;
  List.rev !out
