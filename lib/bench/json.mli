(** A minimal JSON tree, parser and flattener.

    The toolchain has no JSON dependency, and the writers in this
    repository are hand-rolled; this is the matching reader — enough of
    RFC 8259 for the bench results the differ consumes (and for
    externally edited baselines), a few hundred lines instead of a
    package. Numbers are floats, objects keep field order, duplicate
    keys resolve to the first occurrence. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string
(** Parse failure, with a byte offset in the message. *)

val parse : string -> t
(** @raise Error on malformed input or trailing garbage. *)

val parse_file : string -> t
(** @raise Error on malformed input.
    @raise Sys_error if the file cannot be read. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val num : t -> float option

val str : t -> string option

val arr : t -> t list option

val flatten : t -> (string * float) list
(** Every numeric leaf as a [("a.b.c[0].d", value)] pair, in document
    order. Booleans flatten to 0/1; strings and nulls are skipped. The
    differ compares two files leaf-by-leaf over this view. *)
