(* Metric-by-metric comparison of two schema-3 results files.

   Everything here is driven by the leaf paths of [Json.flatten] over
   the "results" subtree. Per path the direction of "worse" is derived
   from the metric name: latency, age, staleness, message and failure
   metrics regress upward; completion and throughput metrics regress
   downward; structural counters (histogram buckets, op counts) have no
   direction and only ever produce notes. Wall-clock metrics are
   excluded outright — they measure the machine, not the code. *)

type direction = Lower_better | Higher_better | Neutral | Skip

type finding = {
  path : string;
  old_v : float;
  new_v : float;
  direction : direction;
}

type report = {
  band : float;
  compared : int;
  regressions : finding list;
  improvements : finding list;
  changes : finding list;  (* neutral drift beyond the band *)
  missing : string list;   (* gated in OLD, absent from NEW *)
  added : string list;     (* present only in NEW *)
}

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

(* Order matters: the first family a path matches wins, so e.g.
   "wall.events_per_sec" is skipped before "per_sec" could classify it,
   and "aoi...count" is neutral before the lower-better default. *)
let direction_of path =
  if contains ~sub:"wall" path then Skip
  else if
    contains ~sub:"buckets" path || contains ~sub:"count" path
    || contains ~sub:"sim_events" path || contains ~sub:"issued" path
    || contains ~sub:"checked" path || contains ~sub:"keys" path
    || contains ~sub:"wan_scale" path || contains ~sub:"write_ratio" path
  then Neutral
  else if contains ~sub:"completed" path || contains ~sub:"throughput" path then
    Higher_better
  else Lower_better

(* Relative band with an absolute floor of 1.0: tiny counters (a 2 ms
   p50, 3 stale reads) would otherwise flag on any movement at all. *)
let threshold ~band old_v = band *. Float.max (Float.abs old_v) 1.0

let scenario_mismatch old_j new_j =
  let get file v key = Option.bind (Option.bind (Json.member "scenario" v) (Json.member key)) file in
  let check key file pp =
    match get file old_j key, get file new_j key with
    | Some a, Some b when not (pp a b) -> Some key
    | None, _ | _, None -> Some key
    | Some _, Some _ -> None
  in
  let schema v = Option.bind (Json.member "schema" v) Json.num in
  match schema old_j, schema new_j with
  | Some 3., Some 3. -> (
    match
      ( check "name" Json.str (fun (a : string) b -> String.equal a b),
        check "version" Json.num (fun (a : float) b -> Float.equal a b),
        Option.bind (Json.member "kind" old_j) Json.str,
        Option.bind (Json.member "kind" new_j) Json.str )
    with
    | Some key, _, _, _ | None, Some key, _, _ ->
      Some (Printf.sprintf "scenario %s differs (or is missing); regenerate the baseline" key)
    | None, None, Some ka, Some kb when not (String.equal ka kb) ->
      Some (Printf.sprintf "kind mismatch: %s vs %s" ka kb)
    | None, None, _, _ -> None)
  | a, b ->
    let show = function Some v -> Printf.sprintf "%g" v | None -> "absent" in
    Some (Printf.sprintf "schema mismatch: %s vs %s (need 3)" (show a) (show b))

let resolve_band explicit old_j new_j =
  match explicit with
  | Some band -> band
  | None -> (
    let from v = Option.bind (Json.member "noise_band" v) Json.num in
    match from new_j with
    | Some band -> band
    | None -> ( match from old_j with Some band -> band | None -> Results.default_noise_band))

let diff ?band old_j new_j =
  match scenario_mismatch old_j new_j with
  | Some msg -> Error msg
  | None ->
    let band = resolve_band band old_j new_j in
    let flat v =
      match Json.member "results" v with
      | Some results -> Json.flatten results
      | None -> []
    in
    let old_flat = flat old_j in
    let new_flat = flat new_j in
    match old_flat with
    | [] -> Error "OLD file has no results"
    | _ :: _ ->
      let new_tbl = Hashtbl.create 256 in
      List.iter (fun (path, v) -> Hashtbl.replace new_tbl path v) new_flat;
      let old_tbl = Hashtbl.create 256 in
      List.iter (fun (path, v) -> Hashtbl.replace old_tbl path v) old_flat;
      let regressions = ref [] in
      let improvements = ref [] in
      let changes = ref [] in
      let missing = ref [] in
      let compared = ref 0 in
      List.iter
        (fun (path, old_v) ->
          match direction_of path with
          | Skip -> ()
          | dir -> (
            match Hashtbl.find_opt new_tbl path with
            | None -> (
              match dir with
              | Neutral -> ()
              | _ -> missing := path :: !missing)
            | Some new_v ->
              incr compared;
              let delta = new_v -. old_v in
              let finding = { path; old_v; new_v; direction = dir } in
              if Float.abs delta > threshold ~band old_v then
                match dir with
                | Lower_better ->
                  if delta > 0. then regressions := finding :: !regressions
                  else improvements := finding :: !improvements
                | Higher_better ->
                  if delta < 0. then regressions := finding :: !regressions
                  else improvements := finding :: !improvements
                | Neutral -> changes := finding :: !changes
                | Skip -> ()))
        old_flat;
      let added =
        List.filter_map
          (fun (path, _) ->
            match direction_of path with
            | Skip -> None
            | _ -> if Hashtbl.mem old_tbl path then None else Some path)
          new_flat
      in
      Ok
        {
          band;
          compared = !compared;
          regressions = List.rev !regressions;
          improvements = List.rev !improvements;
          changes = List.rev !changes;
          missing = List.rev !missing;
          added;
        }

let diff_files ?band ~old_path ~new_path () =
  match Json.parse_file old_path, Json.parse_file new_path with
  | old_j, new_j -> diff ?band old_j new_j
  | exception Json.Error msg -> Error (Printf.sprintf "JSON parse error: %s" msg)
  | exception Sys_error msg -> Error msg

let passed report =
  match report.regressions, report.missing with [], [] -> true | _ -> false

let pct old_v new_v =
  if Float.abs old_v > 0. then Printf.sprintf "%+.1f%%" (100. *. (new_v -. old_v) /. Float.abs old_v)
  else "new"

let pp ppf report =
  let section title findings =
    match findings with
    | [] -> ()
    | _ ->
      Format.fprintf ppf "%s:@." title;
      List.iter
        (fun f ->
          Format.fprintf ppf "  %-60s %12g -> %-12g (%s)@." f.path f.old_v f.new_v
            (pct f.old_v f.new_v))
        findings
  in
  section "REGRESSIONS" report.regressions;
  (match report.missing with
  | [] -> ()
  | missing ->
    Format.fprintf ppf "MISSING (gated metric disappeared):@.";
    List.iter (fun p -> Format.fprintf ppf "  %s@." p) missing);
  section "improvements" report.improvements;
  section "neutral changes" report.changes;
  (match report.added with
  | [] -> ()
  | added -> Format.fprintf ppf "new metrics: %d (not gated)@." (List.length added));
  Format.fprintf ppf "%d metrics compared, band %.0f%%: %s@." report.compared
    (100. *. report.band)
    (if passed report then "PASS"
     else
       Printf.sprintf "FAIL (%d regressions, %d missing)"
         (List.length report.regressions) (List.length report.missing))
