module Stats = Dq_util.Stats
module Driver = Dq_harness.Driver
module Staleness = Dq_harness.Staleness
module Aoi = Dq_telemetry.Aoi
module Ju = Dq_telemetry.Json_util

(* Schema 3: the self-describing bench-results format.

   {v
   { "schema": 3,
     "generated_by": "dqr bench",
     "kind": "scenario" | "sweep",
     "scenario": { name, version, description, seed, smoke, topology
                   and workload parameters, protocols, sweep axes },
     "noise_band": 0.1,
     "results": { "<id>": { ... per-run metrics ... }, ... } }
   v}

   [results] is an object keyed by run id — the protocol name, or
   ["proto@wan=2,w=0.5"] for sweep cells — so the differ can pair runs
   across files by path alone. Two metric families are split on
   purpose: everything outside ["wall"] is virtual-time, a pure
   function of the seed, and gated; everything under ["wall"] is
   wall-clock, machine-dependent, and advisory. *)

let default_noise_band = 0.1

let run_id (o : Scenario.outcome) ~sweep =
  if sweep then Printf.sprintf "%s@wan=%g,w=%g" o.Scenario.protocol o.Scenario.wan_scale o.Scenario.write_ratio
  else o.Scenario.protocol

let add_latency buf name (stats : Stats.t) =
  Printf.ksprintf (Buffer.add_string buf)
    "\"%s\": {\"count\": %d, \"mean\": %s, \"p50\": %s, \"p90\": %s, \"p99\": %s, \"max\": %s}"
    name (Stats.count stats)
    (Ju.num (Stats.mean stats))
    (Ju.num (Stats.percentile stats 50.))
    (Ju.num (Stats.percentile stats 90.))
    (Ju.num (Stats.percentile stats 99.))
    (Ju.num (Stats.max stats))

let add_outcome buf (o : Scenario.outcome) =
  let r = o.Scenario.result in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "      \"protocol\": \"%s\",\n" o.Scenario.protocol;
  add "      \"wan_scale\": %s,\n" (Ju.num o.Scenario.wan_scale);
  add "      \"write_ratio\": %s,\n" (Ju.num o.Scenario.write_ratio);
  (match o.Scenario.wall_s, o.Scenario.sim_events with
  | Some wall_s, events when wall_s > 0. ->
    add "      \"wall\": {\"wall_s\": %s, \"events_per_sec\": %s},\n" (Ju.num wall_s)
      (Ju.num (float_of_int events /. wall_s))
  | Some wall_s, _ -> add "      \"wall\": {\"wall_s\": %s, \"events_per_sec\": null},\n" (Ju.num wall_s)
  | None, _ -> add "      \"wall\": null,\n");
  add "      \"sim_events\": %d,\n" o.Scenario.sim_events;
  add "      \"issued\": %d,\n" r.Driver.issued;
  add "      \"completed\": %d,\n" r.Driver.completed;
  add "      \"failed\": %d,\n" r.Driver.failed;
  add "      \"gave_up\": %d,\n" r.Driver.gave_up;
  add "      \"violations\": %d,\n" o.Scenario.violations;
  add "      \"elapsed_virtual_ms\": %s,\n" (Ju.num r.Driver.elapsed_ms);
  add "      \"throughput_per_s\": %s,\n" (Ju.num r.Driver.throughput_per_s);
  add "      \"latency_ms\": {";
  add_latency buf "read" r.Driver.read_latency;
  Buffer.add_string buf ", ";
  add_latency buf "write" r.Driver.write_latency;
  Buffer.add_string buf ", ";
  add_latency buf "all" r.Driver.all_latency;
  add "},\n";
  add
    "      \"messages\": {\"remote\": %d, \"per_request\": %s, \"bytes\": %d, \
     \"bytes_per_request\": %s},\n"
    r.Driver.remote_messages
    (Ju.num r.Driver.messages_per_request)
    r.Driver.remote_bytes
    (Ju.num r.Driver.bytes_per_request);
  add "      \"aoi\": %s,\n" (Aoi.to_json o.Scenario.aoi);
  add
    "      \"staleness_oracle\": {\"checked\": %d, \"stale\": %d, \"stale_fraction\": %s, \
     \"mean_behind_ms\": %s, \"max_behind_ms\": %s, \"max_versions_behind\": %d, \
     \"mean_age_ms\": %s, \"max_age_ms\": %s}\n"
    o.Scenario.staleness.Staleness.checked
    (List.length o.Scenario.staleness.Staleness.stale)
    (Ju.num (Staleness.stale_fraction o.Scenario.staleness))
    (Ju.num o.Scenario.staleness.Staleness.mean_behind_ms)
    (Ju.num o.Scenario.staleness.Staleness.max_behind_ms)
    o.Scenario.staleness.Staleness.max_versions_behind
    (Ju.num o.Scenario.age.Staleness.mean_age_ms)
    (Ju.num o.Scenario.age.Staleness.max_age_ms);
  add "    }"

let render ?(noise_band = default_noise_band) ?sweep_axes ~smoke ~seed
    (scenario : Scenario.t) (outcomes : Scenario.outcome list) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sweep = Option.is_some sweep_axes in
  add "{\n";
  add "  \"schema\": 3,\n";
  add "  \"generated_by\": \"dqr bench\",\n";
  add "  \"kind\": \"%s\",\n" (if sweep then "sweep" else "scenario");
  add "  \"scenario\": {\n";
  add "    \"name\": \"%s\",\n" (Ju.escape scenario.Scenario.name);
  add "    \"version\": %d,\n" scenario.Scenario.version;
  add "    \"description\": \"%s\",\n" (Ju.escape scenario.Scenario.description);
  add "    \"seed\": %Ld,\n" seed;
  add "    \"smoke\": %b,\n" smoke;
  add "    \"n_servers\": %d,\n" scenario.Scenario.n_servers;
  add "    \"n_clients\": %d,\n" scenario.Scenario.n_clients;
  add "    \"ops_per_client\": %d,\n"
    (if smoke then scenario.Scenario.smoke_ops else scenario.Scenario.ops_per_client);
  add "    \"write_ratio\": %s,\n" (Ju.num scenario.Scenario.spec.Dq_workload.Spec.write_ratio);
  add "    \"locality\": %s,\n" (Ju.num scenario.Scenario.spec.Dq_workload.Spec.locality);
  add "    \"value_pad\": %d,\n" scenario.Scenario.value_pad;
  add "    \"wan_scale\": %s,\n" (Ju.num scenario.Scenario.wan_scale);
  (match sweep_axes with
  | Some (wan_scales, write_ratios) ->
    add "    \"sweep\": {\"wan_scales\": [%s], \"write_ratios\": [%s]},\n"
      (String.concat ", " (List.map Ju.num wan_scales))
      (String.concat ", " (List.map Ju.num write_ratios))
  | None -> ());
  add "    \"protocols\": [%s]\n"
    (String.concat ", "
       (List.map (fun p -> Printf.sprintf "\"%s\"" (Ju.escape p)) scenario.Scenario.protocols));
  add "  },\n";
  add "  \"noise_band\": %s,\n" (Ju.num noise_band);
  add "  \"results\": {\n";
  List.iteri
    (fun i o ->
      if i > 0 then add ",\n";
      add "    \"%s\": " (Ju.escape (run_id o ~sweep));
      add_outcome buf o)
    outcomes;
  add "\n  }\n}\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
