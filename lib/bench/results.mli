(** The schema-3 bench-results JSON writer.

    Self-describing: the file carries the scenario definition (name,
    version, seed, smoke flag, topology/workload parameters, sweep
    axes) alongside one result object per run, keyed by run id — the
    protocol name, or ["proto@wan=2,w=0.5"] for sweep cells.

    Two metric families are deliberately separated:

    - everything {e outside} a ["wall"] object is measured in virtual
      time and is a pure function of the seed — byte-stable across
      machines, and what {!Diff} gates;
    - everything {e under} ["wall"] (wall-clock seconds, events/sec) is
      machine-dependent and advisory; the differ skips it.

    Validated by [scripts/validate_bench.py] (schema 3). *)

val default_noise_band : float
(** 0.1 — the relative drift the differ tolerates by default. *)

val run_id : Scenario.outcome -> sweep:bool -> string

val render :
  ?noise_band:float ->
  ?sweep_axes:float list * float list ->
  smoke:bool ->
  seed:int64 ->
  Scenario.t ->
  Scenario.outcome list ->
  string
(** The full results document. [sweep_axes = (wan_scales,
    write_ratios)] marks a sweep file and records the axes. *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)
