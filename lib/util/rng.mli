(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows from a single seed through values
    of type {!t}, so that every experiment is reproducible bit-for-bit.
    The generator is SplitMix64 (Steele, Lea & Flood 2014): fast, simple,
    and splittable, which lets independent components draw from
    statistically independent streams. *)

type t
(** A mutable pseudo-random generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val split : t -> t
(** [split t] returns a new generator whose stream is independent of the
    future output of [t]. Both generators advance independently. *)

val copy : t -> t
(** [copy t] duplicates the current state (the copy replays [t]'s future). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniformly random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. Requires [x > 0.]. *)

val bool : t -> bool
(** A fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from an exponential distribution. *)

val choose : t -> 'a list -> 'a option
(** [choose t xs] draws one element uniformly from [xs]. [None] on the
    empty list, in which case the stream does not advance; otherwise it
    consumes exactly one [int t (List.length xs)] draw — the same draw
    the historical [List.nth xs (int t (List.length xs))] idiom made, so
    replacing that idiom preserves replay streams bit-for-bit. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> 'a list -> int -> 'a list
(** [sample t xs k] returns [k] elements drawn without replacement from
    [xs], in random order. Requires [k <= List.length xs]. *)
