(** Fixed-bucket histograms with ASCII rendering, for latency
    distributions in CLI output. *)

type t

val create : buckets:float list -> t
(** [buckets] are the upper bounds (ascending); an implicit overflow
    bucket catches the rest. *)

val of_samples : buckets:float list -> float list -> t

val add : t -> float -> unit

val merge_into : src:t -> dst:t -> unit
(** Add [src]'s bucket counts into [dst]. The two histograms must have
    identical bucket bounds; raises [Invalid_argument] otherwise.
    Merging is commutative, so per-partition histograms merge to the
    same result in any order. *)

val count : t -> int

val quantile : t -> float -> float
(** [quantile t q] with [q] in [\[0, 1\]]: the value at rank
    [q * count t], linearly interpolated inside the bucket that holds
    it (bucket 0 interpolates from 0; the open overflow bucket reports
    the last finite bound). This is the {e only} quantile/interpolation
    code path for bucket histograms — merged latency histograms and the
    telemetry AoI sink's age distributions all report through it.
    [nan] on an empty histogram; raises [Invalid_argument] on a [q]
    outside [\[0, 1\]]. *)

val bucket_counts : t -> (string * int) list
(** Human-readable bucket labels ("< 20", "20 - 200", ">= 200") with
    their counts, in order. *)

val render : ?width:int -> t -> string
(** Bars scaled to the largest bucket; empty histogram renders a
    placeholder line. *)
