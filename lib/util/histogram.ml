type t = { bounds : float array; counts : int array; mutable total : int }

let create ~buckets =
  let bounds = Array.of_list buckets in
  let sorted = Array.copy bounds in
  Array.sort Float.compare sorted;
  if not (Array.for_all2 Float.equal bounds sorted) then
    invalid_arg "Histogram.create: buckets must be ascending";
  { bounds; counts = Array.make (Array.length bounds + 1) 0; total = 0 }

let add t x =
  let n = Array.length t.bounds in
  let rec find i = if i >= n || x < t.bounds.(i) then i else find (i + 1) in
  let i = find 0 in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let of_samples ~buckets samples =
  let t = create ~buckets in
  List.iter (add t) samples;
  t

let merge_into ~src ~dst =
  if
    Array.length src.bounds <> Array.length dst.bounds
    || not (Array.for_all2 Float.equal src.bounds dst.bounds)
  then invalid_arg "Histogram.merge_into: bucket layouts differ";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.total <- dst.total + src.total

let count t = t.total

(* The single quantile/interpolation code path: every bucket-histogram
   quantile in the tree (merged latency histograms, the AoI sink's age
   and staleness distributions) goes through here, so percentile
   semantics can never drift between reporters. Linear interpolation
   within the bucket holding the target rank; bucket 0 interpolates
   from 0 (all tracked quantities are non-negative), and the open
   overflow bucket reports its lower edge (the last finite bound). *)
let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Histogram.quantile: q must be in [0, 1]";
  if t.total = 0 then nan
  else begin
    let n = Array.length t.bounds in
    let target = q *. float_of_int t.total in
    let rec go i seen =
      if i > n then t.bounds.(n - 1)
      else
        let seen' = seen +. float_of_int t.counts.(i) in
        if seen' >= target && t.counts.(i) > 0 then
          if i = n then if n = 0 then 0. else t.bounds.(n - 1)
          else begin
            let lo = if i = 0 then 0. else t.bounds.(i - 1) in
            let hi = t.bounds.(i) in
            let frac = (target -. seen) /. float_of_int t.counts.(i) in
            lo +. ((hi -. lo) *. Float.max 0. frac)
          end
        else go (i + 1) seen'
    in
    go 0 0.
  end

let label t i =
  let n = Array.length t.bounds in
  if n = 0 then "all"
  else if i = 0 then Printf.sprintf "< %g" t.bounds.(0)
  else if i = n then Printf.sprintf ">= %g" t.bounds.(n - 1)
  else Printf.sprintf "%g - %g" t.bounds.(i - 1) t.bounds.(i)

let bucket_counts t = Array.to_list (Array.mapi (fun i c -> (label t i, c)) t.counts)

let render ?(width = 40) t =
  if t.total = 0 then "(no samples)\n"
  else begin
    let biggest = Array.fold_left Stdlib.max 1 t.counts in
    let label_width =
      Array.to_list (Array.mapi (fun i _ -> String.length (label t i)) t.counts)
      |> List.fold_left Stdlib.max 0
    in
    let buf = Buffer.create 256 in
    Array.iteri
      (fun i c ->
        let bar = String.make (c * width / biggest) '#' in
        Buffer.add_string buf
          (Printf.sprintf "%-*s | %-*s %d\n" label_width (label t i) width bar c))
      t.counts;
    Buffer.contents buf
  end
