type t = {
  mutable samples : float list; (* reverse insertion order *)
  mutable n : int;
  mutable total : float;
  mutable total_sq : float;
  mutable lo : float;
  mutable hi : float;
  mutable sorted : float array option; (* cache, invalidated by add *)
}

let create () =
  { samples = []; n = 0; total = 0.; total_sq = 0.; lo = nan; hi = nan; sorted = None }

let add t x =
  t.samples <- x :: t.samples;
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  t.total_sq <- t.total_sq +. (x *. x);
  if t.n = 1 then begin
    t.lo <- x;
    t.hi <- x
  end else begin
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x
  end;
  t.sorted <- None

let count t = t.n

let mean t = if t.n = 0 then nan else t.total /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.
  else
    let n = float_of_int t.n in
    let var = (t.total_sq -. (t.total *. t.total /. n)) /. (n -. 1.) in
    sqrt (Float.max 0. var)

let min t = t.lo
let max t = t.hi
let sum t = t.total

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list t.samples in
    Array.sort Float.compare a;
    t.sorted <- Some a;
    a

let percentile t p =
  if t.n = 0 then nan
  else begin
    assert (p >= 0. && p <= 100.);
    let a = sorted t in
    let n = Array.length a in
    if n = 1 then a.(0)
    else
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo_idx = int_of_float (Float.floor rank) in
      let hi_idx = Stdlib.min (lo_idx + 1) (n - 1) in
      let frac = rank -. float_of_int lo_idx in
      (a.(lo_idx) *. (1. -. frac)) +. (a.(hi_idx) *. frac)
  end

let median t = percentile t 50.

let to_list t = List.rev t.samples

let merge a b =
  let t = create () in
  List.iter (add t) (to_list a);
  List.iter (add t) (to_list b);
  t

let pp_summary ppf t =
  Format.fprintf ppf "mean=%.3f p50=%.3f p99=%.3f min=%.3f max=%.3f n=%d"
    (mean t) (median t) (percentile t 99.) (min t) (max t) (count t)
