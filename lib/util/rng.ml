type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  { state = seed }

let copy t = { state = t.state }

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t n =
  assert (n > 0);
  if n land (n - 1) = 0 then bits30 t land (n - 1)
  else begin
    (* Rejection sampling to avoid modulo bias. *)
    let rec draw () =
      let r = bits30 t in
      let v = r mod n in
      if r - v + (n - 1) < 0 then draw () else v
    in
    draw ()
  end

let float t x =
  assert (x > 0.);
  let bits53 = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  let u = float_of_int bits53 /. 9007199254740992.0 in
  u *. x

let bool t = Int64.compare (Int64.logand (int64 t) 1L) 0L <> 0

let bernoulli t p =
  if p <= 0. then false
  else if p >= 1. then true
  else float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* 1. - u is in (0, 1], so log is finite. *)
  -.mean *. log (1. -. u)

let choose t = function
  | [] -> None
  | xs -> List.nth_opt xs (int t (List.length xs))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t xs k =
  let a = Array.of_list xs in
  assert (k <= Array.length a);
  shuffle t a;
  Array.to_list (Array.sub a 0 k)
