(* Partition-aware message network over {!Dq_sim.Pdes}.

   Every node belongs to a partition; a node's handler, liveness flag
   and timers live on its partition's engine, so all state is
   single-writer: send-side decisions (loss draw, send counter) happen
   on the source partition's domain, delivery-side effects (handler,
   delivered/dropped counters) on the destination's. Intra-partition
   sends are ordinary engine events — optionally batched so one heap
   event carries every message of a (directed link, tick bucket) pair —
   while cross-partition sends travel through {!Dq_sim.Pdes.post},
   which is safe because {!lookahead} is the minimum cross-partition
   delay of the topology.

   All per-node and per-partition state is held in flat preallocated
   arrays; in steady state a batched send allocates nothing beyond the
   one flush closure per (link, bucket). *)

type 'msg batch = {
  mutable bucket : float; (* absolute flush time of the pending batch *)
  mutable scheduled : bool;
  mutable buf : 'msg array;
  mutable len : int;
}

type 'msg t = {
  pdes : Dq_sim.Pdes.t;
  topo : Topology.t;
  part_of : int array; (* node -> partition *)
  dummy : 'msg;
  handlers : (src:int -> 'msg -> unit) array; (* per node *)
  up : bool array; (* per node; written on the owning domain *)
  epochs : int array; (* per node incarnation, bumped by crash/recover *)
  rngs : Dq_util.Rng.t array; (* per partition: loss draws *)
  loss : float;
  batch_ms : float; (* 0 = exact per-message delivery *)
  batches : 'msg batch array; (* src * n + dst, intra-partition only *)
  sent : int array; (* per partition, incremented on src domain *)
  delivered : int array; (* per partition, incremented on dst domain *)
  dropped : int array; (* per partition; loss on src, crash on dst *)
}

let lookahead topo ~part_of =
  let n = Topology.n_nodes topo in
  let best = ref Float.infinity in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if not (Int.equal (part_of src) (part_of dst)) then begin
        let d = Topology.delay topo ~src ~dst in
        if d < !best then best := d
      end
    done
  done;
  !best

let create pdes topo ~part_of ~dummy ?(loss = 0.) ?(batch_ms = 0.) () =
  if loss < 0. || loss >= 1. then invalid_arg "Pnet.create: loss must be in [0, 1)";
  if batch_ms < 0. then invalid_arg "Pnet.create: batch_ms must be non-negative";
  let n = Topology.n_nodes topo in
  let n_parts = Dq_sim.Pdes.n_partitions pdes in
  let part_of =
    Array.init n (fun node ->
        let p = part_of node in
        if p < 0 || p >= n_parts then
          invalid_arg (Printf.sprintf "Pnet.create: node %d mapped to partition %d" node p);
        p)
  in
  let no_handler ~src:_ _ = () in
  {
    pdes;
    topo;
    part_of;
    dummy;
    handlers = Array.make n no_handler;
    up = Array.make n true;
    epochs = Array.make n 0;
    rngs =
      Array.init n_parts (fun p ->
          Dq_util.Rng.split (Dq_sim.Engine.rng (Dq_sim.Pdes.engine pdes p)));
    loss;
    batch_ms;
    batches =
      (if batch_ms > 0. then
         Array.init (n * n) (fun _ ->
             { bucket = 0.; scheduled = false; buf = [||]; len = 0 })
       else [||]);
    sent = Array.make n_parts 0;
    delivered = Array.make n_parts 0;
    dropped = Array.make n_parts 0;
  }

let pdes t = t.pdes

let topology t = t.topo

let part_of t node = t.part_of.(node)

let node_engine t node = Dq_sim.Pdes.engine t.pdes t.part_of.(node)

let register t ~node handler = t.handlers.(node) <- handler

let is_up t node = t.up.(node)

let sent t = Array.fold_left ( + ) 0 t.sent

let delivered t = Array.fold_left ( + ) 0 t.delivered

let dropped t = Array.fold_left ( + ) 0 t.dropped

(* Runs on [dst]'s domain. *)
let deliver t ~src ~dst msg =
  let p = t.part_of.(dst) in
  if t.up.(dst) then begin
    t.delivered.(p) <- t.delivered.(p) + 1;
    t.handlers.(dst) ~src msg
  end
  else t.dropped.(p) <- t.dropped.(p) + 1

let batch_push t b msg =
  if b.len = Array.length b.buf then begin
    let cap = Stdlib.max 8 (2 * b.len) in
    let buf = Array.make cap t.dummy in
    Array.blit b.buf 0 buf 0 b.len;
    b.buf <- buf
  end;
  b.buf.(b.len) <- msg;
  b.len <- b.len + 1

let flush_batch t b ~src ~dst =
  for i = 0 to b.len - 1 do
    let msg = b.buf.(i) in
    b.buf.(i) <- t.dummy;
    deliver t ~src ~dst msg
  done;
  b.len <- 0;
  b.scheduled <- false

(* Quantize the arrival up to the end of its tick bucket. Messages on a
   link share one heap event per bucket, delivered FIFO; a message whose
   bucket differs from the link's pending one gets its own bucket event
   (constant delay keeps arrivals monotone, so it is a later bucket and
   order is preserved). *)
let batched_send t eng ~src ~dst ~arrival msg =
  let bucket = Float.of_int (int_of_float (Float.ceil (arrival /. t.batch_ms))) *. t.batch_ms in
  let b = t.batches.(((src * Topology.n_nodes t.topo) + dst)) in
  if b.scheduled && Float.equal bucket b.bucket then batch_push t b msg
  else if b.scheduled then
    ignore
      (Dq_sim.Engine.schedule_at eng ~time:bucket (fun () -> deliver t ~src ~dst msg))
  else begin
    b.scheduled <- true;
    b.bucket <- bucket;
    batch_push t b msg;
    ignore (Dq_sim.Engine.schedule_at eng ~time:bucket (fun () -> flush_batch t b ~src ~dst))
  end

let send t ~src ~dst msg =
  let p_src = t.part_of.(src) in
  if t.up.(src) then begin
    t.sent.(p_src) <- t.sent.(p_src) + 1;
    if t.loss > 0. && Dq_util.Rng.bernoulli t.rngs.(p_src) t.loss then
      t.dropped.(p_src) <- t.dropped.(p_src) + 1
    else begin
      let p_dst = t.part_of.(dst) in
      let eng = Dq_sim.Pdes.engine t.pdes p_src in
      let arrival = Dq_sim.Engine.now eng +. Topology.delay t.topo ~src ~dst in
      if p_src = p_dst then begin
        if t.batch_ms > 0. then batched_send t eng ~src ~dst ~arrival msg
        else
          ignore
            (Dq_sim.Engine.schedule_at eng ~time:arrival (fun () -> deliver t ~src ~dst msg))
      end
      else
        Dq_sim.Pdes.post t.pdes ~src:p_src ~dst:p_dst ~time:arrival (fun () ->
            deliver t ~src ~dst msg)
    end
  end

(* Crash windows are pre-scheduled on the owning partition's engine, so
   liveness flips happen on the owning domain at a deterministic point
   in virtual time. *)
let crash_at t ~node ~time =
  let eng = node_engine t node in
  ignore
    (Dq_sim.Engine.schedule_at eng ~time (fun () ->
         if t.up.(node) then begin
           t.up.(node) <- false;
           t.epochs.(node) <- t.epochs.(node) + 1
         end))

let recover_at t ~node ~time =
  let eng = node_engine t node in
  ignore
    (Dq_sim.Engine.schedule_at eng ~time (fun () ->
         if not t.up.(node) then begin
           t.up.(node) <- true;
           t.epochs.(node) <- t.epochs.(node) + 1
         end))

let timer t ~node ~delay_ms f =
  let eng = node_engine t node in
  let epoch = t.epochs.(node) in
  ignore
    (Dq_sim.Engine.schedule eng ~delay:delay_ms (fun () ->
         if t.up.(node) && t.epochs.(node) = epoch then f ()))
