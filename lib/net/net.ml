type fault_model = { loss : float; duplicate : float; jitter_ms : float }

let no_faults = { loss = 0.; duplicate = 0.; jitter_ms = 0. }

type degrade = { extra_delay_ms : float; extra_loss : float }

type 'msg node_state = {
  mutable handler : (src:int -> 'msg -> unit) option;
  mutable up : bool;
  mutable incarnation : int;
  mutable wiped : bool; (* pending recovery is from an amnesia crash *)
  mutable degrade : degrade option; (* gray failure on all of this node's links *)
  mutable watchers : (up:bool -> wiped:bool -> unit) list;
  mutable busy_until : float; (* FIFO service queue tail *)
}

type 'msg t = {
  engine : Dq_sim.Engine.t;
  bus : Dq_telemetry.Bus.t;
  topology : Topology.t;
  rng : Dq_util.Rng.t;
  classify : 'msg -> string;
  size_of : 'msg -> int;
  stats : Msg_stats.t;
  nodes : 'msg node_state array;
  mutable faults : fault_model;
  mutable group_of : int array option; (* partition group per node *)
  cuts : (int * int, unit) Hashtbl.t; (* severed directed links (src, dst) *)
  link_faults : (int * int, fault_model) Hashtbl.t; (* per-link overrides *)
  flap_gens : (int * int, int) Hashtbl.t; (* live flap schedule per link *)
  mutable next_flap_gen : int;
  mutable manual : bool;
  mutable pending_pool : (int * int * 'msg) list; (* newest first *)
  mutable service_time_ms : float;
}

let create engine topology ?(faults = no_faults) ~classify ?(size_of = fun _ -> 0) () =
  let n = Topology.n_nodes topology in
  let fresh_node _ =
    {
      handler = None;
      up = true;
      incarnation = 0;
      wiped = false;
      degrade = None;
      watchers = [];
      busy_until = 0.;
    }
  in
  {
    engine;
    bus = Dq_sim.Engine.telemetry engine;
    topology;
    rng = Dq_sim.Engine.split_rng engine;
    classify;
    size_of;
    stats = Msg_stats.create ();
    nodes = Array.init n fresh_node;
    faults;
    group_of = None;
    cuts = Hashtbl.create 8;
    link_faults = Hashtbl.create 8;
    flap_gens = Hashtbl.create 8;
    next_flap_gen = 0;
    manual = false;
    pending_pool = [];
    service_time_ms = 0.;
  }

let set_service_time t ~ms =
  if ms < 0. then invalid_arg "Net.set_service_time: negative";
  t.service_time_ms <- ms

let engine t = t.engine
let topology t = t.topology
let stats t = t.stats
let set_faults t faults = t.faults <- faults

let check_id t id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Net: bad node id %d" id)

let register t ~node handler =
  check_id t node;
  t.nodes.(node).handler <- Some handler

let is_up t id =
  check_id t id;
  t.nodes.(id).up

(* {2 Per-directed-link faults and cuts} *)

let set_link_faults t ~src ~dst faults =
  check_id t src;
  check_id t dst;
  match faults with
  | Some f -> Hashtbl.replace t.link_faults (src, dst) f
  | None -> Hashtbl.remove t.link_faults (src, dst)

let link_faults t ~src ~dst = Hashtbl.find_opt t.link_faults (src, dst)

let effective_faults t ~src ~dst =
  match Hashtbl.find_opt t.link_faults (src, dst) with
  | Some f -> f
  | None -> t.faults

(* {2 Gray failure: per-node degradation}

   A degraded node is slow and lossy on every link it touches, in both
   directions, without being partitioned away: [reachable] is
   unaffected. The extra loss folds into the single per-send loss draw
   (independent-failure composition), so the RNG draw sequence is
   byte-identical whenever no node is degraded. *)

let degrade_node t id ~delay_ms ~loss =
  check_id t id;
  if delay_ms < 0. then invalid_arg "Net.degrade_node: negative delay";
  if loss < 0. || loss > 1. then invalid_arg "Net.degrade_node: loss outside [0, 1]";
  t.nodes.(id).degrade <- Some { extra_delay_ms = delay_ms; extra_loss = loss };
  if Dq_telemetry.Bus.subscribed t.bus then
    Dq_telemetry.Bus.emit t.bus
      (Dq_telemetry.Event.Fault_injected
         { label = Printf.sprintf "net.degrade/%d" id })

let clear_degrade t id =
  check_id t id;
  match t.nodes.(id).degrade with
  | None -> ()
  | Some _ ->
    begin
    t.nodes.(id).degrade <- None;
    if Dq_telemetry.Bus.subscribed t.bus then
      Dq_telemetry.Bus.emit t.bus
        (Dq_telemetry.Event.Fault_injected
           { label = Printf.sprintf "net.undegrade/%d" id })
  end

let degraded t id =
  check_id t id;
  match t.nodes.(id).degrade with
  | None -> None
  | Some d -> Some (d.extra_delay_ms, d.extra_loss)

let fold_degrade_loss acc = function
  | None -> acc
  | Some d -> 1. -. ((1. -. acc) *. (1. -. d.extra_loss))

let degrade_delay = function None -> 0. | Some d -> d.extra_delay_ms

let cut t ~src ~dst =
  check_id t src;
  check_id t dst;
  if not (Hashtbl.mem t.cuts (src, dst)) then begin
    Hashtbl.replace t.cuts (src, dst) ();
    if Dq_telemetry.Bus.subscribed t.bus then
      Dq_telemetry.Bus.emit t.bus (Dq_telemetry.Event.Link_cut { src; dst })
  end

let uncut t ~src ~dst =
  check_id t src;
  check_id t dst;
  if Hashtbl.mem t.cuts (src, dst) then begin
    Hashtbl.remove t.cuts (src, dst);
    if Dq_telemetry.Bus.subscribed t.bus then
      Dq_telemetry.Bus.emit t.bus (Dq_telemetry.Event.Link_uncut { src; dst })
  end

let is_cut t ~src ~dst = Hashtbl.mem t.cuts (src, dst)

let uncut_all t = Hashtbl.reset t.cuts

let reachable t ~src ~dst =
  (not (Hashtbl.mem t.cuts (src, dst)))
  &&
  match t.group_of with
  | None -> true
  | Some groups -> groups.(src) = groups.(dst)

(* Link flapping: the directed link alternates available/severed with
   the given duty cycle until [until_ms] (absolute virtual time), then
   is restored. A new flap on the same link supersedes the old one; any
   global [heal] stops all flapping. *)
let flap_link t ~src ~dst ~up_ms ~down_ms ~until_ms =
  check_id t src;
  check_id t dst;
  if up_ms <= 0. || down_ms <= 0. then invalid_arg "Net.flap_link: non-positive phase";
  t.next_flap_gen <- t.next_flap_gen + 1;
  let generation = t.next_flap_gen in
  Hashtbl.replace t.flap_gens (src, dst) generation;
  let rec phase is_up () =
    let gen_live =
      match Hashtbl.find_opt t.flap_gens (src, dst) with
      | Some g -> g = generation
      | None -> false
    in
    if gen_live then begin
      if Dq_sim.Engine.now t.engine >= until_ms then begin
        Hashtbl.remove t.flap_gens (src, dst);
        uncut t ~src ~dst
      end
      else begin
        if is_up then uncut t ~src ~dst else cut t ~src ~dst;
        let dwell = if is_up then up_ms else down_ms in
        ignore (Dq_sim.Engine.schedule t.engine ~delay:dwell (phase (not is_up)))
      end
    end
  in
  phase true ()

let deliver t ~src ~dst msg =
  let node = t.nodes.(dst) in
  if node.up then
    match node.handler with
    | Some handler ->
      if Dq_telemetry.Bus.subscribed t.bus then
        Dq_telemetry.Bus.emit t.bus
          (Dq_telemetry.Event.Msg_delivered { src; dst; label = t.classify msg });
      handler ~src msg
    | None -> ()
  else if Dq_telemetry.Bus.subscribed t.bus then
    Dq_telemetry.Bus.emit t.bus
      (Dq_telemetry.Event.Msg_dropped
         { src; dst; label = t.classify msg; reason = "node-down" })

(* Message arrival: with a service-time model, the destination works
   through its queue FIFO; otherwise deliver immediately. *)
let arrive t ~src ~dst msg =
  if t.service_time_ms <= 0. then deliver t ~src ~dst msg
  else begin
    let node = t.nodes.(dst) in
    let now = Dq_sim.Engine.now t.engine in
    let start = Float.max now node.busy_until in
    let done_at = start +. t.service_time_ms in
    node.busy_until <- done_at;
    ignore
      (Dq_sim.Engine.schedule t.engine ~delay:(done_at -. now) (fun () ->
           deliver t ~src ~dst msg))
  end

let send t ~src ~dst msg =
  check_id t src;
  check_id t dst;
  if t.nodes.(src).up then begin
    let local = src = dst in
    let label = t.classify msg in
    let bytes = t.size_of msg in
    Msg_stats.record t.stats ~label ~local ~bytes ();
    (* Telemetry must not perturb the RNG draw sequence: the loss draw
       happens only on reachable links and the duplicate draw only on
       non-lost messages, exactly as before the bus existed. *)
    let subscribed = Dq_telemetry.Bus.subscribed t.bus in
    if subscribed then
      Dq_telemetry.Bus.emit t.bus
        (Dq_telemetry.Event.Msg_sent { src; dst; label; bytes; local });
    if t.manual then t.pending_pool <- (src, dst, msg) :: t.pending_pool
    else begin
      let faults = effective_faults t ~src ~dst in
      if reachable t ~src ~dst then begin
        (* Gray degradation folds into the one loss draw and adds a
           deterministic delay, so undegraded runs draw identically. *)
        let deg_src = t.nodes.(src).degrade and deg_dst = t.nodes.(dst).degrade in
        let loss = fold_degrade_loss (fold_degrade_loss faults.loss deg_src) deg_dst in
        if not (Dq_util.Rng.bernoulli t.rng loss) then begin
          let schedule_delivery () =
            let jitter =
              if faults.jitter_ms > 0. then Dq_util.Rng.float t.rng faults.jitter_ms
              else 0.
            in
            let delay =
              Topology.delay t.topology ~src ~dst +. jitter
              +. degrade_delay deg_src +. degrade_delay deg_dst
            in
            ignore
              (Dq_sim.Engine.schedule t.engine ~delay (fun () -> arrive t ~src ~dst msg))
          in
          schedule_delivery ();
          if Dq_util.Rng.bernoulli t.rng faults.duplicate then schedule_delivery ()
        end
        else if subscribed then
          Dq_telemetry.Bus.emit t.bus
            (Dq_telemetry.Event.Msg_dropped { src; dst; label; reason = "loss" })
      end
      else if subscribed then
        Dq_telemetry.Bus.emit t.bus
          (Dq_telemetry.Event.Msg_dropped { src; dst; label; reason = "unreachable" })
    end
  end

let notify_watchers node ~up ~wiped =
  List.iter (fun watch -> watch ~up ~wiped) (List.rev node.watchers)

(* Fail-stop and amnesia crashes share the take-down path; amnesia
   additionally marks the node wiped so the eventual recovery
   notification tells protocol layers their "durable" state is gone.
   A fail-stop crash after an unrecovered amnesia crash keeps the wipe
   pending: the disk did not come back in between. *)
let crash_kind t id ~wiped =
  check_id t id;
  let node = t.nodes.(id) in
  if node.up then begin
    node.up <- false;
    node.incarnation <- node.incarnation + 1;
    node.wiped <- node.wiped || wiped;
    if Dq_telemetry.Bus.subscribed t.bus then begin
      Dq_telemetry.Bus.emit t.bus (Dq_telemetry.Event.Node_crash { node = id });
      if wiped then
        Dq_telemetry.Bus.emit t.bus (Dq_telemetry.Event.Node_wipe { node = id })
    end;
    notify_watchers node ~up:false ~wiped
  end
  else if wiped && not node.wiped then begin
    (* Already down from a fail-stop crash: the wipe still happens. *)
    node.wiped <- true;
    if Dq_telemetry.Bus.subscribed t.bus then
      Dq_telemetry.Bus.emit t.bus (Dq_telemetry.Event.Node_wipe { node = id })
  end

let crash t id = crash_kind t id ~wiped:false
let crash_amnesia t id = crash_kind t id ~wiped:true

let recover t id =
  check_id t id;
  let node = t.nodes.(id) in
  if not node.up then begin
    node.up <- true;
    let wiped = node.wiped in
    node.wiped <- false;
    if Dq_telemetry.Bus.subscribed t.bus then
      Dq_telemetry.Bus.emit t.bus (Dq_telemetry.Event.Node_recover { node = id });
    notify_watchers node ~up:true ~wiped
  end

let on_status_change t ~node watch =
  check_id t node;
  let state = t.nodes.(node) in
  state.watchers <- watch :: state.watchers

let timer t ~node ~delay_ms action =
  check_id t node;
  let state = t.nodes.(node) in
  let incarnation = state.incarnation in
  Dq_sim.Engine.schedule t.engine ~delay:delay_ms (fun () ->
      if state.up && state.incarnation = incarnation then action ())

let set_manual t on = t.manual <- on

let pending t = List.rev t.pending_pool

let take_pending t i =
  let ordered = pending t in
  if i < 0 then invalid_arg "Net: pending index out of range";
  match List.nth_opt ordered i with
  | None -> invalid_arg "Net: pending index out of range"
  | Some entry ->
    t.pending_pool <- List.rev (List.filteri (fun j _ -> j <> i) ordered);
    entry

let deliver_pending t i =
  let src, dst, msg = take_pending t i in
  if reachable t ~src ~dst then deliver t ~src ~dst msg

let drop_pending t i = ignore (take_pending t i)

let partition t groups =
  let n = Array.length t.nodes in
  let group_of = Array.make n (-1) in
  List.iteri
    (fun g members ->
      List.iter
        (fun id ->
          check_id t id;
          group_of.(id) <- g)
        members)
    groups;
  (* Unlisted nodes form an implicit final group. *)
  let implicit = List.length groups in
  Array.iteri (fun i g -> if g = -1 then group_of.(i) <- implicit) group_of;
  t.group_of <- Some group_of;
  if Dq_telemetry.Bus.subscribed t.bus then
    Dq_telemetry.Bus.emit t.bus
      (Dq_telemetry.Event.Fault_injected
         { label = Printf.sprintf "net.partition/%d" (List.length groups) })

let heal t =
  t.group_of <- None;
  Hashtbl.reset t.flap_gens;
  uncut_all t;
  if Dq_telemetry.Bus.subscribed t.bus then
    Dq_telemetry.Bus.emit t.bus (Dq_telemetry.Event.Fault_injected { label = "net.heal" })

(* {2 Message-type-erased control handle} *)

type control = {
  c_nodes : int list;
  c_partition : int list list -> unit;
  c_heal : unit -> unit;
  c_cut : src:int -> dst:int -> unit;
  c_uncut : src:int -> dst:int -> unit;
  c_set_link_faults : src:int -> dst:int -> fault_model option -> unit;
  c_set_faults : fault_model -> unit;
  c_flap_link : src:int -> dst:int -> up_ms:float -> down_ms:float -> until_ms:float -> unit;
  c_crash : int -> unit;
  c_crash_amnesia : int -> unit;
  c_recover : int -> unit;
  c_degrade_node : int -> delay_ms:float -> loss:float -> unit;
  c_clear_degrade : int -> unit;
  c_is_up : int -> bool;
  c_reachable : src:int -> dst:int -> bool;
}

let control t =
  {
    c_nodes = Topology.nodes t.topology;
    c_partition = (fun groups -> partition t groups);
    c_heal = (fun () -> heal t);
    c_cut = (fun ~src ~dst -> cut t ~src ~dst);
    c_uncut = (fun ~src ~dst -> uncut t ~src ~dst);
    c_set_link_faults = (fun ~src ~dst faults -> set_link_faults t ~src ~dst faults);
    c_set_faults = (fun faults -> set_faults t faults);
    c_flap_link =
      (fun ~src ~dst ~up_ms ~down_ms ~until_ms ->
        flap_link t ~src ~dst ~up_ms ~down_ms ~until_ms);
    c_crash = (fun id -> crash t id);
    c_crash_amnesia = (fun id -> crash_amnesia t id);
    c_recover = (fun id -> recover t id);
    c_degrade_node = (fun id ~delay_ms ~loss -> degrade_node t id ~delay_ms ~loss);
    c_clear_degrade = (fun id -> clear_degrade t id);
    c_is_up = (fun id -> is_up t id);
    c_reachable = (fun ~src ~dst -> reachable t ~src ~dst);
  }
