(** Message accounting for the communication-overhead evaluation
    (Figure 9 of the paper).

    Every message accepted by the network is counted, keyed by a
    protocol-supplied label (e.g. ["read_req"], ["inval"]). Local
    deliveries (src = dst) are counted separately so overhead models can
    include or exclude them.

    This is a thin façade over {!Dq_telemetry.Metrics}: the network
    feeds one always-on instance (counts must not depend on whether a
    telemetry sink is attached), and {!metrics} exposes it for richer
    queries or JSON export. *)

type t = Dq_telemetry.Metrics.t

val create : unit -> t

val record : t -> label:string -> local:bool -> ?bytes:int -> unit -> unit
(** [bytes] defaults to 0 (callers without a size model). *)

val total : t -> int
(** All messages, including local ones. *)

val remote_total : t -> int
(** Messages that crossed the network (src <> dst). *)

val local_total : t -> int

val by_label : ?include_local:bool -> t -> (string * int) list
(** Counts per label, sorted by label. Remote-only by default — the
    overhead model's view; pass [~include_local:true] to fold in local
    deliveries (src = dst). *)

val local_by_label : t -> (string * int) list
(** Local-delivery counts per label, sorted by label. *)

val remote_bytes : t -> int
(** Total payload bytes of remote messages (per the protocol's size
    model; 0 if the protocol does not provide one). *)

val bytes_by_label : t -> (string * int) list

val reset : t -> unit

val pp : Format.formatter -> t -> unit

val metrics : t -> Dq_telemetry.Metrics.t
(** The underlying metrics instance (the identity — exposed for JSON
    export and event-counter queries). *)
