(* A façade over [Dq_telemetry.Metrics]: the network's always-on
   message accounting is one Metrics instance fed directly (the figure
   tables depend on these counts, so they cannot live behind the bus's
   subscription check). Keeping the historical narrow interface lets
   overhead-model call sites stay oblivious to the telemetry layer. *)

module M = Dq_telemetry.Metrics

type t = M.t

let create () = M.create ()

let record t ~label ~local ?bytes () = M.record_msg t ~label ~local ?bytes ()

let total = M.total

let remote_total = M.remote_total

let local_total = M.local_total

let by_label ?include_local t = M.by_label ?include_local t

let local_by_label = M.local_by_label

let remote_bytes = M.remote_bytes

let bytes_by_label = M.bytes_by_label

let reset = M.reset

let pp = M.pp

let metrics t = t
