(** Partition-aware message network for the parallel (PDES) engine.

    Nodes are assigned to {!Dq_sim.Pdes} partitions; each node's
    handler, liveness and timers live on its partition's engine.
    Intra-partition messages are ordinary engine events — optionally
    batched so a (directed link, tick bucket) pair costs one heap
    event no matter how many messages it carries — and cross-partition
    messages go through the PDES mailboxes, which is conservative
    because {!lookahead} is the minimum cross-partition delay.

    Fault surface: per-send Bernoulli loss (drawn from a per-partition
    stream, so runs are deterministic under any domain interleaving)
    and pre-scheduled fail-stop crash/recovery windows. This is
    narrower than {!Net} (no runtime partitions/cuts/flap): the nemesis
    layer drives the serial {!Net}; [Pnet] exists for scale. *)

type 'msg t

val lookahead : Topology.t -> part_of:(int -> int) -> float
(** Minimum delay between nodes of different partitions — the
    conservative lookahead to build the {!Dq_sim.Pdes.t} with.
    [infinity] when every node is in one partition. *)

val create :
  Dq_sim.Pdes.t ->
  Topology.t ->
  part_of:(int -> int) ->
  dummy:'msg ->
  ?loss:float ->
  ?batch_ms:float ->
  unit ->
  'msg t
(** [part_of node] is the partition owning [node] (must be within the
    PDES partition count). [dummy] fills vacated batch slots and is
    never delivered. [loss] in [\[0, 1)] drops each send with that
    probability. [batch_ms > 0] quantizes intra-partition arrivals up
    to the end of their [batch_ms] bucket and delivers each (link,
    bucket) batch with a single heap event — a throughput/fidelity
    trade documented in DESIGN.md; [0.] (default) keeps exact
    per-message delivery. *)

val pdes : 'msg t -> Dq_sim.Pdes.t

val topology : 'msg t -> Topology.t

val part_of : 'msg t -> int -> int

val node_engine : 'msg t -> int -> Dq_sim.Engine.t
(** The engine owning a node (for scheduling node-local work). *)

val register : 'msg t -> node:int -> (src:int -> 'msg -> unit) -> unit
(** Install the handler for [node] (replaces any previous one). Call
    before {!Dq_sim.Pdes.run}. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Fire-and-forget, from code running on [src]'s partition. Dropped
    if [src] is down, the loss draw fires, or [dst] is down at
    delivery time. *)

val crash_at : 'msg t -> node:int -> time:float -> unit
(** Schedule a fail-stop crash at absolute virtual [time]. Messages to
    and from a down node are dropped, and its pending timers are
    invalidated. *)

val recover_at : 'msg t -> node:int -> time:float -> unit
(** Schedule recovery (a fresh incarnation) at [time]. *)

val is_up : 'msg t -> int -> bool
(** Read only from the node's own partition during a run. *)

val timer : 'msg t -> node:int -> delay_ms:float -> (unit -> unit) -> unit
(** Node-scoped timer: skipped if the node is down at expiry or has
    crashed or recovered since the timer was set. *)

val sent : 'msg t -> int
(** Total sends attempted (summed across partitions; read at
    quiescence). *)

val delivered : 'msg t -> int

val dropped : 'msg t -> int
