(** The simulated message network.

    Delivers typed messages between nodes with per-link one-way delays
    from a {!Topology.t}, under an adjustable fault model:

    - message {b loss} (per-send Bernoulli),
    - message {b duplication} (a second copy with fresh jitter),
    - {b reordering} (uniform jitter added to each delivery),
    - {b partitions} (node groups that cannot exchange messages),
    - {b one-way link cuts} (a directed [(src, dst)] pair stops
      carrying messages while the reverse direction still works),
    - {b per-directed-link fault overrides} (an individual link can be
      lossier, duplicate more, or jitter harder than the global model),
    - {b link flapping} (a link alternates between available and
      severed on a fixed duty cycle),
    - fail-stop {b crashes} (a crashed node neither sends nor receives,
      and its pending timers are invalidated),
    - {b amnesia crashes} (as above, but the recovery notification says
      the node's durable state was wiped, so protocols must rebuild it
      by state transfer),
    - per-node {b gray failure} ({!degrade_node}: extra processing
      delay and loss on all of a node's links at once, while the node
      stays nominally up and reachable).

    The paper assumes corrupted messages are discarded by checksums, so
    corruption is modelled as loss. All protocol messages must carry any
    identification the protocol needs (the network never invents
    metadata beyond the sender id). *)

type 'msg t

type fault_model = {
  loss : float;        (** per-message drop probability *)
  duplicate : float;   (** probability a message is delivered twice *)
  jitter_ms : float;   (** extra delay uniform in [0, jitter_ms] *)
}

val no_faults : fault_model

val create :
  Dq_sim.Engine.t ->
  Topology.t ->
  ?faults:fault_model ->
  classify:('msg -> string) ->
  ?size_of:('msg -> int) ->
  unit ->
  'msg t
(** [classify] labels each message for {!Msg_stats} accounting;
    [size_of] (optional) estimates its wire size in bytes for
    bandwidth accounting. *)

val engine : 'msg t -> Dq_sim.Engine.t

val topology : 'msg t -> Topology.t

val stats : 'msg t -> Msg_stats.t

val set_faults : 'msg t -> fault_model -> unit

val set_service_time : 'msg t -> ms:float -> unit
(** Per-message processing time at every node (default 0): a delivered
    message occupies its destination for [ms] of virtual time, FIFO, so
    nodes saturate under load. Response-time experiments in the paper
    assume constant processing delay; the queueing model supports load
    studies beyond it. *)

val register : 'msg t -> node:int -> (src:int -> 'msg -> unit) -> unit
(** Install the message handler for [node]. At most one handler per
    node; registering again replaces it (used by recovery). *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Fire-and-forget. Counted in {!stats} even if subsequently lost
    (the sender did transmit it); dropped silently if the sender is
    crashed, the destination is crashed at delivery time, the link is
    partitioned or cut in the [src -> dst] direction, or the (global or
    per-link) fault model loses it. *)

(** {2 Crashes: fail-stop and amnesia} *)

val crash : 'msg t -> int -> unit
(** Take a node down, fail-stop: on recovery its durable state is
    intact. Idempotent. Pending timers created with {!timer} are
    invalidated. *)

val crash_amnesia : 'msg t -> int -> unit
(** Take a node down {e and wipe its disk}: the recovery notification
    carries [wiped:true], telling protocol layers that state they
    treated as durable is gone and must be rebuilt (by state transfer
    from peers). Calling it on an already-down node still wipes; a
    fail-stop crash after an unrecovered amnesia crash keeps the wipe
    pending. *)

val recover : 'msg t -> int -> unit
(** Bring a node back up (a fresh incarnation). Idempotent. *)

val is_up : 'msg t -> int -> bool

val on_status_change : 'msg t -> node:int -> (up:bool -> wiped:bool -> unit) -> unit
(** Register a callback invoked after each crash/recovery of [node]
    (protocols use it to reset volatile state on recovery). On a
    down-notification [wiped] says the crash was an amnesia crash; on
    an up-notification it says the outage the node is returning from
    included a wipe, so recovery must not trust pre-crash durable
    state. *)

(** {2 Gray failure: per-node degradation} *)

val degrade_node : 'msg t -> int -> delay_ms:float -> loss:float -> unit
(** Mark a node gray-failed: every message to {e or} from it suffers
    [delay_ms] extra delivery delay and is lost with (independently
    composed) probability [loss], on top of the link's fault model.
    The node stays up and {!reachable} is unaffected — it is slow and
    lossy, not partitioned. Replaces any previous degradation of the
    node. In manual-delivery mode the extra loss does not apply (the
    controller owns nondeterminism), matching probabilistic link
    faults. *)

val clear_degrade : 'msg t -> int -> unit
(** Restore a degraded node to healthy. Idempotent. Not cleared by
    {!heal} (like per-link fault overrides, degradation models node
    quality rather than a connectivity outage). *)

val degraded : 'msg t -> int -> (float * float) option
(** [(delay_ms, loss)] if the node is currently degraded. *)

(** {2 Node-scoped timers} *)

val timer : 'msg t -> node:int -> delay_ms:float -> (unit -> unit) -> Dq_sim.Engine.handle
(** Like {!Dq_sim.Engine.schedule}, but the action is skipped if [node]
    is down at expiry or has crashed (even transiently) since the timer
    was created. *)

(** {2 Manual delivery (schedule exploration)} *)

val set_manual : 'msg t -> bool -> unit
(** In manual mode, sent messages are not scheduled for timed delivery:
    they accumulate in a pending pool, and a test controller decides
    the delivery order with {!pending} / {!deliver_pending} /
    {!drop_pending}. Loss/duplication/jitter do not apply (the
    controller owns the nondeterminism); partitions, one-way cuts and
    crashes do. Timers are unaffected. Used by {i schedule
    exploration}, which checks protocol correctness under message
    orderings the delay matrix could never produce. *)

val pending : 'msg t -> (int * int * 'msg) list
(** The undelivered sends, oldest first, as (src, dst, msg). *)

val deliver_pending : 'msg t -> int -> unit
(** Deliver the i-th pending message now (synchronously). Out-of-range
    indices raise [Invalid_argument]. Crashed destinations, partitioned
    pairs and cut links drop the message instead. *)

val drop_pending : 'msg t -> int -> unit
(** Remove the i-th pending message without delivering it. *)

(** {2 Partitions and directed link faults} *)

val partition : 'msg t -> int list list -> unit
(** [partition net groups] splits the network: messages flow only
    between nodes of the same group. Nodes absent from every group form
    an implicit final group. Replaces any previous partition. *)

val heal : 'msg t -> unit
(** Remove the partition, every one-way cut, and stop all link
    flapping. Per-link fault overrides are {e not} cleared (they model
    link quality, not a transient outage); use {!set_link_faults} with
    [None] to drop them. *)

val cut : 'msg t -> src:int -> dst:int -> unit
(** Sever the directed link [src -> dst]: messages sent that way are
    dropped while the reverse direction keeps working (one-way link
    failure). Idempotent; independent of any group partition. *)

val uncut : 'msg t -> src:int -> dst:int -> unit
(** Restore a severed directed link. Idempotent. *)

val uncut_all : 'msg t -> unit

val is_cut : 'msg t -> src:int -> dst:int -> bool

val set_link_faults : 'msg t -> src:int -> dst:int -> fault_model option -> unit
(** Override the fault model on the directed link [src -> dst]
    ([None] reverts the link to the global model). Applies to loss,
    duplication and jitter of subsequent sends on that link. *)

val link_faults : 'msg t -> src:int -> dst:int -> fault_model option

val flap_link :
  'msg t -> src:int -> dst:int -> up_ms:float -> down_ms:float -> until_ms:float -> unit
(** Flap the directed link: available for [up_ms], severed for
    [down_ms], repeating until absolute virtual time [until_ms], after
    which the link is restored. A later [flap_link] on the same link
    supersedes the running schedule; {!heal} stops all flapping. *)

val reachable : 'msg t -> src:int -> dst:int -> bool
(** Whether a message sent now from [src] would cross the partition
    and any one-way cut — direction-aware: [reachable ~src:a ~dst:b]
    and [reachable ~src:b ~dst:a] may differ. Ignores crashes and
    probabilistic faults. *)

(** {2 Message-type-erased control}

    Fault orchestration (the nemesis layer) operates on clusters of any
    protocol, whose networks carry different message types. [control]
    packages the fault-injection surface of a network with the message
    type erased so one orchestrator drives them all. *)

type control = {
  c_nodes : int list;
  c_partition : int list list -> unit;
  c_heal : unit -> unit;
  c_cut : src:int -> dst:int -> unit;
  c_uncut : src:int -> dst:int -> unit;
  c_set_link_faults : src:int -> dst:int -> fault_model option -> unit;
  c_set_faults : fault_model -> unit;
  c_flap_link : src:int -> dst:int -> up_ms:float -> down_ms:float -> until_ms:float -> unit;
  c_crash : int -> unit;
  c_crash_amnesia : int -> unit;
  c_recover : int -> unit;
  c_degrade_node : int -> delay_ms:float -> loss:float -> unit;
  c_clear_degrade : int -> unit;
  c_is_up : int -> bool;
  c_reachable : src:int -> dst:int -> bool;
}

val control : 'msg t -> control
