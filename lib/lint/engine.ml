open Typedtree
module D = Diagnostic

type config = {
  rules : Rules.t list;
  ignore_scopes : bool;
  allowlist : (string * string) list;
  exclude_paths : string list;
}

let default_config =
  {
    rules = Rules.all;
    ignore_scopes = false;
    allowlist = [];
    exclude_paths = [ "test/lint_fixtures" ];
  }

(* ------------------------------------------------------------------ *)
(* Small string helpers                                                *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.equal (String.sub s (ls - lx) lx) suffix

let contains_substring ~sub s =
  let ls = String.length s and lx = String.length sub in
  if lx = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= ls - lx do
      if String.equal (String.sub s !i lx) sub then found := true;
      incr i
    done;
    !found
  end

let split_words = Suppress.split_words

let parse_allowlist contents =
  String.split_on_char '\n' contents
  |> List.filter_map (fun line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         match split_words line with
         | [] -> None
         | [ rule ] -> Some (rule, "")
         | rule :: path :: _ -> Some (rule, path))

(* ------------------------------------------------------------------ *)
(* Suppression attributes (parsing shared with Flow via Suppress)      *)

let allows_of_attributes = Suppress.allows_of_attributes

let allow_matches = Suppress.allow_matches

(* ------------------------------------------------------------------ *)
(* Type inspection (best effort: the env rebuilt from the summary may
   be incomplete, in which case we stay structural and conservative)   *)

let rebuild_env env = try Envaux.env_of_only_summary env with _ -> Env.empty

let expand env ty = try Ctype.expand_head env ty with _ -> ty

(* [int]/[bool]/[char]/[unit] and all-constant-constructor variants are
   immediate: polymorphic comparison on them is branch-free and cannot
   observe representation, so R1 lets them through. Everything else —
   floats, strings, tuples, records, open variants, type variables —
   must use a monomorphic comparator. *)
let is_immediate_type env ty =
  let ty = expand env ty in
  match Types.get_desc ty with
  | Tconstr (p, [], _)
    when Path.same p Predef.path_int
         || Path.same p Predef.path_bool
         || Path.same p Predef.path_char
         || Path.same p Predef.path_unit -> true
  | Tconstr (p, _, _) -> (
    match Env.find_type p env with
    | { type_kind = Type_variant (cstrs, _); _ } ->
      List.for_all
        (fun (c : Types.constructor_declaration) ->
          match c.cd_args with Cstr_tuple [] -> true | _ -> false)
        cstrs
    | _ -> false
    | exception _ -> false)
  | _ -> false

(* The compiler itself specializes the comparison primitives (=, <>, <,
   >, <=, >=, compare) when the static argument type is an immediate,
   float, string or boxed integer (Translcore.specialize_comparison):
   those occurrences are already monomorphic machine code and R1 lets
   them through. Everything else really does call the generic
   structural walk. *)
let is_specializable_type env ty =
  is_immediate_type env ty
  ||
  let ty = expand env ty in
  match Types.get_desc ty with
  | Tconstr (p, [], _) ->
    Path.same p Predef.path_float
    || Path.same p Predef.path_string
    || Path.same p Predef.path_int32
    || Path.same p Predef.path_int64
    || Path.same p Predef.path_nativeint
  | _ -> false

let first_arrow_arg ty =
  match Types.get_desc ty with
  | Tarrow (_, t, _, _) -> Some t
  | Tpoly (t, _) -> (
    match Types.get_desc t with Tarrow (_, t, _, _) -> Some t | _ -> None)
  | _ -> None

let type_to_string env ty =
  try
    Printtyp.reset ();
    Format.asprintf "%a" Printtyp.type_expr (expand env ty)
  with _ -> "_"

(* ------------------------------------------------------------------ *)
(* Rule tables                                                         *)

(* Comparison primitives the compiler specializes at known base types
   (see [is_specializable_type]). *)
let comparison_primitives =
  [
    "Stdlib.compare"; "Stdlib.="; "Stdlib.<>"; "Stdlib.<"; "Stdlib.>";
    "Stdlib.<="; "Stdlib.>=";
  ]

(* Plain functions built on the generic compare: these call the
   structural walk at runtime whatever the static type, so only true
   immediates are exempt. *)
let generic_compare_fns =
  [
    "Stdlib.min"; "Stdlib.max"; "Stdlib.Hashtbl.hash";
    "Stdlib.Hashtbl.hash_param"; "Stdlib.List.mem"; "Stdlib.List.assoc";
    "Stdlib.List.assoc_opt"; "Stdlib.List.mem_assoc";
    "Stdlib.List.remove_assoc"; "Stdlib.Array.mem";
  ]

let wall_clock_names = [ "Unix.gettimeofday"; "Unix.time"; "Stdlib.Sys.time" ]

(* R8: partial stdlib functions whose failure the types allow. Array.get
   is deliberately absent — [a.(i)] desugars to the same ident, so the
   rule would ban every array read; bounds discipline on arrays stays a
   review concern. *)
let partial_fn_names =
  [ "Stdlib.Option.get"; "Stdlib.List.hd"; "Stdlib.List.nth" ]

let ref_write_names = [ "Stdlib.:="; "Stdlib.incr"; "Stdlib.decr" ]

let hashtbl_mutators =
  [
    "Stdlib.Hashtbl.add"; "Stdlib.Hashtbl.replace"; "Stdlib.Hashtbl.remove";
    "Stdlib.Hashtbl.reset"; "Stdlib.Hashtbl.clear";
    "Stdlib.Hashtbl.filter_map_inplace";
  ]

let array_writes =
  [
    "Stdlib.Array.set"; "Stdlib.Array.unsafe_set"; "Stdlib.Array.fill";
    "Stdlib.Bytes.set"; "Stdlib.Bytes.unsafe_set"; "Stdlib.Bytes.fill";
  ]

let mem names n = List.exists (String.equal n) names

(* ------------------------------------------------------------------ *)
(* R4 helpers: guard detection                                         *)

(* A condition counts as a telemetry guard if it mentions a value named
   [subscribed] — [Bus.subscribed], a module-local wrapper
   [let subscribed t = Bus.subscribed t.bus], or a bound boolean
   [let subscribed = Bus.subscribed bus in ...] all qualify. *)
let mentions_subscribed e =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) when String.equal (Path.last p) "subscribed" ->
            found := true
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  !found

(* An argument that is a bare variable, field read or constant was built
   before the call; anything else is constructed at the call site and
   belongs behind the guard. *)
let is_prebuilt e =
  match e.exp_desc with
  | Texp_ident _ | Texp_field _ | Texp_constant _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* R5 helpers: captured-state mutation inside pool worker closures      *)

type head = Local of Ident.t | Global | Unknown

let rec head_of e =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Local id
  | Texp_ident (_, _, _) -> Global
  | Texp_field (e, _, _) -> head_of e
  | _ -> Unknown

let first_nolabel_arg args =
  List.find_map
    (fun (lbl, a) ->
      match (lbl, a) with
      | Asttypes.Nolabel, Some e -> Some e
      | _ -> None)
    args

(* Collect every identifier bound anywhere inside [e] (parameters, lets,
   match patterns, for-loop indices): mutations whose target is bound
   inside the closure are worker-private and safe. *)
let bound_idents_within e =
  let ids = Hashtbl.create 32 in
  let add id = Hashtbl.replace ids (Ident.unique_name id) () in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun sub p ->
          List.iter add (pat_bound_idents p);
          Tast_iterator.default_iterator.pat sub p);
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_for (id, _, _, _, _, _) -> add id
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  ids

let is_captured locals = function
  | Local id -> not (Hashtbl.mem locals (Ident.unique_name id))
  | Global -> true
  | Unknown -> false

(* ------------------------------------------------------------------ *)
(* The per-file pass                                                   *)

type ctx = {
  src : string;
  cfg : config;
  diags : D.t list ref;
  (* rules active for this file, after scoping + file-level attrs *)
  active : (string * Rules.t) list;
  allow_stack : string list list ref;
  guard_depth : int ref;
}

let rule ctx id =
  List.find_map
    (fun (rid, r) -> if String.equal rid id then Some r else None)
    ctx.active

let suppressed ctx (r : Rules.t) =
  List.exists (allow_matches r) !(ctx.allow_stack)
  || List.exists
       (fun (rid, sub) ->
         (String.equal rid "*" || String.equal rid r.id
         || String.equal rid r.name)
         && contains_substring ~sub ctx.src)
       ctx.cfg.allowlist

let report ctx id ~loc fmt =
  Printf.ksprintf
    (fun message ->
      match rule ctx id with
      | None -> ()
      | Some r ->
        if not (suppressed ctx r) then
          ctx.diags := D.make ~rule:id ~loc ~message :: !(ctx.diags))
    fmt

(* R5: one closure handed to Pool.map/map_array (runs on a pool worker
   domain) or to Pdes.post (runs on the destination partition's
   domain). [race] names the crossing in the message. *)
let check_worker_closure ctx ~race closure =
  let locals = bound_idents_within closure in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_setfield (tgt, _, lbl, _)
            when is_captured locals (head_of tgt) ->
            report ctx "R5" ~loc:e.exp_loc
              "worker closure mutates field '%s' of captured state (%s)"
              lbl.lbl_name race
          | Texp_setinstvar (_, _, _, _) ->
            report ctx "R5" ~loc:e.exp_loc
              "worker closure mutates an instance variable (%s)" race
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
            let n = Path.name p in
            match first_nolabel_arg args with
            | Some tgt when is_captured locals (head_of tgt) ->
              if mem ref_write_names n then
                report ctx "R5" ~loc:e.exp_loc
                  "worker closure writes a captured ref via %s (%s)"
                  (Path.last p) race
              else if mem hashtbl_mutators n then
                report ctx "R5" ~loc:e.exp_loc
                  "worker closure mutates a captured hash table via \
                   Hashtbl.%s (%s)"
                  (Path.last p) race
              else if mem array_writes n then
                report ctx "R5" ~loc:e.exp_loc
                  "worker closure writes a captured array/bytes via %s (%s)" n
                  race
            | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it closure

let pool_race = "data race across pool domains"

let pdes_race =
  "the post callback runs on the destination partition's domain; mutate only \
   destination-owned state or communicate through the mailbox API"

let is_pool_map_callee p =
  let n = Path.name p in
  ends_with ~suffix:"Pool.map" n || ends_with ~suffix:"Pool.map_array" n

let is_pdes_post_callee p = ends_with ~suffix:"Pdes.post" (Path.name p)

(* Point checks that only need to look at one identifier occurrence. *)
let check_ident ctx e p =
  let n = Path.name p in
  (* R2: ambient randomness *)
  if starts_with ~prefix:"Stdlib.Random." n then
    report ctx "R2" ~loc:e.exp_loc
      "%s draws from the ambient global generator; route randomness through \
       Dq_util.Rng so runs replay bit-for-bit"
      n;
  (* R3: wall clock *)
  if mem wall_clock_names n then
    report ctx "R3" ~loc:e.exp_loc
      "%s reads the host clock; simulation code must take time from the \
       virtual Clock"
      n;
  (* R6: raw engine timer in node-scoped code. Net.timer wraps the same
     schedule in an incarnation check (lib/net/net.ml), so callbacks
     armed before a crash/amnesia restart are dropped on recovery. *)
  if
    ends_with ~suffix:"Engine.schedule" n
    || ends_with ~suffix:"Engine.schedule_at" n
  then
    report ctx "R6" ~loc:e.exp_loc
      "%s arms a raw engine timer with no incarnation guard; node-scoped \
       callbacks must go through Net.timer so crash/amnesia recovery drops \
       them instead of letting them fire into the node's next life"
      n;
  (* R8: partial functions *)
  if mem partial_fn_names n then
    report ctx "R8" ~loc:e.exp_loc
      "%s raises on inputs its type allows; use a total pattern instead \
       (match, List.nth_opt, Option.value, Rng.choose)"
      n;
  (* R1: polymorphic compare/equality/hash at a non-immediate type *)
  let primitive = mem comparison_primitives n in
  if primitive || mem generic_compare_fns n then begin
    match first_arrow_arg e.exp_type with
    | None -> ()
    | Some subject ->
      let env = rebuild_env e.exp_env in
      let exempt =
        if primitive then is_specializable_type env subject
        else is_immediate_type env subject
      in
      if not exempt then
        report ctx "R1" ~loc:e.exp_loc
          "%s is polymorphic at type %s; use a monomorphic comparator \
           (Int/Float/String.equal, a dedicated compare, or match)"
          n
          (type_to_string env subject)
  end

(* ------------------------------------------------------------------ *)
(* R9 helpers: silent message drops                                    *)

(* Is this a message/payload variant? Heuristic on the (expanded) type
   constructor's path: the protocol layers name their wire types
   [Message.t] / [Base_msg.t] / [type msg = ...], and that convention is
   exactly what the rule protects — adding a constructor to a wire type
   must not be silently swallowed by an old wildcard arm. *)
let msgish_type env ty =
  let ty = expand env ty in
  match Types.get_desc ty with
  | Tconstr (p, _, _) ->
    let n = String.lowercase_ascii (Path.name p) in
    contains_substring ~sub:"msg" n || contains_substring ~sub:"message" n
  | _ -> false

let is_wildcard_pat (p : computation general_pattern) =
  match p.pat_desc with
  | Tpat_value v -> (
    match (v :> value general_pattern).pat_desc with
    | Tpat_any | Tpat_var _ -> true
    | _ -> false)
  | _ -> false

let is_unit_const e =
  match e.exp_desc with
  | Texp_construct (_, cd, []) -> String.equal cd.cstr_name "()"
  | _ -> false

let check_match_drops ctx scrut cases =
  let candidates =
    List.filter
      (fun c ->
        is_wildcard_pat c.c_lhs
        && Option.is_none c.c_guard
        && is_unit_const c.c_rhs
        (* the annotation sits on the arm's [()] body, which the allow
           stack hasn't reached yet at match-visit time *)
        && not (Suppress.allows_rule c.c_rhs.exp_attributes "R9"))
      cases
  in
  match candidates with
  | [] -> ()
  | _ :: _ ->
    let env = rebuild_env scrut.exp_env in
    if msgish_type env scrut.exp_type then
      List.iter
        (fun c ->
          report ctx "R9" ~loc:c.c_lhs.pat_loc
            "wildcard arm silently drops messages of type %s; name the \
             constructors, emit a telemetry drop event, or annotate the \
             deliberate drop with [@dqr.lint.allow \"R9\"]"
            (type_to_string env scrut.exp_type))
        candidates

(* ------------------------------------------------------------------ *)
(* R7 point check: ordered accumulation through Hashtbl.iter            *)

let contains_cons e =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_construct (_, cd, _) when String.equal cd.cstr_name "::" ->
            found := true
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  !found

(* [Hashtbl.iter (fun k _ -> acc := k :: !acc) tbl] is the fold escape
   in imperative clothing: the captured ref accumulates in hash order.
   The Flow pass can't see it (the "result" leaves through a ref, not a
   tail position), so it's a point check here. *)
let check_iter_accumulator ctx args =
  match
    List.find_map
      (fun (lbl, a) ->
        match (lbl, a) with
        | Asttypes.Nolabel, Some f -> (
          match f.exp_desc with Texp_function _ -> Some f | _ -> None)
        | _ -> None)
      args
  with
  | None -> ()
  | Some closure ->
    let locals = bound_idents_within closure in
    let it =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun sub e ->
            (match e.exp_desc with
            | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, aargs)
              when String.equal (Path.name p) "Stdlib.:=" -> (
              match first_nolabel_arg aargs with
              | Some tgt
                when is_captured locals (head_of tgt) && contains_cons e ->
                report ctx "R7" ~loc:e.exp_loc
                  "Hashtbl.iter conses into a captured ref in hash order; \
                   use Hashtbl.fold and sort the result before it escapes"
              | _ -> ())
            | _ -> ());
            Tast_iterator.default_iterator.expr sub e);
      }
    in
    it.expr it closure

let check_expr_node ctx e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> check_ident ctx e p
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
    (* R4: unguarded telemetry publish constructing its event *)
    if
      String.equal (Path.last p) "emit"
      && !(ctx.guard_depth) = 0
      && List.exists
           (fun (_, a) ->
             match a with Some e -> not (is_prebuilt e) | None -> false)
           args
    then
      report ctx "R4" ~loc:e.exp_loc
        "telemetry publish constructs its event outside a Bus.subscribed \
         guard; wrap it in 'if Bus.subscribed bus then ...' so the no-sink \
         path allocates nothing";
    (* R5: closure handed to the domain pool or posted across partitions *)
    let pool = is_pool_map_callee p in
    if pool || is_pdes_post_callee p then begin
      match
        List.find_map
          (fun (lbl, a) ->
            match (lbl, a) with
            | Asttypes.Nolabel, Some f -> (
              match f.exp_desc with Texp_function _ -> Some f | _ -> None)
            | _ -> None)
          args
      with
      | Some closure ->
        check_worker_closure ctx ~race:(if pool then pool_race else pdes_race) closure
      | None -> ()
    end;
    (* R7 point check: ordered accumulation through Hashtbl.iter *)
    if ends_with ~suffix:"Hashtbl.iter" (Path.name p) then
      check_iter_accumulator ctx args
  | _ -> ()

let make_iterator ctx =
  let open Tast_iterator in
  let with_allows attrs k =
    match allows_of_attributes attrs with
    | [] -> k ()
    | allows ->
      ctx.allow_stack := allows :: !(ctx.allow_stack);
      k ();
      ctx.allow_stack := List.tl !(ctx.allow_stack)
  in
  let expr sub e =
    with_allows e.exp_attributes (fun () ->
        check_expr_node ctx e;
        match e.exp_desc with
        | Texp_ifthenelse (cond, ethen, eelse) ->
          sub.expr sub cond;
          let guarded = mentions_subscribed cond in
          if guarded then incr ctx.guard_depth;
          sub.expr sub ethen;
          if guarded then decr ctx.guard_depth;
          Option.iter (sub.expr sub) eelse
        | Texp_match (scrut, cases, _) ->
          check_match_drops ctx scrut cases;
          sub.expr sub scrut;
          List.iter
            (fun c ->
              sub.pat sub c.c_lhs;
              match c.c_guard with
              | Some g ->
                sub.expr sub g;
                let guarded = mentions_subscribed g in
                if guarded then incr ctx.guard_depth;
                sub.expr sub c.c_rhs;
                if guarded then decr ctx.guard_depth
              | None -> sub.expr sub c.c_rhs)
            cases
        | _ -> default_iterator.expr sub e)
  in
  let value_binding sub vb =
    with_allows vb.vb_attributes (fun () ->
        default_iterator.value_binding sub vb)
  in
  { default_iterator with expr; value_binding }

let file_level_allows str =
  List.concat_map
    (fun item ->
      match item.str_desc with
      | Tstr_attribute a -> allows_of_attributes [ a ]
      | _ -> [])
    str.str_items

let run_file cfg src str =
  let file_allows = file_level_allows str in
  let active =
    List.filter_map
      (fun (r : Rules.t) ->
        if
          (cfg.ignore_scopes || r.applies src)
          && not (allow_matches r file_allows)
        then Some (r.id, r)
        else None)
      cfg.rules
  in
  match active with
  | [] -> []
  | _ :: _ ->
    let ctx =
      {
        src;
        cfg;
        diags = ref [];
        active;
        allow_stack = ref [];
        guard_depth = ref 0;
      }
    in
    let it = make_iterator ctx in
    it.structure it str;
    (* R7 escape analysis: a separate function-level pass (see Flow).
       Rule activation, allowlists and dedup all flow through [report]. *)
    Flow.check
      ~report:(fun ~loc msg -> report ctx "R7" ~loc "%s" msg)
      str;
    List.sort_uniq D.compare !(ctx.diags)

(* ------------------------------------------------------------------ *)
(* Cmt loading                                                         *)

(* Dune compiles with the build root spelled [/workspace_root] (path
   remapping, for reproducible artifacts), so the load path recorded in
   the cmt never exists on disk as written: remap it onto the real
   build context root so the environment rebuild can find the cmis. *)
let workspace_root = "/workspace_root"

let setup_load_path ~root (cmt : Cmt_format.cmt_infos) =
  let base =
    if Sys.file_exists cmt.cmt_builddir then cmt.cmt_builddir else root
  in
  let resolve d =
    if Filename.is_relative d then Filename.concat base d
    else if String.equal d workspace_root then root
    else if starts_with ~prefix:(workspace_root ^ "/") d then
      Filename.concat root
        (String.sub d
           (String.length workspace_root + 1)
           (String.length d - String.length workspace_root - 1))
    else d
  in
  Load_path.init ~auto_include:Load_path.no_auto_include
    (List.map resolve cmt.cmt_loadpath);
  Env.reset_cache ();
  Envaux.reset_cache ()

let source_of_cmt (cmt : Cmt_format.cmt_infos) =
  match cmt.cmt_sourcefile with
  | Some f when Filename.check_suffix f ".ml" -> Some (Rules.normalize f)
  | _ -> None

let excluded cfg src = List.exists (fun p -> starts_with ~prefix:p src) cfg.exclude_paths

let lint_cmt ?(root = "_build/default") cfg cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception e ->
    Error (Printf.sprintf "%s: %s" cmt_path (Printexc.to_string e))
  | cmt -> (
    match (source_of_cmt cmt, cmt.cmt_annots) with
    | Some src, Implementation str when not (excluded cfg src) ->
      setup_load_path ~root cmt;
      Ok (run_file cfg src str)
    | _ -> Ok [])

(* ------------------------------------------------------------------ *)
(* Build-dir walking                                                   *)

let rec walk_dir dir acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc name ->
        let path = Filename.concat dir name in
        if Sys.is_directory path then walk_dir path acc
        else if Filename.check_suffix name ".cmt" then path :: acc
        else acc)
      acc entries

let path_selected paths src =
  match paths with
  | [] -> true
  | _ :: _ ->
    List.exists
      (fun p ->
        let p = Rules.normalize p in
        String.equal p src || starts_with ~prefix:(p ^ "/") src
        || starts_with ~prefix:p src)
      paths

(* Bumped with any behavior change to the rules or the engine: it keys
   the incremental cache, so an upgraded linter never serves findings
   computed by its predecessor. *)
let version = "2.0.0"

type stats = { cmts : int; analyzed : int; cache_hits : int }

(* Everything a cached entry's validity depends on besides the cmt
   bytes themselves. *)
let config_fingerprint cfg =
  let b = Buffer.create 256 in
  Buffer.add_string b version;
  Buffer.add_char b '|';
  List.iter
    (fun (r : Rules.t) ->
      Buffer.add_string b r.id;
      Buffer.add_char b ',')
    cfg.rules;
  Buffer.add_string b (if cfg.ignore_scopes then "|noscope|" else "|scoped|");
  List.iter
    (fun (rule, sub) ->
      Buffer.add_string b rule;
      Buffer.add_char b '=';
      Buffer.add_string b sub;
      Buffer.add_char b ',')
    cfg.allowlist;
  Buffer.add_char b '|';
  List.iter
    (fun p ->
      Buffer.add_string b p;
      Buffer.add_char b ',')
    cfg.exclude_paths;
  Digest.to_hex (Digest.string (Buffer.contents b))

type outcome =
  | Done of { digest : string; entry : Cache.entry; fresh : bool }
  | Broken of string

(* compiler-libs' load path, env and Envaux caches are process-global
   and not domain-safe, so the typed analysis itself is serialized; the
   per-cmt digest and unmarshalling fan out across the pool, which is
   where a warm-cache run spends its time. *)
let analysis_mutex = Mutex.create ()

let process_cmt cfg cache root cmt_path =
  match Digest.file cmt_path with
  | exception e ->
    Broken (Printf.sprintf "%s: %s" cmt_path (Printexc.to_string e))
  | digest -> (
    let digest = Digest.to_hex digest in
    match Cache.find cache digest with
    | Some entry -> Done { digest; entry; fresh = false }
    | None -> (
      match Cmt_format.read_cmt cmt_path with
      | exception e ->
        Broken (Printf.sprintf "%s: %s" cmt_path (Printexc.to_string e))
      | cmt -> (
        match (source_of_cmt cmt, cmt.cmt_annots) with
        | Some src, Implementation str when not (excluded cfg src) ->
          Mutex.protect analysis_mutex (fun () ->
              setup_load_path ~root cmt;
              let entry = { Cache.src; diags = run_file cfg src str } in
              Done { digest; entry; fresh = true })
        | _ ->
          (* nothing lintable (interface-only cmt, excluded path, mli):
             cache the emptiness so reruns skip the unmarshal too *)
          Done
            { digest; entry = { Cache.src = ""; diags = [] }; fresh = true })))

let lint_build_dir ?(paths = []) ?(jobs = 1) ?cache_file cfg build_dir =
  let cmts = List.rev (walk_dir build_dir []) in
  let fingerprint = config_fingerprint cfg in
  let cache =
    match cache_file with
    | None -> Cache.empty fingerprint
    | Some f -> Cache.load ~file:f ~fingerprint
  in
  let process path = process_cmt cfg cache build_dir path in
  let outcomes =
    if jobs = 1 then List.map process cmts
    else
      Dq_par.Pool.with_pool ~jobs (fun pool ->
          Dq_par.Pool.map ~chunk_size:4 pool process cmts)
  in
  let seen = Hashtbl.create 128 in
  let diags = ref [] in
  let errors = ref [] in
  let entries = ref [] in
  let analyzed = ref 0 in
  let hits = ref 0 in
  List.iter
    (fun outcome ->
      match outcome with
      | Broken msg -> errors := msg :: !errors
      | Done { digest; entry; fresh } ->
        entries := (digest, entry) :: !entries;
        if fresh then incr analyzed else incr hits;
        let src = entry.Cache.src in
        if
          (not (String.equal src ""))
          && (not (Hashtbl.mem seen src))
          && path_selected paths src
        then begin
          (* several executables may recompile the same source; first
             cmt in walk order wins, as before *)
          Hashtbl.add seen src ();
          diags := entry.Cache.diags @ !diags
        end)
    outcomes;
  (match cache_file with
  | None -> ()
  | Some f -> Cache.save ~file:f ~fingerprint (List.rev !entries));
  ( List.sort_uniq D.compare !diags,
    List.rev !errors,
    { cmts = List.length cmts; analyzed = !analyzed; cache_hits = !hits } )
