(** A single linter finding, anchored to a source location.

    Locations come straight out of the typedtree, so [file] is the
    compiler's view of the source path — relative to the build context
    root (e.g. ["lib/sim/engine.ml"]). *)

type t = {
  rule : string;  (** rule id, e.g. ["R1"] *)
  file : string;  (** source path relative to the project root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler reports it *)
  message : string;
}

val make : rule:string -> loc:Location.t -> message:string -> t
(** Extract [file]/[line]/[col] from [loc.loc_start]. *)

val compare : t -> t -> int
(** Order by [file], then [line], [col], [rule], [message]. *)

val to_string : t -> string
(** ["file:line:col: [rule] message"] — the human-readable form. *)

val escape : string -> string
(** Minimal JSON string escaping (ASCII rule ids, paths and prose);
    shared with the {!Sarif} emitter. *)

val to_json : t -> string
(** One finding as a JSON object on a single line. *)

val list_to_json : rules:Rules.t list -> t list -> string
(** The schema-2 report envelope:
    [{"version":2,"count":N,"rules":[{id,name,summary,scope,findings}..],
    "diagnostics":[...]}], pretty-printed with one rule/finding per
    line. [rules] is the configured rule table; [findings] is the
    per-rule diagnostic count. *)
