(** Parsing of [\[@dqr.lint.allow\]] suppression attributes — shared
    between {!Engine} (point checks, allow stack) and {!Flow} (the R7
    escape analysis, which walks function bodies on its own). *)

val allow_attr : string
(** The attribute name, ["dqr.lint.allow"]. *)

val split_words : string -> string list
(** Split a payload (or allowlist line) on commas and spaces, dropping
    empties. *)

val allows_of_attributes : Typedtree.attributes -> string list
(** The rule keys named by any [\[@dqr.lint.allow\]] in the list; an
    empty or non-string payload yields [\["*"\]] (allow everything). *)

val allow_matches : Rules.t -> string list -> bool
(** Does a key list (from {!allows_of_attributes}) suppress this rule —
    by id, by name, or by wildcard? *)

val allows_rule : Typedtree.attributes -> string -> bool
(** [allows_rule attrs "R9"]: do these attributes suppress the rule with
    that id? *)
