(** Incremental-analysis cache for {!Engine.lint_build_dir}: maps a
    [.cmt] content digest to the diagnostics it produced, keyed by a
    config fingerprint so a rule/allowlist/engine change invalidates
    everything at once. Lookups never change a report — a full run and a
    warm-cache run are byte-identical by construction. *)

type entry = {
  src : string;  (** project-relative source path; [""] = nothing lintable *)
  diags : Diagnostic.t list;
}

type t

val empty : string -> t
(** [empty fingerprint] — a cold cache. *)

val load : file:string -> fingerprint:string -> t
(** Load from disk; a missing, corrupt, foreign-version or
    foreign-config file yields a cold cache (never raises). *)

val find : t -> string -> entry option
(** Look up by hex content digest of a [.cmt]. *)

val save : file:string -> fingerprint:string -> (string * entry) list -> unit
(** Persist this run's [(digest, entry)] pairs, replacing the file;
    entries for deleted cmts age out naturally. IO errors are ignored
    (the cache is advisory). *)
