type t = {
  id : string;
  name : string;
  summary : string;
  applies : string -> bool;
  scope_doc : string;
}

let normalize path =
  let path =
    if String.length path > 2 && String.equal (String.sub path 0 2) "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.map (fun c -> if c = '\\' then '/' else c) path

let under dirs path =
  let path = normalize path in
  List.exists
    (fun d ->
      let d = if String.length d > 0 && d.[String.length d - 1] = '/' then d else d ^ "/" in
      String.length path >= String.length d
      && String.equal (String.sub path 0 (String.length d)) d)
    dirs

(* R1 guards every library subtree: the simulator's determinism and the
   hot paths' monomorphism are global properties, and PR 1's purge only
   stays purged if nothing under lib/ regresses. *)
let r1 =
  {
    id = "R1";
    name = "no-poly-compare";
    summary =
      "polymorphic compare/equality (compare, =, <>, <, >, <=, >=, min, max, \
       Hashtbl.hash, List.mem/assoc) at a non-immediate type";
    applies = (fun p -> under [ "lib" ] p);
    scope_doc = "lib/ (every library subtree)";
  }

let r2 =
  {
    id = "R2";
    name = "no-ambient-randomness";
    summary =
      "Stdlib.Random is ambient, seed-global state; all randomness must flow \
       from Dq_util.Rng so runs replay bit-for-bit";
    applies = (fun p -> not (String.equal (normalize p) "lib/util/rng.ml"));
    scope_doc = "everywhere except lib/util/rng.ml";
  }

let r3 =
  {
    id = "R3";
    name = "no-wall-clock";
    summary =
      "Unix.gettimeofday/Unix.time/Sys.time read the host clock; simulation \
       code must use the virtual Clock";
    applies = (fun p -> not (under [ "bin"; "bench" ] p));
    scope_doc = "everywhere except bin/ and bench/";
  }

let r4 =
  {
    id = "R4";
    name = "guarded-telemetry";
    summary =
      "telemetry publishes that construct an event must be dominated by a \
       Bus.subscribed check so the no-sink path allocates nothing";
    applies =
      (fun p -> under [ "lib" ] p && not (under [ "lib/telemetry" ] p));
    scope_doc = "lib/ except lib/telemetry (the bus itself)";
  }

let r5 =
  {
    id = "R5";
    name = "domain-safety";
    summary =
      "closures handed to Dq_par.Pool.map/map_array or Dq_sim.Pdes.post must \
       not mutate captured refs, fields, arrays or hashtables (cross-domain \
       race; cross-partition effects go through the mailbox API)";
    applies = (fun p -> not (under [ "lib/par" ] p));
    scope_doc = "everywhere except lib/par (the pool itself)";
  }

(* R6 covers the node-scoped protocol layers. Net.timer (lib/net/net.ml)
   wraps Engine.schedule with an incarnation check, so callbacks armed
   before a crash/amnesia restart are dropped instead of firing into the
   node's next life. Raw Engine scheduling bypasses that guard. The
   harness layers (nemesis, churn, driver, ...) schedule *off-node*
   orchestration on purpose and stay out of scope. *)
let r6 =
  {
    id = "R6";
    name = "no-raw-timer";
    summary =
      "node-scoped code must arm timers via Net.timer (incarnation-guarded); \
       raw Engine.schedule/schedule_at survives crash+recovery as a zombie \
       callback";
    applies = (fun p -> under [ "lib/dq"; "lib/protocols"; "lib/rpc" ] p);
    scope_doc = "lib/dq, lib/protocols and lib/rpc (node-scoped code)";
  }

let r7 =
  {
    id = "R7";
    name = "ordered-fold";
    summary =
      "a Hashtbl.fold/iter whose accumulated result escapes the enclosing \
       function leaks hash order; sort it deterministically or accumulate \
       commutatively (counts, sums, max) before it escapes";
    applies = (fun p -> under [ "lib" ] p);
    scope_doc = "lib/ (every library subtree)";
  }

let r8 =
  {
    id = "R8";
    name = "no-partial-functions";
    summary =
      "Option.get, List.hd and List.nth raise on inputs the type system \
       can't rule out; use total patterns (match, List.nth_opt, Rng.choose) \
       so protocol code fails closed, not with Failure";
    applies = (fun p -> under [ "lib" ] p);
    scope_doc = "lib/ (every library subtree)";
  }

let r9 =
  {
    id = "R9";
    name = "no-silent-drop";
    summary =
      "a wildcard '_ -> ()' arm matching on a message/payload variant \
       silently ignores every future constructor; name the constructors, \
       emit a telemetry drop, or annotate the deliberate drop with \
       [@dqr.lint.allow \"R9\"]";
    applies = (fun p -> under [ "lib/dq"; "lib/protocols" ] p);
    scope_doc = "lib/dq and lib/protocols (message dispatch)";
  }

let all = [ r1; r2; r3; r4; r5; r6; r7; r8; r9 ]

let find key =
  List.find_opt (fun r -> String.equal r.id key || String.equal r.name key) all
