(* The incremental-analysis cache: a Marshal'd table from .cmt content
   digest to the diagnostics that cmt produced, guarded by a config
   fingerprint (rules, scoping, allowlist, exclusions, engine version).
   Any mismatch — different config, different engine, corrupt or missing
   file — degrades to an empty cache; the cache can only skip work,
   never change a report. *)

type entry = { src : string; diags : Diagnostic.t list }

type t = { fingerprint : string; table : (string, entry) Hashtbl.t }

(* Bump whenever the on-disk layout changes: a stale magic reads as a
   cold cache, not a crash. *)
let magic = "dqr-lint-cache-v2"

let empty fingerprint = { fingerprint; table = Hashtbl.create 16 }

let load ~file ~fingerprint =
  match open_in_bin file with
  | exception Sys_error _ -> empty fingerprint
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match
          (Marshal.from_channel ic : string * string * (string * entry) array)
        with
        | exception _ -> empty fingerprint
        | m, fp, entries ->
          if not (String.equal m magic && String.equal fp fingerprint) then
            empty fingerprint
          else begin
            let table = Hashtbl.create (max 16 (2 * Array.length entries)) in
            Array.iter (fun (k, e) -> Hashtbl.replace table k e) entries;
            { fingerprint; table }
          end)

let find t key = Hashtbl.find_opt t.table key

let save ~file ~fingerprint entries =
  match open_out_bin file with
  | exception Sys_error _ -> ()
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Marshal.to_channel oc (magic, fingerprint, Array.of_list entries) [])
