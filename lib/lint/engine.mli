(** The analysis pass: load [.cmt] typedtrees and run the rule checks.

    The engine never re-typechecks anything — it walks the typedtree
    dune already produced (every compile runs with [-bin-annot]), so a
    lint run costs milliseconds and sees exactly the types the compiler
    saw, post-inference.

    Suppression, in order of precedence:
    - expression / let-binding attribute:
      [(e [@dqr.lint.allow "R1"])] or [let[@dqr.lint.allow "R4"] f = ...];
      the payload names one or more rule ids or names (comma/space
      separated); an empty payload allows every rule for that subtree;
    - file-level floating attribute: [[@@@dqr.lint.allow "R2"]]
      anywhere in the file suppresses that rule for the whole file;
    - allowlist file: lines of [<rule-id-or-*> <path-substring>],
      [#]-comments allowed. *)

type config = {
  rules : Rules.t list;  (** rules to run (default: all) *)
  ignore_scopes : bool;
      (** run every rule on every file, ignoring [Rules.applies] — used
          by the fixture tests, which live outside the scoped dirs *)
  allowlist : (string * string) list;
      (** [(rule, path-substring)] pairs; rule ["*"] matches any rule *)
  exclude_paths : string list;
      (** project-relative path prefixes to skip entirely (default:
          the lint fixtures, which violate on purpose) *)
}

val default_config : config

val version : string
(** Engine version, advertised in reports and SARIF and folded into the
    incremental-cache fingerprint. *)

val parse_allowlist : string -> (string * string) list
(** Parse allowlist file contents (not a path). *)

type stats = {
  cmts : int;  (** [.cmt] artifacts visited *)
  analyzed : int;  (** read and analyzed this run (cache misses) *)
  cache_hits : int;  (** served from the incremental cache *)
}

val lint_cmt :
  ?root:string -> config -> string -> (Diagnostic.t list, string) result
(** Lint one [.cmt] file. [root] (default ["_build/default"]) is the
    build context root used to resolve the cmt's recorded load path
    (dune spells it [/workspace_root]) so type declarations can be
    looked up. [Error] means the artifact could not be loaded. *)

val lint_build_dir :
  ?paths:string list ->
  ?jobs:int ->
  ?cache_file:string ->
  config ->
  string ->
  Diagnostic.t list * string list * stats
(** [lint_build_dir ~paths config build_dir] walks [build_dir]
    recursively for [.cmt] files, lints each compilation unit once
    (several executables may recompile the same source — findings are
    deduplicated), and returns sorted diagnostics, load errors, and run
    stats. [paths] filters findings to files under the given
    project-relative prefixes.

    [jobs] (default 1) fans the per-cmt work across a {!Dq_par.Pool};
    the typed analysis itself serializes on a process-global lock
    (compiler-libs' env caches are not domain-safe) while digesting and
    unmarshalling parallelize, and results are order-independent of
    [jobs] by construction. [cache_file] enables the incremental cache:
    entries are keyed by cmt content digest under a config+engine
    fingerprint, so only changed cmts re-analyze and a warm run's report
    is byte-identical to a cold one. *)
