(** R7 "ordered-fold": does a [Hashtbl.fold] result escape the enclosing
    function in raw hash order?

    A separate pass from the {!Engine} expression iterator because it
    needs function-level context: tail positions, let-bound value tracking,
    and one-bit summaries for local helper functions (a raw fold inside
    a helper flags at the definition when any call site lets it escape
    unsorted, and is forgiven when every escape point sorts it).

    Suppression: a [\[@dqr.lint.allow "R7"\]] on the fold expression or
    on the binding (value or helper) silences the finding; file-level
    floating attributes are handled upstream by the engine's rule
    activation. *)

val check :
  report:(loc:Location.t -> string -> unit) -> Typedtree.structure -> unit
(** Walk every module-level binding (including nested modules) and call
    [report] once per escaping raw fold, at the fold's location. The
    caller owns rule activation, allowlists and diagnostic assembly. *)
