(* R7 "ordered-fold": the escape/domination analysis.

   A [Hashtbl.fold] builds its result in hash order — deterministic for a
   fixed binary and insertion history, but not a property of the data, so
   it breaks bit-for-bit replay the moment the table's insertion order
   shifts (merge order, recovery order, a stdlib bump). The rule: a fold
   result may escape the enclosing function only if it is (a) dominated
   by a deterministic sort, or (b) accumulated commutatively (counts,
   sums, min/max — any order-insensitive combine), so hash order cannot
   be observed downstream.

   The analysis is a tail-position walk per module-level binding:

   - [classify] follows the "result spine" of a function body — through
     lets, sequences, branches and [|>]/[@@] pipelines — and decides
     whether the value reaching the tail is a raw fold result.
   - Let-bound raw results are tracked by identifier; let-bound local
     *functions* get a one-bit summary (does calling it return a raw
     fold result?), which makes the check cross-function: a helper's raw
     fold flags at the call site that lets it escape, and is forgiven
     when every escape point sorts it.
   - Sorts ([List.sort] and friends) launder; [List.rev] propagates
     (reversed hash order is still hash order); tuples, records and
     unknown calls are opaque — embedding a fold result in a bigger
     value or feeding it to a consumer is not, by itself, an escape.

   Escaping [Hashtbl.iter] accumulation (consing into a captured ref) is
   a point check and lives in {!Engine}. *)

open Typedtree

type origin = { loc : Location.t; via : string option }

(* What an in-scope identifier is known to be. *)
type info =
  | Raw_value of origin  (* bound to a raw (unsorted) fold result *)
  | Raw_helper of origin  (* a local function returning a raw fold result *)

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.equal (String.sub s (ls - lx) lx) suffix

let any_suffix names n = List.exists (fun s -> ends_with ~suffix:s n) names

let is_fold n = ends_with ~suffix:"Hashtbl.fold" n

let is_sort n =
  any_suffix
    [ "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq" ]
    n

(* Reversed hash order is still hash order. *)
let is_order_preserving n = ends_with ~suffix:"List.rev" n

let positional args =
  List.filter_map
    (fun (lbl, a) ->
      match (lbl, a) with Asttypes.Nolabel, Some e -> Some e | _ -> None)
    args

let mem_id ids id = List.exists (Ident.same id) ids

let find_info env id =
  List.find_map
    (fun (i, info) -> if Ident.same i id then Some info else None)
    env

(* ------------------------------------------------------------------ *)
(* Commutative accumulators                                            *)

(* Does [e] mention any of the accumulator identifiers at all? *)
let mentions ids e =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _) when mem_id ids id ->
            found := true
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  !found

let commutative_ops = [ "+"; "+."; "*"; "*."; "land"; "lor"; "lxor"; "||"; "&&" ]

(* [max]/[min] accepted from any module (Float.max, Int.max, a domain
   Lc.max): the naming convention implies an associative-commutative
   combine. The bare polymorphic Stdlib.max is R1's problem, not ours. *)
let is_comm_op p =
  let last = Path.last p in
  List.exists (String.equal last) commutative_ops
  || String.equal last "max" || String.equal last "min"

(* Structural commutativity of a fold body w.r.t. the accumulator
   identifiers [ids]: the result must be [acc] itself (componentwise for
   tuple accumulators), a constant, or an acc-rooted combination through
   a commutative operator whose other operand is acc-free — reached only
   through acc-free conditions and bindings. Anything else (notably
   [x :: acc]) is order-sensitive. *)
let rec commutative ids e =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> mem_id ids id
  | Texp_constant _ -> true
  | Texp_construct (_, _, []) -> true
  | Texp_tuple es -> List.for_all (commutative ids) es
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
    when is_comm_op p -> (
    match positional args with
    | [ a; b ] ->
      (commutative ids a && not (mentions ids b))
      || (commutative ids b && not (mentions ids a))
    | _ -> false)
  | Texp_ifthenelse (c, t, Some e2) ->
    (not (mentions ids c)) && commutative ids t && commutative ids e2
  | Texp_ifthenelse (c, t, None) -> (not (mentions ids c)) && commutative ids t
  | Texp_match (s, cases, _) ->
    (not (mentions ids s))
    && List.for_all
         (fun c ->
           (match c.c_guard with
           | None -> true
           | Some g -> not (mentions ids g))
           && commutative ids c.c_rhs)
         cases
  | Texp_let (_, vbs, body) ->
    List.for_all (fun vb -> not (mentions ids vb.vb_expr)) vbs
    && commutative ids body
  | Texp_sequence (e1, e2) -> (not (mentions ids e1)) && commutative ids e2
  | Texp_open (_, body) -> commutative ids body
  | _ -> false

(* Accumulator idents from the fold callback's third parameter: a plain
   variable or a tuple of variables. Anything fancier defeats the
   commutativity check and the fold counts as order-sensitive. *)
let rec acc_pattern_ids (p : value general_pattern) =
  match p.pat_desc with
  | Tpat_var (id, _) -> Some [ id ]
  | Tpat_alias (inner, id, _) ->
    Option.map (fun ids -> id :: ids) (acc_pattern_ids inner)
  | Tpat_any -> Some []
  | Tpat_tuple ps ->
    List.fold_left
      (fun acc p ->
        match (acc, acc_pattern_ids p) with
        | Some acc, Some ids -> Some (acc @ ids)
        | _ -> None)
      (Some []) ps
  | _ -> None

(* Peel [n] single-case function layers off a callback literal. *)
let rec take_params n acc e =
  if n = 0 then Some (List.rev acc, e)
  else
    match e.exp_desc with
    | Texp_function { cases = [ { c_lhs; c_rhs; c_guard = None } ]; _ } ->
      take_params (n - 1) (c_lhs :: acc) c_rhs
    | _ -> None

let fold_is_commutative args =
  match positional args with
  | cb :: _tbl :: _init :: _ -> (
    match take_params 3 [] cb with
    | Some ([ _k; _v; accp ], body) -> (
      match acc_pattern_ids accp with
      | Some ids -> commutative ids body
      | None -> false)
    | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The tail-position classification                                    *)

let allows_r7 attrs = Suppress.allows_rule attrs "R7"

(* Does [e], in tail position, evaluate to a raw fold result? *)
let rec classify env e : origin option =
  if allows_r7 e.exp_attributes then None
  else
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> (
      match find_info env id with
      | Some (Raw_value o) -> Some o
      | _ -> None)
    | Texp_let (_, vbs, body) -> classify (bind env vbs) body
    | Texp_sequence (_, e2) -> classify env e2
    | Texp_open (_, body) -> classify env body
    | Texp_ifthenelse (_, t, Some e2) -> (
      match classify env t with Some o -> Some o | None -> classify env e2)
    | Texp_ifthenelse (_, t, None) -> classify env t
    | Texp_match (_, cases, _) ->
      List.find_map (fun c -> classify env c.c_rhs) cases
    | Texp_apply (f, args) -> classify_apply env e.exp_loc f args
    | _ -> None

and classify_apply env loc f args =
  match f.exp_desc with
  | Texp_ident (p, _, _) -> (
    let n = Path.name p in
    if String.equal n "Stdlib.|>" then
      match positional args with
      | [ a; fn ] -> pipe_apply env loc fn a
      | _ -> None
    else if String.equal n "Stdlib.@@" then
      match positional args with
      | [ fn; a ] -> pipe_apply env loc fn a
      | _ -> None
    else if is_sort n then None
    else if is_order_preserving n then
      match positional args with [ a ] -> classify env a | _ -> None
    else if is_fold n then
      if fold_is_commutative args then None else Some { loc; via = None }
    else
      match p with
      | Path.Pident id -> (
        match find_info env id with
        | Some (Raw_helper o) -> Some o
        | _ -> None)
      | _ -> None)
  | _ -> None

(* [a |> f] / [f @@ a]: re-associate into an application of [f]'s head
   so a trailing sort still launders and a trailing helper still flags. *)
and pipe_apply env loc fn a =
  match fn.exp_desc with
  | Texp_ident _ -> classify_apply env loc fn [ (Asttypes.Nolabel, Some a) ]
  | Texp_apply (g, gargs) -> (
    match g.exp_desc with
    | Texp_ident _ ->
      classify_apply env loc g (gargs @ [ (Asttypes.Nolabel, Some a) ])
    | _ -> None)
  | _ -> None

(* Every tail expression of a (possibly curried, possibly multi-case)
   function literal; a non-function value is its own tail. *)
and fn_tails e =
  match e.exp_desc with
  | Texp_function { cases; _ } -> List.concat_map (fun c -> fn_tails c.c_rhs) cases
  | _ -> [ e ]

and summarize env fexpr =
  List.find_map (classify env) (fn_tails fexpr)

and bind env vbs =
  List.fold_left
    (fun env vb ->
      if allows_r7 vb.vb_attributes then env
      else
        match vb.vb_pat.pat_desc with
        | Tpat_var (id, _) -> (
          match vb.vb_expr.exp_desc with
          | Texp_function _ -> (
            match summarize env vb.vb_expr with
            | Some o ->
              (id, Raw_helper { o with via = Some (Ident.name id) }) :: env
            | None -> env)
          | _ -> (
            match classify env vb.vb_expr with
            | Some o -> (id, Raw_value o) :: env
            | None -> env))
        | _ -> env)
    env vbs

(* ------------------------------------------------------------------ *)
(* Module-level walk                                                   *)

let message o =
  match o.via with
  | None ->
    "Hashtbl.fold result escapes the enclosing function in hash order; \
     sort it deterministically before it escapes, or accumulate \
     commutatively (count/sum/min/max)"
  | Some h ->
    Printf.sprintf
      "Hashtbl.fold result escapes in hash order via local helper '%s'; \
       sort it at the escape point or inside the helper" h

let check_binding ~report vb =
  List.iter
    (fun tail ->
      match classify [] tail with
      | Some o -> report ~loc:o.loc (message o)
      | None -> ())
    (fn_tails vb.vb_expr)

let rec check_structure ~report (str : structure) =
  List.iter (check_item ~report) str.str_items

and check_item ~report item =
  match item.str_desc with
  | Tstr_value (_, vbs) ->
    List.iter
      (fun vb ->
        if not (allows_r7 vb.vb_attributes) then check_binding ~report vb)
      vbs
  | Tstr_module mb -> check_module ~report mb.mb_expr
  | Tstr_recmodule mbs ->
    List.iter (fun mb -> check_module ~report mb.mb_expr) mbs
  | _ -> ()

and check_module ~report me =
  match me.mod_desc with
  | Tmod_structure s -> check_structure ~report s
  | Tmod_constraint (me, _, _, _) -> check_module ~report me
  | Tmod_functor (_, me) -> check_module ~report me
  | _ -> ()

let check ~report str = check_structure ~report str
