type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let make ~rule ~(loc : Location.t) ~message =
  let p = loc.loc_start in
  {
    rule;
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    message;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let to_string d =
  Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message

(* Minimal JSON string escaping, same dialect as lib/telemetry/trace.ml:
   we only ever emit ASCII rule ids, paths and prose. *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  Printf.sprintf
    {|{"rule":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (escape d.rule) (escape d.file) d.line d.col (escape d.message)

(* Schema 2: the envelope carries the rule table that produced the
   report (id, name, summary, scope, per-rule finding count), so a
   consumer can render or gate per rule without re-deriving the
   catalogue. [rules] is the configured rule list, in catalogue order. *)
let list_to_json ~(rules : Rules.t list) ds =
  let count_for id =
    List.length (List.filter (fun d -> String.equal d.rule id) ds)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"version\":2,\"count\":%d,\"rules\":["
       (List.length ds));
  List.iteri
    (fun i (r : Rules.t) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n  {\"id\":\"%s\",\"name\":\"%s\",\"summary\":\"%s\",\
            \"scope\":\"%s\",\"findings\":%d}"
           (escape r.id) (escape r.name) (escape r.summary)
           (escape r.scope_doc) (count_for r.id)))
    rules;
  (match rules with [] -> () | _ :: _ -> Buffer.add_char b '\n');
  Buffer.add_string b "],\"diagnostics\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  ";
      Buffer.add_string b (to_json d))
    ds;
  (match ds with [] -> () | _ :: _ -> Buffer.add_char b '\n');
  Buffer.add_string b "]}\n";
  Buffer.contents b
