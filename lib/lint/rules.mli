(** The rule catalogue: ids, prose, and per-directory scoping.

    The checks themselves live in {!Engine}; this module is the data the
    engine, the CLI ([--list-rules]) and the docs all agree on. A rule
    [applies] to a source file based on its project-relative path — the
    scoping encodes which invariants are load-bearing where (e.g. wall
    clock reads are fine in [bin/] but poison determinism in [lib/]). *)

type t = {
  id : string;  (** "R1" .. "R9" *)
  name : string;  (** kebab-case short name, e.g. "no-poly-compare" *)
  summary : string;  (** one-line rationale *)
  applies : string -> bool;
      (** does the rule apply to this project-relative source path? *)
  scope_doc : string;  (** human-readable scope, for [--list-rules] *)
}

val all : t list
(** Every rule, in id order. *)

val find : string -> t option
(** Look up by id (["R1"]) or by name (["no-poly-compare"]). *)

val normalize : string -> string
(** Strip a leading ["./"] and normalize separators, so scoping and
    allowlist matching see the same spelling the compiler recorded. *)
