(* Shared suppression helpers: parsing [@dqr.lint.allow] payloads. Both
   the engine's point checks and the flow analysis consult these, so
   they live outside either. *)

let allow_attr = "dqr.lint.allow"

let split_words s =
  String.split_on_char ',' s
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter_map (fun w ->
         let w = String.trim w in
         if String.equal w "" then None else Some w)

let allows_of_attributes (attrs : Typedtree.attributes) : string list =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if not (String.equal a.attr_name.txt allow_attr) then []
      else
        match a.attr_payload with
        | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
          match e.pexp_desc with
          | Pexp_constant (Pconst_string (s, _, _)) -> (
            match split_words s with [] -> [ "*" ] | ws -> ws)
          | _ -> [ "*" ])
        | _ -> [ "*" ])
    attrs

let allow_matches (rule : Rules.t) keys =
  List.exists
    (fun k ->
      String.equal k "*" || String.equal k rule.Rules.id
      || String.equal k rule.Rules.name)
    keys

(* [allows_rule attrs "R9"] — does this attribute list suppress the
   given rule id (by id, name, wildcard or empty payload)? *)
let allows_rule attrs id =
  match Rules.find id with
  | None -> false
  | Some r -> allow_matches r (allows_of_attributes attrs)
