(* SARIF 2.1.0 emitter, so CI findings land as GitHub code-scanning
   annotations. Hand-rolled like the schema-2 JSON report: one run, one
   driver, the configured rule table, one result per diagnostic. The
   only representational shift is columns — SARIF regions are 1-based
   where the compiler (and our Diagnostic.col) is 0-based. *)

let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

let esc = Diagnostic.escape

let rule_index rules id =
  let rec go i = function
    | [] -> None
    | (r : Rules.t) :: rest ->
      if String.equal r.id id then Some i else go (i + 1) rest
  in
  go 0 rules

let add_rule b i (r : Rules.t) =
  if i > 0 then Buffer.add_char b ',';
  Buffer.add_string b
    (Printf.sprintf
       "\n          {\"id\":\"%s\",\"name\":\"%s\",\
        \"shortDescription\":{\"text\":\"%s\"},\
        \"defaultConfiguration\":{\"level\":\"error\"},\
        \"properties\":{\"scope\":\"%s\"}}"
       (esc r.id) (esc r.name) (esc r.summary) (esc r.scope_doc))

let add_result b rules i (d : Diagnostic.t) =
  if i > 0 then Buffer.add_char b ',';
  let index =
    match rule_index rules d.rule with
    | Some i -> Printf.sprintf "\"ruleIndex\":%d," i
    | None -> ""
  in
  Buffer.add_string b
    (Printf.sprintf
       "\n        {\"ruleId\":\"%s\",%s\"level\":\"error\",\
        \"message\":{\"text\":\"%s\"},\
        \"locations\":[{\"physicalLocation\":{\
        \"artifactLocation\":{\"uri\":\"%s\"},\
        \"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
       (esc d.rule) index (esc d.message) (esc d.file) d.line (d.col + 1))

let to_string ~version ~rules diags =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"$schema\": \"%s\",\n  \"version\": \"2.1.0\",\n"
       schema_uri);
  Buffer.add_string b "  \"runs\": [\n    {\n";
  Buffer.add_string b
    (Printf.sprintf
       "      \"tool\": {\n        \"driver\": {\n\
        \          \"name\": \"dqr-lint\",\n\
        \          \"version\": \"%s\",\n\
        \          \"rules\": [" (esc version));
  List.iteri (fun i r -> add_rule b i r) rules;
  (match rules with [] -> () | _ :: _ -> Buffer.add_string b "\n          ");
  Buffer.add_string b "]\n        }\n      },\n";
  Buffer.add_string b "      \"columnKind\": \"utf16CodeUnits\",\n";
  Buffer.add_string b "      \"results\": [";
  List.iteri (fun i d -> add_result b rules i d) diags;
  (match diags with [] -> () | _ :: _ -> Buffer.add_string b "\n      ");
  Buffer.add_string b "]\n    }\n  ]\n}\n";
  Buffer.contents b
