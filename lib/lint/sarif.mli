(** SARIF 2.1.0 output: one run, the configured rule table as
    [tool.driver.rules], one [result] per diagnostic with a 1-based
    region (our {!Diagnostic.t.col} is 0-based, SARIF columns start at
    1). Suitable for [github/codeql-action/upload-sarif]. *)

val to_string :
  version:string -> rules:Rules.t list -> Diagnostic.t list -> string
(** [to_string ~version ~rules diags] — the full SARIF document;
    [version] is the tool version advertised in [tool.driver].
    Deterministic: same inputs, same bytes. *)
