type read_result = {
  read_key : Dq_storage.Key.t;
  read_value : string;
  read_lc : Dq_storage.Lc.t;
}

type write_result = { write_key : Dq_storage.Key.t; write_lc : Dq_storage.Lc.t }

type api = {
  protocol_name : string;
  submit_read :
    client:int ->
    server:int ->
    ?on_give_up:(unit -> unit) ->
    Dq_storage.Key.t ->
    (read_result -> unit) ->
    unit;
  submit_write :
    client:int ->
    server:int ->
    ?on_give_up:(unit -> unit) ->
    Dq_storage.Key.t ->
    string ->
    (write_result -> unit) ->
    unit;
  crash_server : int -> unit;
  recover_server : int -> unit;
  server_up : int -> bool;
  message_stats : unit -> Dq_net.Msg_stats.t;
  quiesce : unit -> unit;
}

let no_background () = ()
