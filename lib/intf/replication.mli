(** The protocol-independent replicated read/write register interface.

    Every replication protocol in this repository — dual-quorum (with
    and without volume leases), primary/backup, majority quorum, ROWA,
    and ROWA-Async — exposes a cluster as a value of type {!api}: an
    application client node submits a read or write through a chosen
    edge server (the "front end") and receives a completion callback.
    The experiment harness is written once against this interface. *)

type read_result = {
  read_key : Dq_storage.Key.t;
  read_value : string;
  read_lc : Dq_storage.Lc.t; (** logical clock of the write that produced the value *)
}

type write_result = {
  write_key : Dq_storage.Key.t;
  write_lc : Dq_storage.Lc.t; (** logical clock assigned to this write *)
}

type api = {
  protocol_name : string;
  submit_read :
    client:int ->
    server:int ->
    ?on_give_up:(unit -> unit) ->
    Dq_storage.Key.t ->
    (read_result -> unit) ->
    unit;
      (** [submit_read ~client ~server key k] issues a read from
          application-client node [client] through front-end [server];
          [k] fires when the protocol completes the read. The callback
          may never fire if the required replicas stay unreachable.
          [on_give_up] fires instead if the protocol {e explicitly}
          abandons the operation (a bounded retransmission loop
          exhausted its rounds); protocols that retry forever never
          invoke it. *)
  submit_write :
    client:int ->
    server:int ->
    ?on_give_up:(unit -> unit) ->
    Dq_storage.Key.t ->
    string ->
    (write_result -> unit) ->
    unit;
  crash_server : int -> unit;
  recover_server : int -> unit;
  server_up : int -> bool;
  message_stats : unit -> Dq_net.Msg_stats.t;
  quiesce : unit -> unit;
      (** Ask the protocol to stop any periodic background work (e.g.
          proactive lease renewal, anti-entropy) so a simulation can
          drain; used at the end of experiments. *)
}

val no_background : unit -> unit
(** Convenience no-op for protocols without background activity. *)
