(** The event bus: the single channel every layer publishes through.

    A bus is owned by one simulation engine (see [Dq_sim.Engine]); the
    engine stamps each event with its virtual clock via [set_now].
    Sinks are plain callbacks — attach as many as needed, they all see
    every event in emission order.

    Cost discipline: with no sinks attached, {!emit} is a single list
    match and {!subscribed} a pointer comparison. Publishers must guard
    event {e construction} with [if Bus.subscribed bus then ...] so the
    off path allocates nothing; {!emit} itself re-checks, so the guard
    is about allocation, not correctness. *)

type sink = time_ms:float -> Event.t -> unit
(** [time_ms] is virtual time at emission. *)

type t

val create : unit -> t
(** A bus with no sinks and a clock stuck at 0. *)

val set_now : t -> (unit -> float) -> unit
(** Install the virtual-time source used to stamp events. *)

val subscribe : t -> sink -> unit
(** Append a sink; sinks run in subscription order. *)

val clear : t -> unit
(** Detach all sinks. *)

val subscribed : t -> bool
(** [true] iff at least one sink is attached. Guard event construction
    with this. *)

val emit : t -> Event.t -> unit
(** Deliver to every sink, stamped with the current virtual time. A
    no-op (no clock read, no allocation) when no sink is attached. *)

val null : t
(** A shared always-empty bus, for contexts constructed without an
    engine. Never subscribe to it. *)
