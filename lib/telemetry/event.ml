type t =
  | Msg_sent of { src : int; dst : int; label : string; bytes : int; local : bool }
  | Msg_delivered of { src : int; dst : int; label : string }
  | Msg_dropped of { src : int; dst : int; label : string; reason : string }
  | Op_start of { op : int; client : int; kind : string; key : string }
  | Op_complete of {
      op : int;
      client : int;
      kind : string;
      start_ms : float;
      latency_ms : float;
    }
  | Op_served of {
      op : int;
      client : int;
      kind : string;
      key : string;
      lc_count : int;
      lc_node : int;
      start_ms : float;
    }
  | Op_timeout of { op : int; client : int; kind : string }
  | Op_give_up of { op : int; client : int; kind : string }
  | Lease_granted of { node : int; peer : int; volume : int; lease_ms : float; epoch : int }
  | Lease_expired of { node : int; peer : int; volume : int }
  | Inval_through of { node : int; peer : int; key : string }
  | Inval_suppressed of { node : int; key : string }
  | Inval_delayed of { node : int; peer : int; key : string }
  | Epoch_advance of { node : int; peer : int; volume : int; epoch : int }
  | Cache_read of { node : int; key : string; hit : bool }
  | Rpc_round of { node : int; tag : string; round : int }
  | Rpc_give_up of { node : int; tag : string; rounds : int }
  | Link_cut of { src : int; dst : int }
  | Link_uncut of { src : int; dst : int }
  | Node_crash of { node : int }
  | Node_wipe of { node : int }
  | Node_recover of { node : int }
  | Recovery_start of { node : int }
  | Recovery_done of { node : int; bytes : int; objects : int; duration_ms : float }
  | Fault_injected of { label : string }
  | Clock_skew of { node : int; skew : float }
  | Span_begin of { name : string; node : int }
  | Span_end of { name : string; node : int }
  | Note of { src : string; msg : string }

let name = function
  | Msg_sent _ -> "msg_sent"
  | Msg_delivered _ -> "msg_delivered"
  | Msg_dropped _ -> "msg_dropped"
  | Op_start _ -> "op_start"
  | Op_complete _ -> "op_complete"
  | Op_served _ -> "op_served"
  | Op_timeout _ -> "op_timeout"
  | Op_give_up _ -> "op_give_up"
  | Lease_granted _ -> "lease_granted"
  | Lease_expired _ -> "lease_expired"
  | Inval_through _ -> "inval_through"
  | Inval_suppressed _ -> "inval_suppressed"
  | Inval_delayed _ -> "inval_delayed"
  | Epoch_advance _ -> "epoch_advance"
  | Cache_read { hit; _ } -> if hit then "read_hit" else "read_miss"
  | Rpc_round _ -> "rpc_round"
  | Rpc_give_up _ -> "rpc_give_up"
  | Link_cut _ -> "link_cut"
  | Link_uncut _ -> "link_uncut"
  | Node_crash _ -> "node_crash"
  | Node_wipe _ -> "node_wipe"
  | Node_recover _ -> "node_recover"
  | Recovery_start _ -> "recovery_start"
  | Recovery_done _ -> "recovery_done"
  | Fault_injected _ -> "fault_injected"
  | Clock_skew _ -> "clock_skew"
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"
  | Note _ -> "note"

let cat = function
  | Msg_sent _ | Msg_delivered _ | Msg_dropped _ -> "msg"
  | Op_start _ | Op_complete _ | Op_served _ | Op_timeout _ | Op_give_up _ -> "op"
  | Lease_granted _ | Lease_expired _ -> "lease"
  | Inval_through _ | Inval_suppressed _ | Inval_delayed _ | Epoch_advance _ -> "inval"
  | Cache_read _ -> "cache"
  | Rpc_round _ | Rpc_give_up _ -> "rpc"
  | Link_cut _ | Link_uncut _ | Node_crash _ | Node_wipe _ | Node_recover _
  | Recovery_start _ | Recovery_done _ | Fault_injected _ ->
    "fault"
  | Clock_skew _ -> "sim"
  | Span_begin _ | Span_end _ -> "span"
  | Note _ -> "note"

(* The node whose timeline the event belongs to (the Chrome-trace
   [tid]); -1 groups cluster-wide events (faults, notes) on one track. *)
let track = function
  | Msg_sent { src; _ } | Msg_dropped { src; _ } -> src
  | Msg_delivered { dst; _ } -> dst
  | Op_start { client; _ }
  | Op_complete { client; _ }
  | Op_served { client; _ }
  | Op_timeout { client; _ }
  | Op_give_up { client; _ } ->
    client
  | Lease_granted { node; _ }
  | Lease_expired { node; _ }
  | Inval_through { node; _ }
  | Inval_suppressed { node; _ }
  | Inval_delayed { node; _ }
  | Epoch_advance { node; _ }
  | Cache_read { node; _ }
  | Rpc_round { node; _ }
  | Rpc_give_up { node; _ }
  | Node_crash { node }
  | Node_wipe { node }
  | Node_recover { node }
  | Recovery_start { node }
  | Recovery_done { node; _ }
  | Clock_skew { node; _ }
  | Span_begin { node; _ }
  | Span_end { node; _ } ->
    node
  | Link_cut { src; _ } | Link_uncut { src; _ } -> src
  | Fault_injected _ | Note _ -> -1

let pp ppf = function
  | Msg_sent { src; dst; label; bytes; local } ->
    Format.fprintf ppf "%d -> %d %s (%d bytes%s)" src dst label bytes
      (if local then ", local" else "")
  | Msg_delivered { src; dst; label } -> Format.fprintf ppf "%d => %d %s" src dst label
  | Msg_dropped { src; dst; label; reason } ->
    Format.fprintf ppf "%d -x %d %s (%s)" src dst label reason
  | Op_start { op; client; kind; key } ->
    Format.fprintf ppf "op %d: client %d %s %s" op client kind key
  | Op_complete { op; client; kind; latency_ms; _ } ->
    Format.fprintf ppf "op %d: client %d %s done in %.1fms" op client kind latency_ms
  | Op_served { op; client; kind; key; lc_count; lc_node; _ } ->
    Format.fprintf ppf "op %d: client %d %s %s served lc=%d.%d" op client kind key lc_count
      lc_node
  | Op_timeout { op; client; kind } ->
    Format.fprintf ppf "op %d: client %d %s timed out" op client kind
  | Op_give_up { op; client; kind } ->
    Format.fprintf ppf "op %d: client %d %s gave up" op client kind
  | Lease_granted { node; peer; volume; lease_ms; epoch } ->
    Format.fprintf ppf "node %d: volume %d lease granted to %d (%.0fms, epoch %d)" node
      volume peer lease_ms epoch
  | Lease_expired { node; peer; volume } ->
    Format.fprintf ppf "node %d: volume %d lease from %d expired" node volume peer
  | Inval_through { node; peer; key } ->
    Format.fprintf ppf "node %d: write %s from %d -> write through" node key peer
  | Inval_suppressed { node; key } ->
    Format.fprintf ppf "node %d: write %s -> write suppress" node key
  | Inval_delayed { node; peer; key } ->
    Format.fprintf ppf "node %d: delayed invalidation %s queued for %d" node key peer
  | Epoch_advance { node; peer; volume; epoch } ->
    Format.fprintf ppf "node %d: volume %d epoch -> %d for peer %d" node volume epoch peer
  | Cache_read { node; key; hit } ->
    Format.fprintf ppf "node %d: read %s %s" node key (if hit then "hit" else "miss")
  | Rpc_round { node; tag; round } ->
    Format.fprintf ppf "node %d: %s round %d" node tag round
  | Rpc_give_up { node; tag; rounds } ->
    Format.fprintf ppf "node %d: %s gave up after %d rounds" node tag rounds
  | Link_cut { src; dst } -> Format.fprintf ppf "link %d -> %d cut" src dst
  | Link_uncut { src; dst } -> Format.fprintf ppf "link %d -> %d restored" src dst
  | Node_crash { node } -> Format.fprintf ppf "node %d crashed" node
  | Node_wipe { node } -> Format.fprintf ppf "node %d wiped (amnesia)" node
  | Node_recover { node } -> Format.fprintf ppf "node %d recovered" node
  | Recovery_start { node } -> Format.fprintf ppf "node %d: state-transfer sync started" node
  | Recovery_done { node; bytes; objects; duration_ms } ->
    Format.fprintf ppf "node %d: sync done (%d objects, %d bytes, %.1fms)" node objects
      bytes duration_ms
  | Fault_injected { label } -> Format.fprintf ppf "fault: %s" label
  | Clock_skew { node; skew } -> Format.fprintf ppf "node %d: clock skew -> %.2e" node skew
  | Span_begin { name; node } -> Format.fprintf ppf "node %d: %s begin" node name
  | Span_end { name; node } -> Format.fprintf ppf "node %d: %s end" node name
  | Note { src; msg } -> Format.fprintf ppf "[%s] %s" src msg
