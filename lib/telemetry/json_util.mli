(** Shared JSON-emission helpers for the telemetry sinks.

    Hand-rolled (no external dependencies), with stable key order and
    float formatting so emitted documents are golden-test and
    diff-friendly. *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars). *)

val num : float -> string
(** Compact float rendering; NaN/infinities render as [null]. *)

val counts : Buffer.t -> string -> (string * int) list -> unit
(** [counts buf name kvs] appends ["name": {"k": v, ...}]. *)

val histogram : Buffer.t -> string -> Dq_util.Histogram.t -> unit
(** Appends ["name": {"count": n, "p50": .., "p90": .., "p99": ..,
    "buckets": {...}}] — quantiles via {!Dq_util.Histogram.quantile},
    the single interpolation code path. *)
