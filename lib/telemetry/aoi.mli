(** Online age-of-information (AoI) and staleness tracking over the
    telemetry bus (after Zhong et al., {e Minimizing Content Staleness
    in Dynamo-Style Replicated Storage Systems}).

    The sink consumes {!Event.Op_served} events only. Per key it
    maintains two views of freshness:

    - the {b AoI process} of the key's content: the age of the freshest
      completed version grows linearly with virtual time and resets to
      0 whenever a write carrying a fresher logical clock completes —
      the classic saw-tooth, integrated online into a time-averaged and
      a peak age; and
    - the {b reader's view}: each completed read records the
      instantaneous age of the value it actually returned (time since
      that version's write completed) and how many completed writes it
      lagged behind.

    The staleness counters are defined {e exactly} as the offline
    oracle {!Dq_harness.Staleness.measure} defines them — a read is
    stale iff some write superseding the returned version completed
    before the read was invoked — and the test suite holds the two
    equal on fuzzed histories.

    Like every sink, attaching one must not perturb the simulation: the
    sink only observes, and the driver constructs [Op_served] behind
    the usual {!Bus.subscribed} guard. *)

type t

val create : unit -> t

val sink : t -> Bus.sink
(** Feed one event. Only [Op_served] advances state; everything else
    just refreshes the "latest virtual time seen" watermark that closes
    the AoI integral. *)

type summary = {
  keys_tracked : int;
  reads_checked : int;           (** completed reads examined *)
  stale_reads : int;
  stale_fraction : float;        (** [0.] when no reads completed *)
  mean_behind_ms : float;        (** over stale reads only; 0 when none *)
  max_behind_ms : float;
  max_versions_behind : int;
  mean_read_age_ms : float;      (** over all checked reads *)
  max_read_age_ms : float;
  time_avg_age_ms : float;       (** AoI integral / observed span, across keys *)
  peak_age_ms : float;           (** tallest saw-tooth over all keys *)
}

val summary : ?now:float -> t -> summary
(** Pure snapshot; [now] (default: the last event stamp seen) closes
    each key's trailing saw-tooth segment. *)

val read_age_histogram : t -> Dq_util.Histogram.t
(** Instantaneous returned-value age per completed read (ms). *)

val behind_histogram : t -> Dq_util.Histogram.t
(** Time-behind per stale read (ms). *)

val versions_behind_histogram : t -> Dq_util.Histogram.t

val to_json : ?now:float -> t -> string
(** A self-contained JSON object (summary scalars + the three
    distributions, quantiles via {!Dq_util.Histogram.quantile}) — the
    ["aoi"] block of {!Metrics.to_json} and of the bench schema-3
    results. *)
