(** Counter/histogram aggregation — the metrics sink.

    One [Metrics.t] plays two roles:

    - [Dq_net] owns an always-on instance fed directly through
      {!record_msg} (the accounting behind [Msg_stats], whose figure
      tables must not depend on whether telemetry is enabled);
    - {!sink} adapts an instance into a bus sink that additionally
      counts every event by kind and feeds operation latencies into
      per-kind histograms — the [--metrics FILE] output. *)

type t

val create : unit -> t

val record_msg : t -> label:string -> local:bool -> ?bytes:int -> unit -> unit
(** Direct message accounting ([bytes] defaults to 0). Remote and local
    messages are tallied separately, per label. *)

val record_latency : t -> kind:string -> float -> unit
(** Feed an operation latency (ms) into the [kind] histogram
    (["read"] or ["write"]; other kinds are ignored). *)

val merge_into : src:t -> dst:t -> unit
(** Fold [src]'s counters, per-label tables, event counts and latency
    histograms into [dst]. Commutative, so per-partition metrics from
    a parallel run merge into the same aggregate as the serial
    oracle's single instance. *)

val total : t -> int
val remote_total : t -> int
val local_total : t -> int
val remote_bytes : t -> int

val by_label : ?include_local:bool -> t -> (string * int) list
(** Message counts per label, sorted by label. Remote-only by default
    (the overhead model's view); [~include_local:true] folds in local
    deliveries. *)

val local_by_label : t -> (string * int) list
val bytes_by_label : t -> (string * int) list

val event_counts : t -> (string * int) list
(** Per-event-kind counters accumulated via {!sink}, sorted by kind. *)

val event_count : t -> string -> int
(** Count for one event kind ({!Event.name}); 0 if never seen. *)

val read_latency : t -> Dq_util.Histogram.t
val write_latency : t -> Dq_util.Histogram.t

val reset : t -> unit

val sink : t -> Bus.sink
(** Aggregate bus events into [t]: every event bumps its kind counter;
    [Msg_sent] feeds message accounting; [Op_complete] feeds the
    latency histograms. *)

val pp : Format.formatter -> t -> unit

val to_json : ?aoi:Aoi.t -> t -> string
(** The full metrics snapshot as a JSON object (counters, per-label
    tables, event counts, latency histograms with quantiles via
    {!Dq_util.Histogram.quantile}). [?aoi] folds an {!Aoi} sink's
    freshness block in under an ["aoi"] key. *)
