module Histogram = Dq_util.Histogram

(* Default buckets (ms) for age / staleness distributions: freshness on
   the paper's topology ranges from sub-RTT (local read of a value just
   written through the IQS) up to anti-entropy periods in the seconds. *)
let age_buckets = [ 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000. ]

let versions_buckets = [ 1.; 2.; 3.; 5.; 10.; 20. ]

(* Per-key completed-write log and the AoI saw-tooth accumulator.
   [writes] is kept in descending (lc_count, lc_node) order: reads
   mostly return a near-freshest version, so the "writes that supersede
   what this read returned" scan touches a short prefix. *)
type key_state = {
  mutable writes : (int * int * float) list; (* (lc_count, lc_node, end_ms), desc *)
  mutable fresh_count : int;
  mutable fresh_node : int;
  mutable fresh_end : float; (* completion time of the freshest version *)
  mutable first_write : float; (* start of this key's AoI process *)
  mutable area : float; (* integral of age dt up to [fresh_end] *)
  mutable peak : float; (* peak age up to [fresh_end] *)
}

type t = {
  keys : (string, key_state) Hashtbl.t;
  read_age : Histogram.t;
  behind : Histogram.t;
  versions_behind : Histogram.t;
  mutable reads_checked : int;
  mutable stale_reads : int;
  mutable behind_sum : float;
  mutable max_behind : float;
  mutable max_versions_behind : int;
  mutable age_sum : float;
  mutable max_read_age : float;
  mutable last_ms : float; (* latest event stamp seen *)
}

let create () =
  {
    keys = Hashtbl.create 64;
    read_age = Histogram.create ~buckets:age_buckets;
    behind = Histogram.create ~buckets:age_buckets;
    versions_behind = Histogram.create ~buckets:versions_buckets;
    reads_checked = 0;
    stale_reads = 0;
    behind_sum = 0.;
    max_behind = 0.;
    max_versions_behind = 0;
    age_sum = 0.;
    max_read_age = 0.;
    last_ms = 0.;
  }

(* Lexicographic (count, node) order — [Dq_storage.Lc.compare] without
   the dependency on the storage library. *)
let lc_gt (c1 : int) (n1 : int) c2 n2 = c1 > c2 || (c1 = c2 && n1 > n2)

let lc_eq (c1 : int) (n1 : int) c2 n2 = c1 = c2 && n1 = n2

let state t key =
  match Hashtbl.find_opt t.keys key with
  | Some s -> s
  | None ->
    let s =
      {
        writes = [];
        fresh_count = 0;
        fresh_node = 0;
        fresh_end = nan;
        first_write = nan;
        area = 0.;
        peak = 0.;
      }
    in
    Hashtbl.add t.keys key s;
    s

let insert_write s lc_count lc_node end_ms =
  let rec go = function
    | [] -> [ (lc_count, lc_node, end_ms) ]
    | ((c, n, _) as hd) :: tl ->
      if lc_gt lc_count lc_node c n then (lc_count, lc_node, end_ms) :: hd :: tl
      else hd :: go tl
  in
  s.writes <- go s.writes

(* A write completed: it joins the key's completed-write log, and —
   when it carries a fresher version than anything seen — advances the
   AoI saw-tooth: the age of the key's freshest content grew linearly
   from 0 since [fresh_end], so the elapsed gap contributes gap^2/2 of
   area and a gap-sized peak candidate, then resets to 0. A late
   completion of an already-superseded version changes neither. *)
let on_write t ~key ~lc_count ~lc_node ~now =
  let s = state t key in
  insert_write s lc_count lc_node now;
  if Float.is_nan s.first_write then begin
    s.first_write <- now;
    s.fresh_count <- lc_count;
    s.fresh_node <- lc_node;
    s.fresh_end <- now
  end
  else if lc_gt lc_count lc_node s.fresh_count s.fresh_node then begin
    let gap = now -. s.fresh_end in
    s.area <- s.area +. (gap *. gap /. 2.);
    if gap > s.peak then s.peak <- gap;
    s.fresh_count <- lc_count;
    s.fresh_node <- lc_node;
    s.fresh_end <- now
  end

(* A read completed: record the instantaneous age of the value it
   returned (time since that version's write completed; 0 when the
   version is fresher than any completed write — e.g. the write's own
   response is still in flight — or is the initial value), and the
   staleness of the read exactly as the offline oracle defines it:
   completed writes that {e supersede} the returned version and had
   already finished before the read was invoked. Events arrive in
   virtual-time order, so every such write is already in [writes]. *)
let on_read t ~key ~lc_count ~lc_node ~start_ms ~now =
  t.reads_checked <- t.reads_checked + 1;
  let age, missed, latest_missed_end =
    match Hashtbl.find_opt t.keys key with
    | None -> (0., 0, neg_infinity)
    | Some s ->
      let rec scan ws (age, missed, latest) =
        match ws with
        | [] -> (age, missed, latest)
        | (c, n, end_ms) :: tl ->
          if lc_gt c n lc_count lc_node then
            let acc =
              if end_ms <= start_ms then (age, missed + 1, Float.max latest end_ms)
              else (age, missed, latest)
            in
            scan tl acc
          else if lc_eq c n lc_count lc_node then (now -. end_ms, missed, latest)
          else (age, missed, latest)
      in
      scan s.writes (0., 0, neg_infinity)
  in
  let age = Float.max 0. age in
  t.age_sum <- t.age_sum +. age;
  if age > t.max_read_age then t.max_read_age <- age;
  Histogram.add t.read_age age;
  if missed > 0 then begin
    t.stale_reads <- t.stale_reads + 1;
    let behind = now -. latest_missed_end in
    t.behind_sum <- t.behind_sum +. behind;
    if behind > t.max_behind then t.max_behind <- behind;
    if missed > t.max_versions_behind then t.max_versions_behind <- missed;
    Histogram.add t.behind behind;
    Histogram.add t.versions_behind (float_of_int missed)
  end

let sink t : Bus.sink =
 fun ~time_ms ev ->
  if time_ms > t.last_ms then t.last_ms <- time_ms;
  match ev with
  | Event.Op_served { kind = "write"; key; lc_count; lc_node; _ } ->
    on_write t ~key ~lc_count ~lc_node ~now:time_ms
  | Event.Op_served { kind = "read"; key; lc_count; lc_node; start_ms; _ } ->
    on_read t ~key ~lc_count ~lc_node ~start_ms ~now:time_ms
  | _ -> ()

(* {2 Summaries} *)

type summary = {
  keys_tracked : int;
  reads_checked : int;
  stale_reads : int;
  stale_fraction : float;
  mean_behind_ms : float;
  max_behind_ms : float;
  max_versions_behind : int;
  mean_read_age_ms : float;
  max_read_age_ms : float;
  time_avg_age_ms : float;
  peak_age_ms : float;
}

(* Closing the saw-tooth: each key's process runs from its first write
   to [now] (default: the last event seen); the trailing open segment
   contributes its triangle of area and a final peak candidate. Pure —
   [summary] can be taken repeatedly, mid-run or after. *)
let summary ?now t =
  let now = match now with Some n -> n | None -> t.last_ms in
  let area, span, peak =
    Hashtbl.fold
      (fun _ s (area, span, peak) ->
        if Float.is_nan s.first_write then (area, span, peak)
        else begin
          let tail = Float.max 0. (now -. s.fresh_end) in
          ( area +. s.area +. (tail *. tail /. 2.),
            span +. Float.max 0. (now -. s.first_write),
            Float.max peak (Float.max s.peak tail) )
        end)
      t.keys (0., 0., 0.)
  in
  {
    keys_tracked = Hashtbl.length t.keys;
    reads_checked = t.reads_checked;
    stale_reads = t.stale_reads;
    stale_fraction =
      (if t.reads_checked = 0 then 0.
       else float_of_int t.stale_reads /. float_of_int t.reads_checked);
    mean_behind_ms =
      (if t.stale_reads = 0 then 0. else t.behind_sum /. float_of_int t.stale_reads);
    max_behind_ms = t.max_behind;
    max_versions_behind = t.max_versions_behind;
    mean_read_age_ms =
      (if t.reads_checked = 0 then 0. else t.age_sum /. float_of_int t.reads_checked);
    max_read_age_ms = t.max_read_age;
    time_avg_age_ms = (if span <= 0. then 0. else area /. span);
    peak_age_ms = peak;
  }

let read_age_histogram t = t.read_age

let behind_histogram t = t.behind

let versions_behind_histogram t = t.versions_behind

let to_json ?now t =
  let s = summary ?now t in
  let buf = Buffer.create 512 in
  let n = Json_util.num in
  Buffer.add_string buf "{\n";
  Printf.ksprintf (Buffer.add_string buf)
    "    \"keys\": %d,\n    \"reads_checked\": %d,\n    \"stale_reads\": %d,\n\
    \    \"stale_fraction\": %s,\n    \"mean_behind_ms\": %s,\n    \"max_behind_ms\": %s,\n\
    \    \"max_versions_behind\": %d,\n    \"mean_read_age_ms\": %s,\n\
    \    \"max_read_age_ms\": %s,\n    \"time_avg_age_ms\": %s,\n    \"peak_age_ms\": %s,\n\
    \    "
    s.keys_tracked s.reads_checked s.stale_reads
    (n s.stale_fraction) (n s.mean_behind_ms) (n s.max_behind_ms)
    s.max_versions_behind
    (n s.mean_read_age_ms) (n s.max_read_age_ms) (n s.time_avg_age_ms) (n s.peak_age_ms);
  Json_util.histogram buf "read_age_ms" t.read_age;
  Buffer.add_string buf ",\n    ";
  Json_util.histogram buf "behind_ms" t.behind;
  Buffer.add_string buf ",\n    ";
  Json_util.histogram buf "versions_behind" t.versions_behind;
  Buffer.add_string buf "\n  }";
  Buffer.contents buf
