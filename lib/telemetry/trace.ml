(* Chrome trace_event JSON (the format Perfetto / chrome://tracing
   load). Reference: the "Trace Event Format" document — we emit the
   JSON-object form {"traceEvents": [...]} with instant events
   (ph "i", thread-scoped), complete events (ph "X", for operations
   with a known duration) and span begin/end pairs (ph "B"/"E").
   Timestamps are microseconds, so virtual milliseconds scale by
   1000. *)

type t = { buf : Buffer.t; mutable count : int }

let create () = { buf = Buffer.create 4096; count = 0 }

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Compact float: integral values without a trailing dot so the JSON is
   stable and diff-friendly for golden tests. *)
let num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let add_record t json =
  if t.count > 0 then Buffer.add_string t.buf ",\n";
  Buffer.add_string t.buf "  ";
  Buffer.add_string t.buf json;
  t.count <- t.count + 1

let set_process_name t ~pid name =
  add_record t
    (Printf.sprintf
       {|{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"%s"}}|} pid
       (escape name))

(* Per-event display name and args payload. Message and fault events
   surface their protocol label as the Perfetto row name; everything
   else uses the stable kind slug. *)
let name_and_args (ev : Event.t) =
  let open Printf in
  match ev with
  | Msg_sent { src; dst; label; bytes; local } ->
    ( sprintf "send %s" (escape label),
      sprintf {|{"src":%d,"dst":%d,"bytes":%d,"local":%b}|} src dst bytes local )
  | Msg_delivered { src; dst; label } ->
    (sprintf "recv %s" (escape label), sprintf {|{"src":%d,"dst":%d}|} src dst)
  | Msg_dropped { src; dst; label; reason } ->
    ( sprintf "drop %s" (escape label),
      sprintf {|{"src":%d,"dst":%d,"reason":"%s"}|} src dst (escape reason) )
  | Op_start { op; client; kind; key } ->
    ( sprintf "%s start" (escape kind),
      sprintf {|{"op":%d,"client":%d,"key":"%s"}|} op client (escape key) )
  | Op_complete { op; client; kind; latency_ms; _ } ->
    ( escape kind,
      sprintf {|{"op":%d,"client":%d,"latency_ms":%s}|} op client (num latency_ms) )
  | Op_served { op; client; kind; key; lc_count; lc_node; _ } ->
    ( sprintf "%s served" (escape kind),
      sprintf {|{"op":%d,"client":%d,"key":"%s","lc":"%d.%d"}|} op client (escape key)
        lc_count lc_node )
  | Op_timeout { op; client; kind } ->
    (sprintf "%s timeout" (escape kind), sprintf {|{"op":%d,"client":%d}|} op client)
  | Op_give_up { op; client; kind } ->
    (sprintf "%s give-up" (escape kind), sprintf {|{"op":%d,"client":%d}|} op client)
  | Lease_granted { node; peer; volume; lease_ms; epoch } ->
    ( "lease_granted",
      sprintf {|{"node":%d,"peer":%d,"volume":%d,"lease_ms":%s,"epoch":%d}|} node peer
        volume (num lease_ms) epoch )
  | Lease_expired { node; peer; volume } ->
    ("lease_expired", sprintf {|{"node":%d,"peer":%d,"volume":%d}|} node peer volume)
  | Inval_through { node; peer; key } ->
    ("inval_through", sprintf {|{"node":%d,"peer":%d,"key":"%s"}|} node peer (escape key))
  | Inval_suppressed { node; key } ->
    ("inval_suppressed", sprintf {|{"node":%d,"key":"%s"}|} node (escape key))
  | Inval_delayed { node; peer; key } ->
    ("inval_delayed", sprintf {|{"node":%d,"peer":%d,"key":"%s"}|} node peer (escape key))
  | Epoch_advance { node; peer; volume; epoch } ->
    ( "epoch_advance",
      sprintf {|{"node":%d,"peer":%d,"volume":%d,"epoch":%d}|} node peer volume epoch )
  | Cache_read { node; key; hit } ->
    ( (if hit then "read hit" else "read miss"),
      sprintf {|{"node":%d,"key":"%s"}|} node (escape key) )
  | Rpc_round { node; tag; round } ->
    (sprintf "%s round" (escape tag), sprintf {|{"node":%d,"round":%d}|} node round)
  | Rpc_give_up { node; tag; rounds } ->
    (sprintf "%s give-up" (escape tag), sprintf {|{"node":%d,"rounds":%d}|} node rounds)
  | Link_cut { src; dst } -> ("link_cut", sprintf {|{"src":%d,"dst":%d}|} src dst)
  | Link_uncut { src; dst } -> ("link_uncut", sprintf {|{"src":%d,"dst":%d}|} src dst)
  | Node_crash { node } -> ("node_crash", sprintf {|{"node":%d}|} node)
  | Node_wipe { node } -> ("node_wipe", sprintf {|{"node":%d}|} node)
  | Node_recover { node } -> ("node_recover", sprintf {|{"node":%d}|} node)
  | Recovery_start { node } -> ("recovery_start", sprintf {|{"node":%d}|} node)
  | Recovery_done { node; bytes; objects; duration_ms } ->
    ( "recovery_done",
      sprintf {|{"node":%d,"bytes":%d,"objects":%d,"duration_ms":%s}|} node bytes objects
        (num duration_ms) )
  | Fault_injected { label } -> (escape label, {|{}|})
  | Clock_skew { node; skew } ->
    ("clock_skew", sprintf {|{"node":%d,"skew":%s}|} node (num skew))
  | Span_begin { name; node } -> (escape name, sprintf {|{"node":%d}|} node)
  | Span_end { name; node } -> (escape name, sprintf {|{"node":%d}|} node)
  | Note { src; msg } ->
    (sprintf "note %s" (escape src), sprintf {|{"msg":"%s"}|} (escape msg))

let record ?(pid = 0) t ~time_ms ev =
  let name, args = name_and_args ev in
  let cat = Event.cat ev in
  let tid = Event.track ev in
  let ts = time_ms *. 1000. in
  let json =
    match ev with
    | Event.Op_complete { start_ms; latency_ms; _ } ->
      (* A complete event spanning the operation's lifetime. *)
      Printf.sprintf
        {|{"name":"%s","cat":"%s","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":%s}|}
        name cat
        (num (start_ms *. 1000.))
        (num (latency_ms *. 1000.))
        pid tid args
    | Event.Span_begin _ ->
      Printf.sprintf {|{"name":"%s","cat":"%s","ph":"B","ts":%s,"pid":%d,"tid":%d,"args":%s}|}
        name cat (num ts) pid tid args
    | Event.Span_end _ ->
      Printf.sprintf {|{"name":"%s","cat":"%s","ph":"E","ts":%s,"pid":%d,"tid":%d}|} name
        cat (num ts) pid tid
    | _ ->
      Printf.sprintf
        {|{"name":"%s","cat":"%s","ph":"i","ts":%s,"pid":%d,"tid":%d,"s":"t","args":%s}|}
        name cat (num ts) pid tid args
  in
  add_record t json

let sink ?pid t : Bus.sink = fun ~time_ms ev -> record ?pid t ~time_ms ev

let count t = t.count

let contents t = Printf.sprintf "{\"traceEvents\": [\n%s\n]}\n" (Buffer.contents t.buf)

let write_file t path =
  let oc = open_out path in
  output_string oc (contents t);
  close_out oc
