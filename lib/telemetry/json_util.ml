(* Shared hand-rolled JSON emission helpers for the telemetry sinks
   (metrics, AoI). Output discipline: object keys in a fixed order,
   floats through [num] so documents are stable and diff-friendly for
   golden tests and the bench results differ. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let num f =
  if Float.is_nan f || not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let counts buf name cs =
  Printf.ksprintf (Buffer.add_string buf) "%S: {" name;
  List.iteri
    (fun i (label, n) ->
      Printf.ksprintf (Buffer.add_string buf) "%s\"%s\": %d"
        (if i = 0 then "" else ", ")
        (escape label) n)
    cs;
  Buffer.add_string buf "}"

(* A histogram object: total count, quantiles through the one shared
   {!Dq_util.Histogram.quantile} path, then the bucket table. *)
let histogram buf name h =
  let q p = num (Dq_util.Histogram.quantile h p) in
  Printf.ksprintf (Buffer.add_string buf)
    "%S: {\"count\": %d, \"p50\": %s, \"p90\": %s, \"p99\": %s, \"buckets\": {" name
    (Dq_util.Histogram.count h)
    (q 0.5) (q 0.9) (q 0.99);
  List.iteri
    (fun i (label, n) ->
      Printf.ksprintf (Buffer.add_string buf) "%s\"%s\": %d"
        (if i = 0 then "" else ", ")
        (escape label) n)
    (Dq_util.Histogram.bucket_counts h);
  Buffer.add_string buf "}}"
