(** Chrome [trace_event] sink — open the output in Perfetto
    ({:https://ui.perfetto.dev}) or [chrome://tracing] to see a run as
    a timeline: one track (tid) per node/client, instant markers for
    messages / leases / invalidations / faults, and duration slices for
    completed client operations.

    Timestamps are microseconds in the output (virtual milliseconds
    scaled by 1000). For multi-run campaigns pass a distinct [pid] per
    run and name each with {!set_process_name}; Perfetto renders each
    pid as its own process group. *)

type t

val create : unit -> t

val set_process_name : t -> pid:int -> string -> unit
(** Emit a [process_name] metadata record so the pid shows up with a
    human-readable name (e.g. the scenario id). *)

val record : ?pid:int -> t -> time_ms:float -> Event.t -> unit
(** Append one event ([pid] defaults to 0). *)

val sink : ?pid:int -> t -> Bus.sink

val count : t -> int
(** Number of records appended so far (including metadata). *)

val contents : t -> string
(** The complete [{"traceEvents": [...]}] JSON document. *)

val write_file : t -> string -> unit
