module Histogram = Dq_util.Histogram

(* Default latency buckets (ms): spans sub-RTT local hits up to the
   retry/backoff tail. *)
let latency_buckets = [ 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. ]

(* Per-label accounting lives in one cell so the per-message cost is a
   single hashtable lookup, whichever mix of counters the label needs. *)
type cell = { mutable c_remote : int; mutable c_local : int; mutable c_bytes : int }

type t = {
  mutable remote : int;
  mutable local : int;
  mutable bytes : int;
  labels : (string, cell) Hashtbl.t;
  events : (string, int ref) Hashtbl.t;
  read_latency : Histogram.t;
  write_latency : Histogram.t;
}

let create () =
  {
    remote = 0;
    local = 0;
    bytes = 0;
    labels = Hashtbl.create 16;
    events = Hashtbl.create 32;
    read_latency = Histogram.create ~buckets:latency_buckets;
    write_latency = Histogram.create ~buckets:latency_buckets;
  }

let bump table key amount =
  match Hashtbl.find_opt table key with
  | Some r -> r := !r + amount
  | None -> Hashtbl.add table key (ref amount)

let cell t label =
  match Hashtbl.find_opt t.labels label with
  | Some c -> c
  | None ->
    let c = { c_remote = 0; c_local = 0; c_bytes = 0 } in
    Hashtbl.add t.labels label c;
    c

let record_msg t ~label ~local ?(bytes = 0) () =
  let c = cell t label in
  if local then begin
    t.local <- t.local + 1;
    c.c_local <- c.c_local + 1
  end
  else begin
    t.remote <- t.remote + 1;
    t.bytes <- t.bytes + bytes;
    c.c_remote <- c.c_remote + 1;
    c.c_bytes <- c.c_bytes + bytes
  end

let record_latency t ~kind latency_ms =
  match kind with
  | "read" -> Histogram.add t.read_latency latency_ms
  | "write" -> Histogram.add t.write_latency latency_ms
  | _ -> ()

(* Counter addition commutes and every reported table is re-sorted, so
   merging per-partition metrics gives one deterministic aggregate no
   matter the merge order — the parallel engine's metrics equal the
   serial oracle's. *)
let merge_into ~src ~dst =
  dst.remote <- dst.remote + src.remote;
  dst.local <- dst.local + src.local;
  dst.bytes <- dst.bytes + src.bytes;
  Hashtbl.iter
    (fun label c ->
      let d = cell dst label in
      d.c_remote <- d.c_remote + c.c_remote;
      d.c_local <- d.c_local + c.c_local;
      d.c_bytes <- d.c_bytes + c.c_bytes)
    src.labels;
  Hashtbl.iter (fun name r -> bump dst.events name !r) src.events;
  Histogram.merge_into ~src:src.read_latency ~dst:dst.read_latency;
  Histogram.merge_into ~src:src.write_latency ~dst:dst.write_latency

let total t = t.remote + t.local

let remote_total t = t.remote

let local_total t = t.local

let remote_bytes t = t.bytes

let sorted table =
  Hashtbl.fold (fun label r acc -> (label, !r) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Project one counter out of the label cells, dropping labels the
   counter never saw (a label with only local deliveries must not show
   up in the remote-only table, and vice versa). *)
let sorted_cells t value =
  Hashtbl.fold
    (fun label c acc ->
      let v = value c in
      if v > 0 then (label, v) :: acc else acc)
    t.labels []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let by_label ?(include_local = false) t =
  if include_local then sorted_cells t (fun c -> c.c_remote + c.c_local)
  else sorted_cells t (fun c -> c.c_remote)

let local_by_label t = sorted_cells t (fun c -> c.c_local)

(* Byte totals for every label that sent at least one remote message,
   zero-byte labels included (matching the message table's rows). *)
let bytes_by_label t =
  Hashtbl.fold
    (fun label c acc -> if c.c_remote > 0 then (label, c.c_bytes) :: acc else acc)
    t.labels []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let event_counts t = sorted t.events

let event_count t name =
  match Hashtbl.find_opt t.events name with Some r -> !r | None -> 0

let read_latency t = t.read_latency

let write_latency t = t.write_latency

let reset t =
  t.remote <- 0;
  t.local <- 0;
  t.bytes <- 0;
  Hashtbl.reset t.labels;
  Hashtbl.reset t.events

(* The bus-facing aggregator: counts every event by kind, mirrors
   message accounting, and feeds operation latencies into the
   histograms. *)
let sink t : Bus.sink =
 fun ~time_ms:_ ev ->
  bump t.events (Event.name ev) 1;
  match ev with
  | Event.Msg_sent { label; bytes; local; _ } -> record_msg t ~label ~local ~bytes ()
  | Event.Op_complete { kind; latency_ms; _ } -> record_latency t ~kind latency_ms
  | _ -> ()

let pp ppf t =
  Format.fprintf ppf "@[<v>remote=%d local=%d" t.remote t.local;
  List.iter (fun (label, n) -> Format.fprintf ppf "@,  %s: %d" label n) (by_label t);
  Format.fprintf ppf "@]"

(* {2 JSON rendering (hand-rolled, no external dependencies)} *)

let json_counts buf name counts =
  Buffer.add_string buf "  ";
  Json_util.counts buf name counts

let json_histogram buf name h =
  Buffer.add_string buf "  ";
  Json_util.histogram buf name h

let to_json ?aoi t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Printf.ksprintf (Buffer.add_string buf)
    "  \"remote_messages\": %d,\n  \"local_messages\": %d,\n  \"remote_bytes\": %d,\n"
    t.remote t.local t.bytes;
  json_counts buf "messages_by_label" (by_label t);
  Buffer.add_string buf ",\n";
  json_counts buf "bytes_by_label" (bytes_by_label t);
  Buffer.add_string buf ",\n";
  json_counts buf "local_messages_by_label" (local_by_label t);
  Buffer.add_string buf ",\n";
  json_counts buf "events" (event_counts t);
  Buffer.add_string buf ",\n";
  json_histogram buf "read_latency_ms" t.read_latency;
  Buffer.add_string buf ",\n";
  json_histogram buf "write_latency_ms" t.write_latency;
  (match aoi with
  | None -> ()
  | Some a ->
    Buffer.add_string buf ",\n  \"aoi\": ";
    Buffer.add_string buf (Aoi.to_json a));
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
