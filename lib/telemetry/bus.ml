type sink = time_ms:float -> Event.t -> unit

type t = { mutable now : unit -> float; mutable sinks : sink list }

let create () = { now = (fun () -> 0.); sinks = [] }

let set_now t f = t.now <- f

let subscribe t sink = t.sinks <- t.sinks @ [ sink ]

let clear t = t.sinks <- []

(* A tag check, not a polymorphic compare: this is the per-message
   fast-path guard every publisher runs. *)
let subscribed t = match t.sinks with [] -> false | _ :: _ -> true

let emit t ev =
  match t.sinks with
  | [] -> ()
  | sinks ->
    let time_ms = t.now () in
    List.iter (fun f -> f ~time_ms ev) sinks

let null = create ()
