(** The typed telemetry event vocabulary.

    One variant per observable fact in the system, spanning every layer:
    network messages, client operations, leases and invalidations (the
    dual-quorum protocol core), QRPC retry rounds, injected faults, and
    simulator-level happenings. Events carry plain scalars only —
    constructing one allocates a small record and nothing else, and
    callers must only construct events behind a {!Bus.subscribed}
    check so the no-sink path stays allocation-free. *)

type t =
  | Msg_sent of { src : int; dst : int; label : string; bytes : int; local : bool }
  | Msg_delivered of { src : int; dst : int; label : string }
  | Msg_dropped of { src : int; dst : int; label : string; reason : string }
      (** [reason] is one of ["loss"], ["unreachable"], ["node-down"]. *)
  | Op_start of { op : int; client : int; kind : string; key : string }
  | Op_complete of {
      op : int;
      client : int;
      kind : string;
      start_ms : float;
      latency_ms : float;
    }
  | Op_served of {
      op : int;
      client : int;
      kind : string;
      key : string;
      lc_count : int;
      lc_node : int;
      start_ms : float;
    }
      (** Completion of an operation with the {e version} it settled on:
          the logical clock assigned (writes) or observed (reads), as
          plain [(count, node)] scalars ordered lexicographically —
          exactly [Dq_storage.Lc.compare] without the dependency. This
          is what the {!Aoi} freshness sink consumes; [Op_complete]
          stays the latency-only event. *)
  | Op_timeout of { op : int; client : int; kind : string }
  | Op_give_up of { op : int; client : int; kind : string }
  | Lease_granted of { node : int; peer : int; volume : int; lease_ms : float; epoch : int }
  | Lease_expired of { node : int; peer : int; volume : int }
  | Inval_through of { node : int; peer : int; key : string }
  | Inval_suppressed of { node : int; key : string }
  | Inval_delayed of { node : int; peer : int; key : string }
  | Epoch_advance of { node : int; peer : int; volume : int; epoch : int }
  | Cache_read of { node : int; key : string; hit : bool }
  | Rpc_round of { node : int; tag : string; round : int }
  | Rpc_give_up of { node : int; tag : string; rounds : int }
  | Link_cut of { src : int; dst : int }
  | Link_uncut of { src : int; dst : int }
  | Node_crash of { node : int }
  | Node_wipe of { node : int }
      (** The crash was an amnesia crash: the node's durable state is
          gone and recovery will need state transfer. *)
  | Node_recover of { node : int }
  | Recovery_start of { node : int }
      (** A wiped replica began catch-up (entered [Syncing]). *)
  | Recovery_done of { node : int; bytes : int; objects : int; duration_ms : float }
      (** Catch-up finished: [bytes]/[objects] transferred from peers,
          [duration_ms] of virtual time between start and done. *)
  | Fault_injected of { label : string }
  | Clock_skew of { node : int; skew : float }
  | Span_begin of { name : string; node : int }
  | Span_end of { name : string; node : int }
  | Note of { src : string; msg : string }

val name : t -> string
(** Stable snake_case kind slug, used as the metrics counter key. *)

val cat : t -> string
(** Coarse category (["msg"], ["op"], ["lease"], ["inval"], ["cache"],
    ["rpc"], ["fault"], ["sim"], ["span"], ["note"]) — the Chrome-trace
    [cat] field, filterable in Perfetto. *)

val track : t -> int
(** The node/client id whose timeline the event belongs to (the
    Chrome-trace [tid]); [-1] for cluster-wide events. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering (the log sink format). *)
