(* A two-level hierarchical timer wheel over absolute virtual times.

   Level 1 is a ring of [l1_slots] slots of [slot_ms] each; level 2 a
   ring of [l2_slots] slots spanning one full level-1 rotation each.
   The wheel never fires events itself: it stores them until the owner
   advances the boundary, at which point the events of the crossed
   slots are handed back (to be merged into the owner's event heap,
   which provides the exact (time, seq) total order). Events outside
   the covered horizon — or on a float-rounding edge where the slot
   computation disagrees with the boundary comparison — are rejected at
   [add] and must live in the heap: the wheel <-> heap overflow
   handoff. Rejecting edge cases to the heap is always safe; placing an
   event in a too-late slot never is, so membership is decided by the
   slot index itself.

   Slot buffers are grown-once flat arrays reused across drains, so a
   schedule into the wheel allocates nothing in steady state. *)

type 'a slot = {
  mutable times : float array;
  mutable seqs : int array;
  mutable data : 'a array;
  mutable len : int;
}

type 'a t = {
  dummy : 'a;
  slot_ms : float;
  l1 : 'a slot array;
  l2 : 'a slot array;
  mutable base1 : float; (* absolute start of the level-1 window *)
  mutable cursor : int; (* current level-1 slot; boundary = end of it *)
  mutable base2 : float; (* absolute start of the level-2 window *)
  mutable next2 : int; (* next level-2 slot to promote into level 1 *)
  mutable count : int; (* events stored across both levels *)
}

let l1_slots = 256
let l2_slots = 256

let fresh_slot () = { times = [||]; seqs = [||]; data = [||]; len = 0 }

let slot_push w s ~time ~seq x =
  if s.len = Array.length s.data then begin
    let cap = Stdlib.max 8 (2 * s.len) in
    let times = Array.make cap 0. in
    let seqs = Array.make cap 0 in
    let data = Array.make cap w.dummy in
    Array.blit s.times 0 times 0 s.len;
    Array.blit s.seqs 0 seqs 0 s.len;
    Array.blit s.data 0 data 0 s.len;
    s.times <- times;
    s.seqs <- seqs;
    s.data <- data
  end;
  s.times.(s.len) <- time;
  s.seqs.(s.len) <- seq;
  s.data.(s.len) <- x;
  s.len <- s.len + 1

let create ?(slot_ms = 1.0) ~dummy () =
  if slot_ms <= 0. then invalid_arg "Timer_wheel.create: slot_ms must be positive";
  {
    dummy;
    slot_ms;
    l1 = Array.init l1_slots (fun _ -> fresh_slot ());
    l2 = Array.init l2_slots (fun _ -> fresh_slot ());
    base1 = 0.;
    cursor = 0;
    base2 = 0.;
    next2 = 1;
    count = 0;
  }

let length t = t.count

let rotation_ms t = t.slot_ms *. float_of_int l1_slots

(* End of the current level-1 slot: every stored event has
   [time >= boundary], so the owner may freely order anything
   strictly below it. *)
let boundary t = t.base1 +. (t.slot_ms *. float_of_int (t.cursor + 1))

(* Absolute end of the covered horizon (exclusive). *)
let horizon t = t.base2 +. (rotation_ms t *. float_of_int l2_slots)

(* Re-anchor an empty wheel so that [now] sits inside the first slot.
   Callers re-anchor whenever the wheel drains empty, which keeps the
   horizon rolling forward indefinitely. *)
let rebase t ~now =
  if t.count <> 0 then invalid_arg "Timer_wheel.rebase: wheel not empty";
  let slot = Float.of_int (int_of_float (now /. t.slot_ms)) *. t.slot_ms in
  t.base1 <- slot;
  t.cursor <- 0;
  t.base2 <- slot;
  t.next2 <- 1

let add t ~time ~seq x =
  if time < boundary t then false
  else begin
    let rot = rotation_ms t in
    let l1_end = t.base1 +. rot in
    if time < l1_end then begin
      let idx = int_of_float ((time -. t.base1) /. t.slot_ms) in
      if idx <= t.cursor || idx >= l1_slots then false
      else begin
        slot_push t (Array.unsafe_get t.l1 idx) ~time ~seq x;
        t.count <- t.count + 1;
        true
      end
    end
    else if time < horizon t then begin
      let idx = int_of_float ((time -. t.base2) /. rot) in
      if idx < t.next2 || idx >= l2_slots then false
      else begin
        slot_push t (Array.unsafe_get t.l2 idx) ~time ~seq x;
        t.count <- t.count + 1;
        true
      end
    end
    else false
  end

(* Promote level-2 slot [next2] into the level-1 ring and advance the
   level-1 window to cover its span. An event landing one slot early
   from float rounding merely reaches the heap one slot sooner; the
   [add] index checks guarantee no event can land late. *)
let promote t =
  if t.next2 >= l2_slots then invalid_arg "Timer_wheel.promote: horizon exhausted";
  t.base1 <- t.base2 +. (rotation_ms t *. float_of_int t.next2);
  t.cursor <- -1;
  let s = t.l2.(t.next2) in
  t.next2 <- t.next2 + 1;
  for i = 0 to s.len - 1 do
    let time = s.times.(i) in
    let idx = int_of_float ((time -. t.base1) /. t.slot_ms) in
    let idx = Stdlib.min (l1_slots - 1) (Stdlib.max 0 idx) in
    slot_push t t.l1.(idx) ~time ~seq:s.seqs.(i) s.data.(i)
  done;
  s.len <- 0

(* Advance the boundary past the next non-empty slot, handing its
   events to [drain] (unordered within the slot: the caller's heap
   restores the (time, seq) order). Requires [length t > 0]. *)
let advance t ~drain =
  if t.count = 0 then invalid_arg "Timer_wheel.advance: empty wheel";
  let drained = ref false in
  while not !drained do
    if t.cursor + 1 >= l1_slots then promote t
    else begin
      t.cursor <- t.cursor + 1;
      let s = t.l1.(t.cursor) in
      if s.len > 0 then begin
        for i = 0 to s.len - 1 do
          drain ~time:s.times.(i) ~seq:s.seqs.(i) s.data.(i)
        done;
        t.count <- t.count - s.len;
        s.len <- 0;
        drained := true
      end
    end
  done
