(** A two-level hierarchical timer wheel for the dense short-horizon
    timers (lease expiries, retransmissions, per-message deliveries)
    that dominate the engine's event population.

    The wheel stores [(time, seq, 'a)] triples in O(1) per insert.
    It does not order events: the owner pulls the events of crossed
    slots with {!advance} and merges them into its event heap, which
    restores the exact [(time, seq)] total order — so an engine built
    on wheel + heap fires in exactly the same order as one built on
    the heap alone. Events the wheel cannot place (before the current
    {!boundary}, past the {!horizon}, or on a float-rounding edge) are
    rejected by {!add} and must be kept in the heap: the wheel <-> heap
    overflow handoff.

    Default geometry: 256 level-1 slots of [slot_ms] (default 1 ms)
    plus 256 level-2 slots of one level-1 rotation each, covering
    roughly 65.8 s of virtual time from the last {!rebase}. *)

type 'a t

val create : ?slot_ms:float -> dummy:'a -> unit -> 'a t
(** [dummy] fills vacated slot cells (never returned). [slot_ms]
    must be positive. *)

val length : 'a t -> int
(** Events currently stored (including ones logically cancelled by the
    owner — the wheel does not know about cancellation). *)

val boundary : 'a t -> float
(** Every stored event has [time >= boundary t]: anything strictly
    below may be fired without consulting the wheel. *)

val horizon : 'a t -> float
(** Absolute end (exclusive) of the covered range. *)

val add : 'a t -> time:float -> seq:int -> 'a -> bool
(** Store an event; [false] means the wheel cannot hold it (keep it in
    the heap). Never places an event in a slot later than its time. *)

val advance : 'a t -> drain:(time:float -> seq:int -> 'a -> unit) -> unit
(** Move {!boundary} forward past the next non-empty slot, handing that
    slot's events (in unspecified order) to [drain].
    Raises [Invalid_argument] when empty. *)

val rebase : 'a t -> now:float -> unit
(** Re-anchor an empty wheel so [now] falls in its first slot. Raises
    [Invalid_argument] if the wheel is not empty. *)
