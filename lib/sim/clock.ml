type t = {
  engine : Engine.t;
  mutable skew : float;
  mutable offset : float;
  mutable owner : int; (* node id for telemetry; -1 = unattributed *)
}

let perfect engine = { engine; skew = 0.; offset = 0.; owner = -1 }

let make engine ~skew ~offset = { engine; skew; offset; owner = -1 }

let random engine ~rng ~max_drift ~max_offset =
  let skew =
    if max_drift <= 0. then 0.
    else Dq_util.Rng.float rng (2. *. max_drift) -. max_drift
  in
  let offset = if max_offset <= 0. then 0. else Dq_util.Rng.float rng max_offset in
  { engine; skew; offset; owner = -1 }

let set_owner t node = t.owner <- node

let now t = t.offset +. ((1. +. t.skew) *. Engine.now t.engine)

let skew t = t.skew

let set_skew t skew =
  (* Rebase the offset so the local reading is continuous: only the
     rate changes, never the current reading. A rate that stays within
     the assumed drift bound at every instant keeps total divergence
     within the bound over any interval, so lease arithmetic that
     discounts by [max_drift] remains sound across the change. *)
  let reading = now t in
  t.skew <- skew;
  t.offset <- reading -. ((1. +. skew) *. Engine.now t.engine);
  let bus = Engine.telemetry t.engine in
  if Dq_telemetry.Bus.subscribed bus then
    Dq_telemetry.Bus.emit bus (Dq_telemetry.Event.Clock_skew { node = t.owner; skew })

let after t deadline = now t > deadline

let delay_until t local_deadline =
  (* local = offset + (1+skew) * virtual, so the virtual time at which the
     local clock reads [local_deadline] is (local_deadline - offset)/(1+skew). *)
  let virtual_deadline = (local_deadline -. t.offset) /. (1. +. t.skew) in
  Float.max 0. (virtual_deadline -. Engine.now t.engine)
