(** Logging wired to virtual time.

    The libraries log through {!Logs} with per-subsystem sources; this
    module provides a reporter that stamps every message with the
    engine's current virtual time, so protocol traces read like the
    paper's message diagrams:

    {v [  1040.2ms] [dq.iqs] node 3: write v0/o0 lc=2.0 -> write through v}

    Enable with [Sim_log.setup ~level:Logs.Debug engine] (tests and the
    CLI's [--verbose] flag do). Logging defaults to off; the simulator
    behaves identically either way. *)

val reporter : Engine.t -> Logs.reporter
(** A reporter printing to [stdout] with virtual-time stamps. *)

val setup : ?level:Logs.level -> Engine.t -> unit
(** Install {!reporter} and set the global log level. *)

val attach : ?ppf:Format.formatter -> Engine.t -> unit
(** Subscribe a human-readable rendering sink to the engine's telemetry
    bus: every typed event prints as a virtual-time-stamped line in the
    same format as {!reporter}. This is the log "backend" of the
    telemetry bus — unlike {!setup} it needs no [Logs] configuration
    and sees every typed event from every layer. *)
