(** Per-node real-time clocks with bounded drift.

    The paper's system model (Section 2) assumes each node reads a local
    real-time clock and that any two clocks drift apart at a rate of at
    most [max_drift]. We model node [i]'s clock as
    [offset_i + (1 + skew_i) * virtual_time] with [|skew_i| <= max_drift].
    Lease expiry arithmetic in the DQVL protocol compensates for
    [max_drift] exactly as the paper prescribes. *)

type t

val perfect : Engine.t -> t
(** A clock with no skew and no offset (reads virtual time directly). *)

val make : Engine.t -> skew:float -> offset:float -> t
(** An explicitly skewed clock. *)

val random : Engine.t -> rng:Dq_util.Rng.t -> max_drift:float -> max_offset:float -> t
(** Skew uniform in [\[-max_drift, max_drift\]], offset uniform in
    [\[0, max_offset\]]. *)

val set_owner : t -> int -> unit
(** Attribute this clock to a node id so telemetry events it emits
    (skew changes) land on that node's timeline. Defaults to [-1]. *)

val now : t -> float
(** The node-local reading of the current virtual time. *)

val skew : t -> float

val set_skew : t -> float -> unit
(** Change the clock's drift rate {e continuously}: the current local
    reading is preserved (the offset is rebased) and only the rate at
    which the clock diverges from virtual time changes. Fault injection
    uses this for clock-skew bumps; keeping every rate within the
    configured [max_drift] bound keeps the protocol's drift-compensated
    lease arithmetic sound. *)

val after : t -> float -> bool
(** [after t deadline] is [now t > deadline]: has this node's local
    clock passed [deadline]? *)

val delay_until : t -> float -> float
(** Virtual-time delay until this node's local clock reads the given
    local time ([0.] if already past). Used to schedule local-clock
    deadlines, e.g. lease expiry timers. *)
