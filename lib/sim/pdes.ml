(* Conservative barrier-synchronous parallel discrete-event simulation
   (YAWNS-style windowing over Chandy–Misra lookahead).

   The event space is split into [n] partitions, each owning a full
   {!Engine} — its own clock, heap, wheel, RNG stream and telemetry
   bus — so partitions share no mutable state. Execution proceeds in
   windows: with [tmin] the global minimum next-event time, every
   partition may safely fire all events with time strictly below
   [tmin + lookahead], because any message a partition emits while at
   local time [s >= tmin] arrives no earlier than [s + lookahead >=
   tmin + lookahead]. Cross-partition messages travel through
   single-producer single-consumer per-(src, dst) mailboxes and are
   flushed into the destination engines at the barrier between
   windows, sorted by (time, src partition, per-channel sequence) so
   the destination's tie-breaking sequence numbers — and hence the
   entire run — do not depend on domain interleaving. Running the
   windows serially in partition order is therefore bit-identical to
   running them on a pool: the serial mode is the verification oracle
   for the parallel mode. *)

type msg = { at : float; src : int; mseq : int; fn : unit -> unit }

(* One direction of one (src, dst) pair. Written only by src's worker
   (ring pushes, overflow, mseq), read only at barriers where workers
   are quiescent. *)
type channel = {
  ring : msg Dq_par.Spsc.t;
  mutable overflow : msg list; (* newest first; drained at the barrier *)
  mutable mseq : int;
}

type t = {
  engines : Engine.t array;
  channels : channel array array; (* channels.(dst).(src) *)
  lookahead : float;
  mutable windows : int;
}

let create ?(seed = 1L) ?(channel_capacity = 1024) ~lookahead n_partitions =
  if n_partitions < 1 then invalid_arg "Pdes.create: need at least one partition";
  if not (lookahead > 0.) then invalid_arg "Pdes.create: lookahead must be positive";
  let root = Dq_util.Rng.create seed in
  (* Engine seeds derive from the root stream in partition order, so the
     whole ensemble is a pure function of [seed]. *)
  let engines =
    Array.init n_partitions (fun _ -> Engine.create ~seed:(Dq_util.Rng.int64 root) ())
  in
  let dummy_msg = { at = 0.; src = -1; mseq = -1; fn = ignore } in
  let channels =
    Array.init n_partitions (fun _ ->
        Array.init n_partitions (fun _ ->
            {
              ring = Dq_par.Spsc.create ~dummy:dummy_msg channel_capacity;
              overflow = [];
              mseq = 0;
            }))
  in
  { engines; channels; lookahead; windows = 0 }

let n_partitions t = Array.length t.engines

let engine t i = t.engines.(i)

let lookahead t = t.lookahead

let windows t = t.windows

let total_events t =
  Array.fold_left (fun acc e -> acc + Engine.events_executed e) 0 t.engines

let post t ~src ~dst ~time fn =
  if src = dst then ignore (Engine.schedule_at t.engines.(src) ~time fn)
  else begin
    let now = Engine.now t.engines.(src) in
    (* Float-exact conservative guard: callers compute [time] as
       [now +. delay] with [delay >= lookahead], and float addition is
       monotone, so [time >= now +. lookahead >= tmin +. lookahead]
       — the message cannot land inside the current window. *)
    if not (time >= now +. t.lookahead) then
      invalid_arg
        (Printf.sprintf
           "Pdes.post: arrival %g from partition %d at %g violates lookahead %g" time
           src now t.lookahead);
    let ch = t.channels.(dst).(src) in
    let m = { at = time; src; mseq = ch.mseq; fn } in
    ch.mseq <- ch.mseq + 1;
    if not (Dq_par.Spsc.push ch.ring m) then ch.overflow <- m :: ch.overflow
  end

let cmp_msg a b =
  let c = Float.compare a.at b.at in
  if c <> 0 then c
  else
    let c = Int.compare a.src b.src in
    if c <> 0 then c else Int.compare a.mseq b.mseq

(* Barrier flush: move every queued message into its destination
   engine. The sort gives a total order independent of how the ring
   and overflow interleaved across windows; [schedule_at] then assigns
   destination sequence numbers in that order, making same-time
   firings deterministic. Runs on the coordinator with all workers
   quiescent. *)
let flush t =
  let n = Array.length t.engines in
  for dst = 0 to n - 1 do
    let acc = ref [] in
    let inbox = t.channels.(dst) in
    for src = 0 to n - 1 do
      let ch = inbox.(src) in
      ignore (Dq_par.Spsc.drain ch.ring (fun m -> acc := m :: !acc));
      (match ch.overflow with
      | [] -> ()
      | ov ->
        acc := List.rev_append ov !acc;
        ch.overflow <- [])
    done;
    match !acc with
    | [] -> ()
    | ms ->
      let eng = t.engines.(dst) in
      List.iter
        (fun m -> ignore (Engine.schedule_at eng ~time:m.at m.fn))
        (List.sort cmp_msg ms)
  done

let next_global t =
  let best = ref Float.infinity in
  Array.iter
    (fun e ->
      match Engine.next_time e with
      | Some time when time < !best -> best := time
      | Some _ | None -> ())
    t.engines;
  if !best = Float.infinity then None else Some !best

let run ?pool t =
  let n = Array.length t.engines in
  let parts = Array.init n (fun i -> i) in
  let continue_ = ref true in
  while !continue_ do
    flush t;
    match next_global t with
    | None -> continue_ := false
    | Some tmin ->
      let limit = tmin +. t.lookahead in
      t.windows <- t.windows + 1;
      let run_window i = Engine.run_before t.engines.(i) ~limit in
      (match pool with
      | Some pool -> ignore (Dq_par.Pool.map_array pool run_window parts)
      | None -> Array.iter run_window parts)
  done
