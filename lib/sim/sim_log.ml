let reporter engine =
  let report src _level ~over k msgf =
    msgf (fun ?header ?tags fmt ->
        ignore header;
        ignore tags;
        let k _ =
          over ();
          k ()
        in
        Format.kfprintf k Format.std_formatter
          ("[%9.1fms] [%s] " ^^ fmt ^^ "@.")
          (Engine.now engine) (Logs.Src.name src))
  in
  { Logs.report }

let setup ?(level = Logs.Debug) engine =
  Logs.set_reporter (reporter engine);
  Logs.set_level (Some level)

(* The same human-readable rendering, as a telemetry sink: every typed
   bus event prints as one virtual-time-stamped line. This supersedes
   the Logs reporter above (kept for the few remaining free-text
   sources) — [attach] sees protocol, network, and harness events
   without any Logs configuration. *)
let attach ?(ppf = Format.std_formatter) engine =
  Dq_telemetry.Bus.subscribe (Engine.telemetry engine) (fun ~time_ms ev ->
      Format.fprintf ppf "[%9.1fms] [%s] %a@." time_ms (Dq_telemetry.Event.cat ev)
        Dq_telemetry.Event.pp ev)
