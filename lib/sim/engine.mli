(** The discrete-event simulation engine.

    Virtual time is a float number of seconds starting at 0. Events
    scheduled for the same instant fire in scheduling order (a strictly
    increasing sequence number breaks ties), which makes runs
    deterministic. All simulator randomness must be drawn from {!rng} (or
    generators split from it) so a run is a pure function of the seed. *)

type t

type handle
(** A scheduled event, usable to cancel it. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] makes an engine with virtual time 0. Default seed
    is [1L]. *)

val now : t -> float
(** Current virtual time in seconds. *)

val telemetry : t -> Dq_telemetry.Bus.t
(** The engine's telemetry bus. Every component built on this engine
    publishes its typed events here, stamped with the engine's virtual
    clock; with no sink subscribed the bus is free. *)

val rng : t -> Dq_util.Rng.t
(** The engine's root random stream. *)

val split_rng : t -> Dq_util.Rng.t
(** A fresh independent random stream (see {!Dq_util.Rng.split}). *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay]. [delay] must be
    non-negative. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Absolute-time variant; [time] must not be in the past. *)

val cancel : handle -> unit
(** Cancelling a fired or already-cancelled event is a no-op. *)

val is_pending : handle -> bool

val pending_events : t -> int
(** Number of not-yet-fired, not-cancelled events. *)

val step : t -> bool
(** Fire the next event. Returns [false] if the queue was empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Fire events until the queue empties, or virtual time would exceed
    [until], or [max_events] have fired. With [until], time is advanced
    to exactly [until] on return. *)

val run_while : t -> (unit -> bool) -> unit
(** [run_while t cond] fires events while [cond ()] holds and the queue
    is non-empty. [cond] is checked before each event. *)

val run_before : t -> limit:float -> unit
(** Fire every event with time strictly below [limit], leaving the
    clock at the last fired event. This is the PDES window primitive:
    events at or past [limit] stay queued, and the partition can still
    accept cross-partition work scheduled inside the next window. *)

val next_time : t -> float option
(** Time of the next event that will actually fire (skipping cancelled
    events), or [None] if nothing is pending. *)

val events_executed : t -> int
(** Total events fired since creation. *)
