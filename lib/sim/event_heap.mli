(** A monomorphic binary min-heap keyed by [(time : float, seq : int)] —
    the event queue of the simulation engine, specialised for its hot
    loop.

    Unlike {!Heap}, which orders elements with a user-supplied closure
    (forcing an indirect call and, in practice, polymorphic [compare] on
    every sift step), this heap stores its keys in two flat arrays — an
    unboxed [float array] of times and an [int array] of sequence
    numbers — and compares them with primitive float/int comparisons.
    Payloads ride along in a third array and are never inspected.

    Ordering is by ascending time, ties broken by ascending sequence
    number, which is exactly the engine's deterministic event order. *)

type 'a t

val create : dummy:'a -> 'a t
(** [create ~dummy] makes an empty heap. [dummy] fills unused payload
    slots (so popped payloads are not retained); it is never returned. *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val peek : 'a t -> 'a option
(** Payload of the smallest key without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the payload of the smallest key. *)
