type 'a t = {
  mutable times : float array; (* unboxed float keys *)
  mutable seqs : int array;
  mutable data : 'a array;
  mutable len : int; (* slots 0 .. len-1 form a heap *)
  dummy : 'a;
}

let create ~dummy = { times = [||]; seqs = [||]; data = [||]; len = 0; dummy }

let size t = t.len

let is_empty t = t.len = 0

(* Both operands are statically floats/ints, so these compile to primitive
   (monomorphic) comparisons — no closure, no polymorphic compare. *)
let less t i j =
  let ti = t.times.(i) and tj = t.times.(j) in
  ti < tj || (ti = tj && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let time = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- time;
  let seq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- seq;
  let x = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- x

let ensure_capacity t =
  if t.len = Array.length t.data then begin
    let cap = Stdlib.max 16 (2 * t.len) in
    let times = Array.make cap 0. in
    let seqs = Array.make cap 0 in
    let data = Array.make cap t.dummy in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.seqs 0 seqs 0 t.len;
    Array.blit t.data 0 data 0 t.len;
    t.times <- times;
    t.seqs <- seqs;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let push t ~time ~seq x =
  ensure_capacity t;
  let i = t.len in
  t.times.(i) <- time;
  t.seqs.(i) <- seq;
  t.data.(i) <- x;
  t.len <- i + 1;
  sift_up t i

let peek t = if t.len = 0 then None else Some t.data.(0)

let rec sift_down t i =
  let l = (2 * i) + 1 in
  let r = l + 1 in
  let smallest = if l < t.len && less t l i then l else i in
  let smallest = if r < t.len && less t r smallest then r else smallest in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    let last = t.len - 1 in
    t.len <- last;
    t.times.(0) <- t.times.(last);
    t.seqs.(0) <- t.seqs.(last);
    t.data.(0) <- t.data.(last);
    t.data.(last) <- t.dummy;
    if last > 0 then sift_down t 0;
    Some top
  end
