type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
  live : int ref; (* shared with the owning engine *)
}

type handle = event

type t = {
  mutable clock : float;
  mutable next_seq : int;
  live : int ref; (* pending (not cancelled, not fired) events *)
  queue : event Event_heap.t;
  root_rng : Dq_util.Rng.t;
  bus : Dq_telemetry.Bus.t;
}

let create ?(seed = 1L) () =
  (* The dummy only fills vacated heap slots; it is never scheduled. *)
  let dummy = { time = 0.; seq = -1; action = ignore; cancelled = true; live = ref 0 } in
  let t =
    {
      clock = 0.;
      next_seq = 0;
      live = ref 0;
      queue = Event_heap.create ~dummy;
      root_rng = Dq_util.Rng.create seed;
      bus = Dq_telemetry.Bus.create ();
    }
  in
  Dq_telemetry.Bus.set_now t.bus (fun () -> t.clock);
  t

let now t = t.clock

let telemetry t = t.bus

let rng t = t.root_rng

let split_rng t = Dq_util.Rng.split t.root_rng

let schedule_at t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time t.clock);
  let ev = { time; seq = t.next_seq; action = f; cancelled = false; live = t.live } in
  t.next_seq <- t.next_seq + 1;
  incr t.live;
  Event_heap.push t.queue ~time ~seq:ev.seq ev;
  ev

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

(* [live] is decremented exactly once per event: at cancel time, or when
   the event fires. Popping an already-cancelled event does not touch it. *)
let cancel ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    decr ev.live
  end

let is_pending ev = not ev.cancelled

let pending_events t = !(t.live)

let step t =
  let rec next () =
    match Event_heap.pop t.queue with
    | None -> false
    | Some ev when ev.cancelled -> next ()
    | Some ev ->
      t.clock <- ev.time;
      ev.cancelled <- true;
      decr t.live;
      ev.action ();
      true
  in
  next ()

(* Drop cancelled events from the top so [Heap.peek] reflects the next
   event that will actually fire. *)
let rec purge_cancelled t =
  match Event_heap.peek t.queue with
  | Some ev when ev.cancelled ->
    ignore (Event_heap.pop t.queue);
    purge_cancelled t
  | Some _ | None -> ()

let run ?until ?max_events t =
  let fired = ref 0 in
  let budget_ok () =
    match max_events with None -> true | Some m -> !fired < m
  in
  let horizon_ok () =
    purge_cancelled t;
    match until with
    | None -> true
    | Some limit -> (
      match Event_heap.peek t.queue with
      | None -> false
      | Some ev -> ev.time <= limit)
  in
  let rec loop () =
    if budget_ok () && horizon_ok () then
      if step t then begin
        incr fired;
        loop ()
      end
  in
  loop ();
  match until with
  | Some limit when t.clock < limit -> t.clock <- limit
  | Some _ | None -> ()

let run_while t cond =
  let rec loop () = if cond () && step t then loop () in
  loop ()
