type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
  live : int ref; (* shared with the owning engine *)
}

type handle = event

(* Pending events live in two places: the hierarchical timer wheel
   (O(1) insert for the dense near-horizon timers) and the event heap
   (imminent events — below the wheel's boundary — plus anything the
   wheel rejected: far-future overflow and float-edge cases). [refill]
   migrates wheel slots into the heap as the boundary advances, so the
   heap's (time, seq) order remains the exact global firing order and
   the wheel never changes observable behaviour. *)
type t = {
  mutable clock : float;
  mutable next_seq : int;
  live : int ref; (* pending (not cancelled, not fired) events *)
  queue : event Event_heap.t;
  wheel : event Timer_wheel.t;
  mutable fired : int; (* events executed since creation *)
  root_rng : Dq_util.Rng.t;
  bus : Dq_telemetry.Bus.t;
}

let create ?(seed = 1L) () =
  (* The dummy only fills vacated heap/wheel slots; it is never scheduled. *)
  let dummy = { time = 0.; seq = -1; action = ignore; cancelled = true; live = ref 0 } in
  let t =
    {
      clock = 0.;
      next_seq = 0;
      live = ref 0;
      queue = Event_heap.create ~dummy;
      wheel = Timer_wheel.create ~dummy ();
      fired = 0;
      root_rng = Dq_util.Rng.create seed;
      bus = Dq_telemetry.Bus.create ();
    }
  in
  Dq_telemetry.Bus.set_now t.bus (fun () -> t.clock);
  t

let now t = t.clock

let telemetry t = t.bus

let rng t = t.root_rng

let split_rng t = Dq_util.Rng.split t.root_rng

let events_executed t = t.fired

let schedule_at t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time t.clock);
  let ev = { time; seq = t.next_seq; action = f; cancelled = false; live = t.live } in
  t.next_seq <- t.next_seq + 1;
  incr t.live;
  if Timer_wheel.length t.wheel = 0 then Timer_wheel.rebase t.wheel ~now:t.clock;
  if not (Timer_wheel.add t.wheel ~time ~seq:ev.seq ev) then
    Event_heap.push t.queue ~time ~seq:ev.seq ev;
  ev

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

(* [live] is decremented exactly once per event: at cancel time, or when
   the event fires. Popping an already-cancelled event does not touch it. *)
let cancel ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    decr ev.live
  end

let is_pending ev = not ev.cancelled

let pending_events t = !(t.live)

(* Migrate wheel slots into the heap until the heap's minimum is
   strictly below the wheel boundary (and hence the global minimum),
   or the wheel empties. *)
let refill t =
  let continue_ = ref (Timer_wheel.length t.wheel > 0) in
  while !continue_ do
    (match Event_heap.peek t.queue with
    | Some ev when ev.time < Timer_wheel.boundary t.wheel -> continue_ := false
    | Some _ | None ->
      Timer_wheel.advance t.wheel ~drain:(fun ~time ~seq ev ->
          Event_heap.push t.queue ~time ~seq ev));
    if Timer_wheel.length t.wheel = 0 then continue_ := false
  done

let step t =
  let rec next () =
    refill t;
    match Event_heap.pop t.queue with
    | None -> false
    | Some ev when ev.cancelled -> next ()
    | Some ev ->
      t.clock <- ev.time;
      ev.cancelled <- true;
      decr t.live;
      t.fired <- t.fired + 1;
      ev.action ();
      true
  in
  next ()

(* The time of the next event that will actually fire, dropping
   cancelled events from the heap top so [Event_heap.peek] reflects
   it. *)
let rec next_time t =
  refill t;
  match Event_heap.peek t.queue with
  | None -> None
  | Some ev when ev.cancelled ->
    ignore (Event_heap.pop t.queue);
    next_time t
  | Some ev -> Some ev.time

let run ?until ?max_events t =
  let fired = ref 0 in
  let budget_ok () =
    match max_events with None -> true | Some m -> !fired < m
  in
  let horizon_ok () =
    match until with
    | None -> true
    | Some limit -> (
      match next_time t with None -> false | Some time -> time <= limit)
  in
  let rec loop () =
    if budget_ok () && horizon_ok () then
      if step t then begin
        incr fired;
        loop ()
      end
  in
  loop ();
  match until with
  | Some limit when t.clock < limit -> t.clock <- limit
  | Some _ | None -> ()

let run_while t cond =
  let rec loop () = if cond () && step t then loop () in
  loop ()

(* PDES window execution: fire events strictly below [limit], leaving
   the clock at the last fired event (never advanced to [limit], so a
   partition can still accept cross-partition posts inside the next
   window). *)
let run_before t ~limit =
  let rec loop () =
    match next_time t with
    | Some time when time < limit ->
      ignore (step t);
      loop ()
    | Some _ | None -> ()
  in
  loop ()
