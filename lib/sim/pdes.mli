(** Conservative parallel discrete-event simulation over partitioned
    engines.

    The event space is split into partitions (by site or volume), each
    owning a private {!Engine} — clock, heap, timer wheel, RNG stream
    and telemetry bus. Execution proceeds in barrier-synchronous
    windows of width {!lookahead} past the global minimum next-event
    time: within a window every partition advances independently, and
    cross-partition messages — which by the conservative guard cannot
    arrive inside the window that produced them — are flushed into
    destination engines at the barrier, in an order independent of
    domain interleaving.

    Running windows serially in partition order is bit-identical to
    running them on a {!Dq_par.Pool}: pass [?pool] to {!run} for
    parallel execution, omit it for the serial oracle. See DESIGN.md
    §"Parallel engine". *)

type t

val create : ?seed:int64 -> ?channel_capacity:int -> lookahead:float -> int -> t
(** [create ~lookahead n] builds [n] partitions. [lookahead] (seconds
    of virtual time, must be positive) is the minimum cross-partition
    message latency — for a WAN topology, the smallest delay-matrix
    entry between nodes in different partitions
    (see {!Dq_net.Pnet.lookahead}). Engine seeds derive from [seed]
    (default [1L]) in partition order. [channel_capacity] (default
    1024) sizes each mailbox ring; overflow degrades to a list, never
    drops. *)

val n_partitions : t -> int

val engine : t -> int -> Engine.t
(** The engine owned by a partition. Schedule the partition's initial
    events here; during {!run}, partition [i]'s events must touch only
    partition [i]'s state. *)

val lookahead : t -> float

val post : t -> src:int -> dst:int -> time:float -> (unit -> unit) -> unit
(** [post t ~src ~dst ~time fn] schedules [fn] at virtual time [time]
    on partition [dst], called from partition [src]'s running code.
    When [src = dst] this is a direct [schedule_at]. Otherwise [time]
    must be at least [lookahead] past [src]'s clock (compute it as
    [now +. delay] with [delay >= lookahead]); raises
    [Invalid_argument] when the conservative bound is violated. The
    callback runs on [dst]'s domain: it must only touch [dst]'s state
    (no mutation of state captured from [src]). *)

val run : ?pool:Dq_par.Pool.t -> t -> unit
(** Run until every partition is quiescent and all mailboxes are
    empty. With [pool], windows execute on the pool's domains; without
    it, serially in partition order — both produce bit-identical
    histories, metrics and RNG streams. *)

val windows : t -> int
(** Barrier windows executed so far. *)

val total_events : t -> int
(** Sum of {!Engine.events_executed} across partitions. *)
