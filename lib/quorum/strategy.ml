module Qs = Quorum_system

type dist = {
  quorums : int list array;
  probs : float array;
  cumulative : float array; (* cumulative.(i) = sum probs.(0..i) *)
}

type kind = Implicit | Explicit of dist

type t = { system : Qs.t; mode : Qs.mode; kind : kind }

let system t = t.system

let mode t = t.mode

let is_default t = match t.kind with Implicit -> true | Explicit _ -> false

let default system mode = { system; mode; kind = Implicit }

let default_read system = default system Qs.Read

let default_write system = default system Qs.Write

let explicit system mode weighted_quorums =
  (match weighted_quorums with
  | [] -> invalid_arg "Strategy.explicit: empty distribution"
  | _ :: _ -> ());
  let weighted_quorums =
    List.filter (fun (_, p) -> p <> 0.) weighted_quorums
  in
  List.iter
    (fun (q, p) ->
      if p < 0. || not (Float.is_finite p) then
        invalid_arg "Strategy.explicit: probabilities must be finite and non-negative";
      if not (Qs.is_quorum_list system mode q) then
        invalid_arg
          (Printf.sprintf "Strategy.explicit: [%s] is not a %s quorum of %s"
             (String.concat ";" (List.map string_of_int q))
             (match mode with Qs.Read -> "read" | Qs.Write -> "write")
             (Qs.name system)))
    weighted_quorums;
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. weighted_quorums in
  if total <= 0. then invalid_arg "Strategy.explicit: probabilities sum to zero";
  let quorums = Array.of_list (List.map fst weighted_quorums) in
  let probs = Array.of_list (List.map (fun (_, p) -> p /. total) weighted_quorums) in
  let cumulative = Array.make (Array.length probs) 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cumulative.(i) <- !acc)
    probs;
  (* Guard the sampler against rounding: the last bucket absorbs it. *)
  cumulative.(Array.length cumulative - 1) <- 1.;
  { system; mode; kind = Explicit { quorums; probs; cumulative } }

let uniform system mode =
  let quorums = Qs.quorums system mode in
  explicit system mode (List.map (fun q -> (q, 1.)) quorums)

let uniform_read system = uniform system Qs.Read

let uniform_write system = uniform system Qs.Write

let distribution t =
  match t.kind with
  | Implicit -> None
  | Explicit { quorums; probs; _ } ->
    Some (List.combine (Array.to_list quorums) (Array.to_list probs))

let support t =
  match t.kind with
  | Implicit -> None
  | Explicit { quorums; _ } -> Some (Array.to_list quorums)

let sample t rng =
  match t.kind with
  | Implicit -> Qs.choose t.system t.mode rng
  | Explicit { quorums; cumulative; _ } ->
    let u = Dq_util.Rng.float rng 1.0 in
    (* First index with cumulative.(i) > u. *)
    let n = Array.length cumulative in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) > u then hi := mid else lo := mid + 1
    done;
    quorums.(!lo)

(* --- Exact computations (explicit strategies only) ----------------------- *)

let require_explicit t what =
  match t.kind with
  | Explicit e -> e
  | Implicit ->
    invalid_arg
      (Printf.sprintf
         "Strategy.%s: the default (implicit) strategy has no closed-form \
          distribution; use Strategy.uniform or Strategy.explicit"
         what)

let node_load t id =
  let e = require_explicit t "node_load" in
  let acc = ref 0. in
  Array.iteri
    (fun i q -> if List.mem id q then acc := !acc +. e.probs.(i))
    e.quorums;
  !acc

let load t =
  ignore (require_explicit t "load");
  List.fold_left (fun acc id -> Float.max acc (node_load t id)) 0. (Qs.members t.system)

let capacity t = 1. /. load t

let expected_latency t ~latency_ms =
  let e = require_explicit t "expected_latency" in
  let acc = ref 0. in
  Array.iteri
    (fun i q ->
      let worst = List.fold_left (fun m id -> Float.max m (latency_ms id)) 0. q in
      acc := !acc +. (e.probs.(i) *. worst))
    e.quorums;
  !acc

let expected_size t =
  let e = require_explicit t "expected_size" in
  let acc = ref 0. in
  Array.iteri
    (fun i q -> acc := !acc +. (e.probs.(i) *. float_of_int (List.length q)))
    e.quorums;
  !acc

let pp ppf t =
  let mode = match t.mode with Qs.Read -> "read" | Qs.Write -> "write" in
  match t.kind with
  | Implicit -> Format.fprintf ppf "default-%s(%s)" mode (Qs.name t.system)
  | Explicit { quorums; probs; _ } ->
    Format.fprintf ppf "%s(%s){" mode (Qs.name t.system);
    Array.iteri
      (fun i q ->
        Format.fprintf ppf (if i = 0 then "[%s]:%.3f" else " [%s]:%.3f")
          (String.concat ";" (List.map string_of_int q))
          probs.(i))
      quorums;
    Format.fprintf ppf "}"
