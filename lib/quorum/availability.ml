type mode = Quorum_system.mode = Read | Write

let predicate qs mode =
  match mode with
  | Read -> fun ~present -> Quorum_system.is_read_quorum qs ~present
  | Write -> fun ~present -> Quorum_system.is_write_quorum qs ~present

(* Member ids are distinct but arbitrary ints; [holds ~present] queries
   membership by id, so the bit-index lookup it implies must be O(1) —
   built once per call, not rediscovered by a linear scan inside the 2^n
   inner loop. Ids are almost always small and dense (0..n-1), where a
   direct array beats hashing; the Hashtbl handles sparse/negative ids. *)
let bit_index_table members =
  let max_id = ref (-1) in
  let min_id = ref max_int in
  Array.iter
    (fun id ->
      if id > !max_id then max_id := id;
      if id < !min_id then min_id := id)
    members;
  let n = Array.length members in
  if n > 0 && !min_id >= 0 && !max_id < (4 * n) + 64 then begin
    let idx = Array.make (!max_id + 1) (-1) in
    Array.iteri (fun i id -> idx.(id) <- i) members;
    fun id -> idx.(id)
  end
  else begin
    let tbl = Hashtbl.create (2 * n) in
    Array.iteri (fun i id -> Hashtbl.replace tbl id i) members;
    fun id -> Hashtbl.find tbl id
  end

(* Exact enumeration over live/dead states of the members, with a
   per-member failure probability. [want_failure] selects whether we
   accumulate the probability of states with no quorum (unavailability)
   or with a quorum (availability). *)
let enumerate qs ~mode ~p ~want_failure =
  let member_array = Array.of_list (Quorum_system.members qs) in
  let n = Array.length member_array in
  if n > 24 then invalid_arg "Availability: quorum system too large for enumeration";
  let holds = predicate qs mode in
  let index_of = bit_index_table member_array in
  let fail = Array.map p member_array in
  let live = Array.map (fun pf -> 1. -. pf) fail in
  let acc = ref 0. in
  for mask = 0 to (1 lsl n) - 1 do
    let present id = mask land (1 lsl index_of id) <> 0 in
    let has_quorum = holds ~present in
    if has_quorum <> want_failure then begin
      let prob = ref 1. in
      for i = 0 to n - 1 do
        prob := !prob *. (if mask land (1 lsl i) <> 0 then live.(i) else fail.(i))
      done;
      acc := !acc +. !prob
    end
  done;
  !acc

let unavailability_p qs ~mode ~p = enumerate qs ~mode ~p ~want_failure:true

let availability_p qs ~mode ~p = enumerate qs ~mode ~p ~want_failure:false

let is_uniform_threshold qs mode =
  match Quorum_system.counting_thresholds qs with
  | None -> None
  | Some (read, write) ->
    let n = Quorum_system.size qs in
    let k = match mode with Read -> read | Write -> write in
    Some (n, k)

let unavailability qs ~mode ~p =
  if p <= 0. then 0.
  else if p >= 1. then 1.
  else
    match is_uniform_threshold qs mode with
    | Some (n, k) ->
      (* Up-count X ~ Binomial(n, 1-p); unavailable iff X < k. *)
      Dq_util.Combin.binomial_tail_le ~n ~p:(1. -. p) (k - 1)
    | None -> enumerate qs ~mode ~p:(fun _ -> p) ~want_failure:true

let availability qs ~mode ~p =
  if p <= 0. then 1.
  else if p >= 1. then 0.
  else
    match is_uniform_threshold qs mode with
    | Some (n, k) -> Dq_util.Combin.binomial_tail_ge ~n ~p:(1. -. p) k
    | None -> enumerate qs ~mode ~p:(fun _ -> p) ~want_failure:false

let min_availability qs ~p =
  Float.min (availability qs ~mode:Read ~p) (availability qs ~mode:Write ~p)

let max_unavailability qs ~p =
  Float.max (unavailability qs ~mode:Read ~p) (unavailability qs ~mode:Write ~p)

let unavailability_mc qs ~mode ~p ~rng ~samples =
  if samples <= 0 then invalid_arg "Availability: samples must be positive";
  let members = Array.of_list (Quorum_system.members qs) in
  let n = Array.length members in
  let holds = predicate qs mode in
  let index_of = bit_index_table members in
  let up = Array.make n false in
  let failures = ref 0 in
  let present id = up.(index_of id) in
  for _ = 1 to samples do
    for i = 0 to n - 1 do
      up.(i) <- not (Dq_util.Rng.bernoulli rng p)
    done;
    if not (holds ~present) then incr failures
  done;
  float_of_int !failures /. float_of_int samples
