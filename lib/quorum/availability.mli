(** Analytical availability of quorum systems.

    Following the paper's model (Section 4.2): each node is independently
    failed with probability [p] ("including server crashes and network
    failures"), and an operation is available iff the set of live nodes
    contains the required quorum. Unavailability is computed directly as
    a sum of failure-state probabilities (never as [1. -. availability]),
    so values down to 1e-300 carry full relative precision — the paper
    plots unavailability on a log scale. *)

type mode = Quorum_system.mode = Read | Write

val availability : Quorum_system.t -> mode:mode -> p:float -> float
(** Probability that a quorum of live nodes exists. *)

val unavailability : Quorum_system.t -> mode:mode -> p:float -> float
(** [1 - availability], computed in probability space. Threshold systems
    use closed-form binomial tails; other systems are evaluated by exact
    enumeration over the 2^n live/dead states (requires [size <= 24]). *)

val enumerate :
  Quorum_system.t -> mode:mode -> p:(int -> float) -> want_failure:bool -> float
(** The exact enumeration itself, generalized to a {e per-node} failure
    probability [p id] — the oracle the {!Optimizer}'s frontier is
    cross-checked against. Sums, over all 2^n live/dead states, the
    probability of states without ([want_failure:true]) or with
    ([want_failure:false]) a [mode] quorum. Requires [size <= 24]. *)

val unavailability_p : Quorum_system.t -> mode:mode -> p:(int -> float) -> float
(** [enumerate ~want_failure:true]: unavailability under heterogeneous
    per-node failure probabilities. *)

val availability_p : Quorum_system.t -> mode:mode -> p:(int -> float) -> float

val unavailability_mc :
  Quorum_system.t -> mode:mode -> p:float -> rng:Dq_util.Rng.t -> samples:int -> float
(** Monte-Carlo estimate for systems too large to enumerate: the
    fraction of sampled live/dead states with no quorum. Standard error
    is about [sqrt (u (1-u) / samples)], so it only resolves
    unavailabilities down to roughly [10 / samples]. *)

val min_availability : Quorum_system.t -> p:float -> float
(** [min] of read and write availability — the paper uses
    min(av_rq, av_wq) compositions for DQVL. *)

val max_unavailability : Quorum_system.t -> p:float -> float
