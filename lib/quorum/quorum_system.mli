(** Quorum systems: which sets of replicas may serve a read or a write.

    A quorum system is defined over a list of member node ids. The
    fundamental operations are the two predicates — does a set of
    responders contain a read (write) quorum? — plus the {e explicit}
    view of the system: the enumerated antichain of minimal quorums
    ({!read_quorums}, {!write_quorums}), which {!Strategy} turns into
    probability distributions and {!Optimizer} searches over.

    Constructions provided (all from the paper and its references):
    threshold (Gifford-style voting with read/write thresholds),
    majority, ROWA (read-one/write-all), weighted voting, and the grid
    protocol of Cheung, Ahamad and Ammar. The dual-quorum protocol
    composes two of these: an input quorum system (IQS, typically
    majority) and an output quorum system (OQS, typically
    read-one/write-all over the edge servers).

    All quorum predicates are monotone: adding responders never
    destroys a quorum. The enumeration and strategy machinery rely on
    this. *)

type t

type mode = Read | Write

val name : t -> string

val members : t -> int list

val size : t -> int

val mem : t -> int -> bool

val is_read_quorum : t -> present:(int -> bool) -> bool
(** Does the set characterized by [present] contain a read quorum? *)

val is_write_quorum : t -> present:(int -> bool) -> bool

val is_quorum : t -> mode -> present:(int -> bool) -> bool
(** [is_read_quorum] or [is_write_quorum], selected by [mode]. *)

val is_read_quorum_list : t -> int list -> bool

val is_write_quorum_list : t -> int list -> bool

val is_quorum_list : t -> mode -> int list -> bool

val min_read_size : t -> int
(** Cardinality of the smallest read quorum. *)

val min_write_size : t -> int

val min_quorum_size : t -> mode -> int

(** {2 Enumeration}

    The explicit representation: the antichain of {e minimal} quorums
    (no proper subset of a listed set is itself a quorum). Every quorum
    of the system is a superset of a listed one, so intersection
    properties of the full system follow from the minimal sets. *)

val enumeration_bound : int
(** Largest member count the exhaustive enumeration accepts (16). *)

val read_quorums : t -> int list list
(** All minimal read quorums, each sorted in member order, in a
    deterministic order. Raises [Invalid_argument] when
    [size t > enumeration_bound]. *)

val write_quorums : t -> int list list

val quorums : t -> mode -> int list list

val check_intersection :
  ?rw_overlap:int ->
  ?ww_overlap:int ->
  read_quorums:int list list ->
  write_quorums:int list list ->
  unit ->
  (unit, string) result
(** The generalized intersection predicate every construction must
    instantiate: each read quorum overlaps each write quorum in at
    least [rw_overlap] members (default 1) and write quorums pairwise
    overlap in at least [ww_overlap] (default 1). Regular/atomic
    register protocols need overlap 1; masking (Byzantine) quorum
    systems will instantiate it with [2f+1], erasure-coded ones with
    their reconstruction threshold. *)

(** {2 Randomized selection}

    These are the {e legacy} samplers, kept as the default
    {!Strategy}'s sampling path (bit-identical RNG streams). Their
    distributions are construction-specific and {b not} uniform over
    minimal quorums in general:

    - threshold: uniform over all minimal (size-[read]/[write]) quorums;
    - grid read: one uniform row pick per column — uniform over minimal
      read quorums;
    - grid write: a uniform full column plus one uniform row pick per
      remaining column (the sampled set may contain a second full
      column, so outcomes are not exactly uniform over distinct sets);
    - weighted: a uniform random permutation is accumulated until the
      vote target is reached, which over-selects high-vote members
      relative to the uniform distribution over minimal quorums and can
      return non-minimal sets.

    For an unbiased choice use [Strategy.uniform], which samples
    uniformly over the enumerated minimal quorums. *)

val choose_read : t -> Dq_util.Rng.t -> int list
(** A random read quorum, drawn per the construction-specific
    distribution documented above. *)

val choose_write : t -> Dq_util.Rng.t -> int list

val choose : t -> mode -> Dq_util.Rng.t -> int list

(** {2 Constructions} *)

val threshold : name:string -> members:int list -> read:int -> write:int -> t
(** Any [read] members form a read quorum, any [write] members a write
    quorum. Requires [1 <= read, write <= n], [read + write > n] (every
    read quorum intersects every write quorum) and [2 * write > n]
    (write quorums intersect each other, needed to order writes). *)

val majority : int list -> t
(** Threshold with read = write = floor(n/2) + 1. *)

val rowa : int list -> t
(** Read-one / write-all: threshold with read = 1, write = n. *)

val weighted : name:string -> members:(int * int) list -> read:int -> write:int -> t
(** Gifford-style weighted voting (the paper's reference [12]):
    [members] pairs node ids with vote counts; a read (write) quorum is
    any set holding at least [read] ([write]) votes. Requires
    [read + write > total votes] and [2 * write > total votes]. *)

val grid : rows:int -> cols:int -> int list -> t
(** The grid protocol: members arranged row-major in a [rows] x [cols]
    grid. A read quorum is one node from each column; a write quorum is
    a full column plus one node from each other column. Requires
    [rows * cols = List.length members]. *)

val counting_thresholds : t -> (int * int) option
(** [Some (read, write)] iff the system is counting-based: any [read]
    members form a read quorum and any [write] members a write quorum.
    Grid and weighted systems return [None]. Lets {!Availability} use
    closed forms. *)

val validate : t -> (unit, string) result
(** Exhaustively check (for [size t <= enumeration_bound]) the
    intersection properties via {!check_intersection} over the
    enumerated minimal quorums; larger systems rely on their
    construction invariants. Used in tests. *)

val pp : Format.formatter -> t -> unit
