(** Read/write strategies: probability distributions over quorums.

    Following {e Read-Write Quorum Systems Made Practical} (Whittaker
    et al.), a strategy pairs a quorum system with a distribution over
    its quorums. The sampling path is seed-deterministic (all
    randomness flows through {!Dq_util.Rng}), and explicit strategies
    support exact load / capacity / expected-latency computations —
    the quantities the {!Optimizer} trades along its Pareto frontier.

    Two flavours:

    - the {b default} (implicit) strategy wraps the construction's
      legacy sampler ({!Quorum_system.choose_read} /
      [choose_write]) and consumes the RNG stream bit-identically to
      the pre-strategy code, so default-configured simulations are
      byte-identical;
    - {b explicit} strategies carry an enumerated distribution (one
      RNG draw per sample, inverse-CDF), constructed by
      {!explicit}, {!uniform}, or the optimizer. *)

type t

val default : Quorum_system.t -> Quorum_system.mode -> t
(** The construction's legacy sampler (see the distribution notes in
    {!Quorum_system.choose_read}). Sampling consumes the RNG exactly
    as [Quorum_system.choose] does. *)

val default_read : Quorum_system.t -> t

val default_write : Quorum_system.t -> t

val uniform : Quorum_system.t -> Quorum_system.mode -> t
(** Uniform over the enumerated minimal quorums — the unbiased
    selection the legacy weighted/grid samplers only approximate.
    Requires [size <= Quorum_system.enumeration_bound]. *)

val uniform_read : Quorum_system.t -> t

val uniform_write : Quorum_system.t -> t

val explicit : Quorum_system.t -> Quorum_system.mode -> (int list * float) list -> t
(** An explicit distribution; weights are validated non-negative and
    normalized, zero-weight quorums are dropped, and every listed set
    must satisfy the system's quorum predicate for [mode].
    Raises [Invalid_argument] otherwise. *)

val system : t -> Quorum_system.t

val mode : t -> Quorum_system.mode

val is_default : t -> bool

val sample : t -> Dq_util.Rng.t -> int list
(** Draw a quorum. Explicit strategies consume exactly one
    [Rng.float] per sample. *)

val distribution : t -> (int list * float) list option
(** The explicit distribution ([None] for default strategies, whose
    construction-specific distributions have no closed form here). *)

val support : t -> int list list option
(** Quorums with non-zero probability. *)

(** {2 Exact computations}

    Defined for explicit strategies; raise [Invalid_argument] on
    default strategies (convert with {!uniform} or {!explicit}). *)

val node_load : t -> int -> float
(** Probability the node participates in a sampled quorum. *)

val load : t -> float
(** Max over members of {!node_load} — Naor & Wool's load. *)

val capacity : t -> float
(** [1 / load]: relative throughput ceiling of the busiest node. *)

val expected_latency : t -> latency_ms:(int -> float) -> float
(** Expectation over quorums of the slowest member's latency (a
    quorum completes when its last member responds). *)

val expected_size : t -> float
(** Expected sampled-quorum cardinality (messages per operation). *)

val pp : Format.formatter -> t -> unit
