module Qs = Quorum_system

type node = { id : int; fail_prob : float; latency_ms : float }

type metrics = {
  load : float;
  capacity : float;
  latency_ms : float;
  fault_tolerance : int;
  read_unavailability : float;
  write_unavailability : float;
}

type point = {
  system : Qs.t;
  votes : (int * int) list;
  read_votes : int;
  write_votes : int;
  kind : string;
  read_strategy : Strategy.t;
  write_strategy : Strategy.t;
  metrics : metrics;
}

type result = {
  nodes : node list;
  read_fraction : float;
  max_votes : int;
  candidates : int;
  truncated : bool;
  frontier : point list;
}

(* --- Candidate generation ------------------------------------------------- *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* All vote vectors in [1, max_votes]^n with gcd 1 (scaled copies define
   the same quorum sets), in odometer order for determinism. *)
let vote_vectors ~n ~max_votes =
  let v = Array.make n 1 in
  let out = ref [] in
  let rec next i =
    if i < 0 then false
    else if v.(i) < max_votes then begin
      v.(i) <- v.(i) + 1;
      Array.fill v (i + 1) (n - i - 1) 1;
      true
    end
    else next (i - 1)
  in
  let continue = ref true in
  while !continue do
    if Array.fold_left gcd 0 v = 1 then out := Array.copy v :: !out;
    continue := next (n - 1)
  done;
  List.rev !out

let signature ~read_quorums ~write_quorums =
  let part qs =
    String.concat "|" (List.map (fun q -> String.concat "," (List.map string_of_int q)) qs)
  in
  part read_quorums ^ "#" ^ part write_quorums

(* --- Strategy optimization ------------------------------------------------ *)

(* Minimize the worst-node load over joint (read, write) strategies —
   a zero-sum game between the strategy player (columns: quorums) and
   an adversary picking the busiest node. Solved by multiplicative
   weights on the adversary side with exact best responses, then
   averaging the responses into a mixed strategy; deterministic, and
   within O(sqrt(log n / T)) of the LP optimum. *)
let load_optimal_strategies ~read_fraction ~members ~read_quorums ~write_quorums =
  let n = Array.length members in
  let idx = Hashtbl.create (2 * n) in
  Array.iteri (fun i id -> Hashtbl.replace idx id i) members;
  let indices q = List.map (Hashtbl.find idx) q in
  let rq = Array.of_list (List.map indices read_quorums) in
  let wq = Array.of_list (List.map indices write_quorums) in
  let rounds = 600 in
  let eta = Float.sqrt (8. *. Float.log (float_of_int (max 2 n)) /. float_of_int rounds) in
  let weights = Array.make n 1. in
  let counts_r = Array.make (Array.length rq) 0. in
  let counts_w = Array.make (Array.length wq) 0. in
  let best_response quorums =
    let best = ref 0 and best_score = ref Float.infinity in
    Array.iteri
      (fun qi q ->
        let score = List.fold_left (fun acc i -> acc +. weights.(i)) 0. q in
        if score < !best_score then begin
          best := qi;
          best_score := score
        end)
      quorums;
    !best
  in
  for _ = 1 to rounds do
    let ri = best_response rq and wi = best_response wq in
    counts_r.(ri) <- counts_r.(ri) +. 1.;
    counts_w.(wi) <- counts_w.(wi) +. 1.;
    let bump coeff q =
      List.iter (fun i -> weights.(i) <- weights.(i) *. Float.exp (eta *. coeff)) q
    in
    bump read_fraction rq.(ri);
    bump (1. -. read_fraction) wq.(wi);
    (* Renormalize so long runs cannot overflow. *)
    let wmax = Array.fold_left Float.max 0. weights in
    if wmax > 1e100 then Array.iteri (fun i w -> weights.(i) <- w /. wmax) weights
  done;
  let to_dist quorums counts =
    let qs = Array.of_list quorums in
    let total = Array.fold_left ( +. ) 0. counts in
    let out = ref [] in
    Array.iteri (fun i c -> if c > 0. then out := (qs.(i), c /. total) :: !out) counts;
    List.rev !out
  in
  (to_dist read_quorums counts_r, to_dist write_quorums counts_w)

(* Deterministic point mass on the quorum whose slowest member is
   fastest (first in enumeration order on ties). *)
let latency_optimal ~latency quorums =
  let worst q = List.fold_left (fun m id -> Float.max m (latency id)) 0. q in
  let best =
    List.fold_left
      (fun acc q ->
        match acc with
        | Some (_, b) when b <= worst q -> acc
        | Some _ | None -> Some (q, worst q))
      None quorums
  in
  match best with Some (q, _) -> [ (q, 1.) ] | None -> invalid_arg "Optimizer: no quorums"

(* --- Objective evaluation ------------------------------------------------- *)

(* P(no minimal quorum fully live), from the quorum list itself — an
   independent path from Availability.enumerate's predicate walk, which
   the frontier is cross-checked against. *)
let unavailability_from_quorums ~nodes ~quorums =
  let n = Array.length nodes in
  let idx = Hashtbl.create (2 * n) in
  Array.iteri (fun i nd -> Hashtbl.replace idx nd.id i) nodes;
  let masks =
    List.map
      (List.fold_left (fun m id -> m lor (1 lsl Hashtbl.find idx id)) 0)
      quorums
  in
  let acc = ref 0. in
  for mask = 0 to (1 lsl n) - 1 do
    if not (List.exists (fun q -> q land mask = q) masks) then begin
      let prob = ref 1. in
      for i = 0 to n - 1 do
        prob :=
          !prob *. (if mask land (1 lsl i) <> 0 then 1. -. nodes.(i).fail_prob
                    else nodes.(i).fail_prob)
      done;
      acc := !acc +. !prob
    end
  done;
  !acc

(* Fewest failures that wipe out every quorum: enough votes must die to
   drop the survivors below the threshold, and the cheapest way (in
   node count) is to kill the largest votes first. *)
let fault_tolerance ~votes ~total ~threshold =
  let sorted = List.sort (fun a b -> Int.compare b a) (List.map snd votes) in
  let target = total - threshold + 1 in
  let rec kill acc count = function
    | _ when acc >= target -> count
    | [] -> count (* unreachable: total >= target *)
    | v :: rest -> kill (acc + v) (count + 1) rest
  in
  kill 0 0 sorted - 1

let evaluate ~node_arr ~read_fraction ~latency ~system ~votes ~read_votes ~write_votes
    ~read_quorums ~write_quorums ~kind dists =
  let read_dist, write_dist = dists in
  let read_strategy = Strategy.explicit system Qs.Read read_dist in
  let write_strategy = Strategy.explicit system Qs.Write write_dist in
  let load =
    List.fold_left
      (fun acc id ->
        Float.max acc
          ((read_fraction *. Strategy.node_load read_strategy id)
          +. ((1. -. read_fraction) *. Strategy.node_load write_strategy id)))
      0. (Qs.members system)
  in
  let latency_ms =
    (read_fraction *. Strategy.expected_latency read_strategy ~latency_ms:latency)
    +. ((1. -. read_fraction) *. Strategy.expected_latency write_strategy ~latency_ms:latency)
  in
  let total = List.fold_left (fun acc (_, v) -> acc + v) 0 votes in
  let ft_read = fault_tolerance ~votes ~total ~threshold:read_votes in
  let ft_write = fault_tolerance ~votes ~total ~threshold:write_votes in
  let metrics =
    {
      load;
      capacity = 1. /. load;
      latency_ms;
      fault_tolerance = min ft_read ft_write;
      read_unavailability = unavailability_from_quorums ~nodes:node_arr ~quorums:read_quorums;
      write_unavailability =
        unavailability_from_quorums ~nodes:node_arr ~quorums:write_quorums;
    }
  in
  { system; votes; read_votes; write_votes; kind; read_strategy; write_strategy; metrics }

(* --- Pareto filtering ----------------------------------------------------- *)

let dominates a b =
  a.metrics.load <= b.metrics.load
  && a.metrics.latency_ms <= b.metrics.latency_ms
  && a.metrics.fault_tolerance >= b.metrics.fault_tolerance
  && (a.metrics.load < b.metrics.load
     || a.metrics.latency_ms < b.metrics.latency_ms
     || a.metrics.fault_tolerance > b.metrics.fault_tolerance)

let pareto points =
  List.filter (fun p -> not (List.exists (fun q -> dominates q p) points)) points

(* --- Search --------------------------------------------------------------- *)

let search ?(read_fraction = 0.9) ?(max_votes = 3) ?(max_systems = 20_000) ~nodes () =
  (match nodes with [] -> invalid_arg "Optimizer.search: no nodes" | _ :: _ -> ());
  if List.length nodes > Qs.enumeration_bound then
    invalid_arg "Optimizer.search: too many nodes to enumerate quorums";
  List.iter
    (fun nd ->
      if nd.fail_prob < 0. || nd.fail_prob >= 1. then
        invalid_arg "Optimizer.search: fail_prob must be in [0, 1)";
      if nd.latency_ms < 0. then invalid_arg "Optimizer.search: negative latency")
    nodes;
  if read_fraction < 0. || read_fraction > 1. then
    invalid_arg "Optimizer.search: read_fraction must be in [0, 1]";
  if max_votes < 1 then invalid_arg "Optimizer.search: max_votes must be >= 1";
  let node_arr = Array.of_list nodes in
  let n = Array.length node_arr in
  let latency =
    let tbl = Hashtbl.create (2 * n) in
    List.iter (fun nd -> Hashtbl.replace tbl nd.id nd.latency_ms) nodes;
    Hashtbl.find tbl
  in
  let members = Array.map (fun nd -> nd.id) node_arr in
  let seen = Hashtbl.create 1024 in
  let candidates = ref 0 in
  let truncated = ref false in
  let points = ref [] in
  let consider votes_arr read_votes write_votes =
    if !candidates >= max_systems then truncated := true
    else begin
      let votes = List.mapi (fun i v -> (members.(i), v)) (Array.to_list votes_arr) in
      let name =
        Printf.sprintf "wv[%s]r%dw%d"
          (String.concat "," (List.map (fun (_, v) -> string_of_int v) votes))
          read_votes write_votes
      in
      let system = Qs.weighted ~name ~members:votes ~read:read_votes ~write:write_votes in
      let read_quorums = Qs.read_quorums system in
      let write_quorums = Qs.write_quorums system in
      let key = signature ~read_quorums ~write_quorums in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        incr candidates;
        let eval =
          evaluate ~node_arr ~read_fraction ~latency ~system ~votes ~read_votes
            ~write_votes ~read_quorums ~write_quorums
        in
        let load_opt =
          eval ~kind:"load-optimal"
            (load_optimal_strategies ~read_fraction ~members ~read_quorums ~write_quorums)
        in
        let lat_opt =
          eval ~kind:"latency-optimal"
            (latency_optimal ~latency read_quorums, latency_optimal ~latency write_quorums)
        in
        points := load_opt :: lat_opt :: !points
      end
    end
  in
  List.iter
    (fun votes_arr ->
      let total = Array.fold_left ( + ) 0 votes_arr in
      for write_votes = (total / 2) + 1 to total do
        for read_votes = total - write_votes + 1 to total do
          consider votes_arr read_votes write_votes
        done
      done)
    (vote_vectors ~n ~max_votes);
  let frontier = pareto !points in
  let frontier =
    List.sort
      (fun a b ->
        match Float.compare a.metrics.load b.metrics.load with
        | 0 -> (
          match Float.compare a.metrics.latency_ms b.metrics.latency_ms with
          | 0 -> (
            match String.compare (Qs.name a.system) (Qs.name b.system) with
            | 0 -> String.compare a.kind b.kind
            | c -> c)
          | c -> c)
        | c -> c)
      frontier
  in
  { nodes; read_fraction; max_votes; candidates = !candidates; truncated = !truncated;
    frontier }

let winner ?(min_fault_tolerance = 1) result =
  let eligible =
    List.filter
      (fun p -> p.metrics.fault_tolerance >= min_fault_tolerance)
      result.frontier
  in
  let pool = match eligible with [] -> result.frontier | _ :: _ -> eligible in
  List.fold_left
    (fun acc p ->
      match acc with
      | Some best
        when best.metrics.load < p.metrics.load
             || (best.metrics.load = p.metrics.load
                && best.metrics.latency_ms <= p.metrics.latency_ms) ->
        acc
      | Some _ | None -> Some p)
    None pool

(* --- JSON ----------------------------------------------------------------- *)

let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let json_float x =
  (* Shortest representation that round-trips; JSON has no infinities. *)
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.17g" x

let strategy_json buf strategy =
  match Strategy.distribution strategy with
  | None -> Buffer.add_string buf "null"
  | Some dist ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i (q, p) ->
        if i > 0 then Buffer.add_char buf ',';
        buf_addf buf "{\"quorum\":[%s],\"prob\":%s}"
          (String.concat "," (List.map string_of_int q))
          (json_float p))
      dist;
    Buffer.add_char buf ']'

let point_json buf ~check p =
  let m = p.metrics in
  buf_addf buf "{\"name\":%S,\"kind\":%S,\"votes\":[" (Qs.name p.system) p.kind;
  List.iteri
    (fun i (id, v) ->
      if i > 0 then Buffer.add_char buf ',';
      buf_addf buf "[%d,%d]" id v)
    p.votes;
  buf_addf buf "],\"read_votes\":%d,\"write_votes\":%d," p.read_votes p.write_votes;
  Buffer.add_string buf "\"read_strategy\":";
  strategy_json buf p.read_strategy;
  Buffer.add_string buf ",\"write_strategy\":";
  strategy_json buf p.write_strategy;
  buf_addf buf ",\"load\":%s,\"capacity\":%s,\"latency_ms\":%s,\"fault_tolerance\":%d"
    (json_float m.load) (json_float m.capacity) (json_float m.latency_ms)
    m.fault_tolerance;
  buf_addf buf ",\"read_unavailability\":%s,\"write_unavailability\":%s"
    (json_float m.read_unavailability)
    (json_float m.write_unavailability);
  let check_read, check_write = check p in
  buf_addf buf ",\"check_read_unavailability\":%s,\"check_write_unavailability\":%s}"
    (json_float check_read) (json_float check_write)

let to_json result =
  (* The check fields re-derive each point's availability through
     Availability.enumerate (predicate walk) rather than the
     optimizer's own quorum-list path; validate_quorum_opt.py asserts
     they agree. *)
  let p_of =
    let tbl = Hashtbl.create 16 in
    List.iter (fun nd -> Hashtbl.replace tbl nd.id nd.fail_prob) result.nodes;
    Hashtbl.find tbl
  in
  let check p =
    ( Availability.unavailability_p p.system ~mode:Qs.Read ~p:p_of,
      Availability.unavailability_p p.system ~mode:Qs.Write ~p:p_of )
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\":\"quorum-opt-1\",\"nodes\":[";
  List.iteri
    (fun i nd ->
      if i > 0 then Buffer.add_char buf ',';
      buf_addf buf "{\"id\":%d,\"fail_prob\":%s,\"latency_ms\":%s}" nd.id
        (json_float nd.fail_prob) (json_float nd.latency_ms))
    result.nodes;
  buf_addf buf "],\"read_fraction\":%s,\"max_votes\":%d,\"candidates\":%d,\"truncated\":%b,"
    (json_float result.read_fraction)
    result.max_votes result.candidates result.truncated;
  Buffer.add_string buf "\"frontier\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      point_json buf ~check p)
    result.frontier;
  Buffer.add_string buf "]}";
  Buffer.contents buf
