type mode = Read | Write

type spec =
  | Threshold of { read : int; write : int }
  | Grid of { rows : int; cols : int }
  | Weighted of { votes : int array; read : int; write : int }
      (* votes.(i) belongs to members.(i) *)

type t = { name : string; members : int array; spec : spec }

let name t = t.name

let members t = Array.to_list t.members

let size t = Array.length t.members

let mem t id = Array.exists (fun m -> m = id) t.members

(* Members present among responders. *)
let count_present t ~present =
  Array.fold_left (fun acc m -> if present m then acc + 1 else acc) 0 t.members

(* Grid cell (r, c) holds member index r * cols + c. *)
let grid_member t ~cols ~row ~col = t.members.((row * cols) + col)

let column_covered t ~rows ~cols ~present col =
  let rec cover row =
    row < rows && (present (grid_member t ~cols ~row ~col) || cover (row + 1))
  in
  cover 0

let all_columns_covered t ~rows ~cols ~present =
  let rec check col = col >= cols || (column_covered t ~rows ~cols ~present col && check (col + 1)) in
  check 0

let full_column_present t ~rows ~cols ~present col =
  let rec full row =
    row >= rows || (present (grid_member t ~cols ~row ~col) && full (row + 1))
  in
  full 0

let some_full_column t ~rows ~cols ~present =
  let rec scan col = col < cols && (full_column_present t ~rows ~cols ~present col || scan (col + 1)) in
  scan 0

let votes_present t ~votes ~present =
  let total = ref 0 in
  Array.iteri (fun i m -> if present m then total := !total + votes.(i)) t.members;
  !total

let is_read_quorum t ~present =
  match t.spec with
  | Threshold { read; _ } -> count_present t ~present >= read
  | Grid { rows; cols } -> all_columns_covered t ~rows ~cols ~present
  | Weighted { votes; read; _ } -> votes_present t ~votes ~present >= read

let is_write_quorum t ~present =
  match t.spec with
  | Threshold { write; _ } -> count_present t ~present >= write
  | Grid { rows; cols } ->
    all_columns_covered t ~rows ~cols ~present && some_full_column t ~rows ~cols ~present
  | Weighted { votes; write; _ } -> votes_present t ~votes ~present >= write

let is_quorum t mode ~present =
  match mode with
  | Read -> is_read_quorum t ~present
  | Write -> is_write_quorum t ~present

let present_of_list ids =
  let set = List.sort_uniq Int.compare ids in
  fun id -> List.mem id set

let is_read_quorum_list t ids = is_read_quorum t ~present:(present_of_list ids)

let is_write_quorum_list t ids = is_write_quorum t ~present:(present_of_list ids)

let is_quorum_list t mode ids =
  match mode with
  | Read -> is_read_quorum_list t ids
  | Write -> is_write_quorum_list t ids

(* --- Enumeration --------------------------------------------------------- *)

let enumeration_bound = 16

(* Map member id -> bit index, for mask-based enumeration. *)
let bit_index t =
  let tbl = Hashtbl.create (2 * Array.length t.members) in
  Array.iteri (fun i id -> Hashtbl.replace tbl id i) t.members;
  fun id -> Hashtbl.find tbl id

let members_of_mask t mask =
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) (if mask land (1 lsl i) <> 0 then t.members.(i) :: acc else acc)
  in
  collect (Array.length t.members - 1) []

(* Minimal satisfying sets of a monotone predicate over the members.
   All our quorum predicates are monotone (adding responders never
   destroys a quorum), so a satisfying mask is minimal iff dropping any
   single member breaks it. Masks ascend, so the result is ordered by
   the bit pattern of member indices — stable across runs. *)
let minimal_sets t holds =
  let n = Array.length t.members in
  if n > enumeration_bound then
    invalid_arg
      (Printf.sprintf "Quorum_system: %d members exceed the enumeration bound (%d)" n
         enumeration_bound);
  let index_of = bit_index t in
  let satisfies mask =
    holds ~present:(fun id -> mask land (1 lsl index_of id) <> 0)
  in
  let out = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    if satisfies mask then begin
      let minimal = ref true in
      let i = ref 0 in
      while !minimal && !i < n do
        if mask land (1 lsl !i) <> 0 && satisfies (mask land lnot (1 lsl !i)) then
          minimal := false;
        incr i
      done;
      if !minimal then out := members_of_mask t mask :: !out
    end
  done;
  List.rev !out

let read_quorums t = minimal_sets t (fun ~present -> is_read_quorum t ~present)

let write_quorums t = minimal_sets t (fun ~present -> is_write_quorum t ~present)

let quorums t mode = match mode with Read -> read_quorums t | Write -> write_quorums t

(* --- Generalized intersection checking ----------------------------------- *)

(* The single predicate every construction (threshold, majority, ROWA,
   grid, weighted — and later masking/coded variants) must satisfy:
   every read quorum overlaps every write quorum in at least
   [rw_overlap] members, and write quorums pairwise overlap in at least
   [ww_overlap]. Plain regular/atomic registers need overlap 1; masking
   (Byzantine) quorum systems will instantiate it with 2f+1. *)
let check_intersection ?(rw_overlap = 1) ?(ww_overlap = 1) ~read_quorums ~write_quorums ()
    =
  let overlap a b =
    List.length (List.filter (fun x -> List.exists (Int.equal x) b) a)
  in
  let bad_rw =
    List.exists
      (fun r -> List.exists (fun w -> overlap r w < rw_overlap) write_quorums)
      read_quorums
  in
  if bad_rw then Error "a read quorum misses a write quorum"
  else
    let bad_ww =
      List.exists
        (fun w1 -> List.exists (fun w2 -> overlap w1 w2 < ww_overlap) write_quorums)
        write_quorums
    in
    if bad_ww then Error "two write quorums are disjoint" else Ok ()

(* Fewest members whose votes reach [target]: take the biggest votes. *)
let min_weighted_members votes target =
  let sorted = Array.copy votes in
  Array.sort (fun a b -> Int.compare b a) sorted;
  let rec take i acc = if acc >= target then i else take (i + 1) (acc + sorted.(i)) in
  take 0 0

let min_read_size t =
  match t.spec with
  | Threshold { read; _ } -> read
  | Grid { cols; _ } -> cols
  | Weighted { votes; read; _ } -> min_weighted_members votes read

let min_write_size t =
  match t.spec with
  | Threshold { write; _ } -> write
  | Grid { rows; cols } -> rows + cols - 1
  | Weighted { votes; write; _ } -> min_weighted_members votes write

let min_quorum_size t mode =
  match mode with Read -> min_read_size t | Write -> min_write_size t

(* Accumulate members in random order until their votes reach [target]. *)
let choose_weighted t ~votes ~target rng =
  let order = Array.init (Array.length t.members) Fun.id in
  Dq_util.Rng.shuffle rng order;
  let rec take i acc chosen =
    if acc >= target then List.rev chosen
    else take (i + 1) (acc + votes.(order.(i))) (t.members.(order.(i)) :: chosen)
  in
  take 0 0 []

let choose_read t rng =
  match t.spec with
  | Threshold { read; _ } -> Dq_util.Rng.sample rng (members t) read
  | Weighted { votes; read; _ } -> choose_weighted t ~votes ~target:read rng
  | Grid { rows; cols } ->
    List.init cols (fun col ->
        let row = Dq_util.Rng.int rng rows in
        grid_member t ~cols ~row ~col)

let choose_write t rng =
  match t.spec with
  | Threshold { write; _ } -> Dq_util.Rng.sample rng (members t) write
  | Weighted { votes; write; _ } -> choose_weighted t ~votes ~target:write rng
  | Grid { rows; cols } ->
    let full_col = Dq_util.Rng.int rng cols in
    let full = List.init rows (fun row -> grid_member t ~cols ~row ~col:full_col) in
    let cover =
      List.filter_map
        (fun col ->
          if col = full_col then None
          else
            let row = Dq_util.Rng.int rng rows in
            Some (grid_member t ~cols ~row ~col))
        (List.init cols Fun.id)
    in
    full @ cover

let choose t mode rng =
  match mode with Read -> choose_read t rng | Write -> choose_write t rng

let threshold ~name ~members ~read ~write =
  let n = List.length members in
  if n = 0 then invalid_arg "Quorum_system.threshold: no members";
  if read < 1 || read > n then invalid_arg "Quorum_system.threshold: bad read size";
  if write < 1 || write > n then invalid_arg "Quorum_system.threshold: bad write size";
  if read + write <= n then
    invalid_arg "Quorum_system.threshold: read and write quorums must intersect";
  if 2 * write <= n then
    invalid_arg "Quorum_system.threshold: write quorums must pairwise intersect";
  { name; members = Array.of_list members; spec = Threshold { read; write } }

let majority members =
  let n = List.length members in
  let q = (n / 2) + 1 in
  threshold ~name:(Printf.sprintf "majority(%d)" n) ~members ~read:q ~write:q

let rowa members =
  let n = List.length members in
  threshold ~name:(Printf.sprintf "rowa(%d)" n) ~members ~read:1 ~write:n

let grid ~rows ~cols members =
  let n = List.length members in
  if rows < 1 || cols < 1 || rows * cols <> n then
    invalid_arg "Quorum_system.grid: rows * cols must equal the member count";
  {
    name = Printf.sprintf "grid(%dx%d)" rows cols;
    members = Array.of_list members;
    spec = Grid { rows; cols };
  }

let counting_thresholds t =
  match t.spec with
  | Threshold { read; write } -> Some (read, write)
  | Grid _ -> None
  | Weighted _ -> None

let weighted ~name ~members ~read ~write =
  let votes = Array.of_list (List.map snd members) in
  let ids = List.map fst members in
  let total = Array.fold_left ( + ) 0 votes in
  (match ids with
  | [] -> invalid_arg "Quorum_system.weighted: no members"
  | _ :: _ -> ());
  if Array.exists (fun v -> v < 0) votes then
    invalid_arg "Quorum_system.weighted: negative votes";
  if read < 1 || read > total || write < 1 || write > total then
    invalid_arg "Quorum_system.weighted: quorum votes out of range";
  if read + write <= total then
    invalid_arg "Quorum_system.weighted: read and write quorums must intersect";
  if 2 * write <= total then
    invalid_arg "Quorum_system.weighted: write quorums must pairwise intersect";
  { name; members = Array.of_list ids; spec = Weighted { votes; read; write } }

let validate t =
  if size t > enumeration_bound then
    Ok () (* exhaustive check too large; construction invariants hold *)
  else
    (* Checking the minimal quorums suffices: the predicates are
       monotone, so every quorum contains a minimal one and any overlap
       shortfall already shows up between two minimal quorums. *)
    check_intersection ~read_quorums:(read_quorums t) ~write_quorums:(write_quorums t) ()

let pp ppf t =
  Format.fprintf ppf "%s{" t.name;
  Array.iteri (fun i m -> Format.fprintf ppf (if i = 0 then "%d" else ",%d") m) t.members;
  Format.fprintf ppf "}"
