(** The quorum-system optimizer: search weighted systems and strategies
    along the load / latency / fault-tolerance Pareto frontier.

    The recipe of {e Read-Write Quorum Systems Made Practical}
    (Whittaker et al.), specialized to this repo: candidates are
    Gifford-weighted systems (vote vectors in [1, max_votes]^n,
    deduplicated up to vote scaling and identical quorum sets, with
    every intersecting read/write threshold pair); each candidate gets
    a load-optimal strategy pair (a multiplicative-weights solution of
    the min-max node-load game, deterministic) and a latency-optimal
    pair (point mass on the quorum whose slowest member is fastest);
    each (system, strategy) point is scored and the non-dominated set
    is the frontier. Everything is deterministic — no RNG, no wall
    clock — so frontiers are directly comparable across runs and in
    golden tests. *)

type node = { id : int; fail_prob : float; latency_ms : float }

type metrics = {
  load : float;
      (** worst-node access probability under the read/write mix:
          max_i [fr * load_r(i) + (1-fr) * load_w(i)] *)
  capacity : float;  (** [1 / load] *)
  latency_ms : float;
      (** read-fraction-weighted expectation of the sampled quorum's
          slowest member latency *)
  fault_tolerance : int;
      (** most node failures that still leave both a read and a write
          quorum alive *)
  read_unavailability : float;
      (** computed from the enumerated minimal-quorum list — an
          independent path from {!Availability.enumerate}, which the
          JSON output cross-checks against *)
  write_unavailability : float;
}

type point = {
  system : Quorum_system.t;
  votes : (int * int) list;  (** (node id, votes) *)
  read_votes : int;
  write_votes : int;
  kind : string;  (** ["load-optimal"] or ["latency-optimal"] *)
  read_strategy : Strategy.t;
  write_strategy : Strategy.t;
  metrics : metrics;
}

type result = {
  nodes : node list;
  read_fraction : float;
  max_votes : int;
  candidates : int;  (** distinct quorum systems evaluated *)
  truncated : bool;  (** true when [max_systems] cut the search short *)
  frontier : point list;
      (** non-dominated points (lower load, lower latency, higher fault
          tolerance), sorted by load then latency *)
}

val search :
  ?read_fraction:float ->
  ?max_votes:int ->
  ?max_systems:int ->
  nodes:node list ->
  unit ->
  result
(** Defaults: [read_fraction 0.9], [max_votes 3], [max_systems 20_000].
    Requires 1 to {!Quorum_system.enumeration_bound} nodes, failure
    probabilities in [0, 1), non-negative latencies. *)

val winner : ?min_fault_tolerance:int -> result -> point option
(** The [--apply] pick: highest capacity among frontier points with at
    least [min_fault_tolerance] (default 1), ties broken by latency;
    falls back to the whole frontier when none qualifies. [None] only
    for an empty frontier. *)

val dominates : point -> point -> bool
(** Pareto dominance on (load, latency, fault tolerance) — exported for
    the frontier-invariant tests. *)

val to_json : result -> string
(** The [quorum-opt] JSON document (schema ["quorum-opt-1"]): inputs,
    search coverage, and one object per frontier point carrying its
    strategies, metrics, and [check_read_unavailability] /
    [check_write_unavailability] fields recomputed through
    {!Availability.enumerate} as the cross-check oracle. *)
