(** A baseline replica: a timestamped key-value store node.

    Serves reads and timestamp queries, applies timestamped writes
    (last-writer-wins by logical clock), merges asynchronous
    propagation, and — in primary mode — assigns timestamps itself and
    pushes updates to its backups. With [anti_entropy_ms] set, the
    replica periodically gossips its whole store to a random peer
    (ROWA-Async epidemic propagation), which converges even under
    message loss. Store contents are durable across {e fail-stop}
    crashes.

    An {e amnesia} crash wipes the store. On recovery the replica goes
    silent — it serves no read, acknowledges no write, and answers no
    peer's pull — while it rebuilds the store from its peers
    ([Pull_req]/[Pull_resp], highest-LC-wins merge) until the
    protocol's [sync_ok] predicate is satisfied (e.g. a majority of
    peers for quorum protocols, the primary for a backup). Asynchronous
    propagation and gossip still merge during the sync: they only add
    information. *)

open Dq_storage

type mode =
  | Plain  (** majority quorum / ROWA member *)
  | Primary of { backups : int list }
  | Async_member of { peers : int list; anti_entropy_ms : float }

type t

val create :
  net:Base_msg.t Dq_net.Net.t ->
  rng:Dq_util.Rng.t ->
  me:int ->
  mode:mode ->
  ?peers:int list ->
  ?sync_ok:((int -> bool) -> bool) ->
  ?retry_timeout_ms:float ->
  unit ->
  t
(** [peers] is the full server group state transfer can pull from;
    [sync_ok present] decides when a wiped replica has heard from
    enough peers to serve again ([present] is true for peers whose
    store was merged; the replica itself is never present). The
    defaults — no peers, trivially satisfied — make amnesia behave
    like data loss with immediate rejoin, for standalone tests. *)

val handle : t -> src:int -> Base_msg.t -> unit

val start : t -> unit
(** Arm periodic anti-entropy (no-op in other modes). Call once after
    all nodes are registered. *)

val quiesce : t -> unit
(** Stop anti-entropy. *)

val on_recover : t -> wiped:bool -> unit
(** Re-arm periodic work after a crash. With [wiped:false] the store is
    retained (and an interrupted state transfer resumes); with
    [wiped:true] the store is discarded and the replica goes silent
    until state transfer satisfies [sync_ok]. *)

(** {2 Introspection} *)

val stored : t -> Key.t -> Versioned.t

val logical_clock : t -> Lc.t

val is_syncing : t -> bool
(** The replica is rebuilding its store after an amnesia crash and
    refuses to serve. *)
