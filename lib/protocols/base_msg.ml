open Dq_storage

type t =
  | Client_read_req of { op : int; key : Key.t; floor : Lc.t }
  | Client_read_reply of { op : int; key : Key.t; value : string; lc : Lc.t }
  | Client_write_req of { op : int; key : Key.t; value : string }
  | Client_write_reply of { op : int; key : Key.t; lc : Lc.t }
  | Read_req of { op : int; key : Key.t }
  | Read_reply of { op : int; key : Key.t; value : string; lc : Lc.t }
  | Lc_req of { op : int }
  | Lc_reply of { op : int; lc : Lc.t }
  | Write_req of { op : int; key : Key.t; value : string; lc : Lc.t }
  | Write_ack of { op : int; key : Key.t; lc : Lc.t }
  | Fwd_write_req of { op : int; key : Key.t; value : string }
  | Fwd_write_ack of { op : int; key : Key.t; lc : Lc.t }
  | Propagate of { key : Key.t; value : string; lc : Lc.t }
  | Gossip of { entries : (Key.t * string * Lc.t) list }
  | Pull_req of { session : int }
  | Pull_resp of { session : int; entries : (Key.t * string * Lc.t) list }

let classify = function
  | Client_read_req _ -> "client_read_req"
  | Client_read_reply _ -> "client_read_reply"
  | Client_write_req _ -> "client_write_req"
  | Client_write_reply _ -> "client_write_reply"
  | Read_req _ -> "read_req"
  | Read_reply _ -> "read_reply"
  | Lc_req _ -> "lc_req"
  | Lc_reply _ -> "lc_reply"
  | Write_req _ -> "write_req"
  | Write_ack _ -> "write_ack"
  | Fwd_write_req _ -> "fwd_write_req"
  | Fwd_write_ack _ -> "fwd_write_ack"
  | Propagate _ -> "propagate"
  | Gossip _ -> "gossip"
  | Pull_req _ -> "pull_req"
  | Pull_resp _ -> "pull_resp"

(* Wire-size model matching Dq_core.Message.size_of. *)
let header = 48

let key_sz = 8

let lc_sz = 12

let size_of = function
  | Client_read_req _ -> header + 8 + key_sz
  | Client_read_reply { value; _ } -> header + 8 + key_sz + String.length value + lc_sz
  | Client_write_req { value; _ } -> header + 8 + key_sz + String.length value
  | Client_write_reply _ -> header + 8 + key_sz + lc_sz
  | Read_req _ -> header + 8 + key_sz
  | Read_reply { value; _ } -> header + 8 + key_sz + String.length value + lc_sz
  | Lc_req _ -> header + 8
  | Lc_reply _ -> header + 8 + lc_sz
  | Write_req { value; _ } -> header + 8 + key_sz + String.length value + lc_sz
  | Write_ack _ -> header + 8 + key_sz + lc_sz
  | Fwd_write_req { value; _ } -> header + 8 + key_sz + String.length value
  | Fwd_write_ack _ -> header + 8 + key_sz + lc_sz
  | Propagate { value; _ } -> header + key_sz + String.length value + lc_sz
  | Gossip { entries } ->
    header
    + List.fold_left
        (fun acc (_, value, _) -> acc + key_sz + lc_sz + String.length value)
        0 entries
  | Pull_req _ -> header + 8
  | Pull_resp { entries; _ } ->
    header + 8
    + List.fold_left
        (fun acc (_, value, _) -> acc + key_sz + lc_sz + String.length value)
        0 entries
