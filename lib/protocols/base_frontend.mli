(** The service-client logic of the baseline protocols.

    All four baselines fit two completion styles:

    - {b Forward}: send the operation to a distinguished node (the
      primary) which orders it — primary/backup;
    - {b Two_phase}: quorum operations — a read collects a read quorum
      of replies and keeps the highest-timestamped one; a write first
      reads the highest timestamp from a read quorum, advances it, then
      writes to a write quorum. Majority quorum uses majorities, ROWA
      uses read-one/write-all, and ROWA-Async degenerates to a
      singleton "quorum" at the local replica (with asynchronous
      epidemic propagation done by the replica itself). *)

open Dq_storage

type style =
  | Forward of { primary : int }
  | Two_phase of { system : Dq_quorum.Quorum_system.t; atomic_reads : bool }
      (** with [atomic_reads], a read writes the value it is about to
          return back to a write quorum before returning (the classic
          ABD read-impose phase), upgrading regular to atomic
          semantics at the cost of a second round trip *)
  | Local_session of { replica : int }
      (** ROWA-Async with Bayou-style session guarantees: reads carry a
          client-session floor and are answered from the local replica
          only once it has caught up to it (read-your-writes and
          monotonic reads, but not regular semantics) *)

type t

val create :
  ?read_strategy:Dq_quorum.Strategy.t ->
  ?write_strategy:Dq_quorum.Strategy.t ->
  net:Base_msg.t Dq_net.Net.t ->
  rng:Dq_util.Rng.t ->
  me:int ->
  style:style ->
  retry_timeout_ms:float ->
  unit ->
  t
(** A strategy applies only to QRPC calls against the very quorum
    system it was built over (physical equality) — in practice the
    [Two_phase] system; [Forward] and [Local_session] build fresh
    single-node systems per call and always use the legacy sampler.
    Omitted strategies keep target selection bit-identical to
    pre-strategy behavior. *)

val read : ?floor:Lc.t -> t -> key:Key.t -> on_done:(value:string -> lc:Lc.t -> unit) -> unit
(** [floor] (default {!Lc.zero}) is honoured by [Local_session]
    front ends only. *)

val write : t -> key:Key.t -> value:string -> on_done:(lc:Lc.t -> unit) -> unit

val handle : t -> src:int -> Base_msg.t -> unit

val on_recover : t -> unit
