open Dq_storage
module Net = Dq_net.Net

type mode =
  | Plain
  | Primary of { backups : int list }
  | Async_member of { peers : int list; anti_entropy_ms : float }

(* State-transfer progress after an amnesia crash: the wiped replica
   pulls peers' stores until [sync_ok] is satisfied (which subset of
   peers suffices is the protocol's call — see {!Base_cluster.sync_ok}).
   Merged entries are durable, so a fail-stop crash mid-sync keeps the
   replied set and resumes; a second amnesia crash starts over. *)
type sync_state = {
  session : int;
  started_ms : float;
  mutable replied : int list;
  mutable loop : Dq_rpc.Retry.t option;
  mutable bytes : int;
  mutable objects : int;
}

type t = {
  net : Base_msg.t Net.t;
  bus : Dq_telemetry.Bus.t;
  rng : Dq_util.Rng.t;
  me : int;
  mode : mode;
  peers : int list;
  sync_ok : (int -> bool) -> bool;
  retry_timeout_ms : float;
  store : (Key.t, Versioned.t) Obj_map.t;
  mutable global_lc : Lc.t;
  fwd_assigned : (int * int, Lc.t) Hashtbl.t;
      (* (front end, op) -> timestamp already assigned by this primary;
         retransmitted forwards must not be executed twice *)
  mutable next_session : int;
  mutable sync : sync_state option;
  mutable quiesced : bool;
}

let create ~net ~rng ~me ~mode ?(peers = []) ?(sync_ok = fun _present -> true)
    ?(retry_timeout_ms = 400.) () =
  {
    net;
    bus = Dq_sim.Engine.telemetry (Net.engine net);
    rng;
    me;
    mode;
    peers;
    sync_ok;
    retry_timeout_ms;
    store = Obj_map.of_key_default ~default:(fun _ -> Versioned.initial);
    global_lc = Lc.zero;
    fwd_assigned = Hashtbl.create 16;
    next_session = 0;
    sync = None;
    quiesced = false;
  }

let send t dst msg = Net.send t.net ~src:t.me ~dst msg

let apply t ~key ~value ~lc =
  let current = Obj_map.get t.store key in
  if Lc.(lc > current.lc) then begin
    Obj_map.set t.store key (Versioned.make ~value ~lc);
    t.global_lc <- Lc.max t.global_lc lc
  end

let entries t = Obj_map.fold t.store ~init:[] ~f:(fun key v acc -> (key, v.value, v.lc) :: acc)

let rec arm_anti_entropy t ~peers ~period_ms =
  ignore
    (Net.timer t.net ~node:t.me ~delay_ms:period_ms (fun () ->
         if not t.quiesced then begin
           let others = List.filter (fun p -> p <> t.me) peers in
           (match Dq_util.Rng.choose t.rng others with
           | None -> ()
           | Some peer -> send t peer (Base_msg.Gossip { entries = entries t }));
           arm_anti_entropy t ~peers ~period_ms
         end))

let start t =
  match t.mode with
  | Async_member { peers; anti_entropy_ms } ->
    arm_anti_entropy t ~peers ~period_ms:anti_entropy_ms
  | Plain | Primary _ -> ()

let quiesce t = t.quiesced <- true

(* --- amnesia recovery: store pull -------------------------------------- *)

let engine_now t = Dq_sim.Engine.now (Net.engine t.net)

let subscribed t = Dq_telemetry.Bus.subscribed t.bus

let finish_sync t (s : sync_state) =
  t.sync <- None;
  if subscribed t then
    Dq_telemetry.Bus.emit t.bus
      (Dq_telemetry.Event.Recovery_done
         {
           node = t.me;
           bytes = s.bytes;
           objects = s.objects;
           duration_ms = engine_now t -. s.started_ms;
         })

let start_sync t (s : sync_state) =
  let others = List.filter (fun p -> p <> t.me) t.peers in
  let no_peers = match others with [] -> true | _ :: _ -> false in
  let attempt ~round:_ =
    List.iter
      (fun p ->
        if not (List.mem p s.replied) then
          send t p (Base_msg.Pull_req { session = s.session }))
      others
  in
  let complete () =
    no_peers || t.sync_ok (fun p -> p <> t.me && List.mem p s.replied)
  in
  let loop =
    Dq_rpc.Retry.start
      ~timer:(fun ~delay_ms action -> Net.timer t.net ~node:t.me ~delay_ms action)
      ~attempt ~complete
      ~on_complete:(fun () -> finish_sync t s)
      ~timeout_ms:t.retry_timeout_ms ~backoff:2. ~bus:t.bus ~node:t.me
      ~tag:"replica.sync" ()
  in
  if not (Dq_rpc.Retry.is_done loop) then s.loop <- Some loop

let on_recover t ~wiped =
  if wiped then begin
    (* Amnesia: the store this replica called durable is gone. *)
    Obj_map.clear t.store;
    t.global_lc <- Lc.zero;
    Hashtbl.reset t.fwd_assigned;
    t.next_session <- t.next_session + 1;
    t.sync <-
      Some
        {
          session = t.next_session;
          started_ms = engine_now t;
          replied = [];
          loop = None;
          bytes = 0;
          objects = 0;
        };
    if subscribed t then
      Dq_telemetry.Bus.emit t.bus (Dq_telemetry.Event.Recovery_start { node = t.me })
  end;
  (match t.sync with
  | Some s ->
    (* Fresh sync, or one interrupted by a fail-stop crash: the merged
       entries are durable, so keep [replied] and restart the loop (the
       old one's timers died with the previous incarnation). *)
    s.loop <- None;
    start_sync t s
  | None -> ());
  start t

let handle_pull_resp t ~src ~session ~entries ~bytes =
  match t.sync with
  | Some s when session = s.session && not (List.mem src s.replied) ->
    s.replied <- src :: s.replied;
    s.bytes <- s.bytes + bytes;
    List.iter
      (fun (key, value, lc) ->
        let current = Obj_map.get t.store key in
        if Lc.(lc > current.lc) then begin
          Obj_map.set t.store key (Versioned.make ~value ~lc);
          t.global_lc <- Lc.max t.global_lc lc;
          s.objects <- s.objects + 1
        end)
      entries;
    (match s.loop with Some loop -> Dq_rpc.Retry.poke loop | None -> ())
  | Some _ | None -> () (* stale session or duplicate reply *)

let syncing_handle t ~src msg =
  match msg with
  | Base_msg.Pull_resp { session; entries } ->
    handle_pull_resp t ~src ~session ~entries ~bytes:(Base_msg.size_of msg)
  (* Pure information still merges (monotone last-writer-wins)... *)
  | Base_msg.Propagate { key; value; lc } -> apply t ~key ~value ~lc
  | Base_msg.Gossip { entries } ->
    List.iter (fun (key, value, lc) -> apply t ~key ~value ~lc) entries
  (* ...but a wiped replica neither serves nor acknowledges anything —
     answering a read, a timestamp query, a write, or a peer's pull
     from an empty store could surface state loss as a quorum vote. *)
  | _ -> () [@dqr.lint.allow "R9"]

let active_handle t ~src msg =
  match msg with
  | Base_msg.Read_req { op; key } ->
    let v = Obj_map.get t.store key in
    send t src (Base_msg.Read_reply { op; key; value = v.value; lc = v.lc })
  | Base_msg.Lc_req { op } -> send t src (Base_msg.Lc_reply { op; lc = t.global_lc })
  | Base_msg.Write_req { op; key; value; lc } ->
    apply t ~key ~value ~lc;
    send t src (Base_msg.Write_ack { op; key; lc });
    (* In the epidemic protocol, a locally accepted write is pushed
       asynchronously to all peers. *)
    (match t.mode with
    | Async_member { peers; _ } ->
      List.iter
        (fun peer -> if peer <> t.me then send t peer (Base_msg.Propagate { key; value; lc }))
        peers
    | Plain | Primary _ -> ())
  | Base_msg.Fwd_write_req { op; key; value } -> (
    match t.mode with
    | Primary { backups } -> (
      match Hashtbl.find_opt t.fwd_assigned (src, op) with
      | Some lc ->
        (* Retransmission: execute at most once, re-acknowledge. *)
        send t src (Base_msg.Fwd_write_ack { op; key; lc })
      | None ->
        (* The primary orders writes itself and propagates
           asynchronously; the acknowledgment does not wait for the
           backups. *)
        let lc = Lc.succ t.global_lc ~node:t.me in
        t.global_lc <- lc;
        Hashtbl.replace t.fwd_assigned (src, op) lc;
        apply t ~key ~value ~lc;
        List.iter
          (fun backup ->
            if backup <> t.me then send t backup (Base_msg.Propagate { key; value; lc }))
          backups;
        send t src (Base_msg.Fwd_write_ack { op; key; lc }))
    | Plain | Async_member _ -> ())
  | Base_msg.Propagate { key; value; lc } -> apply t ~key ~value ~lc
  | Base_msg.Gossip { entries } ->
    List.iter (fun (key, value, lc) -> apply t ~key ~value ~lc) entries
  | Base_msg.Pull_req { session } ->
    send t src (Base_msg.Pull_resp { session; entries = entries t })
  | Base_msg.Client_read_req _ | Base_msg.Client_read_reply _ | Base_msg.Client_write_req _
  | Base_msg.Client_write_reply _ | Base_msg.Read_reply _ | Base_msg.Lc_reply _
  | Base_msg.Write_ack _ | Base_msg.Fwd_write_ack _ | Base_msg.Pull_resp _ ->
    ()

let handle t ~src msg =
  match t.sync with
  | None -> active_handle t ~src msg
  | Some _ -> syncing_handle t ~src msg

let stored t key = Obj_map.get t.store key

let logical_clock t = t.global_lc

let is_syncing t = Option.is_some t.sync
