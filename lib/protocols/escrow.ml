module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
open Dq_storage

type msg =
  | Buy_req of { op : int; key : Key.t; amount : int }
  | Buy_reply of { op : int; ok : bool }
  | Transfer_req of { key : Key.t; want : int }
  | Transfer_grant of { grant_id : int; key : Key.t; amount : int }
      (* retransmitted until acknowledged; the receiver deduplicates by
         (sender, grant_id), so escrow units move exactly once *)
  | Transfer_ack of { grant_id : int }
  | Transfer_deny of { key : Key.t; share : int }
      (* the donor has too little; carries its actual share so the
         requester can correct its view and ask someone else *)
  | Gossip of { shares : (Key.t * int) list }

let classify = function
  | Buy_req _ -> "buy_req"
  | Buy_reply _ -> "buy_reply"
  | Transfer_req _ -> "transfer_req"
  | Transfer_grant _ -> "transfer_grant"
  | Transfer_ack _ -> "transfer_ack"
  | Transfer_deny _ -> "transfer_deny"
  | Gossip _ -> "gossip"

type pending_buy = { op : int; client : int; amount : int; deadline : float }

type item = {
  mutable share : int;
  mutable consumed : int;
  peer_view : (int, int) Hashtbl.t; (* last gossiped share per peer *)
  mutable waiting : pending_buy list;
  mutable transfer_outstanding : bool;
  mutable recheck_armed : bool; (* at most one deadline timer per item *)
}

type in_transit = { to_ : int; t_key : Key.t; t_amount : int }

type replica = {
  me : int;
  items : (Key.t, item) Obj_map.t;
  mutable next_grant : int;
  in_transit : (int, in_transit) Hashtbl.t;
  applied : (int * int, unit) Hashtbl.t; (* (sender, grant_id) already applied *)
}

type t = {
  engine : Engine.t;
  net : msg Net.t;
  rng : Dq_util.Rng.t;
  servers : int list;
  gossip_ms : float;
  transfer_timeout_ms : float;
  stock : Key.t -> int;
  replicas : (int, replica) Hashtbl.t;
  buy_callbacks : (int * int, bool -> unit) Hashtbl.t; (* (client, op) *)
  next_op : (int, int ref) Hashtbl.t;
  mutable quiesced : bool;
}

(* Initial stock is split evenly; the first [stock mod n] servers take
   one extra unit. *)
let initial_share t ~server key =
  let n = List.length t.servers in
  let total = t.stock key in
  let index =
    match List.find_index (fun s -> s = server) t.servers with
    | Some i -> i
    | None -> invalid_arg "Escrow: not a server"
  in
  (total / n) + (if index < total mod n then 1 else 0)

let item t replica key =
  Obj_map.get replica.items key
  |> fun it ->
  if it.share = -1 then it.share <- initial_share t ~server:replica.me key;
  it

let fresh_item _ =
  {
    share = -1; (* lazily initialized from the stock function *)
    consumed = 0;
    peer_view = Hashtbl.create 8;
    waiting = [];
    transfer_outstanding = false;
    recheck_armed = false;
  }

let send t ~src ~dst msg = Net.send t.net ~src ~dst msg

let estimate t replica key =
  let it = item t replica key in
  let others =
    List.fold_left
      (fun acc peer ->
        if peer = replica.me then acc
        else
          acc
          + Option.value (Hashtbl.find_opt it.peer_view peer)
              ~default:(initial_share t ~server:peer key))
      0 t.servers
  in
  it.share + others

(* Ask the peer believed to hold the most stock for a transfer. *)
let request_transfer t replica key ~want =
  let it = item t replica key in
  if not it.transfer_outstanding then begin
    let best =
      List.fold_left
        (fun acc peer ->
          if peer = replica.me then acc
          else
            let estimate =
              Option.value (Hashtbl.find_opt it.peer_view peer)
                ~default:(initial_share t ~server:peer key)
            in
            match acc with
            | Some (_, best_estimate) when best_estimate >= estimate -> acc
            | Some _ | None -> Some (peer, estimate))
        None t.servers
    in
    match best with
    | Some (peer, estimate) when estimate > 0 ->
      it.transfer_outstanding <- true;
      send t ~src:replica.me ~dst:peer (Transfer_req { key; want })
    | Some _ | None -> ()
  end

let reply_buy t replica pending ok =
  send t ~src:replica.me ~dst:pending.client (Buy_reply { op = pending.op; ok })

(* Serve waiting purchases from the current share, oldest first; expired
   ones are refused. *)
let rec drain_waiting t replica key =
  let it = item t replica key in
  let now = Engine.now t.engine in
  let rec go = function
    | [] -> []
    | pending :: rest ->
      if now > pending.deadline then begin
        reply_buy t replica pending false;
        go rest
      end
      else if it.share >= pending.amount then begin
        it.share <- it.share - pending.amount;
        it.consumed <- it.consumed + pending.amount;
        reply_buy t replica pending true;
        go rest
      end
      else pending :: go rest
  in
  it.waiting <- go it.waiting;
  match it.waiting with
  | [] -> ()
  | pending :: _ ->
    request_transfer t replica key ~want:pending.amount;
    (* Re-check at the oldest deadline so refused purchases answer; a
       transfer request that went unanswered (dead peer) is abandoned
       so the next round may pick a different donor. One timer per item
       suffices - every code path that changes the state calls back
       into [drain_waiting]. *)
    if not it.recheck_armed then begin
      it.recheck_armed <- true;
      let delay_ms = Float.max 1. (pending.deadline -. now) in
      ignore
        (Net.timer t.net ~node:replica.me ~delay_ms (fun () ->
             it.recheck_armed <- false;
             it.transfer_outstanding <- false;
             drain_waiting t replica key))
    end

let handle_buy t replica ~src ~op ~key ~amount =
  let it = item t replica key in
  let pending =
    { op; client = src; amount; deadline = Engine.now t.engine +. t.transfer_timeout_ms }
  in
  it.waiting <- it.waiting @ [ pending ];
  drain_waiting t replica key

let rec retransmit_grant t replica grant_id =
  match Hashtbl.find_opt replica.in_transit grant_id with
  | None -> ()
  | Some transit ->
    send t ~src:replica.me ~dst:transit.to_
      (Transfer_grant { grant_id; key = transit.t_key; amount = transit.t_amount });
    ignore
      (Net.timer t.net ~node:replica.me ~delay_ms:t.transfer_timeout_ms (fun () ->
           retransmit_grant t replica grant_id))

let handle_transfer_req t replica ~src ~key ~want =
  let it = item t replica key in
  (* Give generously - the larger of the request and half the share -
     to amortize transfers, but never go below zero. *)
  let give = Stdlib.min it.share (Stdlib.max want (it.share / 2)) in
  if give >= want && give > 0 then begin
    it.share <- it.share - give;
    let grant_id = replica.next_grant in
    replica.next_grant <- grant_id + 1;
    Hashtbl.replace replica.in_transit grant_id { to_ = src; t_key = key; t_amount = give };
    retransmit_grant t replica grant_id
  end
  else send t ~src:replica.me ~dst:src (Transfer_deny { key; share = it.share })

let handle_transfer_grant t replica ~src ~grant_id ~key ~amount =
  send t ~src:replica.me ~dst:src (Transfer_ack { grant_id });
  if not (Hashtbl.mem replica.applied (src, grant_id)) then begin
    Hashtbl.replace replica.applied (src, grant_id) ();
    let it = item t replica key in
    it.share <- it.share + amount;
    it.transfer_outstanding <- false;
    drain_waiting t replica key
  end

let handle_gossip t replica ~src ~shares =
  List.iter
    (fun (key, share) ->
      let it = item t replica key in
      Hashtbl.replace it.peer_view src share)
    shares

let rec arm_gossip t replica =
  ignore
    (Net.timer t.net ~node:replica.me ~delay_ms:t.gossip_ms (fun () ->
         if not t.quiesced then begin
           let shares =
             Obj_map.fold replica.items ~init:[] ~f:(fun key it acc ->
                 if it.share >= 0 then (key, it.share) :: acc else acc)
           in
           (* the peer is drawn before [shares] is consulted, as it
              always was: the rng stream must replay identically *)
           (match
              Dq_util.Rng.choose t.rng
                (List.filter (fun s -> s <> replica.me) t.servers)
            with
           | None -> ()
           | Some peer -> (
             match shares with
             | [] -> ()
             | _ :: _ -> send t ~src:replica.me ~dst:peer (Gossip { shares })));
           arm_gossip t replica
         end))

let handle t replica ~src msg =
  match msg with
  | Buy_req { op; key; amount } -> handle_buy t replica ~src ~op ~key ~amount
  | Transfer_req { key; want } -> handle_transfer_req t replica ~src ~key ~want
  | Transfer_grant { grant_id; key; amount } ->
    handle_transfer_grant t replica ~src ~grant_id ~key ~amount
  | Transfer_ack { grant_id } -> Hashtbl.remove replica.in_transit grant_id
  | Transfer_deny { key; share } ->
    let it = item t replica key in
    Hashtbl.replace it.peer_view src share;
    it.transfer_outstanding <- false;
    drain_waiting t replica key
  | Gossip { shares } -> handle_gossip t replica ~src ~shares
  | Buy_reply _ -> () (* replies are routed at client nodes *)

let create engine topology ?(gossip_ms = 500.) ?(transfer_timeout_ms = 400.) ~stock () =
  let net = Net.create engine topology ~classify () in
  let t =
    {
      engine;
      net;
      rng = Engine.split_rng engine;
      servers = Topology.servers topology;
      gossip_ms;
      transfer_timeout_ms;
      stock;
      replicas = Hashtbl.create 16;
      buy_callbacks = Hashtbl.create 32;
      next_op = Hashtbl.create 8;
      quiesced = false;
    }
  in
  List.iter
    (fun server ->
      let replica =
        {
          me = server;
          items = Obj_map.of_key_default ~default:fresh_item;
          next_grant = 0;
          in_transit = Hashtbl.create 8;
          applied = Hashtbl.create 16;
        }
      in
      Hashtbl.replace t.replicas server replica;
      Net.register net ~node:server (fun ~src msg -> handle t replica ~src msg);
      arm_gossip t replica)
    t.servers;
  List.iter
    (fun client ->
      Net.register net ~node:client (fun ~src:_ msg ->
          match msg with
          | Buy_reply { op; ok } -> (
            match Hashtbl.find_opt t.buy_callbacks (client, op) with
            | Some callback ->
              Hashtbl.remove t.buy_callbacks (client, op);
              callback ok
            | None -> ())
          (* client stubs only consume buy replies; server-to-server
             traffic reaching a client is dropped by design *)
          | _ -> () [@dqr.lint.allow "R9"]))
    (Topology.clients topology);
  t

let buy t ~client ~server key ~amount callback =
  let counter =
    match Hashtbl.find_opt t.next_op client with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add t.next_op client r;
      r
  in
  let op = !counter in
  incr counter;
  Hashtbl.replace t.buy_callbacks (client, op) callback;
  Net.send t.net ~src:client ~dst:server (Buy_req { op; key; amount })

let approx_count t ~server key =
  match Hashtbl.find_opt t.replicas server with
  | Some replica -> estimate t replica key
  | None -> 0

let exact_remaining t key =
  Hashtbl.fold
    (fun _ replica acc ->
      let it = item t replica key in
      let transit =
        Hashtbl.fold
          (fun _ tr acc -> if Key.equal tr.t_key key then acc + tr.t_amount else acc)
          replica.in_transit 0
      in
      acc + it.share + transit)
    t.replicas 0

let total_sold t key =
  Hashtbl.fold (fun _ replica acc -> acc + (item t replica key).consumed) t.replicas 0

let quiesce t = t.quiesced <- true

let crash t server = Net.crash t.net server

let recover t server = Net.recover t.net server
