(** The wire protocol shared by the four baseline replication protocols
    (primary/backup, majority quorum, ROWA, ROWA-Async).

    They all exchange the same small set of message shapes — reads,
    timestamp reads, timestamped writes, asynchronous propagation — and
    differ only in {e who} is contacted and {e when} an operation
    completes, which lives in {!Base_frontend}. *)

open Dq_storage

type t =
  | Client_read_req of { op : int; key : Key.t; floor : Lc.t }
      (** [floor] is the client session's minimum acceptable timestamp
          (Bayou-style session guarantees); protocols without session
          support ignore it ({!Lc.zero} when unused) *)
  | Client_read_reply of { op : int; key : Key.t; value : string; lc : Lc.t }
  | Client_write_req of { op : int; key : Key.t; value : string }
  | Client_write_reply of { op : int; key : Key.t; lc : Lc.t }
  | Read_req of { op : int; key : Key.t }        (** front end -> replica *)
  | Read_reply of { op : int; key : Key.t; value : string; lc : Lc.t }
  | Lc_req of { op : int }                       (** highest-timestamp query *)
  | Lc_reply of { op : int; lc : Lc.t }
  | Write_req of { op : int; key : Key.t; value : string; lc : Lc.t }
  | Write_ack of { op : int; key : Key.t; lc : Lc.t }
  | Fwd_write_req of { op : int; key : Key.t; value : string }
      (** front end -> primary: the primary assigns the timestamp *)
  | Fwd_write_ack of { op : int; key : Key.t; lc : Lc.t }
  | Propagate of { key : Key.t; value : string; lc : Lc.t }
      (** asynchronous push (primary -> backups, ROWA-Async epidemics) *)
  | Gossip of { entries : (Key.t * string * Lc.t) list }
      (** anti-entropy exchange (ROWA-Async) *)
  | Pull_req of { session : int }
      (** state transfer after an amnesia crash: the wiped replica asks
          a peer for its full store ([session] discards replies of
          superseded syncs) *)
  | Pull_resp of { session : int; entries : (Key.t * string * Lc.t) list }

val classify : t -> string

val size_of : t -> int
(** Estimated wire size in bytes (same model as
    {!Dq_core.Message.size_of}). *)
