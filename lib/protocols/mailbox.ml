module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net

type msg =
  | Append_req of { op : int; entry : string }
  | Append_ack of { op : int }
  | Forward of { seq : int; entry : string } (* edge -> home, at-least-once *)
  | Forward_ack of { seq : int }

let classify = function
  | Append_req _ -> "append_req"
  | Append_ack _ -> "append_ack"
  | Forward _ -> "forward"
  | Forward_ack _ -> "forward_ack"

(* Durable per-edge state: the outgoing queue survives crashes (an
   acknowledged append must not be lost), like the IQS object state. *)
type edge = {
  me : int;
  mutable next_seq : int;
  outbox : (int, string) Hashtbl.t; (* seq -> entry, unacknowledged *)
}

type home_state = {
  mutable inbox : string list; (* newest first *)
  mutable delivered : int;
  seen : (int * int, unit) Hashtbl.t; (* (edge, seq) already delivered *)
}

type t = {
  engine : Engine.t;
  net : msg Net.t;
  home : int;
  retransmit_ms : float;
  edges : (int, edge) Hashtbl.t;
  home_state : home_state;
  ack_callbacks : (int * int, unit -> unit) Hashtbl.t; (* (client, op) *)
  next_op : (int, int ref) Hashtbl.t;
  mutable quiesced : bool;
}

let rec pump t edge =
  (* Retransmit everything unacknowledged; back off by polling. *)
  if (not t.quiesced) && Hashtbl.length edge.outbox > 0 then begin
    Hashtbl.iter
      (fun seq entry -> Net.send t.net ~src:edge.me ~dst:t.home (Forward { seq; entry }))
      edge.outbox;
    ignore
      (Net.timer t.net ~node:edge.me ~delay_ms:t.retransmit_ms (fun () -> pump t edge))
  end

let handle_edge t edge ~src msg =
  match msg with
  | Append_req { op; entry } ->
    let seq = edge.next_seq in
    edge.next_seq <- seq + 1;
    let was_idle = Hashtbl.length edge.outbox = 0 in
    Hashtbl.replace edge.outbox seq entry;
    Net.send t.net ~src:edge.me ~dst:src (Append_ack { op });
    if was_idle then pump t edge
  | Forward_ack { seq } -> Hashtbl.remove edge.outbox seq
  | Append_ack _ | Forward _ -> ()

let handle_home t ~src msg =
  match msg with
  | Forward { seq; entry } ->
    Net.send t.net ~src:t.home ~dst:src (Forward_ack { seq });
    if not (Hashtbl.mem t.home_state.seen (src, seq)) then begin
      Hashtbl.replace t.home_state.seen (src, seq) ();
      t.home_state.inbox <- entry :: t.home_state.inbox;
      t.home_state.delivered <- t.home_state.delivered + 1
    end
  | Append_req _ | Append_ack _ | Forward_ack _ -> ()

let create engine topology ~home ?(retransmit_ms = 500.) () =
  if not (List.mem home (Topology.servers topology)) then
    invalid_arg "Mailbox.create: home must be a server";
  let net = Net.create engine topology ~classify () in
  let t =
    {
      engine;
      net;
      home;
      retransmit_ms;
      edges = Hashtbl.create 16;
      home_state = { inbox = []; delivered = 0; seen = Hashtbl.create 64 };
      ack_callbacks = Hashtbl.create 32;
      next_op = Hashtbl.create 8;
      quiesced = false;
    }
  in
  List.iter
    (fun server ->
      if server = home then
        Net.register net ~node:server (fun ~src msg -> handle_home t ~src msg)
      else begin
        let edge = { me = server; next_seq = 0; outbox = Hashtbl.create 16 } in
        Hashtbl.replace t.edges server edge;
        Net.register net ~node:server (fun ~src msg -> handle_edge t edge ~src msg);
        (* After a recovery the durable outbox must drain again. *)
        Net.on_status_change net ~node:server (fun ~up ~wiped:_ -> if up then pump t edge)
      end)
    (Topology.servers topology);
  List.iter
    (fun client ->
      Net.register net ~node:client (fun ~src:_ msg ->
          match msg with
          | Append_ack { op } -> (
            match Hashtbl.find_opt t.ack_callbacks (client, op) with
            | Some callback ->
              Hashtbl.remove t.ack_callbacks (client, op);
              callback ()
            | None -> ())
          (* client stubs only consume acks; anything else addressed to
             a client is dropped by design *)
          | _ -> () [@dqr.lint.allow "R9"]))
    (Topology.clients topology);
  t

let append t ~client ~server entry callback =
  let counter =
    match Hashtbl.find_opt t.next_op client with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add t.next_op client r;
      r
  in
  let op = !counter in
  incr counter;
  Hashtbl.replace t.ack_callbacks (client, op) callback;
  Net.send t.net ~src:client ~dst:server (Append_req { op; entry })

let consume t n =
  let ordered = List.rev t.home_state.inbox in
  let taken = List.filteri (fun i _ -> i < n) ordered in
  t.home_state.inbox <- List.rev (List.filteri (fun i _ -> i >= n) ordered);
  taken

let delivered_count t = t.home_state.delivered

let unforwarded_count t =
  Hashtbl.fold (fun _ edge acc -> acc + Hashtbl.length edge.outbox) t.edges 0

let crash t server = Net.crash t.net server

let recover t server = Net.recover t.net server

let quiesce t = t.quiesced <- true
