open Dq_storage
module Net = Dq_net.Net
module Qs = Dq_quorum.Quorum_system
module Strategy = Dq_quorum.Strategy
module Qrpc = Dq_rpc.Qrpc

type style =
  | Forward of { primary : int }
  | Two_phase of { system : Qs.t; atomic_reads : bool }
  | Local_session of { replica : int }
      (* ROWA-Async with session guarantees: a read is answered from the
         local replica only once it has caught up to the client
         session's floor (epidemic propagation closes the gap) *)

type pending =
  | Read of (string * Lc.t) Qrpc.t
  | Lc_read of Lc.t Qrpc.t
  | Write of Lc.t Qrpc.t

type t = {
  net : Base_msg.t Net.t;
  bus : Dq_telemetry.Bus.t;
  rng : Dq_util.Rng.t;
  me : int;
  style : style;
  read_strategy : Strategy.t option;
  write_strategy : Strategy.t option;
  retry_timeout_ms : float;
  mutable next_op : int;
  mutable last_issued : Lc.t;
  mutable pending : (int, pending) Hashtbl.t;
  mutable seen_client_ops : (int * int, unit) Hashtbl.t;
      (* duplicate-suppression of client requests: the network may
         duplicate a Client_write_req, and executing it twice would
         issue two distinct writes for one client operation *)
}

let create ?read_strategy ?write_strategy ~net ~rng ~me ~style ~retry_timeout_ms () =
  {
    net;
    bus = Dq_sim.Engine.telemetry (Net.engine net);
    rng;
    me;
    style;
    read_strategy;
    write_strategy;
    retry_timeout_ms;
    next_op = 0;
    last_issued = Lc.zero;
    pending = Hashtbl.create 16;
    seen_client_ops = Hashtbl.create 16;
  }

let fresh_client_op t ~client ~op =
  if Hashtbl.mem t.seen_client_ops (client, op) then false
  else begin
    Hashtbl.add t.seen_client_ops (client, op) ();
    true
  end

let fresh_op t =
  let op = t.next_op in
  t.next_op <- op + 1;
  op

let send t dst msg = Net.send t.net ~src:t.me ~dst msg

let timer t ~delay_ms action = Net.timer t.net ~node:t.me ~delay_ms action

let target_system t =
  match t.style with
  | Forward { primary } ->
    Qs.threshold ~name:"primary" ~members:[ primary ] ~read:1 ~write:1
  | Two_phase { system; _ } -> system
  | Local_session { replica } ->
    Qs.threshold ~name:"local" ~members:[ replica ] ~read:1 ~write:1

(* A configured strategy applies only to calls against the quorum system
   it was built over (the Two_phase system); forwarding and local-session
   styles build fresh single-node systems per call and keep the legacy
   path. *)
let strategy_for t ~system mode =
  let candidate = match mode with Qrpc.Read -> t.read_strategy | Qrpc.Write -> t.write_strategy in
  match candidate with
  | Some s when Strategy.system s == system -> Some s
  | Some _ | None -> None

(* ABD read-impose: push the value the read is about to return to a
   write quorum, so no later read can observe an older version. The
   write-back reuses the ordinary timestamped write path and is
   idempotent at the replicas (last-writer-wins on the logical clock). *)
let impose t ~system ~key ~value ~lc ~on_done =
  let op = fresh_op t in
  let call =
    Qrpc.call ~timer:(timer t) ~rng:t.rng ~system ~mode:Qrpc.Write
      ~send:(fun dst -> send t dst (Base_msg.Write_req { op; key; value; lc }))
      ~on_quorum:(fun _ ->
        Hashtbl.remove t.pending op;
        on_done ~value ~lc)
      ~prefer:t.me ?strategy:(strategy_for t ~system Qrpc.Write)
      ~timeout_ms:t.retry_timeout_ms ~bus:t.bus ~node:t.me ~tag:"base.impose" ()
  in
  Hashtbl.replace t.pending op (Write call)

(* Session-guaranteed read: poll the local replica until its copy
   reaches the session floor (read-your-writes / monotonic reads), then
   answer. Epidemic propagation or anti-entropy closes the gap. *)
let read_with_floor t ~key ~floor ~on_done =
  let best = ref None in
  let complete () =
    match !best with Some (_, lc) -> Lc.(lc >= floor) | None -> false
  in
  let system = target_system t in
  (* Re-poll the replica until the floor is met. *)
  let rec poll () =
    let op = fresh_op t in
    let call =
      Qrpc.call ~timer:(timer t) ~rng:t.rng ~system ~mode:Qrpc.Read
        ~send:(fun dst -> send t dst (Base_msg.Read_req { op; key }))
        ~on_quorum:(fun replies ->
          Hashtbl.remove t.pending op;
          List.iter
            (fun (_, (value, lc)) ->
              match !best with
              | Some (_, best_lc) when Lc.(best_lc >= lc) -> ()
              | Some _ | None -> best := Some (value, lc))
            replies;
          if complete () then begin
            match !best with
            | Some (value, lc) -> on_done ~value ~lc
            | None -> ()
          end
          else
            (* Wait for propagation, then look again. *)
            ignore (timer t ~delay_ms:(t.retry_timeout_ms /. 2.) poll))
        ~prefer:t.me ?strategy:(strategy_for t ~system Qrpc.Read)
        ~timeout_ms:t.retry_timeout_ms ~bus:t.bus ~node:t.me ~tag:"base.read_floor" ()
    in
    Hashtbl.replace t.pending op (Read call)
  in
  poll ()

let read ?(floor = Lc.zero) t ~key ~on_done =
  match t.style with
  | Local_session _ when Lc.(floor > Lc.zero) -> read_with_floor t ~key ~floor ~on_done
  | Forward _ | Two_phase _ | Local_session _ ->
  let op = fresh_op t in
  let system = target_system t in
  let atomic = match t.style with Two_phase { atomic_reads; _ } -> atomic_reads | Forward _ | Local_session _ -> false in
  let call =
    Qrpc.call ~timer:(timer t) ~rng:t.rng ~system ~mode:Qrpc.Read
      ~send:(fun dst -> send t dst (Base_msg.Read_req { op; key }))
      ~on_quorum:(fun replies ->
        Hashtbl.remove t.pending op;
        let best =
          List.fold_left
            (fun acc (_, (value, lc)) ->
              match acc with
              | Some (_, best_lc) when Lc.(best_lc >= lc) -> acc
              | Some _ | None -> Some (value, lc))
            None replies
        in
        match best with
        | Some (value, lc) ->
          if atomic then impose t ~system ~key ~value ~lc ~on_done
          else on_done ~value ~lc
        | None -> ())
      ~prefer:t.me ?strategy:(strategy_for t ~system Qrpc.Read)
      ~timeout_ms:t.retry_timeout_ms ~bus:t.bus ~node:t.me ~tag:"base.read" ()
  in
  Hashtbl.replace t.pending op (Read call)

let write_two_phase t ~system ~key ~value ~on_done =
  let op1 = fresh_op t in
  let phase2 max_lc =
    let wlc = Lc.succ (Lc.max max_lc t.last_issued) ~node:t.me in
    t.last_issued <- wlc;
    let op2 = fresh_op t in
    let call =
      Qrpc.call ~timer:(timer t) ~rng:t.rng ~system ~mode:Qrpc.Write
        ~send:(fun dst -> send t dst (Base_msg.Write_req { op = op2; key; value; lc = wlc }))
        ~on_quorum:(fun _ ->
          Hashtbl.remove t.pending op2;
          on_done ~lc:wlc)
        ~prefer:t.me ?strategy:(strategy_for t ~system Qrpc.Write)
        ~timeout_ms:t.retry_timeout_ms ~bus:t.bus ~node:t.me ~tag:"base.write" ()
    in
    Hashtbl.replace t.pending op2 (Write call)
  in
  let call =
    Qrpc.call ~timer:(timer t) ~rng:t.rng ~system ~mode:Qrpc.Read
      ~send:(fun dst -> send t dst (Base_msg.Lc_req { op = op1 }))
      ~on_quorum:(fun replies ->
        Hashtbl.remove t.pending op1;
        let max_lc = List.fold_left (fun acc (_, lc) -> Lc.max acc lc) Lc.zero replies in
        phase2 max_lc)
      ~prefer:t.me ?strategy:(strategy_for t ~system Qrpc.Read)
      ~timeout_ms:t.retry_timeout_ms ~bus:t.bus ~node:t.me ~tag:"base.lc_read" ()
  in
  Hashtbl.replace t.pending op1 (Lc_read call)

let write_forward t ~primary ~key ~value ~on_done =
  let op = fresh_op t in
  let system = Qs.threshold ~name:"primary" ~members:[ primary ] ~read:1 ~write:1 in
  let call =
    Qrpc.call ~timer:(timer t) ~rng:t.rng ~system ~mode:Qrpc.Write
      ~send:(fun dst -> send t dst (Base_msg.Fwd_write_req { op; key; value }))
      ~on_quorum:(fun replies ->
        Hashtbl.remove t.pending op;
        match replies with
        | (_, lc) :: _ -> on_done ~lc
        | [] -> ())
      ~timeout_ms:t.retry_timeout_ms ~bus:t.bus ~node:t.me ~tag:"base.fwd_write" ()
  in
  Hashtbl.replace t.pending op (Write call)

let write t ~key ~value ~on_done =
  match t.style with
  | Forward { primary } -> write_forward t ~primary ~key ~value ~on_done
  | Two_phase { system; _ } -> write_two_phase t ~system ~key ~value ~on_done
  | Local_session _ -> write_two_phase t ~system:(target_system t) ~key ~value ~on_done

let deliver t ~src ~op payload =
  match Hashtbl.find_opt t.pending op, payload with
  | Some (Read call), `Read reply -> Qrpc.deliver call ~src reply
  | Some (Lc_read call), `Lc lc -> Qrpc.deliver call ~src lc
  | Some (Write call), `Ack lc -> Qrpc.deliver call ~src lc
  | Some _, _ | None, _ -> ()

let handle t ~src msg =
  match msg with
  | Base_msg.Read_reply { op; value; lc; _ } -> deliver t ~src ~op (`Read (value, lc))
  | Base_msg.Lc_reply { op; lc } -> deliver t ~src ~op (`Lc lc)
  | Base_msg.Write_ack { op; lc; _ } -> deliver t ~src ~op (`Ack lc)
  | Base_msg.Fwd_write_ack { op; lc; _ } -> deliver t ~src ~op (`Ack lc)
  | Base_msg.Client_read_req { op; key; floor } ->
    if fresh_client_op t ~client:src ~op then
      read ~floor t ~key ~on_done:(fun ~value ~lc ->
          send t src (Base_msg.Client_read_reply { op; key; value; lc }))
  | Base_msg.Client_write_req { op; key; value } ->
    if fresh_client_op t ~client:src ~op then
      write t ~key ~value ~on_done:(fun ~lc ->
          send t src (Base_msg.Client_write_reply { op; key; lc }))
  | Base_msg.Client_read_reply _ | Base_msg.Client_write_reply _ | Base_msg.Read_req _
  | Base_msg.Lc_req _ | Base_msg.Write_req _ | Base_msg.Fwd_write_req _
  | Base_msg.Propagate _ | Base_msg.Gossip _ | Base_msg.Pull_req _
  | Base_msg.Pull_resp _ ->
    ()

let on_recover t =
  t.pending <- Hashtbl.create 16;
  t.seen_client_ops <- Hashtbl.create 16
