(** Deployments of the baseline protocols, behind the same
    {!Dq_intf.Replication.api} as the dual-quorum cluster. *)

type protocol =
  | Primary_backup of { primary : int }
      (** reads and writes forwarded to [primary]; asynchronous
          propagation to the other servers *)
  | Majority_quorum
  | Atomic_majority
      (** majority quorum whose reads write back the value they return
          (ABD read-impose), providing atomic instead of regular
          semantics (paper future work, Section 6) *)
  | Rowa  (** read-one / write-all, synchronous writes *)
  | Rowa_async of { anti_entropy_ms : float }
      (** local reads and writes; epidemic propagation *)
  | Rowa_async_session of { anti_entropy_ms : float }
      (** ROWA-Async with Bayou-style session guarantees: each client
          carries a per-key floor, and a read waits until the local
          replica has caught up to the client's own prior reads and
          writes (read-your-writes + monotonic reads, still not
          regular) *)
  | Custom_quorum of Dq_quorum.Quorum_system.t
      (** any quorum system over the servers (e.g. a grid) with the
          standard two-phase quorum read/write protocol *)

val protocol_name : protocol -> string

type t

val create :
  Dq_sim.Engine.t ->
  Dq_net.Topology.t ->
  ?faults:Dq_net.Net.fault_model ->
  ?retry_timeout_ms:float ->
  ?read_strategy:Dq_quorum.Strategy.t ->
  ?write_strategy:Dq_quorum.Strategy.t ->
  protocol ->
  t
(** Servers are the topology's server nodes; [Custom_quorum] may name a
    subset of them. [read_strategy]/[write_strategy] override quorum
    selection for two-phase protocols when built over the protocol's own
    quorum system (pass the same {!Dq_quorum.Quorum_system.t} value to
    [Custom_quorum] and to {!Dq_quorum.Strategy.explicit}); see
    {!Base_frontend.create}. *)

val api : t -> Dq_intf.Replication.api

val replica : t -> int -> Replica.t option

val net : t -> Base_msg.t Dq_net.Net.t
