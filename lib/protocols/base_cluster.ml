module Net = Dq_net.Net
module Topology = Dq_net.Topology
module Qs = Dq_quorum.Quorum_system
module Engine = Dq_sim.Engine
module R = Dq_intf.Replication

type protocol =
  | Primary_backup of { primary : int }
  | Majority_quorum
  | Atomic_majority
  | Rowa
  | Rowa_async of { anti_entropy_ms : float }
  | Rowa_async_session of { anti_entropy_ms : float }
  | Custom_quorum of Qs.t

let protocol_name = function
  | Primary_backup _ -> "primary-backup"
  | Majority_quorum -> "majority"
  | Atomic_majority -> "atomic-majority"
  | Rowa -> "rowa"
  | Rowa_async _ -> "rowa-async"
  | Rowa_async_session _ -> "rowa-async-session"
  | Custom_quorum qs -> Qs.name qs

type client_stub = {
  mutable next_op : int;
  pending : (int, [ `Read of R.read_result -> unit | `Write of R.write_result -> unit ]) Hashtbl.t;
  floors : (Dq_storage.Key.t, Dq_storage.Lc.t) Hashtbl.t;
      (* per-key session floor (highest timestamp this client has read
         or written), carried on session-guaranteed reads *)
}

type t = {
  engine : Engine.t;
  net : Base_msg.t Net.t;
  protocol : protocol;
  replicas : (int, Replica.t) Hashtbl.t;
  frontends : (int, Base_frontend.t) Hashtbl.t;
  clients : (int, client_stub) Hashtbl.t;
}

let net t = t.net

let replica t id = Hashtbl.find_opt t.replicas id

let replica_mode protocol ~servers ~me =
  match protocol with
  | Primary_backup { primary } ->
    if me = primary then Replica.Primary { backups = servers } else Replica.Plain
  | Majority_quorum | Atomic_majority | Rowa | Custom_quorum _ -> Replica.Plain
  | Rowa_async { anti_entropy_ms } | Rowa_async_session { anti_entropy_ms } ->
    Replica.Async_member { peers = servers; anti_entropy_ms }

let frontend_style protocol ~servers ~me =
  match protocol with
  | Primary_backup { primary } -> Base_frontend.Forward { primary }
  | Majority_quorum ->
    Base_frontend.Two_phase { system = Qs.majority servers; atomic_reads = false }
  | Atomic_majority ->
    Base_frontend.Two_phase { system = Qs.majority servers; atomic_reads = true }
  | Rowa -> Base_frontend.Two_phase { system = Qs.rowa servers; atomic_reads = false }
  | Rowa_async _ ->
    Base_frontend.Two_phase
      { system = Qs.threshold ~name:"local" ~members:[ me ] ~read:1 ~write:1;
        atomic_reads = false }
  | Rowa_async_session _ -> Base_frontend.Local_session { replica = me }
  | Custom_quorum system -> Base_frontend.Two_phase { system; atomic_reads = false }

(* When has a wiped replica heard from enough peers to serve again?
   For quorum protocols, a read quorum of the protocol's own system:
   any write acknowledged before the wipe lives on some write quorum,
   which every read quorum intersects, so the merged store covers it.
   Forward-based and asynchronous protocols have no such system and
   fall back to their trust anchors: a backup pulls from the primary
   (the one write path); a wiped primary waits for every backup (it
   alone orders writes, so it must see everything it ever pushed);
   ROWA-Async pulls from any peer and lets anti-entropy finish the
   job, matching its eventual-consistency contract. *)
let sync_ok protocol ~servers ~me =
  match protocol with
  | Primary_backup { primary } ->
    if me = primary then fun present -> List.for_all (fun p -> p = me || present p) servers
    else fun present -> present primary
  | Rowa_async _ | Rowa_async_session _ ->
    fun present -> List.exists (fun p -> p <> me && present p) servers
  | Majority_quorum | Atomic_majority | Rowa | Custom_quorum _ -> (
    match frontend_style protocol ~servers ~me with
    | Base_frontend.Two_phase { system; _ } ->
      fun present -> Qs.is_read_quorum system ~present
    | Base_frontend.Forward _ | Base_frontend.Local_session _ ->
      fun present -> Qs.is_read_quorum (Qs.majority servers) ~present)

let install_server t ~servers ~retry_timeout_ms ?read_strategy ?write_strategy id =
  let replica =
    Replica.create ~net:t.net ~rng:(Engine.split_rng t.engine) ~me:id
      ~mode:(replica_mode t.protocol ~servers ~me:id)
      ~peers:servers
      ~sync_ok:(sync_ok t.protocol ~servers ~me:id)
      ~retry_timeout_ms ()
  in
  let frontend =
    Base_frontend.create ?read_strategy ?write_strategy ~net:t.net
      ~rng:(Engine.split_rng t.engine) ~me:id
      ~style:(frontend_style t.protocol ~servers ~me:id)
      ~retry_timeout_ms ()
  in
  Hashtbl.replace t.replicas id replica;
  Hashtbl.replace t.frontends id frontend;
  Net.register t.net ~node:id (fun ~src msg ->
      Replica.handle replica ~src msg;
      Base_frontend.handle frontend ~src msg);
  Net.on_status_change t.net ~node:id (fun ~up ~wiped ->
      if up then begin
        Replica.on_recover replica ~wiped;
        Base_frontend.on_recover frontend
      end);
  Replica.start replica

let bump_floor stub key lc =
  let current =
    Option.value (Hashtbl.find_opt stub.floors key) ~default:Dq_storage.Lc.zero
  in
  Hashtbl.replace stub.floors key (Dq_storage.Lc.max current lc)

let install_client t id =
  let stub = { next_op = 0; pending = Hashtbl.create 8; floors = Hashtbl.create 8 } in
  Hashtbl.replace t.clients id stub;
  Net.register t.net ~node:id (fun ~src:_ msg ->
      match msg with
      | Base_msg.Client_read_reply { op; key; value; lc } -> (
        match Hashtbl.find_opt stub.pending op with
        | Some (`Read callback) ->
          Hashtbl.remove stub.pending op;
          bump_floor stub key lc;
          callback { R.read_key = key; read_value = value; read_lc = lc }
        | Some (`Write _) | None -> ())
      | Base_msg.Client_write_reply { op; key; lc } -> (
        match Hashtbl.find_opt stub.pending op with
        | Some (`Write callback) ->
          Hashtbl.remove stub.pending op;
          bump_floor stub key lc;
          callback { R.write_key = key; write_lc = lc }
        | Some (`Read _) | None -> ())
      (* client stubs only consume replies; requests addressed to a
         client are a topology bug and dropping them is deliberate *)
      | _ -> () [@dqr.lint.allow "R9"])

let create engine topology ?faults ?(retry_timeout_ms = 400.) ?read_strategy
    ?write_strategy protocol =
  let net = Net.create engine topology ?faults ~classify:Base_msg.classify ~size_of:Base_msg.size_of () in
  let t =
    {
      engine;
      net;
      protocol;
      replicas = Hashtbl.create 16;
      frontends = Hashtbl.create 16;
      clients = Hashtbl.create 8;
    }
  in
  let servers = Topology.servers topology in
  List.iter (install_server t ~servers ~retry_timeout_ms ?read_strategy ?write_strategy)
    servers;
  List.iter (install_client t) (Topology.clients topology);
  t

let client_stub t id =
  match Hashtbl.find_opt t.clients id with
  | Some stub -> stub
  | None -> invalid_arg (Printf.sprintf "Base_cluster: node %d is not a client" id)

let api t =
  (* Base front ends retransmit forever, so [on_give_up] never fires. *)
  let submit_read ~client ~server ?on_give_up:_ key callback =
    let stub = client_stub t client in
    let op = stub.next_op in
    stub.next_op <- op + 1;
    Hashtbl.replace stub.pending op (`Read callback);
    let floor =
      match t.protocol with
      | Rowa_async_session _ ->
        Option.value (Hashtbl.find_opt stub.floors key) ~default:Dq_storage.Lc.zero
      | _ -> Dq_storage.Lc.zero
    in
    Net.send t.net ~src:client ~dst:server (Base_msg.Client_read_req { op; key; floor })
  in
  let submit_write ~client ~server ?on_give_up:_ key value callback =
    let stub = client_stub t client in
    let op = stub.next_op in
    stub.next_op <- op + 1;
    Hashtbl.replace stub.pending op (`Write callback);
    Net.send t.net ~src:client ~dst:server (Base_msg.Client_write_req { op; key; value })
  in
  {
    R.protocol_name = protocol_name t.protocol;
    submit_read;
    submit_write;
    crash_server = (fun id -> Net.crash t.net id);
    recover_server = (fun id -> Net.recover t.net id);
    server_up = (fun id -> Net.is_up t.net id);
    message_stats = (fun () -> Net.stats t.net);
    quiesce = (fun () -> Hashtbl.iter (fun _ r -> Replica.quiesce r) t.replicas);
  }
