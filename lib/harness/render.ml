module Table = Dq_util.Table

let scientific v = Printf.sprintf "%.2e" v

let response_rows ~title rows =
  let t =
    Table.create
      ~header:[ title; "read ms"; "write ms"; "overall ms"; "completed"; "failed"; "violations" ]
  in
  List.iter
    (fun (r : Experiment.response_row) ->
      Table.add_row t
        [
          r.Experiment.protocol;
          Printf.sprintf "%.1f" r.Experiment.read_ms;
          Printf.sprintf "%.1f" r.Experiment.write_ms;
          Printf.sprintf "%.1f" r.Experiment.overall_ms;
          string_of_int r.Experiment.completed;
          string_of_int r.Experiment.failed;
          string_of_int r.Experiment.violations;
        ])
    rows;
  t

let protocol_columns first_rows =
  List.map (fun (r : Experiment.response_row) -> r.Experiment.protocol) first_rows

let sweep ~title ~x_label ~x_of points =
  match points with
  | [] -> Table.create ~header:[ title ]
  | (_, first) :: _ ->
    let protocols = protocol_columns first in
    let t = Table.create ~header:((title ^ " " ^ x_label) :: protocols) in
    List.iter
      (fun (x, rows) ->
        let cell name =
          match
            List.find_opt (fun (r : Experiment.response_row) -> r.Experiment.protocol = name) rows
          with
          | Some r -> Printf.sprintf "%.1f" r.Experiment.overall_ms
          | None -> "-"
        in
        Table.add_row t (x_of x :: List.map cell protocols))
      points;
    t

let series ~title ~x_label ~x_of ?(fmt = fun v -> Printf.sprintf "%.2f" v) points =
  match points with
  | [] -> Table.create ~header:[ title ]
  | (_, first) :: _ ->
    let protocols = List.map fst first in
    let t = Table.create ~header:((title ^ " " ^ x_label) :: protocols) in
    List.iter
      (fun (x, values) ->
        let cell name =
          match
            List.find_map
              (fun (l, v) -> if String.equal l name then Some v else None)
              values
          with
          | Some v -> fmt v
          | None -> "-"
        in
        Table.add_row t (x_of x :: List.map cell protocols))
      points;
    t
