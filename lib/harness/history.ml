open Dq_storage

type kind = Read | Write

type op = {
  id : int;
  client : int;
  key : Key.t;
  kind : kind;
  value : string;
  lc : Lc.t option;
  invoked : float;
  responded : float option;
  gave_up : float option;
}

(* [completed]/[gave_up] are maintained at the update points below so
   the hot-path counters are O(1) reads rather than table folds. *)
type t = {
  mutable next_id : int;
  mutable completed : int;
  mutable gave_up : int;
  table : (int, op) Hashtbl.t;
}

let create () =
  { next_id = 0; completed = 0; gave_up = 0; table = Hashtbl.create 1024 }

let begin_op t ~client ~key ~kind ~value ~now =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.table id
    { id; client; key; kind; value; lc = None; invoked = now; responded = None; gave_up = None };
  id

let complete_op t ~id ~value ~lc ~now =
  match Hashtbl.find_opt t.table id with
  | Some op ->
    let value = match op.kind with Write -> op.value | Read -> value in
    if Option.is_none op.responded then t.completed <- t.completed + 1;
    Hashtbl.replace t.table id { op with value; lc = Some lc; responded = Some now }
  | None -> invalid_arg "History.complete_op: unknown operation id"

let give_up_op t ~id ~now =
  match Hashtbl.find_opt t.table id with
  | Some op ->
    if Option.is_none op.responded then begin
      if Option.is_none op.gave_up then t.gave_up <- t.gave_up + 1;
      Hashtbl.replace t.table id { op with gave_up = Some now }
    end
  | None -> invalid_arg "History.give_up_op: unknown operation id"

let ops t =
  Hashtbl.fold (fun _ op acc -> op :: acc) t.table []
  |> List.sort (fun a b -> Int.compare a.id b.id)

let completed_count t = t.completed

let gave_up_count t = t.gave_up

let size t = Hashtbl.length t.table
