module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Spec = Dq_workload.Spec
module Rng = Dq_util.Rng
open Dq_storage

type scenario = {
  seed : int64;
  n_servers : int;
  write_ratio : float;
  objects : int;
  loss : float;
  duplicate : float;
  jitter_ms : float;
  crashes : bool;
  partition : bool;
  max_drift : float;
  nemesis : Nemesis.program option;
}

let scenario_of_seed seed =
  let rng = Rng.create seed in
  (* Field order is the replay contract: [max_drift] is drawn after
     every pre-existing field, so counterexample seeds recorded before
     clock drift existed still reproduce the same scenario (the extra
     draws only extend the record). *)
  let n_servers = 3 + Rng.int rng 5 in
  let write_ratio = 0.1 +. Rng.float rng 0.5 in
  let objects = 1 + Rng.int rng 3 in
  let loss = Rng.float rng 0.15 in
  let duplicate = Rng.float rng 0.15 in
  let jitter_ms = Rng.float rng 40. in
  let crashes = Rng.bool rng in
  let partition = Rng.bool rng in
  let max_drift = if Rng.bool rng then 0. else Rng.float rng 0.01 in
  {
    seed;
    n_servers;
    write_ratio;
    objects;
    loss;
    duplicate;
    jitter_ms;
    crashes;
    partition;
    max_drift;
    nemesis = None;
  }

let pp_scenario ppf s =
  Format.fprintf ppf
    "{seed=%Ld n=%d w=%.2f objs=%d loss=%.2f dup=%.2f jitter=%.0f crash=%b part=%b \
     drift=%.4f%s}"
    s.seed s.n_servers s.write_ratio s.objects s.loss s.duplicate s.jitter_ms s.crashes
    s.partition s.max_drift
    (match s.nemesis with
    | None -> ""
    | Some program -> Printf.sprintf " nemesis=%d-steps" (List.length program))

type outcome = {
  scenario : scenario;
  completed : int;
  failed : int;
  gave_up : int;
  stale_reads : int;
  reads_checked : int;
  max_staleness_ms : float;
  mean_age_ms : float;
  max_age_ms : float;
  max_gap_ms : float;
  recoveries_started : int;
  recoveries_done : int;
  sync_bytes : int;
  sync_objects : int;
  max_recovery_ms : float;
  mean_recovery_ms : float;
  phases : Nemesis.phase list;
  violations : string list;
}

let fault_events s =
  let minority = (s.n_servers - 1) / 2 in
  let crash_events =
    if s.crashes && minority >= 1 then
      List.concat
        (List.init minority (fun i ->
             [
               { Driver.at_ms = 2_000. +. (500. *. float_of_int i); action = `Crash i };
               { Driver.at_ms = 20_000. +. (500. *. float_of_int i); action = `Recover i };
             ]))
    else []
  in
  let partition_events =
    if s.partition then
      [
        { Driver.at_ms = 8_000.; action = `Partition [ [ s.n_servers - 1 ] ] };
        { Driver.at_ms = 25_000.; action = `Heal };
      ]
    else []
  in
  crash_events @ partition_events

(* The longest interval between consecutive operation completions — the
   observed unavailability window (0 when fewer than two completed). *)
let max_completion_gap history =
  let times =
    List.filter_map (fun (op : History.op) -> op.History.responded) history
    |> List.sort Float.compare
  in
  match times with
  | [] | [ _ ] -> 0.
  | first :: rest ->
    let gap, _ =
      List.fold_left
        (fun (gap, prev) t -> (Float.max gap (t -. prev), t))
        (0., first) rest
    in
    gap

let run ?(check_invariant = true) ?(check_regular = true) ?(instrument = fun _ -> ())
    (builder : Registry.builder) s =
  let engine = Engine.create ~seed:s.seed () in
  (* Telemetry hook: the CLI attaches trace/metrics sinks to the
     engine's bus here, before any component is built. *)
  instrument engine;
  (* Recovery accounting: amnesia recoveries announce themselves on the
     bus (Recovery_start when a wiped node rejoins, Recovery_done when
     its state transfer completes), so a plain sink suffices — no
     per-protocol introspection. Virtual time makes the tallies
     deterministic. *)
  let recoveries_started = ref 0 in
  let recoveries_done = ref 0 in
  let sync_bytes = ref 0 in
  let sync_objects = ref 0 in
  let max_recovery_ms = ref 0. in
  let total_recovery_ms = ref 0. in
  Dq_telemetry.Bus.subscribe (Engine.telemetry engine) (fun ~time_ms:_ event ->
      match event with
      | Dq_telemetry.Event.Recovery_start _ -> incr recoveries_started
      | Dq_telemetry.Event.Recovery_done { bytes; objects; duration_ms; _ } ->
        incr recoveries_done;
        sync_bytes := !sync_bytes + bytes;
        sync_objects := !sync_objects + objects;
        max_recovery_ms := Float.max !max_recovery_ms duration_ms;
        total_recovery_ms := !total_recovery_ms +. duration_ms
      | _ -> ());
  let topology = Topology.make ~n_servers:s.n_servers ~n_clients:3 () in
  let faults = { Net.loss = s.loss; duplicate = s.duplicate; jitter_ms = s.jitter_ms } in
  let instance =
    builder.Registry.build engine topology ~faults
      ?max_drift:(if s.max_drift > 0. then Some s.max_drift else None)
      ()
  in
  let keys = List.init s.objects (fun i -> Key.make ~volume:0 ~index:i) in
  let invariant_violations =
    match instance.Registry.dq_cluster with
    | Some cluster when check_invariant ->
      Some (Invariant.install_periodic engine cluster ~keys ~every_ms:100. ~until_ms:2e5)
    | Some _ | None -> None
  in
  let nemesis_log =
    Option.map
      (Nemesis.install engine instance ~servers:(Topology.servers topology))
      s.nemesis
  in
  let spec =
    {
      Spec.default with
      Spec.write_ratio = s.write_ratio;
      sharing = Spec.Shared_uniform { objects = s.objects };
    }
  in
  let config =
    {
      (Driver.default_config spec) with
      Driver.ops_per_client = 40;
      timeout_ms = 8_000.;
      horizon_ms = 1.2e6;
    }
  in
  let result =
    Driver.run_with_events engine topology instance.Registry.api config
      ~events:(fault_events s)
      ~on_net_event:(function
        | `Partition groups -> instance.Registry.partition groups
        | `Heal -> instance.Registry.heal ())
  in
  let violations = ref [] in
  let note fmt = Printf.ksprintf (fun msg -> violations := msg :: !violations) fmt in
  if check_regular then begin
    let report = Regular_checker.check result.Driver.history in
    List.iteri
      (fun i v ->
        if i < 3 then note "regular-semantics violation: %s" v.Regular_checker.reason)
      report.Regular_checker.violations
  end;
  if result.Driver.completed = 0 then note "no operation ever completed";
  (match invariant_violations with
  | Some cell ->
    List.iteri
      (fun i v -> if i < 3 then note "safety invariant: %a" (fun () -> Format.asprintf "%a" Invariant.pp) v)
      !cell
  | None -> ());
  let staleness = Staleness.measure result.Driver.history in
  let age = Staleness.measure_age result.Driver.history in
  let phases =
    match nemesis_log with
    | Some log -> Nemesis.phases ~events:!log ~history:result.Driver.history
    | None -> []
  in
  {
    scenario = s;
    completed = result.Driver.completed;
    failed = result.Driver.failed;
    gave_up = result.Driver.gave_up;
    stale_reads = List.length staleness.Staleness.stale;
    reads_checked = staleness.Staleness.checked;
    max_staleness_ms = staleness.Staleness.max_behind_ms;
    mean_age_ms = age.Staleness.mean_age_ms;
    max_age_ms = age.Staleness.max_age_ms;
    max_gap_ms = max_completion_gap result.Driver.history;
    recoveries_started = !recoveries_started;
    recoveries_done = !recoveries_done;
    sync_bytes = !sync_bytes;
    sync_objects = !sync_objects;
    max_recovery_ms = !max_recovery_ms;
    mean_recovery_ms =
      (if !recoveries_done = 0 then 0.
       else !total_recovery_ms /. float_of_int !recoveries_done);
    phases;
    violations = List.rev !violations;
  }

let campaign ?(on_progress = fun _ _ -> ()) ?(scenario_of = scenario_of_seed)
    ?(instrument = fun _ _ -> ()) builder ~seeds =
  List.concat
    (List.mapi
       (fun i seed ->
         let outcome = run ~instrument:(instrument i) builder (scenario_of seed) in
         on_progress i outcome;
         match outcome.violations with [] -> [] | _ :: _ -> [ outcome ])
       seeds)
