open Dq_storage

type stale_read = { read : History.op; behind_ms : float; versions_behind : int }

type report = {
  checked : int;
  stale : stale_read list;
  max_behind_ms : float;
  mean_behind_ms : float;
  max_versions_behind : int;
}

(* Completed writes on one key, sorted by logical clock. *)
let completed_writes ops key =
  List.filter_map
    (fun (op : History.op) ->
      match op.kind, op.responded, op.lc with
      | History.Write, Some ended, Some lc when Key.equal op.key key -> Some (lc, ended)
      | _ -> None)
    ops
  |> List.sort (fun (a, _) (b, _) -> Lc.compare a b)

let examine ~writes (r : History.op) =
  match r.responded, r.lc with
  | Some r_end, Some r_lc ->
    (* Writes that completed before the read finished and supersede the
       value it returned. *)
    let missed =
      List.filter (fun (w_lc, w_end) -> Lc.(w_lc > r_lc) && w_end <= r.invoked) writes
    in
    (match missed with
    | [] -> None
    | _ ->
      let latest_end =
        List.fold_left (fun acc (_, w_end) -> Float.max acc w_end) neg_infinity missed
      in
      Some
        {
          read = r;
          behind_ms = r_end -. latest_end;
          versions_behind = List.length missed;
        })
  | _ -> None

let measure ops =
  let keys = Hashtbl.create 16 in
  List.iter
    (fun (op : History.op) ->
      if not (Hashtbl.mem keys op.key) then Hashtbl.add keys op.key (completed_writes ops op.key))
    ops;
  let reads =
    List.filter
      (fun (op : History.op) ->
        op.kind = History.Read && Option.is_some op.responded)
      ops
  in
  let stale =
    List.filter_map
      (fun r ->
        let writes = Option.value (Hashtbl.find_opt keys r.History.key) ~default:[] in
        examine ~writes r)
      reads
  in
  let max_behind_ms = List.fold_left (fun acc s -> Float.max acc s.behind_ms) 0. stale in
  let mean_behind_ms =
    match stale with
    | [] -> 0.
    | _ ->
      List.fold_left (fun acc s -> acc +. s.behind_ms) 0. stale
      /. float_of_int (List.length stale)
  in
  let max_versions_behind =
    List.fold_left (fun acc s -> Stdlib.max acc s.versions_behind) 0 stale
  in
  { checked = List.length reads; stale; max_behind_ms; mean_behind_ms; max_versions_behind }

type age_report = { reads : int; mean_age_ms : float; max_age_ms : float }

(* The offline twin of the online sink's read-age metric: for each
   completed read, the time since the write that produced the returned
   version completed — 0 when that write's own response was still in
   flight (or the value is the initial one), matching the online
   definition where only already-completed writes are visible. *)
let measure_age ops =
  let keys = Hashtbl.create 16 in
  let writes_for key =
    match Hashtbl.find_opt keys key with
    | Some ws -> ws
    | None ->
      let ws = completed_writes ops key in
      Hashtbl.add keys key ws;
      ws
  in
  let reads = ref 0 in
  let sum = ref 0. in
  let max_age = ref 0. in
  List.iter
    (fun (op : History.op) ->
      match op.kind, op.responded with
      | History.Read, Some r_end ->
        incr reads;
        let age =
          match op.lc with
          | None -> 0.
          | Some r_lc ->
            (match
               List.find_opt (fun (w_lc, _) -> Lc.equal w_lc r_lc) (writes_for op.key)
             with
            | Some (_, w_end) when w_end <= r_end -> r_end -. w_end
            | _ -> 0.)
        in
        sum := !sum +. age;
        if age > !max_age then max_age := age
      | _ -> ())
    ops;
  {
    reads = !reads;
    mean_age_ms = (if !reads = 0 then 0. else !sum /. float_of_int !reads);
    max_age_ms = !max_age;
  }

let stale_fraction report =
  if report.checked = 0 then 0.
  else float_of_int (List.length report.stale) /. float_of_int report.checked

let pp ppf report =
  Format.fprintf ppf "checked=%d stale=%d (%.1f%%) behind mean=%.0fms max=%.0fms versions<=%d"
    report.checked (List.length report.stale)
    (100. *. stale_fraction report)
    report.mean_behind_ms report.max_behind_ms report.max_versions_behind
