module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Net = Dq_net.Net
module Cluster = Dq_core.Cluster
module R = Dq_intf.Replication
open Dq_storage

type op_spec = { client : int; server : int; kind : [ `Read | `Write of string ] }

type scenario = {
  n_servers : int;
  n_clients : int;
  ops : op_spec list;
  max_decisions : int;
  max_crashes : int;
}

let default_scenario =
  {
    n_servers = 3;
    n_clients = 2;
    ops =
      [
        { client = 3; server = 0; kind = `Write "a" };
        { client = 4; server = 1; kind = `Write "b" };
        { client = 4; server = 1; kind = `Read };
        { client = 3; server = 0; kind = `Read };
      ];
    max_decisions = 400;
    max_crashes = 0;
  }

type violation = { choices : int list; detail : string }

type outcome = {
  runs : int;
  complete_runs : int;
  violations : violation list;
  distinct_outcomes : int;
}

let the_key = Key.make ~volume:0 ~index:0

(* Execute one run. [next_choice ~width] supplies each decision (width =
   number of alternatives: one per pending message, plus one for
   advancing time when the engine has events). Returns the history and
   whether every operation completed. *)
let execute ~config scenario ~next_choice =
  let engine = Engine.create ~seed:1L () in
  let topology = Topology.make ~n_servers:scenario.n_servers ~n_clients:scenario.n_clients () in
  let cluster = Cluster.create engine topology (config (Topology.servers topology)) in
  let api = Cluster.api cluster in
  let net = Cluster.net cluster in
  Net.set_manual net true;
  let history = History.create () in
  let outstanding = ref 0 in
  (* Virtual time barely advances under manual delivery (whole causal
     chains run at one instant), so the checker's real-time order would
     collapse. The decision counter is the run's logical real time: an
     operation completes at the decision that delivered its last
     message, and operations submitted together are concurrent. *)
  let decisions = ref 0 in
  let logical_now () = float_of_int !decisions in
  List.iter
    (fun op ->
      incr outstanding;
      match op.kind with
      | `Write value ->
        let id =
          History.begin_op history ~client:op.client ~key:the_key ~kind:History.Write ~value
            ~now:(logical_now ())
        in
        api.R.submit_write ~client:op.client ~server:op.server the_key value (fun w ->
            History.complete_op history ~id ~value ~lc:w.R.write_lc ~now:(logical_now ());
            decr outstanding)
      | `Read ->
        let id =
          History.begin_op history ~client:op.client ~key:the_key ~kind:History.Read ~value:""
            ~now:(logical_now ())
        in
        api.R.submit_read ~client:op.client ~server:op.server the_key (fun r ->
            History.complete_op history ~id ~value:r.R.read_value ~lc:r.R.read_lc
              ~now:(logical_now ());
            decr outstanding))
    scenario.ops;
  (* Alternatives at each decision: deliver one of the pending
     messages, advance time to the next timer, or (while the crash
     budget lasts) crash one of the still-up servers - recovery follows
     two timer steps later via a scheduled event. Choice indices:
     [0, n_pending) deliveries, then the step, then crashes. *)
  let crashes_left = ref scenario.max_crashes in
  (* Crashing a front end would silently lose its in-flight client
     operations (application clients do not retransmit; the timed
     driver handles that with timeouts) - only other servers are fair
     game, so every run can still complete. *)
  let front_ends = List.map (fun op -> op.server) scenario.ops in
  let rec loop () =
    if !outstanding > 0 && !decisions < scenario.max_decisions then begin
      let n_pending = List.length (Net.pending net) in
      let can_step = Engine.pending_events engine > 0 in
      let crashable =
        if !crashes_left > 0 then
          List.filter
            (fun s -> Net.is_up net s && not (List.mem s front_ends))
            (Topology.servers topology)
        else []
      in
      let n_step = if can_step then 1 else 0 in
      let width = n_pending + n_step + List.length crashable in
      if width > 0 then begin
        incr decisions;
        let choice = next_choice ~width in
        if choice < n_pending then Net.deliver_pending net choice
        else if can_step && choice = n_pending then ignore (Engine.step engine)
        else begin
          match List.nth_opt crashable (choice - n_pending - n_step) with
          | None -> () (* unreachable: choice < width *)
          | Some victim ->
            decr crashes_left;
            api.R.crash_server victim;
            (* Recover after a while of virtual time so the run can finish. *)
            ignore
              (Engine.schedule engine ~delay:5_000. (fun () ->
                   api.R.recover_server victim))
        end;
        loop ()
      end
    end
  in
  loop ();
  (History.ops history, !outstanding = 0)

(* Follow [forced] choices, then always 0; report the width seen at the
   first free decision (the DFS frontier). *)
let run_prefix ~config scenario forced =
  let remaining = ref forced in
  let depth = ref 0 in
  let frontier_width = ref 0 in
  let next_choice ~width =
    incr depth;
    match !remaining with
    | c :: rest ->
      remaining := rest;
      if c < width then c else width - 1
    | [] ->
      if !frontier_width = 0 then frontier_width := width;
      0
  in
  let history, complete = execute ~config scenario ~next_choice in
  (history, complete, !frontier_width)

let run_choices ~config scenario choices =
  let history, _, _ = run_prefix ~config scenario choices in
  history

let default_config servers =
  Dq_core.Config.dqvl ~servers ~volume_lease_ms:5_000. ~proactive_renew:false ()

let check_history ~choices history =
  let report = Regular_checker.check history in
  List.map
    (fun v -> { choices; detail = v.Regular_checker.reason })
    report.Regular_checker.violations

(* Fingerprint of what the run's reads observed, to measure how many
   genuinely different outcomes the explored schedules produce. *)
let outcome_fingerprint history =
  List.filter_map
    (fun (op : History.op) ->
      match op.kind, op.responded with
      | History.Read, Some _ -> Some (op.client, op.value)
      | _ -> None)
    history
  |> List.sort (fun (c1, v1) (c2, v2) ->
         let c = Int.compare c1 c2 in
         if c <> 0 then c else String.compare v1 v2)

let explore ?(config = default_config) ?(budget = 2000) scenario =
  let queue = Queue.create () in
  Queue.add [] queue;
  let runs = ref 0 in
  let complete_runs = ref 0 in
  let violations = ref [] in
  let fingerprints = Hashtbl.create 64 in
  while (not (Queue.is_empty queue)) && !runs < budget do
    let prefix = Queue.pop queue in
    incr runs;
    let history, complete, frontier_width = run_prefix ~config scenario prefix in
    if complete then incr complete_runs;
    Hashtbl.replace fingerprints (outcome_fingerprint history) ();
    violations := check_history ~choices:prefix history @ !violations;
    (* Enqueue every child of the first free decision: alternatives
       explore sibling schedules, and the 0-child advances the frontier
       so deeper decisions of this path get expanded too. *)
    for alternative = 0 to frontier_width - 1 do
      Queue.add (prefix @ [ alternative ]) queue
    done
  done;
  {
    runs = !runs;
    complete_runs = !complete_runs;
    violations = List.rev !violations;
    distinct_outcomes = Hashtbl.length fingerprints;
  }

let explore_random ?(config = default_config) ?(runs = 200) ~seed scenario =
  let complete_runs = ref 0 in
  let violations = ref [] in
  let fingerprints = Hashtbl.create 64 in
  for i = 0 to runs - 1 do
    let rng = Dq_util.Rng.create (Int64.add seed (Int64.of_int i)) in
    let recorded = ref [] in
    let next_choice ~width =
      let c = Dq_util.Rng.int rng width in
      recorded := c :: !recorded;
      c
    in
    let history, complete = execute ~config scenario ~next_choice in
    if complete then incr complete_runs;
    Hashtbl.replace fingerprints (outcome_fingerprint history) ();
    violations := check_history ~choices:(List.rev !recorded) history @ !violations
  done;
  {
    runs;
    complete_runs = !complete_runs;
    violations = List.rev !violations;
    distinct_outcomes = Hashtbl.length fingerprints;
  }
