module Topology = Dq_net.Topology
module Net = Dq_net.Net

type instance = {
  api : Dq_intf.Replication.api;
  partition : int list list -> unit;
  heal : unit -> unit;
  set_service_time : float -> unit; (* per-message processing cost *)
  control : Net.control;
      (* message-type-erased fault-injection handle over the same
         network, for the nemesis orchestrator *)
  server_clock : int -> Dq_sim.Clock.t option;
      (* per-node clock when the protocol models drift; None otherwise *)
  dq_cluster : Dq_core.Cluster.t option;
      (* exposed for introspection (invariant checking); None for the
         baseline protocols *)
}

type builder = {
  name : string;
  build :
    Dq_sim.Engine.t ->
    Topology.t ->
    ?faults:Net.fault_model ->
    ?max_drift:float ->
    unit ->
    instance;
}

let with_drift ?max_drift config =
  match max_drift with
  | Some max_drift when max_drift > 0. -> { config with Dq_core.Config.max_drift }
  | Some _ | None -> config

let dq_instance engine topology ?faults ?max_drift config =
  let config = with_drift ?max_drift config in
  let cluster = Dq_core.Cluster.create engine topology ?faults config in
  let net = Dq_core.Cluster.net cluster in
  {
    api = Dq_core.Cluster.api cluster;
    partition = (fun groups -> Net.partition net groups);
    heal = (fun () -> Net.heal net);
    set_service_time = (fun ms -> Net.set_service_time net ~ms);
    control = Net.control net;
    server_clock = (fun id -> Dq_core.Cluster.server_clock cluster id);
    dq_cluster = Some cluster;
  }

let dqvl ?volume_lease_ms ?proactive_renew ?object_lease_ms ?max_rounds () =
  {
    name = "dqvl";
    build =
      (fun engine topology ?faults ?max_drift () ->
        let servers = Topology.servers topology in
        let config =
          Dq_core.Config.dqvl ~servers ?volume_lease_ms ?proactive_renew ?object_lease_ms
            ?max_rounds ()
        in
        dq_instance engine topology ?faults ?max_drift config);
  }

let dqvl_custom ~name make_config =
  {
    name;
    build =
      (fun engine topology ?faults ?max_drift () ->
        dq_instance engine topology ?faults ?max_drift
          (make_config (Topology.servers topology)));
  }

let dq_basic =
  {
    name = "dq-basic";
    build =
      (fun engine topology ?faults ?max_drift () ->
        let servers = Topology.servers topology in
        dq_instance engine topology ?faults ?max_drift (Dq_core.Config.basic ~servers ()));
  }

let base_instance engine topology ?faults protocol =
  let cluster = Dq_proto.Base_cluster.create engine topology ?faults protocol in
  let net = Dq_proto.Base_cluster.net cluster in
  {
    api = Dq_proto.Base_cluster.api cluster;
    partition = (fun groups -> Net.partition net groups);
    heal = (fun () -> Net.heal net);
    set_service_time = (fun ms -> Net.set_service_time net ~ms);
    control = Net.control net;
    server_clock = (fun _ -> None);
    dq_cluster = None;
  }

let primary_backup =
  {
    name = "primary-backup";
    build =
      (fun engine topology ?faults ?max_drift:_ () ->
        (* The primary lives at an edge site with no co-located client
           (the paper's WAN setting: the primary is remote to the
           measured clients). Clients are routed to servers 0, 1, 2...,
           so the last server qualifies when there are enough. *)
        let n = List.length (Topology.servers topology) in
        let primary = if n > 3 then n - 1 else 0 in
        base_instance engine topology ?faults
          (Dq_proto.Base_cluster.Primary_backup { primary }));
  }

let majority =
  {
    name = "majority";
    build =
      (fun engine topology ?faults ?max_drift:_ () ->
        base_instance engine topology ?faults Dq_proto.Base_cluster.Majority_quorum);
  }

let atomic_majority =
  {
    name = "atomic-majority";
    build =
      (fun engine topology ?faults ?max_drift:_ () ->
        base_instance engine topology ?faults Dq_proto.Base_cluster.Atomic_majority);
  }

let dqvl_atomic ?volume_lease_ms ?proactive_renew () =
  {
    name = "dqvl-atomic";
    build =
      (fun engine topology ?faults ?max_drift () ->
        let servers = Topology.servers topology in
        let config =
          {
            (Dq_core.Config.dqvl ~servers ?volume_lease_ms ?proactive_renew ()) with
            Dq_core.Config.atomic_reads = true;
          }
        in
        dq_instance engine topology ?faults ?max_drift config);
  }

let rowa =
  {
    name = "rowa";
    build =
      (fun engine topology ?faults ?max_drift:_ () ->
        base_instance engine topology ?faults Dq_proto.Base_cluster.Rowa);
  }

let rowa_async ?(anti_entropy_ms = 1000.) () =
  {
    name = "rowa-async";
    build =
      (fun engine topology ?faults ?max_drift:_ () ->
        base_instance engine topology ?faults
          (Dq_proto.Base_cluster.Rowa_async { anti_entropy_ms }));
  }

let grid ~rows ~cols =
  {
    name = Printf.sprintf "grid(%dx%d)" rows cols;
    build =
      (fun engine topology ?faults ?max_drift:_ () ->
        let servers = Topology.servers topology in
        if List.length servers < rows * cols then
          invalid_arg "Registry.grid: not enough servers";
        let members = List.filteri (fun i _ -> i < rows * cols) servers in
        let system = Dq_quorum.Quorum_system.grid ~rows ~cols members in
        base_instance engine topology ?faults (Dq_proto.Base_cluster.Custom_quorum system));
  }

(* Session-registered builders (e.g. the quorum-opt --apply winner):
   consulted before the static table, so a registered name can also
   shadow a built-in. *)
let registered : (string, builder) Hashtbl.t = Hashtbl.create 4

let register builder = Hashtbl.replace registered builder.name builder

(* By-name lookup shared by the CLIs and the bench scenario registry.
   "dqvl-paper" is the evaluation configuration (short on-demand
   leases); plain "dqvl" keeps the builder's defaults. *)
let find_static = function
  | "dqvl" -> Some (dqvl ())
  | "dqvl-paper" -> Some (dqvl ~volume_lease_ms:1_000. ~proactive_renew:false ())
  | "dq-basic" -> Some dq_basic
  | "primary-backup" -> Some primary_backup
  | "majority" -> Some majority
  | "atomic-majority" -> Some atomic_majority
  | "dqvl-atomic" -> Some (dqvl_atomic ())
  | "rowa" -> Some rowa
  | "rowa-async" -> Some (rowa_async ())
  | _ -> None

let find name =
  match Hashtbl.find_opt registered name with
  | Some builder -> Some builder
  | None -> find_static name

let known_names () =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) registered [])
  @ [
    "dqvl";
    "dqvl-paper";
    "dq-basic";
    "primary-backup";
    "majority";
    "atomic-majority";
    "dqvl-atomic";
    "rowa";
    "rowa-async";
  ]

(* The paper's five protocols with the evaluation configuration:
   short (1 s) volume leases renewed on demand, so that low access
   locality pays renewal costs at distant replicas (Figure 7) while
   frequent access at the home replica amortizes them. *)
let paper_five =
  [
    dqvl ~volume_lease_ms:1_000. ~proactive_renew:false ();
    primary_backup;
    majority;
    rowa;
    rowa_async ();
  ]
