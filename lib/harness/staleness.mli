(** Staleness metrics over a recorded history.

    The paper's case against ROWA-Async is that local reads have {e no
    worst-case staleness bound}: a read may return data arbitrarily
    long after it was overwritten. This module makes that concrete: for
    every completed read that returned a superseded value it reports

    - {b time staleness}: how long before the read's response the
      freshest overwriting write had already completed, and
    - {b version staleness}: how many completed writes the read lagged
      behind.

    For protocols with regular semantics both are always zero. *)

type stale_read = {
  read : History.op;
  behind_ms : float;      (** time since the freshest missed write completed *)
  versions_behind : int;  (** completed writes between returned and freshest *)
}

type report = {
  checked : int;          (** completed reads examined *)
  stale : stale_read list;
  max_behind_ms : float;  (** 0 when nothing is stale *)
  mean_behind_ms : float; (** over stale reads only; 0 when none *)
  max_versions_behind : int;
}

val measure : History.op list -> report

type age_report = {
  reads : int;          (** completed reads examined *)
  mean_age_ms : float;  (** over all completed reads; 0 when none *)
  max_age_ms : float;
}

val measure_age : History.op list -> age_report
(** Instantaneous age of the value each completed read returned: time
    since the write that produced the returned version completed, 0
    when that write's response was still in flight at read completion
    or the value is the initial one — the offline twin of the online
    {!Dq_telemetry.Aoi} read-age metric. *)

val stale_fraction : report -> float
(** Stale reads over checked reads; [0.] when no reads completed. *)

val pp : Format.formatter -> report -> unit
