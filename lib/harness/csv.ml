let escape cell =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') cell
  in
  if not needs_quoting then cell
  else begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_string ~header rows =
  let line cells = String.concat "," (List.map escape cells) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let write_rows ~dir ~name ~header rows =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (name ^ ".csv") in
  let oc = open_out path in
  (try output_string oc (to_string ~header rows)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  path

let write_series ~dir ~name ~x_label ~x_of points =
  let labels = match points with [] -> [] | (_, first) :: _ -> List.map fst first in
  let header = x_label :: labels in
  let rows =
    List.map
      (fun (x, values) ->
        x_of x
        :: List.map
             (fun label ->
               match
                 List.find_map
                   (fun (l, v) -> if String.equal l label then Some v else None)
                   values
               with
               | Some v -> Printf.sprintf "%.17g" v
               | None -> "")
             labels)
      points
  in
  write_rows ~dir ~name ~header rows
