module Cluster = Dq_core.Cluster
module Iqs = Dq_core.Iqs_server
module Oqs = Dq_core.Oqs_server
module Qs = Dq_quorum.Quorum_system
open Dq_storage

type violation = { iqs : int; oqs : int; key : Key.t; detail : string }

let check cluster ~keys =
  let config = Cluster.config cluster in
  let iqs_members = Qs.members config.Dq_core.Config.iqs in
  let oqs_members = Qs.members config.Dq_core.Config.oqs in
  let violations = ref [] in
  let note iqs oqs key detail = violations := { iqs; oqs; key; detail } :: !violations in
  List.iter
    (fun j ->
      match Cluster.oqs_server cluster j with
      | None -> ()
      | Some oqs_node ->
        List.iter
          (fun i ->
            match Cluster.iqs_server cluster i with
            | None -> ()
            (* A syncing replica (post-amnesia catch-up) does not vote
               in any quorum, so its wiped lease bookkeeping carries no
               safety obligation until it re-enters Active — at which
               point the lease quarantine guarantees every pre-wipe
               grant has expired at its holder. *)
            | Some iqs_node when Iqs.is_syncing iqs_node -> ()
            | Some iqs_node ->
              List.iter
                (fun key ->
                  let volume = Key.volume key in
                  let holds_volume = Oqs.volume_valid_from oqs_node ~volume ~iqs:i in
                  let holds_object = Oqs.object_valid_from oqs_node key ~iqs:i in
                  if holds_volume && holds_object then begin
                    (* i must not have concluded the opposite. *)
                    if not (Iqs.lease_valid_for iqs_node ~volume ~oqs:j) then
                      note i j key "OQS holds a volume lease the IQS considers expired";
                    if not (Iqs.callback_possible iqs_node key ~oqs:j) then
                      note i j key "OQS holds an object lease the IQS considers revoked"
                  end)
                keys)
          iqs_members)
    oqs_members;
  !violations

let install_periodic engine cluster ~keys ~every_ms ~until_ms =
  let acc = ref [] in
  let rec tick () =
    if Dq_sim.Engine.now engine < until_ms then begin
      acc := check cluster ~keys @ !acc;
      ignore (Dq_sim.Engine.schedule engine ~delay:every_ms tick)
    end
  in
  ignore (Dq_sim.Engine.schedule engine ~delay:every_ms tick);
  acc

let pp ppf v =
  Format.fprintf ppf "iqs=%d oqs=%d key=%a: %s" v.iqs v.oqs Key.pp v.key v.detail
