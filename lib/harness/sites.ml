(* Site-partitioned synthetic workload for the parallel (PDES) engine.

   [n_sites] edge sites, each one PDES partition holding one edge
   server and [clients_per_site] closed-loop clients. Every site owns
   a volume of [keys_per_site] keys homed on its server: clients write
   their own site's keys (single home server per key, so logical
   clocks are totally ordered per key and the history is regular by
   construction) and read either locally or — with probability
   [remote_ratio] — from another site's server across the WAN, which
   is what exercises the cross-partition mailboxes. Faults: per-send
   Bernoulli loss and seeded server crash windows; clients retry on a
   timeout and give up after [max_retries].

   Every piece of mutable state (server stores, client loop state,
   per-partition History and Metrics) is in flat preallocated arrays
   and owned by exactly one partition, so the run is deterministic
   under any domain interleaving; per-partition results are merged
   deterministically afterwards. The serial and pooled runs of the
   same config are bit-identical — the determinism test in
   test/test_pdes.ml holds this as an invariant. *)

open Dq_storage

type config = {
  n_sites : int;
  clients_per_site : int;
  keys_per_site : int;
  ops_per_client : int;
  remote_ratio : float; (* fraction of reads served by a remote site *)
  write_ratio : float;
  loss : float;
  batch_ms : float; (* intra-site delivery batching; 0 = exact *)
  crash_sites : int; (* servers given one seeded crash window *)
  seed : int64;
}

let default =
  {
    n_sites = 4;
    clients_per_site = 4;
    keys_per_site = 8;
    ops_per_client = 50;
    remote_ratio = 0.2;
    write_ratio = 0.3;
    loss = 0.;
    batch_ms = 0.;
    crash_sites = 0;
    seed = 1L;
  }

type result = {
  ops_completed : int;
  ops_gave_up : int;
  events : int; (* engine events executed, summed over partitions *)
  windows : int; (* PDES barrier windows *)
  msgs_sent : int;
  msgs_delivered : int;
  msgs_dropped : int;
  metrics_json : string; (* merged per-partition metrics *)
  history : History.op list; (* merged and renumbered *)
  checked_reads : int;
  violations : int;
}

type payload =
  | Req of { op : int; client : int; site : int; ix : int; write : bool; value : string }
  | Resp of { op : int; value : string; lc : Lc.t; write : bool }

(* Delays: paper topology numbers — 8 ms client <-> own-site server,
   80 ms across sites, 0.05 ms to self. Lookahead is then 80 ms. *)
let lan_ms = 8.
let wan_ms = 80.
let local_ms = 0.05
let timeout_ms = 250.
let think_ms = 1.
let max_retries = 2

let run ?pool cfg =
  if cfg.n_sites < 1 then invalid_arg "Sites.run: n_sites must be >= 1";
  let n_servers = cfg.n_sites in
  let n_clients = cfg.n_sites * cfg.clients_per_site in
  let site_of node = if node < n_servers then node else (node - n_servers) / cfg.clients_per_site in
  let remote_ratio = if cfg.n_sites > 1 then cfg.remote_ratio else 0. in
  let topo =
    Dq_net.Topology.custom ~n_servers ~n_clients
      ~delay:(fun ~src ~dst ->
        if src = dst then local_ms
        else if site_of src = site_of dst then lan_ms
        else wan_ms)
      ~closest:site_of
  in
  let lookahead =
    let la = Dq_net.Pnet.lookahead topo ~part_of:site_of in
    if la < Float.infinity then la else wan_ms
  in
  let pdes = Dq_sim.Pdes.create ~seed:cfg.seed ~lookahead cfg.n_sites in
  let dummy = Resp { op = -1; value = ""; lc = Lc.zero; write = false } in
  let net =
    Dq_net.Pnet.create pdes topo ~part_of:site_of ~dummy ~loss:cfg.loss
      ~batch_ms:cfg.batch_ms ()
  in
  (* Server stores: key (site, ix) lives at values/lcs.(site * keys + ix). *)
  let n_keys = n_servers * cfg.keys_per_site in
  let values = Array.make n_keys "" in
  let lcs = Array.make n_keys Lc.zero in
  (* Per-partition accounting, single-writer each. *)
  let histories = Array.init cfg.n_sites (fun _ -> History.create ()) in
  let metrics = Array.init cfg.n_sites (fun _ -> Dq_telemetry.Metrics.create ()) in
  (* Client loop state, indexed by client offset [0, n_clients). *)
  let setup_rng = Dq_util.Rng.create (Int64.add cfg.seed 0x9e3779b97f4a7c15L) in
  let client_rngs = Array.init n_clients (fun _ -> Dq_util.Rng.split setup_rng) in
  let remaining = Array.make n_clients cfg.ops_per_client in
  let pending = Array.make n_clients (-1) in (* partition-local history id *)
  let attempt = Array.make n_clients 0 in
  let vseq = Array.make n_clients 0 in
  let p_site = Array.make n_clients 0 in (* target site of the pending op *)
  let p_ix = Array.make n_clients 0 in
  let p_write = Array.make n_clients false in
  let p_value = Array.make n_clients "" in
  let p_invoked = Array.make n_clients 0. in
  let node_of c = n_servers + c in
  let client_engine c = Dq_net.Pnet.node_engine net (node_of c) in

  (* Server side: apply and reply. Runs on the server's partition. *)
  let on_server server ~src msg =
    match msg with
    | Req { op; client; site; ix; write; value } ->
      let slot = (site * cfg.keys_per_site) + ix in
      if write then begin
        lcs.(slot) <- Lc.succ lcs.(slot) ~node:server;
        values.(slot) <- value
      end;
      Dq_net.Pnet.send net ~src:server ~dst:src
        (Resp { op; value = values.(slot); lc = lcs.(slot); write });
      ignore client
    | Resp _ -> ()
  in

  (* Client side: closed loop with retries. All of these run on the
     client's partition. *)
  let send_req c =
    let site = p_site.(c) in
    let my_site = site_of (node_of c) in
    let m = metrics.(my_site) in
    Dq_telemetry.Metrics.record_msg m
      ~label:
        (if p_write.(c) then "write"
         else if site = my_site then "read_local"
         else "read_remote")
      ~local:(site = my_site)
      ~bytes:(16 + String.length p_value.(c))
      ();
    Dq_net.Pnet.send net ~src:(node_of c) ~dst:site
      (Req
         {
           op = pending.(c);
           client = node_of c;
           site;
           ix = p_ix.(c);
           write = p_write.(c);
           value = p_value.(c);
         })
  in
  let rec start_next c =
    if remaining.(c) > 0 then begin
      remaining.(c) <- remaining.(c) - 1;
      let rng = client_rngs.(c) in
      let my_site = site_of (node_of c) in
      let write = Dq_util.Rng.bernoulli rng cfg.write_ratio in
      let site =
        if write || not (Dq_util.Rng.bernoulli rng remote_ratio) then my_site
        else begin
          (* a uniformly random *other* site *)
          let s = Dq_util.Rng.int rng (cfg.n_sites - 1) in
          if s >= my_site then s + 1 else s
        end
      in
      let ix = Dq_util.Rng.int rng cfg.keys_per_site in
      let value =
        if write then begin
          vseq.(c) <- vseq.(c) + 1;
          Printf.sprintf "c%d:%d" c vseq.(c)
        end
        else ""
      in
      let eng = client_engine c in
      let now = Dq_sim.Engine.now eng in
      let id =
        History.begin_op histories.(my_site) ~client:(node_of c)
          ~key:(Key.make ~volume:site ~index:ix)
          ~kind:(if write then History.Write else History.Read)
          ~value ~now
      in
      pending.(c) <- id;
      attempt.(c) <- 0;
      p_site.(c) <- site;
      p_ix.(c) <- ix;
      p_write.(c) <- write;
      p_value.(c) <- value;
      p_invoked.(c) <- now;
      send_req c;
      arm_timeout c id 0
    end
  and arm_timeout c id att =
    Dq_net.Pnet.timer net ~node:(node_of c) ~delay_ms:timeout_ms (fun () ->
        if pending.(c) = id && attempt.(c) = att then begin
          if att >= max_retries then begin
            let my_site = site_of (node_of c) in
            let eng = client_engine c in
            History.give_up_op histories.(my_site) ~id ~now:(Dq_sim.Engine.now eng);
            pending.(c) <- -1;
            ignore (Dq_sim.Engine.schedule eng ~delay:think_ms (fun () -> start_next c))
          end
          else begin
            attempt.(c) <- att + 1;
            send_req c;
            arm_timeout c id (att + 1)
          end
        end)
  in
  let on_client c ~src msg =
    ignore src;
    match msg with
    | Resp { op; value; lc; write } ->
      if pending.(c) = op then begin
        pending.(c) <- -1;
        let my_site = site_of (node_of c) in
        let eng = client_engine c in
        let now = Dq_sim.Engine.now eng in
        History.complete_op histories.(my_site) ~id:op ~value ~lc ~now;
        Dq_telemetry.Metrics.record_latency metrics.(my_site)
          ~kind:(if write then "write" else "read")
          (now -. p_invoked.(c));
        ignore (Dq_sim.Engine.schedule eng ~delay:think_ms (fun () -> start_next c))
      end
    | Req _ -> ()
  in

  for s = 0 to n_servers - 1 do
    Dq_net.Pnet.register net ~node:s (on_server s)
  done;
  for c = 0 to n_clients - 1 do
    Dq_net.Pnet.register net ~node:(node_of c) (on_client c)
  done;

  (* Seeded crash windows: the first [crash_sites] servers each go down
     once. Drawn from the setup stream before the run, so the schedule
     is part of the workload, not of the execution. *)
  for s = 0 to Stdlib.min cfg.crash_sites n_servers - 1 do
    let t0 = 300. +. Dq_util.Rng.float setup_rng 500. in
    let dur = 400. +. Dq_util.Rng.float setup_rng 600. in
    Dq_net.Pnet.crash_at net ~node:s ~time:t0;
    Dq_net.Pnet.recover_at net ~node:s ~time:(t0 +. dur)
  done;

  (* Kick off every client at a deterministic stagger. *)
  for c = 0 to n_clients - 1 do
    let t0 = 1. +. (0.01 *. float_of_int c) in
    ignore (Dq_sim.Engine.schedule_at (client_engine c) ~time:t0 (fun () -> start_next c))
  done;

  Dq_sim.Pdes.run ?pool pdes;

  (* Deterministic merges: metrics commute; histories sort by
     (invocation time, partition, partition-local id) and renumber. *)
  let merged_metrics = Dq_telemetry.Metrics.create () in
  Array.iter (fun m -> Dq_telemetry.Metrics.merge_into ~src:m ~dst:merged_metrics) metrics;
  let tagged =
    List.concat
      (List.mapi
         (fun p h -> List.map (fun (op : History.op) -> (p, op)) (History.ops h))
         (Array.to_list histories))
  in
  let cmp (pa, (a : History.op)) (pb, (b : History.op)) =
    let c = Float.compare a.invoked b.invoked in
    if c <> 0 then c
    else
      let c = Int.compare pa pb in
      if c <> 0 then c else Int.compare a.id b.id
  in
  let history =
    List.sort cmp tagged |> List.mapi (fun i (_, (op : History.op)) -> { op with id = i })
  in
  let report = Regular_checker.check history in
  {
    ops_completed = Array.fold_left (fun acc h -> acc + History.completed_count h) 0 histories;
    ops_gave_up = Array.fold_left (fun acc h -> acc + History.gave_up_count h) 0 histories;
    events = Dq_sim.Pdes.total_events pdes;
    windows = Dq_sim.Pdes.windows pdes;
    msgs_sent = Dq_net.Pnet.sent net;
    msgs_delivered = Dq_net.Pnet.delivered net;
    msgs_dropped = Dq_net.Pnet.dropped net;
    metrics_json = Dq_telemetry.Metrics.to_json merged_metrics;
    history;
    checked_reads = report.checked;
    violations = List.length report.violations;
  }
