(** Randomized fault-scenario fuzzing.

    Each scenario draws a topology size, workload mix, fault model
    (loss/duplication/jitter), an IQS-minority crash schedule, an
    optional transient partition and an optional clock-drift bound from
    a seed, runs a protocol under it, and checks:

    - regular semantics over the full history (quorum protocols),
    - liveness (some operations complete),
    - for DQVL clusters additionally the cross-node safety invariant,
      sampled every 100 ms of virtual time.

    A scenario may additionally carry a {!Nemesis.program}: a
    declarative timeline of composable faults (partition patterns,
    crash storms, clock-skew bumps, link degradation and flapping,
    lease-expiry-targeted windows) interpreted against the instance
    while the workload runs; outcomes then include per-phase
    degraded-mode metrics.

    The whole run is a pure function of the seed (plus the attached
    program, itself typically seed-derived): a reported counterexample
    seed replays exactly. Used by [bin/fuzz.exe], [bin/nemesis.exe] and
    the property-based test suites. *)

type scenario = {
  seed : int64;
  n_servers : int;
  write_ratio : float;
  objects : int;
  loss : float;
  duplicate : float;
  jitter_ms : float;
  crashes : bool;
  partition : bool;
  max_drift : float;
      (** per-node clock-drift bound handed to drift-aware protocols;
          [0.] (the default for half the seeds) leaves the builder's
          own bound in place *)
  nemesis : Nemesis.program option;
      (** optional declarative fault timeline, run alongside the
          legacy [crashes]/[partition] schedule *)
}

val scenario_of_seed : int64 -> scenario
(** Deterministically derive a scenario from a seed ([nemesis] is
    [None]; attach a program with record update). [max_drift] is drawn
    after all other fields, so seeds recorded before it existed still
    reproduce the same topology, workload and fault draws. *)

val pp_scenario : Format.formatter -> scenario -> unit

type outcome = {
  scenario : scenario;
  completed : int;
  failed : int;
  gave_up : int;
      (** operations the protocol explicitly abandoned (bounded QRPC
          retransmission), a subset of [failed] *)
  stale_reads : int;  (** completed reads that returned a superseded value *)
  reads_checked : int;  (** completed reads examined by the oracle *)
  max_staleness_ms : float;
  mean_age_ms : float;
      (** mean instantaneous age of returned values over all completed
          reads ({!Staleness.measure_age}) *)
  max_age_ms : float;
  max_gap_ms : float;
      (** longest interval between consecutive operation completions:
          the observed unavailability window *)
  recoveries_started : int;
      (** wiped nodes that rejoined and began state transfer
          ([Recovery_start] events) *)
  recoveries_done : int;  (** state transfers that completed *)
  sync_bytes : int;
      (** total object-value bytes moved by completed state transfers *)
  sync_objects : int;  (** total objects merged by completed transfers *)
  max_recovery_ms : float;
      (** worst observed wipe-to-caught-up time (0 when none) *)
  mean_recovery_ms : float;  (** mean over completed recoveries *)
  phases : Nemesis.phase list;
      (** per-phase metrics, sliced at every nemesis event; empty when
          the scenario carried no program *)
  violations : string list;  (** empty = scenario passed *)
}

val run :
  ?check_invariant:bool ->
  ?check_regular:bool ->
  ?instrument:(Dq_sim.Engine.t -> unit) ->
  Registry.builder ->
  scenario ->
  outcome
(** [check_invariant] (default true) applies only to dual-quorum
    builders (it is skipped for protocols without the introspection).
    [check_regular] (default true) gates the regular-semantics check —
    disable it for protocols that are weakly consistent {e by design}
    (ROWA-Async), whose staleness is reported as a metric instead of a
    violation. [instrument] runs on the freshly created engine before
    the cluster is built — attach telemetry sinks
    ({!Dq_sim.Engine.telemetry}) there. *)

val campaign :
  ?on_progress:(int -> outcome -> unit) ->
  ?scenario_of:(int64 -> scenario) ->
  ?instrument:(int -> Dq_sim.Engine.t -> unit) ->
  Registry.builder ->
  seeds:int64 list ->
  outcome list
(** Run many scenarios; returns the failing outcomes (empty = all
    passed). [scenario_of] (default {!scenario_of_seed}) lets callers
    derive richer scenarios — e.g. attach a seeded nemesis program of
    a chosen fault class. [instrument] is {!run}'s hook, additionally
    handed the scenario index (e.g. a per-scenario trace pid). *)
