module Engine = Dq_sim.Engine
module Topology = Dq_net.Topology
module Spec = Dq_workload.Spec
module Stats = Dq_util.Stats
module Qs = Dq_quorum.Quorum_system
module Avail = Dq_analysis.Avail_model
module Overhead = Dq_analysis.Overhead_model
module Pool = Dq_par.Pool

(* --- parallel sweeps --------------------------------------------------- *)

(* Every figure is a sweep of independent (protocol x point x seed) runs,
   each on its own freshly seeded engine, so they fan across a domain pool
   with results identical to the serial order. The pool is created lazily
   and kept across figures; [set_jobs] (the bench binary's [-j] flag, or
   DQ_JOBS via [Pool.default_jobs]) resizes it. *)

let current_jobs : int option ref = ref None

let current_pool : Pool.t option ref = ref None

let jobs () = match !current_jobs with Some j -> j | None -> Pool.default_jobs ()

let drop_pool () =
  match !current_pool with
  | Some p ->
    current_pool := None;
    Pool.shutdown p
  | None -> ()

let set_jobs n =
  if n < 1 then invalid_arg "Experiment.set_jobs: jobs must be >= 1";
  if n <> jobs () then drop_pool ();
  current_jobs := Some n

let pool () =
  let j = jobs () in
  match !current_pool with
  | Some p when Pool.jobs p = j -> p
  | _ ->
    drop_pool ();
    let p = Pool.create ~jobs:j () in
    current_pool := Some p;
    p

let pmap f xs = if jobs () <= 1 then List.map f xs else Pool.map (pool ()) f xs

(* Split [xs] into consecutive chunks of [width] — the inverse of
   flattening a (sweep point x builder) product back into per-point rows. *)
let rec chunk_list width = function
  | [] -> []
  | xs ->
    let rec take k acc rest =
      match (k, rest) with
      | 0, _ | _, [] -> (List.rev acc, rest)
      | _, y :: tl -> take (k - 1) (y :: acc) tl
    in
    let chunk, rest = take width [] xs in
    chunk :: chunk_list width rest

type response_row = {
  protocol : string;
  read_ms : float;
  write_ms : float;
  overall_ms : float;
  completed : int;
  failed : int;
  violations : int;
}

let paper_topology ?(n_servers = 9) ?(n_clients = 3) () =
  Topology.make ~n_servers ~n_clients ()

let row_of_result (result : Driver.result) =
  let report = Regular_checker.check result.Driver.history in
  {
    protocol = result.Driver.protocol;
    read_ms = Stats.mean result.Driver.read_latency;
    write_ms = Stats.mean result.Driver.write_latency;
    overall_ms = Stats.mean result.Driver.all_latency;
    completed = result.Driver.completed;
    failed = result.Driver.failed;
    violations = List.length report.Regular_checker.violations;
  }

let run_one ?(seed = 42L) ?(ops = 200) ~topology ~spec (builder : Registry.builder) =
  let engine = Engine.create ~seed () in
  let instance = builder.Registry.build engine topology () in
  let config = { (Driver.default_config spec) with Driver.ops_per_client = ops } in
  let result = Driver.run engine topology instance.Registry.api config in
  row_of_result result

let response_time ?seed ?ops ?(builders = Registry.paper_five) ~spec () =
  let topology = paper_topology () in
  pmap (run_one ?seed ?ops ~topology ~spec) builders

(* Sweep [points] x [builders] as one flat batch of runs (maximum
   parallelism), then regroup rows per point. *)
let sweep_runs ?seed ?ops ?(builders = Registry.paper_five) ~spec_of points =
  let topology = paper_topology () in
  let tasks =
    List.concat_map (fun x -> List.map (fun b -> (x, b)) builders) points
  in
  let rows =
    pmap (fun (x, b) -> run_one ?seed ?ops ~topology ~spec:(spec_of x) b) tasks
  in
  List.map2 (fun x rs -> (x, rs)) points (chunk_list (List.length builders) rows)

(* --- Figure 6: response time vs write ratio --------------------------- *)

let fig6a ?seed ?ops () =
  response_time ?seed ?ops ~spec:{ Spec.default with Spec.write_ratio = 0.05 } ()

let default_write_ratios = [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]

let fig6b ?seed ?ops ?(write_ratios = default_write_ratios) () =
  sweep_runs ?seed ?ops
    ~spec_of:(fun w -> { Spec.default with Spec.write_ratio = w })
    write_ratios

(* --- Figure 7: response time vs access locality ----------------------- *)

let fig7a ?seed ?ops () =
  response_time ?seed ?ops
    ~spec:{ Spec.default with Spec.write_ratio = 0.05; locality = 0.9 }
    ()

let default_localities = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]

let fig7b ?seed ?ops ?(localities = default_localities) () =
  sweep_runs ?seed ?ops
    ~spec_of:(fun locality -> { Spec.default with Spec.write_ratio = 0.05; locality })
    localities

(* --- Figure 8: availability (analytical) ------------------------------ *)

let avail_protocols n =
  [
    Avail.dqvl_default ~n;
    Avail.Majority { n };
    Avail.Rowa { n };
    Avail.Rowa_async_stale { n };
    Avail.Rowa_async_no_stale;
    Avail.Primary_backup;
  ]

let fig8a ?(p = 0.01) ?(n = 15) ?(write_ratios = default_write_ratios) () =
  let protocols = avail_protocols n in
  List.map
    (fun w ->
      ( w,
        List.map
          (fun proto -> (Avail.name proto, Avail.unavailability proto ~p ~w))
          protocols ))
    write_ratios

let fig8b ?(p = 0.01) ?(w = 0.25) ?(ns = [ 3; 5; 7; 9; 11; 13; 15; 17; 19; 21 ]) () =
  List.map
    (fun n ->
      ( n,
        List.map
          (fun proto -> (Avail.name proto, Avail.unavailability proto ~p ~w))
          (avail_protocols n) ))
    ns

let fig8_measured ?(seed = 42L) ?(ops = 150) ?(p = 0.1) ?(write_ratio = 0.25) () =
  let topology = paper_topology () in
  let mttf_ms, mttr_ms = Churn.periods_for ~p ~cycle_ms:20_000. in
  let spec = { Spec.default with Spec.write_ratio } in
  pmap
    (fun (builder : Registry.builder) ->
      let engine = Engine.create ~seed () in
      let instance = builder.Registry.build engine topology () in
      let churn =
        Churn.install engine
          ~crash:instance.Registry.api.Dq_intf.Replication.crash_server
          ~recover:instance.Registry.api.Dq_intf.Replication.recover_server
          ~servers:(Topology.servers topology) ~mttf_ms ~mttr_ms
      in
      let config =
        {
          (Driver.default_config spec) with
          Driver.ops_per_client = ops;
          timeout_ms = 2_000.;
          redirect_to_up = true;
        }
      in
      let result = Driver.run engine topology instance.Registry.api config in
      Churn.stop churn;
      let unavailability =
        if result.Driver.issued = 0 then 0.
        else float_of_int result.Driver.failed /. float_of_int result.Driver.issued
      in
      (builder.Registry.name, unavailability))
    Registry.paper_five

(* --- Figure 9: communication overhead --------------------------------- *)

let fig9a ?(n = 9) ?(write_ratios = default_write_ratios) () =
  let sizes = Overhead.dqvl_sizes ~n_iqs:n ~n_oqs:n in
  List.map
    (fun w ->
      ( w,
        [
          ("dqvl", Overhead.dqvl sizes ~w);
          ("majority", Overhead.majority ~n ~w);
          ("rowa", Overhead.rowa ~n ~w);
          ("rowa-async", Overhead.rowa_async ~n ~w);
          ("primary-backup", Overhead.primary_backup ~n ~w);
        ] ))
    write_ratios

let fig9a_measured ?(seed = 42L) ?(ops = 400) ?(write_ratios = [ 0.05; 0.25; 0.5; 0.75; 0.95 ])
    () =
  (* On-demand renewal, a long volume lease and one shared object: the
     regime the analytical model describes. *)
  let builder =
    Registry.dqvl ~volume_lease_ms:600_000. ~proactive_renew:false ()
  in
  let topology = paper_topology () in
  pmap
    (fun w ->
      let spec =
        {
          Spec.default with
          Spec.write_ratio = w;
          sharing = Spec.Shared_uniform { objects = 1 };
        }
      in
      let engine = Engine.create ~seed () in
      let instance = builder.Registry.build engine topology () in
      let config = { (Driver.default_config spec) with Driver.ops_per_client = ops } in
      let result = Driver.run engine topology instance.Registry.api config in
      (w, result.Driver.messages_per_request))
    write_ratios

let fig9b ?(n_iqs = 5) ?(w = 0.25) ?(n_oqs_list = [ 5; 9; 13; 17; 21; 25 ]) () =
  List.map
    (fun n_oqs ->
      let sizes = Overhead.dqvl_sizes ~n_iqs ~n_oqs in
      ( n_oqs,
        [
          ("dqvl", Overhead.dqvl sizes ~w);
          ("majority", Overhead.majority ~n:n_oqs ~w);
          ("rowa", Overhead.rowa ~n:n_oqs ~w);
        ] ))
    n_oqs_list

let bandwidth ?(seed = 42L) ?(ops = 200) ?(write_ratio = 0.25) () =
  let topology = paper_topology () in
  let spec = { Spec.default with Spec.write_ratio } in
  pmap
    (fun (builder : Registry.builder) ->
      let engine = Engine.create ~seed () in
      let instance = builder.Registry.build engine topology () in
      let config = { (Driver.default_config spec) with Driver.ops_per_client = ops } in
      let result = Driver.run engine topology instance.Registry.api config in
      (builder.Registry.name, result.Driver.messages_per_request, result.Driver.bytes_per_request))
    Registry.paper_five

let saturation ?(seed = 42L) ?(ops = 300) ?(service_ms = 1.) ?(rates = [ 10.; 50.; 100.; 200. ])
    () =
  let topology = paper_topology () in
  let builders = [ Registry.dqvl (); Registry.majority ] in
  let tasks = List.concat_map (fun r -> List.map (fun b -> (r, b)) builders) rates in
  let results =
    pmap
      (fun (rate, (builder : Registry.builder)) ->
        let engine = Engine.create ~seed () in
        let instance = builder.Registry.build engine topology () in
        instance.Registry.set_service_time service_ms;
        let spec =
          {
            Spec.default with
            Spec.write_ratio = 0.05;
            arrival = Spec.Open { rate_per_s = rate };
          }
        in
        let config =
          {
            (Driver.default_config spec) with
            Driver.ops_per_client = ops;
            timeout_ms = 10_000.;
          }
        in
        let result = Driver.run engine topology instance.Registry.api config in
        (builder.Registry.name, Stats.mean result.Driver.all_latency))
      tasks
  in
  List.map2 (fun rate per -> (rate, per)) rates (chunk_list (List.length builders) results)

(* --- Ablations --------------------------------------------------------- *)

let ablation_leases ?seed ?ops () =
  response_time ?seed ?ops
    ~builders:[ Registry.dqvl (); Registry.dq_basic ]
    ~spec:{ Spec.default with Spec.write_ratio = 0.05 }
    ()

let ablation_lease_len ?seed ?ops ?(leases_ms = [ 250.; 1000.; 5000.; 20000. ]) () =
  let topology = paper_topology () in
  let spec = { Spec.default with Spec.write_ratio = 0.05 } in
  pmap
    (fun lease ->
      let builder = Registry.dqvl ~volume_lease_ms:lease ~proactive_renew:false () in
      (lease, run_one ?seed ?ops ~topology ~spec builder))
    leases_ms

let ablation_bursts ?seed ?ops ?(burst_means = [ 1.; 2.; 5.; 10.; 50. ]) () =
  let topology = paper_topology () in
  pmap
    (fun mean ->
      let spec =
        {
          Spec.default with
          Spec.write_ratio = 0.5;
          sharing = Spec.Shared_uniform { objects = 1 };
          burst_mean = (if mean <= 1. then None else Some mean);
        }
      in
      (mean, run_one ?seed ?ops ~topology ~spec (Registry.dqvl ())))
    burst_means

type staleness_row = {
  s_protocol : string;
  s_stale_fraction : float;
  s_mean_behind_ms : float;
  s_max_behind_ms : float;
}

let ablation_staleness ?(seed = 42L) ?(ops = 150)
    ?(anti_entropy_periods = [ 250.; 1_000.; 4_000. ]) () =
  let topology = Topology.make ~n_servers:5 ~n_clients:2 () in
  let spec =
    {
      Spec.default with
      Spec.write_ratio = 0.5;
      sharing = Spec.Shared_uniform { objects = 1 };
    }
  in
  (* Message loss makes epidemic propagation actually depend on the
     anti-entropy period: direct update pushes are often lost, so the
     periodic exchange bounds how far behind a replica can fall. *)
  let faults = { Dq_net.Net.loss = 0.3; duplicate = 0.; jitter_ms = 0. } in
  let measure (name, (builder : Registry.builder)) =
    let engine = Engine.create ~seed () in
    let instance = builder.Registry.build engine topology ~faults () in
    let config = { (Driver.default_config spec) with Driver.ops_per_client = ops } in
    let result = Driver.run engine topology instance.Registry.api config in
    let report = Staleness.measure result.Driver.history in
    {
      s_protocol = name;
      s_stale_fraction = Staleness.stale_fraction report;
      s_mean_behind_ms = report.Staleness.mean_behind_ms;
      s_max_behind_ms = report.Staleness.max_behind_ms;
    }
  in
  pmap measure
    (List.map
       (fun period ->
         ( Printf.sprintf "rowa-async ae=%.0fms" period,
           Registry.rowa_async ~anti_entropy_ms:period () ))
       anti_entropy_periods
    @ [ ("dqvl", Registry.dqvl ()); ("majority", Registry.majority) ])

let ablation_orq ?seed ?ops ?(read_quorums = [ 1; 2; 3 ]) () =
  let topology = paper_topology () in
  let spec = { Spec.default with Spec.write_ratio = 0.05 } in
  pmap
    (fun orq ->
      let make_config servers =
        let n = List.length servers in
        let oqs =
          Qs.threshold
            ~name:(Printf.sprintf "oqs(r=%d)" orq)
            ~members:servers ~read:orq
            ~write:(n - orq + 1)
        in
        { (Dq_core.Config.dqvl ~servers ()) with Dq_core.Config.oqs }
      in
      let builder =
        Registry.dqvl_custom ~name:(Printf.sprintf "dqvl-orq%d" orq) make_config
      in
      let row = run_one ?seed ?ops ~topology ~spec builder in
      (orq, { row with protocol = Printf.sprintf "dqvl orq=%d" orq }))
    read_quorums

let ablation_object_lease ?seed ?ops ?(object_leases_ms = [ 500.; 2_000. ]) () =
  (* Scattered readers acquire callbacks at many replicas; writes must
     invalidate every holder. Finite object leases let stale holders
     simply lapse (think time gives them the chance), trading renewal
     traffic on the read side for cheaper writes. *)
  let topology = paper_topology () in
  let spec =
    {
      Spec.default with
      Spec.write_ratio = 0.5;
      locality = 0.5;
      think_time_ms = 300.;
      sharing = Spec.Shared_uniform { objects = 1 };
    }
  in
  let run (name, builder) =
    let engine = Engine.create ?seed:(Some (Option.value seed ~default:42L)) () in
    let instance = builder.Registry.build engine topology () in
    let config =
      { (Driver.default_config spec) with Driver.ops_per_client = Option.value ops ~default:120 }
    in
    let result = Driver.run engine topology instance.Registry.api config in
    (name, result.Driver.messages_per_request, Stats.mean result.Driver.write_latency)
  in
  pmap run
    (("callbacks (infinite)", Registry.dqvl ())
    :: List.map
         (fun lease ->
           ( Printf.sprintf "object lease %.0fms" lease,
             Registry.dqvl ~object_lease_ms:lease () ))
         object_leases_ms)

let ablation_batch_renewals ?(seed = 42L) () =
  (* One OQS node proactively renewing six volumes' leases from five
     IQS nodes for 20 s of virtual time. *)
  let run ~batch =
    let engine = Engine.create ~seed () in
    let topology = Topology.make ~n_servers:5 ~n_clients:1 () in
    let servers = Topology.servers topology in
    let config =
      {
        (Dq_core.Config.dqvl ~servers ~volume_lease_ms:1_000. ~proactive_renew:true ()) with
        Dq_core.Config.batch_renewals = batch;
      }
    in
    let cluster = Dq_core.Cluster.create engine topology config in
    let api = Dq_core.Cluster.api cluster in
    let rec touch v =
      if v < 6 then
        api.Dq_intf.Replication.submit_read ~client:5 ~server:0
          (Dq_storage.Key.make ~volume:v ~index:0)
          (fun _ -> touch (v + 1))
    in
    touch 0;
    Engine.run ~until:20_000. engine;
    api.Dq_intf.Replication.quiesce ();
    let stats = api.Dq_intf.Replication.message_stats () in
    let count label =
      (* Remote-only explicitly: the overhead model compares network
         renewal traffic, so local (src = dst) renewals stay excluded. *)
      Option.value
        (List.find_map
           (fun (l, n) -> if String.equal l label then Some n else None)
           (Dq_net.Msg_stats.by_label ~include_local:false stats))
        ~default:0
    in
    count "vol_renew_req" + count "vols_renew_req"
  in
  pmap
    (fun (name, batch) -> (name, run ~batch))
    [ ("per-volume renewals", false); ("batched renewals", true) ]

let ablation_atomic ?seed ?ops () =
  response_time ?seed ?ops
    ~builders:
      [
        Registry.dqvl ();
        Registry.dqvl_atomic ();
        Registry.majority;
        Registry.atomic_majority;
      ]
    ~spec:{ Spec.default with Spec.write_ratio = 0.05 }
    ()

let ablation_grid ?(p = 0.01) ?(w = 0.25) ?(ns = [ 4; 9; 16 ]) () =
  List.map
    (fun n ->
      let side = int_of_float (Float.round (sqrt (float_of_int n))) in
      let members = List.init n Fun.id in
      let grid = Qs.grid ~rows:side ~cols:side members in
      ( n,
        [
          ("majority", Avail.unavailability (Avail.Majority { n }) ~p ~w);
          ("grid", Avail.unavailability (Avail.Custom { read = grid; write = grid }) ~p ~w);
        ] ))
    ns
