(** A record of every operation an experiment issued, with real-time
    invocation/response intervals — the input to the consistency
    checker. *)

open Dq_storage

type kind = Read | Write

type op = {
  id : int;
  client : int;
  key : Key.t;
  kind : kind;
  value : string;
      (** for writes, the (unique) value written; for reads, the value
          returned *)
  lc : Lc.t option;
      (** logical clock: assigned (writes) or observed (reads); [None]
          for operations that never completed *)
  invoked : float;
  responded : float option;  (** [None]: no response (timed out / node down) *)
  gave_up : float option;
      (** when the protocol {e explicitly} abandoned the operation (a
          bounded retransmission loop exhausted its rounds); [None] for
          completed operations and for operations that are merely still
          pending. Distinguishes "failed" from "no response yet". *)
}

type t

val create : unit -> t

val begin_op : t -> client:int -> key:Key.t -> kind:kind -> value:string -> now:float -> int
(** Returns the operation id. For reads, [value] is [""] until completion. *)

val complete_op : t -> id:int -> value:string -> lc:Lc.t -> now:float -> unit

val give_up_op : t -> id:int -> now:float -> unit
(** Record that the protocol explicitly abandoned the operation. A
    no-op if the operation already completed (a late give-up racing a
    response loses). *)

val ops : t -> op list
(** All operations, in id order. *)

val completed_count : t -> int

val gave_up_count : t -> int

val size : t -> int
