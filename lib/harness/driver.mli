(** The closed-loop experiment driver.

    Reproduces the paper's measurement methodology: each application
    client sends its next request only after receiving the response to
    the current one (Section 4.1). Requests are routed to the client's
    closest edge server or, with probability [1 - locality], to a
    random distant one. Per-operation latencies, message counts and the
    full operation history (for the consistency checker) are recorded.

    Operations that receive no response within [timeout_ms] are counted
    as failed and the client moves on — this is how availability is
    measured under crash/partition scenarios. *)

type config = {
  spec : Dq_workload.Spec.t;
  ops_per_client : int;
  warmup_ops : int;  (** initial per-client operations excluded from latency stats *)
  timeout_ms : float;
  horizon_ms : float;  (** hard stop for the simulation *)
  redirect_to_up : bool;
      (** model the paper's request-redirection architecture: when the
          front end chosen by the locality draw is down, route to a
          random live one instead (used by availability experiments) *)
  value_pad : int;
      (** pad write values to at least this many bytes; the wire-size
          model charges [String.length value] per copy, so this is how
          bench scenarios model large objects (0 = tiny values) *)
}

val default_config : Dq_workload.Spec.t -> config
(** 200 operations per client, 10 warm-up operations, 30 s timeout,
    1 h horizon, no redirection, no value padding. *)

type result = {
  protocol : string;
  read_latency : Dq_util.Stats.t;   (** ms, completed reads after warm-up *)
  write_latency : Dq_util.Stats.t;
  all_latency : Dq_util.Stats.t;
  issued : int;
  completed : int;
  failed : int;  (** operations that timed out or explicitly gave up *)
  gave_up : int;
      (** subset of [failed]: operations the protocol explicitly
          abandoned (bounded QRPC retransmission exhausted its rounds)
          rather than silently timing out *)
  history : History.op list;
  remote_messages : int;  (** network messages sent during the run *)
  messages_per_request : float;
  remote_bytes : int;  (** estimated wire bytes (protocol size model) *)
  bytes_per_request : float;
  elapsed_ms : float;  (** virtual time from start to the last settlement *)
  throughput_per_s : float;  (** completed operations per virtual second *)
}

val run :
  Dq_sim.Engine.t -> Dq_net.Topology.t -> Dq_intf.Replication.api -> config -> result

(** {2 Fault injection during a run} *)

type event = { at_ms : float; action : [ `Crash of int | `Recover of int | `Partition of int list list | `Heal ] }

val run_with_events :
  Dq_sim.Engine.t ->
  Dq_net.Topology.t ->
  Dq_intf.Replication.api ->
  config ->
  events:event list ->
  on_net_event:([ `Partition of int list list | `Heal ] -> unit) ->
  result
(** Like {!run}, with crashes/recoveries/partitions scheduled at
    absolute virtual times. Partitions are applied through
    [on_net_event] because the network handle is protocol-specific. *)
