(** One function per figure of the paper's evaluation (Section 4), plus
    the ablations listed in DESIGN.md. Simulation-based figures (6, 7
    and the measured overlay of 9) run the closed-loop driver on the
    paper's topology — nine edge servers, three application clients,
    8/86/80 ms one-way delays. Figures 8 and 9 are analytical. *)

(** {2 Parallelism}

    Every figure is a sweep of independent (protocol x point x seed)
    simulation runs, each on its own freshly seeded engine. With
    [jobs > 1] those runs fan across a {!Dq_par.Pool} of domains; because
    the parallel map preserves input order and runs share no mutable
    state, the output of every function below is bit-identical to the
    serial run for a fixed seed. *)

val set_jobs : int -> unit
(** Set the worker-pool size used by all experiment sweeps. [1] disables
    parallelism. Raises [Invalid_argument] if the argument is [< 1]. *)

val jobs : unit -> int
(** The current pool size: the last {!set_jobs} value, else [DQ_JOBS],
    else {!Domain.recommended_domain_count} (see
    {!Dq_par.Pool.default_jobs}). *)

type response_row = {
  protocol : string;
  read_ms : float;    (** mean read response time *)
  write_ms : float;   (** mean write response time *)
  overall_ms : float;
  completed : int;
  failed : int;
  violations : int;   (** regular-semantics violations observed *)
}

val paper_topology : ?n_servers:int -> ?n_clients:int -> unit -> Dq_net.Topology.t

val response_time :
  ?seed:int64 ->
  ?ops:int ->
  ?builders:Registry.builder list ->
  spec:Dq_workload.Spec.t ->
  unit ->
  response_row list
(** Run every builder on a fresh engine over the paper topology. *)

(** {2 Response time (prototype experiments)} *)

val fig6a : ?seed:int64 -> ?ops:int -> unit -> response_row list
(** Five protocols at 5% writes, full locality. *)

val fig6b : ?seed:int64 -> ?ops:int -> ?write_ratios:float list -> unit
  -> (float * response_row list) list
(** Mean response time as the write ratio sweeps 0..1. *)

val fig7a : ?seed:int64 -> ?ops:int -> unit -> response_row list
(** 5% writes at 90% access locality. *)

val fig7b : ?seed:int64 -> ?ops:int -> ?localities:float list -> unit
  -> (float * response_row list) list
(** Mean response time as access locality sweeps 0..1 at 5% writes. *)

(** {2 Availability (analytical)} *)

val fig8a : ?p:float -> ?n:int -> ?write_ratios:float list -> unit
  -> (float * (string * float) list) list
(** Unavailability per protocol vs write ratio; default n = 15,
    p = 0.01. *)

val fig8b : ?p:float -> ?w:float -> ?ns:int list -> unit
  -> (int * (string * float) list) list
(** Unavailability per protocol vs replica count; default w = 0.25. *)

val fig8_measured :
  ?seed:int64 ->
  ?ops:int ->
  ?p:float ->
  ?write_ratio:float ->
  unit ->
  (string * float) list
(** Simulation cross-check of Figure 8: run every protocol under
    continuous crash/recovery churn (steady-state per-node
    unavailability [p], default 0.1 so differences are measurable in a
    finite run) with request redirection, and report the measured
    fraction of client operations that received no response within the
    timeout. Compare against {!fig8a} evaluated at the same [p]. *)

(** {2 Communication overhead (analytical + measured)} *)

val fig9a : ?n:int -> ?write_ratios:float list -> unit
  -> (float * (string * float) list) list
(** Expected messages per request vs write ratio (model). *)

val fig9a_measured : ?seed:int64 -> ?ops:int -> ?write_ratios:float list -> unit
  -> (float * float) list
(** Simulator-measured DQVL messages per request vs write ratio
    (on-demand lease renewal, one shared object), cross-checking the
    model. *)

val fig9b : ?n_iqs:int -> ?w:float -> ?n_oqs_list:int list -> unit
  -> (int * (string * float) list) list
(** Messages per request as the OQS grows with the IQS fixed. *)

val bandwidth : ?seed:int64 -> ?ops:int -> ?write_ratio:float -> unit
  -> (string * float * float) list
(** Measured (protocol, messages/request, bytes/request) under the
    paper topology — a byte-level refinement of Figure 9's equal-weight
    message counting, using the wire-size models in
    {!Dq_core.Message.size_of} and {!Dq_proto.Base_msg.size_of}. *)

val saturation : ?seed:int64 -> ?ops:int -> ?service_ms:float -> ?rates:float list -> unit
  -> (float * (string * float) list) list
(** Open-loop load study (beyond the paper): Poisson arrivals per
    client at increasing rates, with a per-message service time at
    every node, reporting mean response time — DQVL's local reads keep
    message load off the wide-area quorum, so it saturates later than
    the majority quorum. *)

(** {2 Ablations} *)

val ablation_leases : ?seed:int64 -> ?ops:int -> unit -> response_row list
(** DQVL vs the basic dual-quorum protocol (value of volume leases) on
    the target workload, plus behaviour under an OQS node crash. *)

val ablation_lease_len : ?seed:int64 -> ?ops:int -> ?leases_ms:float list -> unit
  -> (float * response_row) list
(** DQVL response time vs volume lease length (on-demand renewal). *)

val ablation_bursts : ?seed:int64 -> ?ops:int -> ?burst_means:float list -> unit
  -> (float * response_row) list
(** DQVL response time vs workload burst length at 50% writes (bursts
    turn read misses into hits and write-throughs into suppresses). *)

type staleness_row = {
  s_protocol : string;
  s_stale_fraction : float;
  s_mean_behind_ms : float;
  s_max_behind_ms : float;
}

val ablation_staleness : ?seed:int64 -> ?ops:int -> ?anti_entropy_periods:float list -> unit
  -> staleness_row list
(** How stale ROWA-Async reads get (two clients sharing one object at
    50% writes) as the anti-entropy period grows, versus DQVL and
    majority which never return stale data. Quantifies the paper's
    "no worst-case bound on staleness" argument. *)

val ablation_orq : ?seed:int64 -> ?ops:int -> ?read_quorums:int list -> unit
  -> (int * response_row) list
(** DQVL with OQS read quorum sizes > 1 (paper future work): read
    latency cost of larger read quorums. *)

val ablation_grid : ?p:float -> ?w:float -> ?ns:int list -> unit
  -> (int * (string * float) list) list
(** Grid-quorum IQS vs majority IQS availability (paper future work). *)

val ablation_object_lease : ?seed:int64 -> ?ops:int -> ?object_leases_ms:float list -> unit
  -> (string * float * float) list
(** Finite object leases (paper footnote 4): (config, messages per
    request, mean write latency) for infinite callbacks vs finite
    object leases, under scattered readers with think time. *)

val ablation_batch_renewals : ?seed:int64 -> unit -> (string * int) list
(** Renewal request counts over 20 s for six proactively-renewed
    volumes, with and without {!Dq_core.Config.batch_renewals}. *)

val ablation_atomic : ?seed:int64 -> ?ops:int -> unit -> response_row list
(** The cost of atomic semantics (paper future work, Section 6): DQVL
    and majority with and without read-imposition, on the target
    workload. The atomic variants' histories are additionally checked
    for new-old inversions. *)
