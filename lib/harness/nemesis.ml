module Engine = Dq_sim.Engine
module Clock = Dq_sim.Clock
module Net = Dq_net.Net
module Rng = Dq_util.Rng

type pattern =
  | Isolate_one of { node : int; oneway : bool }
  | Majority_minority of { minority : int list }
  | Bridge of { bridge : int }
  | Ring

type action =
  | Partition of pattern
  | Heal
  | Crash_storm of { victims : int list; stagger_ms : float; down_ms : float }
  | Amnesia_storm of { victims : int list; stagger_ms : float; down_ms : float }
      (* like Crash_storm, but recovery wipes durable state: the node
         comes back empty and must state-transfer from its peers *)
  | Gray_degrade of { victims : int list; delay_ms : float; loss : float; duration_ms : float }
      (* gray failure: the victims stay up and keep answering, but all
         their traffic suffers extra delay and loss in both directions *)
  | Skew_bump of { node : int; skew : float }
  | Degrade_link of { src : int; dst : int; faults : Net.fault_model }
  | Clear_link of { src : int; dst : int }
  | Flap of { src : int; dst : int; up_ms : float; down_ms : float; duration_ms : float }
  | Lease_window of { pattern : pattern; hold_ms : float; max_wait_ms : float }

type step = { at_ms : float; action : action }

type program = step list

let pp_pattern ppf = function
  | Isolate_one { node; oneway } ->
    Format.fprintf ppf "isolate(%d%s)" node (if oneway then ",oneway" else "")
  | Majority_minority { minority } ->
    Format.fprintf ppf "split(minority=[%s])"
      (String.concat ";" (List.map string_of_int minority))
  | Bridge { bridge } -> Format.fprintf ppf "bridge(%d)" bridge
  | Ring -> Format.fprintf ppf "ring"

let pp_action ppf = function
  | Partition p -> Format.fprintf ppf "partition %a" pp_pattern p
  | Heal -> Format.fprintf ppf "heal"
  | Crash_storm { victims; stagger_ms; down_ms } ->
    Format.fprintf ppf "crash-storm [%s] stagger=%.0fms down=%.0fms"
      (String.concat ";" (List.map string_of_int victims))
      stagger_ms down_ms
  | Amnesia_storm { victims; stagger_ms; down_ms } ->
    Format.fprintf ppf "amnesia-storm [%s] stagger=%.0fms down=%.0fms"
      (String.concat ";" (List.map string_of_int victims))
      stagger_ms down_ms
  | Gray_degrade { victims; delay_ms; loss; duration_ms } ->
    Format.fprintf ppf "gray-degrade [%s] delay=%.0fms loss=%.2f for=%.0fms"
      (String.concat ";" (List.map string_of_int victims))
      delay_ms loss duration_ms
  | Skew_bump { node; skew } -> Format.fprintf ppf "skew-bump node=%d skew=%.2e" node skew
  | Degrade_link { src; dst; faults } ->
    Format.fprintf ppf "degrade %d->%d loss=%.2f dup=%.2f jitter=%.0fms" src dst
      faults.Net.loss faults.Net.duplicate faults.Net.jitter_ms
  | Clear_link { src; dst } -> Format.fprintf ppf "clear %d->%d" src dst
  | Flap { src; dst; up_ms; down_ms; duration_ms } ->
    Format.fprintf ppf "flap %d->%d up=%.0fms down=%.0fms for=%.0fms" src dst up_ms
      down_ms duration_ms
  | Lease_window { pattern; hold_ms; max_wait_ms } ->
    Format.fprintf ppf "lease-window %a hold=%.0fms max-wait=%.0fms" pp_pattern pattern
      hold_ms max_wait_ms

let pp_program ppf program =
  List.iter
    (fun { at_ms; action } -> Format.fprintf ppf "@[%8.0fms %a@]@," at_ms pp_action action)
    program

let action_end_ms at_ms = function
  | Partition _ | Heal | Skew_bump _ | Degrade_link _ | Clear_link _ -> at_ms
  | Crash_storm { victims; stagger_ms; down_ms } | Amnesia_storm { victims; stagger_ms; down_ms }
    ->
    at_ms +. (stagger_ms *. float_of_int (List.length victims)) +. down_ms
  | Flap { duration_ms; _ } -> at_ms +. duration_ms
  | Gray_degrade { duration_ms; _ } -> at_ms +. duration_ms
  | Lease_window { hold_ms; max_wait_ms; _ } -> at_ms +. max_wait_ms +. hold_ms

let end_ms program =
  List.fold_left
    (fun acc { at_ms; action } -> Float.max acc (action_end_ms at_ms action))
    0. program

(* {2 Seeded generation} *)

type fault_class =
  | Partitions
  | Crashes
  | Amnesia
  | Gray_failure
  | Degraded_links
  | Flapping
  | Clock_skew
  | Lease_expiry
  | Mixed

let all_classes =
  [
    Partitions;
    Crashes;
    Amnesia;
    Gray_failure;
    Degraded_links;
    Flapping;
    Clock_skew;
    Lease_expiry;
    Mixed;
  ]

let class_name = function
  | Partitions -> "partitions"
  | Crashes -> "crashes"
  | Amnesia -> "amnesia"
  | Gray_failure -> "gray-degrade"
  | Degraded_links -> "degraded-links"
  | Flapping -> "flapping"
  | Clock_skew -> "clock-skew"
  | Lease_expiry -> "lease-expiry"
  | Mixed -> "mixed"

let class_of_name name =
  List.find_opt (fun c -> class_name c = name) all_classes

let random_pattern rng ~n_servers =
  match Rng.int rng 4 with
  | 0 -> Isolate_one { node = Rng.int rng n_servers; oneway = Rng.bool rng }
  | 1 ->
    let size = 1 + Rng.int rng (Stdlib.max 1 ((n_servers - 1) / 2)) in
    let first = Rng.int rng n_servers in
    Majority_minority
      { minority = List.init size (fun i -> (first + i) mod n_servers) }
  | 2 when n_servers >= 3 -> Bridge { bridge = Rng.int rng n_servers }
  | _ -> Ring

(* Each class stages 1-3 bounded fault episodes starting around 2 s into
   the run and healing completely well before 45 s, leaving the driver
   plenty of fault-free time to satisfy the liveness check. *)
let rec generate rng cls ~n_servers =
  let n_servers = Stdlib.max 2 n_servers in
  let random_link () =
    let src = Rng.int rng n_servers in
    let dst = (src + 1 + Rng.int rng (n_servers - 1)) mod n_servers in
    (src, dst)
  in
  let episodes base step_gap make =
    let count = 1 + Rng.int rng 3 in
    List.concat
      (List.init count (fun i ->
           make (base +. (step_gap *. float_of_int i))))
  in
  let steps =
    match cls with
    | Partitions ->
      episodes 2_000. 12_000. (fun t ->
          let hold = 3_000. +. Rng.float rng 5_000. in
          [
            { at_ms = t; action = Partition (random_pattern rng ~n_servers) };
            { at_ms = t +. hold; action = Heal };
          ])
    | Crashes ->
      episodes 2_000. 14_000. (fun t ->
          let max_victims = Stdlib.max 1 ((n_servers + 1) / 2) in
          let count = 1 + Rng.int rng max_victims in
          let first = Rng.int rng n_servers in
          let victims = List.init count (fun i -> (first + i) mod n_servers) in
          [
            {
              at_ms = t;
              action =
                Crash_storm
                  {
                    victims;
                    stagger_ms = 200. +. Rng.float rng 800.;
                    down_ms = 2_000. +. Rng.float rng 6_000.;
                  };
            };
          ])
    | Amnesia ->
      (* Wiped nodes rejoin empty and state-transfer from peers, so the
         storm is kept to a minority and never includes node 0: under
         primary-backup the primary may hold acknowledged writes its
         backups have not yet seen, and wiping it would (correctly, but
         uninterestingly) lose them. *)
      episodes 2_000. 14_000. (fun t ->
          let pool = Stdlib.max 1 (n_servers - 1) in
          let max_victims = Stdlib.max 1 ((n_servers - 1) / 2) in
          let count = 1 + Rng.int rng max_victims in
          let first = Rng.int rng pool in
          let victims = List.init count (fun i -> 1 + ((first + i) mod pool)) in
          [
            {
              at_ms = t;
              action =
                Amnesia_storm
                  {
                    victims;
                    stagger_ms = 200. +. Rng.float rng 800.;
                    down_ms = 2_000. +. Rng.float rng 4_000.;
                  };
            };
          ])
    | Gray_failure ->
      episodes 2_000. 10_000. (fun t ->
          let count = 1 + Rng.int rng (Stdlib.max 1 (n_servers / 3)) in
          let first = Rng.int rng n_servers in
          let victims = List.init count (fun i -> (first + i) mod n_servers) in
          [
            {
              at_ms = t;
              action =
                Gray_degrade
                  {
                    victims;
                    delay_ms = 5. +. Rng.float rng 25.;
                    loss = Rng.float rng 0.3;
                    duration_ms = 4_000. +. Rng.float rng 4_000.;
                  };
            };
          ])
    | Degraded_links ->
      episodes 2_000. 10_000. (fun t ->
          let src, dst = random_link () in
          let faults =
            {
              Net.loss = 0.3 +. Rng.float rng 0.4;
              duplicate = Rng.float rng 0.2;
              jitter_ms = Rng.float rng 80.;
            }
          in
          [
            { at_ms = t; action = Degrade_link { src; dst; faults } };
            { at_ms = t +. 6_000. +. Rng.float rng 4_000.; action = Clear_link { src; dst } };
          ])
    | Flapping ->
      episodes 2_000. 10_000. (fun t ->
          let src, dst = random_link () in
          let flap dir_src dir_dst =
            {
              at_ms = t;
              action =
                Flap
                  {
                    src = dir_src;
                    dst = dir_dst;
                    up_ms = 100. +. Rng.float rng 400.;
                    down_ms = 100. +. Rng.float rng 400.;
                    duration_ms = 4_000. +. Rng.float rng 4_000.;
                  };
            }
          in
          if Rng.bool rng then [ flap src dst; flap dst src ] else [ flap src dst ])
    | Clock_skew ->
      episodes 2_000. 8_000. (fun t ->
          [
            {
              at_ms = t;
              action =
                Skew_bump
                  {
                    node = Rng.int rng n_servers;
                    (* magnitude beyond any plausible bound on purpose:
                       the interpreter clamps inside the protocol's
                       configured drift bound *)
                    skew = (if Rng.bool rng then 1. else -1.) *. Rng.float rng 0.05;
                  };
            };
          ])
    | Lease_expiry ->
      episodes 3_000. 15_000. (fun t ->
          [
            {
              at_ms = t;
              action =
                Lease_window
                  {
                    pattern = random_pattern rng ~n_servers;
                    hold_ms = 2_000. +. Rng.float rng 3_000.;
                    max_wait_ms = 4_000.;
                  };
            };
          ])
    | Mixed ->
      let sub_classes =
        [ Partitions; Crashes; Amnesia; Gray_failure; Degraded_links; Flapping; Clock_skew ]
      in
      let pick () = Option.value (Rng.choose rng sub_classes) ~default:Partitions in
      (* two independent single-episode programs of random classes,
         offset so their fault windows overlap *)
      let a = generate_one rng (pick ()) ~n_servers ~base:2_000. in
      let b = generate_one rng (pick ()) ~n_servers ~base:6_000. in
      a @ b
  in
  let sorted = List.stable_sort (fun a b -> Float.compare a.at_ms b.at_ms) steps in
  let final_heal = { at_ms = end_ms sorted +. 1_000.; action = Heal } in
  sorted @ [ final_heal ]

and generate_one rng cls ~n_servers ~base =
  (* a shortened, single-episode variant used to compose Mixed programs *)
  let shifted = generate rng cls ~n_servers in
  match shifted with
  | [] -> []
  | first :: _ ->
    let shift = base -. first.at_ms in
    List.filter_map
      (fun s ->
        match s.action with
        | Heal -> None (* the composed program gets one final heal *)
        | _ -> Some { s with at_ms = s.at_ms +. shift })
      (List.filteri (fun i _ -> i < 2) shifted)

(* {2 Interpretation} *)

type event = { fired_ms : float; label : string }

let cut_links c ~pairs ~apply =
  List.iter
    (fun (src, dst) ->
      if apply then c.Net.c_cut ~src ~dst else c.Net.c_uncut ~src ~dst)
    pairs

let pattern_pairs ~servers = function
  | Isolate_one { node; oneway } ->
    List.concat_map
      (fun other ->
        if other = node then []
        else if oneway then [ (node, other) ]
        else [ (node, other); (other, node) ])
      servers
  | Majority_minority { minority } ->
    let in_minority id = List.mem id minority in
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b -> if in_minority a && not (in_minority b) then [ (a, b); (b, a) ] else [])
          servers)
      servers
  | Bridge { bridge } ->
    let rest = List.filter (fun id -> id <> bridge) servers in
    let half = (List.length rest + 1) / 2 in
    let left = List.filteri (fun i _ -> i < half) rest in
    let in_left id = List.mem id left in
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b ->
            if a <> bridge && b <> bridge && in_left a && not (in_left b) then
              [ (a, b); (b, a) ]
            else [])
          rest)
      rest
  | Ring ->
    let arr = Array.of_list servers in
    let n = Array.length arr in
    let adjacent i j = (i + 1) mod n = j || (j + 1) mod n = i in
    let pairs = ref [] in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && not (adjacent i j) then pairs := (arr.(i), arr.(j)) :: !pairs
      done
    done;
    !pairs

let drift_cap (instance : Registry.instance) =
  match instance.Registry.dq_cluster with
  | Some cluster ->
    (* strictly inside the bound the lease arithmetic compensates for,
       so skew bumps can never create a safety violation *)
    (Dq_core.Cluster.config cluster).Dq_core.Config.max_drift *. 0.9
  | None -> 0.01

let next_lease_expiry cluster ~servers =
  List.fold_left
    (fun acc id ->
      match Dq_core.Cluster.oqs_server cluster id with
      | None -> acc
      | Some oqs -> (
        match Dq_core.Oqs_server.next_lease_expiry_ms oqs with
        | None -> acc
        | Some delay -> (
          match acc with Some best when best <= delay -> acc | Some _ | None -> Some delay)))
    None servers

let install engine (instance : Registry.instance) ~servers program =
  let log = ref [] in
  let c = instance.Registry.control in
  let bus = Engine.telemetry engine in
  let record label =
    log := { fired_ms = Engine.now engine; label } :: !log;
    if Dq_telemetry.Bus.subscribed bus then
      Dq_telemetry.Bus.emit bus (Dq_telemetry.Event.Fault_injected { label })
  in
  let apply_pattern pattern =
    cut_links c ~pairs:(pattern_pairs ~servers pattern) ~apply:true
  in
  let unapply_pattern pattern =
    cut_links c ~pairs:(pattern_pairs ~servers pattern) ~apply:false
  in
  let fire action =
    match action with
    | Partition pattern ->
      record (Format.asprintf "partition %a" pp_pattern pattern);
      apply_pattern pattern
    | Heal ->
      record "heal";
      c.Net.c_heal ()
    | Crash_storm { victims; stagger_ms; down_ms } ->
      record (Format.asprintf "%a" pp_action action);
      List.iteri
        (fun i id ->
          let offset = stagger_ms *. float_of_int i in
          ignore (Engine.schedule engine ~delay:offset (fun () -> c.Net.c_crash id));
          ignore
            (Engine.schedule engine ~delay:(offset +. down_ms) (fun () ->
                 c.Net.c_recover id)))
        victims
    | Amnesia_storm { victims; stagger_ms; down_ms } ->
      record (Format.asprintf "%a" pp_action action);
      List.iteri
        (fun i id ->
          let offset = stagger_ms *. float_of_int i in
          ignore (Engine.schedule engine ~delay:offset (fun () -> c.Net.c_crash_amnesia id));
          ignore
            (Engine.schedule engine ~delay:(offset +. down_ms) (fun () ->
                 c.Net.c_recover id)))
        victims
    | Gray_degrade { victims; delay_ms; loss; duration_ms } ->
      record (Format.asprintf "%a" pp_action action);
      List.iter (fun id -> c.Net.c_degrade_node id ~delay_ms ~loss) victims;
      ignore
        (Engine.schedule engine ~delay:duration_ms (fun () ->
             record
               (Printf.sprintf "clear-degrade [%s]"
                  (String.concat ";" (List.map string_of_int victims)));
             List.iter c.Net.c_clear_degrade victims))
    | Skew_bump { node; skew } -> (
      match instance.Registry.server_clock node with
      | None -> record (Printf.sprintf "skew-bump node=%d (no clock, ignored)" node)
      | Some clock ->
        let cap = drift_cap instance in
        let clamped = Float.min cap (Float.max (-.cap) skew) in
        record (Printf.sprintf "skew-bump node=%d skew=%.2e" node clamped);
        Clock.set_skew clock clamped)
    | Degrade_link { src; dst; faults } ->
      record (Format.asprintf "%a" pp_action action);
      c.Net.c_set_link_faults ~src ~dst (Some faults)
    | Clear_link { src; dst } ->
      record (Printf.sprintf "clear %d->%d" src dst);
      c.Net.c_set_link_faults ~src ~dst None
    | Flap { src; dst; up_ms; down_ms; duration_ms } ->
      record (Format.asprintf "%a" pp_action action);
      c.Net.c_flap_link ~src ~dst ~up_ms ~down_ms
        ~until_ms:(Engine.now engine +. duration_ms)
    | Lease_window { pattern; hold_ms; max_wait_ms } ->
      let deadline = Engine.now engine +. max_wait_ms in
      let open_window reason =
        record
          (Format.asprintf "lease-window opened (%s): partition %a" reason pp_pattern
             pattern);
        apply_pattern pattern;
        ignore
          (Engine.schedule engine ~delay:hold_ms (fun () ->
               record "lease-window closed";
               unapply_pattern pattern))
      in
      (match instance.Registry.dq_cluster with
      | None -> open_window "no lease introspection"
      | Some cluster ->
        (* Poll the OQS lease tables and open the window just before the
           earliest currently-valid volume lease lapses, so the
           partition spans the expiry moment. *)
        let rec poll () =
          match next_lease_expiry cluster ~servers with
          | Some delay when delay <= 60. ->
            open_window (Printf.sprintf "expiry in %.0fms" delay)
          | _ ->
            if Engine.now engine >= deadline then open_window "max-wait reached"
            else ignore (Engine.schedule engine ~delay:25. poll)
        in
        poll ())
  in
  List.iter
    (fun { at_ms; action } ->
      ignore (Engine.schedule_at engine ~time:at_ms (fun () -> fire action)))
    program;
  log

(* {2 Per-phase metrics} *)

type phase = {
  label : string;
  from_ms : float;
  until_ms : float;
  p_issued : int;
  p_completed : int;
  p_failed : int;
  p_gave_up : int;
}

let phases ~events ~history =
  let boundaries =
    ("initial", 0.)
    :: List.map
         (fun { fired_ms; label } -> (label, fired_ms))
         (List.sort (fun a b -> Float.compare a.fired_ms b.fired_ms) events)
  in
  let rec windows = function
    | [] -> []
    | [ (label, from_ms) ] -> [ (label, from_ms, infinity) ]
    | (label, from_ms) :: ((_, until_ms) :: _ as rest) ->
      (label, from_ms, until_ms) :: windows rest
  in
  List.map
    (fun (label, from_ms, until_ms) ->
      let in_phase (op : History.op) = op.invoked >= from_ms && op.invoked < until_ms in
      let ops = List.filter in_phase history in
      let count pred = List.length (List.filter pred ops) in
      {
        label;
        from_ms;
        until_ms;
        p_issued = List.length ops;
        p_completed = count (fun op -> Option.is_some op.History.responded);
        p_gave_up =
          count (fun op ->
              Option.is_none op.History.responded
              && Option.is_some op.History.gave_up);
        p_failed =
          count (fun op ->
              Option.is_none op.History.responded
              && Option.is_none op.History.gave_up);
      })
    (windows boundaries)

let pp_phase ppf p =
  Format.fprintf ppf "[%.0f..%s ms] %s: issued=%d completed=%d failed=%d gave-up=%d"
    p.from_ms
    (if p.until_ms = infinity then "end" else Printf.sprintf "%.0f" p.until_ms)
    p.label p.p_issued p.p_completed p.p_failed p.p_gave_up
