(** Builders for every protocol under evaluation, so experiments can
    iterate over protocols uniformly. *)

type instance = {
  api : Dq_intf.Replication.api;
  partition : int list list -> unit;
  heal : unit -> unit;
  set_service_time : float -> unit;
      (** per-message processing cost at every node (queueing model) *)
  control : Dq_net.Net.control;
      (** message-type-erased fault-injection handle (one-way cuts,
          per-link faults, flapping, crashes) over the instance's
          network — what the nemesis orchestrator drives *)
  server_clock : int -> Dq_sim.Clock.t option;
      (** the node's local clock when the protocol models clock drift
          (dual-quorum clusters); [None] for baseline protocols, whose
          correctness does not depend on clocks *)
  dq_cluster : Dq_core.Cluster.t option;
      (** the underlying dual-quorum cluster, for introspection
          (invariant checks, lease-expiry targeting); [None] for
          baseline protocols *)
}

type builder = {
  name : string;
  build :
    Dq_sim.Engine.t ->
    Dq_net.Topology.t ->
    ?faults:Dq_net.Net.fault_model ->
    ?max_drift:float ->
    unit ->
    instance;
      (** [max_drift] overrides the clock-drift bound of drift-aware
          protocols (dual-quorum lease arithmetic); baseline protocols
          ignore it. Values [<= 0.] are ignored. *)
}

val dqvl :
  ?volume_lease_ms:float ->
  ?proactive_renew:bool ->
  ?object_lease_ms:float ->
  ?max_rounds:int ->
  unit ->
  builder
(** [max_rounds] bounds front-end QRPC retransmission: operations give
    up (reporting failure to the client) after that many rounds instead
    of retrying forever. *)

val dqvl_custom : name:string -> (int list -> Dq_core.Config.t) -> builder
(** Full control over the dual-quorum configuration; the function
    receives the topology's server ids. *)

val dq_basic : builder
(** The basic dual-quorum protocol (no volume leases, Section 3.1). *)

val primary_backup : builder
(** Primary is server 0. *)

val majority : builder

val atomic_majority : builder
(** Majority quorum with ABD read-impose: atomic semantics. *)

val dqvl_atomic : ?volume_lease_ms:float -> ?proactive_renew:bool -> unit -> builder
(** DQVL with atomic reads (paper future work, Section 6): every read
    pushes the value it returns through an IQS write quorum. *)

val rowa : builder

val rowa_async : ?anti_entropy_ms:float -> unit -> builder

val grid : rows:int -> cols:int -> builder
(** A grid quorum system over the first [rows * cols] servers, driven
    by the standard two-phase quorum protocol (paper future work). *)

val paper_five : builder list
(** The five protocols of the paper's evaluation, in its order:
    DQVL, primary/backup, majority quorum, ROWA, ROWA-Async. *)

val register : builder -> unit
(** Make a builder findable by name for the rest of the process — how
    [dqr quorum-opt --apply] injects its optimized configuration into
    the bench scenario machinery. Registered builders are consulted
    before the static table, so a registered name shadows a built-in;
    registering the same name twice keeps the latest. *)

val find : string -> builder option
(** By-name lookup over {!known_names}, shared by the CLIs and the
    bench scenario registry. ["dqvl-paper"] is {!dqvl} with the
    evaluation configuration (1 s on-demand volume leases). *)

val known_names : unit -> string list
(** Registered names (sorted) followed by the static table. *)
