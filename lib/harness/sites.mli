(** Site-partitioned synthetic workload for the parallel (PDES)
    engine.

    Each edge site is one PDES partition holding one server and a set
    of closed-loop clients; clients write their own site's volume and
    read locally or from remote sites across the WAN. Faults: per-send
    loss and seeded server crash windows, with client retry/give-up.

    [run] with and without [?pool] are bit-identical — histories,
    merged metrics JSON and checker verdicts diff clean — which makes
    this workload the PDES determinism oracle and the standard
    events-per-second benchmark body (see DESIGN.md §"Parallel
    engine"). *)

type config = {
  n_sites : int; (* partitions; one server each *)
  clients_per_site : int;
  keys_per_site : int;
  ops_per_client : int;
  remote_ratio : float; (* fraction of reads sent to a remote site *)
  write_ratio : float;
  loss : float; (* per-send drop probability *)
  batch_ms : float; (* intra-site delivery batching; 0 = exact *)
  crash_sites : int; (* servers given one seeded crash window *)
  seed : int64;
}

val default : config

type result = {
  ops_completed : int;
  ops_gave_up : int;
  events : int; (* engine events executed, all partitions *)
  windows : int; (* PDES barrier windows *)
  msgs_sent : int;
  msgs_delivered : int;
  msgs_dropped : int;
  metrics_json : string; (* merged per-partition metrics *)
  history : History.op list; (* merged, renumbered in time order *)
  checked_reads : int;
  violations : int; (* regular-register violations (expect 0) *)
}

val run : ?pool:Dq_par.Pool.t -> config -> result
(** Build the topology, run to quiescence, merge per-partition
    results deterministically and check the merged history. With
    [pool], windows execute in parallel; without, serially — the
    result is identical either way. *)
